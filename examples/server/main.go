// The evolution service end to end, in one process: a synthetic dataset is
// packed into a binary store directory, served over the HTTP JSON API
// (exactly what `evorec serve` runs), queried by concurrent clients, and
// grown by committing a new version at runtime — the "versioned datasets
// behind a live query endpoint" shape of published Linked Data spaces.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"evorec"
)

func get(base, path string) string {
	resp, err := http.Get(base + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body)
}

func main() {
	// A four-version synthetic KB, persisted as a binary segment store.
	versions, _, err := evorec.GenerateVersions(evorec.SmallKB(),
		evorec.EvolveConfig{Ops: 80, Locality: 0.8}, 3, 21)
	if err != nil {
		log.Fatal(err)
	}
	dir := filepath.Join(os.TempDir(), "evorec-example-server")
	defer os.RemoveAll(dir)
	if _, err := evorec.SaveStore(dir, versions, evorec.StoreOptions{
		Policy: evorec.StoreHybrid, SnapshotEvery: 2,
	}); err != nil {
		log.Fatal(err)
	}

	// The service registry + HTTP API, on an ephemeral port.
	svc := evorec.NewService(evorec.ServiceConfig{CacheCap: 4})
	if _, err := svc.Open("kb", dir); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, evorec.NewHTTPServer(svc)) //nolint:errcheck // torn down with the process
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d versions at %s/v1/datasets\n\n", len(versions.IDs()), base)

	// Concurrent clients with different interests hit the same pair; the
	// service builds the pair's analysis once and shares it.
	interests := []string{"C0001=1,C0002=0.5", "C0010=1", "C0005=0.8,C0001=0.2"}
	var wg sync.WaitGroup
	out := make([]string, len(interests))
	for i, spec := range interests {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			out[i] = get(base, "/v1/datasets/kb/recommend?older=v1&newer=v2&k=2&interests="+spec)
		}(i, spec)
	}
	wg.Wait()
	for i, body := range out {
		fmt.Printf("client %d (interests %s):\n%s\n", i+1, interests[i], body)
	}

	// Commit the next version at runtime: it is persisted into the store
	// directory through the binary append path and immediately queryable.
	last, _ := versions.Get("v4")
	var buf bytes.Buffer
	if err := evorec.WriteNTriples(&buf, last.Graph); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/datasets/kb/versions/v4-live", "application/n-triples", &buf)
	if err != nil {
		log.Fatal(err)
	}
	committed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("committed at runtime (status %d):\n%s\n", resp.StatusCode, committed)

	fmt.Println("delta of the committed pair:")
	fmt.Println(get(base, "/v1/datasets/kb/delta?older=v3&newer=v4-live"))

	fmt.Println("dataset after serving (note context_builds and cache counters):")
	fmt.Println(get(base, "/v1/datasets/kb"))
}
