// Notifications over a realistic workload: the paper's §I scenario where
// "anyone, at personal or group level, may want to be notified about the
// evolution of data". A LUBM-style university knowledge base evolves; a
// registrar (cares about students/courses) and a dean (cares about
// departments/professors) subscribe; the engine notifies each of them only
// when measures related to *their* area cross a relatedness threshold, with
// a one-line explanation per notification.
package main

import (
	"fmt"
	"log"

	"evorec"
)

func main() {
	versions, _, err := evorec.GenerateUniversityVersions(
		evorec.DefaultUniversity(),
		evorec.EvolveConfig{Ops: 120, Locality: 0.7},
		1, 11)
	if err != nil {
		log.Fatal(err)
	}
	eng := evorec.NewEngine(evorec.EngineConfig{})
	if err := eng.IngestAll(versions); err != nil {
		log.Fatal(err)
	}

	registrar := evorec.NewProfile("registrar")
	registrar.SetInterest(evorec.SchemaIRI("Student"), 1)
	registrar.SetInterest(evorec.SchemaIRI("Course"), 0.8)

	dean := evorec.NewProfile("dean")
	dean.SetInterest(evorec.SchemaIRI("Department"), 1)
	dean.SetInterest(evorec.SchemaIRI("Professor"), 0.8)

	archivist := evorec.NewProfile("archivist")
	archivist.SetInterest(evorec.SchemaIRI("Publication"), 1)

	pool := []*evorec.Profile{registrar, dean, archivist}
	notifications, err := eng.Notify(pool, "v1", "v2", 0.15, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("university KB evolved v1 -> v2; %d notifications emitted:\n\n", len(notifications))
	for _, n := range notifications {
		fmt.Printf("to %-10s [%.2f] via %s\n", n.UserID, n.Relatedness, n.MeasureID)
		fmt.Printf("   %s\n", n.Reason)
	}

	// The digest behind a notification, on demand.
	fmt.Println()
	report, err := eng.UserReport(dean, evorec.Request{OlderID: "v1", NewerID: "v2", K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
}
