// Curator dashboard: the paper's motivating scenario — a knowledge-base
// curator wants a supervisory overview of what changed between releases
// without reading raw deltas. The example prints the delta volume, the
// detected high-level change patterns, the most-affected classes under
// every measure, and a diversified recommendation that covers count-based,
// structural and semantic viewpoints.
package main

import (
	"fmt"
	"log"

	"evorec"
)

func main() {
	versions, focuses, err := evorec.GenerateVersions(
		evorec.DBpediaLikeKB(),
		evorec.EvolveConfig{Ops: 250, Locality: 0.85},
		1, 7)
	if err != nil {
		log.Fatal(err)
	}
	older, _ := versions.Get("v1")
	newer, _ := versions.Get("v2")

	// Raw delta volume: what the curator would otherwise have to read.
	d := evorec.ComputeDelta(older.Graph, newer.Graph)
	fmt.Printf("release diff v1 -> v2: %d added, %d deleted triples (%d total)\n",
		len(d.Added), len(d.Deleted), d.Size())

	// High-level changes: the schema-level story.
	changes := evorec.DetectHighLevel(older.Graph, newer.Graph)
	fmt.Printf("\n%d high-level changes, first 8:\n", len(changes))
	for i, c := range changes {
		if i == 8 {
			break
		}
		fmt.Println("  ", c)
	}

	// Measure overview: the most affected classes per viewpoint.
	ctx := evorec.NewMeasureContext(older, newer)
	fmt.Println("\nmost affected classes per measure:")
	for _, m := range evorec.DefaultMeasures() {
		top := m.Compute(ctx).Rank().TopK(3)
		fmt.Printf("  %-28s", m.ID())
		for _, e := range top {
			if e.Score > 0 {
				fmt.Printf("  %s(%.2f)", e.Term.Local(), e.Score)
			}
		}
		fmt.Println()
	}

	// The curator's profile: responsible for the burst region.
	curator := evorec.NewProfile("curator")
	curator.SetInterest(focuses[0], 1.0)
	sch := evorec.ExtractSchema(older.Graph)
	for _, n := range sch.Neighbors(focuses[0]) {
		curator.SetInterest(n, 0.5)
	}

	items := evorec.BuildItems(ctx, evorec.NewMeasureRegistry())

	// Plain relatedness vs a semantically diverse slate.
	plain := evorec.TopK(curator, items, 3)
	diverse := evorec.SemanticTopK(curator, items, 3)
	fmt.Printf("\nplain top-3 for the curator:    %v (category coverage %.2f)\n",
		evorec.MeasureIDs(plain), evorec.CategoryCoverage(items, plain))
	fmt.Printf("semantically diverse top-3:     %v (category coverage %.2f)\n",
		evorec.MeasureIDs(diverse), evorec.CategoryCoverage(items, diverse))
	fmt.Printf("relatedness cost of diversity:  %.3f -> %.3f\n",
		evorec.MeanRelatedness(curator, items, plain),
		evorec.MeanRelatedness(curator, items, diverse))
}
