// Trends and archiving: watch how a knowledge base changes over a whole
// chain of versions — the paper's "observe changes trends" promise — and
// persist the chain under the delta-chain archiving policy. The example
// tracks the change-count measure across five versions, classifies every
// class's trend shape, shows the hottest and fastest-rising classes, and
// compares archive footprints.
package main

import (
	"fmt"
	"log"
	"os"

	"evorec"
)

func main() {
	versions, focuses, err := evorec.GenerateVersions(
		evorec.SmallKB(),
		evorec.EvolveConfig{Ops: 80, Locality: 0.9},
		4, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5-version chain; change bursts at:")
	for _, f := range focuses {
		fmt.Printf(" %s", f.Local())
	}
	fmt.Println()

	// Trend analysis over the whole chain.
	analysis, err := evorec.AnalyzeTrend(versions, evorec.DefaultMeasures()[0]) // change_count
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntracking %s over pairs %v\n", analysis.MeasureID, analysis.PairIDs)
	counts := analysis.ShapeCounts()
	fmt.Println("trend shapes across", analysis.Len(), "entities:")
	for _, sh := range []evorec.TrendShape{
		evorec.TrendQuiet, evorec.TrendRising, evorec.TrendFalling,
		evorec.TrendBursty, evorec.TrendSteady,
	} {
		fmt.Printf("  %-8s %d\n", sh, counts[sh])
	}

	fmt.Println("\nhottest classes (cumulative change):")
	for _, s := range analysis.TopTotal(5) {
		fmt.Printf("  %-10s total=%-6.0f shape=%-8s series=%v\n",
			s.Term.Local(), s.Total(), s.Classify(), s.Values)
	}
	fmt.Println("\nfastest-rising classes:")
	for _, s := range analysis.TopRising(3) {
		fmt.Printf("  %-10s slope=%-6.1f volatility=%-6.1f series=%v\n",
			s.Term.Local(), s.Slope(), s.Volatility(), s.Values)
	}

	// Archive the chain under two policies and compare footprints.
	fmt.Println("\narchiving the chain:")
	for _, pol := range []evorec.ArchivePolicy{evorec.FullSnapshots, evorec.DeltaChain} {
		dir, err := os.MkdirTemp("", "evorec-trends-")
		if err != nil {
			log.Fatal(err)
		}
		man, err := evorec.SaveArchive(dir, versions, evorec.ArchiveOptions{Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		size, err := evorec.ArchiveDiskUsage(dir, man)
		if err != nil {
			log.Fatal(err)
		}
		// Round-trip check: the archive reconstructs the chain exactly.
		back, err := evorec.LoadArchive(dir)
		if err != nil {
			log.Fatal(err)
		}
		ok := back.Len() == versions.Len()
		fmt.Printf("  %-15s %7d bytes  round-trip ok=%v\n", pol, size, ok)
		os.RemoveAll(dir)
	}
}
