// Group fairness: the paper's §III-d scenario — recommending evolution
// measures to a curators' team. The example contrasts the utilitarian
// (average) aggregation, which can starve a member whose interests diverge,
// with least-misery aggregation and the fairness-aware greedy selection,
// reporting per-member satisfaction, the group minimum and Jain's index.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"evorec"
)

func main() {
	versions, _, err := evorec.GenerateVersions(
		evorec.DBpediaLikeKB(),
		evorec.EvolveConfig{Ops: 250, Locality: 0.6},
		1, 21)
	if err != nil {
		log.Fatal(err)
	}
	older, _ := versions.Get("v1")
	newer, _ := versions.Get("v2")
	ctx := evorec.NewMeasureContext(older, newer)
	items := evorec.BuildItems(ctx, evorec.NewMeasureRegistry())

	// A synthetic curator population, and an antagonistic team: members
	// picked to have maximally divergent interests (the fairness stress
	// case).
	sch := evorec.ExtractSchema(older.Graph)
	rng := rand.New(rand.NewSource(5))
	pool, _, err := evorec.GenerateProfiles(sch, evorec.ProfileConfig{Users: 30, ExtraInterests: 2}, rng)
	if err != nil {
		log.Fatal(err)
	}
	team, err := evorec.GenerateGroup(pool, 4, evorec.AntagonisticGroup, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("team of %d curators with divergent interests\n\n", team.Size())

	show := func(label string, sel []evorec.Recommendation) {
		sats := evorec.GroupSatisfactions(team, items, sel)
		fmt.Printf("%-28s %v\n", label, evorec.MeasureIDs(sel))
		fmt.Printf("  member satisfaction:")
		for i, s := range sats {
			fmt.Printf("  %s=%.2f", team.Members[i].ID, s)
		}
		fmt.Printf("\n  min=%.3f  mean=%.3f  jain=%.3f\n\n",
			evorec.MinSatisfaction(team, items, sel),
			evorec.MeanSatisfaction(team, items, sel),
			evorec.JainIndex(sats))
	}

	const k = 3
	show("average aggregation:", evorec.GroupTopK(team, items, k, evorec.Average))
	show("least-misery aggregation:", evorec.GroupTopK(team, items, k, evorec.LeastMisery))
	show("most-pleasure aggregation:", evorec.GroupTopK(team, items, k, evorec.MostPleasure))
	show("fair greedy (α=0.8):", evorec.FairGreedyTopK(team, items, k, 0.8))

	fmt.Println("the fair selections trade a little mean satisfaction for a higher")
	fmt.Println("minimum — no team member is left without a related measure (§III-d).")
}
