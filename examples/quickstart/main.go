// Quickstart: generate a small evolving knowledge base, build the engine,
// and get personalized evolution-measure recommendations for one user.
package main

import (
	"fmt"
	"log"

	"evorec"
)

func main() {
	// 1. A synthetic evolving dataset (stands in for DBpedia snapshots):
	//    three versions, change bursts concentrated around a focus class.
	versions, focuses, err := evorec.GenerateVersions(
		evorec.SmallKB(),
		evorec.EvolveConfig{Ops: 100, Locality: 0.85},
		2,  // evolution steps -> versions v1..v3
		42, // seed: everything below is reproducible
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d versions; change bursts at %s and %s\n\n",
		versions.Len(), focuses[0].Local(), focuses[1].Local())

	// 2. The processing model: ingest versions (provenance is recorded
	//    automatically for transparency).
	eng := evorec.NewEngine(evorec.EngineConfig{})
	if err := eng.IngestAll(versions); err != nil {
		log.Fatal(err)
	}

	// 3. A user who cares about the region where the v1->v2 burst happened.
	alice := evorec.NewProfile("alice")
	alice.SetInterest(focuses[0], 1.0)

	// 4. Recommend the 3 evolution measures that best explain, for Alice,
	//    how the data she cares about changed between v1 and v2.
	recs, err := eng.Recommend(alice, evorec.Request{
		OlderID: "v1", NewerID: "v2", K: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	items, err := eng.Items("v1", "v2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommended evolution measures for alice:")
	for rank, r := range recs {
		for _, it := range items {
			if it.ID() == r.MeasureID {
				fmt.Printf("  %d. %s (relatedness %.3f)\n", rank+1, it.Measure.Name(), r.Score)
				// Show what the measure would highlight.
				for _, e := range it.Scores.Rank().TopK(3) {
					fmt.Printf("       %-12s %.3f\n", e.Term.Local(), e.Score)
				}
			}
		}
	}

	// 5. Transparency (§III-b): every recommendation traces back to the
	//    ingested versions.
	fmt.Println()
	fmt.Print(eng.Provenance().Report("rec:alice:v1->v2:plain"))
}
