// Privacy-aware recommendation: the paper's §III-e anonymity scenario,
// modeled on its medical-research example — user interest profiles are
// sensitive, so the recommender only ever sees an anonymized view. The
// example publishes the profile pool under k-anonymity and differential
// privacy, simulates the linkage attack, and measures what the privacy
// protection costs in recommendation quality.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"evorec"
)

func main() {
	versions, _, err := evorec.GenerateVersions(
		evorec.SmallKB(),
		evorec.EvolveConfig{Ops: 120, Locality: 0.7},
		1, 13)
	if err != nil {
		log.Fatal(err)
	}
	older, _ := versions.Get("v1")
	newer, _ := versions.Get("v2")
	ctx := evorec.NewMeasureContext(older, newer)
	items := evorec.BuildItems(ctx, evorec.NewMeasureRegistry())

	sch := evorec.ExtractSchema(older.Graph)
	rng := rand.New(rand.NewSource(3))
	pool, _, err := evorec.GenerateProfiles(sch, evorec.ProfileConfig{Users: 16, ExtraInterests: 2}, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: what each user would ideally be recommended, computed
	// from the raw (sensitive) profiles.
	const k = 3
	groundTruth := make([]map[string]float64, len(pool))
	for i, u := range pool {
		gt := make(map[string]float64, len(items))
		for _, it := range items {
			gt[it.ID()] = evorec.Relatedness(u, it)
		}
		groundTruth[i] = gt
	}

	evaluate := func(label string, published []*evorec.Profile) {
		risk := evorec.ReidentificationRisk(pool, published)
		ndcg := 0.0
		for i, p := range published {
			ranked := evorec.MeasureIDs(evorec.TopK(p, items, len(items)))
			ndcg += evorec.NDCGAtK(ranked, groundTruth[i], k)
		}
		fmt.Printf("  %-16s re-identification risk %.2f   NDCG@%d %.3f\n",
			label, risk, k, ndcg/float64(len(published)))
	}

	fmt.Println("privacy/utility trade-off over", len(pool), "users:")
	evaluate("no protection", pool)

	for _, kAnon := range []int{2, 4, 8} {
		anon, groups, err := evorec.KAnonymize(pool, kAnon)
		if err != nil {
			log.Fatal(err)
		}
		evaluate(fmt.Sprintf("k-anonymity k=%d", kAnon), anon)
		if kAnon == 4 {
			fmt.Printf("      (published %d centroid groups)\n", len(groups))
		}
	}

	universe := evorec.InterestUniverse(pool)
	for _, eps := range []float64{5, 0.5} {
		noiseRng := rand.New(rand.NewSource(9))
		noisy := make([]*evorec.Profile, len(pool))
		for i, u := range pool {
			np, err := evorec.DPPerturb(u, universe, eps, noiseRng)
			if err != nil {
				log.Fatal(err)
			}
			noisy[i] = np
		}
		evaluate(fmt.Sprintf("dp ε=%.1f", eps), noisy)
	}

	fmt.Println("\nstronger anonymity lowers the linkage-attack risk and, in exchange,")
	fmt.Println("the recommendations drift from the sensitive ground truth (§III-e).")
}
