// Package evorec is the public API of the evorec library: a human-aware
// recommender for knowledge-base evolution measures, reproducing Stefanidis,
// Kondylakis and Troullinou, "On Recommending Evolution Measures: A
// Human-Aware Approach" (ICDE 2017).
//
// The library is organized in layers (see DESIGN.md):
//
//   - an RDF substrate with versioning (Graph, Version, VersionStore),
//   - evolution analysis: low-level deltas, high-level change detection,
//     structural and semantic importance measures,
//   - the measure framework (Measure, Context, Registry) with the paper's
//     six exemplar measures plus a property-level extension,
//   - the human-aware recommenders: relatedness, content/novelty/semantic
//     diversity, group fairness, and anonymity (k-anonymity and differential
//     privacy),
//   - provenance-backed transparency for every recommendation,
//   - a synthetic evolving-KB generator standing in for DBpedia snapshots.
//
// The Engine type ties the layers into the paper's processing model:
//
//	eng := evorec.NewEngine(evorec.EngineConfig{})
//	eng.IngestAll(versions)
//	recs, err := eng.Recommend(user, evorec.Request{
//		OlderID: "v1", NewerID: "v2", K: 3,
//	})
//
// All exported names are thin aliases over the internal implementation
// packages, so the whole supported surface is visible in one place.
package evorec

import (
	"io"
	"log/slog"
	"math/rand"
	"net/http"

	"evorec/internal/archive"
	"evorec/internal/core"
	"evorec/internal/delta"
	"evorec/internal/feed"
	"evorec/internal/graphx"
	"evorec/internal/measures"
	"evorec/internal/obs"
	"evorec/internal/profile"
	"evorec/internal/provenance"
	"evorec/internal/query"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
	"evorec/internal/schema"
	"evorec/internal/semantics"
	"evorec/internal/server"
	"evorec/internal/service"
	"evorec/internal/sim"
	"evorec/internal/store"
	"evorec/internal/summary"
	"evorec/internal/synth"
	"evorec/internal/trend"
)

// ---------------------------------------------------------------------------
// RDF substrate

// Term is an RDF term (IRI, blank node, literal, or pattern wildcard).
type Term = rdf.Term

// Triple is one RDF statement.
type Triple = rdf.Triple

// Graph is the indexed in-memory triple store.
type Graph = rdf.Graph

// Version is a named snapshot of a knowledge base.
type Version = rdf.Version

// VersionStore holds the ordered versions of one dataset.
type VersionStore = rdf.VersionStore

// TermID is a dense dictionary-encoded term identifier (see DESIGN.md
// "Storage & interning"): the integers the hot paths run on.
type TermID = rdf.TermID

// IDTriple is a triple in dictionary-encoded form.
type IDTriple = rdf.IDTriple

// Dict is the append-only Term ⇄ TermID interner shared by all versions of
// one dataset.
type Dict = rdf.Dict

// NewGraph returns an empty graph.
func NewGraph() *Graph { return rdf.NewGraph() }

// NewDict returns an empty term dictionary.
func NewDict() *Dict { return rdf.NewDict() }

// NewGraphWithDict returns an empty graph interning into a shared dictionary.
func NewGraphWithDict(d *Dict) *Graph { return rdf.NewGraphWithDict(d) }

// NewVersionStore returns an empty version store.
func NewVersionStore() *VersionStore { return rdf.NewVersionStore() }

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return rdf.NewIRI(iri) }

// NewLiteral returns a plain literal term.
func NewLiteral(v string) Term { return rdf.NewLiteral(v) }

// T constructs a triple.
func T(s, p, o Term) Triple { return rdf.T(s, p, o) }

// ReadNTriples parses N-Triples into a graph.
func ReadNTriples(r io.Reader) (*Graph, error) { return rdf.ReadNTriples(r) }

// ReadNTriplesInto parses N-Triples into an existing graph, so chains of
// versions can intern into one shared dictionary.
func ReadNTriplesInto(g *Graph, r io.Reader) error { return rdf.ReadNTriplesInto(g, r) }

// WriteNTriples serializes a graph as sorted N-Triples.
func WriteNTriples(w io.Writer, g *Graph) error { return rdf.WriteNTriples(w, g) }

// Frequently used vocabulary terms.
var (
	RDFType        = rdf.RDFType
	RDFSClass      = rdf.RDFSClass
	RDFSSubClassOf = rdf.RDFSSubClassOf
	RDFSDomain     = rdf.RDFSDomain
	RDFSRange      = rdf.RDFSRange
	RDFSLabel      = rdf.RDFSLabel
)

// SchemaIRI mints an IRI in the synthetic schema namespace.
func SchemaIRI(local string) Term { return rdf.SchemaIRI(local) }

// ResourceIRI mints an IRI in the synthetic resource namespace.
func ResourceIRI(local string) Term { return rdf.ResourceIRI(local) }

// ---------------------------------------------------------------------------
// Schema and analysis

// Schema is the extracted class/property view of one version.
type Schema = schema.Schema

// ExtractSchema builds the schema view of a graph.
func ExtractSchema(g *Graph) *Schema { return schema.Extract(g) }

// Delta is a low-level delta (δ+, δ−) between two versions.
type Delta = delta.Delta

// ComputeDelta computes the low-level delta between two graphs.
func ComputeDelta(older, newer *Graph) *Delta { return delta.Compute(older, newer) }

// ComputeDeltaParallel is ComputeDelta with the scan split across CPU cores;
// it requires (and the synthetic generators, Clone, and the archive loader
// guarantee) that both graphs share a term dictionary to gain anything.
func ComputeDeltaParallel(older, newer *Graph) *Delta { return delta.ComputeParallel(older, newer) }

// HighLevelChange is a detected schema-level change pattern.
type HighLevelChange = delta.HighLevelChange

// DetectHighLevel lifts a version pair into high-level changes.
func DetectHighLevel(older, newer *Graph) []HighLevelChange {
	return delta.DetectHighLevel(older, newer)
}

// StructuralGraph is the class-level graph used by structural measures.
type StructuralGraph = graphx.Graph

// SemanticAnalyzer answers semantic importance queries over one version.
type SemanticAnalyzer = semantics.Analyzer

// NewSemanticAnalyzer builds the semantic analyzer for a graph.
func NewSemanticAnalyzer(g *Graph, s *Schema) *SemanticAnalyzer {
	return semantics.NewAnalyzer(g, s)
}

// ---------------------------------------------------------------------------
// Measures

// Measure quantifies evolution intensity per entity between two versions.
type Measure = measures.Measure

// Scores maps entities to evolution-intensity values.
type Scores = measures.Scores

// MeasureContext carries the derived structures of one version pair.
type MeasureContext = measures.Context

// NewMeasureContext builds the analysis context for a version pair.
func NewMeasureContext(older, newer *Version) *MeasureContext {
	return measures.NewContext(older, newer)
}

// MeasureRegistry maps measure IDs to implementations.
type MeasureRegistry = measures.Registry

// NewMeasureRegistry returns a registry with the default measure set.
func NewMeasureRegistry() *MeasureRegistry { return measures.NewRegistry() }

// DefaultMeasures returns the paper's exemplar measure set.
func DefaultMeasures() []Measure { return measures.DefaultSet() }

// ---------------------------------------------------------------------------
// Users and groups

// Profile is one user's weighted interest model.
type Profile = profile.Profile

// Group is a set of users receiving recommendations together.
type Group = profile.Group

// NewProfile returns an empty profile.
func NewProfile(id string) *Profile { return profile.New(id) }

// NewGroup constructs a group from member profiles.
func NewGroup(id string, members []*Profile) (*Group, error) {
	return profile.NewGroup(id, members)
}

// ParseInterests parses the "Class=0.9,OtherClass=0.4" interest spec the
// CLI and HTTP API share into a profile. Bare names get weight 1 and
// resolve in the synthetic schema namespace; "scheme://" names are full
// IRIs.
func ParseInterests(id, spec string) (*Profile, error) {
	return profile.ParseInterests(id, spec)
}

// ParseUserSpec parses "id:Class=w,Class=w" into a profile.
func ParseUserSpec(spec string) (*Profile, error) { return profile.ParseUserSpec(spec) }

// ---------------------------------------------------------------------------
// Recommendation

// Item is one recommendable measure evaluated on a version pair.
type Item = recommend.Item

// Recommendation is one ranked measure.
type Recommendation = recommend.Recommendation

// Aggregation selects the group scoring strategy.
type Aggregation = recommend.Aggregation

// Group aggregation strategies.
const (
	Average      = recommend.Average
	LeastMisery  = recommend.LeastMisery
	MostPleasure = recommend.MostPleasure
)

// BuildItems evaluates every registered measure into recommendable items.
func BuildItems(ctx *MeasureContext, reg *MeasureRegistry) []Item {
	return recommend.BuildItems(ctx, reg)
}

// ItemIndex is the ID-native scoring kernel over one pair's items: flat
// sorted TermID vectors with cached norms behind an inverted term → item
// postings index, with bounded-heap top-k selection. Its rankings are
// bit-identical to the map-scored reference functions (TopK, GroupTopK,
// ...); the engine caches one per version pair and the feed fan-out scores
// subscribers through it (see DESIGN.md §9).
type ItemIndex = recommend.ItemIndex

// NewItemIndex compiles items into the flat scoring kernel form.
func NewItemIndex(items []Item) *ItemIndex { return recommend.NewItemIndex(items) }

// Relatedness scores how related an item is to a user (§III-a).
func Relatedness(u *Profile, it Item) float64 { return recommend.Relatedness(u, it) }

// TopK returns the k measures most related to the user.
func TopK(u *Profile, items []Item, k int) []Recommendation {
	return recommend.TopK(u, items, k)
}

// MMR returns a content-diversified top-k (λ mixes relevance vs diversity).
func MMR(u *Profile, items []Item, k int, lambda float64) []Recommendation {
	return recommend.MMR(u, items, k, lambda)
}

// GroupTopK recommends to a group under an aggregation strategy.
func GroupTopK(g *Group, items []Item, k int, agg Aggregation) []Recommendation {
	return recommend.GroupTopK(g, items, k, agg)
}

// FairGreedyTopK is the fairness-aware group selection (§III-d).
func FairGreedyTopK(g *Group, items []Item, k int, alpha float64) []Recommendation {
	return recommend.FairGreedyTopK(g, items, k, alpha)
}

// MaxMin returns a Max-Min diversified top-k.
func MaxMin(u *Profile, items []Item, k int) []Recommendation {
	return recommend.MaxMin(u, items, k)
}

// NoveltyTopK ranks by relatedness × novelty, demoting already-seen measures.
func NoveltyTopK(u *Profile, items []Item, k int) []Recommendation {
	return recommend.NoveltyTopK(u, items, k)
}

// SemanticTopK round-robins over measure categories for semantic diversity.
func SemanticTopK(u *Profile, items []Item, k int) []Recommendation {
	return recommend.SemanticTopK(u, items, k)
}

// IntraListDiversity is the mean pairwise content distance of a selection.
func IntraListDiversity(items []Item, sel []Recommendation) float64 {
	return recommend.IntraListDiversity(items, sel)
}

// CategoryCoverage is the fraction of measure categories in a selection.
func CategoryCoverage(items []Item, sel []Recommendation) float64 {
	return recommend.CategoryCoverage(items, sel)
}

// MeanRelatedness is the mean relatedness of a selection to a user.
func MeanRelatedness(u *Profile, items []Item, sel []Recommendation) float64 {
	return recommend.MeanRelatedness(u, items, sel)
}

// Satisfaction is a member's normalized satisfaction with a selection.
func Satisfaction(u *Profile, items []Item, sel []Recommendation) float64 {
	return recommend.Satisfaction(u, items, sel)
}

// GroupSatisfactions returns every member's satisfaction, in member order.
func GroupSatisfactions(g *Group, items []Item, sel []Recommendation) []float64 {
	return recommend.GroupSatisfactions(g, items, sel)
}

// MinSatisfaction is the satisfaction of the least-satisfied group member.
func MinSatisfaction(g *Group, items []Item, sel []Recommendation) float64 {
	return recommend.MinSatisfaction(g, items, sel)
}

// MeanSatisfaction is the mean member satisfaction with a selection.
func MeanSatisfaction(g *Group, items []Item, sel []Recommendation) float64 {
	return recommend.MeanSatisfaction(g, items, sel)
}

// JainIndex is Jain's fairness index over member satisfactions.
func JainIndex(sats []float64) float64 { return recommend.JainIndex(sats) }

// MeasureIDs extracts the ranked measure IDs of a selection.
func MeasureIDs(sel []Recommendation) []string { return recommend.MeasureIDs(sel) }

// NDCGAtK scores a ranked measure-ID list against graded relevance labels.
func NDCGAtK(ranked []string, relevance map[string]float64, k int) float64 {
	return recommend.NDCGAtK(ranked, relevance, k)
}

// DPPerturb publishes a differentially-private view of a profile.
func DPPerturb(p *Profile, universe []Term, epsilon float64, rng *rand.Rand) (*Profile, error) {
	return recommend.DPPerturb(p, universe, epsilon, rng)
}

// InterestUniverse returns the union of entities across a profile pool.
func InterestUniverse(pool []*Profile) []Term { return recommend.InterestUniverse(pool) }

// KAnonymize publishes a k-anonymous view of a profile pool (§III-e).
func KAnonymize(pool []*Profile, k int) ([]*Profile, [][]int, error) {
	return recommend.KAnonymize(pool, k)
}

// ReidentificationRisk simulates the linkage attack against published
// profiles.
func ReidentificationRisk(originals, published []*Profile) float64 {
	return recommend.ReidentificationRisk(originals, published)
}

// ---------------------------------------------------------------------------
// Transparency

// ProvenanceStore is the append-only provenance log backing transparency.
type ProvenanceStore = provenance.Store

// ProvenanceRecord is one provenance entry.
type ProvenanceRecord = provenance.Record

// ---------------------------------------------------------------------------
// Engine (the processing model)

// Engine ties the layers into the paper's processing model.
type Engine = core.Engine

// EngineConfig parameterizes an Engine.
type EngineConfig = core.Config

// Request parameterizes a single-user recommendation.
type Request = core.Request

// GroupRequest parameterizes a group recommendation.
type GroupRequest = core.GroupRequest

// PrivacyPolicy selects anonymization for private recommendations.
type PrivacyPolicy = core.PrivacyPolicy

// Strategy selects the single-user recommendation algorithm.
type Strategy = core.Strategy

// Single-user strategies.
const (
	Plain           = core.Plain
	DiverseMMR      = core.DiverseMMR
	DiverseMaxMin   = core.DiverseMaxMin
	NoveltyAware    = core.NoveltyAware
	SemanticDiverse = core.SemanticDiverse
)

// NewEngine builds an engine.
func NewEngine(cfg EngineConfig) *Engine { return core.New(cfg) }

// ---------------------------------------------------------------------------
// Synthetic data

// KBConfig shapes a generated knowledge base.
type KBConfig = synth.KBConfig

// EvolveConfig controls one synthetic evolution step.
type EvolveConfig = synth.EvolveConfig

// ProfileConfig shapes a synthetic user population.
type ProfileConfig = synth.ProfileConfig

// GroupKind selects how a synthetic group is assembled.
type GroupKind = synth.GroupKind

// Synthetic group kinds.
const (
	RandomGroup       = synth.RandomGroup
	CoherentGroup     = synth.CoherentGroup
	AntagonisticGroup = synth.AntagonisticGroup
)

// SmallKB returns a test-sized KB config.
func SmallKB() KBConfig { return synth.Small() }

// DBpediaLikeKB returns the DBpedia-shaped KB config.
func DBpediaLikeKB() KBConfig { return synth.DBpediaLike() }

// GenerateVersions builds a deterministic evolving dataset.
func GenerateVersions(kb KBConfig, ev EvolveConfig, steps int, seed int64) (*VersionStore, []Term, error) {
	return synth.GenerateVersions(kb, ev, steps, seed)
}

// GenerateProfiles builds a synthetic user population over a schema.
func GenerateProfiles(s *Schema, cfg ProfileConfig, rng *rand.Rand) ([]*Profile, []Term, error) {
	return synth.GenerateProfiles(s, cfg, rng)
}

// GenerateGroup assembles a synthetic group from a profile pool.
func GenerateGroup(pool []*Profile, size int, kind GroupKind, rng *rand.Rand) (*Group, error) {
	return synth.GenerateGroup(pool, size, kind, rng)
}

// ---------------------------------------------------------------------------
// Trends

// TrendAnalysis holds per-entity measure series over a version chain.
type TrendAnalysis = trend.Analysis

// TrendSeries is one entity's measure values over consecutive pairs.
type TrendSeries = trend.Series

// TrendShape classifies a series (quiet/rising/falling/bursty/steady).
type TrendShape = trend.Shape

// Trend shapes.
const (
	TrendQuiet   = trend.Quiet
	TrendRising  = trend.Rising
	TrendFalling = trend.Falling
	TrendBursty  = trend.Bursty
	TrendSteady  = trend.Steady
)

// AnalyzeTrend evaluates a measure over every consecutive pair of the chain
// and returns per-entity trend series ("observe changes trends", paper §I).
func AnalyzeTrend(vs *VersionStore, m Measure) (*TrendAnalysis, error) {
	return trend.Analyze(vs, m)
}

// ---------------------------------------------------------------------------
// Archive

// ArchivePolicy selects how versions are materialized on disk.
type ArchivePolicy = archive.Policy

// ArchiveOptions parameterize SaveArchive.
type ArchiveOptions = archive.Options

// ArchiveManifest indexes a saved archive.
type ArchiveManifest = archive.Manifest

// Archiving policies.
const (
	FullSnapshots = archive.FullSnapshots
	DeltaChain    = archive.DeltaChain
	HybridArchive = archive.Hybrid
)

// SaveArchive persists a version store to a directory under a policy.
func SaveArchive(dir string, vs *VersionStore, opt ArchiveOptions) (*ArchiveManifest, error) {
	return archive.Save(dir, vs, opt)
}

// LoadArchive reconstructs a version store from an archive directory.
func LoadArchive(dir string) (*VersionStore, error) { return archive.Load(dir) }

// ArchiveDiskUsage sums the archive's on-disk footprint.
func ArchiveDiskUsage(dir string, man *ArchiveManifest) (int64, error) {
	return archive.DiskUsage(dir, man)
}

// ArchiveCodec selects the archive's on-disk encoding.
type ArchiveCodec = archive.Codec

// Archive codecs.
const (
	// TextArchive is interoperable N-Triples (the default).
	TextArchive = archive.Text
	// BinaryArchive is the dictionary-native segment store.
	BinaryArchive = archive.Binary
)

// ---------------------------------------------------------------------------
// Binary segment store

// StorePolicy selects the binary store's snapshot/delta mix.
type StorePolicy = store.Policy

// Binary store policies.
const (
	StoreFullSnapshots = store.FullSnapshots
	StoreDeltaChain    = store.DeltaChain
	StoreHybrid        = store.Hybrid
)

// StoreOptions parameterize SaveStore.
type StoreOptions = store.Options

// StoreManifest indexes a saved binary store.
type StoreManifest = store.Manifest

// StoreDataset is a lazy handle over a stored version chain: versions
// materialize on first access through a small LRU, so version k can be
// served without loading the whole chain.
type StoreDataset = store.Dataset

// StoreInfo is the result of InspectStore.
type StoreInfo = store.Info

// StoreDefaultCacheCap is the store dataset's default graph-LRU capacity.
const StoreDefaultCacheCap = store.DefaultCacheCap

// SetStoreCacheCap resizes a store dataset's graph LRU (minimum 1; smaller
// capacities are rejected, not clamped).
func SetStoreCacheCap(ds *StoreDataset, n int) error { return ds.SetCacheCap(n) }

// StoreCacheStats reports a store dataset's LRU hit/miss counters.
func StoreCacheStats(ds *StoreDataset) (hits, misses int) { return ds.CacheStats() }

// StoreCacheCap returns a store dataset's current LRU capacity.
func StoreCacheCap(ds *StoreDataset) int { return ds.CacheCap() }

// SaveStore persists a version store to dir in the binary segment format.
func SaveStore(dir string, vs *VersionStore, opt StoreOptions) (*StoreManifest, error) {
	return store.Save(dir, vs, opt)
}

// OpenStore opens a binary store directory as a lazy dataset handle.
func OpenStore(dir string) (*StoreDataset, error) { return store.Open(dir) }

// InspectStore verifies a store directory's segments without materializing
// any graph.
func InspectStore(dir string) (*StoreInfo, error) { return store.Inspect(dir) }

// StoreDiskUsage sums the store's on-disk footprint.
func StoreDiskUsage(dir string, man *StoreManifest) (int64, error) {
	return store.DiskUsage(dir, man)
}

// StoreVerifyReport is the result of VerifyStore.
type StoreVerifyReport = store.VerifyReport

// StoreRecoverPlan is the result of PlanStoreRecovery.
type StoreRecoverPlan = store.RecoverPlan

// StoreWALRecordInfo is one WAL record's replay fate.
type StoreWALRecordInfo = store.WALRecordInfo

// WAL record replay statuses.
const (
	StoreWALApplied    = store.WALApplied
	StoreWALReplayable = store.WALReplayable
	StoreWALOrphaned   = store.WALOrphaned
)

// VerifyStore checks every durability invariant of a store directory —
// segment framing and checksums, chain contiguity, dictionary coverage,
// WAL replayability — without materializing a graph or writing a byte.
func VerifyStore(dir string) (*StoreVerifyReport, error) { return store.Verify(dir) }

// PlanStoreRecovery simulates what opening the store would replay from its
// write-ahead log, read-only.
func PlanStoreRecovery(dir string) (*StoreRecoverPlan, error) { return store.PlanRecovery(dir) }

// FeedVerifyInfo is the result of VerifyFeedDir.
type FeedVerifyInfo = feed.VerifyInfo

// VerifyFeedDir strictly loads a persisted feed directory (registry, logs,
// fan-out ledger) and summarizes it; any corruption is the returned error.
func VerifyFeedDir(dir string) (*FeedVerifyInfo, error) { return feed.Verify(dir) }

// ---------------------------------------------------------------------------
// Extended measures and explanations

// ExtendedMeasures returns the paper's measures plus the additional
// structural/counting measures (PageRank shift, clustering shift, instance
// churn, usage shift).
func ExtendedMeasures() []Measure { return measures.ExtendedSet() }

// NewExtendedMeasureRegistry returns a registry with ExtendedMeasures.
func NewExtendedMeasureRegistry() *MeasureRegistry { return measures.NewExtendedRegistry() }

// Contribution is one entity's share of a relatedness score.
type Contribution = recommend.Contribution

// Explain decomposes why an item is related to a user into its top-n
// contributing entities.
func Explain(u *Profile, it Item, n int) []Contribution {
	return recommend.Explain(u, it, n)
}

// ExplainText renders an explanation as one human-readable sentence.
func ExplainText(u *Profile, it Item, n int) string {
	return recommend.ExplainText(u, it, n)
}

// ---------------------------------------------------------------------------
// Query

// QueryAtom is one position of a triple pattern: term or variable.
type QueryAtom = query.Atom

// QueryPattern is one triple pattern of a basic graph pattern.
type QueryPattern = query.Pattern

// QueryFilter prunes bindings during evaluation.
type QueryFilter = query.Filter

// Query is a basic graph pattern with filters, projection, order and limit.
type Query = query.Query

// QueryBinding maps variable names to terms.
type QueryBinding = query.Binding

// QueryResult holds the projected variables and matched rows.
type QueryResult = query.Result

// Var returns a variable atom for query patterns.
func Var(name string) QueryAtom { return query.V(name) }

// Const returns a concrete atom for query patterns.
func Const(t Term) QueryAtom { return query.C(t) }

// RunQuery evaluates a basic-graph-pattern query against a graph.
func RunQuery(g *Graph, q *Query) (*QueryResult, error) { return query.Run(g, q) }

// ---------------------------------------------------------------------------
// Feedback learning and richer fairness diagnostics

// Learner updates interest profiles from accept/reject feedback.
type Learner = recommend.Learner

// NewLearner returns a feedback learner with the given rate in (0,1].
func NewLearner(rate float64) (*Learner, error) { return recommend.NewLearner(rate) }

// BuildItemsParallel is BuildItems with concurrent measure evaluation.
func BuildItemsParallel(ctx *MeasureContext, reg *MeasureRegistry) []Item {
	return recommend.BuildItemsParallel(ctx, reg)
}

// Proportionality is the fraction of group members with at least m of
// their personal top-delta measures in the selection.
func Proportionality(g *Group, items []Item, sel []Recommendation, m, delta int) float64 {
	return recommend.Proportionality(g, items, sel, m, delta)
}

// EnvySpread is the satisfaction gap between the best- and worst-served
// group members (0 = envy-free).
func EnvySpread(g *Group, items []Item, sel []Recommendation) float64 {
	return recommend.EnvySpread(g, items, sel)
}

// ---------------------------------------------------------------------------
// Schema summarization

// SchemaSummary is a relevance-selected, connected view of one version's
// schema (after Troullinou et al. [15]).
type SchemaSummary = summary.Summary

// Summarize builds the k-class relevance summary of a graph.
func Summarize(g *Graph, k int) (*SchemaSummary, error) { return summary.Summarize(g, k) }

// ---------------------------------------------------------------------------
// Notifications and the university workload

// Notification tells a user that data they care about evolved (paper §I).
type Notification = core.Notification

// UniversityConfig sizes the LUBM-flavored university workload.
type UniversityConfig = synth.UniversityConfig

// DefaultUniversity returns a mid-sized university workload config.
func DefaultUniversity() UniversityConfig { return synth.DefaultUniversity() }

// GenerateUniversityVersions builds an evolving university dataset.
func GenerateUniversityVersions(cfg UniversityConfig, ev EvolveConfig, steps int, seed int64) (*VersionStore, []Term, error) {
	return synth.GenerateUniversityVersions(cfg, ev, steps, seed)
}

// WriteProfileJSON serializes a profile (IRI interests + seen history).
func WriteProfileJSON(w io.Writer, p *Profile) error { return p.WriteJSON(w) }

// ReadProfileJSON deserializes a profile written by WriteProfileJSON.
func ReadProfileJSON(r io.Reader) (*Profile, error) { return profile.ReadJSON(r) }

// ---------------------------------------------------------------------------
// Concurrent evolution service and HTTP API

// Service is the concurrency-safe multi-dataset registry: each named
// dataset wraps one engine behind a reader/writer lock with per-pair
// singleflight, serves recommendations to concurrent clients, and accepts
// version commits at runtime (see DESIGN.md §7).
type Service = service.Service

// ServiceConfig parameterizes a Service.
type ServiceConfig = service.Config

// ServiceDataset is the thread-safe facade over one dataset's engine.
type ServiceDataset = service.Dataset

// ServiceInfo is a dataset inspection snapshot (versions, cache counters).
type ServiceInfo = service.Info

// ServiceCommitInfo reports what a runtime version commit did.
type ServiceCommitInfo = service.CommitInfo

// ServiceDeltaStats summarizes one pair's evolution for inspection.
type ServiceDeltaStats = service.DeltaStats

// Service sentinel errors; the HTTP layer maps them to statuses.
var (
	ErrUnknownDataset   = service.ErrUnknownDataset
	ErrUnknownVersion   = service.ErrUnknownVersion
	ErrDuplicateVersion = service.ErrDuplicateVersion
	ErrDuplicateDataset = service.ErrDuplicateDataset
	ErrCommitBusy       = service.ErrCommitBusy
	ErrDatasetClosed    = service.ErrDatasetClosed
	ErrDegraded         = service.ErrDegraded
	ErrBuildBusy        = service.ErrBuildBusy
)

// Resilience defaults: the cold pair-build concurrency gate and the
// degraded-dataset heal probe's backoff window.
const (
	DefaultBuildConcurrency = service.DefaultBuildConcurrency
	DefaultHealBackoff      = service.DefaultHealBackoff
	DefaultHealBackoffMax   = service.DefaultHealBackoffMax
)

// NewService returns an empty dataset registry.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// HTTPServer is the HTTP JSON API over a Service; it implements
// http.Handler, so it mounts on any mux or server ("evorec serve" wires it
// to a listener).
type HTTPServer = server.Server

// NewHTTPServer builds the HTTP API over the service.
func NewHTTPServer(svc *Service) *HTTPServer { return server.New(svc) }

// ---------------------------------------------------------------------------
// Subscriptions & feed

// Feed is one dataset's subscription subsystem: a persistent subscriber
// registry behind an inverted interest index (keyed on dictionary TermIDs),
// commit-triggered fan-out that scores only index-matched subscribers, and
// durable per-user feed logs with monotonic cursors (see DESIGN.md §8).
type Feed = feed.Feed

// FeedConfig parameterizes a Feed; the zero value is a usable in-memory
// feed.
type FeedConfig = feed.Config

// FeedEntry is one feed log entry: a notification under its cursor.
type FeedEntry = feed.Entry

// FeedStats reports what one commit-triggered fan-out did.
type FeedStats = feed.Stats

// SubscriberInfo is one registered subscriber.
type SubscriberInfo = feed.SubscriberInfo

// Feed defaults (zero FeedConfig values resolve to these).
const (
	FeedDefaultWorkers   = feed.DefaultWorkers
	FeedDefaultMaxLog    = feed.DefaultMaxLog
	FeedDefaultThreshold = feed.DefaultThreshold
	FeedDefaultK         = feed.DefaultK
)

// ErrUnknownSubscriber reports a subscriber ID with no registration and no
// retained feed log.
var ErrUnknownSubscriber = feed.ErrUnknownSubscriber

// OpenFeed builds a feed, loading persisted state when cfg.Dir holds a
// manifest. Service datasets open their feeds automatically; OpenFeed is
// the standalone entry point (benchmarks, offline tooling).
func OpenFeed(cfg FeedConfig) (*Feed, error) { return feed.Open(cfg) }

// ---------------------------------------------------------------------------
// Observability

// MetricsRegistry is the process-wide instrument registry: atomic counters,
// gauges and fixed-bucket histograms with Prometheus text exposition and an
// expvar mirror (see DESIGN.md §11). Registration is get-or-create, so
// every layer binding the same metric name shares one series.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// HTTPServerConfig parameterizes the HTTP layer (Retry-After hint, metrics
// registry, structured access logger). The zero value reproduces
// NewHTTPServer.
type HTTPServerConfig = server.Config

// DefaultRetryAfterSeconds is the Retry-After hint a zero HTTPServerConfig
// sends with 503 responses.
const DefaultRetryAfterSeconds = server.DefaultRetryAfterSeconds

// NewHTTPServerWithConfig builds the HTTP API over the service with
// explicit observability configuration.
func NewHTTPServerWithConfig(svc *Service, cfg HTTPServerConfig) *HTTPServer {
	return server.NewWithConfig(svc, cfg)
}

// NewLogger returns a text slog.Logger at the named level ("debug", "info",
// "warn", "error"; anything else means info) writing to w.
func NewLogger(w io.Writer, level string) *slog.Logger { return obs.NewLogger(w, level) }

// OpsBuildInfo is the static identity /healthz reports.
type OpsBuildInfo = obs.BuildInfo

// ServiceBuildInfo extracts the running binary's build identity (toolchain,
// VCS revision) under the given service name.
func ServiceBuildInfo(service string) OpsBuildInfo { return obs.FromBuildInfo(service) }

// NewOpsMux bundles the operator surface — GET /metrics, GET /healthz,
// /debug/pprof/*, /debug/vars — on one mux, meant for a separate loopback
// listener (`evorec serve -ops-addr`).
func NewOpsMux(reg *MetricsRegistry, info OpsBuildInfo, dynamic func() map[string]any) *http.ServeMux {
	return obs.NewOpsMux(reg, info, dynamic)
}

// OpsMuxConfig parameterizes the full operator surface, adding the
// readiness probe (/readyz) and the trace ring (/debug/traces) to what
// NewOpsMux mounts.
type OpsMuxConfig = obs.OpsConfig

// NewOpsMuxWithConfig builds the operator mux from an explicit
// configuration.
func NewOpsMuxWithConfig(cfg OpsMuxConfig) *http.ServeMux { return obs.OpsMux(cfg) }

// Tracer is the request-scoped tracing substrate: W3C traceparent
// join/mint, head sampling, a fixed ring of completed traces served at
// GET /debug/traces, and slow-trace logging (see DESIGN.md §12).
type Tracer = obs.Tracer

// TracerConfig parameterizes a Tracer; the zero value samples everything
// into a DefaultTraceRing-sized ring and never logs slow traces.
type TracerConfig = obs.TracerConfig

// DefaultTraceRing is the trace ring capacity a zero TracerConfig keeps.
const DefaultTraceRing = obs.DefaultTraceRing

// NewTracer builds a tracer. Wire it into HTTPServerConfig.Tracer (root
// spans per request), ServiceConfig.Tracer (store/feed child spans) and
// OpsMuxConfig.Tracer (/debug/traces) — the same instance in all three.
func NewTracer(cfg TracerConfig) *Tracer { return obs.NewTracer(cfg) }

// FeedTelemetry is the feed subsystem's fan-out observation hook.
type FeedTelemetry = feed.Telemetry

// NewFeedTelemetry returns a telemetry sink recording fan-out series into
// reg, for standalone feeds (OpenFeed); service datasets wire their feeds
// automatically through ServiceConfig.Metrics. A nil registry returns a
// nil hook.
func NewFeedTelemetry(reg *MetricsRegistry) FeedTelemetry {
	if reg == nil {
		return nil
	}
	return obs.NewFeedSink(reg)
}

// ParseLatencyBuckets parses a comma-separated histogram bucket schedule in
// seconds for HTTPServerConfig.LatencyBuckets: at least one bound, every
// bound positive and finite, strictly increasing (`serve -latency-buckets`).
func ParseLatencyBuckets(spec string) ([]float64, error) { return obs.ParseBuckets(spec) }

// ---------------------------------------------------------------------------
// Workload simulation

// SimConfig parameterizes the deterministic workload simulator: seed,
// operation budget, pacing, concurrency, dataset/user population, and the
// endpoints to drive (see DESIGN.md §13).
type SimConfig = sim.Config

// SimPlan is a fully pre-generated operation schedule. Two plans built from
// equal configs are byte-identical (WriteOpLog proves it), which is what
// makes a soak run reproducible: execution timing varies, the workload
// never does.
type SimPlan = sim.Plan

// SimResult carries the outcome of a soak run: throughput, client/server
// latency, invariant and telemetry-conservation verdicts, and the final
// metrics snapshot for BENCH artifacts.
type SimResult = sim.Result

// SimInProcess is a self-contained evorec service stack (store, service,
// API listener, ops listener) on loopback ephemeral ports, for `evorec sim`
// runs without an external server.
type SimInProcess = sim.InProcess

// SimServerOptions parameterizes StartSimInProcess.
type SimServerOptions = sim.InProcOptions

// BuildSimPlan pre-generates the deterministic operation schedule for cfg.
func BuildSimPlan(cfg SimConfig) (*SimPlan, error) { return sim.BuildPlan(cfg) }

// StartSimInProcess boots the in-process service stack seeded with the
// plan's backed datasets. Callers must Close it.
func StartSimInProcess(plan *SimPlan, opt SimServerOptions) (*SimInProcess, error) {
	return sim.StartInProcess(plan, opt)
}

// RunSim executes the plan against cfg's endpoints and returns the verdict.
func RunSim(cfg SimConfig, plan *SimPlan) (*SimResult, error) { return sim.Run(cfg, plan) }
