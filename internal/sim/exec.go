package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"evorec/internal/core"
	"evorec/internal/profile"
	"evorec/internal/rdf"
)

// ---------------------------------------------------------------------------
// HTTP plumbing

// do issues one request and tallies it under (route, method, class) — the
// same label set the server's evorec_http_requests_total carries, which is
// what the final conservation pass equates. Transport errors (no status
// line) are counted separately: the server may or may not have seen the
// request, so every exclusive-use law degrades to advisory when any occur.
func (r *runner) do(method, path string, q url.Values, body []byte, route string) (int, []byte, time.Duration, error) {
	u := r.cfg.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	dur := time.Since(start)
	if err != nil {
		r.transport.Add(1)
		r.viol.addf("transport", "%s %s: %v", method, path, err)
		return 0, nil, dur, err
	}
	defer resp.Body.Close() //nolint:errcheck
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		r.transport.Add(1)
		r.viol.addf("transport", "%s %s: reading body: %v", method, path, err)
		return 0, nil, dur, err
	}
	r.routes.add(route, method, statusClass(resp.StatusCode))
	return resp.StatusCode, b, dur, nil
}

func statusClass(status int) string { return fmt.Sprintf("%dxx", status/100) }

// expect is one invariant check: it counts toward the checks total and
// records a violation when the condition fails.
func (r *runner) expect(cond bool, cat, format string, args ...any) bool {
	r.checks.Add(1)
	if !cond {
		r.viol.addf(cat, format, args...)
	}
	return cond
}

func parseJSON(b []byte, v any) error { return json.Unmarshal(b, v) }

// ---------------------------------------------------------------------------
// Response shapes (mirrors of internal/server's JSON)

type feedStatsResp struct {
	Subscribers int  `json:"subscribers"`
	Affected    int  `json:"affected"`
	Notified    int  `json:"notified"`
	Skipped     bool `json:"skipped"`
}

type commitResp struct {
	ID        string         `json:"id"`
	Triples   int            `json:"triples"`
	Kind      string         `json:"kind"`
	Feed      *feedStatsResp `json:"feed"`
	FeedError string         `json:"feed_error"`
}

type subscribeResp struct {
	ID    string `json:"id"`
	Terms int    `json:"terms"`
}

type recEntryResp struct {
	Rank    int     `json:"rank"`
	Measure string  `json:"measure"`
	Score   float64 `json:"score"`
}

type recommendResp struct {
	User            string         `json:"user"`
	Strategy        string         `json:"strategy"`
	Recommendations []recEntryResp `json:"recommendations"`
}

type groupResp struct {
	Group           string         `json:"group"`
	Members         int            `json:"members"`
	Recommendations []recEntryResp `json:"recommendations"`
}

type notifyResp struct {
	Threshold     float64 `json:"threshold"`
	Notifications []struct {
		User        string  `json:"user"`
		Measure     string  `json:"measure"`
		Relatedness float64 `json:"relatedness"`
	} `json:"notifications"`
}

type feedResp struct {
	User    string `json:"user"`
	After   uint64 `json:"after"`
	Next    uint64 `json:"next"`
	Entries []struct {
		Cursor      uint64  `json:"cursor"`
		Older       string  `json:"older"`
		Newer       string  `json:"newer"`
		Measure     string  `json:"measure"`
		Relatedness float64 `json:"relatedness"`
	} `json:"entries"`
}

type infoResp struct {
	Name        string   `json:"name"`
	Backed      bool     `json:"backed"`
	Versions    []string `json:"versions"`
	Subscribers int      `json:"subscribers"`
	FeedPairs   int      `json:"feed_pairs"`
}

// ---------------------------------------------------------------------------
// Operation execution

func (r *runner) exec(op *Op) {
	d := r.ds[op.Dataset]
	if d == nil {
		r.viol.addf("harness", "op %d references unknown dataset %s", op.Seq, op.Dataset)
		return
	}
	switch op.Kind {
	case OpCreate:
		r.execCreate(op, d)
	case OpCommit:
		r.execCommit(op, d)
	case OpSubscribe, OpUpdate:
		r.execSubscribe(op, d)
	case OpUnsubscribe:
		r.execUnsubscribe(op, d)
	case OpRecommend:
		r.execRecommend(op, d)
	case OpGroupRecommend:
		r.execGroup(op, d)
	case OpNotify:
		r.execNotify(op, d)
	case OpPoll:
		r.execPoll(op, d)
	}
}

func (r *runner) execCreate(op *Op, d *dsState) {
	status, body, dur, err := r.do("POST", "/v1/datasets/"+op.Dataset, nil, nil, routeDataset)
	if err == nil {
		r.lat.record(op.Kind, dur)
	}
	if !r.expect(err == nil && status == http.StatusCreated,
		"status", "create %s = %d (err %v), want 201", op.Dataset, status, err) {
		// Dependent ops are generated after the create, so they would wait on
		// the channel forever; mark the dataset broken and release them.
		d.broken = true
		close(d.created)
		return
	}
	var info infoResp
	if r.expect(parseJSON(body, &info) == nil, "shape", "create %s: bad JSON", op.Dataset) {
		r.expect(info.Name == op.Dataset && !info.Backed && len(info.Versions) == 0,
			"shape", "create %s: unexpected info %+v", op.Dataset, info)
	}
	close(d.created)
}

func (r *runner) execCommit(op *Op, d *dsState) {
	if !r.waitCreated(d) || d.broken {
		return
	}
	// Register the commit's fan-out pair as pending BEFORE the POST: the
	// server appends feed entries before the commit ack resolves, so a
	// concurrent poll may legitimately see the pair first. Commits per
	// dataset are serialized by affinity dispatch, so lastAcked here is the
	// exact chain tip the server will pair the new version with.
	d.mu.Lock()
	prev := d.lastAcked
	d.pendVer[op.VersionID] = true
	var pk entryKey
	if prev != "" {
		pk = pairKey(prev, op.VersionID)
		d.pendPair[pk] = true
	}
	d.mu.Unlock()

	status, body, dur, err := r.do("POST",
		"/v1/datasets/"+op.Dataset+"/versions/"+op.VersionID, nil, op.Body, routeCommit)
	if err != nil {
		// Indeterminate: the server may have applied the commit. The version
		// and pair stay pending forever, downgrading every check that
		// touches them to race-tolerant.
		d.mu.Lock()
		d.commitsFail++
		d.mu.Unlock()
		return
	}
	r.lat.record(op.Kind, dur)

	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case status == http.StatusCreated:
		delete(d.pendVer, op.VersionID)
		d.acked[op.VersionID] = true
		d.versions = append(d.versions, op.VersionID)
		d.lastAcked = op.VersionID
		d.commits2xx++
		if !d.backed {
			d.memCommits++
		}
		if prev != "" {
			delete(d.pendPair, pk)
			d.ackedPair[pk] = true
		}
		var resp commitResp
		if !r.expect(parseJSON(body, &resp) == nil, "shape", "commit %s/%s: bad JSON", op.Dataset, op.VersionID) {
			return
		}
		r.expect(resp.ID == op.VersionID && resp.Triples > 0,
			"shape", "commit %s/%s: ack id=%q triples=%d", op.Dataset, op.VersionID, resp.ID, resp.Triples)
		r.expect(resp.FeedError == "", "feed_error",
			"commit %s/%s: degraded fan-out: %s", op.Dataset, op.VersionID, resp.FeedError)
		if prev == "" {
			// First version of the chain: nothing to pair, no fan-out ran.
			r.expect(resp.Feed == nil, "fanout",
				"commit %s/%s: fan-out reported for a first version: %+v", op.Dataset, op.VersionID, resp.Feed)
		} else if f := resp.Feed; f != nil {
			// Fan-out ran. With zero registered subscribers at apply time the
			// server skips it entirely (Feed stays nil) — and subscriptions
			// race commits, so a nil Feed on a non-first commit is legitimate
			// and simply not counted.
			r.expect(!f.Skipped, "fanout",
				"commit %s/%s: fan-out ledger-skipped for a fresh pair", op.Dataset, op.VersionID)
			r.expect(f.Affected <= f.Subscribers && f.Notified >= 0, "fanout",
				"commit %s/%s: affected %d > subscribers %d", op.Dataset, op.VersionID, f.Affected, f.Subscribers)
			if f.Skipped {
				d.fanSkipped++
			} else {
				d.fanouts++
				d.notified += int64(f.Notified)
			}
		}
		r.ingestShadowLocked(op, d)

	case status == http.StatusServiceUnavailable:
		// Rejected without landing: whether the queue shed it, the degraded
		// gate refused it, or the WAL fault struck mid-batch, the version
		// never exists server-side — later ops referencing it must 404.
		// The error body says which server counter this 503 reconciles
		// with (mid-commit wraps the degraded sentinel, so test it first).
		delete(d.pendVer, op.VersionID)
		delete(d.pendPair, pk)
		d.commits503++
		var eb struct {
			Error string `json:"error"`
		}
		switch err := parseJSON(body, &eb); {
		case err == nil && strings.Contains(eb.Error, "mid-commit"):
			d.commitsMid503++
		case err == nil && strings.Contains(eb.Error, "degraded"):
			d.commitsDegraded503++
		default:
			d.commitsBusy503++
		}

	default:
		delete(d.pendVer, op.VersionID)
		delete(d.pendPair, pk)
		r.expect(false, "status", "commit %s/%s = %d, want 201 or 503",
			op.Dataset, op.VersionID, status)
	}
}

// ingestShadowLocked feeds an acked commit body into the dataset's
// reference engine (caller holds d.mu). The shadow parses the exact bytes
// the server parsed, so sampled recommendations can be compared bitwise.
func (r *runner) ingestShadowLocked(op *Op, d *dsState) {
	if d.refEng == nil {
		return
	}
	if d.refDict == nil {
		d.refDict = rdf.NewDict()
	}
	g := rdf.NewGraphWithDict(d.refDict)
	if err := rdf.ReadNTriplesInto(g, bytes.NewReader(op.Body)); err != nil {
		r.viol.addf("harness", "shadow parse %s/%s: %v", op.Dataset, op.VersionID, err)
		d.refEng = nil // parity is meaningless from here on
		return
	}
	if err := d.refEng.Ingest(&rdf.Version{ID: op.VersionID, Graph: g}); err != nil {
		r.viol.addf("harness", "shadow ingest %s/%s: %v", op.Dataset, op.VersionID, err)
		d.refEng = nil
	}
}

func (r *runner) execSubscribe(op *Op, d *dsState) {
	if !r.waitCreated(d) || d.broken {
		return
	}
	// Subscriber ops for one (dataset, user) are serialized by affinity
	// dispatch, so the shadow's active flag is exact at send time.
	d.mu.Lock()
	wasActive := d.user(op.User).active
	d.mu.Unlock()
	body, _ := json.Marshal(map[string]string{"interests": op.Interests})
	status, respBody, dur, err := r.do("PUT",
		"/v1/datasets/"+op.Dataset+"/subscribers/"+op.User, nil, body, routeSub)
	if err != nil {
		return
	}
	r.lat.record(op.Kind, dur)
	want := http.StatusCreated
	if wasActive {
		want = http.StatusOK
	}
	if !r.expect(status == want, "status",
		"subscribe %s/%s = %d, want %d (active=%v)", op.Dataset, op.User, status, want, wasActive) {
		return
	}
	var resp subscribeResp
	if r.expect(parseJSON(respBody, &resp) == nil, "shape", "subscribe %s/%s: bad JSON", op.Dataset, op.User) {
		r.expect(resp.ID == op.User && resp.Terms >= 1, "shape",
			"subscribe %s/%s: ack id=%q terms=%d", op.Dataset, op.User, resp.ID, resp.Terms)
	}
	d.mu.Lock()
	u := d.user(op.User)
	u.active, u.everSub = true, true
	d.mu.Unlock()
}

func (r *runner) execUnsubscribe(op *Op, d *dsState) {
	if !r.waitCreated(d) || d.broken {
		return
	}
	d.mu.Lock()
	wasActive := d.user(op.User).active
	d.mu.Unlock()
	status, _, dur, err := r.do("DELETE",
		"/v1/datasets/"+op.Dataset+"/subscribers/"+op.User, nil, nil, routeSub)
	if err != nil {
		return
	}
	r.lat.record(op.Kind, dur)
	want := http.StatusOK
	if !wasActive {
		want = http.StatusNotFound
	}
	if r.expect(status == want, "status",
		"unsubscribe %s/%s = %d, want %d (active=%v)", op.Dataset, op.User, status, want, wasActive) &&
		status == http.StatusOK {
		d.mu.Lock()
		d.user(op.User).active = false
		d.mu.Unlock()
	}
}

// pairState classifies a version pair against the shadow at one instant.
type pairState struct {
	bothAcked bool // both versions acked — the server must serve the pair
	bothKnown bool // both versions acked or pending — 200 is plausible
}

func (d *dsState) pairStateLocked(older, newer string) pairState {
	known := func(v string) bool { return d.acked[v] || d.pendVer[v] }
	return pairState{
		bothAcked: d.acked[older] && d.acked[newer],
		bothKnown: known(older) && known(newer),
	}
}

// checkPairStatus applies the race-tolerant status rule for read ops over a
// version pair: a 200 requires both versions known (acked or in flight) at
// response time; a 404 requires that the pair was NOT fully acked at send
// time. Anything between is a commit racing the read, which is legitimate.
func (r *runner) checkPairStatus(what string, op *Op, d *dsState, status int, before pairState) bool {
	switch status {
	case http.StatusOK:
		d.mu.Lock()
		after := d.pairStateLocked(op.Older, op.Newer)
		d.mu.Unlock()
		r.expect(after.bothKnown, "status",
			"%s %s %s..%s = 200 but a version was never committed", what, op.Dataset, op.Older, op.Newer)
		return after.bothKnown
	case http.StatusNotFound:
		r.expect(!before.bothAcked, "status",
			"%s %s %s..%s = 404 but both versions were acked", what, op.Dataset, op.Older, op.Newer)
		return false
	case http.StatusServiceUnavailable:
		// Load shed: the cold pair-build gate refused the build. Legitimate
		// under pressure — tallied and reconciled against the server's
		// rejection counter; degraded datasets still serve reads, so this
		// never means the write fault leaked into the read path.
		r.reads503.Add(1)
		return false
	default:
		r.expect(false, "status", "%s %s %s..%s = %d, want 200, 404 or 503",
			what, op.Dataset, op.Older, op.Newer, status)
		return false
	}
}

func (r *runner) execRecommend(op *Op, d *dsState) {
	if !r.waitCreated(d) || d.broken {
		return
	}
	d.mu.Lock()
	before := d.pairStateLocked(op.Older, op.Newer)
	d.mu.Unlock()
	q := url.Values{}
	q.Set("older", op.Older)
	q.Set("newer", op.Newer)
	q.Set("k", fmt.Sprint(op.K))
	q.Set("strategy", op.Strategy)
	q.Set("user_id", op.User)
	q.Set("interests", op.Interests)
	status, body, dur, err := r.do("GET", "/v1/datasets/"+op.Dataset+"/recommend", q, nil, routeRec)
	if err != nil {
		return
	}
	r.lat.record(op.Kind, dur)
	if !r.checkPairStatus("recommend", op, d, status, before) {
		return
	}
	var resp recommendResp
	if !r.expect(parseJSON(body, &resp) == nil, "shape", "recommend %s: bad JSON", op.Dataset) {
		return
	}
	r.expect(resp.User == op.User && resp.Strategy == op.Strategy, "shape",
		"recommend %s: echo user=%q strategy=%q", op.Dataset, resp.User, resp.Strategy)
	r.checkRanking(op, resp.Recommendations, op.Strategy == "plain")
	if op.Parity && before.bothAcked {
		r.checkParity(op, d, resp.Recommendations)
	}
}

// checkRanking verifies the universal list invariants: bounded by k, ranks
// 1..n, and (for score-ranked strategies) non-increasing scores.
func (r *runner) checkRanking(op *Op, recs []recEntryResp, scoreOrdered bool) {
	r.expect(len(recs) <= op.K, "ranking",
		"%s %s: %d recommendations > k=%d", op.Kind, op.Dataset, len(recs), op.K)
	for i, rec := range recs {
		r.expect(rec.Rank == i+1, "ranking",
			"%s %s: rank[%d] = %d", op.Kind, op.Dataset, i, rec.Rank)
		if scoreOrdered && i > 0 {
			r.expect(recs[i-1].Score >= rec.Score, "ranking",
				"%s %s: scores not monotone at rank %d (%g < %g)",
				op.Kind, op.Dataset, i+1, recs[i-1].Score, rec.Score)
		}
	}
}

// checkParity recomputes a sampled plain recommendation on the reference
// engine — same profile grammar, same bytes, the unindexed scoring path —
// and compares measure IDs and scores bitwise. Go's float64 JSON round-trip
// is exact, so any drift is a real indexed-vs-reference divergence.
func (r *runner) checkParity(op *Op, d *dsState, got []recEntryResp) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.refEng == nil || !d.acked[op.Older] || !d.acked[op.Newer] {
		return
	}
	u, err := profile.ParseInterests(op.User, op.Interests)
	if err != nil {
		r.viol.addf("harness", "parity %s: parsing interests: %v", op.Dataset, err)
		return
	}
	want, err := d.refEng.Recommend(u, core.Request{
		OlderID: op.Older, NewerID: op.Newer, K: op.K, Strategy: core.Plain,
	})
	if err != nil {
		r.viol.addf("harness", "parity %s %s..%s: reference engine: %v", op.Dataset, op.Older, op.Newer, err)
		return
	}
	r.parityChecked.Add(1)
	if !r.expect(len(want) == len(got), "parity",
		"recommend %s %s..%s k=%d: %d results, reference says %d",
		op.Dataset, op.Older, op.Newer, op.K, len(got), len(want)) {
		return
	}
	for i := range want {
		r.expect(want[i].MeasureID == got[i].Measure && want[i].Score == got[i].Score, "parity",
			"recommend %s %s..%s rank %d: got %s=%v, reference %s=%v",
			op.Dataset, op.Older, op.Newer, i+1,
			got[i].Measure, got[i].Score, want[i].MeasureID, want[i].Score)
	}
}

func (r *runner) execGroup(op *Op, d *dsState) {
	if !r.waitCreated(d) || d.broken {
		return
	}
	d.mu.Lock()
	before := d.pairStateLocked(op.Older, op.Newer)
	d.mu.Unlock()
	q := url.Values{}
	q.Set("older", op.Older)
	q.Set("newer", op.Newer)
	q.Set("k", fmt.Sprint(op.K))
	q.Set("agg", op.Agg)
	for _, m := range op.Members {
		q.Add("member", m)
	}
	status, body, dur, err := r.do("GET", "/v1/datasets/"+op.Dataset+"/recommend/group", q, nil, routeGroup)
	if err != nil {
		return
	}
	r.lat.record(op.Kind, dur)
	if !r.checkPairStatus("group-recommend", op, d, status, before) {
		return
	}
	var resp groupResp
	if !r.expect(parseJSON(body, &resp) == nil, "shape", "group %s: bad JSON", op.Dataset) {
		return
	}
	r.expect(resp.Members == len(op.Members), "shape",
		"group %s: %d members echoed, sent %d", op.Dataset, resp.Members, len(op.Members))
	r.checkRanking(op, resp.Recommendations, true)
}

func (r *runner) execNotify(op *Op, d *dsState) {
	if !r.waitCreated(d) || d.broken {
		return
	}
	d.mu.Lock()
	before := d.pairStateLocked(op.Older, op.Newer)
	d.mu.Unlock()
	q := url.Values{}
	q.Set("older", op.Older)
	q.Set("newer", op.Newer)
	q.Set("k", fmt.Sprint(op.K))
	q.Set("threshold", fmt.Sprint(op.Threshold))
	users := make(map[string]int, len(op.Members))
	for _, m := range op.Members {
		q.Add("user", m)
		if id, _, ok := strings.Cut(m, ":"); ok {
			users[id] = 0
		}
	}
	status, body, dur, err := r.do("GET", "/v1/datasets/"+op.Dataset+"/notify", q, nil, routeNotify)
	if err != nil {
		return
	}
	r.lat.record(op.Kind, dur)
	if !r.checkPairStatus("notify", op, d, status, before) {
		return
	}
	var resp notifyResp
	if !r.expect(parseJSON(body, &resp) == nil, "shape", "notify %s: bad JSON", op.Dataset) {
		return
	}
	for _, n := range resp.Notifications {
		if _, ok := users[n.User]; !r.expect(ok, "notify",
			"notify %s: notification for %q, not in the requested pool", op.Dataset, n.User) {
			continue
		}
		users[n.User]++
		r.expect(n.Relatedness >= op.Threshold, "notify",
			"notify %s: relatedness %g below threshold %g for %s", op.Dataset, n.Relatedness, op.Threshold, n.User)
	}
	for id, n := range users {
		r.expect(n <= op.K, "notify",
			"notify %s: %d notifications for %s > k=%d", op.Dataset, n, id, op.K)
	}
}

func (r *runner) execPoll(op *Op, d *dsState) {
	if !r.waitCreated(d) || d.broken {
		return
	}
	r.pollOnce(d, op.User, false)
}

// pollOnce performs one feed poll with a cursor ack for the user,
// returning how many entries arrived. Poll ops share the subscriber
// affinity key, so the shadow's cursor and everSub flag are exact.
func (r *runner) pollOnce(d *dsState, user string, drain bool) (int, bool) {
	if d.broken {
		return 0, false
	}
	d.mu.Lock()
	u := d.user(user)
	after, everSub, active, drained := u.cursor, u.everSub, u.active, u.entries
	d.mu.Unlock()
	limit := 100
	if drain {
		limit = 500
	}
	q := url.Values{}
	q.Set("after", fmt.Sprint(after))
	q.Set("limit", fmt.Sprint(limit))
	status, body, dur, err := r.do("GET", "/v1/datasets/"+d.name+"/feed/"+user, q, nil, routeFeed)
	if err != nil {
		return 0, false
	}
	if !drain {
		r.lat.record(OpPoll, dur)
	}
	// Poll status semantics: an active subscriber always has a feed (200); a
	// user who never subscribed has none (404 — the negative half of the
	// delivery invariant). Between the two — subscribed once, unsubscribed
	// since — the log is retained only if a delivery ever happened, and the
	// shadow knows only a lower bound on deliveries (what it has drained):
	// 404 is a violation only when entries were already drained.
	switch {
	case !everSub:
		if !r.expect(status == http.StatusNotFound, "status",
			"poll %s/%s = %d, want 404 (never subscribed)", d.name, user, status) {
			return 0, false
		}
		return 0, false
	case !active && status == http.StatusNotFound:
		r.expect(drained == 0, "status",
			"poll %s/%s = 404 after draining %d entries (log must be retained)", d.name, user, drained)
		return 0, false
	}
	if !r.expect(status == http.StatusOK, "status",
		"poll %s/%s = %d, want 200 (active=%v)", d.name, user, status, active) {
		return 0, false
	}
	var resp feedResp
	if !r.expect(parseJSON(body, &resp) == nil, "shape", "poll %s/%s: bad JSON", d.name, user) {
		return 0, false
	}
	r.expect(resp.User == user && resp.After == after, "shape",
		"poll %s/%s: echo user=%q after=%d (sent %d)", d.name, user, resp.User, resp.After, after)
	// Cursor monotonicity: next never regresses, entries strictly increase
	// past the acked cursor, and next lands on the last entry returned.
	r.expect(resp.Next >= after, "cursor",
		"poll %s/%s: next %d regressed below acked %d", d.name, user, resp.Next, after)
	last := after
	d.mu.Lock()
	for _, e := range resp.Entries {
		r.expect(e.Cursor > last, "cursor",
			"poll %s/%s: cursor %d not past %d", d.name, user, e.Cursor, last)
		last = e.Cursor
		key := entryKey{older: e.Older, newer: e.Newer, measure: e.Measure}
		r.expect(!u.seen[key], "delivery",
			"poll %s/%s: duplicate delivery of %s..%s %s", d.name, user, e.Older, e.Newer, e.Measure)
		u.seen[key] = true
		pk := pairKey(e.Older, e.Newer)
		r.expect(d.ackedPair[pk] || d.pendPair[pk], "delivery",
			"poll %s/%s: entry for pair %s..%s that was never committed", d.name, user, e.Older, e.Newer)
		r.expect(e.Measure != "", "shape", "poll %s/%s: empty measure at cursor %d", d.name, user, e.Cursor)
	}
	if len(resp.Entries) > 0 {
		r.expect(resp.Next == last, "cursor",
			"poll %s/%s: next %d != last cursor %d", d.name, user, resp.Next, last)
	}
	u.cursor = resp.Next
	u.entries += len(resp.Entries)
	d.mu.Unlock()
	return len(resp.Entries), true
}

// execInspect cross-checks GET /v1/datasets/{name} against the shadow at
// the end of the run (single-threaded: no racing ops). The strict equality
// checks only apply when every commit resolved determinately.
func (r *runner) execInspect(d *dsState) {
	if d.broken {
		return
	}
	status, body, _, err := r.do("GET", "/v1/datasets/"+d.name, nil, nil, routeDataset)
	if err != nil {
		return
	}
	if !r.expect(status == http.StatusOK, "status", "inspect %s = %d, want 200", d.name, status) {
		return
	}
	var resp infoResp
	if !r.expect(parseJSON(body, &resp) == nil, "shape", "inspect %s: bad JSON", d.name) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	r.expect(resp.Name == d.name && resp.Backed == d.backed, "shape",
		"inspect %s: name=%q backed=%v", d.name, resp.Name, resp.Backed)
	if d.commitsFail > 0 || len(d.pendVer) > 0 {
		return // indeterminate commits: the chain is only comparable loosely
	}
	chainEq := len(resp.Versions) == len(d.versions)
	if chainEq {
		for i := range d.versions {
			chainEq = chainEq && resp.Versions[i] == d.versions[i]
		}
	}
	r.expect(chainEq, "inspect",
		"inspect %s: version chain %v, shadow %v", d.name, resp.Versions, d.versions)
	active := 0
	for _, u := range d.users {
		if u.active {
			active++
		}
	}
	r.expect(resp.Subscribers == active, "inspect",
		"inspect %s: %d subscribers, shadow %d", d.name, resp.Subscribers, active)
	r.expect(resp.FeedPairs == d.fanouts, "inspect",
		"inspect %s: %d feed pairs, shadow fanned out %d", d.name, resp.FeedPairs, d.fanouts)
}
