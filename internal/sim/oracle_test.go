package sim

import (
	"math"
	"testing"
)

// TestParseExposition pins the exposition parser against the exact shapes
// the registry emits — including braces inside quoted label values, which a
// naive split-on-'}' parser corrupts.
func TestParseExposition(t *testing.T) {
	const text = `# HELP evorec_http_requests_total Requests.
# TYPE evorec_http_requests_total counter
evorec_http_requests_total{class="2xx",method="GET",route="/v1/datasets/{name}"} 41
evorec_http_requests_total{class="5xx",method="POST",route="/v1/datasets/{name}/versions/{id}"} 2
evorec_http_in_flight 0
evorec_http_request_seconds_bucket{le="0.005",route="/v1/datasets/{name}"} 30
evorec_http_request_seconds_bucket{le="0.05",route="/v1/datasets/{name}"} 40
evorec_http_request_seconds_bucket{le="+Inf",route="/v1/datasets/{name}"} 41
evorec_http_request_seconds_sum{route="/v1/datasets/{name}"} 0.25
evorec_http_request_seconds_count{route="/v1/datasets/{name}"} 41
evorec_weird{q="a\"b"} NaN
`
	snap, err := parseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.value("evorec_http_requests_total",
		map[string]string{"route": "/v1/datasets/{name}", "method": "GET", "class": "2xx"}); got != 41 {
		t.Errorf("requests_total = %g, want 41", got)
	}
	if got := snap.value("evorec_http_requests_total",
		map[string]string{"route": "/v1/datasets/{name}/versions/{id}", "method": "POST", "class": "5xx"}); got != 2 {
		t.Errorf("5xx commit total = %g, want 2", got)
	}
	if got, ok := snap.get("evorec_http_in_flight", nil); !ok || got != 0 {
		t.Errorf("in_flight = %g (ok=%v), want 0", got, ok)
	}
	if got := snap.value("evorec_weird", map[string]string{"q": `a"b`}); !math.IsNaN(got) {
		t.Errorf("escaped-quote label value lookup = %g, want NaN", got)
	}

	hists := snap.histograms()
	g := hists[seriesKey("evorec_http_request_seconds", map[string]string{"route": "/v1/datasets/{name}"})]
	if g == nil {
		t.Fatalf("histogram group missing; have %v", len(hists))
	}
	if !g.hasInf || g.infCnt != 41 || g.count != 41 || g.sum != 0.25 {
		t.Errorf("histogram group = %+v, want inf=41 count=41 sum=0.25", g)
	}
	// Quantile interpolation: p50 target 20.5 lands in the first bucket.
	if p50 := g.quantile(0.50); p50 <= 0 || p50 > 0.005 {
		t.Errorf("p50 = %g, want within (0, 0.005]", p50)
	}
	// p99 target 40.59 > cumul 40 at the last finite bound: the estimate is
	// capped at that bound (all the estimator can claim for +Inf landings).
	if p99 := g.quantile(0.99); p99 != 0.05 {
		t.Errorf("p99 = %g, want 0.05 (capped at the highest finite bound)", p99)
	}
}

// TestParseExpositionErrors rejects malformed lines rather than mis-reading
// them.
func TestParseExpositionErrors(t *testing.T) {
	for _, bad := range []string{
		"no_value",
		`unterminated{a="x 1`,
		`unquoted{a=x} 1`,
		"name 12notanumber",
	} {
		if _, err := parseExposition(bad + "\n"); err == nil {
			t.Errorf("parseExposition(%q) accepted a malformed line", bad)
		}
	}
}

func TestMonotoneSeries(t *testing.T) {
	for key, want := range map[string]bool{
		"evorec_http_requests_total{route=\"/x\"}":        true,
		"evorec_wal_fsync_seconds_count":                  true,
		"evorec_commit_batch_size_sum":                    true,
		"evorec_http_request_seconds_bucket{le=\"+Inf\"}": true,
		"evorec_http_in_flight":                           false,
		"evorec_commit_queue_depth":                       false,
		"evorec_wal_size_bytes":                           false,
	} {
		if got := monotoneSeries(key); got != want {
			t.Errorf("monotoneSeries(%q) = %v, want %v", key, got, want)
		}
	}
}
