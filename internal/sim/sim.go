package sim

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evorec/internal/core"
	"evorec/internal/rdf"
)

// API route patterns, as the server's metrics label them. The client tallies
// every request it sends under one of these, which is what lets the final
// oracle pass equate client-side truth with evorec_http_requests_total.
const (
	routeDataset = "/v1/datasets/{name}"
	routeCommit  = "/v1/datasets/{name}/versions/{id}"
	routeSub     = "/v1/datasets/{name}/subscribers/{id}"
	routeFeed    = "/v1/datasets/{name}/feed/{id}"
	routeRec     = "/v1/datasets/{name}/recommend"
	routeGroup   = "/v1/datasets/{name}/recommend/group"
	routeNotify  = "/v1/datasets/{name}/notify"
)

// userState is the shadow model of one (dataset, user) subscriber: the
// cursor it has acked, every entry it has ever seen (for exactly-once
// checking), and whether it ever subscribed (poll expectation).
type userState struct {
	everSub bool
	active  bool
	cursor  uint64
	entries int
	seen    map[entryKey]bool
}

// entryKey identifies one notification: a (pair, measure) must reach a
// given user at most once — the feed ledger's exactly-once guarantee.
type entryKey struct {
	older, newer, measure string
}

// dsState is the shadow model of one dataset, updated only from
// acknowledged responses (acks are ground truth; generation intent is not).
// All fields behind mu; commits are serialized per dataset by affinity
// dispatch, so mu is contended only by concurrent readers.
type dsState struct {
	name    string
	backed  bool
	created chan struct{} // closed once the dataset exists server-side
	broken  bool          // create failed; written before created closes

	mu        sync.Mutex
	lastAcked string
	versions  []string
	acked     map[string]bool
	pendVer   map[string]bool   // commit sent, ack outstanding
	ackedPair map[entryKey]bool // older+newer, measure unused
	pendPair  map[entryKey]bool // commit sent, ack outstanding
	users     map[string]*userState

	commits2xx  int
	commits503  int
	commitsFail int
	fanouts     int // commit responses with delivered feed stats
	fanSkipped  int
	notified    int64
	memCommits  int // 2xx commits on in-memory datasets (WAL law)

	// The 503 split, classified from the error body: queue-full sheds,
	// enqueue-time degraded rejections, and mid-commit degraded failures
	// (the WAL fault struck inside the batch). Each reconciles against
	// its own server counter; their sum is commits503.
	commitsBusy503     int
	commitsDegraded503 int
	commitsMid503      int

	refEng  *core.Engine
	refDict *rdf.Dict
}

func (d *dsState) user(id string) *userState {
	u := d.users[id]
	if u == nil {
		u = &userState{seen: make(map[entryKey]bool)}
		d.users[id] = u
	}
	return u
}

func pairKey(older, newer string) entryKey { return entryKey{older: older, newer: newer} }

// violations accumulates invariant failures: a bounded sample of messages
// plus per-category counts.
type violations struct {
	mu      sync.Mutex
	total   int
	byCat   map[string]int
	samples []string
}

const maxViolationSamples = 40

func (v *violations) addf(cat, format string, args ...any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.byCat == nil {
		v.byCat = make(map[string]int)
	}
	v.total++
	v.byCat[cat]++
	if len(v.samples) < maxViolationSamples {
		v.samples = append(v.samples, cat+": "+fmt.Sprintf(format, args...))
	}
}

func (v *violations) snapshot() (int, map[string]int, []string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cats := make(map[string]int, len(v.byCat))
	for k, n := range v.byCat {
		cats[k] = n
	}
	return v.total, cats, append([]string(nil), v.samples...)
}

// runner is one soak execution: plan in, verdict out.
type runner struct {
	cfg    Config
	plan   *Plan
	client *http.Client
	ds     map[string]*dsState
	lat    *latencyRecorder
	routes *routeTally
	viol   *violations
	checks atomic.Int64

	transport     atomic.Int64
	parityChecked atomic.Int64
	reads503      atomic.Int64 // read-route load sheds (cold-build gate)
	executed      atomic.Int64 // ops workers have finished (chaos barriers)

	readyOK     atomic.Int64
	readyBusy   atomic.Int64
	scrapeCount atomic.Int64
	tracesSeen  atomic.Int64
	traceMaxSeq atomic.Uint64
}

// Run executes the plan against cfg's endpoints: paced dispatch over
// affinity-keyed workers, continuous shadow-model checking, telemetry
// scraping, a full feed drain, and the final conservation pass. The
// returned Result is non-nil whenever err is nil, even if invariants
// failed — callers decide how loudly to fail.
func Run(cfg Config, plan *Plan) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("sim: Config.BaseURL is required")
	}
	if len(plan.Chaos) > 0 && cfg.Fault == nil {
		return nil, fmt.Errorf("sim: plan carries %d chaos windows but Config.Fault is nil", len(plan.Chaos))
	}
	r := &runner{
		cfg:  cfg,
		plan: plan,
		client: &http.Client{
			Timeout: cfg.HTTPTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency * 2,
				MaxIdleConnsPerHost: cfg.Concurrency * 2,
			},
		},
		ds:     make(map[string]*dsState, len(plan.Datasets)),
		lat:    newLatencyRecorder(),
		routes: newRouteTally(),
		viol:   &violations{},
	}
	for _, dp := range plan.Datasets {
		d := &dsState{
			name: dp.Name, backed: dp.Backed,
			created:   make(chan struct{}),
			acked:     make(map[string]bool),
			pendVer:   make(map[string]bool),
			ackedPair: make(map[entryKey]bool),
			pendPair:  make(map[entryKey]bool),
			users:     make(map[string]*userState),
		}
		if cfg.ParityEvery > 0 {
			d.refEng = core.New(core.Config{})
		}
		if dp.Backed {
			// The backed store starts at v0 (StartInProcess persisted the
			// plan's base graph); the shadow and the reference engine start
			// from the same bytes.
			close(d.created)
			d.lastAcked = "v0"
			d.versions = []string{"v0"}
			d.acked["v0"] = true
			if d.refEng != nil {
				d.refDict = dp.Base.Dict()
				if err := d.refEng.Ingest(&rdf.Version{ID: "v0", Graph: dp.Base}); err != nil {
					return nil, fmt.Errorf("sim: seeding reference engine for %s: %w", dp.Name, err)
				}
			}
		}
		r.ds[dp.Name] = d
	}

	start := time.Now()
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	if cfg.OpsURL != "" {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			r.scrapeLoop(stopScrape)
		}()
	}

	// Affinity-keyed dispatch: per-dataset commit order and per-(dataset,
	// user) subscriber order are preserved by routing those ops to a fixed
	// worker; reads round-robin. A worker blocked waiting for a dataset's
	// create can only be waiting on an op dispatched earlier (the
	// generator emits create before any dependent op), so the queues
	// cannot deadlock.
	workers := cfg.Concurrency
	queues := make([]chan *Op, workers)
	for i := range queues {
		queues[i] = make(chan *Op, 128)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(ch chan *Op) {
			defer wg.Done()
			for op := range ch {
				r.exec(op)
				r.executed.Add(1)
			}
		}(queues[i])
	}
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}
	// Chaos windows flip the fault injector at the plan's seeded sequence
	// boundaries. Each flip is a barrier: the dispatcher waits for every
	// dispatched op to finish executing before toggling, so the ops inside
	// a window genuinely run against the armed filesystem (without the
	// barrier, an unpaced dispatcher races so far ahead of the workers
	// that the armed period collapses to microseconds) and ops outside it
	// never see a fault they weren't scheduled for. The shadow still
	// classifies by the response each op actually got, so the laws don't
	// depend on the barrier being exact.
	dispatched := 0
	armed := false
	setChaos := func(on bool) {
		if cfg.Fault == nil || armed == on {
			return
		}
		for r.executed.Load() < int64(dispatched) {
			time.Sleep(time.Millisecond)
		}
		armed = on
		if on {
			cfg.Fault.Arm()
			r.logf("chaos: fault armed")
		} else {
			cfg.Fault.Disarm()
			r.logf("chaos: fault disarmed")
		}
	}
	nextWin := 0
	for i := range plan.Ops {
		op := &plan.Ops[i]
		for nextWin < len(plan.Chaos) {
			if op.Seq >= plan.Chaos[nextWin].DisarmAt {
				setChaos(false)
				nextWin++
				continue
			}
			if op.Seq >= plan.Chaos[nextWin].ArmAt {
				setChaos(true)
			}
			break
		}
		if interval > 0 {
			if due := start.Add(time.Duration(op.Seq) * interval); time.Until(due) > 0 {
				time.Sleep(time.Until(due))
			}
		}
		queues[r.workerFor(op, workers)] <- op
		dispatched++
	}
	for _, ch := range queues {
		close(ch)
	}
	wg.Wait()
	setChaos(false) // a window reaching the end of the schedule still closes
	mainElapsed := time.Since(start)

	// With the fault gone, wait for every degraded dataset to heal, then
	// prove the write path re-accepts commits — before the feed drain, so
	// the heal commits' fan-outs land in the same books as everything else.
	if len(plan.Chaos) > 0 {
		r.chaosHeal()
	}

	// Every commit has acked (fan-out completes before the commit ack), so
	// a full drain now observes every notification ever delivered.
	r.drainFeeds()
	r.inspectDatasets()

	close(stopScrape)
	scrapeWG.Wait()

	var final *snapshot
	if cfg.OpsURL != "" {
		final = r.finalScrape()
		if final != nil {
			r.conservationLaws(final)
		}
	}
	res := r.buildResult(mainElapsed, final)
	return res, nil
}

// workerFor routes an op to its worker: state-mutating ops by affinity key
// (hash of dataset, or dataset+user), reads round-robin by sequence.
func (r *runner) workerFor(op *Op, workers int) int {
	var key string
	switch op.Kind {
	case OpCreate, OpCommit:
		key = "ds\x00" + op.Dataset
	case OpSubscribe, OpUpdate, OpUnsubscribe, OpPoll:
		key = "sub\x00" + op.Dataset + "\x00" + op.User
	default:
		return op.Seq % workers
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(workers))
}

// waitCreated blocks until the dataset exists server-side. The bound is a
// safety net: it can only trip if a create op was lost, which is itself a
// violation worth surfacing rather than hanging the run.
func (r *runner) waitCreated(d *dsState) bool {
	select {
	case <-d.created:
		return true
	case <-time.After(r.cfg.HTTPTimeout + 30*time.Second):
		r.viol.addf("harness", "dataset %s never became available", d.name)
		return false
	}
}

// drainFeeds polls every subscriber that ever subscribed until its log is
// exhausted, through the same checking path as mid-run polls. Afterward the
// shadow model has seen every delivered notification, which is what the
// notified-conservation law sums against.
func (r *runner) drainFeeds() {
	for _, dp := range r.plan.Datasets {
		d := r.ds[dp.Name]
		d.mu.Lock()
		users := make([]string, 0, len(d.users))
		for id, u := range d.users {
			if u.everSub {
				users = append(users, id)
			}
		}
		d.mu.Unlock()
		sort.Strings(users)
		for _, id := range users {
			for i := 0; i < 10000; i++ { // bound: a page of 500 per loop
				n, ok := r.pollOnce(d, id, true)
				if !ok || n == 0 {
					break
				}
			}
		}
	}
}

// inspectDatasets cross-checks each dataset's Info against the shadow:
// acked version chain and active subscriber count.
func (r *runner) inspectDatasets() {
	for _, dp := range r.plan.Datasets {
		d := r.ds[dp.Name]
		r.execInspect(d)
	}
}
