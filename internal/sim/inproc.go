package sim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"evorec/internal/obs"
	"evorec/internal/rdf"
	"evorec/internal/server"
	"evorec/internal/service"
	"evorec/internal/store"
	"evorec/internal/store/vfs"
)

// InProcOptions tunes the self-hosted server a simulation runs against when
// no remote -addr is given.
type InProcOptions struct {
	// Dir roots the backed datasets' store directories and feed logs; empty
	// means a fresh temp directory, removed on Close.
	Dir string
	// LogW receives the server's structured logs; nil means io.Discard.
	LogW io.Writer
	// LogLevel is the slog level name; empty means "warn".
	LogLevel string
	// TraceRing sizes the /debug/traces ring; zero means 4096.
	TraceRing int
	// LatencyBuckets overrides the HTTP latency histogram schedule; nil
	// keeps the default.
	LatencyBuckets []float64
}

// InProcess is a live evorec server stack wired for a simulation: the API
// listener, the operator listener, and a Close that tears both down and
// flushes every dataset.
type InProcess struct {
	BaseURL string
	OpsURL  string

	// Chaos is the fault injector scoped to the backed datasets' store
	// tree (feed persistence is outside it, so fan-out stays durable
	// while stores fail). Armed and disarmed by the runner at the plan's
	// chaos-window boundaries; starts disarmed.
	Chaos *vfs.ChaosFS

	api    *http.Server
	ops    *http.Server
	svc    *service.Service
	tmpdir string // removed on Close when we created it
}

// StartInProcess boots a server stack hosting the plan's datasets: backed
// datasets are persisted to disk first (their base graph as v0, so the
// store opens non-empty and WAL-durable), in-memory datasets are left for
// the plan's create ops. Both listeners bind loopback ephemeral ports.
func StartInProcess(plan *Plan, opt InProcOptions) (*InProcess, error) {
	p := &InProcess{}
	dir := opt.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "evorec-sim-*"); err != nil {
			return nil, fmt.Errorf("sim: temp dir: %w", err)
		}
		p.tmpdir = dir
	}
	fail := func(err error) (*InProcess, error) {
		p.Close() //nolint:errcheck // reporting the original error
		return nil, err
	}

	logW := opt.LogW
	if logW == nil {
		logW = io.Discard
	}
	level := opt.LogLevel
	if level == "" {
		level = "warn"
	}
	ring := opt.TraceRing
	if ring == 0 {
		ring = 4096
	}
	logger := obs.NewLogger(logW, level)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{
		SampleRate:    1,
		RingSize:      ring,
		SlowThreshold: time.Second,
		Logger:        logger,
	})

	// Every store byte flows through the chaos filesystem; v0 seeding
	// below uses it too (it starts disarmed, so seeding is unaffected).
	// The heal backoff is tightened so a soak's degraded windows resolve
	// in hundreds of milliseconds after disarm instead of the production
	// default's seconds.
	p.Chaos = vfs.NewChaosFS(vfs.OS{}, filepath.Join(dir, "stores"))
	p.svc = service.New(service.Config{
		FeedDir:        filepath.Join(dir, "feeds"),
		FS:             p.Chaos,
		HealBackoff:    50 * time.Millisecond,
		HealBackoffMax: time.Second,
		Metrics:        reg,
		Tracer:         tracer,
		Logger:         logger,
	})
	for _, dp := range plan.Datasets {
		if !dp.Backed {
			continue
		}
		storeDir := filepath.Join(dir, "stores", dp.Name)
		vs := rdf.NewVersionStore()
		if err := vs.Add(&rdf.Version{ID: "v0", Graph: dp.Base, Timestamp: time.Unix(0, 0).UTC()}); err != nil {
			return fail(fmt.Errorf("sim: seeding %s: %w", dp.Name, err))
		}
		if _, err := store.SaveFS(p.Chaos, storeDir, vs, store.Options{Policy: store.Hybrid}); err != nil {
			return fail(fmt.Errorf("sim: persisting %s: %w", dp.Name, err))
		}
		if _, err := p.svc.Open(dp.Name, storeDir); err != nil {
			return fail(fmt.Errorf("sim: opening %s: %w", dp.Name, err))
		}
	}

	apiLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(fmt.Errorf("sim: api listener: %w", err))
	}
	opsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		apiLn.Close() //nolint:errcheck
		return fail(fmt.Errorf("sim: ops listener: %w", err))
	}

	p.api = &http.Server{
		Handler: server.NewWithConfig(p.svc, server.Config{
			Metrics:        reg,
			Logger:         logger,
			Tracer:         tracer,
			LatencyBuckets: opt.LatencyBuckets,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	p.ops = &http.Server{
		Handler: obs.OpsMux(obs.OpsConfig{
			Registry: reg,
			Tracer:   tracer,
			Info:     obs.FromBuildInfo("evorec-sim"),
			Ready:    p.svc.Ready,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go p.api.Serve(apiLn) //nolint:errcheck // ErrServerClosed on shutdown
	go p.ops.Serve(opsLn) //nolint:errcheck
	p.BaseURL = "http://" + apiLn.Addr().String()
	p.OpsURL = "http://" + opsLn.Addr().String()
	return p, nil
}

// Close stops both listeners, closes the service (draining commit queues,
// checkpointing stores, flushing feed logs) and removes the temp directory
// when Start created one.
func (p *InProcess) Close() error {
	var errs []error
	if p.api != nil {
		errs = append(errs, p.api.Close())
	}
	if p.ops != nil {
		errs = append(errs, p.ops.Close())
	}
	if p.svc != nil {
		errs = append(errs, p.svc.Close())
	}
	if p.tmpdir != "" {
		errs = append(errs, os.RemoveAll(p.tmpdir))
	}
	return errors.Join(errs...)
}
