package sim

import (
	"bytes"
	"strings"
	"testing"
)

// TestPlanDeterminism is the reproducibility contract: equal configs yield
// byte-identical operation logs (including every commit body), different
// seeds yield different ones.
func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, NumOps: 400, BackedDatasets: 1, MemDatasets: 2, ParityEvery: 4}
	a, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var la, lb bytes.Buffer
	if err := a.WriteOpLog(&la); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteOpLog(&lb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(la.Bytes(), lb.Bytes()) {
		t.Fatal("same seed produced different op logs")
	}
	if len(a.Ops) != 400 {
		t.Fatalf("plan has %d ops, want 400", len(a.Ops))
	}

	cfg.Seed = 8
	c, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lc bytes.Buffer
	if err := c.WriteOpLog(&lc); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(la.Bytes(), lc.Bytes()) {
		t.Fatal("different seeds produced identical op logs")
	}
}

// TestPlanShape spot-checks structural guarantees the executor leans on:
// creates precede dependent ops, commit bodies are non-empty, version IDs
// per dataset are sequential, and the mix touches every op kind.
func TestPlanShape(t *testing.T) {
	plan, err := BuildPlan(Config{Seed: 1, NumOps: 1000, BackedDatasets: 1, MemDatasets: 2, ParityEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	created := make(map[string]bool)
	for _, d := range plan.Datasets {
		if d.Backed {
			created[d.Name] = true // pre-seeded by StartInProcess
			if d.Base == nil {
				t.Fatalf("backed dataset %s has no base graph to persist", d.Name)
			}
		}
	}
	kinds := make(map[OpKind]int)
	lastVer := make(map[string]string)
	for _, op := range plan.Ops {
		kinds[op.Kind]++
		switch op.Kind {
		case OpCreate:
			created[op.Dataset] = true
		case OpCommit:
			if !created[op.Dataset] {
				t.Fatalf("op %d commits to %s before its create", op.Seq, op.Dataset)
			}
			if len(op.Body) == 0 {
				t.Fatalf("op %d has an empty commit body", op.Seq)
			}
			lastVer[op.Dataset] = op.VersionID
		case OpSubscribe, OpUpdate, OpUnsubscribe:
			if !created[op.Dataset] {
				t.Fatalf("op %d (%s) targets %s before its create", op.Seq, op.Kind, op.Dataset)
			}
		}
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		if kinds[k] == 0 {
			t.Errorf("1000-op mix never generated %s", k)
		}
	}
	var log bytes.Buffer
	if err := plan.WriteOpLog(&log); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(log.String(), "# evorec sim oplog seed=1") {
		t.Errorf("op log header: %q", strings.SplitN(log.String(), "\n", 2)[0])
	}
}
