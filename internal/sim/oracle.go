// Metrics-as-oracle: the simulator scrapes the server's own telemetry
// (/metrics, /readyz, /debug/traces) during and after the run and holds it
// to conservation laws derived from the client's ground truth — every
// request the client completed, every commit acked, every feed entry
// drained. A server that forgets to count, double-counts, or leaks an
// in-flight gauge fails the soak even when every response body was correct.
package sim

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ---------------------------------------------------------------------------
// Client-side tallies

// routeTally counts completed requests under the exact label set the server
// exposes: (route pattern, method, status class).
type routeTally struct {
	mu sync.Mutex
	m  map[string]int64 // "route|method|class"
}

func newRouteTally() *routeTally { return &routeTally{m: make(map[string]int64)} }

func tallyKey(route, method, class string) string { return route + "|" + method + "|" + class }

func (t *routeTally) add(route, method, class string) {
	t.mu.Lock()
	t.m[tallyKey(route, method, class)]++
	t.mu.Unlock()
}

func (t *routeTally) snapshot() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.m))
	for k, v := range t.m {
		out[k] = v
	}
	return out
}

func (t *routeTally) total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.m {
		n += v
	}
	return n
}

// latencyRecorder accumulates client-observed per-op-kind latencies.
type latencyRecorder struct {
	mu      sync.Mutex
	samples [numOpKinds][]time.Duration
}

func newLatencyRecorder() *latencyRecorder { return &latencyRecorder{} }

func (l *latencyRecorder) record(k OpKind, d time.Duration) {
	l.mu.Lock()
	l.samples[k] = append(l.samples[k], d)
	l.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Prometheus text exposition parsing

// snapshot is one parsed /metrics scrape: every series under a canonical
// key (label names sorted), so lookups are independent of exposition order.
type snapshot struct {
	series map[string]float64
}

// seriesKey canonicalizes name + labels. Labels arrive as parsed pairs.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// parseExposition parses the text format (0.0.4) the registry emits. Label
// values are quoted and may contain braces (route="/v1/datasets/{name}"),
// so the parser walks quotes rather than splitting on '}'.
func parseExposition(text string) (*snapshot, error) {
	snap := &snapshot{series: make(map[string]float64)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, rest, err := parseSeries(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		val, err := parsePromValue(strings.TrimSpace(rest))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		snap.series[seriesKey(name, labels)] = val
	}
	return snap, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSeries splits `name{k="v",...} value` (or `name value`) into parts.
func parseSeries(line string) (name string, labels map[string]string, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace == -1 || (space != -1 && space < brace) {
		if space == -1 {
			return "", nil, "", fmt.Errorf("no value in %q", line)
		}
		return line[:space], nil, line[space+1:], nil
	}
	name = line[:brace]
	labels = make(map[string]string)
	i := brace + 1
	for {
		for i < len(line) && (line[i] == ',' || line[i] == ' ') {
			i++
		}
		if i < len(line) && line[i] == '}' {
			return name, labels, line[i+1:], nil
		}
		eq := strings.IndexByte(line[i:], '=')
		if eq == -1 {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		key := line[i : i+eq]
		i += eq + 1
		if i >= len(line) || line[i] != '"' {
			return "", nil, "", fmt.Errorf("unquoted label value in %q", line)
		}
		i++
		var val strings.Builder
		for i < len(line) && line[i] != '"' {
			if line[i] == '\\' && i+1 < len(line) {
				i++
			}
			val.WriteByte(line[i])
			i++
		}
		if i >= len(line) {
			return "", nil, "", fmt.Errorf("unterminated label value in %q", line)
		}
		i++ // closing quote
		labels[key] = val.String()
	}
}

// get reads one series by canonical key parts.
func (s *snapshot) get(name string, labels map[string]string) (float64, bool) {
	v, ok := s.series[seriesKey(name, labels)]
	return v, ok
}

func (s *snapshot) value(name string, labels map[string]string) float64 {
	v, _ := s.get(name, labels)
	return v
}

// histogramGroup is one histogram series: its cumulative buckets by bound,
// plus _sum and _count.
type histogramGroup struct {
	base    string // canonical key of the label set without le
	bounds  []float64
	cumul   []float64
	sum     float64
	count   float64
	hasCnt  bool
	hasInf  bool
	infCnt  float64
	routeLb string
}

// histograms groups every *_bucket family in the snapshot by base label set.
func (s *snapshot) histograms() map[string]*histogramGroup {
	out := make(map[string]*histogramGroup)
	for key, val := range s.series {
		name, labels, _, err := parseSeries(key + " 0")
		if err != nil {
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			le, ok := labels["le"]
			if !ok {
				continue
			}
			delete(labels, "le")
			gk := seriesKey(base, labels)
			g := out[gk]
			if g == nil {
				g = &histogramGroup{base: gk, routeLb: labels["route"]}
				out[gk] = g
			}
			if le == "+Inf" {
				g.hasInf, g.infCnt = true, val
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					continue
				}
				g.bounds = append(g.bounds, bound)
				g.cumul = append(g.cumul, val)
			}
		case strings.HasSuffix(name, "_sum"):
			gk := seriesKey(strings.TrimSuffix(name, "_sum"), labels)
			g := out[gk]
			if g == nil {
				g = &histogramGroup{base: gk, routeLb: labels["route"]}
				out[gk] = g
			}
			g.sum = val
		case strings.HasSuffix(name, "_count"):
			gk := seriesKey(strings.TrimSuffix(name, "_count"), labels)
			g := out[gk]
			if g == nil {
				g = &histogramGroup{base: gk, routeLb: labels["route"]}
				out[gk] = g
			}
			g.count, g.hasCnt = val, true
		}
	}
	for _, g := range out {
		sort.Sort(&boundSorter{g})
	}
	return out
}

type boundSorter struct{ g *histogramGroup }

func (b *boundSorter) Len() int           { return len(b.g.bounds) }
func (b *boundSorter) Less(i, j int) bool { return b.g.bounds[i] < b.g.bounds[j] }
func (b *boundSorter) Swap(i, j int) {
	b.g.bounds[i], b.g.bounds[j] = b.g.bounds[j], b.g.bounds[i]
	b.g.cumul[i], b.g.cumul[j] = b.g.cumul[j], b.g.cumul[i]
}

// quantile estimates a quantile from the cumulative buckets by linear
// interpolation within the landing bucket — the standard Prometheus
// histogram_quantile estimator.
func (g *histogramGroup) quantile(q float64) float64 {
	if !g.hasInf || g.infCnt == 0 {
		return 0
	}
	target := q * g.infCnt
	prevBound, prevCumul := 0.0, 0.0
	for i, bound := range g.bounds {
		if g.cumul[i] >= target {
			width := bound - prevBound
			inBucket := g.cumul[i] - prevCumul
			if inBucket == 0 {
				return bound
			}
			return prevBound + width*(target-prevCumul)/inBucket
		}
		prevBound, prevCumul = bound, g.cumul[i]
	}
	// Landed in the +Inf bucket: the highest finite bound is the best claim.
	if len(g.bounds) > 0 {
		return g.bounds[len(g.bounds)-1]
	}
	return 0
}

// ---------------------------------------------------------------------------
// Scrape loop

// fetch grabs one ops endpoint, returning status and body.
func (r *runner) fetch(path string) (int, []byte, error) {
	req, err := http.NewRequest("GET", r.cfg.OpsURL+path, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// scrapeOnce runs one telemetry pass: exposition well-formedness plus the
// laws that must hold at every instant, not just at the end.
func (r *runner) scrapeOnce(prev *snapshot) *snapshot {
	status, body, err := r.fetch("/metrics")
	if err != nil || status != http.StatusOK {
		r.viol.addf("scrape", "GET /metrics = %d (err %v)", status, err)
		return prev
	}
	snap, err := parseExposition(string(body))
	if err != nil {
		r.viol.addf("scrape", "parsing /metrics: %v", err)
		return prev
	}
	r.scrapeCount.Add(1)
	r.checkHistograms(snap)
	if prev != nil {
		r.checkMonotone(prev, snap)
	}

	// Readiness can legitimately dip during checkpoints; tallied, not judged.
	if st, _, err := r.fetch("/readyz"); err == nil {
		if st == http.StatusOK {
			r.readyOK.Add(1)
		} else {
			r.readyBusy.Add(1)
		}
	}
	r.scrapeTraces()
	return snap
}

// checkHistograms asserts bucket conservation inside one scrape: cumulative
// counts never decrease across bounds, and the +Inf bucket equals _count.
func (r *runner) checkHistograms(snap *snapshot) {
	for _, g := range snap.histograms() {
		prev := 0.0
		for i, bound := range g.bounds {
			r.expect(g.cumul[i] >= prev, "histogram",
				"%s: bucket le=%g count %g < previous %g", g.base, bound, g.cumul[i], prev)
			prev = g.cumul[i]
		}
		if g.hasInf {
			r.expect(g.infCnt >= prev, "histogram",
				"%s: +Inf bucket %g < last finite bucket %g", g.base, g.infCnt, prev)
			if g.hasCnt {
				r.expect(g.infCnt == g.count, "histogram",
					"%s: +Inf bucket %g != count %g", g.base, g.infCnt, g.count)
			}
		}
	}
}

// checkMonotone asserts that every cumulative series (counters, histogram
// buckets/sums/counts) never decreases between scrapes. Gauges are exempt.
func (r *runner) checkMonotone(prev, cur *snapshot) {
	for key, was := range prev.series {
		if !monotoneSeries(key) {
			continue
		}
		now, ok := cur.series[key]
		r.expect(ok && now >= was, "monotone",
			"series %s went %g -> %g (present=%v)", key, was, now, ok)
	}
}

// monotoneSeries reports whether a series key names a cumulative metric.
func monotoneSeries(key string) bool {
	name := key
	if i := strings.IndexByte(name, '{'); i != -1 {
		name = name[:i]
	}
	switch {
	case strings.HasSuffix(name, "_total"),
		strings.HasSuffix(name, "_count"),
		strings.HasSuffix(name, "_sum"),
		strings.HasSuffix(name, "_bucket"):
		return true
	}
	return false
}

// scrapeTraces advances the since_seq cursor over /debug/traces, asserting
// the ring sequence is monotonic: every returned trace is newer than the
// last scrape's max_seq and bounded by the new max_seq.
func (r *runner) scrapeTraces() {
	since := r.traceMaxSeq.Load()
	status, body, err := r.fetch(fmt.Sprintf("/debug/traces?since_seq=%d", since))
	if err != nil {
		return // ops endpoint may lack a tracer; not a law
	}
	if !r.expect(status == http.StatusOK, "scrape", "GET /debug/traces = %d", status) {
		return
	}
	var resp struct {
		Count  int    `json:"count"`
		MaxSeq uint64 `json:"max_seq"`
		Traces []struct {
			Seq uint64 `json:"seq"`
		} `json:"traces"`
	}
	if !r.expect(parseJSON(body, &resp) == nil, "scrape", "parsing /debug/traces") {
		return
	}
	r.expect(resp.Count == len(resp.Traces), "traces",
		"/debug/traces: count %d != %d traces", resp.Count, len(resp.Traces))
	r.expect(resp.MaxSeq >= since, "traces",
		"/debug/traces: max_seq regressed %d -> %d", since, resp.MaxSeq)
	for _, tr := range resp.Traces {
		// The cursor contract: only traces published after the acked
		// sequence, never beyond the advertised maximum. (The lock-free ring
		// may skip or repeat a torn slot under churn; the bounds still hold.)
		r.expect(tr.Seq > since && tr.Seq <= resp.MaxSeq, "traces",
			"/debug/traces: seq %d outside (%d, %d]", tr.Seq, since, resp.MaxSeq)
	}
	r.tracesSeen.Add(int64(len(resp.Traces)))
	r.traceMaxSeq.Store(resp.MaxSeq)
}

// scrapeLoop runs the oracle at ScrapeInterval until stopped.
func (r *runner) scrapeLoop(stop <-chan struct{}) {
	var prev *snapshot
	tick := time.NewTicker(r.cfg.ScrapeInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			prev = r.scrapeOnce(prev)
		}
	}
}

// finalScrape waits for the server's counters to settle — the middleware
// records a request after its response reaches the client, so the last few
// increments can trail the last ack — then returns the settled snapshot.
func (r *runner) finalScrape() *snapshot {
	target := float64(r.routes.total())
	var snap *snapshot
	for i := 0; i < 50; i++ {
		status, body, err := r.fetch("/metrics")
		if err != nil || status != http.StatusOK {
			r.viol.addf("scrape", "final GET /metrics = %d (err %v)", status, err)
			return nil
		}
		s, err := parseExposition(string(body))
		if err != nil {
			r.viol.addf("scrape", "parsing final /metrics: %v", err)
			return nil
		}
		snap = s
		total := 0.0
		for key, v := range s.series {
			if strings.HasPrefix(key, "evorec_http_requests_total{") {
				total += v
			}
		}
		if total >= target && s.value("evorec_http_in_flight", nil) == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return snap
}

// conservationLaws is the final strict pass: with the simulator as the
// server's only client, the telemetry must balance the client's books
// exactly. Only run when cfg.Strict and every request resolved with a
// status (transport errors make the books unbalanceable).
func (r *runner) conservationLaws(final *snapshot) {
	if !r.cfg.Strict {
		return
	}
	if n := r.transport.Load(); n > 0 {
		r.logf("conservation laws skipped: %d transport errors left the books indeterminate", n)
		return
	}

	// Law 1: evorec_http_requests_total{route,method,class} equals the
	// client tally, in both directions.
	client := r.routes.snapshot()
	for key, want := range client {
		parts := strings.SplitN(key, "|", 3)
		got, ok := final.get("evorec_http_requests_total",
			map[string]string{"route": parts[0], "method": parts[1], "class": parts[2]})
		r.expect(ok && got == float64(want), "conservation",
			"requests_total{route=%s,method=%s,class=%s} = %g, client sent %d",
			parts[0], parts[1], parts[2], got, want)
	}
	for key, got := range final.series {
		if !strings.HasPrefix(key, "evorec_http_requests_total{") {
			continue
		}
		_, labels, _, err := parseSeries(key + " 0")
		if err != nil {
			continue
		}
		want := client[tallyKey(labels["route"], labels["method"], labels["class"])]
		r.expect(float64(want) == got, "conservation",
			"server counted %g under %s, client sent %d", got, key, want)
	}

	// Law 2: nothing in flight once every response is read.
	r.expect(final.value("evorec_http_in_flight", nil) == 0, "conservation",
		"in_flight = %g after the run drained", final.value("evorec_http_in_flight", nil))

	// Law 3: per-route latency histograms count every request once.
	byRoute := make(map[string]int64)
	for key, n := range client {
		byRoute[strings.SplitN(key, "|", 3)[0]] += n
	}
	for route, want := range byRoute {
		got := final.value("evorec_http_request_seconds_count", map[string]string{"route": route})
		r.expect(got == float64(want), "conservation",
			"request_seconds_count{route=%s} = %g, client sent %d", route, got, want)
	}

	// Aggregate the shadow's commit and feed books.
	var commits2xx, commits503, memCommits, fanouts, fanSkipped int
	var busy503, degraded503, mid503 int
	var notified, drained int64
	for _, d := range r.ds {
		d.mu.Lock()
		commits2xx += d.commits2xx
		commits503 += d.commits503
		memCommits += d.memCommits
		busy503 += d.commitsBusy503
		degraded503 += d.commitsDegraded503
		mid503 += d.commitsMid503
		fanouts += d.fanouts
		fanSkipped += d.fanSkipped
		notified += d.notified
		for _, u := range d.users {
			drained += int64(u.entries)
		}
		d.mu.Unlock()
	}
	reads503 := r.reads503.Load()

	// Law 4: every commit the client saw resolve is in exactly one book.
	// Acked and mid-commit-failed commits each passed through exactly one
	// group-commit batch (the batch-size histogram observes the batch
	// before the WAL verdict); queue sheds, degraded-gate rejections and
	// mid-batch degraded failures each reconcile against their own
	// counter; and the HTTP rejection counter equals every 503 the client
	// got, commit or read.
	r.expect(final.value("evorec_commit_batch_size_sum", nil) == float64(commits2xx+mid503), "conservation",
		"commit_batch_size_sum = %g, client saw %d acked + %d mid-batch-failed commits",
		final.value("evorec_commit_batch_size_sum", nil), commits2xx, mid503)
	r.expect(final.value("evorec_commit_busy_total", nil) == float64(busy503), "conservation",
		"commit_busy_total = %g, client saw %d queue-shed 503s",
		final.value("evorec_commit_busy_total", nil), busy503)
	r.expect(final.value("evorec_commit_degraded_total", nil) == float64(degraded503+mid503), "conservation",
		"commit_degraded_total = %g, client saw %d degraded + %d mid-batch 503s",
		final.value("evorec_commit_degraded_total", nil), degraded503, mid503)
	r.expect(final.value("evorec_build_shed_total", nil) == float64(reads503), "conservation",
		"build_shed_total = %g, client saw %d read 503s",
		final.value("evorec_build_shed_total", nil), reads503)
	r.expect(final.value("evorec_http_rejections_total", nil) == float64(commits503)+float64(reads503), "conservation",
		"http_rejections_total = %g, client saw %d commit + %d read 503s",
		final.value("evorec_http_rejections_total", nil), commits503, reads503)

	// Law 5: the WAL fsynced at least once per batch that held a
	// disk-backed commit. Batches are counted for in-memory datasets too
	// (each contributes at most its own batch), and a mid-batch fault
	// means that batch's append never reached its fsync (the WAL timer
	// observes only successful appends) — hence both subtractions.
	batches := final.value("evorec_commit_batch_size_count", nil)
	fsyncs := final.value("evorec_wal_fsync_seconds_count", nil)
	r.expect(fsyncs >= batches-float64(memCommits)-float64(mid503), "conservation",
		"wal_fsync_count = %g < batches %g - mem commits %d - mid-batch faults %d",
		fsyncs, batches, memCommits, mid503)
	if commits2xx > memCommits {
		r.expect(fsyncs >= 1, "conservation",
			"no WAL fsync despite %d disk-backed commits", commits2xx-memCommits)
	}

	// Law 7 (chaos runs only): the degraded ledger balances — every entry
	// into the degraded state was matched by a completed heal, nothing is
	// degraded or mid-heal at the end, and any degraded 503 the client saw
	// implies the server counted at least one degraded entry.
	if len(r.plan.Chaos) > 0 {
		entered := final.value("evorec_dataset_degraded_total", nil)
		heals := final.value("evorec_dataset_heals_total", nil)
		r.expect(heals == entered, "conservation",
			"dataset_heals_total = %g != dataset_degraded_total = %g after heal wait", heals, entered)
		r.expect(final.value("evorec_dataset_state", map[string]string{"state": "degraded"}) == 0, "conservation",
			"datasets still degraded after the heal wait")
		r.expect(final.value("evorec_dataset_state", map[string]string{"state": "healing"}) == 0, "conservation",
			"datasets still mid-heal after the heal wait")
		if degraded503+mid503 > 0 {
			r.expect(entered >= 1, "conservation",
				"client saw %d degraded 503s but the server never counted a degraded entry", degraded503+mid503)
		}
	}

	// Law 6: fan-out accounting — one duration/affected observation per
	// delivered fan-out, one skip per ledger suppression, and the notified
	// counter equals both the commit acks' sum and what subscribers
	// actually drained. Exactly-once delivery, measured three ways.
	r.expect(final.value("evorec_fanout_seconds_count", nil) == float64(fanouts), "conservation",
		"fanout_seconds_count = %g, commit acks reported %d fan-outs",
		final.value("evorec_fanout_seconds_count", nil), fanouts)
	r.expect(final.value("evorec_fanout_affected_count", nil) == float64(fanouts), "conservation",
		"fanout_affected_count = %g, commit acks reported %d fan-outs",
		final.value("evorec_fanout_affected_count", nil), fanouts)
	r.expect(final.value("evorec_fanout_skipped_total", nil) == float64(fanSkipped), "conservation",
		"fanout_skipped_total = %g, commit acks reported %d skips",
		final.value("evorec_fanout_skipped_total", nil), fanSkipped)
	r.expect(final.value("evorec_fanout_notified_total", nil) == float64(notified), "conservation",
		"fanout_notified_total = %g, commit acks summed %d", final.value("evorec_fanout_notified_total", nil), notified)
	r.expect(notified == drained, "conservation",
		"commit acks promised %d notifications, subscribers drained %d", notified, drained)
}

func (r *runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}
