package sim

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"time"
)

// Result is a completed soak run's verdict plus everything needed to render
// a benchmark report.
type Result struct {
	Seed       int64
	Ops        int
	Elapsed    time.Duration
	Checks     int64 // invariant evaluations performed
	Violations int
	ByCategory map[string]int
	Samples    []string // first violations, verbatim
	Parity     int64    // indexed-vs-reference parity comparisons run
	Transport  int64    // requests that died before a status line
	Scrapes    int64
	TracesSeen int64
	ReadyOK    int64
	ReadyBusy  int64
	Commits2xx int
	Commits503 int
	Fanouts    int
	Notified   int64

	// The chaos books: how the 503s split, how many read sheds were
	// tolerated, and the server's own degraded/heal transition counts
	// from the final scrape.
	Commits503Busy     int
	Commits503Degraded int // enqueue-time degraded + mid-batch faults
	Reads503           int64
	ChaosWindows       int
	DegradedEntries    float64
	Heals              float64

	PerOp       map[string]OpStats
	ServerRoute map[string]RouteStats
}

// OpStats summarizes client-observed latency for one op kind.
type OpStats struct {
	Count      int     `json:"count"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Millis  float64 `json:"p50_ms"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
	MaxMillis  float64 `json:"max_ms"`
	MeanMillis float64 `json:"mean_ms"`
}

// RouteStats summarizes the server's own latency histogram for one route,
// estimated by bucket interpolation from the final scrape.
type RouteStats struct {
	Count     float64 `json:"count"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// BenchReport is the BENCH_9.json schema.
type BenchReport struct {
	Bench       string         `json:"bench"`
	Seed        int64          `json:"seed"`
	Ops         int            `json:"ops"`
	DurationSec float64        `json:"duration_sec"`
	OpsPerSec   float64        `json:"ops_per_sec"`
	Checks      int64          `json:"invariant_checks"`
	Violations  int            `json:"violations"`
	ByCategory  map[string]int `json:"violations_by_category,omitempty"`
	Samples     []string       `json:"violation_samples,omitempty"`
	Parity      int64          `json:"parity_checks"`
	Transport   int64          `json:"transport_errors"`
	Scrapes     int64          `json:"metric_scrapes"`
	TracesSeen  int64          `json:"traces_seen"`
	ReadyOK     int64          `json:"readyz_ok"`
	ReadyBusy   int64          `json:"readyz_busy"`
	Commits2xx  int            `json:"commits_acked"`
	Commits503  int            `json:"commits_503"`
	Fanouts     int            `json:"fanouts"`
	Notified    int64          `json:"notifications"`

	Commits503Busy     int     `json:"commits_503_busy,omitempty"`
	Commits503Degraded int     `json:"commits_503_degraded,omitempty"`
	Reads503           int64   `json:"reads_503,omitempty"`
	ChaosWindows       int     `json:"chaos_windows,omitempty"`
	DegradedEntries    float64 `json:"degraded_entries,omitempty"`
	Heals              float64 `json:"heals,omitempty"`

	PerOp       map[string]OpStats    `json:"per_op"`
	ServerRoute map[string]RouteStats `json:"server_route,omitempty"`
}

// Report renders the result in the repo's BENCH_N.json convention.
func (res *Result) Report() *BenchReport {
	return &BenchReport{
		Bench:       "sim-soak",
		Seed:        res.Seed,
		Ops:         res.Ops,
		DurationSec: res.Elapsed.Seconds(),
		OpsPerSec:   float64(res.Ops) / res.Elapsed.Seconds(),
		Checks:      res.Checks,
		Violations:  res.Violations,
		ByCategory:  res.ByCategory,
		Samples:     res.Samples,
		Parity:      res.Parity,
		Transport:   res.Transport,
		Scrapes:     res.Scrapes,
		TracesSeen:  res.TracesSeen,
		ReadyOK:     res.ReadyOK,
		ReadyBusy:   res.ReadyBusy,
		Commits2xx:  res.Commits2xx,
		Commits503:  res.Commits503,
		Fanouts:     res.Fanouts,
		Notified:    res.Notified,

		Commits503Busy:     res.Commits503Busy,
		Commits503Degraded: res.Commits503Degraded,
		Reads503:           res.Reads503,
		ChaosWindows:       res.ChaosWindows,
		DegradedEntries:    res.DegradedEntries,
		Heals:              res.Heals,

		PerOp:       res.PerOp,
		ServerRoute: res.ServerRoute,
	}
}

// WriteJSON writes the report, indented, to w.
func (rep *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// percentile reads the q-th quantile from sorted samples by nearest rank.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// stats summarizes one op kind's samples.
func (l *latencyRecorder) stats(k OpKind, elapsed time.Duration) (OpStats, bool) {
	l.mu.Lock()
	samples := append([]time.Duration(nil), l.samples[k]...)
	l.mu.Unlock()
	if len(samples) == 0 {
		return OpStats{}, false
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return OpStats{
		Count:      len(samples),
		OpsPerSec:  float64(len(samples)) / elapsed.Seconds(),
		P50Millis:  millis(percentile(samples, 0.50)),
		P95Millis:  millis(percentile(samples, 0.95)),
		P99Millis:  millis(percentile(samples, 0.99)),
		MaxMillis:  millis(samples[len(samples)-1]),
		MeanMillis: millis(sum / time.Duration(len(samples))),
	}, true
}

// buildResult assembles the Result from the run's accumulated state. final
// may be nil (no ops endpoint was scraped).
func (r *runner) buildResult(elapsed time.Duration, final *snapshot) *Result {
	total, cats, samples := r.viol.snapshot()
	res := &Result{
		Seed:       r.plan.Seed,
		Ops:        len(r.plan.Ops),
		Elapsed:    elapsed,
		Checks:     r.checks.Load(),
		Violations: total,
		ByCategory: cats,
		Samples:    samples,
		Parity:     r.parityChecked.Load(),
		Transport:  r.transport.Load(),
		Scrapes:    r.scrapeCount.Load(),
		TracesSeen: r.tracesSeen.Load(),
		ReadyOK:    r.readyOK.Load(),
		ReadyBusy:  r.readyBusy.Load(),
		PerOp:      make(map[string]OpStats),
	}
	for _, d := range r.ds {
		d.mu.Lock()
		res.Commits2xx += d.commits2xx
		res.Commits503 += d.commits503
		res.Commits503Busy += d.commitsBusy503
		res.Commits503Degraded += d.commitsDegraded503 + d.commitsMid503
		res.Fanouts += d.fanouts
		res.Notified += d.notified
		d.mu.Unlock()
	}
	res.Reads503 = r.reads503.Load()
	res.ChaosWindows = len(r.plan.Chaos)
	if final != nil {
		res.DegradedEntries = final.value("evorec_dataset_degraded_total", nil)
		res.Heals = final.value("evorec_dataset_heals_total", nil)
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		if st, ok := r.lat.stats(k, elapsed); ok {
			res.PerOp[k.String()] = st
		}
	}
	if final != nil {
		res.ServerRoute = make(map[string]RouteStats)
		for _, g := range final.histograms() {
			if !strings.HasPrefix(g.base, "evorec_http_request_seconds{") || !g.hasInf {
				continue
			}
			res.ServerRoute[g.routeLb] = RouteStats{
				Count:     g.infCnt,
				P50Millis: g.quantile(0.50) * 1000,
				P95Millis: g.quantile(0.95) * 1000,
				P99Millis: g.quantile(0.99) * 1000,
			}
		}
	}
	return res
}
