// Chaos soak: the runner arms a fault injector against the live store on
// the plan's seeded windows (sim.go dispatch loop), then — once the last
// window closes — holds the server to the self-healing contract below.
// Reads staying green during the windows is asserted where reads are
// checked (checkPairStatus tolerates only gate sheds, never errors); this
// file asserts the write path's side: every degraded dataset heals without
// client help, and then genuinely accepts commits again.
package sim

import (
	"net/http"
	"time"
)

// chaosHeal runs after the main schedule drained with the injector
// disarmed. Phase one waits (bounded by Config.HealWait) for the server's
// own gauges to report every dataset healthy again — the heal is driven by
// the supervised probe, not by this client's traffic. Phase two executes
// the plan's heal commits, one per backed dataset, and requires each to be
// acked: the probe reporting healthy is not enough, the WAL append path
// must actually work end to end.
func (r *runner) chaosHeal() {
	deadline := time.Now().Add(r.cfg.HealWait)
	if r.cfg.OpsURL != "" {
		healed := false
		for time.Now().Before(deadline) {
			if r.healedNow() {
				healed = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		r.expect(healed, "chaos",
			"datasets still degraded %s after the last chaos window closed", r.cfg.HealWait)
	}

	for i := range r.plan.HealOps {
		op := &r.plan.HealOps[i]
		d := r.ds[op.Dataset]
		if d == nil {
			r.viol.addf("harness", "heal op %d references unknown dataset %s", op.Seq, op.Dataset)
			continue
		}
		// Retry briefly: a probe may flip the gauge healthy a beat before
		// a straggling checkpoint settles. Every attempt flows through the
		// normal commit path, so its tallies reconcile like any other op.
		for {
			r.exec(op)
			d.mu.Lock()
			acked := d.acked[op.VersionID]
			d.mu.Unlock()
			if acked || !time.Now().Before(deadline) {
				r.expect(acked, "chaos",
					"heal commit %s/%s was not accepted after healing", op.Dataset, op.VersionID)
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
}

// healedNow scrapes /metrics once and reports whether the degraded-state
// books are settled: no dataset degraded or mid-heal, and every degraded
// entry matched by a completed heal (so the final conservation pass sees
// heals == entries, not a probe caught mid-flight).
func (r *runner) healedNow() bool {
	status, body, err := r.fetch("/metrics")
	if err != nil || status != http.StatusOK {
		return false
	}
	snap, err := parseExposition(string(body))
	if err != nil {
		return false
	}
	return snap.value("evorec_dataset_state", map[string]string{"state": "degraded"}) == 0 &&
		snap.value("evorec_dataset_state", map[string]string{"state": "healing"}) == 0 &&
		snap.value("evorec_dataset_heals_total", nil) == snap.value("evorec_dataset_degraded_total", nil)
}
