// Package sim is the deterministic workload simulator and soak harness
// behind `evorec sim` (see DESIGN.md §13). It pre-generates a seeded,
// weighted mix of API operations (create / commit / subscribe / update /
// unsubscribe / recommend / group-recommend / notify / poll-with-ack) as a
// fully materialized Plan — two plans from equal configs are byte-identical
// — then executes the plan against a live service at configurable
// concurrency, maintaining a shadow model of expected state and treating
// the server's own telemetry (/metrics, /readyz, /debug/traces) as an
// oracle whose conservation laws must hold at the end of the run.
//
// The weighted-operation scheme adapts the SimulationManager idiom from
// blockchain simulation harnesses: every operation kind carries a weight,
// eligibility is gated on generated state (no unsubscribe before a
// subscribe, no recommend before two versions exist), and all randomness is
// drawn single-threaded from one seeded source, so the operation stream —
// including every commit body — is a pure function of the seed.
package sim

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"evorec/internal/rdf"
	"evorec/internal/synth"
)

// Config parameterizes plan generation and execution. The zero value is
// not runnable; cmd/evorec fills it from flags and tests from literals.
// Only the generation fields (Seed, NumOps, BackedDatasets, MemDatasets,
// Users, ParityEvery, EvolveOps, KB) shape the plan; the rest only affect
// execution, so the same plan can be replayed against different endpoints.
type Config struct {
	// Seed drives every random choice of the generator.
	Seed int64
	// NumOps is the total operation budget (default 2000).
	NumOps int
	// Rate paces dispatch in operations/second; <= 0 dispatches as fast as
	// the workers drain.
	Rate float64
	// Concurrency is the worker count (default 8). Operations that must
	// not reorder (commits per dataset, subscriber ops per user) are
	// routed to a worker by affinity key; reads round-robin.
	Concurrency int
	// BackedDatasets is how many disk-backed datasets the plan seeds
	// (their v0 base graphs are part of the plan; StartInProcess persists
	// them). Remote runs must use 0 — the simulator cannot mount a store
	// directory into a foreign server.
	BackedDatasets int
	// MemDatasets bounds how many in-memory datasets the mix may create
	// over the API (default 2 when BackedDatasets is 0, else 2).
	MemDatasets int
	// Users is the subscriber pool size per dataset (default 16).
	Users int
	// ParityEvery samples every Nth plain recommend for indexed-vs-
	// reference scoring parity (0 disables the shadow engine entirely).
	ParityEvery int
	// EvolveOps is the synthetic change-operation count per committed
	// version (default 40).
	EvolveOps int
	// KB shapes the synthetic knowledge bases (zero value: synth.Small()).
	KB synth.KBConfig
	// ChaosWindows is how many seeded fault windows the plan schedules
	// (0 disables chaos). Each window is an [arm, disarm) op-sequence
	// interval during which the Fault injector holds the store write path
	// failing: commits 503 degraded while reads keep serving, and the
	// heal probe restores the dataset after the window closes. Windows
	// are drawn after the op stream, so a chaos plan shares its operation
	// content with the chaos-free plan of the same seed. Requires at
	// least one backed dataset (faults target the persistent store).
	ChaosWindows int

	// BaseURL is the API endpoint ("http://127.0.0.1:8080").
	BaseURL string
	// OpsURL is the operator endpoint for /metrics, /readyz and
	// /debug/traces; empty disables telemetry scraping and every
	// metrics-as-oracle law.
	OpsURL string
	// Strict enables the exclusive-use conservation laws (request counts,
	// fan-out counts, WAL inequalities). Only valid when the simulator is
	// the server's sole client — in-process runs set it.
	Strict bool
	// ScrapeInterval paces the /metrics+/readyz+/debug/traces scraper
	// during the run (default 1s).
	ScrapeInterval time.Duration
	// HTTPTimeout bounds each request (default 30s).
	HTTPTimeout time.Duration
	// Fault is the runtime injector the dispatcher arms and disarms at the
	// plan's chaos-window boundaries (an in-process vfs.ChaosFS in
	// practice). Execution-side only — plans stay replayable without it.
	// Required when the plan carries chaos windows.
	Fault FaultInjector
	// HealWait bounds how long the runner waits after the last operation
	// for every degraded dataset to heal (default 60s). Only consulted
	// when the plan carries chaos windows.
	HealWait time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// FaultInjector is the runtime fault hook chaos windows drive. Arm makes
// subsequent store writes fail; Disarm restores them. Both must be safe
// for concurrent use with in-flight requests.
type FaultInjector interface {
	Arm()
	Disarm()
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.NumOps <= 0 {
		c.NumOps = 2000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Users <= 0 {
		c.Users = 16
	}
	if c.EvolveOps <= 0 {
		c.EvolveOps = 40
	}
	if c.KB.Classes == 0 {
		c.KB = synth.Small()
	}
	if c.ScrapeInterval <= 0 {
		c.ScrapeInterval = time.Second
	}
	if c.HTTPTimeout <= 0 {
		c.HTTPTimeout = 30 * time.Second
	}
	if c.HealWait <= 0 {
		c.HealWait = 60 * time.Second
	}
	return c
}

// OpKind enumerates the weighted operation mix.
type OpKind int

// The operation kinds, in oplog spelling order.
const (
	OpCreate OpKind = iota
	OpCommit
	OpSubscribe
	OpUpdate
	OpUnsubscribe
	OpRecommend
	OpGroupRecommend
	OpNotify
	OpPoll
	numOpKinds
)

var opKindNames = [numOpKinds]string{
	"create", "commit", "subscribe", "update", "unsubscribe",
	"recommend", "group-recommend", "notify", "poll",
}

// String returns the oplog spelling of the kind.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return fmt.Sprintf("opkind(%d)", int(k))
	}
	return opKindNames[k]
}

// Op is one fully determined operation: everything the HTTP request needs
// is generated up front, so execution feeds nothing back into generation.
type Op struct {
	Seq       int
	Kind      OpKind
	Dataset   string
	User      string
	Older     string
	Newer     string
	K         int
	Strategy  string
	Agg       string
	Threshold float64
	Interests string
	Members   []string // "id:Class=w,..." specs for group/notify
	VersionID string
	Body      []byte // commit payload (sorted N-Triples)
	Parity    bool   // sampled for indexed-vs-reference scoring parity
}

// DatasetPlan describes one dataset the plan drives. Backed datasets carry
// their v0 base graph — StartInProcess persists it before the run; the
// generator evolves from it.
type DatasetPlan struct {
	Name   string
	Backed bool
	Base   *rdf.Graph // nil for in-memory datasets (created over the API)
}

// ChaosWindow is one seeded fault interval: the dispatcher arms the
// injector before dispatching the op at sequence ArmAt and disarms it
// before the op at DisarmAt.
type ChaosWindow struct {
	ArmAt    int
	DisarmAt int
}

// Plan is a materialized operation schedule plus the dataset population it
// assumes. It is a pure function of the generation half of Config.
type Plan struct {
	Seed     int64
	NumOps   int
	Datasets []DatasetPlan
	Ops      []Op
	// Chaos holds the seeded fault windows, ordered and non-overlapping.
	Chaos []ChaosWindow
	// HealOps is one extra commit per backed dataset, executed after the
	// run (and after every dataset healed) to prove the write path
	// re-accepts commits. Part of the plan so the oplog stays a complete
	// determinism witness.
	HealOps []Op
}

// genDS is the generator's view of one dataset while the schedule builds.
type genDS struct {
	name    string
	backed  bool
	cur     *rdf.Graph
	nm      *synth.Namer
	next    int      // next version number to mint
	version []string // generated version IDs, "v0" first for backed
	active  []string // currently subscribed users, in subscribe order
	ever    []string // users ever subscribed, in first-subscribe order
	isAct   map[string]bool
	isEver  map[string]bool
}

func (d *genDS) subscribe(user string) {
	if !d.isAct[user] {
		d.isAct[user] = true
		d.active = append(d.active, user)
	}
	if !d.isEver[user] {
		d.isEver[user] = true
		d.ever = append(d.ever, user)
	}
}

func (d *genDS) unsubscribe(user string) {
	if !d.isAct[user] {
		return
	}
	delete(d.isAct, user)
	for i, u := range d.active {
		if u == user {
			d.active = append(d.active[:i], d.active[i+1:]...)
			break
		}
	}
}

// opWeights is the base mix; eligibility gates shift mass to what the
// generated state allows (e.g. a run starts commit-heavy because nothing
// is subscribed yet).
var opWeights = [numOpKinds]int{
	OpCreate:         2,
	OpCommit:         10,
	OpSubscribe:      8,
	OpUpdate:         4,
	OpUnsubscribe:    3,
	OpRecommend:      12,
	OpGroupRecommend: 4,
	OpNotify:         3,
	OpPoll:           8,
}

// interestWeights is the closed set of profile weights the generator
// assigns; a closed set keeps oplog lines canonical.
var interestWeights = [...]float64{0.25, 0.5, 0.75, 1}

// notifyThresholds is the closed set of notify thresholds.
var notifyThresholds = [...]float64{0.01, 0.05, 0.1, 0.2}

// BuildPlan pre-generates the full operation schedule. All randomness is
// drawn sequentially from one seeded math/rand source: the returned plan —
// including every commit body — is a pure function of the generation
// fields of cfg.
func BuildPlan(cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	if cfg.BackedDatasets < 0 || cfg.MemDatasets < 0 {
		return nil, fmt.Errorf("sim: dataset counts must be >= 0")
	}
	if cfg.BackedDatasets == 0 && cfg.MemDatasets == 0 {
		return nil, fmt.Errorf("sim: need at least one dataset (backed or mem)")
	}
	if cfg.ChaosWindows < 0 {
		return nil, fmt.Errorf("sim: chaos window count must be >= 0")
	}
	if cfg.ChaosWindows > 0 {
		if cfg.BackedDatasets == 0 {
			return nil, fmt.Errorf("sim: chaos windows need at least one backed dataset (faults target the store write path)")
		}
		if cfg.NumOps/cfg.ChaosWindows < 8 {
			return nil, fmt.Errorf("sim: %d ops is too few for %d chaos windows (need >= 8 ops per window)", cfg.NumOps, cfg.ChaosWindows)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	evolve := synth.EvolveConfig{Ops: cfg.EvolveOps, Locality: 0.8}

	p := &Plan{Seed: cfg.Seed, NumOps: cfg.NumOps}
	var dss []*genDS
	for i := 0; i < cfg.BackedDatasets; i++ {
		g, nm, err := synth.Generate(cfg.KB, rng)
		if err != nil {
			return nil, fmt.Errorf("sim: generating base KB: %w", err)
		}
		d := &genDS{
			name: fmt.Sprintf("soak%d", i), backed: true,
			cur: g, nm: nm, next: 1, version: []string{"v0"},
			isAct: map[string]bool{}, isEver: map[string]bool{},
		}
		dss = append(dss, d)
		p.Datasets = append(p.Datasets, DatasetPlan{Name: d.name, Backed: true, Base: g})
	}
	memMade := 0

	// anyPair reports whether some dataset has a recommendable pair.
	anyPair := func() bool {
		for _, d := range dss {
			if len(d.version) >= 2 {
				return true
			}
		}
		return false
	}
	anyActive := func() bool {
		for _, d := range dss {
			if len(d.active) > 0 {
				return true
			}
		}
		return false
	}
	pickDS := func(ok func(*genDS) bool) *genDS {
		elig := make([]*genDS, 0, len(dss))
		for _, d := range dss {
			if ok(d) {
				elig = append(elig, d)
			}
		}
		if len(elig) == 0 {
			return nil
		}
		return elig[rng.Intn(len(elig))]
	}

	for seq := 0; seq < cfg.NumOps; seq++ {
		total := 0
		var elig [numOpKinds]bool
		for k := OpKind(0); k < numOpKinds; k++ {
			switch k {
			case OpCreate:
				elig[k] = memMade < cfg.MemDatasets
			case OpCommit, OpSubscribe:
				elig[k] = len(dss) > 0
			case OpUpdate, OpUnsubscribe:
				elig[k] = anyActive()
			case OpRecommend, OpGroupRecommend, OpNotify:
				elig[k] = anyPair()
			case OpPoll:
				elig[k] = len(dss) > 0
			}
			if elig[k] {
				total += opWeights[k]
			}
		}
		r := rng.Intn(total)
		kind := OpKind(0)
		for k := OpKind(0); k < numOpKinds; k++ {
			if !elig[k] {
				continue
			}
			if r < opWeights[k] {
				kind = k
				break
			}
			r -= opWeights[k]
		}

		op := Op{Seq: seq, Kind: kind}
		switch kind {
		case OpCreate:
			g, nm, err := synth.Generate(cfg.KB, rng)
			if err != nil {
				return nil, fmt.Errorf("sim: generating base KB: %w", err)
			}
			d := &genDS{
				name: fmt.Sprintf("mem%d", memMade), backed: false,
				cur: g, nm: nm, next: 1,
				isAct: map[string]bool{}, isEver: map[string]bool{},
			}
			memMade++
			dss = append(dss, d)
			p.Datasets = append(p.Datasets, DatasetPlan{Name: d.name})
			op.Dataset = d.name

		case OpCommit:
			d := pickDS(func(*genDS) bool { return true })
			g, _, err := synth.Evolve(d.cur, evolve, d.nm, rng)
			if err != nil {
				return nil, fmt.Errorf("sim: evolving %s: %w", d.name, err)
			}
			d.cur = g
			id := fmt.Sprintf("v%d", d.next)
			d.next++
			d.version = append(d.version, id)
			var buf bytes.Buffer
			if err := rdf.WriteNTriples(&buf, g); err != nil {
				return nil, fmt.Errorf("sim: serializing %s %s: %w", d.name, id, err)
			}
			op.Dataset, op.VersionID, op.Body = d.name, id, buf.Bytes()

		case OpSubscribe:
			d := pickDS(func(*genDS) bool { return true })
			user := fmt.Sprintf("u%02d", rng.Intn(cfg.Users))
			op.Dataset, op.User = d.name, user
			op.Interests = genInterests(rng, cfg.KB.Classes)
			d.subscribe(user)

		case OpUpdate:
			d := pickDS(func(d *genDS) bool { return len(d.active) > 0 })
			user := d.active[rng.Intn(len(d.active))]
			op.Dataset, op.User = d.name, user
			op.Interests = genInterests(rng, cfg.KB.Classes)

		case OpUnsubscribe:
			d := pickDS(func(d *genDS) bool { return len(d.active) > 0 })
			user := d.active[rng.Intn(len(d.active))]
			op.Dataset, op.User = d.name, user
			d.unsubscribe(user)

		case OpRecommend:
			d := pickDS(func(d *genDS) bool { return len(d.version) >= 2 })
			op.Dataset = d.name
			op.Older, op.Newer = pickPair(rng, d.version)
			op.K = 1 + rng.Intn(5)
			op.User = fmt.Sprintf("u%02d", rng.Intn(cfg.Users))
			op.Interests = genInterests(rng, cfg.KB.Classes)
			switch rng.Intn(12) {
			case 8:
				op.Strategy = "mmr"
			case 9:
				op.Strategy = "maxmin"
			case 10:
				op.Strategy = "novelty"
			case 11:
				op.Strategy = "semantic"
			default:
				op.Strategy = "plain"
			}

		case OpGroupRecommend:
			d := pickDS(func(d *genDS) bool { return len(d.version) >= 2 })
			op.Dataset = d.name
			op.Older, op.Newer = pickPair(rng, d.version)
			op.K = 1 + rng.Intn(4)
			op.Members = genMembers(rng, cfg.Users, cfg.KB.Classes, 2+rng.Intn(3))
			switch rng.Intn(3) {
			case 0:
				op.Agg = "average"
			case 1:
				op.Agg = "least_misery"
			default:
				op.Agg = "most_pleasure"
			}

		case OpNotify:
			d := pickDS(func(d *genDS) bool { return len(d.version) >= 2 })
			op.Dataset = d.name
			op.Older, op.Newer = pickPair(rng, d.version)
			op.K = 1 + rng.Intn(3)
			op.Threshold = notifyThresholds[rng.Intn(len(notifyThresholds))]
			op.Members = genMembers(rng, cfg.Users, cfg.KB.Classes, 1+rng.Intn(3))

		case OpPoll:
			d := pickDS(func(*genDS) bool { return true })
			op.Dataset = d.name
			if len(d.ever) == 0 || rng.Intn(10) == 0 {
				// A user that never subscribed: the poll must 404 (no
				// retained log) — the negative half of the delivery
				// invariant.
				op.User = fmt.Sprintf("ghost%d", rng.Intn(4))
			} else {
				op.User = d.ever[rng.Intn(len(d.ever))]
			}
		}
		p.Ops = append(p.Ops, op)
	}

	// Parity sampling: every cfg.ParityEvery-th plain recommend, assigned
	// after the fact so sampling never perturbs the rng stream shared with
	// op content.
	if cfg.ParityEvery > 0 {
		plain := 0
		for i := range p.Ops {
			op := &p.Ops[i]
			if op.Kind == OpRecommend && op.Strategy == "plain" {
				if plain%cfg.ParityEvery == 0 {
					op.Parity = true
				}
				plain++
			}
		}
	}

	// Chaos windows: drawn after the op stream so a chaos plan shares its
	// operation content with the chaos-free plan of the same seed. Each
	// window lives in its own NumOps/ChaosWindows slice of the schedule,
	// with slack on both sides so the run starts healthy, heals between
	// windows, and ends with ops after the last disarm.
	if cfg.ChaosWindows > 0 {
		span := cfg.NumOps / cfg.ChaosWindows
		for w := 0; w < cfg.ChaosWindows; w++ {
			lo := w * span
			arm := lo + span/4 + rng.Intn(span/4)
			disarm := arm + 1 + rng.Intn(span/4)
			p.Chaos = append(p.Chaos, ChaosWindow{ArmAt: arm, DisarmAt: disarm})
		}
		// One heal-probe commit per backed dataset, sequenced after the
		// main schedule: executed only after every dataset healed, so a
		// 2xx proves the write path genuinely re-accepts commits.
		seq := cfg.NumOps
		for _, d := range dss {
			if !d.backed {
				continue
			}
			g, _, err := synth.Evolve(d.cur, evolve, d.nm, rng)
			if err != nil {
				return nil, fmt.Errorf("sim: evolving %s: %w", d.name, err)
			}
			d.cur = g
			id := fmt.Sprintf("v%d", d.next)
			d.next++
			d.version = append(d.version, id)
			var buf bytes.Buffer
			if err := rdf.WriteNTriples(&buf, g); err != nil {
				return nil, fmt.Errorf("sim: serializing %s %s: %w", d.name, id, err)
			}
			p.HealOps = append(p.HealOps, Op{
				Seq: seq, Kind: OpCommit,
				Dataset: d.name, VersionID: id, Body: buf.Bytes(),
			})
			seq++
		}
	}
	return p, nil
}

// pickPair selects an adjacent generated version pair, biased to the most
// recent few — what a live subscriber would ask about.
func pickPair(rng *rand.Rand, versions []string) (older, newer string) {
	span := len(versions) - 1 // adjacent pairs available
	back := rng.Intn(min(span, 4))
	i := span - 1 - back
	return versions[i], versions[i+1]
}

// genInterests emits a canonical "C0003=0.5,C0007=1" spec: 1–3 distinct
// classes from the KB's initial class universe, ascending, weights from the
// closed set. Classes deleted by evolution still parse — an interest is a
// profile term, not a graph lookup.
func genInterests(rng *rand.Rand, classes int) string {
	n := 1 + rng.Intn(3)
	if n > classes {
		n = classes
	}
	picked := make(map[int]bool, n)
	ids := make([]int, 0, n)
	for len(ids) < n {
		c := 1 + rng.Intn(classes)
		if !picked[c] {
			picked[c] = true
			ids = append(ids, c)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	for i, c := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		w := interestWeights[rng.Intn(len(interestWeights))]
		fmt.Fprintf(&b, "C%04d=%s", c, strconv.FormatFloat(w, 'g', -1, 64))
	}
	return b.String()
}

// genMembers emits n distinct "uNN:interests" user specs.
func genMembers(rng *rand.Rand, users, classes, n int) []string {
	if n > users {
		n = users
	}
	picked := make(map[int]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		u := rng.Intn(users)
		if picked[u] {
			continue
		}
		picked[u] = true
		out = append(out, fmt.Sprintf("u%02d:%s", u, genInterests(rng, classes)))
	}
	return out
}

// WriteOpLog renders the plan as one line per operation (plus a header and
// one line per dataset). Commit bodies appear as SHA-256 prefixes, so the
// log is both human-scannable and a byte-exact determinism witness: two
// runs of `evorec sim -seed N -oplog` must produce identical files.
func (p *Plan) WriteOpLog(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("# evorec sim oplog seed=%d ops=%d\n", p.Seed, p.NumOps)
	for _, d := range p.Datasets {
		if d.Backed {
			var buf bytes.Buffer
			if err := rdf.WriteNTriples(&buf, d.Base); err != nil {
				return err
			}
			bw.printf("# dataset %s backed base_sha=%s triples=%d\n",
				d.Name, shortSHA(buf.Bytes()), d.Base.Len())
		} else {
			bw.printf("# dataset %s mem\n", d.Name)
		}
	}
	for _, w := range p.Chaos {
		bw.printf("# chaos arm=%06d disarm=%06d\n", w.ArmAt, w.DisarmAt)
	}
	for i := range p.Ops {
		writeOpLine(bw, &p.Ops[i], "")
	}
	for i := range p.HealOps {
		writeOpLine(bw, &p.HealOps[i], " heal=1")
	}
	return bw.err
}

// writeOpLine renders one canonical oplog line; extra is appended before
// the newline (heal-probe ops are tagged so the log stays self-describing).
func writeOpLine(bw *errWriter, op *Op, extra string) {
	bw.printf("%06d %s ds=%s", op.Seq, op.Kind, op.Dataset)
	if op.User != "" {
		bw.printf(" user=%s", op.User)
	}
	if op.VersionID != "" {
		bw.printf(" version=%s body_sha=%s bytes=%d", op.VersionID, shortSHA(op.Body), len(op.Body))
	}
	if op.Older != "" {
		bw.printf(" pair=%s..%s", op.Older, op.Newer)
	}
	if op.K != 0 {
		bw.printf(" k=%d", op.K)
	}
	if op.Strategy != "" {
		bw.printf(" strategy=%s", op.Strategy)
	}
	if op.Agg != "" {
		bw.printf(" agg=%s", op.Agg)
	}
	if op.Threshold != 0 {
		bw.printf(" threshold=%s", strconv.FormatFloat(op.Threshold, 'g', -1, 64))
	}
	if op.Interests != "" {
		bw.printf(" interests=%s", op.Interests)
	}
	if len(op.Members) > 0 {
		bw.printf(" members=%s", strings.Join(op.Members, ";"))
	}
	if op.Parity {
		bw.printf(" parity=1")
	}
	bw.printf("%s\n", extra)
}

func shortSHA(b []byte) string {
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%x", sum[:8])
}

// errWriter latches the first write error so WriteOpLog stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
