package sim

import (
	"testing"
	"time"
)

// TestInProcessSoak is the end-to-end integration of the whole harness: a
// real server stack (store, WAL, service, feeds, HTTP, telemetry) under an
// unpaced concurrent mix, with every invariant and conservation law armed.
// Any nonzero violation count is a bug in the server or in the oracle — both
// are worth failing loudly over.
func TestInProcessSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is seconds-long; skipped under -short")
	}
	cfg := Config{
		Seed:           3,
		NumOps:         300,
		Concurrency:    4,
		BackedDatasets: 1,
		MemDatasets:    2,
		Users:          8,
		ParityEvery:    3,
		EvolveOps:      25,
		Strict:         true,
		ScrapeInterval: 300 * time.Millisecond,
		Logf:           t.Logf,
	}
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := StartInProcess(plan, InProcOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck
	cfg.BaseURL, cfg.OpsURL = srv.BaseURL, srv.OpsURL

	res, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		for _, s := range res.Samples {
			t.Error(s)
		}
		t.Fatalf("%d violations over %d checks (by category: %v)",
			res.Violations, res.Checks, res.ByCategory)
	}
	// The run must have actually exercised the system, not vacuously passed.
	if res.Checks < 1000 {
		t.Errorf("only %d invariant checks ran", res.Checks)
	}
	if res.Commits2xx == 0 {
		t.Error("no commits were acknowledged")
	}
	if res.Fanouts == 0 {
		t.Error("no fan-outs were delivered")
	}
	if res.Notified == 0 {
		t.Error("no notifications reached any subscriber")
	}
	if res.Parity == 0 {
		t.Error("no parity comparisons ran")
	}
	if res.Scrapes == 0 {
		t.Error("the telemetry oracle never scraped /metrics")
	}
	if res.TracesSeen == 0 {
		t.Error("the traces cursor never advanced")
	}
	if res.Transport != 0 {
		t.Errorf("%d transport errors against an in-process server", res.Transport)
	}
	rep := res.Report()
	if rep.OpsPerSec <= 0 || len(rep.PerOp) == 0 {
		t.Errorf("report lacks throughput/latency data: %+v", rep)
	}
	if _, ok := rep.PerOp["commit"]; !ok {
		t.Error("report has no commit latency stats")
	}
}

// TestInProcessChaosSoak arms the fault injector on the plan's seeded
// windows and holds the stack to the failure contract: zero violations
// (reads green throughout, no acked commit lost, telemetry conserved —
// including the chaos laws), every degraded entry healed, and the heal
// commits accepted end to end.
func TestInProcessChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is seconds-long; skipped under -short")
	}
	cfg := Config{
		Seed:           7,
		NumOps:         300,
		Concurrency:    4,
		BackedDatasets: 1,
		MemDatasets:    1,
		Users:          8,
		ParityEvery:    3,
		EvolveOps:      25,
		ChaosWindows:   2,
		Strict:         true,
		ScrapeInterval: 300 * time.Millisecond,
		Logf:           t.Logf,
	}
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chaos) != 2 || len(plan.HealOps) == 0 {
		t.Fatalf("plan carries %d chaos windows and %d heal ops, want 2 and >0",
			len(plan.Chaos), len(plan.HealOps))
	}
	srv, err := StartInProcess(plan, InProcOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck
	cfg.BaseURL, cfg.OpsURL = srv.BaseURL, srv.OpsURL
	cfg.Fault = srv.Chaos

	res, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		for _, s := range res.Samples {
			t.Error(s)
		}
		t.Fatalf("%d violations over %d checks (by category: %v)",
			res.Violations, res.Checks, res.ByCategory)
	}
	if srv.Chaos.Faults() == 0 {
		t.Error("the injector never faulted an operation (windows missed all writes)")
	}
	// The conservation pass already holds heals == degraded entries; here
	// just require the incident actually happened and fully resolved.
	if res.DegradedEntries == 0 {
		t.Error("no dataset ever degraded under armed chaos windows")
	}
	if res.Heals != res.DegradedEntries {
		t.Errorf("heals = %g, degraded entries = %g; every incident must resolve",
			res.Heals, res.DegradedEntries)
	}
	if res.Commits2xx == 0 {
		t.Error("no commits were acknowledged around the fault windows")
	}
}
