package sim

import (
	"testing"
	"time"
)

// TestInProcessSoak is the end-to-end integration of the whole harness: a
// real server stack (store, WAL, service, feeds, HTTP, telemetry) under an
// unpaced concurrent mix, with every invariant and conservation law armed.
// Any nonzero violation count is a bug in the server or in the oracle — both
// are worth failing loudly over.
func TestInProcessSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is seconds-long; skipped under -short")
	}
	cfg := Config{
		Seed:           3,
		NumOps:         300,
		Concurrency:    4,
		BackedDatasets: 1,
		MemDatasets:    2,
		Users:          8,
		ParityEvery:    3,
		EvolveOps:      25,
		Strict:         true,
		ScrapeInterval: 300 * time.Millisecond,
		Logf:           t.Logf,
	}
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := StartInProcess(plan, InProcOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck
	cfg.BaseURL, cfg.OpsURL = srv.BaseURL, srv.OpsURL

	res, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		for _, s := range res.Samples {
			t.Error(s)
		}
		t.Fatalf("%d violations over %d checks (by category: %v)",
			res.Violations, res.Checks, res.ByCategory)
	}
	// The run must have actually exercised the system, not vacuously passed.
	if res.Checks < 1000 {
		t.Errorf("only %d invariant checks ran", res.Checks)
	}
	if res.Commits2xx == 0 {
		t.Error("no commits were acknowledged")
	}
	if res.Fanouts == 0 {
		t.Error("no fan-outs were delivered")
	}
	if res.Notified == 0 {
		t.Error("no notifications reached any subscriber")
	}
	if res.Parity == 0 {
		t.Error("no parity comparisons ran")
	}
	if res.Scrapes == 0 {
		t.Error("the telemetry oracle never scraped /metrics")
	}
	if res.TracesSeen == 0 {
		t.Error("the traces cursor never advanced")
	}
	if res.Transport != 0 {
		t.Errorf("%d transport errors against an in-process server", res.Transport)
	}
	rep := res.Report()
	if rep.OpsPerSec <= 0 || len(rep.PerOp) == 0 {
		t.Errorf("report lacks throughput/latency data: %+v", rep)
	}
	if _, ok := rep.PerOp["commit"]; !ok {
		t.Error("report has no commit latency stats")
	}
}
