// Package trend analyzes evolution across whole version chains. The paper's
// introduction promises to help humans "observe changes trends and identify
// the most changed parts of a knowledge base"; this package supplies the
// trend half: per-entity time series of any evolution measure over all
// consecutive version pairs, least-squares slopes, volatility, burst
// detection, and a classification into trend shapes that reports and
// recommenders can consume.
package trend

import (
	"fmt"
	"math"
	"sort"

	"evorec/internal/measures"
	"evorec/internal/rdf"
)

// Series is one entity's measure values over the consecutive version pairs
// of a chain, in evolution order.
type Series struct {
	// Term is the entity the series describes.
	Term rdf.Term
	// Values holds one measure value per consecutive version pair.
	Values []float64
}

// Len returns the number of observations.
func (s Series) Len() int { return len(s.Values) }

// Total returns the cumulative measure value over the chain.
func (s Series) Total() float64 {
	t := 0.0
	for _, v := range s.Values {
		t += v
	}
	return t
}

// Mean returns the mean value.
func (s Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Total() / float64(len(s.Values))
}

// Slope returns the least-squares slope of the series against time steps
// 0..n-1: positive means the entity is changing more and more.
func (s Series) Slope() float64 {
	n := float64(len(s.Values))
	if n < 2 {
		return 0
	}
	// x = 0..n-1: mean = (n-1)/2, Σ(x-mx)² = n(n²-1)/12.
	mx := (n - 1) / 2
	my := s.Mean()
	num := 0.0
	for i, v := range s.Values {
		num += (float64(i) - mx) * (v - my)
	}
	den := n * (n*n - 1) / 12
	return num / den
}

// Volatility returns the population standard deviation of the series.
func (s Series) Volatility() float64 {
	if len(s.Values) < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.Values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.Values)))
}

// BurstIndex returns max/mean (1 for flat series, large when a single pair
// dominates). Zero-mean series return 0.
func (s Series) BurstIndex() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	max := 0.0
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	return max / m
}

// Shape classifies a series into the trend shapes reports consume.
type Shape uint8

const (
	// Quiet: the entity saw (almost) no change over the chain.
	Quiet Shape = iota
	// Rising: change intensity grows over time.
	Rising
	// Falling: change intensity decays over time.
	Falling
	// Bursty: one pair dominates the series.
	Bursty
	// Steady: sustained change without a clear direction.
	Steady
)

// String names the shape.
func (sh Shape) String() string {
	switch sh {
	case Quiet:
		return "quiet"
	case Rising:
		return "rising"
	case Falling:
		return "falling"
	case Bursty:
		return "bursty"
	case Steady:
		return "steady"
	default:
		return fmt.Sprintf("shape(%d)", uint8(sh))
	}
}

// Classify assigns the series a shape. The thresholds are relative to the
// series' own mean, so the classification is scale-free: a direction needs
// a slope moving the mean by ≥ 25% per step and takes precedence (an
// exponential decay is Falling, not Bursty); an undirected series with one
// pair at ≥ 2× the mean is Bursty.
func (s Series) Classify() Shape {
	m := s.Mean()
	if m == 0 {
		return Quiet
	}
	// A single spike can fake a direction; when a burst exists, judge the
	// direction on the series with the peak removed. An exponential rise or
	// decay keeps its direction after the cut, a one-off burst does not.
	judge := s
	if s.BurstIndex() >= 2 && len(s.Values) >= 3 {
		maxIdx := 0
		for i, v := range s.Values {
			if v > s.Values[maxIdx] {
				maxIdx = i
			}
		}
		rest := make([]float64, 0, len(s.Values)-1)
		rest = append(rest, s.Values[:maxIdx]...)
		rest = append(rest, s.Values[maxIdx+1:]...)
		judge = Series{Term: s.Term, Values: rest}
		if judge.Mean() == 0 {
			return Bursty
		}
		rel := judge.Slope() / judge.Mean()
		switch {
		case rel >= 0.25:
			return Rising
		case rel <= -0.25:
			return Falling
		default:
			return Bursty
		}
	}
	rel := s.Slope() / m
	switch {
	case rel >= 0.25:
		return Rising
	case rel <= -0.25:
		return Falling
	default:
		return Steady
	}
}

// Analysis holds the per-entity series of one measure over one chain.
type Analysis struct {
	// MeasureID names the measure the analysis tracks.
	MeasureID string
	// PairIDs labels the consecutive version pairs, in order.
	PairIDs []string
	series  map[rdf.Term]*Series
}

// Analyze evaluates the measure over every consecutive pair of the chain
// and assembles per-entity series. Entities absent from a pair's scores get
// a zero observation, so all series are index-aligned with PairIDs.
func Analyze(vs *rdf.VersionStore, m measures.Measure) (*Analysis, error) {
	if vs.Len() < 2 {
		return nil, fmt.Errorf("trend: need at least 2 versions, have %d", vs.Len())
	}
	a := &Analysis{MeasureID: m.ID(), series: make(map[rdf.Term]*Series)}
	step := 0
	var failed error
	vs.Pairs(func(older, newer *rdf.Version) bool {
		ctx := measures.NewContext(older, newer)
		scores := m.Compute(ctx)
		a.PairIDs = append(a.PairIDs, older.ID+"->"+newer.ID)
		for t, v := range scores {
			s, ok := a.series[t]
			if !ok {
				s = &Series{Term: t, Values: make([]float64, step)}
				a.series[t] = s
			}
			// Backfill zeros if the entity appeared mid-chain.
			for len(s.Values) < step {
				s.Values = append(s.Values, 0)
			}
			s.Values = append(s.Values, v)
		}
		step++
		// Pad entities missing from this pair.
		for _, s := range a.series {
			for len(s.Values) < step {
				s.Values = append(s.Values, 0)
			}
		}
		return true
	})
	if failed != nil {
		return nil, failed
	}
	return a, nil
}

// AnalyzeWithContexts is Analyze over pre-built contexts (one per
// consecutive pair, in order), avoiding recomputation when several measures
// are analyzed over the same chain.
func AnalyzeWithContexts(ctxs []*measures.Context, m measures.Measure) (*Analysis, error) {
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("trend: need at least 1 context")
	}
	a := &Analysis{MeasureID: m.ID(), series: make(map[rdf.Term]*Series)}
	for step, ctx := range ctxs {
		scores := m.Compute(ctx)
		a.PairIDs = append(a.PairIDs, ctx.Older.ID+"->"+ctx.Newer.ID)
		for t, v := range scores {
			s, ok := a.series[t]
			if !ok {
				s = &Series{Term: t, Values: make([]float64, step)}
				a.series[t] = s
			}
			for len(s.Values) < step {
				s.Values = append(s.Values, 0)
			}
			s.Values = append(s.Values, v)
		}
		for _, s := range a.series {
			for len(s.Values) < step+1 {
				s.Values = append(s.Values, 0)
			}
		}
	}
	return a, nil
}

// Series returns the series for one entity (nil if never scored).
func (a *Analysis) Series(t rdf.Term) *Series { return a.series[t] }

// Terms returns all tracked entities, sorted.
func (a *Analysis) Terms() []rdf.Term {
	out := make([]rdf.Term, 0, len(a.series))
	for t := range a.series {
		out = append(out, t)
	}
	rdf.SortTerms(out)
	return out
}

// Len returns the number of tracked entities.
func (a *Analysis) Len() int { return len(a.series) }

// TopBy returns the k entities ranked by the given statistic, descending,
// ties broken by term order.
func (a *Analysis) TopBy(k int, stat func(*Series) float64) []*Series {
	out := make([]*Series, 0, len(a.series))
	for _, s := range a.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := stat(out[i]), stat(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].Term.Compare(out[j].Term) < 0
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

// TopTotal returns the k entities with the largest cumulative change.
func (a *Analysis) TopTotal(k int) []*Series {
	return a.TopBy(k, (*Series).Total)
}

// TopRising returns the k entities with the steepest positive slope.
func (a *Analysis) TopRising(k int) []*Series {
	return a.TopBy(k, (*Series).Slope)
}

// ShapeCounts tallies the trend classification over all entities.
func (a *Analysis) ShapeCounts() map[Shape]int {
	out := make(map[Shape]int)
	for _, s := range a.series {
		out[s.Classify()]++
	}
	return out
}
