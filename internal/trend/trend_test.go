package trend

import (
	"math"
	"testing"

	"evorec/internal/measures"
	"evorec/internal/rdf"
	"evorec/internal/synth"
)

func term(s string) rdf.Term { return rdf.SchemaIRI(s) }

func TestSeriesStatistics(t *testing.T) {
	s := Series{Term: term("A"), Values: []float64{1, 2, 3, 4}}
	if s.Total() != 10 || s.Mean() != 2.5 {
		t.Fatalf("total/mean = %g/%g", s.Total(), s.Mean())
	}
	if math.Abs(s.Slope()-1) > 1e-12 {
		t.Fatalf("slope of 1,2,3,4 = %g, want 1", s.Slope())
	}
	flat := Series{Values: []float64{3, 3, 3}}
	if flat.Slope() != 0 || flat.Volatility() != 0 {
		t.Fatalf("flat slope/vol = %g/%g", flat.Slope(), flat.Volatility())
	}
	if flat.BurstIndex() != 1 {
		t.Fatalf("flat burst index = %g, want 1", flat.BurstIndex())
	}
	empty := Series{}
	if empty.Mean() != 0 || empty.Slope() != 0 || empty.Volatility() != 0 || empty.BurstIndex() != 0 {
		t.Fatal("empty series statistics must be zero")
	}
}

func TestSeriesVolatility(t *testing.T) {
	s := Series{Values: []float64{0, 10}}
	if math.Abs(s.Volatility()-5) > 1e-12 {
		t.Fatalf("volatility of 0,10 = %g, want 5", s.Volatility())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want Shape
	}{
		{"quiet", []float64{0, 0, 0}, Quiet},
		{"rising", []float64{1, 2, 4, 8}, Rising},
		{"falling", []float64{8, 4, 2, 1}, Falling},
		{"bursty", []float64{1, 1, 10, 1}, Bursty},
		{"steady", []float64{5, 6, 5, 6}, Steady},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Series{Values: c.vals}
			if got := s.Classify(); got != c.want {
				t.Fatalf("Classify(%v) = %v, want %v (slope=%g mean=%g burst=%g)",
					c.vals, got, c.want, s.Slope(), s.Mean(), s.BurstIndex())
			}
		})
	}
}

func TestShapeStrings(t *testing.T) {
	for _, sh := range []Shape{Quiet, Rising, Falling, Bursty, Steady} {
		if sh.String() == "" {
			t.Fatal("shape must render")
		}
	}
	if Shape(99).String() == "" {
		t.Fatal("unknown shape must render")
	}
}

func chain(t *testing.T) *rdf.VersionStore {
	t.Helper()
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 40, Locality: 0.8}, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func TestAnalyzeAlignment(t *testing.T) {
	vs := chain(t)
	a, err := Analyze(vs, measures.ChangeCount{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeasureID != "change_count" {
		t.Fatalf("measure ID = %s", a.MeasureID)
	}
	wantPairs := vs.Len() - 1
	if len(a.PairIDs) != wantPairs {
		t.Fatalf("pairs = %d, want %d", len(a.PairIDs), wantPairs)
	}
	// Every series is aligned with the pair axis.
	for _, tm := range a.Terms() {
		if got := a.Series(tm).Len(); got != wantPairs {
			t.Fatalf("series %v length = %d, want %d", tm, got, wantPairs)
		}
	}
	if a.Len() == 0 {
		t.Fatal("analysis must track entities")
	}
	if a.Series(term("NotThere")) != nil {
		t.Fatal("unknown entity must have nil series")
	}
}

func TestAnalyzeNeedsTwoVersions(t *testing.T) {
	vs := rdf.NewVersionStore()
	vs.Add(&rdf.Version{ID: "v1", Graph: rdf.NewGraph()})
	if _, err := Analyze(vs, measures.ChangeCount{}); err == nil {
		t.Fatal("single-version chain must fail")
	}
}

func TestAnalyzeMidChainEntityBackfilled(t *testing.T) {
	// Build a 3-version chain where a class only appears in v2->v3.
	g1 := rdf.NewGraph()
	a := term("A")
	g1.Add(rdf.T(a, rdf.RDFType, rdf.RDFSClass))
	g2 := g1.Clone()
	g2.Add(rdf.T(a, rdf.RDFSLabel, rdf.NewLiteral("x")))
	g3 := g2.Clone()
	late := term("Late")
	g3.Add(rdf.T(late, rdf.RDFType, rdf.RDFSClass))

	vs := rdf.NewVersionStore()
	for i, g := range []*rdf.Graph{g1, g2, g3} {
		vs.Add(&rdf.Version{ID: []string{"v1", "v2", "v3"}[i], Graph: g})
	}
	an, err := Analyze(vs, measures.ChangeCount{})
	if err != nil {
		t.Fatal(err)
	}
	s := an.Series(late)
	if s == nil || s.Len() != 2 {
		t.Fatalf("late series = %+v, want 2 aligned observations", s)
	}
	if s.Values[0] != 0 {
		t.Fatalf("late entity must be backfilled with zero, got %v", s.Values)
	}
	if s.Values[1] == 0 {
		t.Fatal("late entity must register its change in the second pair")
	}
}

func TestAnalyzeWithContextsMatchesAnalyze(t *testing.T) {
	vs := chain(t)
	var ctxs []*measures.Context
	vs.Pairs(func(older, newer *rdf.Version) bool {
		ctxs = append(ctxs, measures.NewContext(older, newer))
		return true
	})
	a1, err := Analyze(vs, measures.ChangeCount{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AnalyzeWithContexts(ctxs, measures.ChangeCount{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Len() != a2.Len() {
		t.Fatalf("entity counts differ: %d vs %d", a1.Len(), a2.Len())
	}
	for _, tm := range a1.Terms() {
		s1, s2 := a1.Series(tm), a2.Series(tm)
		for i := range s1.Values {
			if s1.Values[i] != s2.Values[i] {
				t.Fatalf("series differ for %v at %d", tm, i)
			}
		}
	}
	if _, err := AnalyzeWithContexts(nil, measures.ChangeCount{}); err == nil {
		t.Fatal("empty contexts must fail")
	}
}

func TestTopByAndShapeCounts(t *testing.T) {
	vs := chain(t)
	a, err := Analyze(vs, measures.ChangeCount{})
	if err != nil {
		t.Fatal(err)
	}
	top := a.TopTotal(5)
	if len(top) != 5 {
		t.Fatalf("TopTotal(5) = %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Total() < top[i].Total() {
			t.Fatal("TopTotal must be descending")
		}
	}
	rising := a.TopRising(3)
	for i := 1; i < len(rising); i++ {
		if rising[i-1].Slope() < rising[i].Slope() {
			t.Fatal("TopRising must be descending by slope")
		}
	}
	counts := a.ShapeCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != a.Len() {
		t.Fatalf("shape counts cover %d of %d entities", total, a.Len())
	}
	if over := a.TopTotal(10 * a.Len()); len(over) != a.Len() {
		t.Fatal("over-k TopTotal must return all series")
	}
}
