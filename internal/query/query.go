// Package query implements a small basic-graph-pattern query engine over
// the RDF substrate: triple patterns with named variables, selectivity-
// ordered joins, filters, projection, ordering and top-k limits. The
// paper's relatedness perspective builds on top-k query processing (its
// reference [6]); this package supplies that capability for exploring
// versions and deltas — e.g. "all classes under Agent with more than N
// instances" or "resources that moved between classes".
package query

import (
	"fmt"
	"sort"
	"strings"

	"evorec/internal/rdf"
)

// Atom is one position of a triple pattern: either a concrete term or a
// named variable.
type Atom struct {
	// Term is the concrete value; ignored when Var is set.
	Term rdf.Term
	// Var is the variable name (without '?'); empty means concrete.
	Var string
}

// IsVar reports whether the atom is a variable.
func (a Atom) IsVar() bool { return a.Var != "" }

// V returns a variable atom.
func V(name string) Atom { return Atom{Var: name} }

// C returns a concrete atom.
func C(t rdf.Term) Atom { return Atom{Term: t} }

// Pattern is one triple pattern of a basic graph pattern.
type Pattern struct {
	S, P, O Atom
}

// String renders the pattern in a SPARQL-like syntax.
func (p Pattern) String() string {
	return fmt.Sprintf("%s %s %s .", atomString(p.S), atomString(p.P), atomString(p.O))
}

func atomString(a Atom) string {
	if a.IsVar() {
		return "?" + a.Var
	}
	return a.Term.String()
}

// Binding maps variable names to terms.
type Binding map[string]rdf.Term

// clone copies a binding.
func (b Binding) clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Filter tests a (possibly partial) binding; bindings failing any filter
// are pruned as soon as all the filter's variables are bound.
type Filter struct {
	// Vars lists the variables the test reads.
	Vars []string
	// Test returns whether the binding passes.
	Test func(Binding) bool
}

// Query is a basic graph pattern with optional filters, projection,
// ordering and limit.
type Query struct {
	// Patterns is the BGP, joined on shared variables.
	Patterns []Pattern
	// Filters prune bindings.
	Filters []Filter
	// Select projects the named variables (empty selects all, sorted).
	Select []string
	// OrderBy sorts results by this variable's term order (optional).
	OrderBy string
	// Descending flips the OrderBy direction.
	Descending bool
	// Limit caps the result count (0 = no limit).
	Limit int
}

// Validate reports structural errors: empty BGP, predicates that are
// literals, projections or order keys over unknown variables.
func (q *Query) Validate() error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("query: empty basic graph pattern")
	}
	vars := q.variables()
	for _, v := range q.Select {
		if _, ok := vars[v]; !ok {
			return fmt.Errorf("query: projected variable ?%s not in pattern", v)
		}
	}
	if q.OrderBy != "" {
		if _, ok := vars[q.OrderBy]; !ok {
			return fmt.Errorf("query: order variable ?%s not in pattern", q.OrderBy)
		}
	}
	for _, f := range q.Filters {
		for _, v := range f.Vars {
			if _, ok := vars[v]; !ok {
				return fmt.Errorf("query: filter variable ?%s not in pattern", v)
			}
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("query: negative limit")
	}
	return nil
}

func (q *Query) variables() map[string]struct{} {
	vars := make(map[string]struct{})
	for _, p := range q.Patterns {
		for _, a := range []Atom{p.S, p.P, p.O} {
			if a.IsVar() {
				vars[a.Var] = struct{}{}
			}
		}
	}
	return vars
}

// Result is the ordered variable list and the matched rows.
type Result struct {
	// Vars is the projected variable order.
	Vars []string
	// Rows holds one term per Var per match.
	Rows [][]rdf.Term
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// Run evaluates the query against the graph.
func Run(g *rdf.Graph, q *Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	order := planOrder(g, q.Patterns)
	var bindings []Binding
	initial := Binding{}
	if b, ok := applyFiltersEarly(q, initial, nil); ok {
		bindings = evaluate(g, q, order, 0, b)
	}

	// Projection order.
	vars := q.Select
	if len(vars) == 0 {
		all := q.variables()
		for v := range all {
			vars = append(vars, v)
		}
		sort.Strings(vars)
	}

	res := &Result{Vars: vars}
	for _, b := range bindings {
		row := make([]rdf.Term, len(vars))
		for i, v := range vars {
			row[i] = b[v]
		}
		res.Rows = append(res.Rows, row)
	}

	// Deterministic order: OrderBy if set, else full row order.
	orderIdx := -1
	if q.OrderBy != "" {
		for i, v := range vars {
			if v == q.OrderBy {
				orderIdx = i
			}
		}
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		if orderIdx >= 0 {
			if c := a[orderIdx].Compare(b[orderIdx]); c != 0 {
				if q.Descending {
					return c > 0
				}
				return c < 0
			}
		}
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// planOrder orders the patterns by estimated selectivity against g: fewer
// matches first, so joins stay narrow. Bound positions use the graph's
// actual counts with all variables treated as wildcards.
func planOrder(g *rdf.Graph, ps []Pattern) []int {
	type cost struct {
		idx int
		n   int
	}
	costs := make([]cost, len(ps))
	for i, p := range ps {
		costs[i] = cost{idx: i, n: g.CountMatch(atomWildcard(p.S), atomWildcard(p.P), atomWildcard(p.O))}
	}
	sort.SliceStable(costs, func(a, b int) bool { return costs[a].n < costs[b].n })
	out := make([]int, len(ps))
	for i, c := range costs {
		out[i] = c.idx
	}
	return out
}

func atomWildcard(a Atom) rdf.Term {
	if a.IsVar() {
		return rdf.Term{}
	}
	return a.Term
}

// evaluate recursively extends bindings pattern by pattern.
func evaluate(g *rdf.Graph, q *Query, order []int, depth int, b Binding) []Binding {
	if depth == len(order) {
		return []Binding{b}
	}
	p := q.Patterns[order[depth]]
	s := resolveAtom(p.S, b)
	pr := resolveAtom(p.P, b)
	o := resolveAtom(p.O, b)
	var out []Binding
	g.ForEachMatch(s, pr, o, func(t rdf.Triple) bool {
		nb := b.clone()
		if !bindAtom(nb, p.S, t.S) || !bindAtom(nb, p.P, t.P) || !bindAtom(nb, p.O, t.O) {
			return true
		}
		pruned, ok := applyFiltersEarly(q, nb, b)
		if !ok {
			return true
		}
		out = append(out, evaluate(g, q, order, depth+1, pruned)...)
		return true
	})
	return out
}

// resolveAtom turns an atom into a match term under the current binding.
func resolveAtom(a Atom, b Binding) rdf.Term {
	if !a.IsVar() {
		return a.Term
	}
	if t, ok := b[a.Var]; ok {
		return t
	}
	return rdf.Term{}
}

// bindAtom records a variable binding, rejecting conflicts (the same
// variable matching two different terms within one pattern).
func bindAtom(b Binding, a Atom, t rdf.Term) bool {
	if !a.IsVar() {
		return true
	}
	if prev, ok := b[a.Var]; ok {
		return prev == t
	}
	b[a.Var] = t
	return true
}

// applyFiltersEarly evaluates every filter whose variables are all bound in
// nb but were not all bound in prev (so each filter runs once, as early as
// possible). It returns ok=false when a filter rejects.
func applyFiltersEarly(q *Query, nb Binding, prev Binding) (Binding, bool) {
	for _, f := range q.Filters {
		allNow := true
		allBefore := prev != nil
		for _, v := range f.Vars {
			if _, ok := nb[v]; !ok {
				allNow = false
				break
			}
			if prev != nil {
				if _, ok := prev[v]; !ok {
					allBefore = false
				}
			}
		}
		if allNow && !allBefore {
			if !f.Test(nb) {
				return nil, false
			}
		}
	}
	return nb, true
}

// String renders the query in a SPARQL-like syntax, for logs and reports.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		for i, v := range q.Select {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString("?" + v)
		}
	}
	b.WriteString(" WHERE { ")
	for _, p := range q.Patterns {
		b.WriteString(p.String())
		b.WriteByte(' ')
	}
	b.WriteString("}")
	if q.OrderBy != "" {
		b.WriteString(" ORDER BY ?" + q.OrderBy)
		if q.Descending {
			b.WriteString(" DESC")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
