package query

import (
	"fmt"
	"strings"
	"testing"

	"evorec/internal/rdf"
)

// fixture: a small org chart.
//
//	alice worksFor acme;   knows bob
//	bob   worksFor acme;   knows carol
//	carol worksFor globex
//	acme/globex typed Company; people typed Person
func fixture() *rdf.Graph {
	g := rdf.NewGraph()
	person, company := rdf.SchemaIRI("Person"), rdf.SchemaIRI("Company")
	worksFor, knows := rdf.SchemaIRI("worksFor"), rdf.SchemaIRI("knows")
	alice, bob, carol := rdf.ResourceIRI("alice"), rdf.ResourceIRI("bob"), rdf.ResourceIRI("carol")
	acme, globex := rdf.ResourceIRI("acme"), rdf.ResourceIRI("globex")
	for _, x := range []rdf.Term{alice, bob, carol} {
		g.Add(rdf.T(x, rdf.RDFType, person))
	}
	g.Add(rdf.T(acme, rdf.RDFType, company))
	g.Add(rdf.T(globex, rdf.RDFType, company))
	g.Add(rdf.T(alice, worksFor, acme))
	g.Add(rdf.T(bob, worksFor, acme))
	g.Add(rdf.T(carol, worksFor, globex))
	g.Add(rdf.T(alice, knows, bob))
	g.Add(rdf.T(bob, knows, carol))
	return g
}

func TestSinglePattern(t *testing.T) {
	g := fixture()
	res, err := Run(g, &Query{
		Patterns: []Pattern{{V("x"), C(rdf.RDFType), C(rdf.SchemaIRI("Person"))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("persons = %d, want 3", res.Len())
	}
	if len(res.Vars) != 1 || res.Vars[0] != "x" {
		t.Fatalf("vars = %v", res.Vars)
	}
}

func TestJoinAcrossPatterns(t *testing.T) {
	g := fixture()
	// People working for acme who know someone.
	res, err := Run(g, &Query{
		Patterns: []Pattern{
			{V("p"), C(rdf.SchemaIRI("worksFor")), C(rdf.ResourceIRI("acme"))},
			{V("p"), C(rdf.SchemaIRI("knows")), V("q")},
		},
		Select: []string{"p", "q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // alice knows bob; bob knows carol
		t.Fatalf("rows = %d, want 2: %v", res.Len(), res.Rows)
	}
}

func TestTransitiveStylePattern(t *testing.T) {
	g := fixture()
	// Two-hop acquaintance: x knows y, y knows z.
	res, err := Run(g, &Query{
		Patterns: []Pattern{
			{V("x"), C(rdf.SchemaIRI("knows")), V("y")},
			{V("y"), C(rdf.SchemaIRI("knows")), V("z")},
		},
		Select: []string{"x", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("two-hop rows = %d, want 1", res.Len())
	}
	if res.Rows[0][0] != rdf.ResourceIRI("alice") || res.Rows[0][1] != rdf.ResourceIRI("carol") {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestSharedVariableWithinPattern(t *testing.T) {
	g := fixture()
	g.Add(rdf.T(rdf.ResourceIRI("self"), rdf.SchemaIRI("knows"), rdf.ResourceIRI("self")))
	res, err := Run(g, &Query{
		Patterns: []Pattern{{V("x"), C(rdf.SchemaIRI("knows")), V("x")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != rdf.ResourceIRI("self") {
		t.Fatalf("self-loop rows = %v", res.Rows)
	}
}

func TestVariablePredicate(t *testing.T) {
	g := fixture()
	res, err := Run(g, &Query{
		Patterns: []Pattern{{C(rdf.ResourceIRI("alice")), V("p"), V("o")}},
		Select:   []string{"p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // type, worksFor, knows
		t.Fatalf("alice facts = %d, want 3", res.Len())
	}
}

func TestFilterPruning(t *testing.T) {
	g := fixture()
	res, err := Run(g, &Query{
		Patterns: []Pattern{{V("p"), C(rdf.SchemaIRI("worksFor")), V("c")}},
		Filters: []Filter{{
			Vars: []string{"c"},
			Test: func(b Binding) bool { return b["c"] == rdf.ResourceIRI("globex") },
		}},
		Select: []string{"p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != rdf.ResourceIRI("carol") {
		t.Fatalf("filtered rows = %v", res.Rows)
	}
}

func TestFilterRunsOncePerBinding(t *testing.T) {
	g := fixture()
	calls := 0
	_, err := Run(g, &Query{
		Patterns: []Pattern{
			{V("p"), C(rdf.SchemaIRI("worksFor")), V("c")},
			{V("p"), C(rdf.RDFType), V("t")},
		},
		Filters: []Filter{{
			Vars: []string{"p"},
			Test: func(b Binding) bool { calls++; return true },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// p binds in the first evaluated pattern; the filter must fire once per
	// distinct p-binding event, not once per joined row... with 3 workers
	// and selectivity ordering both patterns have 3 matches; either order
	// gives exactly 3 filter calls.
	if calls != 3 {
		t.Fatalf("filter calls = %d, want 3", calls)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	g := fixture()
	res, err := Run(g, &Query{
		Patterns: []Pattern{{V("p"), C(rdf.SchemaIRI("worksFor")), V("c")}},
		Select:   []string{"p"},
		OrderBy:  "p",
		Limit:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("limit rows = %d", res.Len())
	}
	if res.Rows[0][0].Compare(res.Rows[1][0]) >= 0 {
		t.Fatal("ascending order violated")
	}
	desc, err := Run(g, &Query{
		Patterns:   []Pattern{{V("p"), C(rdf.SchemaIRI("worksFor")), V("c")}},
		Select:     []string{"p"},
		OrderBy:    "p",
		Descending: true,
		Limit:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if desc.Rows[0][0] != rdf.ResourceIRI("carol") {
		t.Fatalf("descending top = %v", desc.Rows[0][0])
	}
}

func TestDeterministicWithoutOrderBy(t *testing.T) {
	g := fixture()
	q := &Query{Patterns: []Pattern{{V("s"), V("p"), V("o")}}}
	a, err := Run(g, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("row order must be deterministic")
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	g := fixture()
	cases := []struct {
		name string
		q    *Query
	}{
		{"empty BGP", &Query{}},
		{"unknown projection", &Query{
			Patterns: []Pattern{{V("x"), V("p"), V("o")}},
			Select:   []string{"nope"},
		}},
		{"unknown order var", &Query{
			Patterns: []Pattern{{V("x"), V("p"), V("o")}},
			OrderBy:  "nope",
		}},
		{"unknown filter var", &Query{
			Patterns: []Pattern{{V("x"), V("p"), V("o")}},
			Filters:  []Filter{{Vars: []string{"nope"}, Test: func(Binding) bool { return true }}},
		}},
		{"negative limit", &Query{
			Patterns: []Pattern{{V("x"), V("p"), V("o")}},
			Limit:    -1,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Run(g, c.q); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestQueryString(t *testing.T) {
	q := &Query{
		Patterns: []Pattern{{V("x"), C(rdf.RDFType), C(rdf.SchemaIRI("Person"))}},
		Select:   []string{"x"},
		OrderBy:  "x",
		Limit:    5,
	}
	s := q.String()
	for _, want := range []string{"SELECT ?x", "WHERE", "?x", "Person", "ORDER BY ?x", "LIMIT 5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("query string %q missing %q", s, want)
		}
	}
	star := &Query{Patterns: []Pattern{{V("x"), V("p"), V("o")}}}
	if !strings.Contains(star.String(), "SELECT *") {
		t.Fatal("empty projection must render as *")
	}
}

func TestSelectivityPlanning(t *testing.T) {
	// A graph where one pattern is very selective: planner must still give
	// correct results regardless of pattern order in the query.
	g := rdf.NewGraph()
	p, q := rdf.SchemaIRI("p"), rdf.SchemaIRI("q")
	target := rdf.ResourceIRI("t")
	for i := 0; i < 100; i++ {
		g.Add(rdf.T(rdf.ResourceIRI(fmt.Sprintf("x%d", i)), p, rdf.ResourceIRI(fmt.Sprintf("y%d", i))))
	}
	g.Add(rdf.T(rdf.ResourceIRI("x5"), q, target))

	for _, patterns := range [][]Pattern{
		{{V("x"), C(p), V("y")}, {V("x"), C(q), C(target)}},
		{{V("x"), C(q), C(target)}, {V("x"), C(p), V("y")}},
	} {
		res, err := Run(g, &Query{Patterns: patterns, Select: []string{"x", "y"}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 || res.Rows[0][0] != rdf.ResourceIRI("x5") {
			t.Fatalf("rows = %v", res.Rows)
		}
	}
}

func TestNoMatches(t *testing.T) {
	g := fixture()
	res, err := Run(g, &Query{
		Patterns: []Pattern{{V("x"), C(rdf.SchemaIRI("absent")), V("y")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("rows = %d, want 0", res.Len())
	}
}
