package rdf

import (
	"slices"
	"strings"
)

// Triple is a single RDF statement. Triples are comparable values and may be
// used as map keys, which the delta engine relies on for set difference.
type Triple struct {
	S, P, O Term
}

// T is shorthand for constructing a triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (with trailing " .").
func (t Triple) String() string {
	var b strings.Builder
	b.WriteString(t.S.String())
	b.WriteByte(' ')
	b.WriteString(t.P.String())
	b.WriteByte(' ')
	b.WriteString(t.O.String())
	b.WriteString(" .")
	return b.String()
}

// Compare orders triples by subject, predicate, then object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// Mentions reports whether term x occurs in any position of the triple.
func (t Triple) Mentions(x Term) bool {
	return t.S == x || t.P == x || t.O == x
}

// SortTriples sorts the slice in subject/predicate/object order, in place.
// It is used wherever deterministic output is required (serialization,
// experiment tables, tests).
func SortTriples(ts []Triple) {
	slices.SortFunc(ts, Triple.Compare)
}

// SortTerms sorts terms with Term.Compare, in place.
func SortTerms(ts []Term) {
	slices.SortFunc(ts, Term.Compare)
}

// Compare orders ID-triples numerically by subject, predicate, then object.
// Note this is ID (interning) order, not the term order of Triple.Compare.
func (t IDTriple) Compare(u IDTriple) int {
	if t.S != u.S {
		if t.S < u.S {
			return -1
		}
		return 1
	}
	if t.P != u.P {
		if t.P < u.P {
			return -1
		}
		return 1
	}
	if t.O != u.O {
		if t.O < u.O {
			return -1
		}
		return 1
	}
	return 0
}

// SortIDTriples sorts the slice in numeric (S, P, O) order, in place. The
// binary store's varint delta encoding requires exactly this order.
func SortIDTriples(ts []IDTriple) {
	slices.SortFunc(ts, IDTriple.Compare)
}
