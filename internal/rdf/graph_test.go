package rdf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkTriple(i int) Triple {
	return T(
		NewIRI(fmt.Sprintf("http://x/s%d", i%7)),
		NewIRI(fmt.Sprintf("http://x/p%d", i%3)),
		NewIRI(fmt.Sprintf("http://x/o%d", i)),
	)
}

func TestGraphAddRemoveHasLen(t *testing.T) {
	g := NewGraph()
	tr := mkTriple(1)
	if g.Has(tr) {
		t.Fatal("empty graph must not contain triple")
	}
	if !g.Add(tr) {
		t.Fatal("first Add must report insertion")
	}
	if g.Add(tr) {
		t.Fatal("duplicate Add must report no insertion")
	}
	if !g.Has(tr) || g.Len() != 1 {
		t.Fatalf("Has/Len wrong after add: has=%v len=%d", g.Has(tr), g.Len())
	}
	if !g.Remove(tr) {
		t.Fatal("Remove of present triple must report true")
	}
	if g.Remove(tr) {
		t.Fatal("Remove of absent triple must report false")
	}
	if g.Has(tr) || g.Len() != 0 {
		t.Fatalf("graph not empty after remove: len=%d", g.Len())
	}
}

func TestGraphRemoveCleansIndexes(t *testing.T) {
	g := NewGraph()
	tr := mkTriple(1)
	g.Add(tr)
	g.Remove(tr)
	if len(g.spo) != 0 || len(g.pos) != 0 || len(g.osp) != 0 {
		t.Fatalf("indexes must be empty after removing sole triple: spo=%d pos=%d osp=%d",
			len(g.spo), len(g.pos), len(g.osp))
	}
}

func TestGraphMatchAllPatterns(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 40; i++ {
		g.Add(mkTriple(i))
	}
	tr := mkTriple(5)
	w := Term{}
	cases := []struct {
		name    string
		s, p, o Term
	}{
		{"fully bound", tr.S, tr.P, tr.O},
		{"s p ?", tr.S, tr.P, w},
		{"s ? o", tr.S, w, tr.O},
		{"? p o", w, tr.P, tr.O},
		{"s ? ?", tr.S, w, w},
		{"? p ?", w, tr.P, w},
		{"? ? o", w, w, tr.O},
		{"? ? ?", w, w, w},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := g.Match(c.s, c.p, c.o)
			// Cross-check against a brute-force scan.
			var want int
			for _, x := range g.Triples() {
				if (c.s.IsWildcard() || x.S == c.s) &&
					(c.p.IsWildcard() || x.P == c.p) &&
					(c.o.IsWildcard() || x.O == c.o) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("Match returned %d triples, brute force found %d", len(got), want)
			}
			if cm := g.CountMatch(c.s, c.p, c.o); cm != want {
				t.Fatalf("CountMatch = %d, want %d", cm, want)
			}
			for _, x := range got {
				if !g.Has(x) {
					t.Fatalf("Match returned absent triple %v", x)
				}
			}
		})
	}
}

func TestGraphForEachMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 20; i++ {
		g.Add(mkTriple(i))
	}
	n := 0
	g.ForEachMatch(Term{}, Term{}, Term{}, func(Triple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestGraphSubjectsObjectsPredicates(t *testing.T) {
	g := NewGraph()
	p := NewIRI("http://x/p")
	a, b, c := NewIRI("http://x/a"), NewIRI("http://x/b"), NewIRI("http://x/c")
	g.Add(T(a, p, c))
	g.Add(T(b, p, c))
	g.Add(T(a, RDFType, RDFSClass))

	subs := g.Subjects(p, c)
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v, want 2 terms", subs)
	}
	objs := g.Objects(a, p)
	if len(objs) != 1 || objs[0] != c {
		t.Fatalf("Objects = %v, want [c]", objs)
	}
	preds := g.Predicates()
	if len(preds) != 2 {
		t.Fatalf("Predicates = %v, want 2 terms", preds)
	}
}

func TestGraphCloneIndependence(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.Add(mkTriple(i))
	}
	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone len = %d, want %d", c.Len(), g.Len())
	}
	extra := mkTriple(99)
	c.Add(extra)
	if g.Has(extra) {
		t.Fatal("mutating clone must not affect original")
	}
	c.Remove(mkTriple(0))
	if !g.Has(mkTriple(0)) {
		t.Fatal("removing from clone must not affect original")
	}
}

func TestGraphDegrees(t *testing.T) {
	g := NewGraph()
	a, b, c := NewIRI("http://x/a"), NewIRI("http://x/b"), NewIRI("http://x/c")
	p, q := NewIRI("http://x/p"), NewIRI("http://x/q")
	g.Add(T(a, p, b))
	g.Add(T(a, q, b))
	g.Add(T(a, p, c))
	if got := g.DegreeOut(a); got != 3 {
		t.Fatalf("DegreeOut(a) = %d, want 3", got)
	}
	if got := g.DegreeIn(b); got != 2 {
		t.Fatalf("DegreeIn(b) = %d, want 2", got)
	}
	if got := g.DegreeOut(b); got != 0 {
		t.Fatalf("DegreeOut(b) = %d, want 0", got)
	}
}

func TestGraphMentions(t *testing.T) {
	g := NewGraph()
	a, p, b := NewIRI("http://x/a"), NewIRI("http://x/p"), NewLiteral("b")
	g.Add(T(a, p, b))
	for _, x := range []Term{a, p, b} {
		if !g.Mentions(x) {
			t.Errorf("Mentions(%v) = false, want true", x)
		}
	}
	if g.Mentions(NewIRI("http://x/zzz")) {
		t.Error("Mentions(absent) = true")
	}
}

// Property: for any sequence of adds and removes, Len equals the size of a
// reference map-based set and Has agrees with it.
func TestGraphSetSemanticsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		g := NewGraph()
		ref := make(map[Triple]bool)
		for _, op := range ops {
			tr := mkTriple(int(op % 101))
			if op%2 == 0 {
				g.Add(tr)
				ref[tr] = true
			} else {
				g.Remove(tr)
				delete(ref, tr)
			}
		}
		if g.Len() != len(ref) {
			return false
		}
		for tr := range ref {
			if !g.Has(tr) {
				return false
			}
		}
		for _, tr := range g.Triples() {
			if !ref[tr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the three indexes always answer pattern queries consistently.
func TestGraphIndexConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGraph()
	for i := 0; i < 300; i++ {
		g.Add(mkTriple(rng.Intn(150)))
	}
	for i := 0; i < 100; i++ {
		g.Remove(mkTriple(rng.Intn(150)))
	}
	for _, tr := range g.Triples() {
		if len(g.Match(tr.S, Term{}, Term{})) == 0 {
			t.Fatalf("SPO index lost %v", tr)
		}
		if len(g.Match(Term{}, tr.P, Term{})) == 0 {
			t.Fatalf("POS index lost %v", tr)
		}
		if len(g.Match(Term{}, Term{}, tr.O)) == 0 {
			t.Fatalf("OSP index lost %v", tr)
		}
	}
}
