// Package rdf provides the RDF substrate for evorec: terms, triples, an
// indexed in-memory graph store, N-Triples I/O, the RDF/S vocabulary used by
// the schema layer, and a version store for evolving datasets.
//
// The package is deliberately self-contained (stdlib only) and optimized for
// the access patterns of evolution analysis: pattern matching with any
// combination of bound positions, fast set difference between versions, and
// deterministic iteration for reproducible experiments.
package rdf

import (
	"fmt"
	"strings"
)

// Kind discriminates the kinds of RDF terms. The zero value is Any, which
// acts as a wildcard in graph pattern matching; a zero Term therefore means
// "match anything at this position".
type Kind uint8

const (
	// Any is the wildcard kind used in pattern matching.
	Any Kind = iota
	// IRI identifies an IRI reference term.
	IRI
	// Blank identifies a blank node with a local label.
	Blank
	// Literal identifies a literal with optional datatype or language tag.
	Literal
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Any:
		return "any"
	case IRI:
		return "iri"
	case Blank:
		return "blank"
	case Literal:
		return "literal"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Term is a single RDF term. Terms are small comparable values and may be
// used directly as map keys. The zero Term is the pattern wildcard.
type Term struct {
	// Kind discriminates the term kind; Any means wildcard.
	Kind Kind
	// Value holds the IRI, the blank node label, or the literal lexical form.
	Value string
	// Datatype holds the datatype IRI for typed literals, empty otherwise.
	Datatype string
	// Lang holds the language tag for language-tagged literals.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank node term with the given label (without "_:").
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewLiteral returns a plain literal term.
func NewLiteral(value string) Term { return Term{Kind: Literal, Value: value} }

// NewTypedLiteral returns a literal with a datatype IRI.
func NewTypedLiteral(value, datatype string) Term {
	return Term{Kind: Literal, Value: value, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(value, lang string) Term {
	return Term{Kind: Literal, Value: value, Lang: lang}
}

// IsWildcard reports whether the term is the pattern wildcard.
func (t Term) IsWildcard() bool { return t.Kind == Any }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// Local returns the local name of an IRI: the suffix after the last '#' or
// '/'. For non-IRI terms it returns Value unchanged. It is a display helper
// used by reports and examples.
func (t Term) Local() string {
	if t.Kind != IRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexAny(v, "#/"); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// Compare orders terms by kind, then value, then datatype, then language.
// It returns -1, 0, or +1, suitable for sort functions.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, u.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, u.Lang)
}

// String renders the term in N-Triples syntax. Wildcards render as "?".
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return "?"
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
