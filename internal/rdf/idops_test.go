package rdf

import "testing"

// idTriples builds a small shared-dict graph and returns it with the encoded
// forms of its triples.
func idGraph(t *testing.T) (*Graph, []IDTriple) {
	t.Helper()
	g := NewGraph()
	triples := []Triple{
		T(NewIRI("ex:a"), NewIRI("ex:p"), NewIRI("ex:b")),
		T(NewIRI("ex:a"), NewIRI("ex:p"), NewIRI("ex:c")),
		T(NewIRI("ex:b"), NewIRI("ex:q"), NewLiteral("x")),
	}
	g.AddAll(triples)
	ids := make([]IDTriple, 0, len(triples))
	for _, tr := range triples {
		s, _ := g.Dict().Lookup(tr.S)
		p, _ := g.Dict().Lookup(tr.P)
		o, _ := g.Dict().Lookup(tr.O)
		ids = append(ids, IDTriple{s, p, o})
	}
	return g, ids
}

func TestAddIDRemoveID(t *testing.T) {
	g, ids := idGraph(t)
	if g.AddID(ids[0]) {
		t.Fatal("AddID of present triple must report false")
	}
	if !g.RemoveID(ids[0]) {
		t.Fatal("RemoveID of present triple must report true")
	}
	if g.HasID(ids[0]) || g.Len() != 2 {
		t.Fatal("RemoveID did not remove the triple")
	}
	if g.RemoveID(ids[0]) {
		t.Fatal("RemoveID of absent triple must report false")
	}
	if !g.AddID(ids[0]) {
		t.Fatal("AddID of absent triple must report true")
	}
	if !g.HasID(ids[0]) || g.Len() != 3 {
		t.Fatal("AddID did not restore the triple")
	}
	// All indexes must agree after ID-level churn.
	if got := g.CountMatch(Term{}, NewIRI("ex:p"), Term{}); got != 2 {
		t.Fatalf("POS index out of sync after ID ops: got %d matches, want 2", got)
	}
	if got := g.CountMatch(Term{}, Term{}, NewIRI("ex:b")); got != 1 {
		t.Fatalf("OSP index out of sync after ID ops: got %d matches, want 1", got)
	}
}

func TestAddIDUncheckedSortedRun(t *testing.T) {
	src, ids := idGraph(t)
	SortIDTriples(ids)
	g := NewGraphWithDict(src.Dict())
	for _, id := range ids {
		g.AddIDUnchecked(id)
	}
	if g.Len() != src.Len() {
		t.Fatalf("unchecked ingest: len = %d, want %d", g.Len(), src.Len())
	}
	for _, id := range ids {
		if !g.HasID(id) {
			t.Fatalf("unchecked ingest lost triple %v", id)
		}
	}
	// SPO leaves must have stayed sorted so membership (binary search) works
	// for later checked adds too.
	if g.AddID(ids[0]) {
		t.Fatal("AddID after unchecked ingest must see existing triples")
	}
}

func TestForEachTermOrder(t *testing.T) {
	d := NewDict()
	terms := []Term{NewIRI("ex:a"), NewLiteral("x"), NewBlank("b1")}
	for _, tm := range terms {
		d.Intern(tm)
	}
	var gotIDs []TermID
	var gotTerms []Term
	d.ForEachTerm(func(id TermID, tm Term) bool {
		gotIDs = append(gotIDs, id)
		gotTerms = append(gotTerms, tm)
		return true
	})
	if len(gotTerms) != len(terms) {
		t.Fatalf("ForEachTerm visited %d terms, want %d", len(gotTerms), len(terms))
	}
	for i := range terms {
		if gotIDs[i] != TermID(i+1) || gotTerms[i] != terms[i] {
			t.Fatalf("entry %d = (%d, %v), want (%d, %v)", i, gotIDs[i], gotTerms[i], i+1, terms[i])
		}
	}
	// Re-interning in streamed order must reproduce the ID assignment.
	d2 := NewDict()
	d.ForEachTerm(func(id TermID, tm Term) bool {
		if got := d2.Intern(tm); got != id {
			t.Fatalf("re-intern of %v = %d, want %d", tm, got, id)
		}
		return true
	})
	// Early stop.
	n := 0
	d.ForEachTerm(func(TermID, Term) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d entries, want 1", n)
	}
}

func TestSortIDTriples(t *testing.T) {
	ts := []IDTriple{{2, 1, 1}, {1, 2, 1}, {1, 1, 2}, {1, 1, 1}}
	SortIDTriples(ts)
	want := []IDTriple{{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {2, 1, 1}}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
	if (IDTriple{1, 2, 3}).Compare(IDTriple{1, 2, 3}) != 0 {
		t.Fatal("equal ID-triples must compare 0")
	}
}
