package rdf

import (
	"strings"
	"testing"
)

// FuzzParseTripleLine checks the parser invariants on arbitrary input: it
// must never panic, and anything it accepts must re-serialize and re-parse
// to the same triple (the round-trip invariant backing the archive layer).
// Under plain `go test` the seed corpus runs as unit cases; `go test
// -fuzz=FuzzParseTripleLine ./internal/rdf` explores further.
// FuzzDictIntern checks the interner invariants on arbitrary term content:
// Intern must never panic, TermOf(Intern(t)) must round-trip to the exact
// term, interning is idempotent, and a graph keyed on the resulting IDs
// agrees with direct term comparison.
func FuzzDictIntern(f *testing.F) {
	f.Add(uint8(1), "http://example.org/x", "", "")
	f.Add(uint8(2), "b0", "", "")
	f.Add(uint8(3), "plain", "", "")
	f.Add(uint8(3), "typed", "http://www.w3.org/2001/XMLSchema#int", "")
	f.Add(uint8(3), "tagged", "", "en-GB")
	f.Add(uint8(0), "", "", "")
	f.Add(uint8(250), "\x00weird\xff", "dt", "lang")
	f.Fuzz(func(t *testing.T, kind uint8, value, datatype, lang string) {
		term := Term{Kind: Kind(kind), Value: value, Datatype: datatype, Lang: lang}
		d := NewDict()
		id := d.Intern(term)
		if term.IsWildcard() {
			if id != AnyID {
				t.Fatalf("wildcard interned to %d, want AnyID", id)
			}
			return
		}
		if got := d.TermOf(id); got != term {
			t.Fatalf("round trip changed term: %#v -> %#v", term, got)
		}
		if again := d.Intern(term); again != id {
			t.Fatalf("interning not idempotent: %d then %d", id, again)
		}
		if got, ok := d.Lookup(term); !ok || got != id {
			t.Fatalf("Lookup disagrees with Intern: (%d, %v) vs %d", got, ok, id)
		}
		// The graph built on these IDs must see the triple exactly once.
		g := NewGraphWithDict(d)
		tr := Triple{S: term, P: term, O: term}
		if !g.Add(tr) || g.Add(tr) {
			t.Fatalf("Add novelty wrong for %#v", tr)
		}
		if !g.Has(tr) || g.Len() != 1 {
			t.Fatalf("graph lost fuzzed triple %#v", tr)
		}
	})
}

func FuzzParseTripleLine(f *testing.F) {
	seeds := []string{
		"<http://x/s> <http://x/p> <http://x/o> .",
		`<http://x/s> <http://x/p> "lit" .`,
		`<http://x/s> <http://x/p> "l\"it\\"@en .`,
		`<http://x/s> <http://x/p> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		"_:a <http://x/p> _:b .",
		"# comment",
		"",
		"   ",
		"<http://x/s> <http://x/p> <http://x/o> . # trailing",
		"malformed",
		`<s> <p> "unterminated`,
		`<s> <p> "A" .`,
		`<s> <p> "\U0001F600" .`,
		"<s> <p> \"x\"@en-GB .",
		"_:a.b-c_d <p> _:z .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, ok, err := ParseTripleLine(line, 1)
		if err != nil || !ok {
			return // rejected input is fine; panics are not
		}
		// Round-trip invariant.
		re := tr.String()
		tr2, ok2, err2 := ParseTripleLine(re, 1)
		if err2 != nil || !ok2 {
			t.Fatalf("accepted triple failed to re-parse: %q -> %q (%v)", line, re, err2)
		}
		if tr2 != tr {
			t.Fatalf("round trip changed the triple: %v vs %v", tr, tr2)
		}
		// Accepted triples must satisfy N-Triples constraints.
		if tr.S.IsLiteral() {
			t.Fatalf("accepted literal subject from %q", line)
		}
		if !tr.P.IsIRI() {
			t.Fatalf("accepted non-IRI predicate from %q", line)
		}
		if strings.ContainsAny(tr.S.Value+tr.P.Value, " ") && tr.S.IsIRI() {
			t.Fatalf("accepted IRI with space from %q", line)
		}
	})
}
