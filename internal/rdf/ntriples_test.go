package rdf

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTripleLineBasic(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want Triple
	}{
		{
			"iri triple",
			"<http://x/s> <http://x/p> <http://x/o> .",
			T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o")),
		},
		{
			"plain literal",
			`<http://x/s> <http://x/p> "hello" .`,
			T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("hello")),
		},
		{
			"typed literal",
			`<http://x/s> <http://x/p> "42"^^<` + XSDInteger + `> .`,
			T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewTypedLiteral("42", XSDInteger)),
		},
		{
			"lang literal",
			`<http://x/s> <http://x/p> "hallo"@de .`,
			T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLangLiteral("hallo", "de")),
		},
		{
			"blank subject and object",
			"_:a <http://x/p> _:b .",
			T(NewBlank("a"), NewIRI("http://x/p"), NewBlank("b")),
		},
		{
			"escapes",
			`<http://x/s> <http://x/p> "a\"b\\c\nd\te\r" .`,
			T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("a\"b\\c\nd\te\r")),
		},
		{
			"unicode escape",
			`<http://x/s> <http://x/p> "café" .`,
			T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("café")),
		},
		{
			"trailing comment",
			"<http://x/s> <http://x/p> <http://x/o> . # note",
			T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o")),
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, ok, err := ParseTripleLine(c.in, 1)
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !ok {
				t.Fatal("ok = false for a triple line")
			}
			if got != c.want {
				t.Fatalf("got %v, want %v", got, c.want)
			}
		})
	}
}

func TestParseTripleLineSkips(t *testing.T) {
	for _, in := range []string{"", "   ", "# a comment", "  # indented comment"} {
		_, ok, err := ParseTripleLine(in, 1)
		if err != nil || ok {
			t.Errorf("ParseTripleLine(%q) = ok=%v err=%v, want skip", in, ok, err)
		}
	}
}

func TestParseTripleLineErrors(t *testing.T) {
	cases := []string{
		"<http://x/s> <http://x/p> <http://x/o>",     // missing dot
		"<http://x/s> <http://x/p> .",                // missing object
		`"lit" <http://x/p> <http://x/o> .`,          // literal subject
		"<http://x/s> _:b <http://x/o> .",            // blank predicate
		"<http://x/s> <http://x/p> <http://x/o> . x", // trailing garbage
		"<http://x/s <http://x/p> <http://x/o> .",    // unterminated IRI
		`<http://x/s> <http://x/p> "unterminated .`,  // unterminated literal
		`<http://x/s> <http://x/p> "bad\q" .`,        // unknown escape
		`<http://x/s> <http://x/p> "x"@ .`,           // empty lang
		`<http://x/s> <http://x/p> "x"^^<> .`,        // empty datatype IRI
		"<http://x/s> <http://x/p> \"tr\\u00G9\" .",  // bad hex
		"_: <http://x/p> <http://x/o> .",             // empty blank label
	}
	for _, in := range cases {
		_, ok, err := ParseTripleLine(in, 3)
		if err == nil {
			t.Errorf("ParseTripleLine(%q): want error, got ok=%v", in, ok)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("ParseTripleLine(%q): error %v is not *ParseError", in, err)
			continue
		}
		if pe.Line != 3 {
			t.Errorf("ParseTripleLine(%q): line = %d, want 3", in, pe.Line)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Add(T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o")))
	g.Add(T(NewIRI("http://x/s"), RDFSLabel, NewLangLiteral("système", "fr")))
	g.Add(T(NewBlank("n1"), RDFType, RDFSClass))
	g.Add(T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewTypedLiteral("3.5", XSDDouble)))
	g.Add(T(NewIRI("http://x/s"), RDFSComment, NewLiteral("line1\nline2\t\"quoted\"")))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if back.Len() != g.Len() {
		t.Fatalf("round trip len = %d, want %d", back.Len(), g.Len())
	}
	for _, tr := range g.Triples() {
		if !back.Has(tr) {
			t.Errorf("round trip lost %v", tr)
		}
	}
}

func TestWriteNTriplesDeterministic(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 25; i++ {
		g.Add(mkTriple(i))
	}
	var a, b bytes.Buffer
	if err := WriteNTriples(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteNTriples(&b, g); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteNTriples must be deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 25 {
		t.Fatalf("got %d lines, want 25", len(lines))
	}
	prev := Triple{}
	for i, l := range lines {
		tr, ok, err := ParseTripleLine(l, i+1)
		if err != nil || !ok {
			t.Fatalf("line %d unparseable: %v", i+1, err)
		}
		if i > 0 && prev.Compare(tr) >= 0 {
			t.Fatalf("output not in Triple order at line %d", i+1)
		}
		prev = tr
	}
}

func TestReadNTriplesReportsLine(t *testing.T) {
	in := "<http://x/a> <http://x/p> <http://x/b> .\nbroken line\n"
	_, err := ReadNTriples(strings.NewReader(in))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Line != 2 {
		t.Fatalf("error line = %d, want 2", pe.Line)
	}
}

// Property: any literal value survives a serialize/parse round trip.
func TestLiteralRoundTripProperty(t *testing.T) {
	f := func(val string) bool {
		// Strip control characters the serializer does not escape beyond
		// the N-Triples set; keep the test on valid UTF-8 input.
		if !utf8Valid(val) {
			return true
		}
		tr := T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral(val))
		got, ok, err := ParseTripleLine(tr.String(), 1)
		return err == nil && ok && got == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func utf8Valid(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}
