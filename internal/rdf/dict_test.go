package rdf

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomTerm draws a term of a random kind from a bounded value space, so
// repeated draws collide often enough to exercise the interning path.
func randomTerm(rng *rand.Rand) Term {
	v := fmt.Sprintf("v%d", rng.Intn(200))
	switch rng.Intn(5) {
	case 0:
		return NewIRI("http://example.org/" + v)
	case 1:
		return NewBlank(v)
	case 2:
		return NewLiteral(v)
	case 3:
		return NewTypedLiteral(v, "http://www.w3.org/2001/XMLSchema#string")
	default:
		return NewLangLiteral(v, "en")
	}
}

func TestDictRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDict()
	seen := make(map[Term]TermID)
	for i := 0; i < 5000; i++ {
		term := randomTerm(rng)
		id := d.Intern(term)
		// Round trip: decoding the ID yields the identical term.
		if got := d.TermOf(id); got != term {
			t.Fatalf("round trip changed term: interned %v, decoded %v", term, got)
		}
		// Stability: the same term always gets the same ID.
		if prev, ok := seen[term]; ok && prev != id {
			t.Fatalf("unstable ID for %v: first %d, now %d", term, prev, id)
		}
		seen[term] = id
		// Lookup agrees with Intern without minting.
		if got, ok := d.Lookup(term); !ok || got != id {
			t.Fatalf("Lookup(%v) = (%d, %v), want (%d, true)", term, got, ok, id)
		}
	}
	// Density: IDs are exactly 1..len(seen), so slices indexed by TermID
	// waste no space.
	if d.Len() != len(seen)+1 {
		t.Fatalf("Len() = %d, want %d distinct terms + wildcard slot", d.Len(), len(seen))
	}
	for term, id := range seen {
		if int(id) < 1 || int(id) >= d.Len() {
			t.Fatalf("ID %d for %v outside dense range [1, %d)", id, term, d.Len())
		}
	}
}

func TestDictWildcardReserved(t *testing.T) {
	d := NewDict()
	if got := d.Intern(Term{}); got != AnyID {
		t.Fatalf("Intern(wildcard) = %d, want AnyID", got)
	}
	if got, ok := d.Lookup(Term{}); !ok || got != AnyID {
		t.Fatalf("Lookup(wildcard) = (%d, %v), want (AnyID, true)", got, ok)
	}
	if got := d.TermOf(AnyID); !got.IsWildcard() {
		t.Fatalf("TermOf(AnyID) = %v, want wildcard", got)
	}
	if d.Len() != 1 {
		t.Fatalf("fresh dict Len() = %d, want 1 (the wildcard slot)", d.Len())
	}
}

func TestDictLookupUnknown(t *testing.T) {
	d := NewDict()
	if id, ok := d.Lookup(NewIRI("http://example.org/never")); ok {
		t.Fatalf("Lookup of unknown term returned (%d, true)", id)
	}
}

func TestDictGrowPreservesEntries(t *testing.T) {
	d := NewDict()
	a := d.Intern(NewIRI("http://example.org/a"))
	b := d.Intern(NewLiteral("b"))
	d.Grow(10000)
	if got, ok := d.Lookup(NewIRI("http://example.org/a")); !ok || got != a {
		t.Fatalf("entry a lost after Grow: (%d, %v)", got, ok)
	}
	if got := d.TermOf(b); got != NewLiteral("b") {
		t.Fatalf("entry b corrupted after Grow: %v", got)
	}
	if d.Intern(NewIRI("http://example.org/a")) != a {
		t.Fatal("Grow changed interning of existing term")
	}
}

func TestGraphsShareDict(t *testing.T) {
	d := NewDict()
	g1 := NewGraphWithDict(d)
	g2 := NewGraphWithDict(d)
	tr := T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o"))
	g1.Add(tr)
	g2.Add(tr)
	if g1.Dict() != g2.Dict() {
		t.Fatal("graphs built with NewGraphWithDict do not share the dict")
	}
	// The same triple encodes identically in both graphs.
	var id1, id2 []IDTriple
	g1.ForEachID(func(t IDTriple) bool { id1 = append(id1, t); return true })
	g2.ForEachID(func(t IDTriple) bool { id2 = append(id2, t); return true })
	if len(id1) != 1 || len(id2) != 1 || id1[0] != id2[0] {
		t.Fatalf("shared-dict encoding differs: %v vs %v", id1, id2)
	}
}

func TestCloneSharesDictAndIsIndependent(t *testing.T) {
	g := NewGraph()
	tr := T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o"))
	g.Add(tr)
	c := g.Clone()
	if c.Dict() != g.Dict() {
		t.Fatal("Clone must share the dictionary")
	}
	tr2 := T(NewIRI("http://x/s2"), NewIRI("http://x/p"), NewIRI("http://x/o"))
	c.Add(tr2)
	if g.Has(tr2) {
		t.Fatal("adding to clone leaked into original")
	}
	c.Remove(tr)
	if !g.Has(tr) {
		t.Fatal("removing from clone leaked into original")
	}
}

func TestGraphGrowKeepsContents(t *testing.T) {
	g := NewGraph()
	g.Grow(1000)
	tr := T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o"))
	g.Add(tr)
	g.Grow(5000) // non-empty graph: only the dictionary grows
	if !g.Has(tr) || g.Len() != 1 {
		t.Fatalf("Grow disturbed graph contents: has=%v len=%d", g.Has(tr), g.Len())
	}
}
