package rdf

import (
	"fmt"
	"math/rand"
	"testing"
)

// refStore is a deliberately naive triple store: a flat slice scanned
// linearly. It is the pre-interning semantics oracle — Graph.Match must
// return exactly what a linear filter over the triples returns, for every
// pattern shape, after any interleaving of adds and removes.
type refStore struct {
	ts []Triple
}

func (r *refStore) add(t Triple) {
	for _, x := range r.ts {
		if x == t {
			return
		}
	}
	r.ts = append(r.ts, t)
}

func (r *refStore) remove(t Triple) {
	for i, x := range r.ts {
		if x == t {
			r.ts = append(r.ts[:i], r.ts[i+1:]...)
			return
		}
	}
}

func (r *refStore) match(s, p, o Term) []Triple {
	var out []Triple
	for _, t := range r.ts {
		if (s.IsWildcard() || t.S == s) &&
			(p.IsWildcard() || t.P == p) &&
			(o.IsWildcard() || t.O == o) {
			out = append(out, t)
		}
	}
	return out
}

// synthTriple draws triples from a small synthetic KB-shaped space (typed
// instances, links, labels) so every pattern position has collisions.
func synthTriple(rng *rand.Rand) Triple {
	subj := NewIRI(fmt.Sprintf("http://x/i%d", rng.Intn(40)))
	switch rng.Intn(4) {
	case 0:
		return T(subj, RDFType, NewIRI(fmt.Sprintf("http://x/C%d", rng.Intn(6))))
	case 1:
		return T(subj, RDFSLabel, NewLiteral(fmt.Sprintf("label %d", rng.Intn(10))))
	case 2:
		return T(subj, NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(8))),
			NewIRI(fmt.Sprintf("http://x/i%d", rng.Intn(40))))
	default:
		return T(NewIRI(fmt.Sprintf("http://x/C%d", rng.Intn(6))), RDFSSubClassOf,
			NewIRI(fmt.Sprintf("http://x/C%d", rng.Intn(6))))
	}
}

// TestMatchEquivalence checks that the dictionary-encoded graph is
// observationally identical to the naive reference store on a synthetic KB:
// same Match results for all 8 pattern shapes, same Has/Len, through a
// workload of interleaved adds and removes.
func TestMatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := NewGraph()
	ref := &refStore{}

	check := func(step int) {
		if g.Len() != len(ref.ts) {
			t.Fatalf("step %d: Len %d, reference %d", step, g.Len(), len(ref.ts))
		}
		// Patterns: every combination of bound/wildcard positions, with the
		// bound term drawn either from the store or from thin air (to cover
		// the unknown-term path).
		var probe Triple
		if len(ref.ts) > 0 && rng.Intn(4) > 0 {
			probe = ref.ts[rng.Intn(len(ref.ts))]
		} else {
			probe = synthTriple(rng)
		}
		for mask := 0; mask < 8; mask++ {
			var s, p, o Term
			if mask&1 != 0 {
				s = probe.S
			}
			if mask&2 != 0 {
				p = probe.P
			}
			if mask&4 != 0 {
				o = probe.O
			}
			got := g.Match(s, p, o)
			want := ref.match(s, p, o)
			SortTriples(got)
			SortTriples(want)
			if len(got) != len(want) {
				t.Fatalf("step %d mask %d (%v %v %v): %d results, reference %d",
					step, mask, s, p, o, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d mask %d: result %d differs: %v vs %v",
						step, mask, i, got[i], want[i])
				}
			}
		}
		if got, want := g.Has(probe), len(ref.match(probe.S, probe.P, probe.O)) == 1; got != want {
			t.Fatalf("step %d: Has(%v) = %v, reference %v", step, probe, got, want)
		}
	}

	for step := 0; step < 400; step++ {
		tr := synthTriple(rng)
		if rng.Intn(4) == 0 && len(ref.ts) > 0 {
			victim := ref.ts[rng.Intn(len(ref.ts))]
			gOK := g.Remove(victim)
			ref.remove(victim)
			if !gOK {
				t.Fatalf("step %d: Remove(%v) returned false for present triple", step, victim)
			}
		} else {
			gNew := g.Add(tr)
			refNew := len(ref.match(tr.S, tr.P, tr.O)) == 0
			ref.add(tr)
			if gNew != refNew {
				t.Fatalf("step %d: Add(%v) novelty %v, reference %v", step, tr, gNew, refNew)
			}
		}
		if step%20 == 0 {
			check(step)
		}
	}
	check(400)

	// The same workload must also round-trip through Triples: decoding every
	// ID yields exactly the reference set.
	got := g.Triples()
	want := append([]Triple(nil), ref.ts...)
	SortTriples(got)
	SortTriples(want)
	if len(got) != len(want) {
		t.Fatalf("Triples: %d vs reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Triples[%d]: %v vs %v", i, got[i], want[i])
		}
	}
}
