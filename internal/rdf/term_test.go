package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	cases := []struct {
		name string
		term Term
		kind Kind
	}{
		{"iri", NewIRI("http://x/a"), IRI},
		{"blank", NewBlank("b1"), Blank},
		{"plain literal", NewLiteral("hi"), Literal},
		{"typed literal", NewTypedLiteral("3", XSDInteger), Literal},
		{"lang literal", NewLangLiteral("hi", "en"), Literal},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.term.Kind != c.kind {
				t.Fatalf("kind = %v, want %v", c.term.Kind, c.kind)
			}
			if c.term.IsWildcard() {
				t.Fatalf("constructed term must not be wildcard")
			}
		})
	}
}

func TestZeroTermIsWildcard(t *testing.T) {
	var z Term
	if !z.IsWildcard() {
		t.Fatal("zero Term must be the wildcard")
	}
	if z.IsIRI() || z.IsBlank() || z.IsLiteral() {
		t.Fatal("wildcard must not claim a concrete kind")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("hi"), `"hi"`},
		{NewTypedLiteral("3", XSDInteger), `"3"^^<` + XSDInteger + `>`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
		{Term{}, "?"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTermLocal(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/path/Person"), "Person"},
		{NewIRI("http://x/ns#Agent"), "Agent"},
		{NewIRI("noSeparator"), "noSeparator"},
		{NewLiteral("lit"), "lit"},
	}
	for _, c := range cases {
		if got := c.term.Local(); got != c.want {
			t.Errorf("Local(%v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermCompareTotalOrder(t *testing.T) {
	a := NewIRI("http://x/a")
	b := NewIRI("http://x/b")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Fatal("Compare must be a strict total order on distinct IRIs")
	}
	// Kind dominates value.
	if NewIRI("zzz").Compare(NewLiteral("aaa")) >= 0 {
		t.Fatal("IRI kind must sort before Literal kind")
	}
	// Datatype and lang break ties.
	if NewTypedLiteral("1", XSDInteger).Compare(NewTypedLiteral("1", XSDString)) == 0 {
		t.Fatal("datatype must participate in ordering")
	}
	if NewLangLiteral("x", "de").Compare(NewLangLiteral("x", "en")) == 0 {
		t.Fatal("language must participate in ordering")
	}
}

func TestTermCompareAntisymmetryProperty(t *testing.T) {
	f := func(v1, v2, dt1, dt2 string) bool {
		t1 := Term{Kind: Literal, Value: v1, Datatype: dt1}
		t2 := Term{Kind: Literal, Value: v2, Datatype: dt2}
		c12, c21 := t1.Compare(t2), t2.Compare(t1)
		if t1 == t2 {
			return c12 == 0 && c21 == 0
		}
		return c12 == -c21 && c12 != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTripleString(t *testing.T) {
	tr := T(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("o"))
	want := `<http://x/s> <http://x/p> "o" .`
	if got := tr.String(); got != want {
		t.Fatalf("Triple.String() = %q, want %q", got, want)
	}
}

func TestTripleMentions(t *testing.T) {
	s, p, o := NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o")
	tr := T(s, p, o)
	for _, x := range []Term{s, p, o} {
		if !tr.Mentions(x) {
			t.Errorf("Mentions(%v) = false, want true", x)
		}
	}
	if tr.Mentions(NewIRI("http://x/other")) {
		t.Error("Mentions(unrelated) = true, want false")
	}
}

func TestSortTriplesDeterministic(t *testing.T) {
	a := T(NewIRI("http://x/a"), RDFType, RDFSClass)
	b := T(NewIRI("http://x/b"), RDFType, RDFSClass)
	c := T(NewIRI("http://x/a"), RDFSLabel, NewLiteral("A"))
	ts := []Triple{b, c, a}
	SortTriples(ts)
	if ts[0] != c && ts[0].S != a.S {
		t.Fatalf("unexpected sort head: %v", ts[0])
	}
	// Sorted by S then P: both a-triples precede b.
	if ts[2] != b {
		t.Fatalf("b must sort last, got %v", ts[2])
	}
	if ts[0].Compare(ts[1]) > 0 || ts[1].Compare(ts[2]) > 0 {
		t.Fatal("SortTriples produced unsorted output")
	}
}
