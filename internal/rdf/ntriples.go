package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ParseError describes a syntax error in N-Triples input, with 1-based line
// and column positions.
type ParseError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// ReadNTriples parses N-Triples from r into a new graph. Comment lines
// (starting with '#') and blank lines are skipped. Parsing stops at the
// first syntax error.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ReadNTriplesInto(g, r); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadNTriplesInto parses N-Triples from r into an existing graph, so
// callers loading many versions of one dataset (e.g. the archive layer) can
// intern them all into one shared dictionary.
func ReadNTriplesInto(g *Graph, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		t, ok, err := ParseTripleLine(sc.Text(), line)
		if err != nil {
			return err
		}
		if ok {
			g.Add(t)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("rdf: reading n-triples: %w", err)
	}
	return nil
}

// WriteNTriples serializes the graph to w in deterministic (sorted) order.
func WriteNTriples(w io.Writer, g *Graph) error {
	ts := g.Triples()
	SortTriples(ts)
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := bw.WriteString(t.String()); err != nil {
			return fmt.Errorf("rdf: writing n-triples: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("rdf: writing n-triples: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("rdf: writing n-triples: %w", err)
	}
	return nil
}

// ParseTripleLine parses one N-Triples line. It returns ok=false for blank
// and comment lines. line is used only for error positions.
func ParseTripleLine(s string, line int) (Triple, bool, error) {
	p := &ntParser{s: s, line: line}
	p.skipWS()
	if p.eof() || p.peek() == '#' {
		return Triple{}, false, nil
	}
	subj, err := p.term()
	if err != nil {
		return Triple{}, false, err
	}
	if subj.IsLiteral() {
		return Triple{}, false, p.errf("literal not allowed as subject")
	}
	p.skipWS()
	pred, err := p.term()
	if err != nil {
		return Triple{}, false, err
	}
	if !pred.IsIRI() {
		return Triple{}, false, p.errf("predicate must be an IRI")
	}
	p.skipWS()
	obj, err := p.term()
	if err != nil {
		return Triple{}, false, err
	}
	p.skipWS()
	if p.eof() || p.peek() != '.' {
		return Triple{}, false, p.errf("expected '.' terminator")
	}
	p.i++
	p.skipWS()
	if !p.eof() && p.peek() != '#' {
		return Triple{}, false, p.errf("unexpected trailing content")
	}
	return Triple{S: subj, P: pred, O: obj}, true, nil
}

type ntParser struct {
	s    string
	i    int
	line int
}

func (p *ntParser) eof() bool  { return p.i >= len(p.s) }
func (p *ntParser) peek() byte { return p.s[p.i] }
func (p *ntParser) skipWS() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
		p.i++
	}
}

func (p *ntParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.i + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *ntParser) term() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("unexpected end of line")
	}
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, p.errf("unexpected character %q", p.peek())
	}
}

func (p *ntParser) iri() (Term, error) {
	p.i++ // consume '<'
	start := p.i
	for !p.eof() && p.peek() != '>' {
		if p.peek() == ' ' {
			return Term{}, p.errf("space inside IRI")
		}
		p.i++
	}
	if p.eof() {
		return Term{}, p.errf("unterminated IRI")
	}
	iri := p.s[start:p.i]
	p.i++ // consume '>'
	if iri == "" {
		return Term{}, p.errf("empty IRI")
	}
	if !utf8.ValidString(iri) {
		return Term{}, p.errf("invalid UTF-8 in IRI")
	}
	return NewIRI(iri), nil
}

func (p *ntParser) blank() (Term, error) {
	if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
		return Term{}, p.errf("malformed blank node")
	}
	p.i += 2
	start := p.i
	for !p.eof() && isBlankLabelByte(p.peek()) {
		p.i++
	}
	if p.i == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.s[start:p.i]), nil
}

func isBlankLabelByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '-' || b == '_' || b == '.'
}

func (p *ntParser) literal() (Term, error) {
	p.i++ // consume opening quote
	var b strings.Builder
	for {
		if p.eof() {
			return Term{}, p.errf("unterminated literal")
		}
		c := p.peek()
		if c == '"' {
			p.i++
			break
		}
		if c == '\\' {
			if err := p.escape(&b); err != nil {
				return Term{}, err
			}
			continue
		}
		b.WriteByte(c)
		p.i++
	}
	val := b.String()
	if !utf8.ValidString(val) {
		return Term{}, p.errf("invalid UTF-8 in literal")
	}
	if !p.eof() && p.peek() == '@' {
		p.i++
		start := p.i
		for !p.eof() && (isAlnumByte(p.peek()) || p.peek() == '-') {
			p.i++
		}
		if p.i == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(val, p.s[start:p.i]), nil
	}
	if p.i+1 < len(p.s) && p.peek() == '^' && p.s[p.i+1] == '^' {
		p.i += 2
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(val, dt.Value), nil
	}
	return NewLiteral(val), nil
}

func isAlnumByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

func (p *ntParser) escape(b *strings.Builder) error {
	p.i++ // consume backslash
	if p.eof() {
		return p.errf("dangling escape")
	}
	c := p.peek()
	p.i++
	switch c {
	case 't':
		b.WriteByte('\t')
	case 'n':
		b.WriteByte('\n')
	case 'r':
		b.WriteByte('\r')
	case '"':
		b.WriteByte('"')
	case '\\':
		b.WriteByte('\\')
	case 'u', 'U':
		n := 4
		if c == 'U' {
			n = 8
		}
		if p.i+n > len(p.s) {
			return p.errf("truncated \\%c escape", c)
		}
		var r rune
		for k := 0; k < n; k++ {
			d := hexVal(p.s[p.i+k])
			if d < 0 {
				return p.errf("invalid hex digit in \\%c escape", c)
			}
			r = r<<4 | rune(d)
		}
		p.i += n
		if !utf8.ValidRune(r) {
			return p.errf("invalid code point in \\%c escape", c)
		}
		b.WriteRune(r)
	default:
		return p.errf("unknown escape \\%c", c)
	}
	return nil
}

func hexVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'f':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'F':
		return int(b-'A') + 10
	default:
		return -1
	}
}
