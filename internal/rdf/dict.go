package rdf

// TermID is a dense dictionary-encoded identifier for a Term. IDs are
// assigned by a Dict in interning order, starting at 1; the zero TermID is
// AnyID, the encoded form of the zero (wildcard) Term. A TermID is only
// meaningful relative to the Dict that minted it.
//
// The whole point of the encoding is that the hot paths — the graph
// tri-index, delta set difference, structural graph construction — hash and
// compare 4-byte integers instead of re-hashing a struct of three strings
// on every probe.
type TermID uint32

// AnyID is the TermID of the zero (wildcard) Term in every Dict.
const AnyID TermID = 0

// IDTriple is a triple in dictionary-encoded form. Like TermID it is only
// meaningful relative to one Dict; equal IDTriples from the same Dict denote
// equal Triples.
type IDTriple struct {
	S, P, O TermID
}

// Dict is an append-only interner mapping Term ⇄ TermID. Interning the same
// term always returns the same ID, and IDs are dense (1..Len()-1), so they
// index directly into slices. A Dict is typically shared by every version of
// one dataset (all graphs in a VersionStore), which keeps IDs stable across
// versions and lets the delta engine diff ID-triples without touching
// strings.
//
// Dict is not safe for concurrent mutation (Intern); concurrent readers
// (Lookup, TermOf) are safe once interning stops. Graph read methods never
// intern, so concurrently reading graphs that share a Dict is safe.
type Dict struct {
	terms []Term
	ids   map[Term]TermID
}

// NewDict returns a Dict holding only the reserved wildcard entry.
func NewDict() *Dict {
	return &Dict{
		terms: []Term{{}}, // index 0 = zero Term = wildcard
		ids:   make(map[Term]TermID),
	}
}

// Intern returns the ID for t, assigning the next dense ID on first sight.
// The zero (wildcard) Term always maps to AnyID.
func (d *Dict) Intern(t Term) TermID {
	if t.IsWildcard() {
		return AnyID
	}
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := TermID(len(d.terms))
	d.terms = append(d.terms, t)
	d.ids[t] = id
	return id
}

// Lookup returns the ID for t without interning. The second result is false
// when t has never been interned. The wildcard Term reports (AnyID, true).
func (d *Dict) Lookup(t Term) (TermID, bool) {
	if t.IsWildcard() {
		return AnyID, true
	}
	id, ok := d.ids[t]
	return id, ok
}

// TermOf decodes an ID back to its Term. IDs not minted by this Dict are out
// of range and panic, as using them would silently corrupt results.
func (d *Dict) TermOf(id TermID) Term {
	return d.terms[id]
}

// Len returns the number of entries including the reserved wildcard slot, so
// a slice of Len() elements can be indexed by every valid TermID.
func (d *Dict) Len() int { return len(d.terms) }

// ForEachTerm streams the dictionary entries in ID order (excluding the
// reserved wildcard slot), stopping early if fn returns false. Because IDs
// are dense and assigned in interning order, re-interning the streamed terms
// into a fresh Dict in the same order reproduces the exact ID assignment —
// the binary store serializes and reloads string tables on this guarantee.
func (d *Dict) ForEachTerm(fn func(id TermID, t Term) bool) {
	for i := 1; i < len(d.terms); i++ {
		if !fn(TermID(i), d.terms[i]) {
			return
		}
	}
}

// Grow hints that the dictionary will hold at least n terms, preallocating
// the backing storage to avoid rehash churn during bulk ingestion.
func (d *Dict) Grow(n int) {
	if cap(d.terms) < n+1 {
		terms := make([]Term, len(d.terms), n+1)
		copy(terms, d.terms)
		d.terms = terms
	}
	if len(d.ids) < n {
		ids := make(map[Term]TermID, n)
		for t, id := range d.ids {
			ids[t] = id
		}
		d.ids = ids
	}
}
