package rdf

import (
	"testing"
)

func TestVersionStoreAddGet(t *testing.T) {
	vs := NewVersionStore()
	if vs.Len() != 0 || vs.Latest() != nil {
		t.Fatal("new store must be empty")
	}
	v1 := &Version{ID: "v1", Graph: NewGraph()}
	if err := vs.Add(v1); err != nil {
		t.Fatalf("Add(v1): %v", err)
	}
	got, ok := vs.Get("v1")
	if !ok || got != v1 {
		t.Fatal("Get(v1) must return the registered version")
	}
	if _, ok := vs.Get("missing"); ok {
		t.Fatal("Get(missing) must report absence")
	}
}

func TestVersionStoreRejectsInvalid(t *testing.T) {
	vs := NewVersionStore()
	if err := vs.Add(nil); err == nil {
		t.Error("Add(nil) must fail")
	}
	if err := vs.Add(&Version{ID: "", Graph: NewGraph()}); err == nil {
		t.Error("Add(empty ID) must fail")
	}
	if err := vs.Add(&Version{ID: "v1"}); err == nil {
		t.Error("Add(nil graph) must fail")
	}
	if err := vs.Add(&Version{ID: "v1", Graph: NewGraph()}); err != nil {
		t.Fatalf("valid Add failed: %v", err)
	}
	if err := vs.Add(&Version{ID: "v1", Graph: NewGraph()}); err == nil {
		t.Error("duplicate ID must fail")
	}
}

func TestVersionStoreOrderAndPairs(t *testing.T) {
	vs := NewVersionStore()
	for _, id := range []string{"v2", "v1", "v3"} { // registration order != lexical
		if err := vs.Add(&Version{ID: id, Graph: NewGraph()}); err != nil {
			t.Fatal(err)
		}
	}
	ids := vs.IDs()
	want := []string{"v2", "v1", "v3"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
	if vs.At(1).ID != "v1" {
		t.Fatalf("At(1) = %s, want v1", vs.At(1).ID)
	}
	if vs.Latest().ID != "v3" {
		t.Fatalf("Latest() = %s, want v3", vs.Latest().ID)
	}

	var pairs [][2]string
	vs.Pairs(func(a, b *Version) bool {
		pairs = append(pairs, [2]string{a.ID, b.ID})
		return true
	})
	if len(pairs) != 2 || pairs[0] != [2]string{"v2", "v1"} || pairs[1] != [2]string{"v1", "v3"} {
		t.Fatalf("Pairs = %v", pairs)
	}

	// Early stop.
	n := 0
	vs.Pairs(func(a, b *Version) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Pairs early stop visited %d, want 1", n)
	}

	sorted := vs.SortedIDs()
	if sorted[0] != "v1" || sorted[1] != "v2" || sorted[2] != "v3" {
		t.Fatalf("SortedIDs = %v", sorted)
	}
}
