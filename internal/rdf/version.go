package rdf

import (
	"fmt"
	"sort"
	"time"
)

// Version is a named snapshot of a knowledge base. Versions are immutable by
// convention once registered in a VersionStore: the analysis layers cache
// derived structures (schemas, centralities) keyed by version ID.
type Version struct {
	// ID is the unique version identifier (e.g. "v3" or "2016-04").
	ID string
	// Graph holds the full snapshot contents.
	Graph *Graph
	// Timestamp records when the version was created, if known.
	Timestamp time.Time
	// Comment is free-form metadata about the version.
	Comment string
}

// VersionStore keeps an ordered sequence of versions of one dataset. The
// order of registration is the evolution order; Pairs walks consecutive
// version pairs, which is the unit of every evolution measure.
//
// The zero value is not ready to use; call NewVersionStore.
type VersionStore struct {
	byID  map[string]*Version
	order []string
}

// NewVersionStore returns an empty store.
func NewVersionStore() *VersionStore {
	return &VersionStore{byID: make(map[string]*Version)}
}

// Add registers a version. It returns an error if the ID is empty, the graph
// is nil, or the ID is already registered.
func (vs *VersionStore) Add(v *Version) error {
	if v == nil || v.ID == "" {
		return fmt.Errorf("rdf: version must have a non-empty ID")
	}
	if v.Graph == nil {
		return fmt.Errorf("rdf: version %q must have a graph", v.ID)
	}
	if _, dup := vs.byID[v.ID]; dup {
		return fmt.Errorf("rdf: version %q already registered", v.ID)
	}
	vs.byID[v.ID] = v
	vs.order = append(vs.order, v.ID)
	return nil
}

// Get returns the version with the given ID.
func (vs *VersionStore) Get(id string) (*Version, bool) {
	v, ok := vs.byID[id]
	return v, ok
}

// Len returns the number of registered versions.
func (vs *VersionStore) Len() int { return len(vs.order) }

// IDs returns the version IDs in registration (evolution) order.
func (vs *VersionStore) IDs() []string {
	out := make([]string, len(vs.order))
	copy(out, vs.order)
	return out
}

// At returns the i-th version in evolution order.
func (vs *VersionStore) At(i int) *Version {
	return vs.byID[vs.order[i]]
}

// Latest returns the most recently registered version, or nil if empty.
func (vs *VersionStore) Latest() *Version {
	if len(vs.order) == 0 {
		return nil
	}
	return vs.byID[vs.order[len(vs.order)-1]]
}

// Pairs invokes fn for each consecutive (older, newer) version pair in
// evolution order, stopping early if fn returns false.
func (vs *VersionStore) Pairs(fn func(older, newer *Version) bool) {
	for i := 1; i < len(vs.order); i++ {
		if !fn(vs.byID[vs.order[i-1]], vs.byID[vs.order[i]]) {
			return
		}
	}
}

// SortedIDs returns the version IDs sorted lexicographically; useful for
// deterministic reporting when registration order is not meaningful.
func (vs *VersionStore) SortedIDs() []string {
	out := vs.IDs()
	sort.Strings(out)
	return out
}
