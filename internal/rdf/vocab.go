package rdf

// Namespaces used throughout the system. The synthetic generator mints terms
// under NSResource/NSSchema; the RDF/S constants below are the subset of the
// vocabulary the schema layer interprets.
const (
	NSRDF      = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	NSRDFS     = "http://www.w3.org/2000/01/rdf-schema#"
	NSOWL      = "http://www.w3.org/2002/07/owl#"
	NSXSD      = "http://www.w3.org/2001/XMLSchema#"
	NSSchema   = "http://evorec.org/schema/"
	NSResource = "http://evorec.org/resource/"
)

// Core RDF/S vocabulary terms.
var (
	RDFType           = NewIRI(NSRDF + "type")
	RDFProperty       = NewIRI(NSRDF + "Property")
	RDFSClass         = NewIRI(NSRDFS + "Class")
	RDFSSubClassOf    = NewIRI(NSRDFS + "subClassOf")
	RDFSSubPropertyOf = NewIRI(NSRDFS + "subPropertyOf")
	RDFSDomain        = NewIRI(NSRDFS + "domain")
	RDFSRange         = NewIRI(NSRDFS + "range")
	RDFSLabel         = NewIRI(NSRDFS + "label")
	RDFSComment       = NewIRI(NSRDFS + "comment")
	OWLClass          = NewIRI(NSOWL + "Class")
	XSDString         = NSXSD + "string"
	XSDInteger        = NSXSD + "integer"
	XSDDouble         = NSXSD + "double"
)

// SchemaIRI mints an IRI in the synthetic schema namespace.
func SchemaIRI(local string) Term { return NewIRI(NSSchema + local) }

// ResourceIRI mints an IRI in the synthetic resource namespace.
func ResourceIRI(local string) Term { return NewIRI(NSResource + local) }
