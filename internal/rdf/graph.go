package rdf

// Graph is an in-memory triple store indexed on all three positions
// (SPO, POS, OSP). The tri-index makes every single-bound pattern a direct
// map lookup, which the measure layer depends on: delta attribution looks up
// by subject and by object, schema extraction by predicate.
//
// The zero value is not ready to use; call NewGraph. Graph is not safe for
// concurrent mutation; concurrent readers are safe once mutation stops.
type Graph struct {
	spo index
	pos index
	osp index
	n   int
}

// index is a three-level nested map: first key -> second key -> set of third.
type index map[Term]map[Term]termSet

type termSet map[Term]struct{}

func (ix index) add(a, b, c Term) bool {
	m, ok := ix[a]
	if !ok {
		m = make(map[Term]termSet)
		ix[a] = m
	}
	s, ok := m[b]
	if !ok {
		s = make(termSet)
		m[b] = s
	}
	if _, dup := s[c]; dup {
		return false
	}
	s[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c Term) bool {
	m, ok := ix[a]
	if !ok {
		return false
	}
	s, ok := m[b]
	if !ok {
		return false
	}
	if _, ok := s[c]; !ok {
		return false
	}
	delete(s, c)
	if len(s) == 0 {
		delete(m, b)
		if len(m) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo: make(index),
		pos: make(index),
		osp: make(index),
	}
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// Add inserts the triple and reports whether it was not already present.
func (g *Graph) Add(t Triple) bool {
	if !g.spo.add(t.S, t.P, t.O) {
		return false
	}
	g.pos.add(t.P, t.O, t.S)
	g.osp.add(t.O, t.S, t.P)
	g.n++
	return true
}

// AddAll inserts every triple in ts and returns the number actually added.
func (g *Graph) AddAll(ts []Triple) int {
	added := 0
	for _, t := range ts {
		if g.Add(t) {
			added++
		}
	}
	return added
}

// Remove deletes the triple and reports whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if !g.spo.remove(t.S, t.P, t.O) {
		return false
	}
	g.pos.remove(t.P, t.O, t.S)
	g.osp.remove(t.O, t.S, t.P)
	g.n--
	return true
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	if m, ok := g.spo[t.S]; ok {
		if s, ok := m[t.P]; ok {
			_, ok := s[t.O]
			return ok
		}
	}
	return false
}

// Match returns all triples matching the pattern, where a zero (wildcard)
// Term matches any term at that position. The result order is unspecified;
// callers needing determinism sort with SortTriples.
func (g *Graph) Match(s, p, o Term) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CountMatch returns the number of triples matching the pattern without
// materializing them.
func (g *Graph) CountMatch(s, p, o Term) int {
	n := 0
	g.ForEachMatch(s, p, o, func(Triple) bool {
		n++
		return true
	})
	return n
}

// ForEachMatch streams every triple matching the pattern to fn, stopping
// early if fn returns false. It selects the most selective index for the
// bound positions.
func (g *Graph) ForEachMatch(s, p, o Term, fn func(Triple) bool) {
	sb, pb, ob := !s.IsWildcard(), !p.IsWildcard(), !o.IsWildcard()
	switch {
	case sb && pb && ob:
		if g.Has(Triple{s, p, o}) {
			fn(Triple{s, p, o})
		}
	case sb && pb:
		for obj := range g.spo[s][p] {
			if !fn(Triple{s, p, obj}) {
				return
			}
		}
	case sb && ob:
		for pred := range g.osp[o][s] {
			if !fn(Triple{s, pred, o}) {
				return
			}
		}
	case pb && ob:
		for sub := range g.pos[p][o] {
			if !fn(Triple{sub, p, o}) {
				return
			}
		}
	case sb:
		for pred, objs := range g.spo[s] {
			for obj := range objs {
				if !fn(Triple{s, pred, obj}) {
					return
				}
			}
		}
	case pb:
		for obj, subs := range g.pos[p] {
			for sub := range subs {
				if !fn(Triple{sub, p, obj}) {
					return
				}
			}
		}
	case ob:
		for sub, preds := range g.osp[o] {
			for pred := range preds {
				if !fn(Triple{sub, pred, o}) {
					return
				}
			}
		}
	default:
		for sub, preds := range g.spo {
			for pred, objs := range preds {
				for obj := range objs {
					if !fn(Triple{sub, pred, obj}) {
						return
					}
				}
			}
		}
	}
}

// Triples returns every triple in the graph in unspecified order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.n)
	g.ForEachMatch(Term{}, Term{}, Term{}, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Subjects returns the distinct subjects of triples matching (?, p, o).
func (g *Graph) Subjects(p, o Term) []Term {
	set := make(termSet)
	g.ForEachMatch(Term{}, p, o, func(t Triple) bool {
		set[t.S] = struct{}{}
		return true
	})
	return setToSlice(set)
}

// Objects returns the distinct objects of triples matching (s, p, ?).
func (g *Graph) Objects(s, p Term) []Term {
	set := make(termSet)
	g.ForEachMatch(s, p, Term{}, func(t Triple) bool {
		set[t.O] = struct{}{}
		return true
	})
	return setToSlice(set)
}

// Predicates returns the distinct predicates appearing in the graph.
func (g *Graph) Predicates() []Term {
	out := make([]Term, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, p)
	}
	return out
}

// Clone returns a deep, independent copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	g.ForEachMatch(Term{}, Term{}, Term{}, func(t Triple) bool {
		c.Add(t)
		return true
	})
	return c
}

// Mentions reports whether term x occurs in any position of any triple.
func (g *Graph) Mentions(x Term) bool {
	if _, ok := g.spo[x]; ok {
		return true
	}
	if _, ok := g.pos[x]; ok {
		return true
	}
	_, ok := g.osp[x]
	return ok
}

// DegreeOut returns the number of triples with subject s.
func (g *Graph) DegreeOut(s Term) int {
	n := 0
	for _, objs := range g.spo[s] {
		n += len(objs)
	}
	return n
}

// DegreeIn returns the number of triples with object o.
func (g *Graph) DegreeIn(o Term) int {
	n := 0
	for _, preds := range g.osp[o] {
		n += len(preds)
	}
	return n
}

func setToSlice(s termSet) []Term {
	out := make([]Term, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	return out
}
