package rdf

// Graph is an in-memory triple store indexed on all three positions
// (SPO, POS, OSP). The tri-index makes every single-bound pattern a direct
// map lookup, which the measure layer depends on: delta attribution looks up
// by subject and by object, schema extraction by predicate.
//
// Internally the graph is dictionary-encoded: every Term is interned to a
// dense uint32 TermID by a Dict and the tri-index is keyed on IDs, so index
// probes hash one machine word instead of a struct of three strings. The
// exported API stays Term-based; translation happens once at the boundary of
// each call. Graphs created with NewGraphWithDict (and every Clone) share a
// Dict, which keeps IDs stable across versions of a dataset and enables the
// ID-level fast paths (HasID, ForEachID) used by the delta engine.
//
// The zero value is not ready to use; call NewGraph. Graph is not safe for
// concurrent mutation; concurrent readers are safe once mutation stops, even
// across graphs sharing a Dict (read methods never intern).
type Graph struct {
	dict *Dict
	spo  index
	pos  index
	osp  index
	n    int
}

// index is a two-level map whose leaves are ID lists: first key -> second
// key -> the third-position IDs. Leaves are slices, not sets: a typical
// (first, second) pair has a handful of entries, so a compact slice beats a
// map on both memory and allocation count. Only the SPO index keeps its
// leaves sorted (it is the one that answers membership); POS and OSP are
// fed blind appends because SPO has already decided uniqueness.
type index map[TermID]map[TermID][]TermID

type idSet map[TermID]struct{}

// addSorted inserts c into the sorted leaf for (a, b), reporting whether it
// was absent. Membership is a binary search, so even pathological fan-out
// stays O(log n) per probe.
func (ix index) addSorted(a, b, c TermID) bool {
	m, ok := ix[a]
	if !ok {
		m = make(map[TermID][]TermID, 2)
		ix[a] = m
	}
	s := m[b]
	i := searchIDs(s, c)
	if i < len(s) && s[i] == c {
		return false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = c
	m[b] = s
	return true
}

// appendBlind appends c to the leaf for (a, b) without a membership check;
// the caller guarantees uniqueness (Graph.Add consults SPO first).
func (ix index) appendBlind(a, b, c TermID) {
	m, ok := ix[a]
	if !ok {
		m = make(map[TermID][]TermID, 2)
		ix[a] = m
	}
	m[b] = append(m[b], c)
}

// removeSorted deletes c from the sorted leaf for (a, b), reporting whether
// it was present, and prunes emptied levels.
func (ix index) removeSorted(a, b, c TermID) bool {
	m, ok := ix[a]
	if !ok {
		return false
	}
	s := m[b]
	i := searchIDs(s, c)
	if i >= len(s) || s[i] != c {
		return false
	}
	s = append(s[:i], s[i+1:]...)
	ix.put(a, b, m, s)
	return true
}

// removeScan deletes c from the unsorted leaf for (a, b) by linear scan and
// swap-delete, pruning emptied levels. The caller guarantees presence.
func (ix index) removeScan(a, b, c TermID) {
	m, ok := ix[a]
	if !ok {
		return
	}
	s := m[b]
	for i, x := range s {
		if x == c {
			s[i] = s[len(s)-1]
			s = s[:len(s)-1]
			ix.put(a, b, m, s)
			return
		}
	}
}

// put writes a leaf back, pruning empty leaves and empty second levels so
// top-level key enumeration (Predicates, Mentions, Subjects) stays exact.
func (ix index) put(a, b TermID, m map[TermID][]TermID, s []TermID) {
	if len(s) == 0 {
		delete(m, b)
		if len(m) == 0 {
			delete(ix, a)
		}
		return
	}
	m[b] = s
}

// searchIDs returns the insertion point for c in the sorted slice s.
func searchIDs(s []TermID, c TermID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// clone deep-copies the index. All leaf slices of the copy share one arena
// allocation, carved up with full (three-index) slice expressions so a later
// append to any leaf reallocates instead of clobbering its neighbor; this
// turns O(#leaves) allocations into one, which makes Clone — the backbone of
// synthetic evolution and delta replay — cheap.
func (ix index) clone() index {
	total := 0
	for _, m := range ix {
		for _, s := range m {
			total += len(s)
		}
	}
	arena := make([]TermID, 0, total)
	out := make(index, len(ix))
	for a, m := range ix {
		cm := make(map[TermID][]TermID, len(m))
		for b, s := range m {
			start := len(arena)
			arena = append(arena, s...)
			cm[b] = arena[start:len(arena):len(arena)]
		}
		out[a] = cm
	}
	return out
}

// NewGraph returns an empty graph with its own private dictionary.
func NewGraph() *Graph {
	return NewGraphWithDict(NewDict())
}

// NewGraphWithDict returns an empty graph interning into the given shared
// dictionary. All versions of one dataset should share a Dict so that IDs
// are stable across versions; NewVersionStore-based pipelines get this for
// free because Clone shares the dictionary.
func NewGraphWithDict(d *Dict) *Graph {
	return &Graph{
		dict: d,
		spo:  make(index),
		pos:  make(index),
		osp:  make(index),
	}
}

// Dict returns the graph's term dictionary. Two graphs with the same Dict
// can be diffed entirely on IDs.
func (g *Graph) Dict() *Dict { return g.dict }

// Grow hints that the graph will hold at least n triples, presizing the
// dictionary and (for an empty graph) the index maps. It is a pure
// optimization for bulk ingestion; growing an already-populated graph only
// grows the dictionary.
func (g *Graph) Grow(n int) {
	g.dict.Grow(n) // upper bound: every triple could mint new terms
	g.GrowIndex(n)
}

// GrowIndex presizes only the (empty) graph's index maps, leaving the
// dictionary alone. It is the right hint for ingestion that never interns —
// the binary store's snapshot decoder feeds pre-encoded IDs into a shared,
// already-populated Dict, where Grow's map rebuild would be pure waste.
func (g *Graph) GrowIndex(n int) {
	if g.n == 0 && n > 0 {
		// Subjects dominate the top level; predicates are few. Size the
		// top-level maps to the likely distinct-subject count (~n/4 for
		// typical KB shapes) to avoid repeated rehashing.
		est := n/4 + 1
		g.spo = make(index, est)
		g.pos = make(index, 64)
		g.osp = make(index, est)
	}
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// Add inserts the triple and reports whether it was not already present.
func (g *Graph) Add(t Triple) bool {
	s := g.dict.Intern(t.S)
	p := g.dict.Intern(t.P)
	o := g.dict.Intern(t.O)
	if !g.spo.addSorted(s, p, o) {
		return false
	}
	g.pos.appendBlind(p, o, s)
	g.osp.appendBlind(o, s, p)
	g.n++
	return true
}

// AddAll inserts every triple in ts and returns the number actually added.
func (g *Graph) AddAll(ts []Triple) int {
	added := 0
	for _, t := range ts {
		if g.Add(t) {
			added++
		}
	}
	return added
}

// AddID inserts the ID-encoded triple and reports whether it was not already
// present. The IDs must have been minted by this graph's Dict; out-of-range
// IDs would decode to garbage later, so callers decoding untrusted input
// (the binary store) validate IDs against Dict.Len() first.
func (g *Graph) AddID(t IDTriple) bool {
	if !g.spo.addSorted(t.S, t.P, t.O) {
		return false
	}
	g.pos.appendBlind(t.P, t.O, t.S)
	g.osp.appendBlind(t.O, t.S, t.P)
	g.n++
	return true
}

// AddIDUnchecked appends the ID-encoded triple without a membership probe.
// The caller guarantees the triple is absent and that consecutive unchecked
// adds arrive in ascending (S, P, O) order, which keeps SPO leaves sorted by
// construction — the contract of the binary store's snapshot decoder, whose
// runs are sorted and duplicate-free on disk.
func (g *Graph) AddIDUnchecked(t IDTriple) {
	g.spo.appendBlind(t.S, t.P, t.O)
	g.pos.appendBlind(t.P, t.O, t.S)
	g.osp.appendBlind(t.O, t.S, t.P)
	g.n++
}

// RemoveID deletes the ID-encoded triple and reports whether it was present.
// Like AddID, the IDs must come from this graph's Dict.
func (g *Graph) RemoveID(t IDTriple) bool {
	if !g.spo.removeSorted(t.S, t.P, t.O) {
		return false
	}
	g.pos.removeScan(t.P, t.O, t.S)
	g.osp.removeScan(t.O, t.S, t.P)
	g.n--
	return true
}

// Remove deletes the triple and reports whether it was present.
func (g *Graph) Remove(t Triple) bool {
	id, ok := g.lookupTriple(t)
	if !ok {
		return false
	}
	if !g.spo.removeSorted(id.S, id.P, id.O) {
		return false
	}
	g.pos.removeScan(id.P, id.O, id.S)
	g.osp.removeScan(id.O, id.S, id.P)
	g.n--
	return true
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	id, ok := g.lookupTriple(t)
	if !ok {
		return false
	}
	return g.HasID(id)
}

// HasID reports whether the ID-encoded triple is present. The IDs must come
// from this graph's Dict.
func (g *Graph) HasID(t IDTriple) bool {
	if m, ok := g.spo[t.S]; ok {
		if s, ok := m[t.P]; ok {
			i := searchIDs(s, t.O)
			return i < len(s) && s[i] == t.O
		}
	}
	return false
}

// lookupTriple encodes t without interning; ok is false when any term is
// unknown to the dictionary (and hence the triple cannot be present).
func (g *Graph) lookupTriple(t Triple) (IDTriple, bool) {
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return IDTriple{}, false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return IDTriple{}, false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return IDTriple{}, false
	}
	return IDTriple{s, p, o}, true
}

// decode materializes an ID-triple back into Term space.
func (g *Graph) decode(s, p, o TermID) Triple {
	return Triple{g.dict.terms[s], g.dict.terms[p], g.dict.terms[o]}
}

// Match returns all triples matching the pattern, where a zero (wildcard)
// Term matches any term at that position. The result order is unspecified;
// callers needing determinism sort with SortTriples.
func (g *Graph) Match(s, p, o Term) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CountMatch returns the number of triples matching the pattern without
// materializing them.
func (g *Graph) CountMatch(s, p, o Term) int {
	n := 0
	g.ForEachMatch(s, p, o, func(Triple) bool {
		n++
		return true
	})
	return n
}

// ForEachMatch streams every triple matching the pattern to fn, stopping
// early if fn returns false. It selects the most selective index for the
// bound positions. A bound term the graph has never seen matches nothing.
func (g *Graph) ForEachMatch(s, p, o Term, fn func(Triple) bool) {
	sid, ok := g.dict.Lookup(s)
	if !ok {
		return
	}
	pid, ok := g.dict.Lookup(p)
	if !ok {
		return
	}
	oid, ok := g.dict.Lookup(o)
	if !ok {
		return
	}
	sb, pb, ob := !s.IsWildcard(), !p.IsWildcard(), !o.IsWildcard()
	switch {
	case sb && pb && ob:
		if g.HasID(IDTriple{sid, pid, oid}) {
			fn(g.decode(sid, pid, oid))
		}
	case sb && pb:
		for _, obj := range g.spo[sid][pid] {
			if !fn(g.decode(sid, pid, obj)) {
				return
			}
		}
	case sb && ob:
		for _, pred := range g.osp[oid][sid] {
			if !fn(g.decode(sid, pred, oid)) {
				return
			}
		}
	case pb && ob:
		for _, sub := range g.pos[pid][oid] {
			if !fn(g.decode(sub, pid, oid)) {
				return
			}
		}
	case sb:
		for pred, objs := range g.spo[sid] {
			for _, obj := range objs {
				if !fn(g.decode(sid, pred, obj)) {
					return
				}
			}
		}
	case pb:
		for obj, subs := range g.pos[pid] {
			for _, sub := range subs {
				if !fn(g.decode(sub, pid, obj)) {
					return
				}
			}
		}
	case ob:
		for sub, preds := range g.osp[oid] {
			for _, pred := range preds {
				if !fn(g.decode(sub, pred, oid)) {
					return
				}
			}
		}
	default:
		g.ForEach(fn)
	}
}

// ForEach streams every triple in the graph to fn, stopping early if fn
// returns false. It iterates the SPO index directly — the fast path for full
// scans (delta computation, serialization) that skips pattern dispatch.
func (g *Graph) ForEach(fn func(Triple) bool) {
	for sub, preds := range g.spo {
		for pred, objs := range preds {
			for _, obj := range objs {
				if !fn(g.decode(sub, pred, obj)) {
					return
				}
			}
		}
	}
}

// ForEachID streams every triple in dictionary-encoded form, stopping early
// if fn returns false. Combined with HasID on a graph sharing the same Dict
// it supports set difference without decoding a single string.
func (g *Graph) ForEachID(fn func(IDTriple) bool) {
	for sub, preds := range g.spo {
		for pred, objs := range preds {
			for _, obj := range objs {
				if !fn(IDTriple{sub, pred, obj}) {
					return
				}
			}
		}
	}
}

// ForEachIDShard streams the ID-triples whose subject falls in the given
// shard (subject ID mod shards). Shards partition the graph, so running one
// goroutine per shard visits every triple exactly once; the delta engine
// uses this to parallelize version diffs.
func (g *Graph) ForEachIDShard(shard, shards int, fn func(IDTriple) bool) {
	for sub, preds := range g.spo {
		if int(sub)%shards != shard {
			continue
		}
		for pred, objs := range preds {
			for _, obj := range objs {
				if !fn(IDTriple{sub, pred, obj}) {
					return
				}
			}
		}
	}
}

// Triples returns every triple in the graph in unspecified order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.n)
	g.ForEach(func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Subjects returns the distinct subjects of triples matching (?, p, o).
// Every case except the p-bound/o-wildcard union reads a level of the
// tri-index whose entries are distinct by construction, so no dedup set is
// needed on those paths.
func (g *Graph) Subjects(p, o Term) []Term {
	pid, ok := g.dict.Lookup(p)
	if !ok {
		return nil
	}
	oid, ok := g.dict.Lookup(o)
	if !ok {
		return nil
	}
	switch {
	case p.IsWildcard() && o.IsWildcard():
		out := make([]Term, 0, len(g.spo))
		for sub := range g.spo {
			out = append(out, g.dict.terms[sub])
		}
		return out
	case p.IsWildcard():
		m := g.osp[oid]
		out := make([]Term, 0, len(m))
		for sub := range m {
			out = append(out, g.dict.terms[sub])
		}
		return out
	case o.IsWildcard():
		set := make(idSet)
		for _, subs := range g.pos[pid] {
			for _, sub := range subs {
				set[sub] = struct{}{}
			}
		}
		return g.setToTerms(set)
	default:
		return g.idsToTerms(g.pos[pid][oid])
	}
}

// Objects returns the distinct objects of triples matching (s, p, ?). As
// with Subjects, only the s-bound/p-wildcard union needs a dedup set.
func (g *Graph) Objects(s, p Term) []Term {
	sid, ok := g.dict.Lookup(s)
	if !ok {
		return nil
	}
	pid, ok := g.dict.Lookup(p)
	if !ok {
		return nil
	}
	switch {
	case s.IsWildcard() && p.IsWildcard():
		out := make([]Term, 0, len(g.osp))
		for obj := range g.osp {
			out = append(out, g.dict.terms[obj])
		}
		return out
	case s.IsWildcard():
		m := g.pos[pid]
		out := make([]Term, 0, len(m))
		for obj := range m {
			out = append(out, g.dict.terms[obj])
		}
		return out
	case p.IsWildcard():
		set := make(idSet)
		for _, objs := range g.spo[sid] {
			for _, obj := range objs {
				set[obj] = struct{}{}
			}
		}
		return g.setToTerms(set)
	default:
		return g.idsToTerms(g.spo[sid][pid])
	}
}

// Predicates returns the distinct predicates appearing in the graph.
func (g *Graph) Predicates() []Term {
	out := make([]Term, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, g.dict.terms[p])
	}
	return out
}

// Clone returns a deep, independent copy of the graph. The copy shares the
// dictionary (which is append-only), so cloning copies only the integer
// indexes — no term is re-hashed — and the clone can be diffed against the
// original on the ID fast path.
func (g *Graph) Clone() *Graph {
	return &Graph{
		dict: g.dict,
		spo:  g.spo.clone(),
		pos:  g.pos.clone(),
		osp:  g.osp.clone(),
		n:    g.n,
	}
}

// Mentions reports whether term x occurs in any position of any triple.
func (g *Graph) Mentions(x Term) bool {
	id, ok := g.dict.Lookup(x)
	if !ok {
		return false
	}
	if _, ok := g.spo[id]; ok {
		return true
	}
	if _, ok := g.pos[id]; ok {
		return true
	}
	_, ok = g.osp[id]
	return ok
}

// DegreeOut returns the number of triples with subject s.
func (g *Graph) DegreeOut(s Term) int {
	id, ok := g.dict.Lookup(s)
	if !ok {
		return 0
	}
	n := 0
	for _, objs := range g.spo[id] {
		n += len(objs)
	}
	return n
}

// DegreeIn returns the number of triples with object o.
func (g *Graph) DegreeIn(o Term) int {
	id, ok := g.dict.Lookup(o)
	if !ok {
		return 0
	}
	n := 0
	for _, preds := range g.osp[id] {
		n += len(preds)
	}
	return n
}

func (g *Graph) setToTerms(s idSet) []Term {
	out := make([]Term, 0, len(s))
	for id := range s {
		out = append(out, g.dict.terms[id])
	}
	return out
}

// idsToTerms decodes an ID list whose entries are already distinct. An
// empty list returns nil (callers of Subjects/Objects treat nil and empty
// alike; pre-interning these paths returned a non-nil empty slice).
func (g *Graph) idsToTerms(ids []TermID) []Term {
	if len(ids) == 0 {
		return nil
	}
	out := make([]Term, len(ids))
	for i, id := range ids {
		out[i] = g.dict.terms[id]
	}
	return out
}
