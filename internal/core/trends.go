package core

import (
	"fmt"

	"evorec/internal/measures"
	"evorec/internal/provenance"
	"evorec/internal/trend"
)

// TrendAnalysis evaluates the given measure over every consecutive version
// pair of the engine's chain and returns the per-entity trend analysis
// ("observe changes trends", paper §I). Contexts are the engine-cached
// ones, so repeated trend queries are cheap, and the analysis is recorded
// in provenance.
func (e *Engine) TrendAnalysis(measureID string) (*trend.Analysis, error) {
	m, ok := e.registry.Get(measureID)
	if !ok {
		return nil, fmt.Errorf("core: unknown measure %q", measureID)
	}
	if e.versions.Len() < 2 {
		return nil, fmt.Errorf("core: trend analysis needs at least 2 versions, have %d", e.versions.Len())
	}
	ids := e.versions.IDs()
	ctxs := make([]*measures.Context, 0, len(ids)-1)
	inputRecs := make([]string, 0, len(ids)-1)
	for i := 1; i < len(ids); i++ {
		ctx, err := e.Context(ids[i-1], ids[i])
		if err != nil {
			return nil, err
		}
		ctxs = append(ctxs, ctx)
		if rec, ok := e.prov.Creator("delta:" + pairKey(ids[i-1], ids[i])); ok {
			inputRecs = append(inputRecs, rec.ID)
		}
	}
	a, err := trend.AnalyzeWithContexts(ctxs, m)
	if err != nil {
		return nil, err
	}
	artifact := fmt.Sprintf("trend:%s:%s..%s", measureID, ids[0], ids[len(ids)-1])
	if _, err := e.prov.Append("analyze_trend", e.agent, provenance.Inference,
		inputRecs, []string{artifact},
		fmt.Sprintf("%d entities over %d pairs", a.Len(), len(ctxs))); err != nil {
		return nil, fmt.Errorf("core: recording trend provenance: %w", err)
	}
	return a, nil
}
