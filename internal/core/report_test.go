package core

import (
	"strings"
	"testing"
)

func TestUserReportContents(t *testing.T) {
	e, pool := testEngine(t)
	u := pool[0]
	rep, err := e.UserReport(u, Request{OlderID: "v1", NewerID: "v2", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Evolution digest for " + u.ID,
		"triples added",
		"high-level changes in your area",
		"recommended measures:",
		"why:",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	// Two recommendations rendered.
	if strings.Count(rep, "why:") != 2 {
		t.Fatalf("want 2 explained recommendations:\n%s", rep)
	}
}

func TestUserReportRecordsProvenance(t *testing.T) {
	e, pool := testEngine(t)
	u := pool[1]
	if _, err := e.UserReport(u, Request{OlderID: "v1", NewerID: "v2", K: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Provenance().Creator("rec:" + u.ID + ":v1->v2:plain"); !ok {
		t.Fatal("user report must leave the recommendation's provenance trail")
	}
}

func TestUserReportErrors(t *testing.T) {
	e, pool := testEngine(t)
	if _, err := e.UserReport(pool[0], Request{OlderID: "vX", NewerID: "v2", K: 1}); err == nil {
		t.Fatal("unknown version must fail")
	}
	if _, err := e.UserReport(nil, Request{OlderID: "v1", NewerID: "v2", K: 1}); err == nil {
		t.Fatal("nil profile must fail")
	}
}
