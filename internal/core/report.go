package core

import (
	"fmt"
	"strings"

	"evorec/internal/delta"
	"evorec/internal/profile"
	"evorec/internal/recommend"
)

// UserReport renders the paper's end product for one human: a personalized,
// high-level overview of how the knowledge base evolved between two
// versions — the overall delta volume, the high-level changes touching the
// user's interests, the recommended measures with per-measure explanations,
// and what each recommended measure highlights. The recommendation itself
// goes through Recommend, so it is provenance-tracked like any other.
func (e *Engine) UserReport(u *profile.Profile, req Request) (string, error) {
	sel, err := e.Recommend(u, req)
	if err != nil {
		return "", err
	}
	ctx, err := e.Context(req.OlderID, req.NewerID)
	if err != nil {
		return "", err
	}
	items, err := e.Items(req.OlderID, req.NewerID)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Evolution digest for %s (%s -> %s)\n", u.ID, req.OlderID, req.NewerID)
	fmt.Fprintf(&b, "  overall: %d triples added, %d deleted\n",
		len(ctx.Delta.Added), len(ctx.Delta.Deleted))

	// High-level changes touching the user's interests.
	interests := make(map[string]bool, len(u.Interests))
	for t := range u.Interests {
		interests[t.Value] = true
	}
	changes := delta.DetectHighLevel(ctx.Older.Graph, ctx.Newer.Graph)
	var mine []delta.HighLevelChange
	for _, c := range changes {
		if interests[c.Target.Value] {
			mine = append(mine, c)
		}
	}
	fmt.Fprintf(&b, "  high-level changes in your area: %d of %d\n", len(mine), len(changes))
	for i, c := range mine {
		if i == 5 {
			fmt.Fprintf(&b, "    ... and %d more\n", len(mine)-5)
			break
		}
		fmt.Fprintf(&b, "    %s\n", c)
	}

	b.WriteString("  recommended measures:\n")
	for rank, r := range sel {
		it, ok := findItem(items, r.MeasureID)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "    %d. %s — %s\n", rank+1, it.Measure.Name(), it.Measure.Description())
		fmt.Fprintf(&b, "       why: %s\n", recommend.ExplainText(u, it, 2))
		top := it.Scores.Rank().TopK(3)
		var parts []string
		for _, entry := range top {
			if entry.Score > 0 {
				parts = append(parts, fmt.Sprintf("%s (%.2f)", entry.Term.Local(), entry.Score))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, "       highlights: %s\n", strings.Join(parts, ", "))
		}
	}
	return b.String(), nil
}

func findItem(items []recommend.Item, id string) (recommend.Item, bool) {
	for _, it := range items {
		if it.ID() == id {
			return it, true
		}
	}
	return recommend.Item{}, false
}
