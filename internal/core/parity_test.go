package core

import (
	"math"
	"sort"
	"testing"

	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
)

func recommendTerm(local string) rdf.Term { return rdf.SchemaIRI(local) }

// The engine routes every point selection and notification through the
// flat scoring kernel (recommend.ItemIndex); these tests hold that routing
// bit-identical to the map-scored reference functions over the same items
// — scores, rankings, notification batches and reason strings.

func TestEngineRecommendMatchesReference(t *testing.T) {
	e, pool := testEngine(t)
	items, err := e.Items("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range pool {
		for _, tc := range []struct {
			strategy Strategy
			want     []recommend.Recommendation
		}{
			{Plain, recommend.TopK(u, items, 3)},
			{NoveltyAware, recommend.NoveltyTopK(u, items, 3)},
			{SemanticDiverse, recommend.SemanticTopK(u, items, 3)},
		} {
			got, err := e.Recommend(u, Request{OlderID: "v1", NewerID: "v2", K: 3, Strategy: tc.strategy})
			if err != nil {
				t.Fatal(err)
			}
			if !sameRecs(got, tc.want) {
				t.Fatalf("user %s strategy %s: engine %v != reference %v", u.ID, tc.strategy, got, tc.want)
			}
		}
	}
}

func TestEngineGroupRecommendMatchesReference(t *testing.T) {
	e, pool := testEngine(t)
	items, err := e.Items("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	g, err := profile.NewGroup("g", pool[:4])
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []recommend.Aggregation{recommend.Average, recommend.LeastMisery, recommend.MostPleasure} {
		want := recommend.GroupTopK(g, items, 3, agg)
		got, err := e.RecommendGroup(g, GroupRequest{OlderID: "v1", NewerID: "v2", K: 3, Aggregation: agg})
		if err != nil {
			t.Fatal(err)
		}
		if !sameRecs(got, want) {
			t.Fatalf("agg %s: engine %v != reference %v", agg, got, want)
		}
	}
}

// TestNotifyParityWithMapPath compares Engine.Notify (flat kernel) against
// the map-scored reference per user — including the rendered reasons, which
// must match byte for byte.
func TestNotifyParityWithMapPath(t *testing.T) {
	e, pool := testEngine(t)
	items, err := e.Items("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	idx, err := e.ItemIndex("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	byID := ItemsByID(items)
	for _, threshold := range []float64{0, 0.05, 0.5} {
		for _, u := range pool {
			want := UserNotifications(u, items, byID, "v1", "v2", threshold, 3)
			got := UserNotificationsIndexed(u, idx, "v1", "v2", threshold, 3)
			if !sameNotes(got, want) {
				t.Fatalf("user %s threshold %g:\nindexed  %+v\nreference %+v", u.ID, threshold, got, want)
			}
		}
		// And the whole batch through the engine entry point.
		batch, err := e.Notify(pool, "v1", "v2", threshold, 3)
		if err != nil {
			t.Fatal(err)
		}
		var ref []Notification
		for _, u := range pool {
			ref = append(ref, UserNotifications(u, items, byID, "v1", "v2", threshold, 3)...)
		}
		sort.SliceStable(ref, func(i, j int) bool {
			if ref[i].UserID != ref[j].UserID {
				return ref[i].UserID < ref[j].UserID
			}
			return ref[i].Relatedness > ref[j].Relatedness
		})
		if !sameNotes(batch, ref) {
			t.Fatalf("threshold %g: Notify batch diverges from reference", threshold)
		}
	}
}

// TestNotifyParityDegenerateProfiles exercises the kernel fallbacks through
// the notification path: NaN weights (NaN norm), zero weights, interests
// outside the pair's vocabulary, and empty profiles.
func TestNotifyParityDegenerateProfiles(t *testing.T) {
	e, _ := testEngine(t)
	items, err := e.Items("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	idx, err := e.ItemIndex("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	byID := ItemsByID(items)

	empty := profile.New("empty")
	outside := profile.New("outside")
	outside.Interests[recommendTerm("NoSuchEntityAnywhere")] = 1
	zero := profile.New("zero")
	nanu := profile.New("nanu")
	for tm := range items[0].Vector {
		zero.Interests[tm] = 0
		nanu.Interests[tm] = math.NaN()
		break
	}
	for _, u := range []*profile.Profile{empty, outside, zero, nanu} {
		want := UserNotifications(u, items, byID, "v1", "v2", 0.05, 3)
		got := UserNotificationsIndexed(u, idx, "v1", "v2", 0.05, 3)
		if !sameNotes(got, want) {
			t.Fatalf("user %s:\nindexed  %+v\nreference %+v", u.ID, got, want)
		}
	}
}

// sameRecs compares recommendation lists bitwise (NaN-tolerant).
func sameRecs(a, b []recommend.Recommendation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].MeasureID != b[i].MeasureID ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// sameNotes compares notification batches field for field with bitwise
// relatedness (NaN is a legal score for degenerate profiles).
func sameNotes(a, b []Notification) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.UserID != y.UserID || x.OlderID != y.OlderID || x.NewerID != y.NewerID ||
			x.MeasureID != y.MeasureID || x.Reason != y.Reason ||
			math.Float64bits(x.Relatedness) != math.Float64bits(y.Relatedness) {
			return false
		}
	}
	return true
}
