package core

import (
	"fmt"
	"sort"

	"evorec/internal/profile"
	"evorec/internal/provenance"
	"evorec/internal/recommend"
)

// Notification tells one user that data they care about evolved, through
// which measure the evolution is best seen, and how strongly it concerns
// them — the paper's "humans are really interested to be notified about how
// data evolve" scenario (§I, §III).
type Notification struct {
	// UserID identifies the recipient.
	UserID string
	// OlderID and NewerID name the version pair that triggered the
	// notification.
	OlderID, NewerID string
	// MeasureID is the measure through which the change is best seen.
	MeasureID string
	// Relatedness is the user-measure relatedness that crossed the
	// threshold.
	Relatedness float64
	// Reason is a one-line human-readable explanation.
	Reason string
}

// ItemsByID indexes items by measure ID. It is the map-path companion of
// UserNotifications; the served paths use the pair's cached
// recommend.ItemIndex (whose ByID does the same job) instead.
func ItemsByID(items []recommend.Item) map[string]recommend.Item {
	byID := make(map[string]recommend.Item, len(items))
	for _, it := range items {
		byID[it.ID()] = it
	}
	return byID
}

// UserNotifications emits one user's notifications for a version pair: the
// user's top-k measures whose relatedness crosses the threshold, in
// descending relatedness order. It is the map-scored reference body of
// Notify, kept as the oracle the parity suite holds the flat kernel to;
// Engine.Notify and the feed fan-out route through UserNotificationsIndexed,
// which must produce this output verbatim — reasons included.
func UserNotifications(u *profile.Profile, items []recommend.Item, byID map[string]recommend.Item, olderID, newerID string, threshold float64, k int) []Notification {
	var out []Notification
	for _, r := range recommend.TopK(u, items, k) {
		if r.Score < threshold || r.Score == 0 {
			continue
		}
		it, ok := byID[r.MeasureID]
		if !ok {
			continue
		}
		out = append(out, Notification{
			UserID:      u.ID,
			OlderID:     olderID,
			NewerID:     newerID,
			MeasureID:   r.MeasureID,
			Relatedness: r.Score,
			Reason:      recommend.ExplainText(u, it, 1),
		})
	}
	return out
}

// UserNotificationsIndexed is UserNotifications on the flat kernel: one
// interest compile, candidate-only scoring through the pair's item index,
// and flat explanations only for the measures actually emitted. Output is
// bit-identical to UserNotifications over the same items.
func UserNotificationsIndexed(u *profile.Profile, idx *recommend.ItemIndex, olderID, newerID string, threshold float64, k int) []Notification {
	var out []Notification
	idx.NotifyEach(u, threshold, k, func(measureID string, score float64, reason string) {
		out = append(out, Notification{
			UserID:      u.ID,
			OlderID:     olderID,
			NewerID:     newerID,
			MeasureID:   measureID,
			Relatedness: score,
			Reason:      reason,
		})
	})
	return out
}

// Notify scans the pool after a version pair and emits, per user, the top
// measures whose relatedness crosses the threshold — at most k per user.
// Users whose interests are untouched by the evolution stay silent; the
// emission is recorded in provenance. Notifications are ordered by user,
// then descending relatedness.
func (e *Engine) Notify(pool []*profile.Profile, olderID, newerID string, threshold float64, k int) ([]Notification, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("core: threshold must be in [0,1], got %g", threshold)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	idx, err := e.ItemIndex(olderID, newerID)
	if err != nil {
		return nil, err
	}
	var out []Notification
	for _, u := range pool {
		out = append(out, UserNotificationsIndexed(u, idx, olderID, newerID, threshold, k)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].UserID != out[j].UserID {
			return out[i].UserID < out[j].UserID
		}
		return out[i].Relatedness > out[j].Relatedness
	})
	key := pairKey(olderID, newerID)
	if _, err := e.prov.Append("notify", e.agent, provenance.Inference,
		[]string{e.itemsRec[key]},
		[]string{fmt.Sprintf("notifications:%s", key)},
		fmt.Sprintf("%d notifications over %d users (threshold %.2f)", len(out), len(pool), threshold)); err != nil {
		return nil, fmt.Errorf("core: recording notification provenance: %w", err)
	}
	return out, nil
}
