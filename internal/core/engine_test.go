package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"evorec/internal/profile"
	"evorec/internal/recommend"
	"evorec/internal/schema"
	"evorec/internal/synth"
)

func testEngine(t *testing.T) (*Engine, []*profile.Profile) {
	t.Helper()
	e := New(Config{Clock: fixedClock()})
	vs, _, err := synth.GenerateVersions(synth.Small(), synth.EvolveConfig{Ops: 40, Locality: 0.8}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestAll(vs); err != nil {
		t.Fatal(err)
	}
	sch := schema.Extract(vs.At(0).Graph)
	pool, _, err := synth.GenerateProfiles(sch, synth.ProfileConfig{Users: 8, ExtraInterests: 2}, newRng(3))
	if err != nil {
		t.Fatal(err)
	}
	return e, pool
}

func fixedClock() func() time.Time {
	t0 := time.Date(2017, 4, 19, 9, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestIngestRecordsProvenance(t *testing.T) {
	e, _ := testEngine(t)
	if e.Versions().Len() != 3 {
		t.Fatalf("versions = %d, want 3", e.Versions().Len())
	}
	if _, ok := e.Provenance().Creator("version:v1"); !ok {
		t.Fatal("ingest must record provenance for version:v1")
	}
	// Duplicate ingest fails.
	v, _ := e.Versions().Get("v1")
	if err := e.Ingest(v); err == nil {
		t.Fatal("duplicate ingest must fail")
	}
}

func TestContextCachingAndErrors(t *testing.T) {
	e, _ := testEngine(t)
	c1, err := e.Context("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.Context("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("Context must be cached")
	}
	if _, err := e.Context("v1", "nope"); err == nil {
		t.Fatal("unknown newer version must fail")
	}
	if _, err := e.Context("nope", "v2"); err == nil {
		t.Fatal("unknown older version must fail")
	}
	// Delta provenance recorded exactly once despite two calls.
	if got := len(e.Provenance().ProducersOf("delta:v1->v2")); got != 1 {
		t.Fatalf("delta provenance records = %d, want 1", got)
	}
}

func TestItemsCoverRegistry(t *testing.T) {
	e, _ := testEngine(t)
	items, err := e.Items("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != e.Registry().Len() {
		t.Fatalf("items = %d, want %d", len(items), e.Registry().Len())
	}
	again, _ := e.Items("v1", "v2")
	if &again[0] != &items[0] {
		t.Fatal("Items must be cached")
	}
	if _, ok := e.Provenance().Creator("scores:change_count:v1->v2"); !ok {
		t.Fatal("measure scores must have provenance")
	}
}

func TestRecommendStrategies(t *testing.T) {
	e, pool := testEngine(t)
	u := pool[0]
	for _, strat := range []Strategy{Plain, DiverseMMR, DiverseMaxMin, NoveltyAware, SemanticDiverse} {
		sel, err := e.Recommend(u, Request{OlderID: "v1", NewerID: "v2", K: 3, Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(sel) != 3 {
			t.Fatalf("%v: selection size = %d, want 3", strat, len(sel))
		}
		seen := map[string]bool{}
		for _, s := range sel {
			if seen[s.MeasureID] {
				t.Fatalf("%v: duplicate measure %s", strat, s.MeasureID)
			}
			seen[s.MeasureID] = true
		}
	}
}

func TestRecommendValidation(t *testing.T) {
	e, pool := testEngine(t)
	if _, err := e.Recommend(nil, Request{OlderID: "v1", NewerID: "v2", K: 1}); err == nil {
		t.Fatal("nil profile must fail")
	}
	if _, err := e.Recommend(pool[0], Request{OlderID: "v1", NewerID: "v2", K: 0}); err == nil {
		t.Fatal("K=0 must fail")
	}
	if _, err := e.Recommend(pool[0], Request{OlderID: "vX", NewerID: "v2", K: 1}); err == nil {
		t.Fatal("unknown version must fail")
	}
}

func TestRecommendMarkSeenFeedsNovelty(t *testing.T) {
	e, pool := testEngine(t)
	u := pool[1]
	first, err := e.Recommend(u, Request{OlderID: "v1", NewerID: "v2", K: 2, MarkSeen: true})
	if err != nil {
		t.Fatal(err)
	}
	if u.SeenCount(first[0].MeasureID) != 1 {
		t.Fatal("MarkSeen must update the profile")
	}
	// After marking several times, novelty-aware recommendations change.
	for i := 0; i < 5; i++ {
		u.MarkSeen(first[0].MeasureID)
	}
	nov, err := e.Recommend(u, Request{OlderID: "v1", NewerID: "v2", K: 1, Strategy: NoveltyAware})
	if err != nil {
		t.Fatal(err)
	}
	if nov[0].MeasureID == first[0].MeasureID {
		t.Fatal("novelty-aware strategy must avoid the over-seen measure")
	}
}

func TestRecommendProvenanceChain(t *testing.T) {
	e, pool := testEngine(t)
	u := pool[2]
	if _, err := e.Recommend(u, Request{OlderID: "v2", NewerID: "v3", K: 2}); err != nil {
		t.Fatal(err)
	}
	artifact := "rec:" + u.ID + ":v2->v3:plain"
	lineage := e.Provenance().Lineage(artifact)
	if len(lineage) < 4 { // ingest v2, ingest v3, delta, measures, recommend
		t.Fatalf("lineage too short: %d records", len(lineage))
	}
	report := e.Provenance().Report(artifact)
	for _, want := range []string{"ingest_version", "compute_delta", "evaluate_measures", "recommend"} {
		if !strings.Contains(report, want) {
			t.Fatalf("transparency report missing %q:\n%s", want, report)
		}
	}
}

func TestRecommendGroupModes(t *testing.T) {
	e, pool := testEngine(t)
	g, err := profile.NewGroup("team", pool[:4])
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []recommend.Aggregation{recommend.Average, recommend.LeastMisery, recommend.MostPleasure} {
		sel, err := e.RecommendGroup(g, GroupRequest{OlderID: "v1", NewerID: "v2", K: 3, Aggregation: agg})
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		if len(sel) != 3 {
			t.Fatalf("%v: size = %d", agg, len(sel))
		}
	}
	fair, err := e.RecommendGroup(g, GroupRequest{OlderID: "v1", NewerID: "v2", K: 3, FairGreedy: true, FairAlpha: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(fair) != 3 {
		t.Fatalf("fair greedy size = %d", len(fair))
	}
	if _, err := e.RecommendGroup(nil, GroupRequest{OlderID: "v1", NewerID: "v2", K: 1}); err == nil {
		t.Fatal("nil group must fail")
	}
	if _, err := e.RecommendGroup(g, GroupRequest{OlderID: "v1", NewerID: "v2", K: 0}); err == nil {
		t.Fatal("K=0 must fail")
	}
}

func TestAnonymizePolicies(t *testing.T) {
	e, pool := testEngine(t)
	// No-op policy returns the pool unchanged.
	same, err := e.Anonymize(pool, PrivacyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if same[0] != pool[0] {
		t.Fatal("empty policy must be a pass-through")
	}
	// k-anonymity yields k-shared vectors.
	anon, err := e.Anonymize(pool, PrivacyPolicy{KAnonymity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if recommend.ReidentificationRisk(pool, anon) > 0.5 {
		t.Fatal("k-anonymity must reduce re-identification risk")
	}
	// DP noise with fixed seed is reproducible.
	n1, err := e.Anonymize(pool, PrivacyPolicy{Epsilon: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := e.Anonymize(pool, PrivacyPolicy{Epsilon: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if profile.CosineVectors(n1[0].Interests, n2[0].Interests) < 1-1e-9 {
		t.Fatal("same seed must give identical noise")
	}
	// Bad k propagates.
	if _, err := e.Anonymize(pool, PrivacyPolicy{KAnonymity: 99}); err == nil {
		t.Fatal("oversized k must fail")
	}
}

func TestRecommendPrivate(t *testing.T) {
	e, pool := testEngine(t)
	sel, err := e.RecommendPrivate(pool, 0, Request{OlderID: "v1", NewerID: "v2", K: 2},
		PrivacyPolicy{KAnonymity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("private selection size = %d", len(sel))
	}
	if _, err := e.RecommendPrivate(pool, -1, Request{OlderID: "v1", NewerID: "v2", K: 1}, PrivacyPolicy{}); err == nil {
		t.Fatal("bad index must fail")
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		Plain: "plain", DiverseMMR: "mmr", DiverseMaxMin: "maxmin",
		NoveltyAware: "novelty", SemanticDiverse: "semantic",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("Strategy(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy must render")
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	e := New(Config{})
	if e.Registry() == nil || e.Registry().Len() == 0 {
		t.Fatal("zero config must get the default registry")
	}
	if e.Provenance() == nil {
		t.Fatal("zero config must get a provenance store")
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestCacheAccessorsAndInvalidation(t *testing.T) {
	e, _ := testEngine(t) // v1..v3 ingested
	if e.HasItems("v1", "v2") || e.ContextBuilds() != 0 || len(e.CachedPairs()) != 0 {
		t.Fatal("fresh engine must have empty caches")
	}
	if _, err := e.Items("v1", "v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Items("v2", "v3"); err != nil {
		t.Fatal(err)
	}
	if !e.HasItems("v1", "v2") || !e.HasItems("v2", "v3") {
		t.Fatal("built pairs must report HasItems")
	}
	if got := e.ContextBuilds(); got != 2 {
		t.Fatalf("ContextBuilds = %d, want 2", got)
	}
	if got := e.CachedPairs(); len(got) != 2 || got[0] != "v1->v2" || got[1] != "v2->v3" {
		t.Fatalf("CachedPairs = %v", got)
	}
	// Cached re-request does not build again.
	if _, err := e.Items("v1", "v2"); err != nil {
		t.Fatal(err)
	}
	if got := e.ContextBuilds(); got != 2 {
		t.Fatalf("cache hit incremented ContextBuilds to %d", got)
	}
	// InvalidateVersion drops exactly the pairs that read the version.
	if n := e.InvalidateVersion("v2"); n != 2 {
		t.Fatalf("InvalidateVersion(v2) dropped %d pairs, want 2", n)
	}
	if e.HasItems("v1", "v2") || e.HasItems("v2", "v3") || len(e.CachedPairs()) != 0 {
		t.Fatal("invalidated pairs must be gone")
	}
	if n := e.InvalidateVersion("v2"); n != 0 {
		t.Fatalf("second invalidation dropped %d pairs, want 0", n)
	}
	// The next request rebuilds transparently.
	if _, err := e.Items("v1", "v2"); err != nil {
		t.Fatal(err)
	}
	if got := e.ContextBuilds(); got != 3 {
		t.Fatalf("rebuild after invalidation: ContextBuilds = %d, want 3", got)
	}
	// InvalidatePair is the single-pair hook.
	if !e.InvalidatePair("v1", "v2") {
		t.Fatal("InvalidatePair must report the drop")
	}
	if e.InvalidatePair("v1", "v2") {
		t.Fatal("second InvalidatePair must report nothing cached")
	}
	// An invalidated pair that only dropped items still recommends correctly.
	if _, err := e.Context("v1", "v2"); err != nil {
		t.Fatal(err)
	}
}
