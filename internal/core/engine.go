// Package core implements the paper's processing model end to end: versions
// of a knowledge base are ingested, consecutive pairs are analyzed into
// measure evaluations, and the human-aware recommenders of §III rank the
// measures for users and groups. Every pipeline stage writes a provenance
// record (§III-b transparency), and the privacy entry points apply the
// anonymization machinery of §III-e before any profile reaches the
// recommender.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"evorec/internal/measures"
	"evorec/internal/profile"
	"evorec/internal/provenance"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
)

// Config parameterizes an Engine. The zero value is usable: it gets the
// default measure registry, the agent name "evorec" and the wall clock.
type Config struct {
	// Registry supplies the measure set; nil means measures.NewRegistry().
	Registry *measures.Registry
	// Agent names the engine in provenance records.
	Agent string
	// Clock stamps provenance records; nil means time.Now.
	Clock func() time.Time
}

// Engine is the processing model. It caches the expensive per-version-pair
// structures (contexts and items) so that repeated recommendations against
// the same pair are cheap.
//
// Engine is not safe for unsupervised concurrent use: Ingest, Context and
// Items mutate the caches. It is, however, built to sit behind an external
// reader/writer lock (internal/service does exactly that): once a pair is
// cached — observable through HasItems — Recommend, RecommendGroup, Notify
// and RecommendPrivate only read the caches and append to the (internally
// synchronized) provenance store, so any number of them may run concurrently
// under a read lock while cache-building calls hold the write lock.
type Engine struct {
	registry *measures.Registry
	agent    string
	versions *rdf.VersionStore
	prov     *provenance.Store

	versionRec map[string]string // version ID -> provenance record ID
	ctxCache   map[string]*measures.Context
	itemsCache map[string][]recommend.Item
	idxCache   map[string]*recommend.ItemIndex // built with itemsCache, same lifetime
	itemsRec   map[string]string               // pair key -> provenance record ID
	ctxBuilds  int                             // contexts actually constructed (cache misses)
}

// New builds an engine from the config.
func New(cfg Config) *Engine {
	reg := cfg.Registry
	if reg == nil {
		reg = measures.NewRegistry()
	}
	agent := cfg.Agent
	if agent == "" {
		agent = "evorec"
	}
	var prov *provenance.Store
	if cfg.Clock != nil {
		prov = provenance.NewStoreWithClock(cfg.Clock)
	} else {
		prov = provenance.NewStore()
	}
	return &Engine{
		registry:   reg,
		agent:      agent,
		versions:   rdf.NewVersionStore(),
		prov:       prov,
		versionRec: make(map[string]string),
		ctxCache:   make(map[string]*measures.Context),
		itemsCache: make(map[string][]recommend.Item),
		idxCache:   make(map[string]*recommend.ItemIndex),
		itemsRec:   make(map[string]string),
	}
}

// Registry returns the engine's measure registry.
func (e *Engine) Registry() *measures.Registry { return e.registry }

// Versions returns the engine's version store.
func (e *Engine) Versions() *rdf.VersionStore { return e.versions }

// Provenance returns the engine's provenance store.
func (e *Engine) Provenance() *provenance.Store { return e.prov }

// Ingest registers a version and records its provenance as an observation.
func (e *Engine) Ingest(v *rdf.Version) error {
	if err := e.versions.Add(v); err != nil {
		return err
	}
	rec, err := e.prov.Append("ingest_version", e.agent, provenance.Observation,
		nil, []string{"version:" + v.ID},
		fmt.Sprintf("%d triples", v.Graph.Len()))
	if err != nil {
		return fmt.Errorf("core: recording ingest provenance: %w", err)
	}
	e.versionRec[v.ID] = rec.ID
	return nil
}

// IngestAll ingests every version of the store in evolution order.
func (e *Engine) IngestAll(vs *rdf.VersionStore) error {
	for _, id := range vs.IDs() {
		v, _ := vs.Get(id)
		if err := e.Ingest(v); err != nil {
			return err
		}
	}
	return nil
}

func pairKey(olderID, newerID string) string { return olderID + "->" + newerID }

// Context returns (building and caching on first use) the analysis context
// for a version pair.
func (e *Engine) Context(olderID, newerID string) (*measures.Context, error) {
	key := pairKey(olderID, newerID)
	if ctx, ok := e.ctxCache[key]; ok {
		return ctx, nil
	}
	older, ok := e.versions.Get(olderID)
	if !ok {
		return nil, fmt.Errorf("core: unknown version %q", olderID)
	}
	newer, ok := e.versions.Get(newerID)
	if !ok {
		return nil, fmt.Errorf("core: unknown version %q", newerID)
	}
	ctx := measures.NewContext(older, newer)
	e.ctxCache[key] = ctx
	e.ctxBuilds++
	if _, err := e.prov.Append("compute_delta", e.agent, provenance.Inference,
		[]string{e.versionRec[olderID], e.versionRec[newerID]},
		[]string{"delta:" + key},
		fmt.Sprintf("|δ+|=%d |δ-|=%d", len(ctx.Delta.Added), len(ctx.Delta.Deleted))); err != nil {
		return nil, fmt.Errorf("core: recording delta provenance: %w", err)
	}
	return ctx, nil
}

// Items returns (building and caching on first use) the recommendable items
// — every registered measure evaluated on the version pair.
func (e *Engine) Items(olderID, newerID string) ([]recommend.Item, error) {
	key := pairKey(olderID, newerID)
	if items, ok := e.itemsCache[key]; ok {
		return items, nil
	}
	ctx, err := e.Context(olderID, newerID)
	if err != nil {
		return nil, err
	}
	items := recommend.BuildItems(ctx, e.registry)
	e.itemsCache[key] = items
	// The scoring kernel's item index lives and dies with the item cache:
	// built once per pair, so every later recommend/notify against the pair
	// scores through flat vectors and postings without mutating anything —
	// the property that lets the service run them under a read lock.
	e.idxCache[key] = recommend.NewItemIndex(items)

	deltaRec, _ := e.prov.Creator("delta:" + key)
	artifacts := make([]string, 0, len(items))
	for _, it := range items {
		artifacts = append(artifacts, fmt.Sprintf("scores:%s:%s", it.ID(), key))
	}
	rec, err := e.prov.Append("evaluate_measures", e.agent, provenance.Inference,
		[]string{deltaRec.ID}, artifacts, fmt.Sprintf("%d measures", len(items)))
	if err != nil {
		return nil, fmt.Errorf("core: recording measure provenance: %w", err)
	}
	e.itemsRec[key] = rec.ID
	return items, nil
}

// ItemIndex returns (building and caching the pair on first use) the
// scoring kernel's item index for a version pair. The index is immutable
// and safe for concurrent use; the feed fan-out borrows it so commits score
// subscribers through the exact structures the recommend path uses.
func (e *Engine) ItemIndex(olderID, newerID string) (*recommend.ItemIndex, error) {
	if _, err := e.Items(olderID, newerID); err != nil {
		return nil, err
	}
	return e.idxCache[pairKey(olderID, newerID)], nil
}

// HasItems reports whether the pair's items (and therefore its context) are
// already cached. When it returns true, the recommendation entry points read
// the caches without mutating them, which is what lets a service run them
// concurrently under a read lock.
func (e *Engine) HasItems(olderID, newerID string) bool {
	_, ok := e.itemsCache[pairKey(olderID, newerID)]
	return ok
}

// ContextBuilds returns how many measure contexts the engine actually
// constructed (cache misses). A service wrapping the engine with singleflight
// can assert that hammering one pair from many goroutines builds it once.
func (e *Engine) ContextBuilds() int { return e.ctxBuilds }

// CachedPairs returns the pair keys with cached items, sorted.
func (e *Engine) CachedPairs() []string {
	out := make([]string, 0, len(e.itemsCache))
	for key := range e.itemsCache {
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// InvalidatePair drops one pair's cached context and items, reporting
// whether anything was cached. The next request against the pair rebuilds.
func (e *Engine) InvalidatePair(olderID, newerID string) bool {
	key := pairKey(olderID, newerID)
	_, hadCtx := e.ctxCache[key]
	_, hadItems := e.itemsCache[key]
	delete(e.ctxCache, key)
	delete(e.itemsCache, key)
	delete(e.idxCache, key)
	delete(e.itemsRec, key)
	return hadCtx || hadItems
}

// InvalidateVersion drops every cached pair that involves the version and
// returns how many pairs were dropped. Committing a replacement or repaired
// version invalidates exactly the derived state that read it — untouched
// pairs keep their caches.
func (e *Engine) InvalidateVersion(id string) int {
	n := 0
	for key, ctx := range e.ctxCache {
		if ctx.Older.ID == id || ctx.Newer.ID == id {
			delete(e.ctxCache, key)
			delete(e.itemsCache, key)
			delete(e.idxCache, key)
			delete(e.itemsRec, key)
			n++
		}
	}
	return n
}

// Strategy selects the single-user recommendation algorithm.
type Strategy uint8

const (
	// Plain ranks purely by relatedness (§III-a).
	Plain Strategy = iota
	// DiverseMMR applies content-based MMR diversification (§III-c(i)).
	DiverseMMR
	// DiverseMaxMin applies Max-Min diversification (§III-c(i) ablation).
	DiverseMaxMin
	// NoveltyAware demotes measures the user has already seen (§III-c(ii)).
	NoveltyAware
	// SemanticDiverse round-robins over measure categories (§III-c(iii)).
	SemanticDiverse
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Plain:
		return "plain"
	case DiverseMMR:
		return "mmr"
	case DiverseMaxMin:
		return "maxmin"
	case NoveltyAware:
		return "novelty"
	case SemanticDiverse:
		return "semantic"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Request parameterizes a single-user recommendation.
type Request struct {
	// OlderID and NewerID name the version pair to analyze.
	OlderID, NewerID string
	// K is the number of measures to recommend.
	K int
	// Strategy selects the algorithm; zero value is Plain.
	Strategy Strategy
	// Lambda is the MMR relevance/diversity mix (only for DiverseMMR);
	// zero means 0.5.
	Lambda float64
	// MarkSeen updates the user's history with the recommended measures,
	// feeding future novelty-aware requests.
	MarkSeen bool
}

// Recommend produces a recommendation list for one user and records its
// provenance.
func (e *Engine) Recommend(u *profile.Profile, req Request) ([]recommend.Recommendation, error) {
	if u == nil {
		return nil, fmt.Errorf("core: profile must not be nil")
	}
	if req.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1, got %d", req.K)
	}
	items, err := e.Items(req.OlderID, req.NewerID)
	if err != nil {
		return nil, err
	}
	key := pairKey(req.OlderID, req.NewerID)
	idx := e.idxCache[key]
	lambda := req.Lambda
	if lambda == 0 {
		lambda = 0.5
	}
	// Point selections run on the flat kernel (bit-identical to the map
	// path); the greedy diversifiers score item pairs adaptively and stay on
	// the reference functions.
	var sel []recommend.Recommendation
	switch req.Strategy {
	case DiverseMMR:
		sel = recommend.MMR(u, items, req.K, lambda)
	case DiverseMaxMin:
		sel = recommend.MaxMin(u, items, req.K)
	case NoveltyAware:
		sel = idx.NoveltyTopK(u, req.K)
	case SemanticDiverse:
		sel = idx.SemanticTopK(u, req.K)
	default:
		sel = idx.TopK(u, req.K)
	}
	if req.MarkSeen {
		for _, s := range sel {
			u.MarkSeen(s.MeasureID)
		}
	}
	artifact := fmt.Sprintf("rec:%s:%s:%s", u.ID, key, req.Strategy)
	if _, err := e.prov.Append("recommend", e.agent, provenance.Inference,
		[]string{e.itemsRec[key]}, []string{artifact},
		fmt.Sprintf("k=%d measures=%v", req.K, recommend.MeasureIDs(sel))); err != nil {
		return nil, fmt.Errorf("core: recording recommendation provenance: %w", err)
	}
	return sel, nil
}

// GroupRequest parameterizes a group recommendation.
type GroupRequest struct {
	// OlderID and NewerID name the version pair to analyze.
	OlderID, NewerID string
	// K is the number of measures to recommend.
	K int
	// Aggregation selects the group scoring strategy.
	Aggregation recommend.Aggregation
	// FairGreedy switches to the fairness-aware greedy selection with
	// balance FairAlpha (§III-d) instead of plain aggregation ranking.
	FairGreedy bool
	// FairAlpha balances group utility against the least-satisfied member
	// in FairGreedy mode.
	FairAlpha float64
}

// RecommendGroup produces a recommendation list for a group and records its
// provenance.
func (e *Engine) RecommendGroup(g *profile.Group, req GroupRequest) ([]recommend.Recommendation, error) {
	if g == nil {
		return nil, fmt.Errorf("core: group must not be nil")
	}
	if req.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1, got %d", req.K)
	}
	items, err := e.Items(req.OlderID, req.NewerID)
	if err != nil {
		return nil, err
	}
	key := pairKey(req.OlderID, req.NewerID)
	var sel []recommend.Recommendation
	if req.FairGreedy {
		sel = recommend.FairGreedyTopK(g, items, req.K, req.FairAlpha)
	} else {
		sel = e.idxCache[key].GroupTopK(g, req.K, req.Aggregation)
	}
	mode := req.Aggregation.String()
	if req.FairGreedy {
		mode = fmt.Sprintf("fair_greedy(α=%.2f)", req.FairAlpha)
	}
	artifact := fmt.Sprintf("grouprec:%s:%s:%s", g.ID, key, mode)
	if _, err := e.prov.Append("recommend_group", e.agent, provenance.Inference,
		[]string{e.itemsRec[key]}, []string{artifact},
		fmt.Sprintf("k=%d members=%d measures=%v", req.K, g.Size(), recommend.MeasureIDs(sel))); err != nil {
		return nil, fmt.Errorf("core: recording group recommendation provenance: %w", err)
	}
	return sel, nil
}

// PrivacyPolicy selects the anonymization applied to a profile pool before
// recommendation (§III-e). Zero values disable each mechanism.
type PrivacyPolicy struct {
	// KAnonymity >= 2 replaces every profile with its group centroid such
	// that at least K users share each published vector.
	KAnonymity int
	// Epsilon > 0 adds Laplace noise with scale 1/Epsilon to every profile
	// over the pool's interest universe.
	Epsilon float64
	// Seed drives the noise; fixed seeds give reproducible experiments.
	Seed int64
}

// Anonymize applies the policy to the pool and returns the published
// profiles (index-aligned), recording the anonymization in provenance.
func (e *Engine) Anonymize(pool []*profile.Profile, pol PrivacyPolicy) ([]*profile.Profile, error) {
	published := pool
	if pol.KAnonymity >= 2 {
		anon, _, err := recommend.KAnonymize(pool, pol.KAnonymity)
		if err != nil {
			return nil, err
		}
		published = anon
	}
	if pol.Epsilon > 0 {
		rng := rand.New(rand.NewSource(pol.Seed))
		universe := recommend.InterestUniverse(pool)
		noisy := make([]*profile.Profile, len(published))
		for i, p := range published {
			np, err := recommend.DPPerturb(p, universe, pol.Epsilon, rng)
			if err != nil {
				return nil, err
			}
			noisy[i] = np
		}
		published = noisy
	}
	if _, err := e.prov.Append("anonymize_profiles", e.agent, provenance.Inference,
		nil, []string{fmt.Sprintf("profiles:anonymized:k=%d:eps=%g", pol.KAnonymity, pol.Epsilon)},
		fmt.Sprintf("%d profiles", len(pool))); err != nil {
		return nil, fmt.Errorf("core: recording anonymization provenance: %w", err)
	}
	return published, nil
}

// RecommendPrivate recommends for pool member idx using only the anonymized
// view of the pool, so the recommender never touches the raw profile.
func (e *Engine) RecommendPrivate(pool []*profile.Profile, idx int, req Request, pol PrivacyPolicy) ([]recommend.Recommendation, error) {
	if idx < 0 || idx >= len(pool) {
		return nil, fmt.Errorf("core: pool index %d out of range", idx)
	}
	published, err := e.Anonymize(pool, pol)
	if err != nil {
		return nil, err
	}
	return e.Recommend(published[idx], req)
}
