package core

import (
	"testing"

	"evorec/internal/trend"
)

func TestTrendAnalysis(t *testing.T) {
	e, _ := testEngine(t) // 3 versions
	a, err := e.TrendAnalysis("change_count")
	if err != nil {
		t.Fatal(err)
	}
	if a.MeasureID != "change_count" {
		t.Fatalf("measure = %s", a.MeasureID)
	}
	if len(a.PairIDs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(a.PairIDs))
	}
	if a.Len() == 0 {
		t.Fatal("trend analysis must track entities")
	}
	// Shape counts cover everything.
	total := 0
	for _, n := range a.ShapeCounts() {
		total += n
	}
	if total != a.Len() {
		t.Fatal("shape counts must cover all entities")
	}
	// Provenance recorded with lineage to both deltas.
	if _, ok := e.Provenance().Creator("trend:change_count:v1..v3"); !ok {
		t.Fatal("trend analysis must record provenance")
	}
	lin := e.Provenance().Lineage("trend:change_count:v1..v3")
	deltas := 0
	for _, r := range lin {
		if r.Activity == "compute_delta" {
			deltas++
		}
	}
	if deltas != 2 {
		t.Fatalf("trend lineage must include both deltas, got %d", deltas)
	}
}

func TestTrendAnalysisErrors(t *testing.T) {
	e, _ := testEngine(t)
	if _, err := e.TrendAnalysis("no_such_measure"); err == nil {
		t.Fatal("unknown measure must fail")
	}
	empty := New(Config{})
	if _, err := empty.TrendAnalysis("change_count"); err == nil {
		t.Fatal("too few versions must fail")
	}
}

func TestTrendAnalysisRepeatedCheap(t *testing.T) {
	e, _ := testEngine(t)
	a1, err := e.TrendAnalysis("change_count")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.TrendAnalysis("relevance_shift")
	if err != nil {
		t.Fatal(err)
	}
	// Contexts shared: delta provenance still recorded once per pair.
	if got := len(e.Provenance().ProducersOf("delta:v1->v2")); got != 1 {
		t.Fatalf("delta provenance recorded %d times", got)
	}
	_ = a1
	var _ *trend.Analysis = a2
}
