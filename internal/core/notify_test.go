package core

import (
	"testing"

	"evorec/internal/profile"
)

func TestNotifyEmitsForInterestedUsers(t *testing.T) {
	e, pool := testEngine(t)
	ns, err := e.Notify(pool, "v1", "v2", 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) == 0 {
		t.Fatal("a localized evolution must notify at least some users")
	}
	perUser := map[string]int{}
	for _, n := range ns {
		if n.Relatedness < 0.05 {
			t.Fatalf("notification below threshold: %+v", n)
		}
		if n.Reason == "" || n.MeasureID == "" {
			t.Fatalf("notification missing content: %+v", n)
		}
		if n.OlderID != "v1" || n.NewerID != "v2" {
			t.Fatalf("notification pair wrong: %+v", n)
		}
		perUser[n.UserID]++
		if perUser[n.UserID] > 2 {
			t.Fatalf("user %s got more than k notifications", n.UserID)
		}
	}
	// Ordered by user then descending relatedness.
	for i := 1; i < len(ns); i++ {
		if ns[i-1].UserID == ns[i].UserID && ns[i-1].Relatedness < ns[i].Relatedness {
			t.Fatal("per-user notifications must be descending by relatedness")
		}
	}
	// Provenance recorded.
	if _, ok := e.Provenance().Creator("notifications:v1->v2"); !ok {
		t.Fatal("notify must record provenance")
	}
}

func TestNotifySilenceForUnrelatedUser(t *testing.T) {
	e, _ := testEngine(t)
	stranger := profile.New("stranger") // no interests at all
	ns, err := e.Notify([]*profile.Profile{stranger}, "v1", "v2", 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Fatalf("interest-free user must not be notified: %v", ns)
	}
}

func TestNotifyThresholdFilters(t *testing.T) {
	e, pool := testEngine(t)
	loose, err := e.Notify(pool, "v1", "v2", 0.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := e.Notify(pool, "v1", "v2", 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) > len(loose) {
		t.Fatal("higher threshold must not emit more notifications")
	}
}

func TestNotifyValidation(t *testing.T) {
	e, pool := testEngine(t)
	if _, err := e.Notify(pool, "v1", "v2", -0.1, 3); err == nil {
		t.Fatal("negative threshold must fail")
	}
	if _, err := e.Notify(pool, "v1", "v2", 1.5, 3); err == nil {
		t.Fatal("threshold > 1 must fail")
	}
	if _, err := e.Notify(pool, "v1", "v2", 0.5, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := e.Notify(pool, "vX", "v2", 0.5, 1); err == nil {
		t.Fatal("unknown version must fail")
	}
}
