// Package graphx implements the structural graph algorithms behind the
// paper's structural evolution measures (§II-c): Brandes betweenness
// centrality, bridging centrality (betweenness × bridging coefficient,
// after Hwang et al.), plus the supporting machinery — BFS distances,
// connected components, clustering coefficients, degree statistics and
// PageRank — over an undirected graph of RDF terms.
//
// The package converts the term-keyed adjacency produced by
// schema.ClassGraph into a compact integer-indexed form once, then runs all
// algorithms on integer IDs.
package graphx

import (
	"math"
	"math/rand"
	"slices"
	"sort"

	"evorec/internal/rdf"
)

// Graph is an undirected graph over rdf.Term nodes with integer-compacted
// adjacency. Build one with FromAdjacency (term-keyed input) or
// FromAdjacencyIDs (dictionary-encoded input, which skips every term-keyed
// map on the construction path).
type Graph struct {
	nodes []rdf.Term
	// Exactly one of index / (dict, idIndex) is populated, depending on the
	// constructor: node lookup goes through the term dictionary when the
	// graph was built from encoded adjacency, so probes hash a uint32
	// instead of a three-string struct.
	index   map[rdf.Term]int
	dict    *rdf.Dict
	idIndex map[rdf.TermID]int
	adj     [][]int
}

// indexOf resolves a term to its compact node index.
func (g *Graph) indexOf(t rdf.Term) (int, bool) {
	if g.dict != nil {
		id, ok := g.dict.Lookup(t)
		if !ok {
			return 0, false
		}
		i, ok := g.idIndex[id]
		return i, ok
	}
	i, ok := g.index[t]
	return i, ok
}

// FromAdjacency builds a Graph from a term-keyed adjacency map, such as the
// one returned by schema.ClassGraph. Nodes are ordered deterministically
// (sorted by term) so that all derived scores are reproducible. Edges to
// nodes absent from the map are ignored; duplicate edges and self-loops are
// dropped.
func FromAdjacency(adj map[rdf.Term][]rdf.Term) *Graph {
	nodes := make([]rdf.Term, 0, len(adj))
	for t := range adj {
		nodes = append(nodes, t)
	}
	rdf.SortTerms(nodes)
	index := make(map[rdf.Term]int, len(nodes))
	for i, t := range nodes {
		index[t] = i
	}
	g := &Graph{nodes: nodes, index: index, adj: make([][]int, len(nodes))}
	for t, ns := range adj {
		u := index[t]
		seen := make(map[int]struct{}, len(ns))
		for _, n := range ns {
			v, ok := index[n]
			if !ok || v == u {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			g.adj[u] = append(g.adj[u], v)
		}
		sort.Ints(g.adj[u])
	}
	return g
}

// FromAdjacencyIDs builds a Graph from dictionary-encoded adjacency, such as
// schema.ClassGraphIDs. It produces a graph identical to FromAdjacency over
// the decoded terms (same deterministic node order, same scores) but the
// whole construction hashes only uint32 IDs. The dict must be the one that
// minted the IDs.
func FromAdjacencyIDs(dict *rdf.Dict, adj map[rdf.TermID][]rdf.TermID) *Graph {
	ids := make([]rdf.TermID, 0, len(adj))
	for id := range adj {
		ids = append(ids, id)
	}
	// Deterministic node order: sorted by decoded term, matching
	// FromAdjacency so all derived scores are reproducible across the two
	// construction paths.
	slices.SortFunc(ids, func(a, b rdf.TermID) int {
		return dict.TermOf(a).Compare(dict.TermOf(b))
	})
	idIndex := make(map[rdf.TermID]int, len(ids))
	nodes := make([]rdf.Term, len(ids))
	for i, id := range ids {
		idIndex[id] = i
		nodes[i] = dict.TermOf(id)
	}
	g := &Graph{nodes: nodes, dict: dict, idIndex: idIndex, adj: make([][]int, len(ids))}
	for id, ns := range adj {
		u := idIndex[id]
		seen := make(map[int]struct{}, len(ns))
		for _, n := range ns {
			v, ok := idIndex[n]
			if !ok || v == u {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			g.adj[u] = append(g.adj[u], v)
		}
		sort.Ints(g.adj[u])
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ns := range g.adj {
		n += len(ns)
	}
	return n / 2
}

// Nodes returns the node terms in index order.
func (g *Graph) Nodes() []rdf.Term {
	out := make([]rdf.Term, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Degree returns the degree of node t, or 0 if t is not in the graph.
func (g *Graph) Degree(t rdf.Term) int {
	i, ok := g.indexOf(t)
	if !ok {
		return 0
	}
	return len(g.adj[i])
}

// HasNode reports whether t is a node of the graph.
func (g *Graph) HasNode(t rdf.Term) bool {
	_, ok := g.indexOf(t)
	return ok
}

// Neighbors returns the nodes adjacent to t, in node-index (sorted term)
// order; nil for unknown nodes.
func (g *Graph) Neighbors(t rdf.Term) []rdf.Term {
	i, ok := g.indexOf(t)
	if !ok {
		return nil
	}
	out := make([]rdf.Term, len(g.adj[i]))
	for k, w := range g.adj[i] {
		out[k] = g.nodes[w]
	}
	return out
}

// Scores maps terms to a real-valued score; every centrality in this package
// returns one.
type Scores map[rdf.Term]float64

// Betweenness computes exact betweenness centrality for every node with
// Brandes' algorithm on unweighted shortest paths. Each unordered pair is
// counted once (the undirected convention: accumulated dependencies are
// halved).
func (g *Graph) Betweenness() Scores {
	cb := make([]float64, len(g.nodes))
	sc := newBrandesScratch(len(g.nodes))
	for s := range g.nodes {
		g.brandesFrom(s, cb, sc)
	}
	out := make(Scores, len(g.nodes))
	for i, t := range g.nodes {
		out[t] = cb[i] / 2
	}
	return out
}

// BetweennessSampled estimates betweenness from k randomly chosen source
// pivots, scaled by n/k (Brandes–Pich pivot sampling). With k >= n it is
// exact. The rng must not be nil.
func (g *Graph) BetweennessSampled(k int, rng *rand.Rand) Scores {
	n := len(g.nodes)
	if k >= n {
		return g.Betweenness()
	}
	cb := make([]float64, n)
	sc := newBrandesScratch(n)
	perm := rng.Perm(n)
	for _, s := range perm[:k] {
		g.brandesFrom(s, cb, sc)
	}
	scale := float64(n) / float64(k) / 2
	out := make(Scores, n)
	for i, t := range g.nodes {
		out[t] = cb[i] * scale
	}
	return out
}

// brandesScratch holds the per-source working arrays of Brandes' algorithm,
// reused across source iterations so a full betweenness run allocates O(n)
// once instead of O(n) per source.
type brandesScratch struct {
	sigma []float64 // number of shortest paths
	dist  []int
	delta []float64
	pred  [][]int
	queue []int
	order []int // nodes in non-decreasing distance
}

func newBrandesScratch(n int) *brandesScratch {
	return &brandesScratch{
		sigma: make([]float64, n),
		dist:  make([]int, n),
		delta: make([]float64, n),
		pred:  make([][]int, n),
		queue: make([]int, 0, n),
		order: make([]int, 0, n),
	}
}

// brandesFrom runs one Brandes source iteration, accumulating dependencies
// into cb.
func (g *Graph) brandesFrom(s int, cb []float64, sc *brandesScratch) {
	sigma, dist, delta, pred := sc.sigma, sc.dist, sc.delta, sc.pred
	for i := range dist {
		sigma[i] = 0
		dist[i] = -1
		delta[i] = 0
		pred[i] = pred[i][:0]
	}
	sigma[s] = 1
	dist[s] = 0
	queue := append(sc.queue[:0], s)
	order := sc.order[:0]
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
			if dist[w] == dist[v]+1 {
				sigma[w] += sigma[v]
				pred[w] = append(pred[w], v)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, v := range pred[w] {
			delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
		}
		if w != s {
			cb[w] += delta[w]
		}
	}
	sc.order = order[:0]
}

// BridgingCoefficient computes, for every node, the bridging coefficient
// BrC(v) = (1/d(v)) / Σ_{i∈N(v)} 1/d(i). Nodes of degree 0 get 0.
func (g *Graph) BridgingCoefficient() Scores {
	out := make(Scores, len(g.nodes))
	for i, t := range g.nodes {
		d := len(g.adj[i])
		if d == 0 {
			out[t] = 0
			continue
		}
		sum := 0.0
		for _, w := range g.adj[i] {
			if dw := len(g.adj[w]); dw > 0 {
				sum += 1 / float64(dw)
			}
		}
		if sum == 0 {
			out[t] = 0
			continue
		}
		out[t] = (1 / float64(d)) / sum
	}
	return out
}

// BridgingCentrality computes bridging centrality: the product of the
// betweenness rank value and the bridging coefficient. A node scoring high
// connects densely-connected components, the topological signal the paper's
// structural measure targets.
func (g *Graph) BridgingCentrality() Scores {
	bc := g.Betweenness()
	brc := g.BridgingCoefficient()
	out := make(Scores, len(g.nodes))
	for _, t := range g.nodes {
		out[t] = bc[t] * brc[t]
	}
	return out
}

// BFSDistances returns the unweighted shortest-path distance from src to
// every reachable node. Unreachable nodes are absent from the result.
func (g *Graph) BFSDistances(src rdf.Term) map[rdf.Term]int {
	s, ok := g.indexOf(src)
	if !ok {
		return nil
	}
	dist := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	out := make(map[rdf.Term]int)
	for i, d := range dist {
		if d >= 0 {
			out[g.nodes[i]] = d
		}
	}
	return out
}

// BFSPath returns one shortest path from src to dst (inclusive of both
// endpoints), or nil when dst is unreachable or either node is unknown.
func (g *Graph) BFSPath(src, dst rdf.Term) []rdf.Term {
	s, ok := g.indexOf(src)
	if !ok {
		return nil
	}
	d, ok := g.indexOf(dst)
	if !ok {
		return nil
	}
	if s == d {
		return []rdf.Term{src}
	}
	parent := make([]int, len(g.nodes))
	for i := range parent {
		parent[i] = -1
	}
	parent[s] = s
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if parent[w] >= 0 {
				continue
			}
			parent[w] = v
			if w == d {
				var path []rdf.Term
				for x := d; ; x = parent[x] {
					path = append(path, g.nodes[x])
					if x == s {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// ConnectedComponents returns the node sets of each connected component,
// largest first (ties broken by smallest contained node index).
func (g *Graph) ConnectedComponents() [][]rdf.Term {
	comp := make([]int, len(g.nodes))
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]rdf.Term
	for i := range g.nodes {
		if comp[i] >= 0 {
			continue
		}
		id := len(comps)
		var members []rdf.Term
		stack := []int{i}
		comp[i] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, g.nodes[v])
			for _, w := range g.adj[v] {
				if comp[w] < 0 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
		}
		rdf.SortTerms(members)
		comps = append(comps, members)
	}
	sort.SliceStable(comps, func(a, b int) bool { return len(comps[a]) > len(comps[b]) })
	return comps
}

// ClusteringCoefficient computes the local clustering coefficient of every
// node: the fraction of pairs of neighbors that are themselves connected.
func (g *Graph) ClusteringCoefficient() Scores {
	out := make(Scores, len(g.nodes))
	for i, t := range g.nodes {
		d := len(g.adj[i])
		if d < 2 {
			out[t] = 0
			continue
		}
		nbr := make(map[int]struct{}, d)
		for _, w := range g.adj[i] {
			nbr[w] = struct{}{}
		}
		links := 0
		for _, w := range g.adj[i] {
			for _, x := range g.adj[w] {
				if x > w {
					if _, ok := nbr[x]; ok {
						links++
					}
				}
			}
		}
		out[t] = 2 * float64(links) / (float64(d) * float64(d-1))
	}
	return out
}

// PageRank computes PageRank with damping factor d over the undirected
// graph (each undirected edge treated as two directed edges), iterating
// until the L1 change drops below eps or maxIter rounds pass. Dangling mass
// is redistributed uniformly.
func (g *Graph) PageRank(d float64, eps float64, maxIter int) Scores {
	n := len(g.nodes)
	out := make(Scores, n)
	if n == 0 {
		return out
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for v := range g.adj {
			if len(g.adj[v]) == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(len(g.adj[v]))
			for _, w := range g.adj[v] {
				next[w] += share
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		change := 0.0
		for i := range next {
			next[i] = base + d*next[i]
			change += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if change < eps {
			break
		}
	}
	for i, t := range g.nodes {
		out[t] = rank[i]
	}
	return out
}

// Diameter returns the longest shortest-path distance in the graph,
// considering only reachable pairs. Empty graphs return 0.
func (g *Graph) Diameter() int {
	max := 0
	for _, t := range g.nodes {
		for _, d := range g.BFSDistances(t) {
			if d > max {
				max = d
			}
		}
	}
	return max
}
