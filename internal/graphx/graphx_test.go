package graphx

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"evorec/internal/rdf"
)

func node(i int) rdf.Term { return rdf.SchemaIRI(fmt.Sprintf("N%02d", i)) }

// pathGraph builds 0-1-2-...-(n-1).
func pathGraph(n int) *Graph {
	adj := make(map[rdf.Term][]rdf.Term)
	for i := 0; i < n; i++ {
		adj[node(i)] = nil
	}
	for i := 1; i < n; i++ {
		adj[node(i-1)] = append(adj[node(i-1)], node(i))
		adj[node(i)] = append(adj[node(i)], node(i-1))
	}
	return FromAdjacency(adj)
}

// starGraph builds hub 0 connected to 1..n-1.
func starGraph(n int) *Graph {
	adj := make(map[rdf.Term][]rdf.Term)
	for i := 1; i < n; i++ {
		adj[node(0)] = append(adj[node(0)], node(i))
		adj[node(i)] = []rdf.Term{node(0)}
	}
	return FromAdjacency(adj)
}

// barbellGraph: two K4 cliques joined through a single bridge node.
func barbellGraph() *Graph {
	adj := make(map[rdf.Term][]rdf.Term)
	edge := func(a, b int) {
		adj[node(a)] = append(adj[node(a)], node(b))
		adj[node(b)] = append(adj[node(b)], node(a))
	}
	// clique 0..3, clique 5..8, bridge node 4.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edge(i, j)
		}
	}
	for i := 5; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			edge(i, j)
		}
	}
	edge(3, 4)
	edge(4, 5)
	return FromAdjacency(adj)
}

func TestFromAdjacencyDedupAndSelfLoops(t *testing.T) {
	a, b := node(0), node(1)
	adj := map[rdf.Term][]rdf.Term{
		a: {b, b, a}, // duplicate edge + self loop
		b: {a},
	}
	g := FromAdjacency(adj)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("nodes=%d edges=%d, want 2/1", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatalf("degrees = %d,%d want 1,1", g.Degree(a), g.Degree(b))
	}
	if g.Degree(node(9)) != 0 || g.HasNode(node(9)) {
		t.Fatal("absent node must have degree 0")
	}
}

func TestFromAdjacencyIgnoresUnknownTargets(t *testing.T) {
	a := node(0)
	g := FromAdjacency(map[rdf.Term][]rdf.Term{a: {node(7)}}) // 7 not a key
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("unknown edge target must be dropped: nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: exact betweenness is 0,3,4,3,0.
	g := pathGraph(5)
	bc := g.Betweenness()
	want := []float64{0, 3, 4, 3, 0}
	for i, w := range want {
		if got := bc[node(i)]; math.Abs(got-w) > 1e-9 {
			t.Errorf("BC(node%d) = %g, want %g", i, got, w)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with 6 leaves: hub lies on all C(6,2)=15 leaf pairs.
	g := starGraph(7)
	bc := g.Betweenness()
	if math.Abs(bc[node(0)]-15) > 1e-9 {
		t.Fatalf("hub BC = %g, want 15", bc[node(0)])
	}
	for i := 1; i < 7; i++ {
		if bc[node(i)] != 0 {
			t.Fatalf("leaf BC = %g, want 0", bc[node(i)])
		}
	}
}

func TestBetweennessDisconnected(t *testing.T) {
	adj := map[rdf.Term][]rdf.Term{
		node(0): {node(1)}, node(1): {node(0)},
		node(2): {node(3)}, node(3): {node(2)},
	}
	bc := FromAdjacency(adj).Betweenness()
	for i := 0; i < 4; i++ {
		if bc[node(i)] != 0 {
			t.Fatalf("BC in 2-node components must be 0, got %g", bc[node(i)])
		}
	}
}

func TestBetweennessSampledExactWhenKIsN(t *testing.T) {
	g := barbellGraph()
	exact := g.Betweenness()
	sampled := g.BetweennessSampled(g.NumNodes(), rand.New(rand.NewSource(1)))
	for _, n := range g.Nodes() {
		if math.Abs(exact[n]-sampled[n]) > 1e-9 {
			t.Fatalf("sampled(k=n) differs at %v: %g vs %g", n, sampled[n], exact[n])
		}
	}
}

func TestBetweennessSampledApproximates(t *testing.T) {
	// On a larger path graph, sampling half the pivots should still rank the
	// middle above the ends.
	g := pathGraph(40)
	s := g.BetweennessSampled(20, rand.New(rand.NewSource(42)))
	if s[node(20)] <= s[node(0)] || s[node(20)] <= s[node(39)] {
		t.Fatalf("sampled betweenness must rank center above endpoints: mid=%g end=%g",
			s[node(20)], s[node(0)])
	}
}

func TestBridgingCoefficientBridgeNode(t *testing.T) {
	g := barbellGraph()
	brc := g.BridgingCoefficient()
	// The bridge (node 4, degree 2, neighbors of degree 4) must beat clique
	// interior nodes (degree 3, neighbors mostly degree 3).
	if brc[node(4)] <= brc[node(0)] {
		t.Fatalf("bridge BrC %g must exceed clique-interior BrC %g", brc[node(4)], brc[node(0)])
	}
}

func TestBridgingCentralityIdentifiesBridge(t *testing.T) {
	g := barbellGraph()
	bri := g.BridgingCentrality()
	best := node(0)
	for _, n := range g.Nodes() {
		if bri[n] > bri[best] {
			best = n
		}
	}
	if best != node(4) {
		t.Fatalf("bridging centrality max at %v, want bridge node 4 (scores=%v)", best, bri)
	}
}

func TestBridgingIsolatedNode(t *testing.T) {
	g := FromAdjacency(map[rdf.Term][]rdf.Term{node(0): nil})
	if got := g.BridgingCoefficient()[node(0)]; got != 0 {
		t.Fatalf("isolated BrC = %g, want 0", got)
	}
	if got := g.BridgingCentrality()[node(0)]; got != 0 {
		t.Fatalf("isolated bridging centrality = %g, want 0", got)
	}
}

func TestBFSDistances(t *testing.T) {
	g := pathGraph(5)
	d := g.BFSDistances(node(0))
	for i := 0; i < 5; i++ {
		if d[node(i)] != i {
			t.Fatalf("dist(0,%d) = %d, want %d", i, d[node(i)], i)
		}
	}
	if g.BFSDistances(node(99)) != nil {
		t.Fatal("BFS from unknown source must return nil")
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	adj := map[rdf.Term][]rdf.Term{
		node(0): {node(1)}, node(1): {node(0)}, node(2): nil,
	}
	d := FromAdjacency(adj).BFSDistances(node(0))
	if _, ok := d[node(2)]; ok {
		t.Fatal("unreachable node must be absent from BFS result")
	}
	if len(d) != 2 {
		t.Fatalf("BFS result size = %d, want 2", len(d))
	}
}

func TestConnectedComponents(t *testing.T) {
	adj := map[rdf.Term][]rdf.Term{
		node(0): {node(1)}, node(1): {node(0), node(2)}, node(2): {node(1)},
		node(3): {node(4)}, node(4): {node(3)},
		node(5): nil,
	}
	comps := FromAdjacency(adj).ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes = %d,%d,%d want 3,2,1",
			len(comps[0]), len(comps[1]), len(comps[2]))
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: all nodes have coefficient 1. Path: all 0.
	tri := map[rdf.Term][]rdf.Term{
		node(0): {node(1), node(2)},
		node(1): {node(0), node(2)},
		node(2): {node(0), node(1)},
	}
	cc := FromAdjacency(tri).ClusteringCoefficient()
	for i := 0; i < 3; i++ {
		if math.Abs(cc[node(i)]-1) > 1e-9 {
			t.Fatalf("triangle CC = %g, want 1", cc[node(i)])
		}
	}
	ccPath := pathGraph(4).ClusteringCoefficient()
	for i := 0; i < 4; i++ {
		if ccPath[node(i)] != 0 {
			t.Fatalf("path CC = %g, want 0", ccPath[node(i)])
		}
	}
}

func TestPageRankUniformOnRegular(t *testing.T) {
	// On a cycle (regular graph), PageRank is uniform.
	n := 8
	adj := make(map[rdf.Term][]rdf.Term)
	for i := 0; i < n; i++ {
		adj[node(i)] = []rdf.Term{node((i + 1) % n), node((i + n - 1) % n)}
	}
	pr := FromAdjacency(adj).PageRank(0.85, 1e-12, 200)
	for i := 0; i < n; i++ {
		if math.Abs(pr[node(i)]-1/float64(n)) > 1e-6 {
			t.Fatalf("PR(node%d) = %g, want %g", i, pr[node(i)], 1/float64(n))
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := barbellGraph()
	pr := g.PageRank(0.85, 1e-10, 200)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sum = %g, want 1", sum)
	}
	// Hub-ish bridge should outrank clique interiors? Not necessarily; just
	// check all positive.
	for n, v := range pr {
		if v <= 0 {
			t.Fatalf("PR(%v) = %g, want > 0", n, v)
		}
	}
}

func TestPageRankEmptyAndDangling(t *testing.T) {
	if pr := FromAdjacency(nil).PageRank(0.85, 1e-9, 50); len(pr) != 0 {
		t.Fatal("PageRank of empty graph must be empty")
	}
	// One isolated node: all mass on it.
	pr := FromAdjacency(map[rdf.Term][]rdf.Term{node(0): nil}).PageRank(0.85, 1e-9, 50)
	if math.Abs(pr[node(0)]-1) > 1e-6 {
		t.Fatalf("single dangling node PR = %g, want 1", pr[node(0)])
	}
}

func TestDiameter(t *testing.T) {
	if d := pathGraph(6).Diameter(); d != 5 {
		t.Fatalf("path diameter = %d, want 5", d)
	}
	if d := starGraph(5).Diameter(); d != 2 {
		t.Fatalf("star diameter = %d, want 2", d)
	}
	if d := FromAdjacency(nil).Diameter(); d != 0 {
		t.Fatalf("empty diameter = %d, want 0", d)
	}
}

func TestDeterministicNodeOrder(t *testing.T) {
	adj := map[rdf.Term][]rdf.Term{
		node(2): {node(1)}, node(1): {node(2), node(0)}, node(0): {node(1)},
	}
	a := FromAdjacency(adj).Nodes()
	b := FromAdjacency(adj).Nodes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("node order must be deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Compare(a[i]) >= 0 {
			t.Fatal("nodes must be sorted")
		}
	}
}

// Brandes consistency property: total betweenness over a connected graph of
// n nodes equals sum over pairs of (number of intermediate nodes on shortest
// paths). Cross-check on paths where the closed form is known:
// sum BC = n(n-1)(n-2)/6 for a path graph.
func TestBetweennessPathClosedFormProperty(t *testing.T) {
	for _, n := range []int{3, 5, 9, 17} {
		bc := pathGraph(n).Betweenness()
		sum := 0.0
		for _, v := range bc {
			sum += v
		}
		want := float64(n*(n-1)*(n-2)) / 6
		if math.Abs(sum-want) > 1e-6 {
			t.Fatalf("n=%d: ΣBC = %g, want %g", n, sum, want)
		}
	}
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(6)
	p := g.BFSPath(node(0), node(4))
	if len(p) != 5 {
		t.Fatalf("path length = %d, want 5 nodes", len(p))
	}
	if p[0] != node(0) || p[4] != node(4) {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	for i := 1; i < len(p); i++ {
		// consecutive path nodes must be adjacent (distance 1)
		d := g.BFSDistances(p[i-1])
		if d[p[i]] != 1 {
			t.Fatalf("path nodes %v and %v not adjacent", p[i-1], p[i])
		}
	}
	if got := g.BFSPath(node(2), node(2)); len(got) != 1 || got[0] != node(2) {
		t.Fatalf("self path = %v", got)
	}
	if g.BFSPath(node(0), node(99)) != nil {
		t.Fatal("unknown destination must yield nil")
	}
	// Disconnected.
	dg := FromAdjacency(map[rdf.Term][]rdf.Term{node(0): nil, node(1): nil})
	if dg.BFSPath(node(0), node(1)) != nil {
		t.Fatal("unreachable destination must yield nil")
	}
}

// bruteForceBetweenness enumerates all shortest paths between every node
// pair by BFS path counting and accumulates pair-dependency fractions — the
// textbook O(n³) definition, used as ground truth.
func bruteForceBetweenness(g *Graph) map[rdf.Term]float64 {
	nodes := g.Nodes()
	out := make(map[rdf.Term]float64, len(nodes))
	for _, n := range nodes {
		out[n] = 0
	}
	for i, s := range nodes {
		// BFS from s: distances and shortest-path counts.
		dist := g.BFSDistances(s)
		sigma := map[rdf.Term]float64{s: 1}
		// Process nodes by increasing distance.
		byDist := map[int][]rdf.Term{}
		maxD := 0
		for n, d := range dist {
			byDist[d] = append(byDist[d], n)
			if d > maxD {
				maxD = d
			}
		}
		for d := 1; d <= maxD; d++ {
			for _, v := range byDist[d] {
				for _, w := range byDist[d-1] {
					if gDist := g.BFSDistances(w); gDist[v] == 1 {
						sigma[v] += sigma[w]
					}
				}
			}
		}
		for j, t := range nodes {
			if j <= i {
				continue
			}
			dt, ok := dist[t]
			if !ok || dt == 0 {
				continue
			}
			// For every intermediate node v on an s-t shortest path:
			// contribution sigma_sv * sigma_vt / sigma_st.
			distT := g.BFSDistances(t)
			for _, v := range nodes {
				if v == s || v == t {
					continue
				}
				dv, ok1 := dist[v]
				dvt, ok2 := distT[v]
				if !ok1 || !ok2 || dv+dvt != dt {
					continue
				}
				// sigma_vt: recompute by BFS from t symmetric counting.
				sigmaT := map[rdf.Term]float64{t: 1}
				byDistT := map[int][]rdf.Term{}
				maxDT := 0
				for n, d := range distT {
					byDistT[d] = append(byDistT[d], n)
					if d > maxDT {
						maxDT = d
					}
				}
				for d := 1; d <= maxDT; d++ {
					for _, x := range byDistT[d] {
						for _, w := range byDistT[d-1] {
							if gd := g.BFSDistances(w); gd[x] == 1 {
								sigmaT[x] += sigmaT[w]
							}
						}
					}
				}
				out[v] += sigma[v] * sigmaT[v] / sigma[t]
			}
		}
	}
	return out
}

// Property: Brandes betweenness matches the brute-force shortest-path
// counting definition on small random graphs.
func TestBetweennessMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(5)
		adj := make(map[rdf.Term][]rdf.Term)
		for i := 0; i < n; i++ {
			adj[node(i)] = nil
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.45 {
					adj[node(i)] = append(adj[node(i)], node(j))
					adj[node(j)] = append(adj[node(j)], node(i))
				}
			}
		}
		g := FromAdjacency(adj)
		fast := g.Betweenness()
		slow := bruteForceBetweenness(g)
		for _, nd := range g.Nodes() {
			if math.Abs(fast[nd]-slow[nd]) > 1e-6 {
				t.Fatalf("trial %d: BC(%v) = %g (Brandes) vs %g (brute force)",
					trial, nd, fast[nd], slow[nd])
			}
		}
	}
}
