package recommend

import (
	"math"
	"math/rand"
	"testing"

	"evorec/internal/profile"
	"evorec/internal/rdf"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// antagonisticGroup: uA loves A-entities, uF loves F-entities — no overlap.
func antagonisticGroup(t *testing.T) *profile.Group {
	t.Helper()
	uA := userWith(map[rdf.Term]float64{term("A"): 1, term("B"): 0.5})
	uA.ID = "uA"
	uF := userWith(map[rdf.Term]float64{term("F"): 1})
	uF.ID = "uF"
	g, err := profile.NewGroup("g", []*profile.Profile{uA, uF})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAggregationStrings(t *testing.T) {
	if Average.String() != "average" || LeastMisery.String() != "least_misery" ||
		MostPleasure.String() != "most_pleasure" {
		t.Fatal("aggregation names wrong")
	}
	if Aggregation(77).String() == "" {
		t.Fatal("unknown aggregation must render")
	}
}

func TestGroupScoreStrategies(t *testing.T) {
	items := testItems()
	g := antagonisticGroup(t)
	countA, _ := itemByID(items, "countA")
	avg := GroupScore(g, countA, Average)
	lm := GroupScore(g, countA, LeastMisery)
	mp := GroupScore(g, countA, MostPleasure)
	// uF has zero relatedness to countA.
	if lm != 0 {
		t.Fatalf("least misery on divisive item = %g, want 0", lm)
	}
	if !(mp > avg && avg > lm) {
		t.Fatalf("want mp > avg > lm, got %g %g %g", mp, avg, lm)
	}
}

func TestGroupTopKLeastMiseryPrefersConsensus(t *testing.T) {
	// Add a compromise item both users like a bit.
	items := append(testItems(),
		mkItem("bridge", 0, map[rdf.Term]float64{term("A"): 0.5, term("F"): 0.5}))
	g := antagonisticGroup(t)
	lm := GroupTopK(g, items, 1, LeastMisery)
	if lm[0].MeasureID != "bridge" {
		t.Fatalf("least misery must pick the consensus item, got %s", lm[0].MeasureID)
	}
}

func TestSatisfactionIdealIsOne(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	ideal := TopK(u, items, 2)
	if got := Satisfaction(u, items, ideal); math.Abs(got-1) > 1e-12 {
		t.Fatalf("satisfaction with ideal selection = %g, want 1", got)
	}
	if got := Satisfaction(u, items, nil); got != 0 {
		t.Fatalf("satisfaction with empty selection = %g, want 0", got)
	}
	// A user with no interests is trivially satisfied.
	empty := profile.New("e")
	if got := Satisfaction(empty, items, ideal); got != 1 {
		t.Fatalf("interest-free satisfaction = %g, want 1", got)
	}
}

func TestMinMeanSatisfaction(t *testing.T) {
	items := testItems()
	g := antagonisticGroup(t)
	// Selection serving only uA.
	selA := []Recommendation{{MeasureID: "countA"}, {MeasureID: "countA2"}}
	min := MinSatisfaction(g, items, selA)
	mean := MeanSatisfaction(g, items, selA)
	if min != 0 {
		t.Fatalf("uF-starving selection min satisfaction = %g, want 0", min)
	}
	if mean <= min {
		t.Fatal("mean must exceed min for an unfair selection")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{0.5, 0.5, 0.5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal satisfactions Jain = %g, want 1", got)
	}
	got := JainIndex([]float64{1, 0})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Jain([1,0]) = %g, want 0.5", got)
	}
	if JainIndex(nil) != 1 || JainIndex([]float64{0, 0}) != 1 {
		t.Fatal("degenerate Jain must be 1")
	}
}

func TestLeastMiseryFairerThanAverageOnAntagonisticGroup(t *testing.T) {
	items := append(testItems(),
		mkItem("bridge", 0, map[rdf.Term]float64{term("A"): 0.4, term("F"): 0.4}))
	g := antagonisticGroup(t)
	selAvg := GroupTopK(g, items, 2, Average)
	selLM := GroupTopK(g, items, 2, LeastMisery)
	minAvg := MinSatisfaction(g, items, selAvg)
	minLM := MinSatisfaction(g, items, selLM)
	if minLM < minAvg {
		t.Fatalf("least misery min-sat (%g) must be >= average min-sat (%g)", minLM, minAvg)
	}
}

func TestFairGreedyRaisesMinSatisfaction(t *testing.T) {
	items := append(testItems(),
		mkItem("bridge", 0, map[rdf.Term]float64{term("A"): 0.4, term("F"): 0.4}))
	g := antagonisticGroup(t)
	utilitarian := FairGreedyTopK(g, items, 2, 0)
	egalitarian := FairGreedyTopK(g, items, 2, 1)
	minU := MinSatisfaction(g, items, utilitarian)
	minE := MinSatisfaction(g, items, egalitarian)
	if minE < minU {
		t.Fatalf("α=1 min-sat (%g) must be >= α=0 min-sat (%g)", minE, minU)
	}
	if minE == 0 {
		t.Fatal("egalitarian selection must serve the worst-off member")
	}
}

func TestFairGreedyDeterministicAndBounded(t *testing.T) {
	items := testItems()
	g := antagonisticGroup(t)
	a := FairGreedyTopK(g, items, 3, 0.5)
	b := FairGreedyTopK(g, items, 3, 0.5)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("selection sizes %d,%d", len(a), len(b))
	}
	for i := range a {
		if a[i].MeasureID != b[i].MeasureID {
			t.Fatal("FairGreedyTopK must be deterministic")
		}
	}
	if got := FairGreedyTopK(g, items, 99, 0.5); len(got) != len(items) {
		t.Fatalf("over-k selection = %d items", len(got))
	}
}

func TestGroupSatisfactionsOrder(t *testing.T) {
	items := testItems()
	g := antagonisticGroup(t)
	sel := []Recommendation{{MeasureID: "countA"}}
	sats := GroupSatisfactions(g, items, sel)
	if len(sats) != 2 {
		t.Fatalf("sats len = %d", len(sats))
	}
	if sats[0] <= sats[1] {
		t.Fatalf("member order: uA (%g) must be more satisfied than uF (%g)", sats[0], sats[1])
	}
}

func TestSortedMeasureIDs(t *testing.T) {
	sel := []Recommendation{{MeasureID: "b"}, {MeasureID: "a"}}
	ids := SortedMeasureIDs(sel)
	if ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("SortedMeasureIDs = %v", ids)
	}
}
