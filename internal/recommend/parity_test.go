package recommend

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"evorec/internal/measures"
	"evorec/internal/profile"
	"evorec/internal/rdf"
)

// The parity suite holds the flat scoring kernel (ItemIndex) bit-identical
// to the map-scored reference functions: same scores, same rankings, same
// explanations, across every TopK variant and aggregation, including the
// edge cases the candidate shortcut must not change — users and items with
// zero norms, NaN weights, interests outside the item vocabulary, and
// wildcard terms.

// parityItems is testItems plus degenerate geometry: an all-zero vector
// (zero norm), a NaN-weighted vector (NaN norm, scores NaN against
// everyone in the reference arithmetic) and an empty vector.
func parityItems() []Item {
	items := testItems()
	items = append(items,
		mkItem("zerovec", measures.CategoryCount, map[rdf.Term]float64{term("A"): 0, term("G"): 0}),
		mkItem("nanvec", measures.CategoryStructural, map[rdf.Term]float64{term("H"): math.NaN(), term("A"): 0.3}),
		mkItem("emptyvec", measures.CategorySemantic, map[rdf.Term]float64{}),
	)
	// Keep BuildItems' contract: sorted by measure ID.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].ID() < items[j-1].ID(); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	return items
}

// parityUsers covers the profile edge cases: plain overlaps, no overlap at
// all (terms outside the item vocabulary), empty interests (zero norm), an
// explicit zero weight, a NaN weight (NaN norm: every item must score NaN,
// so the kernel's full-scan fallback is exercised), and a wildcard term.
func parityUsers() []*profile.Profile {
	mk := func(id string, interests map[rdf.Term]float64) *profile.Profile {
		p := profile.New(id)
		for t, w := range interests {
			p.Interests[t] = w // direct writes: SetInterest clamps the degenerate cases away
		}
		return p
	}
	return []*profile.Profile{
		mk("plain", map[rdf.Term]float64{term("A"): 1, term("B"): 0.5}),
		mk("cross", map[rdf.Term]float64{term("B"): 0.2, term("C"): 0.9, term("F"): 0.4}),
		mk("outside", map[rdf.Term]float64{term("X"): 1, term("Y"): 2}),
		mk("empty", nil),
		mk("zeroweight", map[rdf.Term]float64{term("A"): 0, term("D"): 1}),
		mk("nanweight", map[rdf.Term]float64{term("A"): math.NaN(), term("D"): 1}),
		mk("wildcard", map[rdf.Term]float64{{}: 1, term("A"): 0.5}),
		mk("nanzero", map[rdf.Term]float64{term("H"): 1, term("G"): math.NaN()}),
	}
}

// sameRecs compares recommendation lists bitwise, treating NaN == NaN (the
// point is that both paths produce the same bits, and NaN is a legal score
// for degenerate vectors).
func sameRecs(a, b []Recommendation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].MeasureID != b[i].MeasureID {
			return false
		}
		if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

func TestItemIndexTopKParity(t *testing.T) {
	items := parityItems()
	ix := NewItemIndex(items)
	for _, u := range parityUsers() {
		for k := 1; k <= len(items)+2; k++ {
			want := TopK(u, items, k)
			got := ix.TopK(u, k)
			if !sameRecs(got, want) {
				t.Fatalf("user %s k=%d: flat %v != map %v", u.ID, k, got, want)
			}
		}
	}
}

func TestItemIndexNoveltyParity(t *testing.T) {
	items := parityItems()
	ix := NewItemIndex(items)
	for _, u := range parityUsers() {
		u.MarkSeen("countA")
		u.MarkSeen("countA")
		u.MarkSeen("semD")
		for k := 1; k <= len(items); k++ {
			want := NoveltyTopK(u, items, k)
			got := ix.NoveltyTopK(u, k)
			if !sameRecs(got, want) {
				t.Fatalf("user %s k=%d: flat %v != map %v", u.ID, k, got, want)
			}
		}
	}
}

func TestItemIndexSemanticParity(t *testing.T) {
	items := parityItems()
	ix := NewItemIndex(items)
	for _, u := range parityUsers() {
		for k := 1; k <= len(items); k++ {
			want := SemanticTopK(u, items, k)
			got := ix.SemanticTopK(u, k)
			if !sameRecs(got, want) {
				t.Fatalf("user %s k=%d: flat %v != map %v", u.ID, k, got, want)
			}
		}
	}
}

func TestItemIndexPopularityParity(t *testing.T) {
	items := parityItems()
	ix := NewItemIndex(items)
	for k := 1; k <= len(items); k++ {
		want := PopularityTopK(items, k)
		got := ix.PopularityTopK(k)
		if !sameRecs(got, want) {
			t.Fatalf("k=%d: flat %v != map %v", k, got, want)
		}
	}
}

func TestItemIndexGroupParity(t *testing.T) {
	items := parityItems()
	ix := NewItemIndex(items)
	users := parityUsers()
	groups := [][]*profile.Profile{
		{users[0]},
		{users[0], users[1]},
		{users[0], users[3]},           // member with zero norm
		{users[1], users[5]},           // member with NaN norm: full-scan fallback
		{users[2], users[3]},           // nobody overlaps anything
		{users[0], users[1], users[6]}, // wildcard member
	}
	for gi, members := range groups {
		g, err := profile.NewGroup(fmt.Sprintf("g%d", gi), members)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range []Aggregation{Average, LeastMisery, MostPleasure} {
			for k := 1; k <= len(items); k++ {
				want := GroupTopK(g, items, k, agg)
				got := ix.GroupTopK(g, k, agg)
				if !sameRecs(got, want) {
					t.Fatalf("group %d agg %s k=%d: flat %v != map %v", gi, agg, k, got, want)
				}
			}
		}
	}
}

// TestItemIndexRandomizedParity fuzzes the kernel against the reference
// over random vocabularies, weights and overlap shapes.
func TestItemIndexRandomizedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := make([]rdf.Term, 24)
	for i := range vocab {
		vocab[i] = term(fmt.Sprintf("V%02d", i))
	}
	randVec := func(n int) map[rdf.Term]float64 {
		v := make(map[rdf.Term]float64, n)
		for len(v) < n {
			v[vocab[rng.Intn(len(vocab))]] = rng.Float64() * 2
		}
		return v
	}
	for round := 0; round < 50; round++ {
		nItems := 1 + rng.Intn(8)
		items := make([]Item, 0, nItems)
		for i := 0; i < nItems; i++ {
			items = append(items, mkItem(fmt.Sprintf("m%02d", i),
				measures.Categories()[rng.Intn(len(measures.Categories()))],
				randVec(1+rng.Intn(6))))
		}
		ix := NewItemIndex(items)
		for ui := 0; ui < 8; ui++ {
			u := profile.New(fmt.Sprintf("u%d", ui))
			for t2, w := range randVec(rng.Intn(6)) {
				u.Interests[t2] = w
			}
			k := 1 + rng.Intn(nItems+1)
			if want, got := TopK(u, items, k), ix.TopK(u, k); !sameRecs(got, want) {
				t.Fatalf("round %d user %d k=%d: flat %v != map %v", round, ui, k, got, want)
			}
		}
	}
}

// TestSelectTopKEquivalentToFullSort pins the bounded-heap selection to the
// sort-then-truncate definition, ties included.
func TestSelectTopKEquivalentToFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 200; round++ {
		n := rng.Intn(20)
		items := make([]Item, 0, n)
		scores := make(map[string]float64, n)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("m%03d", i)
			// Coarse grid forces plenty of exact ties.
			scores[id] = float64(rng.Intn(4)) / 3
			items = append(items, mkItem(id, measures.CategoryCount, nil))
		}
		score := func(it Item) float64 { return scores[it.ID()] }
		full := selectTopK(items, n, score)
		for i := 1; i < len(full); i++ {
			if !betterRec(full[i-1], full[i]) {
				t.Fatalf("full ranking out of order at %d: %v", i, full)
			}
		}
		for k := 0; k <= n+1; k++ {
			got := selectTopK(items, k, score)
			want := full
			if k < len(want) {
				want = want[:k]
			}
			if !sameRecs(got, want) {
				t.Fatalf("round %d k=%d: heap %v != sorted %v", round, k, got, want)
			}
		}
	}
}

// TestExplainHeapMatchesReference pins the bounded-heap Explain to its
// previous sort-everything definition.
func TestExplainHeapMatchesReference(t *testing.T) {
	items := parityItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1, term("B"): 0.4, term("D"): 0.4, term("E"): 0.1})
	for _, it := range items {
		// Reference: all contributions, fully sorted.
		var all []Contribution
		for tm, w := range u.Interests {
			s, ok := it.Vector[tm]
			if !ok || s == 0 || w == 0 {
				continue
			}
			all = append(all, Contribution{Term: tm, UserWeight: w, ItemScore: s, Product: w * s})
		}
		full := Explain(u, it, len(all)+3)
		if len(full) != len(all) {
			t.Fatalf("%s: Explain returned %d contributions, want %d", it.ID(), len(full), len(all))
		}
		for i := 1; i < len(full); i++ {
			if !betterContribution(full[i-1], full[i]) {
				t.Fatalf("%s: contributions out of order: %v", it.ID(), full)
			}
		}
		for n := 0; n <= len(all); n++ {
			got := Explain(u, it, n)
			if len(got) != min(n, len(all)) {
				t.Fatalf("%s n=%d: got %d contributions", it.ID(), n, len(got))
			}
			for i := range got {
				if got[i] != full[i] {
					t.Fatalf("%s n=%d: contribution %d = %+v, want %+v", it.ID(), n, i, got[i], full[i])
				}
			}
		}
	}
}

// TestCosineFlatParity pins the flat cosine to CosineVectors bit for bit
// over randomized vectors, including NaN weights and disjoint supports.
func TestCosineFlatParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vocab := make([]rdf.Term, 16)
	for i := range vocab {
		vocab[i] = term(fmt.Sprintf("W%02d", i))
	}
	randVec := func() map[rdf.Term]float64 {
		v := make(map[rdf.Term]float64)
		for i := 0; i < rng.Intn(8); i++ {
			w := rng.Float64()
			switch rng.Intn(10) {
			case 0:
				w = 0
			case 1:
				w = math.NaN()
			}
			v[vocab[rng.Intn(len(vocab))]] = w
		}
		return v
	}
	for round := 0; round < 500; round++ {
		a, b := randVec(), randVec()
		dict := rdf.NewDict()
		var fa, fb profile.Flat
		fa.Compile(a, dict, true, nil)
		fb.Compile(b, dict, true, nil)
		want := profile.CosineVectors(a, b)
		got := profile.CosineFlat(&fa, &fb)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("round %d: CosineFlat = %v (%x), CosineVectors = %v (%x)\na=%v\nb=%v",
				round, got, math.Float64bits(got), want, math.Float64bits(want), a, b)
		}
		// The request-path shape: b interned into a fresh dictionary, a
		// compiled lookup-only against it. a's unresolved terms cannot
		// match b but still scale the norm, so the score must not move.
		lookupDict := rdf.NewDict()
		var lb, la profile.Flat
		lb.Compile(b, lookupDict, true, nil)
		la.Compile(a, lookupDict, false, nil)
		got = profile.CosineFlat(&la, &lb)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("round %d: lookup-only CosineFlat = %v, want %v\na=%v\nb=%v",
				round, got, want, a, b)
		}
	}
}
