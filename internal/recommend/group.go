package recommend

import (
	"fmt"
	"sort"

	"evorec/internal/profile"
)

// Aggregation selects how individual member scores combine into a group
// score (§III-d).
type Aggregation uint8

const (
	// Average maximizes mean member relatedness; the utilitarian strategy.
	Average Aggregation = iota
	// LeastMisery scores each item by its least-satisfied member; the
	// egalitarian strategy the paper's fairness discussion motivates.
	LeastMisery
	// MostPleasure scores each item by its most-satisfied member.
	MostPleasure
)

// String names the aggregation strategy.
func (a Aggregation) String() string {
	switch a {
	case Average:
		return "average"
	case LeastMisery:
		return "least_misery"
	case MostPleasure:
		return "most_pleasure"
	default:
		return fmt.Sprintf("aggregation(%d)", uint8(a))
	}
}

// GroupScore aggregates the members' relatedness for one item.
func GroupScore(g *profile.Group, it Item, agg Aggregation) float64 {
	switch agg {
	case LeastMisery:
		min := 0.0
		for i, m := range g.Members {
			r := Relatedness(m, it)
			if i == 0 || r < min {
				min = r
			}
		}
		return min
	case MostPleasure:
		max := 0.0
		for _, m := range g.Members {
			if r := Relatedness(m, it); r > max {
				max = r
			}
		}
		return max
	default: // Average
		sum := 0.0
		for _, m := range g.Members {
			sum += Relatedness(m, it)
		}
		return sum / float64(g.Size())
	}
}

// GroupTopK recommends k measures to the group under the given aggregation.
// ItemIndex.GroupTopK is the flat-kernel form.
func GroupTopK(g *profile.Group, items []Item, k int, agg Aggregation) []Recommendation {
	return selectTopK(items, k, func(it Item) float64 { return GroupScore(g, it, agg) })
}

// Satisfaction is the normalized satisfaction of one member with a
// selection: the member's total relatedness over the selected items divided
// by the total relatedness of the member's personal ideal selection of the
// same size. It is 1 when the group selection is as good as the personal
// one, and 1 by convention when the member has no interests at all.
func Satisfaction(u *profile.Profile, items []Item, sel []Recommendation) float64 {
	if len(sel) == 0 {
		return 0
	}
	got := 0.0
	for _, s := range sel {
		if it, ok := itemByID(items, s.MeasureID); ok {
			got += Relatedness(u, it)
		}
	}
	ideal := 0.0
	for _, r := range TopK(u, items, len(sel)) {
		ideal += r.Score
	}
	if ideal == 0 {
		return 1
	}
	return got / ideal
}

// GroupSatisfactions returns every member's satisfaction with the selection,
// in member order.
func GroupSatisfactions(g *profile.Group, items []Item, sel []Recommendation) []float64 {
	out := make([]float64, g.Size())
	for i, m := range g.Members {
		out[i] = Satisfaction(m, items, sel)
	}
	return out
}

// MinSatisfaction is the fairness headline number (§III-d): the satisfaction
// of the least-satisfied group member. A selection with high mean but low
// minimum is exactly the "package not fair to u" situation the paper warns
// about.
func MinSatisfaction(g *profile.Group, items []Item, sel []Recommendation) float64 {
	sats := GroupSatisfactions(g, items, sel)
	min := sats[0]
	for _, s := range sats[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// MeanSatisfaction is the utilitarian counterpart of MinSatisfaction.
func MeanSatisfaction(g *profile.Group, items []Item, sel []Recommendation) float64 {
	sats := GroupSatisfactions(g, items, sel)
	sum := 0.0
	for _, s := range sats {
		sum += s
	}
	return sum / float64(len(sats))
}

// JainIndex is Jain's fairness index over the member satisfactions:
// (Σx)² / (n·Σx²) ∈ [1/n, 1], equal to 1 iff all members are equally
// satisfied. All-zero satisfaction vectors return 1 (degenerate equality).
func JainIndex(sats []float64) float64 {
	if len(sats) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, s := range sats {
		sum += s
		sumSq += s * s
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(sats)) * sumSq)
}

// FairGreedyTopK builds the selection item by item, each step picking the
// item that maximizes
//
//	(1−α)·groupAverageRelatedness + α·relatednessToLeastSatisfiedMember
//
// where the least-satisfied member is recomputed after every pick. α=0 is
// the plain utilitarian greedy; α=1 always serves the currently
// worst-off member (the egalitarian extreme). This is the fairness-aware
// re-ranking evaluated in E7.
func FairGreedyTopK(g *profile.Group, items []Item, k int, alpha float64) []Recommendation {
	if k > len(items) {
		k = len(items)
	}
	var sel []Recommendation
	used := make(map[string]bool, k)
	for len(sel) < k {
		// Identify the member least satisfied by the current selection.
		worst := g.Members[0]
		if len(sel) > 0 {
			sats := GroupSatisfactions(g, items, sel)
			wi := 0
			for i, s := range sats {
				if s < sats[wi] {
					wi = i
				}
			}
			worst = g.Members[wi]
		}
		bestIdx := -1
		bestScore := 0.0
		for i, it := range items {
			if used[it.ID()] {
				continue
			}
			score := (1-alpha)*GroupScore(g, it, Average) + alpha*Relatedness(worst, it)
			if bestIdx < 0 || score > bestScore ||
				(score == bestScore && it.ID() < items[bestIdx].ID()) {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx < 0 {
			break
		}
		used[items[bestIdx].ID()] = true
		sel = append(sel, Recommendation{MeasureID: items[bestIdx].ID(), Score: bestScore})
	}
	return sel
}

// SortedMeasureIDs extracts the measure IDs of a selection in sorted order,
// for stable reporting.
func SortedMeasureIDs(sel []Recommendation) []string {
	out := make([]string, len(sel))
	for i, s := range sel {
		out[i] = s.MeasureID
	}
	sort.Strings(out)
	return out
}
