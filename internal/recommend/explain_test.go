package recommend

import (
	"math"
	"strings"
	"testing"

	"evorec/internal/rdf"
)

func TestExplainRanksByContribution(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1, term("B"): 0.2})
	cs := Explain(u, items[0], 5) // countA: {A:1, B:0.4}
	if len(cs) != 2 {
		t.Fatalf("contributions = %d, want 2", len(cs))
	}
	if cs[0].Term != term("A") || cs[1].Term != term("B") {
		t.Fatalf("order = %v", cs)
	}
	if math.Abs(cs[0].Product-1) > 1e-12 || math.Abs(cs[1].Product-0.08) > 1e-12 {
		t.Fatalf("products = %g, %g", cs[0].Product, cs[1].Product)
	}
	// Contributions sum to the unnormalized dot product, which correlates
	// with relatedness: a sanity link between explanation and score.
	dot := cs[0].Product + cs[1].Product
	if dot <= 0 {
		t.Fatal("explained dot product must be positive for a related item")
	}
}

func TestExplainTruncatesAndTies(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1, term("B"): 1})
	cs := Explain(u, items[0], 1)
	if len(cs) != 1 || cs[0].Term != term("A") {
		t.Fatalf("truncation wrong: %v", cs)
	}
	// No overlap: empty explanation.
	stranger := userWith(map[rdf.Term]float64{term("Z"): 1})
	if got := Explain(stranger, items[0], 3); len(got) != 0 {
		t.Fatalf("unrelated explanation = %v, want empty", got)
	}
}

func TestExplainText(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	text := ExplainText(u, items[0], 2)
	for _, want := range []string{"countA", "A", "interest 1.00"} {
		if !strings.Contains(text, want) {
			t.Fatalf("explanation %q missing %q", text, want)
		}
	}
	stranger := userWith(map[rdf.Term]float64{term("Z"): 1})
	if !strings.Contains(ExplainText(stranger, items[0], 2), "does not overlap") {
		t.Fatal("unrelated explanation must say so")
	}
}
