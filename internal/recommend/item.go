// Package recommend implements the paper's human-aware processing model
// (§III): it turns evaluated evolution measures into recommendable items and
// ranks them for users and groups under the five perspectives the paper
// names — relatedness (§III-a), diversity (§III-c), fairness (§III-d) and
// anonymity (§III-e); transparency (§III-b) is provided by the provenance
// package, which records how each recommendation was produced.
package recommend

import (
	"sort"
	"sync"

	"evorec/internal/measures"
	"evorec/internal/profile"
	"evorec/internal/rdf"
)

// Item is one recommendable evolution measure together with its evaluation
// on a concrete version pair. The normalized score vector is the item's
// "content": it says which entities the measure highlights, and relatedness
// matches it against user interests.
type Item struct {
	// Measure is the underlying measure.
	Measure measures.Measure
	// Scores holds the raw measure output over entities.
	Scores measures.Scores
	// Vector is the max-normalized score vector used for matching.
	Vector map[rdf.Term]float64
}

// ID returns the measure ID the item wraps.
func (it Item) ID() string { return it.Measure.ID() }

// Category returns the measure's viewpoint category.
func (it Item) Category() measures.Category { return it.Measure.Category() }

// BuildItems evaluates every measure of the registry on the context and
// wraps the results as items, sorted by measure ID.
func BuildItems(ctx *measures.Context, reg *measures.Registry) []Item {
	ms := reg.All()
	out := make([]Item, 0, len(ms))
	for _, m := range ms {
		s := m.Compute(ctx)
		out = append(out, Item{
			Measure: m,
			Scores:  s,
			Vector:  map[rdf.Term]float64(s.Normalize()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// BuildItemsParallel is BuildItems with measures evaluated concurrently.
// The Context's derived structures are immutable after construction and the
// graph supports concurrent reads, so measures are embarrassingly parallel;
// on multi-core machines this cuts the per-pair evaluation latency to
// roughly the slowest single measure. The result is identical to
// BuildItems (sorted by measure ID).
func BuildItemsParallel(ctx *measures.Context, reg *measures.Registry) []Item {
	ms := reg.All()
	out := make([]Item, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		wg.Add(1)
		go func(i int, m measures.Measure) {
			defer wg.Done()
			s := m.Compute(ctx)
			out[i] = Item{
				Measure: m,
				Scores:  s,
				Vector:  map[rdf.Term]float64(s.Normalize()),
			}
		}(i, m)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Relatedness scores how related an item is to a user (§III-a): the cosine
// similarity between the user's interest vector and the item's normalized
// entity-score vector. The result is in [0, 1] for non-negative vectors.
func Relatedness(u *profile.Profile, it Item) float64 {
	return u.Cosine(it.Vector)
}

// Recommendation is one ranked item.
type Recommendation struct {
	// MeasureID identifies the recommended measure.
	MeasureID string
	// Score is the value the ranking was computed under (meaning depends on
	// the recommender: relatedness, MMR score, group utility, ...).
	Score float64
}

// TopK returns the k measures most related to the user.
//
// This is the reference (map-scored) path, kept for ad-hoc item slices and
// as the oracle the parity suite holds the kernel to; served traffic goes
// through ItemIndex.TopK, which produces bit-identical results from flat
// vectors. Selection is shared: both pick k through the same bounded heap
// under the same total order.
func TopK(u *profile.Profile, items []Item, k int) []Recommendation {
	return selectTopK(items, k, func(it Item) float64 { return Relatedness(u, it) })
}

// itemByID returns the item with the given measure ID.
func itemByID(items []Item, id string) (Item, bool) {
	for _, it := range items {
		if it.ID() == id {
			return it, true
		}
	}
	return Item{}, false
}
