package recommend

import (
	"math"
	"slices"
)

// betterRec is the canonical recommendation order every selector in this
// package ranks under: higher score first, ties broken by ascending measure
// ID, NaN scores last. Measure IDs are unique within an item set, so this
// is a total order — which is what makes bounded-heap selection return
// exactly what sorting the full list and truncating would.
func betterRec(a, b Recommendation) bool {
	if a.Score > b.Score {
		return true
	}
	if b.Score > a.Score {
		return false
	}
	if an, bn := math.IsNaN(a.Score), math.IsNaN(b.Score); an != bn {
		return bn
	}
	return a.MeasureID < b.MeasureID
}

// betterContribution orders explanation contributions: larger product
// first, ties broken by term order, NaN products last.
func betterContribution(a, b Contribution) bool {
	if a.Product > b.Product {
		return true
	}
	if b.Product > a.Product {
		return false
	}
	if an, bn := math.IsNaN(a.Product), math.IsNaN(b.Product); an != bn {
		return bn
	}
	return a.Term.Compare(b.Term) < 0
}

// bounded is a bounded top-k selector: a size-k min-heap holding the k best
// elements seen so far with the worst at the root, so each offer beyond the
// k-th costs one comparison against the current cutoff and O(log k) on
// admission. take sorts just the k survivors. Under a total order the
// result is exactly sort-everything-then-truncate, without materializing or
// sorting the full candidate list.
type bounded[T any] struct {
	better func(a, b T) bool
	xs     []T
	k      int
}

// newBounded returns a selector for the k best elements under better.
func newBounded[T any](k int, better func(a, b T) bool) bounded[T] {
	if k < 0 {
		k = 0
	}
	cap := k
	if cap > 16 {
		cap = 16 // grown on demand; callers may pass k ≫ the element count
	}
	return bounded[T]{better: better, xs: make([]T, 0, cap), k: k}
}

// offer considers one element for the top k.
func (h *bounded[T]) offer(x T) {
	if h.k == 0 {
		return
	}
	if len(h.xs) < h.k {
		h.xs = append(h.xs, x)
		h.up(len(h.xs) - 1)
		return
	}
	if !h.better(x, h.xs[0]) {
		return
	}
	h.xs[0] = x
	h.down(0)
}

// take returns the selected elements best-first. The heap is consumed.
func (h *bounded[T]) take() []T {
	if len(h.xs) == 0 {
		return nil
	}
	slices.SortFunc(h.xs, func(a, b T) int {
		switch {
		case h.better(a, b):
			return -1
		case h.better(b, a):
			return 1
		default:
			return 0
		}
	})
	return h.xs
}

func (h *bounded[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.better(h.xs[p], h.xs[i]) {
			return
		}
		h.xs[p], h.xs[i] = h.xs[i], h.xs[p]
		i = p
	}
}

func (h *bounded[T]) down(i int) {
	for {
		w := i
		if l := 2*i + 1; l < len(h.xs) && h.better(h.xs[w], h.xs[l]) {
			w = l
		}
		if r := 2*i + 2; r < len(h.xs) && h.better(h.xs[w], h.xs[r]) {
			w = r
		}
		if w == i {
			return
		}
		h.xs[i], h.xs[w] = h.xs[w], h.xs[i]
		i = w
	}
}

// selectTopK scores every item and returns the k best recommendations in
// the canonical order — the shared selection step of every TopK variant,
// replacing the old score-everything-then-sort.Slice path.
func selectTopK(items []Item, k int, score func(Item) float64) []Recommendation {
	if k > len(items) {
		k = len(items)
	}
	h := newBounded(k, betterRec)
	for _, it := range items {
		h.offer(Recommendation{MeasureID: it.ID(), Score: score(it)})
	}
	return h.take()
}
