package recommend

import (
	"math"
	"testing"

	"evorec/internal/profile"
	"evorec/internal/rdf"
)

func TestIsCovered(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	// u's top-2: countA, countA2.
	selGood := []Recommendation{{MeasureID: "countA"}, {MeasureID: "semF"}}
	if !IsCovered(u, items, selGood, 1, 2) {
		t.Fatal("selection containing a top-2 item must cover with m=1")
	}
	if IsCovered(u, items, selGood, 2, 2) {
		t.Fatal("one hit must not satisfy m=2")
	}
	selBad := []Recommendation{{MeasureID: "semF"}, {MeasureID: "semD"}}
	if IsCovered(u, items, selBad, 1, 2) {
		t.Fatal("selection missing the user's top-2 must not cover")
	}
	if !IsCovered(u, items, nil, 0, 2) {
		t.Fatal("m=0 must trivially cover")
	}
}

func TestProportionality(t *testing.T) {
	items := testItems()
	g := antagonisticGroup(t) // uA likes A-items, uF likes F-items
	// Selection serving only uA.
	selA := []Recommendation{{MeasureID: "countA"}, {MeasureID: "countA2"}}
	if got := Proportionality(g, items, selA, 1, 2); got != 0.5 {
		t.Fatalf("one-sided proportionality = %g, want 0.5", got)
	}
	// Selection with one item for each member.
	selBoth := []Recommendation{{MeasureID: "countA"}, {MeasureID: "semF"}}
	if got := Proportionality(g, items, selBoth, 1, 2); got != 1 {
		t.Fatalf("balanced proportionality = %g, want 1", got)
	}
}

func TestEnvySpread(t *testing.T) {
	items := testItems()
	g := antagonisticGroup(t)
	selA := []Recommendation{{MeasureID: "countA"}, {MeasureID: "countA2"}}
	spread := EnvySpread(g, items, selA)
	if spread <= 0 {
		t.Fatalf("one-sided selection must have positive envy spread, got %g", spread)
	}
	// A selection serving both sides shrinks the spread.
	selBoth := []Recommendation{{MeasureID: "countA"}, {MeasureID: "semF"}}
	if EnvySpread(g, items, selBoth) >= spread {
		t.Fatal("balanced selection must reduce envy spread")
	}
	// Identical members: zero spread.
	twin1 := userWith(map[rdf.Term]float64{term("A"): 1})
	twin2 := userWith(map[rdf.Term]float64{term("A"): 1})
	twin2.ID = "twin2"
	twins, err := profile.NewGroup("twins", []*profile.Profile{twin1, twin2})
	if err != nil {
		t.Fatal(err)
	}
	if got := EnvySpread(twins, items, selA); math.Abs(got) > 1e-12 {
		t.Fatalf("identical members envy spread = %g, want 0", got)
	}
}
