package recommend

import (
	"testing"

	"evorec/internal/measures"
	"evorec/internal/profile"
	"evorec/internal/rdf"
)

// stubMeasure lets tests construct items with controlled IDs and categories.
type stubMeasure struct {
	id  string
	cat measures.Category
}

func (m stubMeasure) ID() string                  { return m.id }
func (m stubMeasure) Name() string                { return m.id }
func (m stubMeasure) Description() string         { return "stub" }
func (m stubMeasure) Target() measures.Target     { return measures.Classes }
func (m stubMeasure) Category() measures.Category { return m.cat }
func (m stubMeasure) Compute(*measures.Context) measures.Scores {
	return nil
}

func term(s string) rdf.Term { return rdf.SchemaIRI(s) }

func mkItem(id string, cat measures.Category, vec map[rdf.Term]float64) Item {
	s := measures.Scores{}
	for t, v := range vec {
		s[t] = v
	}
	return Item{Measure: stubMeasure{id: id, cat: cat}, Scores: s, Vector: vec}
}

// testItems builds five items with known geometry:
//
//	countA, countA2 — near-duplicates highlighting entity A (count category)
//	structC         — highlights C (structural)
//	semD, semF      — highlight D and F (semantic)
func testItems() []Item {
	return []Item{
		mkItem("countA", measures.CategoryCount, map[rdf.Term]float64{term("A"): 1, term("B"): 0.4}),
		mkItem("countA2", measures.CategoryCount, map[rdf.Term]float64{term("A"): 0.9, term("B"): 0.5}),
		mkItem("structC", measures.CategoryStructural, map[rdf.Term]float64{term("C"): 1}),
		mkItem("semD", measures.CategorySemantic, map[rdf.Term]float64{term("D"): 1, term("E"): 0.2}),
		mkItem("semF", measures.CategorySemantic, map[rdf.Term]float64{term("F"): 1}),
	}
}

func userWith(interests map[rdf.Term]float64) *profile.Profile {
	p := profile.New("u")
	for t, w := range interests {
		p.SetInterest(t, w)
	}
	return p
}

func TestRelatednessMatchesInterests(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	relA := Relatedness(u, items[0])
	relC := Relatedness(u, items[2])
	if relA <= relC {
		t.Fatalf("user interested in A: rel(countA)=%g must exceed rel(structC)=%g", relA, relC)
	}
	if relA < 0 || relA > 1 {
		t.Fatalf("relatedness out of range: %g", relA)
	}
}

func TestTopKOrderingAndTruncation(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	top := TopK(u, items, 2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) len = %d", len(top))
	}
	if top[0].MeasureID != "countA" {
		t.Fatalf("top item = %s, want countA", top[0].MeasureID)
	}
	if top[0].Score < top[1].Score {
		t.Fatal("TopK must be sorted descending")
	}
	all := TopK(u, items, 99)
	if len(all) != len(items) {
		t.Fatalf("TopK over len = %d", len(all))
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	items := testItems()
	u := profile.New("empty") // zero interests: all relatedness 0, tie on ID
	a := TopK(u, items, len(items))
	b := TopK(u, items, len(items))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopK must be deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].MeasureID >= a[i].MeasureID {
			t.Fatal("ties must break by measure ID")
		}
	}
}

func TestRandomTopKBaseline(t *testing.T) {
	items := testItems()
	rng := newRng(7)
	sel := RandomTopK(items, 3, rng)
	if len(sel) != 3 {
		t.Fatalf("RandomTopK len = %d", len(sel))
	}
	seen := map[string]bool{}
	for _, s := range sel {
		if seen[s.MeasureID] {
			t.Fatal("RandomTopK must sample without replacement")
		}
		seen[s.MeasureID] = true
	}
	if got := RandomTopK(items, 99, rng); len(got) != len(items) {
		t.Fatalf("RandomTopK over len = %d", len(got))
	}
}

func TestPopularityTopKBaseline(t *testing.T) {
	items := testItems()
	sel := PopularityTopK(items, len(items))
	// countA2 has total 1.4, countA 1.4, semD 1.2, structC 1, semF 1.
	if sel[0].Score < sel[len(sel)-1].Score {
		t.Fatal("PopularityTopK must be sorted descending")
	}
	if len(PopularityTopK(items, 2)) != 2 {
		t.Fatal("PopularityTopK must truncate")
	}
}

func TestItemDistanceGeometry(t *testing.T) {
	items := testItems()
	dupDist := ItemDistance(items[0], items[1]) // countA vs countA2: close
	farDist := ItemDistance(items[0], items[2]) // countA vs structC: orthogonal
	if dupDist >= farDist {
		t.Fatalf("near-duplicates (%g) must be closer than orthogonal items (%g)", dupDist, farDist)
	}
	if ItemDistance(items[0], items[0]) > 1e-12 {
		t.Fatal("self distance must be 0")
	}
	if farDist < 1-1e-12 || farDist > 1+1e-12 {
		t.Fatalf("orthogonal distance = %g, want 1", farDist)
	}
}

func TestMMRLambdaOneIsPureRelevance(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1, term("D"): 0.5})
	mmr := MMR(u, items, 3, 1.0)
	top := TopK(u, items, 3)
	for i := range mmr {
		if mmr[i].MeasureID != top[i].MeasureID {
			t.Fatalf("MMR(λ=1) diverged from TopK at %d: %s vs %s",
				i, mmr[i].MeasureID, top[i].MeasureID)
		}
	}
}

func TestMMRLowLambdaAvoidsDuplicates(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	// Pure relevance picks both near-duplicates first.
	rel := TopK(u, items, 2)
	if rel[0].MeasureID != "countA" || rel[1].MeasureID != "countA2" {
		t.Fatalf("fixture assumption broken: %v", rel)
	}
	div := MMR(u, items, 2, 0.2)
	if div[0].MeasureID == "countA" && div[1].MeasureID == "countA2" {
		t.Fatal("MMR(λ=0.2) must not select both near-duplicates")
	}
}

func TestMMRDiversityMonotoneInLambda(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1, term("B"): 0.3})
	ildHigh := IntraListDiversity(items, MMR(u, items, 3, 0.1))
	ildLow := IntraListDiversity(items, MMR(u, items, 3, 1.0))
	if ildHigh < ildLow {
		t.Fatalf("lower λ must not reduce diversity: ild(0.1)=%g < ild(1)=%g", ildHigh, ildLow)
	}
}

func TestMaxMinSpreadsSelection(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	sel := MaxMin(u, items, 3)
	if sel[0].MeasureID != "countA" {
		t.Fatalf("MaxMin must seed with most related item, got %s", sel[0].MeasureID)
	}
	ids := map[string]bool{}
	for _, s := range sel {
		ids[s.MeasureID] = true
	}
	if ids["countA"] && ids["countA2"] {
		t.Fatal("MaxMin must not pick both near-duplicates in a 3-of-5 selection")
	}
	if len(MaxMin(u, nil, 3)) != 0 {
		t.Fatal("MaxMin on empty items must be empty")
	}
}

func TestNoveltyDecay(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	if Novelty(u, items[0]) != 1 {
		t.Fatal("unseen item must have novelty 1")
	}
	u.MarkSeen("countA")
	if got := Novelty(u, items[0]); got != 0.5 {
		t.Fatalf("novelty after one view = %g, want 0.5", got)
	}
}

func TestNoveltyTopKDemotesSeen(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	before := NoveltyTopK(u, items, 1)
	if before[0].MeasureID != "countA" {
		t.Fatalf("fixture: first pick should be countA, got %s", before[0].MeasureID)
	}
	u.MarkSeen("countA")
	u.MarkSeen("countA")
	after := NoveltyTopK(u, items, 1)
	if after[0].MeasureID == "countA" {
		t.Fatal("repeatedly seen measure must be demoted")
	}
}

func TestSemanticTopKCoversCategories(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1, term("C"): 0.5, term("D"): 0.4})
	sel := SemanticTopK(u, items, 3)
	if got := CategoryCoverage(items, sel); got != 1 {
		t.Fatalf("semantic top-3 must cover all 3 categories, coverage=%g sel=%v", got, sel)
	}
	// Plain TopK for this A-heavy user covers fewer categories at k=2.
	sel2 := SemanticTopK(u, items, 5)
	if len(sel2) != 5 {
		t.Fatalf("SemanticTopK must fill k when possible, got %d", len(sel2))
	}
}

func TestCategoryCoverageAndILDEdgeCases(t *testing.T) {
	items := testItems()
	if got := CategoryCoverage(items, nil); got != 0 {
		t.Fatalf("empty coverage = %g", got)
	}
	if got := IntraListDiversity(items, nil); got != 0 {
		t.Fatalf("empty ILD = %g", got)
	}
	one := []Recommendation{{MeasureID: "countA"}}
	if got := IntraListDiversity(items, one); got != 0 {
		t.Fatalf("singleton ILD = %g", got)
	}
}

func TestMeanRelatedness(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	sel := TopK(u, items, 2)
	mr := MeanRelatedness(u, items, sel)
	if mr <= 0 || mr > 1 {
		t.Fatalf("mean relatedness = %g", mr)
	}
	if MeanRelatedness(u, items, nil) != 0 {
		t.Fatal("empty selection mean relatedness must be 0")
	}
}

func TestBuildItemsParallelMatchesSequential(t *testing.T) {
	// Build a real context so all measures run.
	g1 := rdf.NewGraph()
	a, b := term("PA"), term("PB")
	p := term("pp")
	g1.Add(rdf.T(a, rdf.RDFType, rdf.RDFSClass))
	g1.Add(rdf.T(b, rdf.RDFSSubClassOf, a))
	g1.Add(rdf.T(p, rdf.RDFSDomain, a))
	g1.Add(rdf.T(p, rdf.RDFSRange, b))
	g1.Add(rdf.T(rdf.ResourceIRI("x"), rdf.RDFType, a))
	g2 := g1.Clone()
	g2.Add(rdf.T(rdf.ResourceIRI("y"), rdf.RDFType, b))
	g2.Add(rdf.T(rdf.ResourceIRI("x"), p, rdf.ResourceIRI("y")))

	ctx := measures.NewContext(
		&rdf.Version{ID: "v1", Graph: g1},
		&rdf.Version{ID: "v2", Graph: g2},
	)
	reg := measures.NewExtendedRegistry()
	seq := BuildItems(ctx, reg)
	par := BuildItemsParallel(ctx, reg)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID() != par[i].ID() {
			t.Fatalf("order differs at %d: %s vs %s", i, seq[i].ID(), par[i].ID())
		}
		for tm, v := range seq[i].Scores {
			if par[i].Scores[tm] != v {
				t.Fatalf("scores differ for %s at %v", seq[i].ID(), tm)
			}
		}
	}
}

func TestBuildItemsParallelRace(t *testing.T) {
	// Exercised under -race in CI: many concurrent builds over one context.
	g := rdf.NewGraph()
	c := term("RC")
	g.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
	ctx := measures.NewContext(
		&rdf.Version{ID: "v1", Graph: g},
		&rdf.Version{ID: "v2", Graph: g.Clone()},
	)
	reg := measures.NewRegistry()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			BuildItemsParallel(ctx, reg)
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}
