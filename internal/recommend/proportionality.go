package recommend

import (
	"evorec/internal/profile"
)

// Additional group-fairness diagnostics (§III-d). MinSatisfaction and
// JainIndex (group.go) measure how the selection's utility distributes;
// the metrics here answer set-oriented fairness questions: does every
// member find *enough of their own* items in the package, and how far
// apart are the best- and worst-served members.

// IsCovered reports whether at least m of the selected measures appear in
// the user's personal top-delta ranking — the per-user coverage predicate
// of package-to-group proportionality.
func IsCovered(u *profile.Profile, items []Item, sel []Recommendation, m, delta int) bool {
	if m <= 0 {
		return true
	}
	top := make(map[string]bool, delta)
	for _, r := range TopK(u, items, delta) {
		// Zero-relatedness entries only pad the ranking; they are not items
		// the user would recognize as theirs.
		if r.Score > 0 {
			top[r.MeasureID] = true
		}
	}
	hits := 0
	for _, s := range sel {
		if top[s.MeasureID] {
			hits++
			if hits >= m {
				return true
			}
		}
	}
	return false
}

// Proportionality is the fraction of group members covered by the
// selection under the (m, delta) predicate. A selection with
// proportionality 1 gives every member at least m personally-relevant
// measures; the paper's "package not fair to u" pathology shows up as
// proportionality below 1.
func Proportionality(g *profile.Group, items []Item, sel []Recommendation, m, delta int) float64 {
	if g.Size() == 0 {
		return 1
	}
	covered := 0
	for _, u := range g.Members {
		if IsCovered(u, items, sel, m, delta) {
			covered++
		}
	}
	return float64(covered) / float64(g.Size())
}

// EnvySpread is the satisfaction gap between the best- and worst-served
// members: 0 means the package serves everyone equally (envy-free in the
// satisfaction sense), larger values mean some member has grounds to envy
// another's treatment.
func EnvySpread(g *profile.Group, items []Item, sel []Recommendation) float64 {
	sats := GroupSatisfactions(g, items, sel)
	min, max := sats[0], sats[0]
	for _, s := range sats[1:] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return max - min
}
