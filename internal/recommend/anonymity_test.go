package recommend

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"evorec/internal/profile"
)

// clusteredPool builds n profiles in two well-separated interest clusters.
func clusteredPool(n int) []*profile.Profile {
	pool := make([]*profile.Profile, n)
	for i := range pool {
		p := profile.New(fmt.Sprintf("u%02d", i))
		if i%2 == 0 {
			p.SetInterest(term("A"), 1+float64(i)*0.01)
			p.SetInterest(term("B"), 0.5)
		} else {
			p.SetInterest(term("X"), 1+float64(i)*0.01)
			p.SetInterest(term("Y"), 0.5)
		}
		pool[i] = p
	}
	return pool
}

func TestKAnonymizeGroupSizes(t *testing.T) {
	pool := clusteredPool(10)
	for _, k := range []int{1, 2, 3, 4} {
		anon, groups, err := KAnonymize(pool, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(anon) != len(pool) {
			t.Fatalf("k=%d: anonymized pool size %d", k, len(anon))
		}
		covered := 0
		for _, g := range groups {
			if len(g) < k {
				t.Fatalf("k=%d: group of size %d violates k-anonymity", k, len(g))
			}
			covered += len(g)
		}
		if covered != len(pool) {
			t.Fatalf("k=%d: groups cover %d of %d profiles", k, covered, len(pool))
		}
	}
}

func TestKAnonymizeMembersShareCentroid(t *testing.T) {
	pool := clusteredPool(8)
	anon, groups, err := KAnonymize(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		first := anon[g[0]]
		for _, idx := range g[1:] {
			if profile.CosineVectors(first.Interests, anon[idx].Interests) < 1-1e-9 {
				t.Fatal("group members must share an identical published vector")
			}
			if len(first.Interests) != len(anon[idx].Interests) {
				t.Fatal("group members must share the same support")
			}
		}
	}
	// IDs preserved.
	for i := range pool {
		if anon[i].ID != pool[i].ID {
			t.Fatal("anonymized profiles must keep their index-aligned IDs")
		}
	}
}

func TestKAnonymizeClustersLikeWithLike(t *testing.T) {
	pool := clusteredPool(8)
	_, groups, err := KAnonymize(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With two clean clusters and k=2, no group should mix clusters (greedy
	// nearest-neighbor grouping keeps clusters pure here).
	for _, g := range groups {
		hasA, hasX := false, false
		for _, idx := range g {
			if _, ok := pool[idx].Interests[term("A")]; ok {
				hasA = true
			}
			if _, ok := pool[idx].Interests[term("X")]; ok {
				hasX = true
			}
		}
		if hasA && hasX {
			t.Fatalf("group %v mixes clusters", g)
		}
	}
}

func TestKAnonymizeErrors(t *testing.T) {
	pool := clusteredPool(3)
	if _, _, err := KAnonymize(pool, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, _, err := KAnonymize(pool, 4); err == nil {
		t.Fatal("k > pool must fail")
	}
}

func TestReidentificationRiskIdentityPublication(t *testing.T) {
	pool := clusteredPool(6)
	// Publishing the originals re-identifies everyone (all distinct).
	if got := ReidentificationRisk(pool, pool); got != 1 {
		t.Fatalf("identity publication risk = %g, want 1", got)
	}
}

func TestReidentificationRiskDropsWithK(t *testing.T) {
	pool := clusteredPool(12)
	risks := make([]float64, 0, 3)
	for _, k := range []int{1, 3, 6} {
		anon, _, err := KAnonymize(pool, k)
		if err != nil {
			t.Fatal(err)
		}
		risks = append(risks, ReidentificationRisk(pool, anon))
	}
	// k=1 keeps every profile unique (groups of one): full risk.
	if risks[0] != 1 {
		t.Fatalf("k=1 risk = %g, want 1", risks[0])
	}
	if !(risks[1] < risks[0]) || !(risks[2] <= risks[1]) {
		t.Fatalf("risk must fall with k: %v", risks)
	}
	// Identical published vectors within a group mean at most one member per
	// group can be uniquely linked: risk is bounded by 1/k.
	if risks[1] > 1.0/3+1e-9 {
		t.Fatalf("k=3 risk = %g, want <= 1/3", risks[1])
	}
	if risks[2] > 1.0/6+1e-9 {
		t.Fatalf("k=6 risk = %g, want <= 1/6", risks[2])
	}
}

func TestReidentificationRiskEdgeCases(t *testing.T) {
	if got := ReidentificationRisk(nil, nil); got != 0 {
		t.Fatalf("empty risk = %g", got)
	}
	pool := clusteredPool(4)
	if got := ReidentificationRisk(pool[:2], pool); got != 0 {
		t.Fatal("misaligned slices must yield 0")
	}
}

func TestDPPerturbBasics(t *testing.T) {
	pool := clusteredPool(4)
	universe := InterestUniverse(pool)
	rng := newRng(3)
	out, err := DPPerturb(pool[0], universe, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != pool[0].ID {
		t.Fatal("perturbed profile must keep the ID")
	}
	for tm, w := range out.Interests {
		if w <= 0 {
			t.Fatalf("perturbed weight for %v = %g, must be positive (zeros dropped)", tm, w)
		}
	}
	if _, err := DPPerturb(pool[0], universe, 0, rng); err == nil {
		t.Fatal("epsilon=0 must fail")
	}
	if _, err := DPPerturb(pool[0], universe, -1, rng); err == nil {
		t.Fatal("negative epsilon must fail")
	}
}

func TestDPPerturbDeterministicWithSeed(t *testing.T) {
	pool := clusteredPool(4)
	universe := InterestUniverse(pool)
	a, _ := DPPerturb(pool[0], universe, 0.5, newRng(42))
	b, _ := DPPerturb(pool[0], universe, 0.5, newRng(42))
	if len(a.Interests) != len(b.Interests) {
		t.Fatal("same seed must produce identical perturbations")
	}
	for tm, w := range a.Interests {
		if math.Abs(b.Interests[tm]-w) > 1e-15 {
			t.Fatal("same seed must produce identical weights")
		}
	}
}

func TestDPPerturbNoiseScalesWithEpsilon(t *testing.T) {
	pool := clusteredPool(2)
	universe := InterestUniverse(pool)
	devAt := func(eps float64) float64 {
		rng := newRng(9)
		total := 0.0
		n := 200
		for i := 0; i < n; i++ {
			out, _ := DPPerturb(pool[0], universe, eps, rng)
			for _, tm := range universe {
				d := out.InterestIn(tm) - pool[0].InterestIn(tm)
				total += math.Abs(d)
			}
		}
		return total / float64(n*len(universe))
	}
	loose := devAt(10) // weak privacy, little noise
	tight := devAt(0.1)
	if tight <= loose {
		t.Fatalf("smaller epsilon must add more noise: dev(0.1)=%g dev(10)=%g", tight, loose)
	}
}

func TestInterestUniverse(t *testing.T) {
	pool := clusteredPool(4)
	u := InterestUniverse(pool)
	if len(u) != 4 { // A, B, X, Y
		t.Fatalf("universe = %v, want 4 terms", u)
	}
	for i := 1; i < len(u); i++ {
		if u[i-1].Compare(u[i]) >= 0 {
			t.Fatal("universe must be sorted")
		}
	}
	if got := InterestUniverse(nil); len(got) != 0 {
		t.Fatal("empty pool universe must be empty")
	}
}

func TestNDCG(t *testing.T) {
	rel := map[string]float64{"a": 3, "b": 2, "c": 1}
	if got := NDCGAtK([]string{"a", "b", "c"}, rel, 3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %g, want 1", got)
	}
	rev := NDCGAtK([]string{"c", "b", "a"}, rel, 3)
	if rev >= 1 || rev <= 0 {
		t.Fatalf("reversed NDCG = %g, want in (0,1)", rev)
	}
	if got := NDCGAtK([]string{"x", "y"}, rel, 2); got != 0 {
		t.Fatalf("irrelevant NDCG = %g, want 0", got)
	}
	if got := NDCGAtK([]string{"a"}, map[string]float64{}, 1); got != 0 {
		t.Fatalf("empty labels NDCG = %g, want 0", got)
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	rel := map[string]bool{"a": true, "b": true}
	ranked := []string{"a", "x", "b", "y"}
	if got := PrecisionAtK(ranked, rel, 2); got != 0.5 {
		t.Fatalf("P@2 = %g, want 0.5", got)
	}
	if got := RecallAtK(ranked, rel, 3); got != 1 {
		t.Fatalf("R@3 = %g, want 1", got)
	}
	if got := PrecisionAtK(ranked, rel, 0); got != 0 {
		t.Fatalf("P@0 = %g", got)
	}
	if got := RecallAtK(ranked, map[string]bool{}, 2); got != 0 {
		t.Fatalf("R with empty relevant = %g", got)
	}
}

func TestMeasureIDs(t *testing.T) {
	sel := []Recommendation{{MeasureID: "b"}, {MeasureID: "a"}}
	ids := MeasureIDs(sel)
	if ids[0] != "b" || ids[1] != "a" {
		t.Fatalf("MeasureIDs must preserve rank order: %v", ids)
	}
}

// Property: for any pool shape and any valid k, KAnonymize covers every
// profile exactly once with groups of size >= k and preserves IDs.
func TestKAnonymizeInvariantsProperty(t *testing.T) {
	f := func(sizes []uint8, kRaw uint8) bool {
		n := int(kRaw%10) + 2 + len(sizes)%7 // pool size 2..18
		pool := make([]*profile.Profile, n)
		for i := range pool {
			p := profile.New(fmt.Sprintf("q%03d", i))
			p.SetInterest(term(fmt.Sprintf("T%d", i%5)), 1+float64(i)*0.1)
			if i < len(sizes) {
				p.SetInterest(term(fmt.Sprintf("U%d", sizes[i]%4)), 0.5)
			}
			pool[i] = p
		}
		k := int(kRaw)%n + 1
		anon, groups, err := KAnonymize(pool, k)
		if err != nil {
			return false
		}
		covered := make(map[int]bool)
		for _, g := range groups {
			if len(g) < k {
				return false
			}
			for _, idx := range g {
				if covered[idx] {
					return false
				}
				covered[idx] = true
			}
		}
		if len(covered) != n {
			return false
		}
		for i := range pool {
			if anon[i].ID != pool[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
