package recommend

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"evorec/internal/profile"
	"evorec/internal/rdf"
)

// KAnonymize publishes a k-anonymous view of the profile pool (§III-e):
// profiles are greedily clustered into groups of at least k by interest
// similarity and every member is replaced by its group centroid, so any
// published vector is identical for at least k users. The function returns
// the anonymized profiles (index-aligned with the input) and the group
// membership as index lists. It fails if k exceeds the pool size.
func KAnonymize(pool []*profile.Profile, k int) ([]*profile.Profile, [][]int, error) {
	n := len(pool)
	if k < 1 {
		return nil, nil, fmt.Errorf("recommend: k must be >= 1, got %d", k)
	}
	if k > n {
		return nil, nil, fmt.Errorf("recommend: k=%d exceeds pool size %d", k, n)
	}
	// Deterministic processing order: by profile ID.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pool[order[a]].ID < pool[order[b]].ID })

	// Compile the pool once: the greedy clustering compares O(n²) profile
	// pairs, and the map-based cosine re-derived both norms inside every
	// call. The flat vectors cache each norm at compile time and share one
	// private dictionary, so every pairwise similarity is a two-pointer
	// merge — bit-identical to CosineVectors over the same interests.
	dict := rdf.NewDict()
	flats := make([]profile.Flat, n)
	var squares, prods []float64
	for i, p := range pool {
		flats[i].Compile(p.Interests, dict, true, &squares)
	}

	assigned := make([]bool, n)
	var groups [][]int
	for _, seed := range order {
		if assigned[seed] {
			continue
		}
		remaining := 0
		for _, i := range order {
			if !assigned[i] {
				remaining++
			}
		}
		if remaining < 2*k {
			// Close out: all remaining users form the final group, keeping
			// every group at size >= k.
			var g []int
			for _, i := range order {
				if !assigned[i] {
					assigned[i] = true
					g = append(g, i)
				}
			}
			groups = append(groups, g)
			break
		}
		// Seed a group with the k-1 nearest unassigned profiles.
		assigned[seed] = true
		g := []int{seed}
		type cand struct {
			idx int
			sim float64
		}
		var cands []cand
		for _, i := range order {
			if !assigned[i] {
				cands = append(cands, cand{
					idx: i,
					sim: profile.CosineFlatBuf(&flats[seed], &flats[i], &prods),
				})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].sim != cands[b].sim {
				return cands[a].sim > cands[b].sim
			}
			return pool[cands[a].idx].ID < pool[cands[b].idx].ID
		})
		for _, c := range cands[:k-1] {
			assigned[c.idx] = true
			g = append(g, c.idx)
		}
		groups = append(groups, g)
	}

	out := make([]*profile.Profile, n)
	for gi, g := range groups {
		members := make([]*profile.Profile, len(g))
		for i, idx := range g {
			members[i] = pool[idx]
		}
		centroid := profile.Centroid(fmt.Sprintf("anon-g%d", gi), members)
		for _, idx := range g {
			anon := centroid.Clone()
			anon.ID = pool[idx].ID
			out[idx] = anon
		}
	}
	return out, groups, nil
}

// DPPerturb publishes a differentially-private view of one profile: Laplace
// noise with scale 1/epsilon is added to the profile's weight on every
// entity of the universe (including zero-weight entities, so the support
// set itself does not leak), negatives are clamped and exact zeros dropped.
// Smaller epsilon means stronger privacy and noisier output.
func DPPerturb(p *profile.Profile, universe []rdf.Term, epsilon float64, rng *rand.Rand) (*profile.Profile, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("recommend: epsilon must be > 0, got %g", epsilon)
	}
	out := profile.New(p.ID)
	scale := 1 / epsilon
	for _, t := range universe {
		w := p.InterestIn(t) + laplace(scale, rng)
		if w > 0 {
			out.Interests[t] = w
		}
	}
	return out, nil
}

// laplace samples Laplace(0, scale) via inverse transform.
func laplace(scale float64, rng *rand.Rand) float64 {
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// InterestUniverse returns the union of entities appearing in any profile
// of the pool, sorted. It is the perturbation universe for DPPerturb.
func InterestUniverse(pool []*profile.Profile) []rdf.Term {
	set := make(map[rdf.Term]struct{})
	for _, p := range pool {
		for t := range p.Interests {
			set[t] = struct{}{}
		}
	}
	out := make([]rdf.Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	rdf.SortTerms(out)
	return out
}

// ReidentificationRisk simulates the linkage attack the paper's anonymity
// discussion warns about: an adversary holding the original profiles links
// each published (anonymized) profile to the nearest original by cosine
// similarity. The risk is the fraction of published profiles correctly
// linked back to their owner, ties resolved in the adversary's favor only
// when the true owner is the unique nearest. Both slices must be
// index-aligned.
func ReidentificationRisk(originals, published []*profile.Profile) float64 {
	n := len(published)
	if n == 0 || len(originals) != n {
		return 0
	}
	// Both pools compiled once against one dictionary: the attack compares
	// every published profile with every original, so cached norms turn the
	// n² inner loop into pure merges (bit-identical to CosineVectors).
	dict := rdf.NewDict()
	pubF := make([]profile.Flat, n)
	origF := make([]profile.Flat, n)
	var squares, prods []float64
	for i := range published {
		pubF[i].Compile(published[i].Interests, dict, true, &squares)
	}
	for j := range originals {
		origF[j].Compile(originals[j].Interests, dict, true, &squares)
	}
	hits := 0
	for i := range published {
		bestSim := math.Inf(-1)
		bestCount := 0
		bestIsOwner := false
		for j := range originals {
			sim := profile.CosineFlatBuf(&pubF[i], &origF[j], &prods)
			switch {
			case sim > bestSim:
				bestSim = sim
				bestCount = 1
				bestIsOwner = j == i
			case sim == bestSim:
				bestCount++
				if j == i {
					bestIsOwner = true
				}
			}
		}
		if bestIsOwner && bestCount == 1 {
			hits++
		}
	}
	return float64(hits) / float64(n)
}
