package recommend

import (
	"math"
	"sort"
)

// Ranking-quality metrics used by the experiment harness to compare
// recommenders against planted ground truth.

// NDCGAtK computes the normalized discounted cumulative gain of a ranked
// measure-ID list against graded relevance labels. Missing labels count as
// zero relevance. An all-zero label set yields 0.
func NDCGAtK(ranked []string, relevance map[string]float64, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	dcg := 0.0
	for i := 0; i < k; i++ {
		rel := relevance[ranked[i]]
		dcg += (math.Pow(2, rel) - 1) / math.Log2(float64(i)+2)
	}
	// Ideal DCG over the label set.
	rels := make([]float64, 0, len(relevance))
	for _, r := range relevance {
		rels = append(rels, r)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rels)))
	idcg := 0.0
	for i := 0; i < k && i < len(rels); i++ {
		idcg += (math.Pow(2, rels[i]) - 1) / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// PrecisionAtK is the fraction of the top-k that is relevant.
func PrecisionAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for i := 0; i < k; i++ {
		if relevant[ranked[i]] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK is the fraction of the relevant set that appears in the top-k.
func RecallAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	for i := 0; i < k; i++ {
		if relevant[ranked[i]] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// MeasureIDs extracts the ranked measure IDs of a recommendation list in
// rank order.
func MeasureIDs(sel []Recommendation) []string {
	out := make([]string, len(sel))
	for i, s := range sel {
		out[i] = s.MeasureID
	}
	return out
}
