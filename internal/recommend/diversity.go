package recommend

import (
	"evorec/internal/measures"
	"evorec/internal/profile"
)

// ItemDistance is the content distance between two items: 1 − cosine of
// their normalized entity-score vectors. Items that highlight the same
// entities are close; items reading orthogonal signals are distant.
func ItemDistance(a, b Item) float64 {
	return 1 - profile.CosineVectors(a.Vector, b.Vector)
}

// MMR produces a diversified top-k with Maximal Marginal Relevance
// (content-based diversity, §III-c(i)): items are picked greedily by
//
//	λ·relatedness(u, i) − (1−λ)·max_{s∈S} sim(i, s)
//
// λ=1 degenerates to pure relatedness, λ=0 to pure diversification.
func MMR(u *profile.Profile, items []Item, k int, lambda float64) []Recommendation {
	if k > len(items) {
		k = len(items)
	}
	selected := make([]Recommendation, 0, k)
	used := make(map[string]bool, k)
	for len(selected) < k {
		bestIdx := -1
		bestScore := 0.0
		for i, it := range items {
			if used[it.ID()] {
				continue
			}
			rel := Relatedness(u, it)
			maxSim := 0.0
			for _, s := range selected {
				sel, _ := itemByID(items, s.MeasureID)
				if sim := 1 - ItemDistance(it, sel); sim > maxSim {
					maxSim = sim
				}
			}
			score := lambda*rel - (1-lambda)*maxSim
			if bestIdx < 0 || score > bestScore ||
				(score == bestScore && it.ID() < items[bestIdx].ID()) {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx < 0 {
			break
		}
		used[items[bestIdx].ID()] = true
		selected = append(selected, Recommendation{
			MeasureID: items[bestIdx].ID(),
			Score:     bestScore,
		})
	}
	return selected
}

// MaxMin produces a diversified top-k with the Max-Min heuristic: the first
// pick is the most related item, each further pick maximizes the minimum
// content distance to the already selected set. It optimizes set spread
// rather than the relevance/diversity mix, and serves as the alternative
// diversifier in the E5 ablation.
func MaxMin(u *profile.Profile, items []Item, k int) []Recommendation {
	if k > len(items) {
		k = len(items)
	}
	if k == 0 || len(items) == 0 {
		return nil
	}
	top := TopK(u, items, 1)
	selected := []Recommendation{top[0]}
	used := map[string]bool{top[0].MeasureID: true}
	for len(selected) < k {
		bestIdx := -1
		bestDist := -1.0
		for i, it := range items {
			if used[it.ID()] {
				continue
			}
			minDist := 2.0
			for _, s := range selected {
				sel, _ := itemByID(items, s.MeasureID)
				if d := ItemDistance(it, sel); d < minDist {
					minDist = d
				}
			}
			if minDist > bestDist ||
				(minDist == bestDist && bestIdx >= 0 && it.ID() < items[bestIdx].ID()) {
				bestIdx, bestDist = i, minDist
			}
		}
		if bestIdx < 0 {
			break
		}
		used[items[bestIdx].ID()] = true
		selected = append(selected, Recommendation{
			MeasureID: items[bestIdx].ID(),
			Score:     bestDist,
		})
	}
	return selected
}

// Novelty returns the novelty factor of an item for a user (§III-c(ii)):
// 1/(1+timesSeen), so unseen measures score 1 and repeatedly shown measures
// decay harmonically.
func Novelty(u *profile.Profile, it Item) float64 {
	return 1 / float64(1+u.SeenCount(it.ID()))
}

// NoveltyTopK ranks items by relatedness × novelty, implementing
// novelty-based diversity: measures already shown to the user are demoted
// in favor of fresh viewpoints. ItemIndex.NoveltyTopK is the flat-kernel
// form.
func NoveltyTopK(u *profile.Profile, items []Item, k int) []Recommendation {
	return selectTopK(items, k, func(it Item) float64 {
		return Relatedness(u, it) * Novelty(u, it)
	})
}

// SemanticTopK implements semantic (category-based) diversity (§III-c(iii)):
// it round-robins over measure categories in their stable order, picking the
// most related not-yet-chosen item of each category, so the selection covers
// count-based, structural and semantic viewpoints before repeating any.
func SemanticTopK(u *profile.Profile, items []Item, k int) []Recommendation {
	if k > len(items) {
		k = len(items)
	}
	byCat := make(map[measures.Category][]Recommendation)
	for _, cat := range measures.Categories() {
		var sub []Item
		for _, it := range items {
			if it.Category() == cat {
				sub = append(sub, it)
			}
		}
		byCat[cat] = TopK(u, sub, len(sub))
	}
	var out []Recommendation
	for len(out) < k {
		progressed := false
		for _, cat := range measures.Categories() {
			if len(out) >= k {
				break
			}
			if len(byCat[cat]) == 0 {
				continue
			}
			out = append(out, byCat[cat][0])
			byCat[cat] = byCat[cat][1:]
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return out
}

// IntraListDiversity is the mean pairwise content distance of a selection;
// the standard set-level diversity metric reported in E5. Selections with
// fewer than two items have diversity 0.
func IntraListDiversity(items []Item, sel []Recommendation) float64 {
	if len(sel) < 2 {
		return 0
	}
	sum, pairs := 0.0, 0
	for i := 0; i < len(sel); i++ {
		a, okA := itemByID(items, sel[i].MeasureID)
		if !okA {
			continue
		}
		for j := i + 1; j < len(sel); j++ {
			b, okB := itemByID(items, sel[j].MeasureID)
			if !okB {
				continue
			}
			sum += ItemDistance(a, b)
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// CategoryCoverage is the fraction of measure categories represented in the
// selection, the semantic-diversity metric reported in E5.
func CategoryCoverage(items []Item, sel []Recommendation) float64 {
	total := len(measures.Categories())
	if total == 0 || len(sel) == 0 {
		return 0
	}
	seen := make(map[measures.Category]bool)
	for _, s := range sel {
		if it, ok := itemByID(items, s.MeasureID); ok {
			seen[it.Category()] = true
		}
	}
	return float64(len(seen)) / float64(total)
}

// MeanRelatedness is the mean relatedness of a selection to a user, the
// relevance side of the diversity trade-off curve in E5.
func MeanRelatedness(u *profile.Profile, items []Item, sel []Recommendation) float64 {
	if len(sel) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range sel {
		if it, ok := itemByID(items, s.MeasureID); ok {
			sum += Relatedness(u, it)
		}
	}
	return sum / float64(len(sel))
}
