package recommend

import (
	"math"
	"sync"

	"evorec/internal/measures"
	"evorec/internal/profile"
	"evorec/internal/rdf"
)

// ItemIndex is the ID-native scoring kernel over one version pair's items:
// every item vector compiled to a flat sorted TermID form with a cached
// norm, behind an inverted TermID → item-postings index. Scoring a user
// visits only the items sharing at least one dictionary term with the
// user's interests — every other item's cosine relatedness is exactly 0,
// so it is assigned, not computed — and selection runs through the shared
// bounded heap. All scores are bit-identical to the map-scored reference
// functions (TopK, GroupTopK, ...), which the parity suite asserts.
//
// The index owns a private dictionary: item entity terms are interned at
// construction, user interests are compiled against it lookup-only per
// call, so serving never mutates the index. An ItemIndex is immutable after
// construction and safe for concurrent use; per-call scratch comes from a
// package-level sync.Pool, which the engine's read-locked recommend path
// and the feed's fan-out workers share for free.
type ItemIndex struct {
	items  []Item
	ids    []string       // measure IDs, aligned with items
	ords   map[string]int // measure ID -> ordinal
	flats  []profile.Flat // flat item vectors, aligned with items
	totals []float64      // deterministic popularity totals, aligned
	dict   *rdf.Dict
	post   map[rdf.TermID][]int32
	nan    []int32 // ordinals with NaN norm: the reference arithmetic
	// scores them NaN against everyone, so they are always candidates
	entityTerms []rdf.Term // distinct positively-weighted vector terms, sorted
	catOrds     [][]int32  // ordinals per measures.Categories() slot, item order
}

// NewItemIndex compiles the items into the flat scoring form. Items must be
// what BuildItems returns (sorted by measure ID, unique IDs).
func NewItemIndex(items []Item) *ItemIndex {
	ix := &ItemIndex{
		items:  items,
		ids:    make([]string, len(items)),
		ords:   make(map[string]int, len(items)),
		flats:  make([]profile.Flat, len(items)),
		totals: make([]float64, len(items)),
		dict:   rdf.NewDict(),
		post:   make(map[rdf.TermID][]int32),
	}
	var squares []float64
	positive := make(map[rdf.TermID]struct{})
	for i, it := range items {
		ix.ids[i] = it.ID()
		ix.ords[it.ID()] = i
		f := &ix.flats[i]
		f.Compile(it.Vector, ix.dict, true, &squares)
		for _, e := range f.Entries {
			ix.post[e.ID] = append(ix.post[e.ID], int32(i))
			if e.W > 0 {
				positive[e.ID] = struct{}{}
			}
		}
		if math.IsNaN(f.Norm) {
			ix.nan = append(ix.nan, int32(i))
		}
		ix.totals[i] = it.Scores.Total()
	}
	ix.entityTerms = make([]rdf.Term, 0, len(positive))
	for id := range positive {
		ix.entityTerms = append(ix.entityTerms, ix.dict.TermOf(id))
	}
	rdf.SortTerms(ix.entityTerms)
	cats := measures.Categories()
	ix.catOrds = make([][]int32, len(cats))
	for ci, cat := range cats {
		for i, it := range items {
			if it.Category() == cat {
				ix.catOrds[ci] = append(ix.catOrds[ci], int32(i))
			}
		}
	}
	return ix
}

// Items returns the indexed items (shared, not copied).
func (ix *ItemIndex) Items() []Item { return ix.items }

// Len returns the number of indexed items.
func (ix *ItemIndex) Len() int { return len(ix.items) }

// Dict returns the index's private term dictionary. It is read-only after
// construction; compile user vectors against it without interning.
func (ix *ItemIndex) Dict() *rdf.Dict { return ix.dict }

// ByID returns the item with the given measure ID — the kernel's
// replacement for scanning the item slice per ranked measure.
func (ix *ItemIndex) ByID(id string) (Item, bool) {
	if i, ok := ix.ords[id]; ok {
		return ix.items[i], true
	}
	return Item{}, false
}

// EntityTerms returns the distinct entity terms any item scores positively,
// sorted. The feed fan-out intersects exactly this set with its subscriber
// index, so the per-commit term walk is precomputed here once per pair.
func (ix *ItemIndex) EntityTerms() []rdf.Term { return ix.entityTerms }

// kernelScratch is the pooled per-call state of the scoring kernel.
type kernelScratch struct {
	scores  []float64
	visited []bool
	cand    []int32
	prods   []float64
	squares []float64
	flat    profile.Flat
	group   []profile.Flat
}

var kernelPool = sync.Pool{New: func() any { return new(kernelScratch) }}

// getScratch returns pooled scratch sized for ix.
func (ix *ItemIndex) getScratch() *kernelScratch {
	sc := kernelPool.Get().(*kernelScratch)
	n := len(ix.items)
	if cap(sc.scores) < n {
		sc.scores = make([]float64, n)
		sc.visited = make([]bool, n)
	}
	sc.scores = sc.scores[:n]
	sc.visited = sc.visited[:n]
	return sc
}

func putScratch(sc *kernelScratch) { kernelPool.Put(sc) }

// compileUser compiles u's interests into the pooled scratch flat.
func (ix *ItemIndex) compileUser(u *profile.Profile, sc *kernelScratch) *profile.Flat {
	sc.flat.Compile(u.Interests, ix.dict, false, &sc.squares)
	return &sc.flat
}

// scoreInto fills sc.scores with fu's relatedness to every item: cosines
// are computed only for posting-list candidates (plus NaN-norm items, which
// the reference arithmetic scores NaN against everyone); the rest are
// assigned their exact value, 0. A NaN user norm likewise poisons every
// item's score in the reference arithmetic, so that case falls back to
// scoring all items — through the same flat cosine, keeping bits identical.
func (ix *ItemIndex) scoreInto(fu *profile.Flat, sc *kernelScratch) {
	scores := sc.scores
	for i := range scores {
		scores[i] = 0
	}
	if math.IsNaN(fu.Norm) {
		for i := range ix.flats {
			scores[i] = profile.CosineFlatBuf(fu, &ix.flats[i], &sc.prods)
		}
		return
	}
	cand := ix.candidates(fu, sc)
	for _, ord := range cand {
		sc.visited[ord] = false
		scores[ord] = profile.CosineFlatBuf(fu, &ix.flats[ord], &sc.prods)
	}
}

// candidates collects the ordinals of items sharing at least one term with
// fu (plus the always-candidate NaN-norm items), using sc.visited as the
// dedup bitmap. Callers must clear visited for every returned ordinal.
func (ix *ItemIndex) candidates(fu *profile.Flat, sc *kernelScratch) []int32 {
	cand := sc.cand[:0]
	for _, e := range fu.Entries {
		for _, ord := range ix.post[e.ID] {
			if !sc.visited[ord] {
				sc.visited[ord] = true
				cand = append(cand, ord)
			}
		}
	}
	for _, ord := range ix.nan {
		if !sc.visited[ord] {
			sc.visited[ord] = true
			cand = append(cand, ord)
		}
	}
	sc.cand = cand
	return cand
}

// selectScores heap-selects the k best (ordinal, score) pairs under the
// canonical order.
func (ix *ItemIndex) selectScores(scores []float64, k int) []Recommendation {
	if k > len(ix.items) {
		k = len(ix.items)
	}
	h := newBounded(k, betterRec)
	for i, id := range ix.ids {
		h.offer(Recommendation{MeasureID: id, Score: scores[i]})
	}
	return h.take()
}

// TopK returns the k measures most related to the user — the flat-kernel
// form of TopK, bit-identical to it.
func (ix *ItemIndex) TopK(u *profile.Profile, k int) []Recommendation {
	sc := ix.getScratch()
	defer putScratch(sc)
	ix.scoreInto(ix.compileUser(u, sc), sc)
	return ix.selectScores(sc.scores, k)
}

// NoveltyTopK ranks by relatedness × novelty — the flat-kernel form of
// NoveltyTopK.
func (ix *ItemIndex) NoveltyTopK(u *profile.Profile, k int) []Recommendation {
	sc := ix.getScratch()
	defer putScratch(sc)
	ix.scoreInto(ix.compileUser(u, sc), sc)
	for i, id := range ix.ids {
		sc.scores[i] *= 1 / float64(1+u.SeenCount(id))
	}
	return ix.selectScores(sc.scores, k)
}

// SemanticTopK round-robins over measure categories — the flat-kernel form
// of SemanticTopK.
func (ix *ItemIndex) SemanticTopK(u *profile.Profile, k int) []Recommendation {
	sc := ix.getScratch()
	defer putScratch(sc)
	ix.scoreInto(ix.compileUser(u, sc), sc)
	if k > len(ix.items) {
		k = len(ix.items)
	}
	byCat := make([][]Recommendation, len(ix.catOrds))
	for ci, ords := range ix.catOrds {
		h := newBounded(len(ords), betterRec)
		for _, ord := range ords {
			h.offer(Recommendation{MeasureID: ix.ids[ord], Score: sc.scores[ord]})
		}
		byCat[ci] = h.take()
	}
	var out []Recommendation
	for len(out) < k {
		progressed := false
		for ci := range byCat {
			if len(out) >= k {
				break
			}
			if len(byCat[ci]) == 0 {
				continue
			}
			out = append(out, byCat[ci][0])
			byCat[ci] = byCat[ci][1:]
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return out
}

// PopularityTopK ranks by the cached deterministic change-mass totals — the
// flat-kernel form of PopularityTopK.
func (ix *ItemIndex) PopularityTopK(k int) []Recommendation {
	return ix.selectScores(ix.totals, k)
}

// GroupTopK recommends to a group under an aggregation — the flat-kernel
// form of GroupTopK: members are compiled once, candidate items are the
// union of the members' postings, and each candidate aggregates member
// cosines in member order, exactly as GroupScore does.
func (ix *ItemIndex) GroupTopK(g *profile.Group, k int, agg Aggregation) []Recommendation {
	sc := ix.getScratch()
	defer putScratch(sc)
	if cap(sc.group) < g.Size() {
		sc.group = make([]profile.Flat, g.Size())
	}
	sc.group = sc.group[:g.Size()]
	anyNaN := false
	for i, m := range g.Members {
		sc.group[i].Compile(m.Interests, ix.dict, false, &sc.squares)
		if math.IsNaN(sc.group[i].Norm) {
			anyNaN = true
		}
	}
	scores := sc.scores
	for i := range scores {
		scores[i] = 0
	}
	if anyNaN {
		for i := range ix.flats {
			scores[i] = ix.groupScoreFlat(sc, int32(i), agg)
		}
		return ix.selectScores(scores, k)
	}
	cand := sc.cand[:0]
	for mi := range sc.group {
		for _, e := range sc.group[mi].Entries {
			for _, ord := range ix.post[e.ID] {
				if !sc.visited[ord] {
					sc.visited[ord] = true
					cand = append(cand, ord)
				}
			}
		}
	}
	for _, ord := range ix.nan {
		if !sc.visited[ord] {
			sc.visited[ord] = true
			cand = append(cand, ord)
		}
	}
	sc.cand = cand
	for _, ord := range cand {
		sc.visited[ord] = false
		scores[ord] = ix.groupScoreFlat(sc, ord, agg)
	}
	return ix.selectScores(scores, k)
}

// groupScoreFlat aggregates the compiled members' relatedness for one item,
// mirroring GroupScore member for member.
func (ix *ItemIndex) groupScoreFlat(sc *kernelScratch, ord int32, agg Aggregation) float64 {
	it := &ix.flats[ord]
	switch agg {
	case LeastMisery:
		min := 0.0
		for i := range sc.group {
			r := profile.CosineFlatBuf(&sc.group[i], it, &sc.prods)
			if i == 0 || r < min {
				min = r
			}
		}
		return min
	case MostPleasure:
		max := 0.0
		for i := range sc.group {
			if r := profile.CosineFlatBuf(&sc.group[i], it, &sc.prods); r > max {
				max = r
			}
		}
		return max
	default: // Average
		sum := 0.0
		for i := range sc.group {
			sum += profile.CosineFlatBuf(&sc.group[i], it, &sc.prods)
		}
		return sum / float64(len(sc.group))
	}
}

// NotifyEach invokes emit for each of the user's top-k measures whose
// relatedness crosses the threshold, in descending canonical order, with
// the ExplainText-identical one-line reason. It is the flat-kernel body of
// a notification: one interest compile, candidate-only scoring, and flat
// explanations rendered only for the measures actually emitted. Beyond
// pooled scratch it allocates only the reasons themselves, so callers
// (Engine.Notify, the feed fan-out workers) build their notification
// batches with no intermediate slices.
func (ix *ItemIndex) NotifyEach(u *profile.Profile, threshold float64, k int, emit func(measureID string, score float64, reason string)) {
	sc := ix.getScratch()
	defer putScratch(sc)
	fu := ix.compileUser(u, sc)
	ix.scoreInto(fu, sc)
	for _, r := range ix.selectScores(sc.scores, k) {
		if r.Score < threshold || r.Score == 0 {
			continue
		}
		emit(r.MeasureID, r.Score, ix.explainTextFlat(fu, ix.ords[r.MeasureID], sc))
	}
}

// explainTextFlat renders the ExplainText(u, it, 1)-identical reason from
// the compiled vectors: the top contribution by product (ties by term
// order) over the flat merge, decoded back to terms only for the winner.
func (ix *ItemIndex) explainTextFlat(fu *profile.Flat, ord int, sc *kernelScratch) string {
	ae, be := fu.Entries, ix.flats[ord].Entries
	var best Contribution
	found := false
	i, j := 0, 0
	for i < len(ae) && j < len(be) {
		switch {
		case ae[i].ID < be[j].ID:
			i++
		case ae[i].ID > be[j].ID:
			j++
		default:
			w, s := ae[i].W, be[j].W
			if w != 0 && s != 0 {
				c := Contribution{
					Term:       ix.dict.TermOf(ae[i].ID),
					UserWeight: w,
					ItemScore:  s,
					Product:    w * s,
				}
				if !found || betterContribution(c, best) {
					best, found = c, true
				}
			}
			i++
			j++
		}
	}
	if !found {
		return explainText(ix.ids[ord], nil)
	}
	return explainText(ix.ids[ord], []Contribution{best})
}
