package recommend

import (
	"math/rand"
)

// RandomTopK is the random baseline used in the relatedness experiments: it
// returns k items drawn uniformly without replacement, with the sampling
// order as "score" so that evaluation code can treat all recommenders
// uniformly.
func RandomTopK(items []Item, k int, rng *rand.Rand) []Recommendation {
	idx := rng.Perm(len(items))
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Recommendation, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, Recommendation{
			MeasureID: items[idx[i]].ID(),
			Score:     float64(k - i),
		})
	}
	return out
}

// PopularityTopK is the user-independent popularity baseline: items ranked
// by the total change mass their measure reports, i.e. the measure that
// "saw the most change" is recommended to everyone regardless of interests.
// ItemIndex.PopularityTopK serves the same ranking from totals cached at
// index build.
func PopularityTopK(items []Item, k int) []Recommendation {
	return selectTopK(items, k, func(it Item) float64 { return it.Scores.Total() })
}
