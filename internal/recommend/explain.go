package recommend

import (
	"strconv"
	"strings"

	"evorec/internal/profile"
	"evorec/internal/rdf"
)

// Contribution is one entity's share of a relatedness score: the user cares
// about the entity with UserWeight, the measure highlights it with
// ItemScore, and the product is the entity's term in the relatedness dot
// product.
type Contribution struct {
	// Term is the contributing entity.
	Term rdf.Term
	// UserWeight is the user's interest in the entity.
	UserWeight float64
	// ItemScore is the measure's normalized score for the entity.
	ItemScore float64
	// Product is UserWeight × ItemScore, the entity's contribution.
	Product float64
}

// Explain decomposes why an item is related to a user: the top-n entities
// by contribution to the relatedness dot product, descending, ties broken
// by term order. It complements the provenance layer: provenance says how a
// recommendation was computed, Explain says why this measure for this user.
// Selection is the shared bounded heap, so only n contributions are ever
// materialized however many terms overlap.
func Explain(u *profile.Profile, it Item, n int) []Contribution {
	h := newBounded(n, betterContribution)
	for t, w := range u.Interests {
		s, ok := it.Vector[t]
		if !ok || s == 0 || w == 0 {
			continue
		}
		h.offer(Contribution{Term: t, UserWeight: w, ItemScore: s, Product: w * s})
	}
	return h.take()
}

// ExplainText renders an explanation as one human-readable paragraph, e.g.
//
//	relevance_shift matches your interests through Person (interest 1.00 ×
//	change intensity 0.85) and Organization (0.50 × 0.40).
func ExplainText(u *profile.Profile, it Item, n int) string {
	return explainText(it.ID(), Explain(u, it, n))
}

// explainText is the shared renderer behind ExplainText and the flat
// kernel's notification reasons; both must emit byte-identical strings for
// the notification parity suite. It renders through one strings.Builder —
// notifications produce one reason per emitted measure, so the fmt/join
// garbage of the obvious implementation was a measurable slice of fan-out.
func explainText(itemID string, cs []Contribution) string {
	var b strings.Builder
	if len(cs) == 0 {
		b.Grow(len(itemID) + 48)
		b.WriteString(itemID)
		b.WriteString(" does not overlap with this user's interests.")
		return b.String()
	}
	b.Grow(len(itemID) + 64*len(cs))
	b.WriteString(itemID)
	b.WriteString(" matches your interests through ")
	var num [24]byte
	for i, c := range cs {
		if i > 0 {
			b.WriteString(" and ")
		}
		b.WriteString(c.Term.Local())
		b.WriteString(" (interest ")
		b.Write(strconv.AppendFloat(num[:0], c.UserWeight, 'f', 2, 64))
		b.WriteString(" × change intensity ")
		b.Write(strconv.AppendFloat(num[:0], c.ItemScore, 'f', 2, 64))
		b.WriteString(")")
	}
	b.WriteString(".")
	return b.String()
}
