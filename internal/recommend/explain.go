package recommend

import (
	"fmt"
	"sort"
	"strings"

	"evorec/internal/profile"
	"evorec/internal/rdf"
)

// Contribution is one entity's share of a relatedness score: the user cares
// about the entity with UserWeight, the measure highlights it with
// ItemScore, and the product is the entity's term in the relatedness dot
// product.
type Contribution struct {
	// Term is the contributing entity.
	Term rdf.Term
	// UserWeight is the user's interest in the entity.
	UserWeight float64
	// ItemScore is the measure's normalized score for the entity.
	ItemScore float64
	// Product is UserWeight × ItemScore, the entity's contribution.
	Product float64
}

// Explain decomposes why an item is related to a user: the top-n entities
// by contribution to the relatedness dot product, descending, ties broken
// by term order. It complements the provenance layer: provenance says how a
// recommendation was computed, Explain says why this measure for this user.
func Explain(u *profile.Profile, it Item, n int) []Contribution {
	var out []Contribution
	for t, w := range u.Interests {
		s, ok := it.Vector[t]
		if !ok || s == 0 || w == 0 {
			continue
		}
		out = append(out, Contribution{Term: t, UserWeight: w, ItemScore: s, Product: w * s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Product != out[j].Product {
			return out[i].Product > out[j].Product
		}
		return out[i].Term.Compare(out[j].Term) < 0
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// ExplainText renders an explanation as one human-readable paragraph, e.g.
//
//	relevance_shift matches your interests through Person (interest 1.00 ×
//	change intensity 0.85) and Organization (0.50 × 0.40).
func ExplainText(u *profile.Profile, it Item, n int) string {
	cs := Explain(u, it, n)
	if len(cs) == 0 {
		return fmt.Sprintf("%s does not overlap with this user's interests.", it.ID())
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%s (interest %.2f × change intensity %.2f)",
			c.Term.Local(), c.UserWeight, c.ItemScore)
	}
	return fmt.Sprintf("%s matches your interests through %s.",
		it.ID(), strings.Join(parts, " and "))
}
