package recommend

import (
	"fmt"

	"evorec/internal/profile"
)

// Learner closes the paper's human-in-the-loop: users both consume
// recommendations and, through their reactions, generate the data the next
// recommendations are computed from. Accepting a measure pulls the user's
// interest vector toward the entities that measure highlights; rejecting
// pushes it away. The updates are bounded multiplicative/additive steps so
// profiles stay stable under noisy feedback.
type Learner struct {
	// Rate is the learning rate in (0, 1].
	Rate float64
}

// NewLearner validates the rate and returns a learner.
func NewLearner(rate float64) (*Learner, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("recommend: learning rate must be in (0,1], got %g", rate)
	}
	return &Learner{Rate: rate}, nil
}

// Accept records positive feedback: the user engaged with the measure, so
// interest grows on every entity the measure highlights, proportional to
// the highlight strength. The measure is also marked seen (feeding
// novelty-aware diversity).
func (l *Learner) Accept(u *profile.Profile, it Item) {
	for t, score := range it.Vector {
		if score <= 0 {
			continue
		}
		u.SetInterest(t, u.InterestIn(t)+l.Rate*score)
	}
	u.MarkSeen(it.ID())
}

// Reject records negative feedback: interest decays multiplicatively on
// the highlighted entities; weights below a small floor are dropped so
// rejected topics eventually leave the profile. The measure is marked seen.
func (l *Learner) Reject(u *profile.Profile, it Item) {
	const floor = 1e-6
	for t, score := range it.Vector {
		if score <= 0 {
			continue
		}
		w := u.InterestIn(t) * (1 - l.Rate*score)
		if w < floor {
			w = 0
		}
		u.SetInterest(t, w)
	}
	u.MarkSeen(it.ID())
}
