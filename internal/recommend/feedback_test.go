package recommend

import (
	"testing"

	"evorec/internal/rdf"
)

func TestNewLearnerValidation(t *testing.T) {
	for _, rate := range []float64{0, -0.5, 1.5} {
		if _, err := NewLearner(rate); err == nil {
			t.Fatalf("rate %g must be rejected", rate)
		}
	}
	if _, err := NewLearner(0.2); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptPullsInterestTowardMeasure(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("D"): 0.5}) // mild semD fan
	l, _ := NewLearner(0.3)
	before := Relatedness(u, items[0]) // countA: no overlap yet
	l.Accept(u, items[0])
	after := Relatedness(u, items[0])
	if after <= before {
		t.Fatalf("accepting a measure must raise its relatedness: %g -> %g", before, after)
	}
	if u.InterestIn(term("A")) == 0 {
		t.Fatal("accept must create interest in the measure's entities")
	}
	if u.SeenCount("countA") != 1 {
		t.Fatal("accept must mark the measure seen")
	}
}

func TestRepeatedAcceptConverges(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("F"): 1})
	l, _ := NewLearner(0.2)
	prev := Relatedness(u, items[0])
	for i := 0; i < 10; i++ {
		l.Accept(u, items[0])
		cur := Relatedness(u, items[0])
		if cur < prev-1e-9 {
			t.Fatalf("relatedness must be non-decreasing under repeated accepts: %g -> %g", prev, cur)
		}
		prev = cur
	}
	if prev < 0.5 {
		t.Fatalf("after 10 accepts relatedness = %g, want substantial", prev)
	}
}

func TestRejectDecaysAndDrops(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1, term("F"): 1})
	l, _ := NewLearner(0.5)
	before := Relatedness(u, items[0])
	l.Reject(u, items[0])
	after := Relatedness(u, items[0])
	if after >= before {
		t.Fatalf("rejecting must lower relatedness: %g -> %g", before, after)
	}
	// F untouched (not highlighted by countA).
	if u.InterestIn(term("F")) != 1 {
		t.Fatal("reject must not touch unrelated interests")
	}
	// Repeated rejection drives the interest to zero (floor drop).
	for i := 0; i < 60; i++ {
		l.Reject(u, items[0])
	}
	if u.InterestIn(term("A")) != 0 {
		t.Fatalf("interest after massive rejection = %g, want 0", u.InterestIn(term("A")))
	}
	if u.SeenCount("countA") != 61 {
		t.Fatalf("seen count = %d", u.SeenCount("countA"))
	}
}

func TestFeedbackShiftsFutureRecommendations(t *testing.T) {
	items := testItems()
	u := userWith(map[rdf.Term]float64{term("A"): 1})
	l, _ := NewLearner(0.4)
	first := TopK(u, items, 1)[0].MeasureID // countA
	// The user consistently rejects it and accepts the semantic view.
	for i := 0; i < 8; i++ {
		it, _ := itemByID(items, first)
		l.Reject(u, it)
		sem, _ := itemByID(items, "semD")
		l.Accept(u, sem)
	}
	now := TopK(u, items, 1)[0].MeasureID
	if now == first {
		t.Fatalf("feedback must eventually change the top recommendation (still %s)", now)
	}
}
