package archive

import (
	"os"
	"path/filepath"
	"testing"

	"evorec/internal/rdf"
	"evorec/internal/synth"
)

func chain(t *testing.T, steps int) *rdf.VersionStore {
	t.Helper()
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 50, Locality: 0.8}, steps, 23)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func assertSameStore(t *testing.T, want, got *rdf.VersionStore) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("version count = %d, want %d", got.Len(), want.Len())
	}
	for i, id := range want.IDs() {
		if got.IDs()[i] != id {
			t.Fatalf("version order differs at %d: %s vs %s", i, got.IDs()[i], id)
		}
		wg, _ := want.Get(id)
		gg, _ := got.Get(id)
		if gg.Graph.Len() != wg.Graph.Len() {
			t.Fatalf("version %s size = %d, want %d", id, gg.Graph.Len(), wg.Graph.Len())
		}
		for _, tr := range wg.Graph.Triples() {
			if !gg.Graph.Has(tr) {
				t.Fatalf("version %s lost %v", id, tr)
			}
		}
	}
}

func TestRoundTripAllPolicies(t *testing.T) {
	vs := chain(t, 5)
	for _, policy := range []Policy{FullSnapshots, DeltaChain, Hybrid} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			man, err := Save(dir, vs, Options{Policy: policy, SnapshotEvery: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(man.Entries) != vs.Len() {
				t.Fatalf("manifest entries = %d, want %d", len(man.Entries), vs.Len())
			}
			back, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			assertSameStore(t, vs, back)
		})
	}
}

func TestPolicyEntryKinds(t *testing.T) {
	vs := chain(t, 5) // 6 versions
	dir := t.TempDir()

	man, err := Save(dir, vs, Options{Policy: FullSnapshots})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range man.Entries {
		if e.Kind != "snapshot" {
			t.Fatalf("full_snapshots must store only snapshots, got %s", e.Kind)
		}
	}

	man, err = Save(t.TempDir(), vs, Options{Policy: DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	if man.Entries[0].Kind != "snapshot" {
		t.Fatal("delta chain must start with a snapshot")
	}
	for _, e := range man.Entries[1:] {
		if e.Kind != "delta" {
			t.Fatalf("delta chain tail must be deltas, got %s", e.Kind)
		}
	}

	man, err = Save(t.TempDir(), vs, Options{Policy: Hybrid, SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	snapshots := 0
	for i, e := range man.Entries {
		if i%3 == 0 {
			if e.Kind != "snapshot" {
				t.Fatalf("hybrid entry %d must be a snapshot", i)
			}
			snapshots++
		} else if e.Kind != "delta" {
			t.Fatalf("hybrid entry %d must be a delta", i)
		}
	}
	if snapshots != 2 {
		t.Fatalf("hybrid with period 3 over 6 versions: %d snapshots, want 2", snapshots)
	}
}

func TestDeltaChainSmallerThanSnapshots(t *testing.T) {
	vs := chain(t, 5)
	dirFull, dirDelta := t.TempDir(), t.TempDir()
	manFull, err := Save(dirFull, vs, Options{Policy: FullSnapshots})
	if err != nil {
		t.Fatal(err)
	}
	manDelta, err := Save(dirDelta, vs, Options{Policy: DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	sizeFull, err := DiskUsage(dirFull, manFull)
	if err != nil {
		t.Fatal(err)
	}
	sizeDelta, err := DiskUsage(dirDelta, manDelta)
	if err != nil {
		t.Fatal(err)
	}
	if sizeDelta >= sizeFull {
		t.Fatalf("delta chain (%d B) must be smaller than full snapshots (%d B)",
			sizeDelta, sizeFull)
	}
}

func TestSaveEmptyStoreFails(t *testing.T) {
	if _, err := Save(t.TempDir(), rdf.NewVersionStore(), Options{}); err == nil {
		t.Fatal("empty store must fail")
	}
}

func TestLoadErrors(t *testing.T) {
	// Missing manifest.
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("missing manifest must fail")
	}
	// Corrupt manifest.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{oops"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt manifest must fail")
	}
	// Delta without base.
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "manifest.json"),
		[]byte(`{"policy":"delta_chain","entries":[{"id":"v1","kind":"delta","file":"v1.delta"}]}`), 0o644)
	os.WriteFile(filepath.Join(dir2, "v1.delta"), []byte(""), 0o644)
	if _, err := Load(dir2); err == nil {
		t.Fatal("delta with no base must fail")
	}
	// Unknown kind.
	dir3 := t.TempDir()
	os.WriteFile(filepath.Join(dir3, "manifest.json"),
		[]byte(`{"policy":"x","entries":[{"id":"v1","kind":"weird","file":"v1.x"}]}`), 0o644)
	if _, err := Load(dir3); err == nil {
		t.Fatal("unknown entry kind must fail")
	}
	// Missing referenced file.
	dir4 := t.TempDir()
	os.WriteFile(filepath.Join(dir4, "manifest.json"),
		[]byte(`{"policy":"full_snapshots","entries":[{"id":"v1","kind":"snapshot","file":"v1.nt"}]}`), 0o644)
	if _, err := Load(dir4); err == nil {
		t.Fatal("missing snapshot file must fail")
	}
}

func TestMalformedDeltaLines(t *testing.T) {
	dir := t.TempDir()
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.SchemaIRI("A"), rdf.RDFType, rdf.RDFSClass))
	vs := rdf.NewVersionStore()
	vs.Add(&rdf.Version{ID: "v1", Graph: g})
	g2 := g.Clone()
	g2.Add(rdf.T(rdf.SchemaIRI("B"), rdf.RDFType, rdf.RDFSClass))
	vs.Add(&rdf.Version{ID: "v2", Graph: g2})
	if _, err := Save(dir, vs, Options{Policy: DeltaChain}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the delta payload.
	path := filepath.Join(dir, "v2.delta")
	os.WriteFile(path, []byte("X not a delta line\n"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Fatal("malformed delta line must fail")
	}
	os.WriteFile(path, []byte("A broken triple\n"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Fatal("unparseable triple in delta must fail")
	}
}

func TestPolicyStrings(t *testing.T) {
	if FullSnapshots.String() != "full_snapshots" || DeltaChain.String() != "delta_chain" ||
		Hybrid.String() != "hybrid" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy must render")
	}
}

func TestDiskUsageMissingFile(t *testing.T) {
	man := &Manifest{Entries: []Entry{{File: "ghost.nt"}}}
	if _, err := DiskUsage(t.TempDir(), man); err == nil {
		t.Fatal("missing file must fail DiskUsage")
	}
}
