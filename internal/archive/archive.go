// Package archive persists evolving datasets to disk under configurable
// archiving policies — full snapshots per version, a delta chain over one
// base snapshot, or a hybrid with periodic snapshots. The paper builds on
// archiving-policy work for evolving RDF datasets (its reference [13]); this
// package supplies that substrate and the A3 ablation compares the policies
// on storage footprint and reconstruction cost.
//
// On-disk layout (Text codec): a directory with manifest.json plus one file
// per entry — vN.nt (sorted N-Triples) for snapshots, vN.delta for deltas. A
// delta file holds one change per line: "A <triple> ." for additions and
// "D <triple> ." for deletions.
//
// The Binary codec routes the same policies through internal/store's
// dictionary-native segment format: the string table is written once and
// every version is varint-packed ID-triples, so loads skip parsing and
// re-interning entirely. Load auto-detects the codec from the manifest, so
// callers read both layouts through one entry point.
package archive

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"evorec/internal/delta"
	"evorec/internal/rdf"
	"evorec/internal/store"
)

// Policy selects how versions are materialized on disk.
type Policy uint8

const (
	// FullSnapshots stores every version as a complete N-Triples file:
	// maximum storage, O(1) single-version access.
	FullSnapshots Policy = iota
	// DeltaChain stores the first version as a snapshot and every further
	// version as a delta over its predecessor: minimum storage, O(chain)
	// reconstruction.
	DeltaChain
	// Hybrid stores a snapshot every SnapshotEvery versions and deltas in
	// between, bounding both storage and reconstruction cost.
	Hybrid
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FullSnapshots:
		return "full_snapshots"
	case DeltaChain:
		return "delta_chain"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Codec selects the on-disk encoding of an archive.
type Codec uint8

const (
	// Text stores N-Triples snapshots and line-based delta files —
	// interoperable with any RDF tooling, at the cost of re-parsing and
	// re-interning every load.
	Text Codec = iota
	// Binary stores dictionary-native segments via internal/store: the
	// string table once, then varint-packed ID-triples per version, CRC32-
	// checked. Smaller and much faster to load; evorec-specific.
	Binary
)

// String names the codec.
func (c Codec) String() string {
	switch c {
	case Text:
		return "text"
	case Binary:
		return "binary"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// Options parameterize Save.
type Options struct {
	// Policy selects the archiving policy.
	Policy Policy
	// SnapshotEvery is the snapshot period for Hybrid (default 4).
	SnapshotEvery int
	// Codec selects the on-disk encoding (default Text).
	Codec Codec
}

// Entry describes one archived version in the manifest.
type Entry struct {
	// ID is the version ID.
	ID string `json:"id"`
	// Kind is "snapshot" or "delta".
	Kind string `json:"kind"`
	// File is the entry's file name within the archive directory.
	File string `json:"file"`
	// Triples is the snapshot size (snapshots only).
	Triples int `json:"triples,omitempty"`
	// Added and Deleted are the delta sizes (deltas only).
	Added   int `json:"added,omitempty"`
	Deleted int `json:"deleted,omitempty"`
}

// Manifest is the archive's index, stored as manifest.json.
type Manifest struct {
	// Policy records the archiving policy used.
	Policy string `json:"policy"`
	// Codec records the on-disk encoding; empty means text. For Binary
	// archives the manifest on disk is the store's own (carrying its format
	// tag); this view exists for DiskUsage and callers' bookkeeping.
	Codec string `json:"codec,omitempty"`
	// Entries lists the archived versions in evolution order.
	Entries []Entry `json:"entries"`
}

const manifestName = "manifest.json"

// Save writes the version store to dir under the given policy and returns
// the manifest. The directory is created if missing; existing archive files
// are overwritten.
func Save(dir string, vs *rdf.VersionStore, opt Options) (*Manifest, error) {
	if vs.Len() == 0 {
		return nil, fmt.Errorf("archive: nothing to save")
	}
	if opt.Codec == Binary {
		return saveBinary(dir, vs, opt)
	}
	every := opt.SnapshotEvery
	if every <= 0 {
		every = 4
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: creating %s: %w", dir, err)
	}
	man := &Manifest{Policy: opt.Policy.String()}
	ids := vs.IDs()
	for i, id := range ids {
		v, _ := vs.Get(id)
		snapshot := i == 0 || opt.Policy == FullSnapshots ||
			(opt.Policy == Hybrid && i%every == 0)
		if snapshot {
			name := id + ".nt"
			if err := writeSnapshot(filepath.Join(dir, name), v.Graph); err != nil {
				return nil, err
			}
			man.Entries = append(man.Entries, Entry{
				ID: id, Kind: "snapshot", File: name, Triples: v.Graph.Len(),
			})
			continue
		}
		prev, _ := vs.Get(ids[i-1])
		d := delta.Compute(prev.Graph, v.Graph)
		name := id + ".delta"
		if err := writeDelta(filepath.Join(dir, name), d); err != nil {
			return nil, err
		}
		man.Entries = append(man.Entries, Entry{
			ID: id, Kind: "delta", File: name,
			Added: len(d.Added), Deleted: len(d.Deleted),
		})
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("archive: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
		return nil, fmt.Errorf("archive: writing manifest: %w", err)
	}
	return man, nil
}

func writeSnapshot(path string, g *rdf.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("archive: creating snapshot: %w", err)
	}
	if err := rdf.WriteNTriples(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeDelta(path string, d *delta.Delta) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("archive: creating delta: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, t := range d.Added {
		fmt.Fprintf(w, "A %s\n", t)
	}
	for _, t := range d.Deleted {
		fmt.Fprintf(w, "D %s\n", t)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("archive: writing delta: %w", err)
	}
	return f.Close()
}

// saveBinary routes a Binary-codec save through the segment store and
// returns an archive-level view of its manifest (the dictionary segment
// rides along as a "dict" entry so DiskUsage accounts for it).
func saveBinary(dir string, vs *rdf.VersionStore, opt Options) (*Manifest, error) {
	sman, err := store.Save(dir, vs, store.Options{
		Policy:        storePolicy(opt.Policy),
		SnapshotEvery: opt.SnapshotEvery,
	})
	if err != nil {
		return nil, err
	}
	man := &Manifest{Policy: sman.Policy, Codec: Binary.String()}
	man.Entries = append(man.Entries, Entry{ID: "dict", Kind: "dict", File: sman.Dict.File})
	for _, e := range sman.Entries {
		man.Entries = append(man.Entries, Entry{
			ID: e.ID, Kind: e.Kind, File: e.File,
			Triples: e.Triples, Added: e.Added, Deleted: e.Deleted,
		})
	}
	return man, nil
}

// storePolicy maps an archive policy onto the segment store's mirror type.
func storePolicy(p Policy) store.Policy {
	switch p {
	case FullSnapshots:
		return store.FullSnapshots
	case Hybrid:
		return store.Hybrid
	default:
		return store.DeltaChain
	}
}

// Load reads an archive directory back into a version store, reconstructing
// delta entries by applying them to the previous version. Binary-codec
// directories (written by Save with Codec: Binary, or store.Save directly)
// are detected from the manifest and routed through the segment store.
func Load(dir string) (*rdf.VersionStore, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("archive: reading manifest: %w", err)
	}
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("archive: decoding manifest: %w", err)
	}
	if probe.Format == store.FormatV1 {
		ds, err := store.Open(dir)
		if err != nil {
			return nil, err
		}
		return ds.VersionStore()
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("archive: decoding manifest: %w", err)
	}
	vs := rdf.NewVersionStore()
	// One dictionary across the whole chain: IDs stay stable between loaded
	// versions, so the delta engine keeps its encoded fast path after a
	// round-trip through the archive.
	dict := rdf.NewDict()
	var prev *rdf.Graph
	for i, e := range man.Entries {
		path := filepath.Join(dir, e.File)
		var g *rdf.Graph
		switch e.Kind {
		case "snapshot":
			g, err = readSnapshot(path, dict)
			if err != nil {
				return nil, err
			}
		case "delta":
			if prev == nil {
				return nil, fmt.Errorf("archive: entry %d (%s) is a delta with no base", i, e.ID)
			}
			d, err := readDelta(path)
			if err != nil {
				return nil, err
			}
			// Encoding against the chain dict lets Apply replay the change
			// lists as integer index operations instead of re-interning
			// every term of every changed triple.
			d.Encode(dict)
			g = prev.Clone()
			d.Apply(g)
		default:
			return nil, fmt.Errorf("archive: entry %d has unknown kind %q", i, e.Kind)
		}
		if err := vs.Add(&rdf.Version{ID: e.ID, Graph: g}); err != nil {
			return nil, err
		}
		prev = g
	}
	return vs, nil
}

func readSnapshot(path string, dict *rdf.Dict) (*rdf.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("archive: opening snapshot: %w", err)
	}
	defer f.Close()
	g := rdf.NewGraphWithDict(dict)
	if err := rdf.ReadNTriplesInto(g, f); err != nil {
		return nil, fmt.Errorf("archive: parsing %s: %w", path, err)
	}
	return g, nil
}

func readDelta(path string) (*delta.Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("archive: opening delta: %w", err)
	}
	defer f.Close()
	d := &delta.Delta{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		if len(text) < 2 || (text[0] != 'A' && text[0] != 'D') || text[1] != ' ' {
			return nil, fmt.Errorf("archive: %s:%d: malformed delta line", path, line)
		}
		t, ok, err := rdf.ParseTripleLine(text[2:], line)
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", path, err)
		}
		if !ok {
			return nil, fmt.Errorf("archive: %s:%d: empty delta payload", path, line)
		}
		if text[0] == 'A' {
			d.Added = append(d.Added, t)
		} else {
			d.Deleted = append(d.Deleted, t)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("archive: reading %s: %w", path, err)
	}
	return d, nil
}

// DiskUsage sums the file sizes of the archive's entries plus manifest, for
// the storage-footprint comparisons in A3.
func DiskUsage(dir string, man *Manifest) (int64, error) {
	total := int64(0)
	files := []string{manifestName}
	for _, e := range man.Entries {
		files = append(files, e.File)
	}
	for _, name := range files {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return 0, fmt.Errorf("archive: stat %s: %w", name, err)
		}
		total += info.Size()
	}
	return total, nil
}
