package archive

import (
	"testing"

	"evorec/internal/delta"
	"evorec/internal/rdf"
)

// trickyChain builds a three-version chain whose literals exercise every
// escaping corner: quotes, backslashes, newlines, carriage returns, tabs,
// non-ASCII unicode (including an astral-plane rune), language tags and
// datatypes. The delta files must escape exactly like the snapshot writer,
// or reloading a delta chain diverges from reloading full snapshots.
func trickyChain(t *testing.T) *rdf.VersionStore {
	t.Helper()
	s := rdf.NewIRI("ex:s")
	p := rdf.NewIRI("ex:p")
	nasty := []rdf.Term{
		rdf.NewLiteral(`she said "hi"`),
		rdf.NewLiteral("line1\nline2\r\ttabbed"),
		rdf.NewLiteral(`back\slash and trailing \`),
		rdf.NewLiteral("unicode: δφπ — 漢字 𝄞"),
		rdf.NewLangLiteral("größe \"quoted\"\n", "de"),
		rdf.NewTypedLiteral("1\t2", "http://www.w3.org/2001/XMLSchema#string"),
	}
	g1 := rdf.NewGraph()
	for _, o := range nasty[:4] {
		g1.Add(rdf.T(s, p, o))
	}
	// v2 deletes two nasty literals and adds two more, so the delta files
	// must serialize them; v3 churns again on top.
	g2 := g1.Clone()
	g2.Remove(rdf.T(s, p, nasty[0]))
	g2.Remove(rdf.T(s, p, nasty[1]))
	g2.Add(rdf.T(s, p, nasty[4]))
	g2.Add(rdf.T(s, p, nasty[5]))
	g3 := g2.Clone()
	g3.Remove(rdf.T(s, p, nasty[4]))
	g3.Add(rdf.T(s, p, nasty[1]))
	vs := rdf.NewVersionStore()
	for i, g := range []*rdf.Graph{g1, g2, g3} {
		if err := vs.Add(&rdf.Version{ID: []string{"v1", "v2", "v3"}[i], Graph: g}); err != nil {
			t.Fatal(err)
		}
	}
	return vs
}

func assertRoundTrip(t *testing.T, vs *rdf.VersionStore, opt Options) {
	t.Helper()
	dir := t.TempDir()
	if _, err := Save(dir, vs, opt); err != nil {
		t.Fatalf("%s/%s: %v", opt.Policy, opt.Codec, err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatalf("%s/%s: %v", opt.Policy, opt.Codec, err)
	}
	if back.Len() != vs.Len() {
		t.Fatalf("%s/%s: reloaded %d versions, want %d", opt.Policy, opt.Codec, back.Len(), vs.Len())
	}
	for _, id := range vs.IDs() {
		want, _ := vs.Get(id)
		got, ok := back.Get(id)
		if !ok {
			t.Fatalf("%s/%s: version %s missing after reload", opt.Policy, opt.Codec, id)
		}
		if d := delta.Compute(want.Graph, got.Graph); !d.IsEmpty() {
			t.Fatalf("%s/%s: version %s diverged after round-trip:\n+%v\n-%v",
				opt.Policy, opt.Codec, id, d.Added, d.Deleted)
		}
	}
}

// TestTextRoundTripTrickyLiterals locks the text codec's escaping: literals
// with quotes, newlines and unicode must survive save/load bit-identically
// under every policy — in particular through the delta files, whose writer
// (writeDelta via Triple.String) must escape exactly like WriteNTriples.
func TestTextRoundTripTrickyLiterals(t *testing.T) {
	vs := trickyChain(t)
	for _, pol := range []Policy{FullSnapshots, DeltaChain, Hybrid} {
		t.Run(pol.String(), func(t *testing.T) {
			assertRoundTrip(t, vs, Options{Policy: pol, SnapshotEvery: 2})
		})
	}
}

// TestBinaryRoundTripTrickyLiterals runs the same chain through the binary
// codec, which stores raw UTF-8 in the string table and needs no escaping.
func TestBinaryRoundTripTrickyLiterals(t *testing.T) {
	vs := trickyChain(t)
	for _, pol := range []Policy{FullSnapshots, DeltaChain, Hybrid} {
		t.Run(pol.String(), func(t *testing.T) {
			assertRoundTrip(t, vs, Options{Policy: pol, SnapshotEvery: 2, Codec: Binary})
		})
	}
}

// TestBinaryCodecSmallerFootprint pins the headline property: for the same
// chain and policy, the binary codec must occupy fewer bytes than text.
func TestBinaryCodecSmallerFootprint(t *testing.T) {
	vs := trickyChain(t)
	sizes := make(map[Codec]int64)
	for _, codec := range []Codec{Text, Binary} {
		dir := t.TempDir()
		man, err := Save(dir, vs, Options{Policy: DeltaChain, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		if codec == Binary && man.Codec != "binary" {
			t.Fatalf("binary manifest view codec = %q", man.Codec)
		}
		size, err := DiskUsage(dir, man)
		if err != nil {
			t.Fatal(err)
		}
		sizes[codec] = size
	}
	if sizes[Binary] >= sizes[Text] {
		t.Fatalf("binary codec = %d bytes, text = %d; binary must be smaller",
			sizes[Binary], sizes[Text])
	}
}

// TestLoadSharedDictFastPath asserts the reloaded chain supports ID-level
// diffing regardless of codec — the property the whole substrate exists for.
func TestLoadSharedDictFastPath(t *testing.T) {
	vs := trickyChain(t)
	for _, codec := range []Codec{Text, Binary} {
		dir := t.TempDir()
		if _, err := Save(dir, vs, Options{Policy: Hybrid, SnapshotEvery: 2, Codec: codec}); err != nil {
			t.Fatal(err)
		}
		back, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := delta.ComputeIDs(back.At(0).Graph, back.At(back.Len()-1).Graph); !ok {
			t.Fatalf("codec %s: reloaded versions must share one dictionary", codec)
		}
	}
}
