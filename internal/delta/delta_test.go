package delta

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"evorec/internal/rdf"
)

func tri(i int) rdf.Triple {
	return rdf.T(
		rdf.ResourceIRI(fmt.Sprintf("s%d", i%10)),
		rdf.SchemaIRI(fmt.Sprintf("p%d", i%4)),
		rdf.ResourceIRI(fmt.Sprintf("o%d", i)),
	)
}

func TestComputeBasic(t *testing.T) {
	older, newer := rdf.NewGraph(), rdf.NewGraph()
	shared := tri(0)
	removed := tri(1)
	added := tri(2)
	older.Add(shared)
	older.Add(removed)
	newer.Add(shared)
	newer.Add(added)

	d := Compute(older, newer)
	if len(d.Added) != 1 || d.Added[0] != added {
		t.Fatalf("Added = %v", d.Added)
	}
	if len(d.Deleted) != 1 || d.Deleted[0] != removed {
		t.Fatalf("Deleted = %v", d.Deleted)
	}
	if d.Size() != 2 || d.IsEmpty() {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestComputeIdenticalGraphs(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 20; i++ {
		g.Add(tri(i))
	}
	d := Compute(g, g.Clone())
	if !d.IsEmpty() {
		t.Fatalf("delta of identical graphs must be empty, got %d changes", d.Size())
	}
}

func TestComputeVersionsLabels(t *testing.T) {
	v1 := &rdf.Version{ID: "v1", Graph: rdf.NewGraph()}
	v2 := &rdf.Version{ID: "v2", Graph: rdf.NewGraph()}
	v2.Graph.Add(tri(0))
	d := ComputeVersions(v1, v2)
	if d.OlderID != "v1" || d.NewerID != "v2" {
		t.Fatalf("version labels = %q,%q", d.OlderID, d.NewerID)
	}
}

func TestApplyReconstructsNewer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	older, newer := rdf.NewGraph(), rdf.NewGraph()
	for i := 0; i < 60; i++ {
		tr := tri(rng.Intn(80))
		if rng.Intn(2) == 0 {
			older.Add(tr)
		}
		if rng.Intn(2) == 0 {
			newer.Add(tr)
		}
	}
	d := Compute(older, newer)
	rebuilt := older.Clone()
	d.Apply(rebuilt)
	if rebuilt.Len() != newer.Len() {
		t.Fatalf("rebuilt len = %d, want %d", rebuilt.Len(), newer.Len())
	}
	for _, tr := range newer.Triples() {
		if !rebuilt.Has(tr) {
			t.Fatalf("rebuilt graph missing %v", tr)
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	older, newer := rdf.NewGraph(), rdf.NewGraph()
	older.Add(tri(1))
	older.Add(tri(2))
	newer.Add(tri(2))
	newer.Add(tri(3))
	d := Compute(older, newer)
	inv := d.Invert()
	if inv.OlderID != d.NewerID || inv.NewerID != d.OlderID {
		t.Fatal("Invert must swap version IDs")
	}
	back := newer.Clone()
	inv.Apply(back)
	if back.Len() != older.Len() {
		t.Fatalf("inverted apply len = %d, want %d", back.Len(), older.Len())
	}
	for _, tr := range older.Triples() {
		if !back.Has(tr) {
			t.Fatalf("inverted apply missing %v", tr)
		}
	}
}

// Property: for arbitrary graph pairs, |δ| = |A\B| + |B\A| and Apply
// reconstructs exactly.
func TestDeltaSetAlgebraProperty(t *testing.T) {
	f := func(olderIdx, newerIdx []uint8) bool {
		older, newer := rdf.NewGraph(), rdf.NewGraph()
		for _, i := range olderIdx {
			older.Add(tri(int(i % 50)))
		}
		for _, i := range newerIdx {
			newer.Add(tri(int(i % 50)))
		}
		d := Compute(older, newer)
		// Disjointness of added/deleted.
		dset := make(map[rdf.Triple]bool)
		for _, tr := range d.Deleted {
			dset[tr] = true
		}
		for _, tr := range d.Added {
			if dset[tr] {
				return false
			}
		}
		rebuilt := older.Clone()
		d.Apply(rebuilt)
		if rebuilt.Len() != newer.Len() {
			return false
		}
		for _, tr := range newer.Triples() {
			if !rebuilt.Has(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAttribution(t *testing.T) {
	older, newer := rdf.NewGraph(), rdf.NewGraph()
	a, b := rdf.SchemaIRI("A"), rdf.SchemaIRI("B")
	p := rdf.SchemaIRI("p")
	// Added: (A p B), (A p A-literal). Deleted: (B p B).
	newer.Add(rdf.T(a, p, b))
	newer.Add(rdf.T(a, p, rdf.NewLiteral("x")))
	older.Add(rdf.T(b, p, b))

	d := Compute(older, newer)
	attr := Attribute(d)

	if got := attr.Changes(a); got.Added != 2 || got.Deleted != 0 {
		t.Fatalf("δ(A) = %+v, want {2 0}", got)
	}
	if got := attr.Changes(b); got.Added != 1 || got.Deleted != 1 {
		t.Fatalf("δ(B) = %+v, want {1 1}", got)
	}
	if got := attr.Changes(p); got.Total() != 3 {
		t.Fatalf("δ(p).Total = %d, want 3", got.Total())
	}
	if got := attr.Changes(rdf.SchemaIRI("unused")); got.Total() != 0 {
		t.Fatalf("δ(unused) = %+v, want zero", got)
	}
}

func TestAttributionCountsTripleOncePerTerm(t *testing.T) {
	// A triple mentioning the same term twice must count once for that term.
	older, newer := rdf.NewGraph(), rdf.NewGraph()
	c := rdf.SchemaIRI("C")
	newer.Add(rdf.T(c, rdf.RDFSSubClassOf, c))
	attr := Attribute(Compute(older, newer))
	if got := attr.Changes(c); got.Added != 1 {
		t.Fatalf("self-referential triple counted %d times, want 1", got.Added)
	}
}

func TestAttributionTermsSortedAndLen(t *testing.T) {
	older, newer := rdf.NewGraph(), rdf.NewGraph()
	newer.Add(tri(3))
	newer.Add(tri(7))
	attr := Attribute(Compute(older, newer))
	terms := attr.Terms()
	if len(terms) != attr.Len() {
		t.Fatalf("Terms()=%d Len()=%d", len(terms), attr.Len())
	}
	for i := 1; i < len(terms); i++ {
		if terms[i-1].Compare(terms[i]) >= 0 {
			t.Fatal("Terms() must be sorted")
		}
	}
}

func TestNeighborhoodChanges(t *testing.T) {
	older, newer := rdf.NewGraph(), rdf.NewGraph()
	a, b, c := rdf.SchemaIRI("A"), rdf.SchemaIRI("B"), rdf.SchemaIRI("C")
	p := rdf.SchemaIRI("p")
	newer.Add(rdf.T(a, p, rdf.NewLiteral("1"))) // 1 change on A
	newer.Add(rdf.T(b, p, rdf.NewLiteral("2"))) // 1 change on B
	older.Add(rdf.T(b, p, rdf.NewLiteral("0"))) // 1 more change on B
	attr := Attribute(Compute(older, newer))

	if got := attr.NeighborhoodChanges([]rdf.Term{a, b}); got != 3 {
		t.Fatalf("neighborhood changes = %d, want 3", got)
	}
	if got := attr.NeighborhoodChanges([]rdf.Term{c}); got != 0 {
		t.Fatalf("empty neighborhood changes = %d, want 0", got)
	}
	if got := attr.NeighborhoodChanges(nil); got != 0 {
		t.Fatalf("nil neighborhood changes = %d, want 0", got)
	}
}

func TestAddedDeletedGraphs(t *testing.T) {
	older, newer := rdf.NewGraph(), rdf.NewGraph()
	older.Add(tri(1))
	older.Add(tri(2))
	newer.Add(tri(2))
	newer.Add(tri(3))
	d := Compute(older, newer)
	ag, dg := d.AddedGraph(), d.DeletedGraph()
	if ag.Len() != 1 || !ag.Has(tri(3)) {
		t.Fatalf("AddedGraph = %v", ag.Triples())
	}
	if dg.Len() != 1 || !dg.Has(tri(1)) {
		t.Fatalf("DeletedGraph = %v", dg.Triples())
	}
}
