package delta

import (
	"fmt"
	"math/rand"
	"testing"

	"evorec/internal/rdf"
)

// buildVersionPair makes two graphs sharing one dictionary: a base graph
// plus a mutated clone, mimicking how synth and the archive produce version
// chains.
func buildVersionPair(n int, seed int64) (*rdf.Graph, *rdf.Graph) {
	rng := rand.New(rand.NewSource(seed))
	older := rdf.NewGraph()
	older.Grow(n)
	for i := 0; i < n; i++ {
		older.Add(rdf.T(
			rdf.NewIRI(fmt.Sprintf("http://x/i%d", rng.Intn(n/2+1))),
			rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(10))),
			rdf.NewIRI(fmt.Sprintf("http://x/i%d", rng.Intn(n/2+1))),
		))
	}
	newer := older.Clone()
	ts := older.Triples()
	for i := 0; i < n/10+1 && i < len(ts); i++ {
		newer.Remove(ts[rng.Intn(len(ts))])
		newer.Add(rdf.T(
			rdf.NewIRI(fmt.Sprintf("http://x/new%d", i)),
			rdf.NewIRI("http://x/p0"),
			rdf.NewIRI(fmt.Sprintf("http://x/i%d", rng.Intn(n/2+1))),
		))
	}
	return older, newer
}

func sameDelta(t *testing.T, a, b *Delta) {
	t.Helper()
	if len(a.Added) != len(b.Added) || len(a.Deleted) != len(b.Deleted) {
		t.Fatalf("delta sizes differ: +%d/-%d vs +%d/-%d",
			len(a.Added), len(a.Deleted), len(b.Added), len(b.Deleted))
	}
	for i := range a.Added {
		if a.Added[i] != b.Added[i] {
			t.Fatalf("Added[%d] differs: %v vs %v", i, a.Added[i], b.Added[i])
		}
	}
	for i := range a.Deleted {
		if a.Deleted[i] != b.Deleted[i] {
			t.Fatalf("Deleted[%d] differs: %v vs %v", i, a.Deleted[i], b.Deleted[i])
		}
	}
}

func TestComputeParallelMatchesCompute(t *testing.T) {
	for _, n := range []int{0, 50, 500, 6000} {
		older, newer := buildVersionPair(n, int64(n)+1)
		sameDelta(t, Compute(older, newer), ComputeParallel(older, newer))
	}
}

func TestComputeParallelDistinctDicts(t *testing.T) {
	// Graphs with unrelated dictionaries must still produce a correct delta
	// via the fallback path.
	older, _ := buildVersionPair(300, 3)
	newer := rdf.NewGraph() // its own dict
	for _, tr := range older.Triples()[:200] {
		newer.Add(tr)
	}
	newer.Add(rdf.T(rdf.NewIRI("http://x/extra"), rdf.NewIRI("http://x/p0"), rdf.NewIRI("http://x/extra2")))
	sameDelta(t, Compute(older, newer), ComputeParallel(older, newer))
	d := Compute(older, newer)
	// Sanity: applying the delta to a clone of older yields newer.
	g := older.Clone()
	d.Apply(g)
	if g.Len() != newer.Len() {
		t.Fatalf("apply mismatch: %d vs %d", g.Len(), newer.Len())
	}
	for _, tr := range newer.Triples() {
		if !g.Has(tr) {
			t.Fatalf("applied graph missing %v", tr)
		}
	}
}
