package delta

import (
	"testing"

	"evorec/internal/rdf"
)

// buildBase creates a schema with classes A <- B and property p: B -> A,
// plus two instances of B.
func buildBase() *rdf.Graph {
	g := rdf.NewGraph()
	a, b, p := rdf.SchemaIRI("A"), rdf.SchemaIRI("B"), rdf.SchemaIRI("p")
	g.Add(rdf.T(a, rdf.RDFType, rdf.RDFSClass))
	g.Add(rdf.T(b, rdf.RDFType, rdf.RDFSClass))
	g.Add(rdf.T(b, rdf.RDFSSubClassOf, a))
	g.Add(rdf.T(p, rdf.RDFType, rdf.RDFProperty))
	g.Add(rdf.T(p, rdf.RDFSDomain, b))
	g.Add(rdf.T(p, rdf.RDFSRange, a))
	g.Add(rdf.T(rdf.ResourceIRI("x1"), rdf.RDFType, b))
	g.Add(rdf.T(rdf.ResourceIRI("x2"), rdf.RDFType, b))
	return g
}

func kinds(cs []HighLevelChange) map[ChangeKind]int { return CountByKind(cs) }

func TestDetectNoChanges(t *testing.T) {
	g := buildBase()
	cs := DetectHighLevel(g, g.Clone())
	if len(cs) != 0 {
		t.Fatalf("identical versions must yield no high-level changes, got %v", cs)
	}
}

func TestDetectClassAddedDeleted(t *testing.T) {
	older := buildBase()
	newer := older.Clone()
	c := rdf.SchemaIRI("C")
	newer.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
	cs := DetectHighLevel(older, newer)
	if kinds(cs)[ClassAdded] != 1 {
		t.Fatalf("want 1 class_added, got %v", cs)
	}
	// Reverse direction: deletion.
	cs = DetectHighLevel(newer, older)
	if kinds(cs)[ClassDeleted] != 1 {
		t.Fatalf("want 1 class_deleted, got %v", cs)
	}
}

func TestDetectPropertyAddedDeleted(t *testing.T) {
	older := buildBase()
	newer := older.Clone()
	q := rdf.SchemaIRI("q")
	newer.Add(rdf.T(q, rdf.RDFType, rdf.RDFProperty))
	cs := DetectHighLevel(older, newer)
	if kinds(cs)[PropertyAdded] != 1 {
		t.Fatalf("want 1 property_added, got %v", cs)
	}
	cs = DetectHighLevel(newer, older)
	if kinds(cs)[PropertyDeleted] != 1 {
		t.Fatalf("want 1 property_deleted, got %v", cs)
	}
}

func TestDetectSuperClassChanged(t *testing.T) {
	older := buildBase()
	newer := older.Clone()
	b, a := rdf.SchemaIRI("B"), rdf.SchemaIRI("A")
	c := rdf.SchemaIRI("C")
	newer.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
	newer.Remove(rdf.T(b, rdf.RDFSSubClassOf, a))
	newer.Add(rdf.T(b, rdf.RDFSSubClassOf, c))
	cs := DetectHighLevel(older, newer)
	found := false
	for _, ch := range cs {
		if ch.Kind == SuperClassChanged && ch.Target == b {
			found = true
			if len(ch.From) != 1 || ch.From[0] != a || len(ch.To) != 1 || ch.To[0] != c {
				t.Fatalf("superclass change detail wrong: %v", ch)
			}
		}
	}
	if !found {
		t.Fatalf("superclass_changed not detected in %v", cs)
	}
}

func TestDetectDomainRangeChanged(t *testing.T) {
	older := buildBase()
	newer := older.Clone()
	p, a, b := rdf.SchemaIRI("p"), rdf.SchemaIRI("A"), rdf.SchemaIRI("B")
	newer.Remove(rdf.T(p, rdf.RDFSDomain, b))
	newer.Add(rdf.T(p, rdf.RDFSDomain, a))
	newer.Remove(rdf.T(p, rdf.RDFSRange, a))
	newer.Add(rdf.T(p, rdf.RDFSRange, b))
	k := kinds(DetectHighLevel(older, newer))
	if k[DomainChanged] != 1 || k[RangeChanged] != 1 {
		t.Fatalf("want domain_changed and range_changed, got %v", k)
	}
}

func TestDetectInstanceChanges(t *testing.T) {
	older := buildBase()
	newer := older.Clone()
	b := rdf.SchemaIRI("B")
	newer.Add(rdf.T(rdf.ResourceIRI("x3"), rdf.RDFType, b))
	newer.Add(rdf.T(rdf.ResourceIRI("x4"), rdf.RDFType, b))
	cs := DetectHighLevel(older, newer)
	for _, ch := range cs {
		if ch.Kind == InstancesAdded && ch.Target == b {
			if ch.Count != 2 {
				t.Fatalf("instances_added count = %d, want 2", ch.Count)
			}
			return
		}
	}
	t.Fatalf("instances_added not detected in %v", cs)
}

func TestDetectInstancesDeleted(t *testing.T) {
	older := buildBase()
	newer := older.Clone()
	newer.Remove(rdf.T(rdf.ResourceIRI("x2"), rdf.RDFType, rdf.SchemaIRI("B")))
	cs := DetectHighLevel(older, newer)
	for _, ch := range cs {
		if ch.Kind == InstancesDeleted && ch.Count == 1 {
			return
		}
	}
	t.Fatalf("instances_deleted not detected in %v", cs)
}

func TestDetectLabelChanged(t *testing.T) {
	older := buildBase()
	a := rdf.SchemaIRI("A")
	older.Add(rdf.T(a, rdf.RDFSLabel, rdf.NewLiteral("Alpha")))
	newer := older.Clone()
	newer.Remove(rdf.T(a, rdf.RDFSLabel, rdf.NewLiteral("Alpha")))
	newer.Add(rdf.T(a, rdf.RDFSLabel, rdf.NewLiteral("AlphaRenamed")))
	cs := DetectHighLevel(older, newer)
	if kinds(cs)[LabelChanged] != 1 {
		t.Fatalf("want 1 label_changed, got %v", cs)
	}
}

func TestChangeKindStrings(t *testing.T) {
	all := []ChangeKind{
		ClassAdded, ClassDeleted, PropertyAdded, PropertyDeleted,
		SuperClassChanged, DomainChanged, RangeChanged,
		InstancesAdded, InstancesDeleted, LabelChanged,
	}
	seen := make(map[string]bool)
	for _, k := range all {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("ChangeKind %d has empty/duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if ChangeKind(200).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestHighLevelChangeString(t *testing.T) {
	c := HighLevelChange{Kind: InstancesAdded, Target: rdf.SchemaIRI("B"), Count: 3}
	if got := c.String(); got != "instances_added(B, 3)" {
		t.Fatalf("String() = %q", got)
	}
	c2 := HighLevelChange{
		Kind:   SuperClassChanged,
		Target: rdf.SchemaIRI("B"),
		From:   []rdf.Term{rdf.SchemaIRI("A")},
		To:     []rdf.Term{rdf.SchemaIRI("C")},
	}
	if got := c2.String(); got != "superclass_changed(B, [A] -> [C])" {
		t.Fatalf("String() = %q", got)
	}
	c3 := HighLevelChange{Kind: ClassAdded, Target: rdf.SchemaIRI("D")}
	if got := c3.String(); got != "class_added(D)" {
		t.Fatalf("String() = %q", got)
	}
}
