package delta

import (
	"fmt"

	"evorec/internal/rdf"
	"evorec/internal/schema"
)

// ChangeKind enumerates the high-level change patterns the detector lifts
// out of a low-level delta, following the change taxonomy of Roussakis et
// al. [11] restricted to the RDF/S constructs this system models.
type ChangeKind uint8

const (
	// ClassAdded: a class exists in the newer version only.
	ClassAdded ChangeKind = iota
	// ClassDeleted: a class exists in the older version only.
	ClassDeleted
	// PropertyAdded: a property exists in the newer version only.
	PropertyAdded
	// PropertyDeleted: a property exists in the older version only.
	PropertyDeleted
	// SuperClassChanged: the direct superclass set of a class changed.
	SuperClassChanged
	// DomainChanged: the declared domain set of a property changed.
	DomainChanged
	// RangeChanged: the declared range set of a property changed.
	RangeChanged
	// InstancesAdded: the class gained typed instances.
	InstancesAdded
	// InstancesDeleted: the class lost typed instances.
	InstancesDeleted
	// LabelChanged: an rdfs:label of the target changed.
	LabelChanged
)

// String returns the canonical name of the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ClassAdded:
		return "class_added"
	case ClassDeleted:
		return "class_deleted"
	case PropertyAdded:
		return "property_added"
	case PropertyDeleted:
		return "property_deleted"
	case SuperClassChanged:
		return "superclass_changed"
	case DomainChanged:
		return "domain_changed"
	case RangeChanged:
		return "range_changed"
	case InstancesAdded:
		return "instances_added"
	case InstancesDeleted:
		return "instances_deleted"
	case LabelChanged:
		return "label_changed"
	default:
		return fmt.Sprintf("change_kind(%d)", uint8(k))
	}
}

// HighLevelChange is one detected schema-level change.
type HighLevelChange struct {
	// Kind classifies the change.
	Kind ChangeKind
	// Target is the class or property the change is about.
	Target rdf.Term
	// From holds the pre-change related terms (old supers, old domains, ...),
	// when applicable.
	From []rdf.Term
	// To holds the post-change related terms.
	To []rdf.Term
	// Count carries a magnitude for counted changes (instances added etc.).
	Count int
}

// String renders the change for reports.
func (c HighLevelChange) String() string {
	switch c.Kind {
	case InstancesAdded, InstancesDeleted:
		return fmt.Sprintf("%s(%s, %d)", c.Kind, c.Target.Local(), c.Count)
	case SuperClassChanged, DomainChanged, RangeChanged:
		return fmt.Sprintf("%s(%s, %s -> %s)", c.Kind, c.Target.Local(), locals(c.From), locals(c.To))
	default:
		return fmt.Sprintf("%s(%s)", c.Kind, c.Target.Local())
	}
}

func locals(ts []rdf.Term) string {
	if len(ts) == 0 {
		return "[]"
	}
	s := "["
	for i, t := range ts {
		if i > 0 {
			s += " "
		}
		s += t.Local()
	}
	return s + "]"
}

// DetectHighLevel lifts the low-level delta between two versions into
// high-level changes by comparing the extracted schemas and the type
// assertions on both sides. The result is ordered deterministically:
// grouped by kind, then by target term.
func DetectHighLevel(older, newer *rdf.Graph) []HighLevelChange {
	so, sn := schema.Extract(older), schema.Extract(newer)
	var out []HighLevelChange

	// Class existence.
	for _, c := range sn.ClassTerms() {
		if !so.IsClass(c) {
			out = append(out, HighLevelChange{Kind: ClassAdded, Target: c})
		}
	}
	for _, c := range so.ClassTerms() {
		if !sn.IsClass(c) {
			out = append(out, HighLevelChange{Kind: ClassDeleted, Target: c})
		}
	}
	// Property existence.
	for _, p := range sn.PropertyTerms() {
		if !so.IsProperty(p) {
			out = append(out, HighLevelChange{Kind: PropertyAdded, Target: p})
		}
	}
	for _, p := range so.PropertyTerms() {
		if !sn.IsProperty(p) {
			out = append(out, HighLevelChange{Kind: PropertyDeleted, Target: p})
		}
	}
	// Hierarchy moves for classes present on both sides.
	for _, c := range so.ClassTerms() {
		if !sn.IsClass(c) {
			continue
		}
		co, _ := so.Class(c)
		cn, _ := sn.Class(c)
		if !sameTerms(co.Supers, cn.Supers) {
			out = append(out, HighLevelChange{
				Kind: SuperClassChanged, Target: c, From: co.Supers, To: cn.Supers,
			})
		}
		if cn.InstanceCount > co.InstanceCount {
			out = append(out, HighLevelChange{
				Kind: InstancesAdded, Target: c, Count: cn.InstanceCount - co.InstanceCount,
			})
		} else if cn.InstanceCount < co.InstanceCount {
			out = append(out, HighLevelChange{
				Kind: InstancesDeleted, Target: c, Count: co.InstanceCount - cn.InstanceCount,
			})
		}
	}
	// Domain/range moves for properties present on both sides.
	for _, p := range so.PropertyTerms() {
		if !sn.IsProperty(p) {
			continue
		}
		po, _ := so.Property(p)
		pn, _ := sn.Property(p)
		if !sameTerms(po.Domains, pn.Domains) {
			out = append(out, HighLevelChange{
				Kind: DomainChanged, Target: p, From: po.Domains, To: pn.Domains,
			})
		}
		if !sameTerms(po.Ranges, pn.Ranges) {
			out = append(out, HighLevelChange{
				Kind: RangeChanged, Target: p, From: po.Ranges, To: pn.Ranges,
			})
		}
	}
	// Label changes on schema terms.
	labelTargets := make(map[rdf.Term]struct{})
	for _, c := range so.ClassTerms() {
		labelTargets[c] = struct{}{}
	}
	for _, p := range so.PropertyTerms() {
		labelTargets[p] = struct{}{}
	}
	var labelChanged []rdf.Term
	for t := range labelTargets {
		oldLabels := older.Objects(t, rdf.RDFSLabel)
		newLabels := newer.Objects(t, rdf.RDFSLabel)
		rdf.SortTerms(oldLabels)
		rdf.SortTerms(newLabels)
		if len(oldLabels) > 0 && len(newLabels) > 0 && !sameTerms(oldLabels, newLabels) {
			labelChanged = append(labelChanged, t)
		}
	}
	rdf.SortTerms(labelChanged)
	for _, t := range labelChanged {
		out = append(out, HighLevelChange{Kind: LabelChanged, Target: t})
	}
	return out
}

// sameTerms reports whether two sorted term slices are equal.
func sameTerms(a, b []rdf.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CountByKind tallies high-level changes per kind.
func CountByKind(changes []HighLevelChange) map[ChangeKind]int {
	out := make(map[ChangeKind]int)
	for _, c := range changes {
		out[c.Kind]++
	}
	return out
}
