package delta

import (
	"testing"

	"evorec/internal/rdf"
)

// sharedPair builds an (older, newer) pair over one dictionary with known
// added and deleted triples.
func sharedPair() (older, newer *rdf.Graph, added, deleted rdf.Triple) {
	older = rdf.NewGraph()
	for i := 0; i < 30; i++ {
		older.Add(tri(i))
	}
	newer = older.Clone()
	deleted = tri(3)
	added = tri(100)
	newer.Remove(deleted)
	newer.Add(added)
	return older, newer, added, deleted
}

func TestApplyIDFastPath(t *testing.T) {
	older, newer, _, _ := sharedPair()
	d := Compute(older, newer)
	if d.dict == nil {
		t.Fatal("Compute over shared-dict graphs must fill the ID fast path")
	}
	rebuilt := older.Clone()
	removed, added := d.Apply(rebuilt)
	if removed != 1 || added != 1 {
		t.Fatalf("Apply counts = (%d, %d), want (1, 1)", removed, added)
	}
	if !Compute(rebuilt, newer).IsEmpty() {
		t.Fatal("ID-path Apply did not reconstruct newer")
	}
	// Applying the same delta again is a no-op: the deletion is already
	// gone and the addition already present.
	if r, a := d.Apply(rebuilt); r != 0 || a != 0 {
		t.Fatalf("re-Apply counts = (%d, %d), want (0, 0)", r, a)
	}
}

func TestApplyAfterFilterFallsBack(t *testing.T) {
	// Filtering the exported change lists after Compute must not leave the
	// stale encoded mirror in charge: Apply detects the length mismatch and
	// replays the (filtered) term-level lists instead.
	older, newer, addedT, _ := sharedPair()
	d := Compute(older, newer)
	d.Deleted = nil // caller keeps only the additions
	rebuilt := older.Clone()
	removed, added := d.Apply(rebuilt)
	if removed != 0 || added != 1 {
		t.Fatalf("filtered Apply counts = (%d, %d), want (0, 1)", removed, added)
	}
	if !rebuilt.Has(addedT) {
		t.Fatal("filtered Apply must still add the kept triple")
	}
	if rebuilt.Len() != older.Len()+1 {
		t.Fatalf("filtered Apply len = %d, want %d (no deletions)", rebuilt.Len(), older.Len()+1)
	}
}

func TestApplyInvertIDPath(t *testing.T) {
	older, newer, _, _ := sharedPair()
	d := Compute(older, newer)
	back := newer.Clone()
	d.Invert().Apply(back)
	if !Compute(back, older).IsEmpty() {
		t.Fatal("inverted ID-path Apply did not reconstruct older")
	}
}

func TestEncodeGivesFastPath(t *testing.T) {
	older, newer, addedT, deletedT := sharedPair()
	// A delta built from bare terms (as the archive's text reader does) has
	// no dict; Encode against the target's dict must enable the ID path and
	// produce the same result as the term path.
	d := &Delta{Added: []rdf.Triple{addedT}, Deleted: []rdf.Triple{deletedT}}
	d.Encode(older.Dict())
	if d.dict != older.Dict() || len(d.addedIDs) != 1 || len(d.deletedIDs) != 1 {
		t.Fatal("Encode did not build the ID lists")
	}
	rebuilt := older.Clone()
	d.Apply(rebuilt)
	if !Compute(rebuilt, newer).IsEmpty() {
		t.Fatal("encoded Apply did not reconstruct newer")
	}
}

func TestApplyForeignDictFallsBack(t *testing.T) {
	older, newer, _, _ := sharedPair()
	d := Compute(older, newer)
	// A target with its own dictionary must take the term-level path and
	// still land on the same graph.
	foreign := rdf.NewGraph()
	older.ForEach(func(tr rdf.Triple) bool { foreign.Add(tr); return true })
	d.Apply(foreign)
	if !Compute(foreign, newer).IsEmpty() {
		t.Fatal("term-path Apply did not reconstruct newer")
	}
}

func TestComputeIDs(t *testing.T) {
	older, newer, _, _ := sharedPair()
	id, ok := ComputeIDs(older, newer)
	if !ok {
		t.Fatal("ComputeIDs must succeed on shared-dict graphs")
	}
	if len(id.Added) != 1 || len(id.Deleted) != 1 || id.Size() != 2 {
		t.Fatalf("IDDelta sizes = (%d, %d)", len(id.Added), len(id.Deleted))
	}
	d := Compute(older, newer)
	if dec := older.Dict().TermOf(id.Added[0].S); dec != d.Added[0].S {
		t.Fatalf("decoded added subject = %v, want %v", dec, d.Added[0].S)
	}
	if _, ok := ComputeIDs(older, rdf.NewGraph()); ok {
		t.Fatal("ComputeIDs must refuse foreign-dict graphs")
	}
}

func TestDiffSortedIDs(t *testing.T) {
	it := func(s, p, o rdf.TermID) rdf.IDTriple { return rdf.IDTriple{S: s, P: p, O: o} }
	older := []rdf.IDTriple{it(1, 1, 1), it(1, 1, 3), it(2, 1, 1), it(5, 1, 1)}
	newer := []rdf.IDTriple{it(1, 1, 1), it(1, 1, 2), it(2, 1, 1), it(6, 1, 1)}
	added, deleted := DiffSortedIDs(older, newer)
	wantAdded := []rdf.IDTriple{it(1, 1, 2), it(6, 1, 1)}
	wantDeleted := []rdf.IDTriple{it(1, 1, 3), it(5, 1, 1)}
	if len(added) != len(wantAdded) || len(deleted) != len(wantDeleted) {
		t.Fatalf("diff sizes = (%d, %d), want (2, 2)", len(added), len(deleted))
	}
	for i := range wantAdded {
		if added[i] != wantAdded[i] {
			t.Fatalf("added[%d] = %v, want %v", i, added[i], wantAdded[i])
		}
	}
	for i := range wantDeleted {
		if deleted[i] != wantDeleted[i] {
			t.Fatalf("deleted[%d] = %v, want %v", i, deleted[i], wantDeleted[i])
		}
	}
	// Agreement with the graph-level diff on a real pair.
	og, ng, _, _ := sharedPair()
	var oIDs, nIDs []rdf.IDTriple
	og.ForEachID(func(tr rdf.IDTriple) bool { oIDs = append(oIDs, tr); return true })
	ng.ForEachID(func(tr rdf.IDTriple) bool { nIDs = append(nIDs, tr); return true })
	rdf.SortIDTriples(oIDs)
	rdf.SortIDTriples(nIDs)
	a2, d2 := DiffSortedIDs(oIDs, nIDs)
	id, _ := ComputeIDs(og, ng)
	if len(a2) != len(id.Added) || len(d2) != len(id.Deleted) {
		t.Fatalf("DiffSortedIDs disagrees with ComputeIDs: (%d, %d) vs (%d, %d)",
			len(a2), len(d2), len(id.Added), len(id.Deleted))
	}
	for i := range a2 {
		if a2[i] != id.Added[i] {
			t.Fatalf("added[%d] = %v, want %v", i, a2[i], id.Added[i])
		}
	}
}
