// Package delta computes evolution deltas between knowledge-base versions.
//
// It implements the paper's low-level deltas (§II-a): the sets of triples
// added (δ+) and deleted (δ−) between two versions, their per-class and
// per-property attribution δ(n), and — following the flexible framework of
// Roussakis et al. [11] that the paper builds on — a high-level change
// detector that lifts raw triple deltas into schema-level change patterns
// (class added, hierarchy moved, domain changed, ...).
package delta

import (
	"runtime"
	"sync"

	"evorec/internal/rdf"
)

// Delta is the low-level delta between an older and a newer version: the
// triples added and the triples deleted. Both slices are sorted for
// deterministic processing. Treat a computed Delta as immutable: Apply
// keeps a dictionary-encoded mirror of the change lists for its fast path,
// and rewriting Added/Deleted in place (rather than filtering, which the
// fast path detects by length) would desynchronize the two views.
type Delta struct {
	// OlderID and NewerID name the versions the delta spans, when known.
	OlderID, NewerID string
	// Added holds δ+: triples present in newer but not older.
	Added []rdf.Triple
	// Deleted holds δ−: triples present in older but not newer.
	Deleted []rdf.Triple

	// dict plus the encoded change lists form the ID fast path for Apply:
	// when the target graph shares dict, the replay runs as integer index
	// operations without re-interning a single term. Compute fills them on
	// its shared-dict path; Encode builds them for deltas parsed from text.
	dict       *rdf.Dict
	addedIDs   []rdf.IDTriple
	deletedIDs []rdf.IDTriple
}

// IDDelta is a delta in dictionary-encoded form: the added and deleted
// ID-triples, sorted numerically by (S, P, O). Like every ID-level value it
// is only meaningful relative to the Dict shared by the graphs it was
// computed from; the binary store serializes these lists directly.
type IDDelta struct {
	// Added holds δ+ and Deleted δ−, both sorted with rdf.SortIDTriples.
	Added, Deleted []rdf.IDTriple
}

// Size returns |δ| = |δ+| + |δ−|.
func (d *IDDelta) Size() int { return len(d.Added) + len(d.Deleted) }

// Compute returns the low-level delta between the two graphs.
//
// When the graphs share a term dictionary (which all versions of one dataset
// do — Clone and the synthetic generators preserve sharing), the set
// difference runs entirely on dictionary-encoded integer triples and only
// the triples actually in the delta are decoded back to terms. Otherwise it
// falls back to a term-level scan.
func Compute(older, newer *rdf.Graph) *Delta {
	d := &Delta{}
	if older.Dict() == newer.Dict() {
		dict := older.Dict()
		added, deleted := collectIDDiff(older, newer)
		d.dict = dict
		d.addedIDs = added
		d.deletedIDs = deleted
		d.Added = decodeIDs(dict, added)
		d.Deleted = decodeIDs(dict, deleted)
	} else {
		newer.ForEach(func(t rdf.Triple) bool {
			if !older.Has(t) {
				d.Added = append(d.Added, t)
			}
			return true
		})
		older.ForEach(func(t rdf.Triple) bool {
			if !newer.Has(t) {
				d.Deleted = append(d.Deleted, t)
			}
			return true
		})
	}
	rdf.SortTriples(d.Added)
	rdf.SortTriples(d.Deleted)
	return d
}

// ComputeParallel is Compute with the scan split across runtime.NumCPU()
// workers, each diffing one subject shard of the ID-encoded indexes. It
// returns the identical (sorted) delta. Graphs with distinct dictionaries
// fall back to the serial term-level scan.
func ComputeParallel(older, newer *rdf.Graph) *Delta {
	if older.Dict() != newer.Dict() {
		return Compute(older, newer)
	}
	shards := runtime.NumCPU()
	if shards > 1 && older.Len()+newer.Len() < 4096 {
		shards = 1 // not worth the fan-out below a few thousand triples
	}
	dict := older.Dict()
	addedByShard := make([][]rdf.IDTriple, shards)
	deletedByShard := make([][]rdf.IDTriple, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			newer.ForEachIDShard(w, shards, func(t rdf.IDTriple) bool {
				if !older.HasID(t) {
					addedByShard[w] = append(addedByShard[w], t)
				}
				return true
			})
			older.ForEachIDShard(w, shards, func(t rdf.IDTriple) bool {
				if !newer.HasID(t) {
					deletedByShard[w] = append(deletedByShard[w], t)
				}
				return true
			})
		}(w)
	}
	wg.Wait()
	added := flattenShards(addedByShard)
	deleted := flattenShards(deletedByShard)
	rdf.SortIDTriples(added)
	rdf.SortIDTriples(deleted)
	d := &Delta{
		dict:       dict,
		addedIDs:   added,
		deletedIDs: deleted,
		Added:      decodeIDs(dict, added),
		Deleted:    decodeIDs(dict, deleted),
	}
	rdf.SortTriples(d.Added)
	rdf.SortTriples(d.Deleted)
	return d
}

// collectIDDiff returns the sorted added and deleted ID-triple lists between
// two graphs sharing a Dict — the shared core of Compute and ComputeIDs.
func collectIDDiff(older, newer *rdf.Graph) (added, deleted []rdf.IDTriple) {
	added = make([]rdf.IDTriple, 0, deltaCap(newer.Len()))
	deleted = make([]rdf.IDTriple, 0, deltaCap(older.Len()))
	newer.ForEachID(func(t rdf.IDTriple) bool {
		if !older.HasID(t) {
			added = append(added, t)
		}
		return true
	})
	older.ForEachID(func(t rdf.IDTriple) bool {
		if !newer.HasID(t) {
			deleted = append(deleted, t)
		}
		return true
	})
	rdf.SortIDTriples(added)
	rdf.SortIDTriples(deleted)
	return added, deleted
}

// ComputeIDs returns the ID-level delta between two graphs sharing a Dict,
// never decoding a term; ok is false when the graphs have distinct
// dictionaries (an ID-level diff would be meaningless). The binary store
// serializes deltas from exactly this form.
func ComputeIDs(older, newer *rdf.Graph) (d *IDDelta, ok bool) {
	if older.Dict() != newer.Dict() {
		return nil, false
	}
	added, deleted := collectIDDiff(older, newer)
	return &IDDelta{Added: added, Deleted: deleted}, true
}

// DiffSortedIDs computes the ID-level delta between two sorted,
// duplicate-free ID-triple slices by a single linear merge, returning the
// (sorted) added and deleted lists. The binary store diffs consecutive
// encoded snapshots this way without probing either graph's index.
func DiffSortedIDs(older, newer []rdf.IDTriple) (added, deleted []rdf.IDTriple) {
	i, j := 0, 0
	for i < len(older) && j < len(newer) {
		switch c := older[i].Compare(newer[j]); {
		case c < 0:
			deleted = append(deleted, older[i])
			i++
		case c > 0:
			added = append(added, newer[j])
			j++
		default:
			i++
			j++
		}
	}
	deleted = append(deleted, older[i:]...)
	added = append(added, newer[j:]...)
	return added, deleted
}

// deltaCap guesses the accumulator capacity for a delta over a graph of n
// triples: real version pairs change a small fraction of the dataset, so a
// 1/8 reservation absorbs typical deltas in one allocation without
// committing O(n) memory up front.
func deltaCap(n int) int {
	c := n / 8
	if c < 16 {
		c = 16
	}
	return c
}

func flattenShards(shards [][]rdf.IDTriple) []rdf.IDTriple {
	n := 0
	for _, s := range shards {
		n += len(s)
	}
	out := make([]rdf.IDTriple, 0, n)
	for _, s := range shards {
		out = append(out, s...)
	}
	return out
}

func decodeIDs(dict *rdf.Dict, ids []rdf.IDTriple) []rdf.Triple {
	if len(ids) == 0 {
		return nil
	}
	out := make([]rdf.Triple, len(ids))
	for i, t := range ids {
		out[i] = rdf.Triple{S: dict.TermOf(t.S), P: dict.TermOf(t.P), O: dict.TermOf(t.O)}
	}
	return out
}

// ComputeVersions is Compute plus version ID labeling.
func ComputeVersions(older, newer *rdf.Version) *Delta {
	d := Compute(older.Graph, newer.Graph)
	d.OlderID, d.NewerID = older.ID, newer.ID
	return d
}

// Size returns |δ| = |δ+| + |δ−|.
func (d *Delta) Size() int { return len(d.Added) + len(d.Deleted) }

// IsEmpty reports whether the delta contains no changes.
func (d *Delta) IsEmpty() bool { return d.Size() == 0 }

// Apply replays the delta onto g (deletions first, then additions),
// returning the number of triples actually removed and added. Applying the
// delta of (A, B) to a clone of A yields a graph equal to B.
//
// When the delta carries encoded change lists for g's own Dict (a delta from
// Compute over shared-dict graphs, or one passed through Encode), the replay
// runs entirely on integer index operations; otherwise each triple is
// re-interned through the term-level path. The fast path is skipped when the
// exported Added/Deleted slices no longer match the encoded lists in length
// (a caller filtered them after Compute), so mutation falls back to the
// term-level replay instead of silently applying stale changes.
func (d *Delta) Apply(g *rdf.Graph) (removed, added int) {
	if d.dict != nil && d.dict == g.Dict() &&
		len(d.addedIDs) == len(d.Added) && len(d.deletedIDs) == len(d.Deleted) {
		for _, t := range d.deletedIDs {
			if g.RemoveID(t) {
				removed++
			}
		}
		for _, t := range d.addedIDs {
			if g.AddID(t) {
				added++
			}
		}
		return removed, added
	}
	for _, t := range d.Deleted {
		if g.Remove(t) {
			removed++
		}
	}
	for _, t := range d.Added {
		if g.Add(t) {
			added++
		}
	}
	return removed, added
}

// Encode interns the delta's triples into dict and caches the ID-encoded
// change lists, so a later Apply onto any graph sharing dict replays on the
// integer fast path. The archive loader calls it once per parsed delta file
// — the chain's versions all share one dictionary, so each change is
// interned once instead of once per term-level Add/Remove.
func (d *Delta) Encode(dict *rdf.Dict) {
	d.dict = dict
	d.addedIDs = encodeTriples(dict, d.Added)
	d.deletedIDs = encodeTriples(dict, d.Deleted)
}

func encodeTriples(dict *rdf.Dict, ts []rdf.Triple) []rdf.IDTriple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]rdf.IDTriple, len(ts))
	for i, t := range ts {
		out[i] = rdf.IDTriple{S: dict.Intern(t.S), P: dict.Intern(t.P), O: dict.Intern(t.O)}
	}
	return out
}

// Invert returns the reverse delta: applying Invert() to the newer version
// yields the older one. Any encoded fast-path lists are swapped along.
func (d *Delta) Invert() *Delta {
	inv := &Delta{
		OlderID:    d.NewerID,
		NewerID:    d.OlderID,
		Added:      make([]rdf.Triple, len(d.Deleted)),
		Deleted:    make([]rdf.Triple, len(d.Added)),
		dict:       d.dict,
		addedIDs:   d.deletedIDs,
		deletedIDs: d.addedIDs,
	}
	copy(inv.Added, d.Deleted)
	copy(inv.Deleted, d.Added)
	return inv
}

// AddedGraph materializes δ+ as a graph, so the query engine and the
// schema extractor can run directly over "what appeared".
func (d *Delta) AddedGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.AddAll(d.Added)
	return g
}

// DeletedGraph materializes δ− as a graph ("what disappeared").
func (d *Delta) DeletedGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.AddAll(d.Deleted)
	return g
}

// TermDelta is the per-term attribution of a delta: how many added and
// deleted triples mention the term in any position.
type TermDelta struct {
	Added, Deleted int
}

// Total returns the total number of changes mentioning the term,
// |δ(n)| in the paper's notation.
func (td TermDelta) Total() int { return td.Added + td.Deleted }

// Attribution indexes a delta by mentioned term. Build it once per delta
// with Attribute; lookups are O(1).
type Attribution struct {
	byTerm map[rdf.Term]TermDelta
}

// Attribute builds the per-term attribution of the delta. Each triple
// contributes one change to every distinct term it mentions.
func Attribute(d *Delta) *Attribution {
	a := &Attribution{byTerm: make(map[rdf.Term]TermDelta)}
	bump := func(x rdf.Term, added bool) {
		td := a.byTerm[x]
		if added {
			td.Added++
		} else {
			td.Deleted++
		}
		a.byTerm[x] = td
	}
	count := func(ts []rdf.Triple, added bool) {
		for _, t := range ts {
			bump(t.S, added)
			if t.P != t.S {
				bump(t.P, added)
			}
			if t.O != t.S && t.O != t.P {
				bump(t.O, added)
			}
		}
	}
	count(d.Added, true)
	count(d.Deleted, false)
	return a
}

// Changes returns δ(n): the attribution for term n (zero if unmentioned).
func (a *Attribution) Changes(n rdf.Term) TermDelta { return a.byTerm[n] }

// Terms returns every term mentioned in the delta, sorted.
func (a *Attribution) Terms() []rdf.Term {
	out := make([]rdf.Term, 0, len(a.byTerm))
	for t := range a.byTerm {
		out = append(out, t)
	}
	rdf.SortTerms(out)
	return out
}

// Len returns the number of distinct terms mentioned by the delta.
func (a *Attribution) Len() int { return len(a.byTerm) }

// NeighborhoodChanges computes |δN(n)| (§II-b): the total changes over a
// set of neighborhood classes. The neighborhood itself is supplied by the
// caller (schema.Neighbors over the union of both versions, see
// measures.NeighborhoodChangeCount).
func (a *Attribution) NeighborhoodChanges(neighbors []rdf.Term) int {
	sum := 0
	for _, n := range neighbors {
		sum += a.byTerm[n].Total()
	}
	return sum
}
