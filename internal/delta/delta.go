// Package delta computes evolution deltas between knowledge-base versions.
//
// It implements the paper's low-level deltas (§II-a): the sets of triples
// added (δ+) and deleted (δ−) between two versions, their per-class and
// per-property attribution δ(n), and — following the flexible framework of
// Roussakis et al. [11] that the paper builds on — a high-level change
// detector that lifts raw triple deltas into schema-level change patterns
// (class added, hierarchy moved, domain changed, ...).
package delta

import (
	"runtime"
	"sync"

	"evorec/internal/rdf"
)

// Delta is the low-level delta between an older and a newer version: the
// triples added and the triples deleted. Both slices are sorted for
// deterministic processing.
type Delta struct {
	// OlderID and NewerID name the versions the delta spans, when known.
	OlderID, NewerID string
	// Added holds δ+: triples present in newer but not older.
	Added []rdf.Triple
	// Deleted holds δ−: triples present in older but not newer.
	Deleted []rdf.Triple
}

// Compute returns the low-level delta between the two graphs.
//
// When the graphs share a term dictionary (which all versions of one dataset
// do — Clone and the synthetic generators preserve sharing), the set
// difference runs entirely on dictionary-encoded integer triples and only
// the triples actually in the delta are decoded back to terms. Otherwise it
// falls back to a term-level scan.
func Compute(older, newer *rdf.Graph) *Delta {
	d := &Delta{}
	if older.Dict() == newer.Dict() {
		dict := older.Dict()
		added := make([]rdf.IDTriple, 0, deltaCap(newer.Len()))
		deleted := make([]rdf.IDTriple, 0, deltaCap(older.Len()))
		newer.ForEachID(func(t rdf.IDTriple) bool {
			if !older.HasID(t) {
				added = append(added, t)
			}
			return true
		})
		older.ForEachID(func(t rdf.IDTriple) bool {
			if !newer.HasID(t) {
				deleted = append(deleted, t)
			}
			return true
		})
		d.Added = decodeIDs(dict, added)
		d.Deleted = decodeIDs(dict, deleted)
	} else {
		newer.ForEach(func(t rdf.Triple) bool {
			if !older.Has(t) {
				d.Added = append(d.Added, t)
			}
			return true
		})
		older.ForEach(func(t rdf.Triple) bool {
			if !newer.Has(t) {
				d.Deleted = append(d.Deleted, t)
			}
			return true
		})
	}
	rdf.SortTriples(d.Added)
	rdf.SortTriples(d.Deleted)
	return d
}

// ComputeParallel is Compute with the scan split across runtime.NumCPU()
// workers, each diffing one subject shard of the ID-encoded indexes. It
// returns the identical (sorted) delta. Graphs with distinct dictionaries
// fall back to the serial term-level scan.
func ComputeParallel(older, newer *rdf.Graph) *Delta {
	if older.Dict() != newer.Dict() {
		return Compute(older, newer)
	}
	shards := runtime.NumCPU()
	if shards > 1 && older.Len()+newer.Len() < 4096 {
		shards = 1 // not worth the fan-out below a few thousand triples
	}
	dict := older.Dict()
	addedByShard := make([][]rdf.IDTriple, shards)
	deletedByShard := make([][]rdf.IDTriple, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			newer.ForEachIDShard(w, shards, func(t rdf.IDTriple) bool {
				if !older.HasID(t) {
					addedByShard[w] = append(addedByShard[w], t)
				}
				return true
			})
			older.ForEachIDShard(w, shards, func(t rdf.IDTriple) bool {
				if !newer.HasID(t) {
					deletedByShard[w] = append(deletedByShard[w], t)
				}
				return true
			})
		}(w)
	}
	wg.Wait()
	d := &Delta{
		Added:   decodeIDs(dict, flattenShards(addedByShard)),
		Deleted: decodeIDs(dict, flattenShards(deletedByShard)),
	}
	rdf.SortTriples(d.Added)
	rdf.SortTriples(d.Deleted)
	return d
}

// deltaCap guesses the accumulator capacity for a delta over a graph of n
// triples: real version pairs change a small fraction of the dataset, so a
// 1/8 reservation absorbs typical deltas in one allocation without
// committing O(n) memory up front.
func deltaCap(n int) int {
	c := n / 8
	if c < 16 {
		c = 16
	}
	return c
}

func flattenShards(shards [][]rdf.IDTriple) []rdf.IDTriple {
	n := 0
	for _, s := range shards {
		n += len(s)
	}
	out := make([]rdf.IDTriple, 0, n)
	for _, s := range shards {
		out = append(out, s...)
	}
	return out
}

func decodeIDs(dict *rdf.Dict, ids []rdf.IDTriple) []rdf.Triple {
	if len(ids) == 0 {
		return nil
	}
	out := make([]rdf.Triple, len(ids))
	for i, t := range ids {
		out[i] = rdf.Triple{S: dict.TermOf(t.S), P: dict.TermOf(t.P), O: dict.TermOf(t.O)}
	}
	return out
}

// ComputeVersions is Compute plus version ID labeling.
func ComputeVersions(older, newer *rdf.Version) *Delta {
	d := Compute(older.Graph, newer.Graph)
	d.OlderID, d.NewerID = older.ID, newer.ID
	return d
}

// Size returns |δ| = |δ+| + |δ−|.
func (d *Delta) Size() int { return len(d.Added) + len(d.Deleted) }

// IsEmpty reports whether the delta contains no changes.
func (d *Delta) IsEmpty() bool { return d.Size() == 0 }

// Apply replays the delta onto g (deletions first, then additions),
// returning the number of triples actually removed and added. Applying the
// delta of (A, B) to a clone of A yields a graph equal to B.
func (d *Delta) Apply(g *rdf.Graph) (removed, added int) {
	for _, t := range d.Deleted {
		if g.Remove(t) {
			removed++
		}
	}
	for _, t := range d.Added {
		if g.Add(t) {
			added++
		}
	}
	return removed, added
}

// Invert returns the reverse delta: applying Invert() to the newer version
// yields the older one.
func (d *Delta) Invert() *Delta {
	inv := &Delta{
		OlderID: d.NewerID,
		NewerID: d.OlderID,
		Added:   make([]rdf.Triple, len(d.Deleted)),
		Deleted: make([]rdf.Triple, len(d.Added)),
	}
	copy(inv.Added, d.Deleted)
	copy(inv.Deleted, d.Added)
	return inv
}

// AddedGraph materializes δ+ as a graph, so the query engine and the
// schema extractor can run directly over "what appeared".
func (d *Delta) AddedGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.AddAll(d.Added)
	return g
}

// DeletedGraph materializes δ− as a graph ("what disappeared").
func (d *Delta) DeletedGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.AddAll(d.Deleted)
	return g
}

// TermDelta is the per-term attribution of a delta: how many added and
// deleted triples mention the term in any position.
type TermDelta struct {
	Added, Deleted int
}

// Total returns the total number of changes mentioning the term,
// |δ(n)| in the paper's notation.
func (td TermDelta) Total() int { return td.Added + td.Deleted }

// Attribution indexes a delta by mentioned term. Build it once per delta
// with Attribute; lookups are O(1).
type Attribution struct {
	byTerm map[rdf.Term]TermDelta
}

// Attribute builds the per-term attribution of the delta. Each triple
// contributes one change to every distinct term it mentions.
func Attribute(d *Delta) *Attribution {
	a := &Attribution{byTerm: make(map[rdf.Term]TermDelta)}
	bump := func(x rdf.Term, added bool) {
		td := a.byTerm[x]
		if added {
			td.Added++
		} else {
			td.Deleted++
		}
		a.byTerm[x] = td
	}
	count := func(ts []rdf.Triple, added bool) {
		for _, t := range ts {
			bump(t.S, added)
			if t.P != t.S {
				bump(t.P, added)
			}
			if t.O != t.S && t.O != t.P {
				bump(t.O, added)
			}
		}
	}
	count(d.Added, true)
	count(d.Deleted, false)
	return a
}

// Changes returns δ(n): the attribution for term n (zero if unmentioned).
func (a *Attribution) Changes(n rdf.Term) TermDelta { return a.byTerm[n] }

// Terms returns every term mentioned in the delta, sorted.
func (a *Attribution) Terms() []rdf.Term {
	out := make([]rdf.Term, 0, len(a.byTerm))
	for t := range a.byTerm {
		out = append(out, t)
	}
	rdf.SortTerms(out)
	return out
}

// Len returns the number of distinct terms mentioned by the delta.
func (a *Attribution) Len() int { return len(a.byTerm) }

// NeighborhoodChanges computes |δN(n)| (§II-b): the total changes over a
// set of neighborhood classes. The neighborhood itself is supplied by the
// caller (schema.Neighbors over the union of both versions, see
// measures.NeighborhoodChangeCount).
func (a *Attribution) NeighborhoodChanges(neighbors []rdf.Term) int {
	sum := 0
	for _, n := range neighbors {
		sum += a.byTerm[n].Total()
	}
	return sum
}
