package server_test

import (
	"net/http"
	"strings"
	"testing"

	"evorec/internal/obs"
	"evorec/internal/server"
	"evorec/internal/service"
)

// TestServerMetricsEndpoint wires a registry through the server config and
// checks the full loop: instrumented requests show up as series on the
// API mux's own GET /metrics, in valid exposition form, and /healthz
// answers alongside.
func TestServerMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	svc := service.New(service.Config{Metrics: reg})
	if _, err := svc.Add("gallery", galleryVersions(t)); err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithConfig(svc, server.Config{Metrics: reg})

	if w := do(t, srv, "GET", "/v1/datasets/gallery", ""); w.Code != http.StatusOK {
		t.Fatalf("inspect = %d", w.Code)
	}
	if w := do(t, srv, "GET", "/v1/datasets/nope", ""); w.Code != http.StatusNotFound {
		t.Fatalf("missing dataset = %d", w.Code)
	}

	w := do(t, srv, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE evorec_http_requests_total counter",
		`evorec_http_requests_total{class="2xx",method="GET",route="/v1/datasets/{name}"} 1`,
		`evorec_http_requests_total{class="4xx",method="GET",route="/v1/datasets/{name}"} 1`,
		"# TYPE evorec_http_request_seconds histogram",
		"evorec_http_in_flight 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q in:\n%s", want, body)
		}
	}

	h := do(t, srv, "GET", "/healthz", "")
	if h.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", h.Code)
	}
	if got := h.Body.String(); !strings.Contains(got, `"status": "ok"`) ||
		!strings.Contains(got, `"service": "evorec"`) {
		t.Errorf("healthz body = %s", got)
	}
}

// TestServerRetryAfterConfigurable locks the 503 path: the configured
// Retry-After rides the response (deterministically forced through a
// closed dataset -> ErrDatasetClosed) and each rejection lands in the
// rejection counter.
func TestServerRetryAfterConfigurable(t *testing.T) {
	reg := obs.NewRegistry()
	svc := service.New(service.Config{})
	if _, err := svc.Add("gallery", galleryVersions(t)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithConfig(svc, server.Config{RetryAfterSeconds: 7, Metrics: reg})

	w := do(t, srv, "POST", "/v1/datasets/gallery/versions/v9", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("commit on closed dataset = %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}
	if got := reg.Snapshot()["evorec_http_rejections_total"]; got != 1 {
		t.Errorf("rejections counter = %v, want 1", got)
	}
}

// TestServerRetryAfterDefault locks the zero-config behavior New promises:
// the historical 1-second hint.
func TestServerRetryAfterDefault(t *testing.T) {
	svc := service.New(service.Config{})
	if _, err := svc.Add("gallery", galleryVersions(t)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	srv := server.New(svc)
	w := do(t, srv, "POST", "/v1/datasets/gallery/versions/v9", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("commit on closed dataset = %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want 1", got)
	}
}
