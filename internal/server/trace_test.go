package server_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"evorec/internal/obs"
	"evorec/internal/rdf"
	"evorec/internal/server"
	"evorec/internal/service"
	"evorec/internal/store"
	"evorec/internal/synth"
)

// newTracedServer builds a disk-backed dataset "kb" holding v1, behind a
// fully traced server (SampleRate 1), returning the chain so the test can
// commit later versions over HTTP.
func newTracedServer(t *testing.T) (*server.Server, *service.Service, *obs.Tracer, *obs.Registry, *rdf.VersionStore) {
	t.Helper()
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 60, Locality: 0.8}, 2, 7) // v1, v2, v3
	if err != nil {
		t.Fatal(err)
	}
	storeDir := t.TempDir()
	base := rdf.NewVersionStore()
	if err := base.Add(vs.At(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(storeDir, base, store.Options{Policy: store.DeltaChain}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 1})
	svc := service.New(service.Config{
		Metrics: reg, Tracer: tracer, FeedThreshold: 0.01,
	})
	if _, err := svc.Open("kb", storeDir); err != nil {
		t.Fatal(err)
	}
	// Close before the TempDir cleanup (LIFO): a commit's post-ack
	// WAL-bound checkpoint may still be writing when the test body returns,
	// and RemoveAll racing those segment writes flakes the teardown.
	t.Cleanup(func() {
		if err := svc.Close(); err != nil {
			t.Errorf("closing traced service: %v", err)
		}
	})
	srv := server.NewWithConfig(svc, server.Config{Metrics: reg, Tracer: tracer})
	return srv, svc, tracer, reg, vs
}

// TestServerCommitTraceEndToEnd drives one commit through
// server -> service -> store -> feed and asserts a single trace whose span
// tree nests the queue wait, the WAL append/fsync and the fan-out under the
// request's root, with every child's duration bounded by the root's.
func TestServerCommitTraceEndToEnd(t *testing.T) {
	srv, _, tracer, reg, vs := newTracedServer(t)

	if rec := do(t, srv, "PUT", "/v1/datasets/kb/subscribers/alice",
		`{"interests":"C0001=1,C0002=0.5"}`); rec.Code != 201 {
		t.Fatalf("subscribe status %d: %s", rec.Code, rec.Body)
	}
	var body bytes.Buffer
	if err := rdf.WriteNTriples(&body, vs.At(1).Graph); err != nil {
		t.Fatal(err)
	}
	rec := do(t, srv, "POST", "/v1/datasets/kb/versions/v2", body.String())
	if rec.Code != 201 {
		t.Fatalf("commit status %d: %s", rec.Code, rec.Body)
	}
	// The response must echo a sampled canonical traceparent and report the
	// trace/request IDs in the commit body.
	echo := rec.Header().Get("traceparent")
	tid, _, sampled, ok := obs.ParseTraceparent(echo)
	if !ok || !sampled {
		t.Fatalf("commit response traceparent %q: ok=%v sampled=%v", echo, ok, sampled)
	}
	var commit struct {
		TraceID   string `json:"trace_id"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &commit); err != nil {
		t.Fatal(err)
	}
	if commit.TraceID != tid.String() {
		t.Fatalf("commit body trace_id %q != traceparent %q", commit.TraceID, tid.String())
	}
	if commit.RequestID == "" {
		t.Fatal("commit body must carry the request ID")
	}
	if rec := do(t, srv, "GET", "/v1/datasets/kb/feed/alice?after=0", ""); rec.Code != 200 {
		t.Fatalf("poll status %d: %s", rec.Code, rec.Body)
	}

	// Find the commit's trace in the ring by its ID.
	var trace *obs.Trace
	for _, tr := range tracer.Traces() {
		if tr.TraceID == commit.TraceID {
			trace = tr
			break
		}
	}
	if trace == nil {
		t.Fatalf("commit trace %s not in the ring", commit.TraceID)
	}
	if trace.Route != "/v1/datasets/{name}/versions/{id}" {
		t.Fatalf("trace route = %q", trace.Route)
	}
	if trace.RequestID != commit.RequestID {
		t.Fatalf("trace request_id %q != commit body %q", trace.RequestID, commit.RequestID)
	}

	// Children end before the root, so the root is the final record.
	root := trace.Spans[len(trace.Spans)-1]
	if root.Name != trace.Route || root.ParentID != "" {
		t.Fatalf("last span must be the parentless root, got %+v", root)
	}
	byName := map[string]obs.SpanRecord{}
	byID := map[string]obs.SpanRecord{}
	for _, s := range trace.Spans {
		byName[s.Name] = s
		byID[s.SpanID] = s
	}
	for _, name := range []string{
		"commit.queue_wait", "commit.parse",
		"store.append", "store.encode", "wal.append", "wal.fsync",
		"feed.fanout", "feed.match", "feed.score", "feed.append", "feed.persist",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("span %q missing from commit trace (have %v)", name, spanNames(trace))
		}
	}
	// Every span parents back to the root and fits inside it.
	for _, s := range trace.Spans {
		if s.DurationNS < 0 || s.DurationNS > root.DurationNS {
			t.Errorf("span %q duration %d outside root's %d", s.Name, s.DurationNS, root.DurationNS)
		}
		cur, hops := s, 0
		for cur.ParentID != "" {
			parent, ok := byID[cur.ParentID]
			if !ok {
				t.Errorf("span %q: parent %s not in trace", s.Name, cur.ParentID)
				break
			}
			cur = parent
			if hops++; hops > len(trace.Spans) {
				t.Errorf("span %q: parent chain does not terminate", s.Name)
				break
			}
		}
	}
	if fsync := byName["wal.fsync"]; fsync.ParentID != byName["wal.append"].SpanID {
		t.Errorf("wal.fsync must nest under wal.append, parent = %s", fsync.ParentID)
	}
	if fanout := byName["feed.fanout"]; fanout.DurationNS <= 0 {
		t.Errorf("feed.fanout duration %d must be positive", fanout.DurationNS)
	}
	if fsync := byName["wal.fsync"]; fsync.DurationNS <= 0 {
		t.Errorf("wal.fsync duration %d must be positive", fsync.DurationNS)
	}

	// Exemplars: opt-in only. The plain exposition stays byte-identical to
	// the pre-tracing format; ?exemplars=1 attaches the commit's trace ID to
	// the latency histogram buckets.
	plain := do(t, srv, "GET", "/metrics", "").Body.String()
	if strings.Contains(plain, "trace_id=") {
		t.Error("plain /metrics must not carry exemplars")
	}
	withEx := do(t, srv, "GET", "/metrics?exemplars=1", "").Body.String()
	if !strings.Contains(withEx, `# {trace_id="`) {
		t.Error("/metrics?exemplars=1 must attach trace exemplars")
	}
	_ = reg
}

func spanNames(tr *obs.Trace) []string {
	out := make([]string, 0, len(tr.Spans))
	for _, s := range tr.Spans {
		out = append(out, s.Name)
	}
	return out
}

// TestServerReadyz exercises the liveness/readiness split: /readyz answers
// ready while the service is idle and 503 after Close starts (the drain is
// a readiness blocker), while /healthz stays live throughout.
func TestServerReadyz(t *testing.T) {
	srv, svc, _, _, _ := newTracedServer(t)
	rec := do(t, srv, "GET", "/readyz", "")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"status": "ready"`) {
		t.Fatalf("/readyz = %d %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"replays_in_flight": 0`) {
		t.Fatalf("/readyz must report blocker counts: %s", rec.Body)
	}
	if rec := do(t, srv, "GET", "/healthz", ""); rec.Code != 200 {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if ready, _ := svc.Ready(); !ready {
		t.Fatal("service must be ready again after Close completes")
	}
}

// TestServerUnsampledRequestUntraced: with a zero sample rate the server
// still propagates traceparent (echoing the unsampled flag) but records
// nothing.
func TestServerUnsampledRequestUntraced(t *testing.T) {
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 60, Locality: 0.8}, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 0})
	svc := service.New(service.Config{Tracer: tracer})
	if _, err := svc.Add("kb", vs); err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithConfig(svc, server.Config{Tracer: tracer})
	rec := do(t, srv, "GET", "/v1/datasets/kb", "")
	if rec.Code != 200 {
		t.Fatalf("inspect status %d", rec.Code)
	}
	echo := rec.Header().Get("traceparent")
	if _, _, sampled, ok := obs.ParseTraceparent(echo); !ok || sampled {
		t.Fatalf("unsampled echo %q: ok=%v sampled=%v", echo, ok, sampled)
	}
	if got := len(tracer.Traces()); got != 0 {
		t.Fatalf("%d traces recorded at SampleRate 0", got)
	}
}
