package server_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evorec/internal/rdf"
	"evorec/internal/server"
	"evorec/internal/service"
)

var update = flag.Bool("update", false, "rewrite the golden response bodies")

// galleryVersions hand-builds a tiny two-version art KB whose measure
// evaluations are deterministic, so the JSON bodies can be golden-tested
// byte for byte.
func galleryVersions(t testing.TB) *rdf.VersionStore {
	t.Helper()
	dict := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(dict)
	class := func(g *rdf.Graph, name string) rdf.Term {
		c := rdf.SchemaIRI(name)
		g.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
		return c
	}
	painting := class(g1, "Painting")
	artist := class(g1, "Artist")
	artwork := class(g1, "Artwork")
	g1.Add(rdf.T(painting, rdf.RDFSSubClassOf, artwork))
	creator := rdf.SchemaIRI("creator")
	g1.Add(rdf.T(creator, rdf.RDFSDomain, painting))
	g1.Add(rdf.T(creator, rdf.RDFSRange, artist))
	monalisa := rdf.ResourceIRI("mona_lisa")
	davinci := rdf.ResourceIRI("da_vinci")
	g1.Add(rdf.T(monalisa, rdf.RDFType, painting))
	g1.Add(rdf.T(davinci, rdf.RDFType, artist))
	g1.Add(rdf.T(monalisa, creator, davinci))

	g2 := g1.Clone()
	sculpture := class(g2, "Sculpture")
	g2.Add(rdf.T(sculpture, rdf.RDFSSubClassOf, artwork))
	starry := rdf.ResourceIRI("starry_night")
	vangogh := rdf.ResourceIRI("van_gogh")
	g2.Add(rdf.T(starry, rdf.RDFType, painting))
	g2.Add(rdf.T(vangogh, rdf.RDFType, artist))
	g2.Add(rdf.T(starry, creator, vangogh))
	g2.Remove(rdf.T(monalisa, creator, davinci))

	vs := rdf.NewVersionStore()
	if err := vs.Add(&rdf.Version{ID: "v1", Graph: g1}); err != nil {
		t.Fatal(err)
	}
	if err := vs.Add(&rdf.Version{ID: "v2", Graph: g2}); err != nil {
		t.Fatal(err)
	}
	return vs
}

func newTestServer(t testing.TB) *server.Server {
	t.Helper()
	svc := service.New(service.Config{})
	if _, err := svc.Add("gallery", galleryVersions(t)); err != nil {
		t.Fatal(err)
	}
	return server.New(svc)
}

// checkGolden compares the body against testdata/<name>.json, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, body string) {
	t.Helper()
	path := filepath.Join("testdata", name+".json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if body != string(want) {
		t.Errorf("%s body mismatch:\n got: %s\nwant: %s", name, body, want)
	}
}

func do(t *testing.T, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// TestServerGolden walks the API in a fixed order (cache counters are part
// of the inspect body) and compares every response byte for byte.
func TestServerGolden(t *testing.T) {
	srv := newTestServer(t)
	commitBody := fmt.Sprintf("<%snotre_dame> <%stype> <%sBuilding> .\n",
		rdf.NSResource, "http://www.w3.org/1999/02/22-rdf-syntax-ns#", rdf.NSSchema)
	steps := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
	}{
		{"list", "GET", "/v1/datasets", "", 200},
		{"inspect_fresh", "GET", "/v1/datasets/gallery", "", 200},
		{"delta", "GET", "/v1/datasets/gallery/delta?older=v1&newer=v2", "", 200},
		{"measures", "GET", "/v1/datasets/gallery/measures?older=v1&newer=v2&k=2", "", 200},
		{"recommend", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&k=3&user_id=curator&interests=Painting=1,Artist=0.5", "", 200},
		{"recommend_mmr", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&k=3&strategy=mmr&lambda=0.7&interests=Painting=1", "", 200},
		{"recommend_private", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&k=2&interests=Painting=1&kanon=2&pool=bob:Painting=0.8,Artist=0.3&seed=7", "", 200},
		{"group", "GET", "/v1/datasets/gallery/recommend/group?older=v1&newer=v2&k=3&agg=least_misery&member=alice:Painting=1&member=bob:Artist=1", "", 200},
		{"group_fair", "GET", "/v1/datasets/gallery/recommend/group?older=v1&newer=v2&k=2&fair=1&alpha=0.5&member=alice:Painting=1&member=bob:Artist=1", "", 200},
		{"notify", "GET", "/v1/datasets/gallery/notify?older=v1&newer=v2&threshold=0.01&k=2&user=alice:Painting=1&user=bob:Sculpture=1", "", 200},
		{"commit", "POST", "/v1/datasets/gallery/versions/v3", commitBody, 201},
		{"delta_committed", "GET", "/v1/datasets/gallery/delta?older=v2&newer=v3", "", 200},
		{"create", "POST", "/v1/datasets/scratch", "", 201},
		{"inspect_after", "GET", "/v1/datasets/gallery", "", 200},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			w := do(t, srv, step.method, step.target, step.body)
			if w.Code != step.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, step.wantStatus, w.Body.String())
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content type = %q", ct)
			}
			checkGolden(t, step.name, w.Body.String())
		})
	}
}

// TestServerFeed walks the subscription & feed endpoints end to end:
// subscribe (201) → update (200) → list → commit triggering fan-out → poll
// with cursor ack → unsubscribe, golden-checked byte for byte.
func TestServerFeed(t *testing.T) {
	srv := newTestServer(t)
	commitBody := fmt.Sprintf("<%snotre_dame> <%stype> <%sBuilding> .\n",
		rdf.NSResource, "http://www.w3.org/1999/02/22-rdf-syntax-ns#", rdf.NSSchema)
	steps := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
	}{
		{"subscribe_create", "PUT", "/v1/datasets/gallery/subscribers/curator", `{"interests":"Painting=1,Artist=0.5"}`, 201},
		{"subscribe_update", "PUT", "/v1/datasets/gallery/subscribers/curator", `{"interests":"Sculpture=1"}`, 200},
		{"subscribe_cold", "PUT", "/v1/datasets/gallery/subscribers/janitor", `{"interests":"Broom=1"}`, 201},
		{"subscribers_list", "GET", "/v1/datasets/gallery/subscribers", "", 200},
		{"commit_fanout", "POST", "/v1/datasets/gallery/versions/v3", "", 201},
		{"feed_poll", "GET", "/v1/datasets/gallery/feed/curator", "", 200},
		{"feed_poll_acked", "GET", "/v1/datasets/gallery/feed/curator?after=1", "", 200},
		{"feed_poll_cold", "GET", "/v1/datasets/gallery/feed/janitor", "", 200},
		{"unsubscribe", "DELETE", "/v1/datasets/gallery/subscribers/janitor", "", 200},
		{"inspect_feed", "GET", "/v1/datasets/gallery", "", 200},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			body := step.body
			if step.name == "commit_fanout" {
				body = commitBody
			}
			w := do(t, srv, step.method, step.target, body)
			if w.Code != step.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, step.wantStatus, w.Body.String())
			}
			checkGolden(t, "feed_"+step.name, w.Body.String())
		})
	}
}

// TestServerFeedCursorDrain checks the ack loop over HTTP: paging with
// after=next drains the log exactly once, then stays empty.
func TestServerFeedCursorDrain(t *testing.T) {
	srv := newTestServer(t)
	if w := do(t, srv, "PUT", "/v1/datasets/gallery/subscribers/u", `{"interests":"Painting=1,Artwork=0.5"}`); w.Code != 201 {
		t.Fatalf("subscribe: %d %s", w.Code, w.Body.String())
	}
	commitBody := fmt.Sprintf("<%sthe_scream> <%stype> <%sPainting> .\n",
		rdf.NSResource, "http://www.w3.org/1999/02/22-rdf-syntax-ns#", rdf.NSSchema)
	w := do(t, srv, "POST", "/v1/datasets/gallery/versions/v3", commitBody)
	if w.Code != 201 {
		t.Fatalf("commit: %d %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), `"feed"`) {
		t.Fatalf("commit body has no feed stats: %s", w.Body.String())
	}
	var drained int
	after := "0"
	for i := 0; i < 10; i++ {
		w := do(t, srv, "GET", "/v1/datasets/gallery/feed/u?limit=1&after="+after, "")
		if w.Code != 200 {
			t.Fatalf("poll: %d %s", w.Code, w.Body.String())
		}
		var resp struct {
			Next    uint64 `json:"next"`
			Entries []struct {
				Cursor uint64 `json:"cursor"`
			} `json:"entries"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Entries) == 0 {
			break
		}
		drained += len(resp.Entries)
		after = fmt.Sprint(resp.Next)
	}
	if drained == 0 {
		t.Fatal("subscriber interested in Painting drained no entries after a Painting commit")
	}
}

// TestServerErrors checks every error path's status code and JSON shape.
func TestServerErrors(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
		wantSubstr string
	}{
		{"unknown_dataset", "GET", "/v1/datasets/nope", "", 404, "unknown dataset"},
		{"unknown_dataset_recommend", "GET", "/v1/datasets/nope/recommend?older=v1&newer=v2&interests=Painting=1", "", 404, "unknown dataset"},
		{"unknown_version", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v9&interests=Painting=1", "", 404, "unknown version"},
		{"unknown_version_delta", "GET", "/v1/datasets/gallery/delta?older=v0&newer=v2", "", 404, "unknown version"},
		{"missing_pair", "GET", "/v1/datasets/gallery/recommend?interests=Painting=1", "", 400, "older and newer"},
		{"missing_interests", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2", "", 400, "interests"},
		{"bad_strategy", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&interests=Painting=1&strategy=wild", "", 400, "unknown strategy"},
		{"bad_k", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&interests=Painting=1&k=abc", "", 400, "not an integer"},
		{"bad_weight", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&interests=Painting=x", "", 400, "bad weight"},
		{"bad_lambda", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&interests=Painting=1&lambda=no", "", 400, "not a number"},
		{"kanon_one", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&interests=Painting=1&kanon=1", "", 400, "kanon must be 0 (off)"},
		{"negative_epsilon", "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&interests=Painting=1&epsilon=-0.5", "", 400, "epsilon must be"},
		{"group_no_members", "GET", "/v1/datasets/gallery/recommend/group?older=v1&newer=v2", "", 400, "member"},
		{"group_bad_agg", "GET", "/v1/datasets/gallery/recommend/group?older=v1&newer=v2&member=a:Painting=1&agg=tyranny", "", 400, "unknown aggregation"},
		{"group_bad_member", "GET", "/v1/datasets/gallery/recommend/group?older=v1&newer=v2&member=nocolon", "", 400, "id:Class=w"},
		{"notify_no_users", "GET", "/v1/datasets/gallery/notify?older=v1&newer=v2", "", 400, "user"},
		{"notify_bad_threshold", "GET", "/v1/datasets/gallery/notify?older=v1&newer=v2&user=a:Painting=1&threshold=hot", "", 400, "not a number"},
		{"notify_threshold_range", "GET", "/v1/datasets/gallery/notify?older=v1&newer=v2&user=a:Painting=1&threshold=2", "", 400, "threshold"},
		{"subscribe_empty", "PUT", "/v1/datasets/gallery/subscribers/u", `{"interests":""}`, 400, "interests"},
		{"subscribe_bad_json", "PUT", "/v1/datasets/gallery/subscribers/u", `not json`, 400, "decoding subscribe body"},
		{"subscribe_bad_weight", "PUT", "/v1/datasets/gallery/subscribers/u", `{"interests":"Painting=x"}`, 400, "bad weight"},
		{"subscribe_nan_weight", "PUT", "/v1/datasets/gallery/subscribers/u", `{"interests":"Painting=NaN"}`, 400, "invalid weight"},
		{"subscribe_inf_weight", "PUT", "/v1/datasets/gallery/subscribers/u", `{"interests":"Painting=+Inf"}`, 400, "invalid weight"},
		{"subscribe_unknown_dataset", "PUT", "/v1/datasets/nope/subscribers/u", `{"interests":"Painting=1"}`, 404, "unknown dataset"},
		{"unsubscribe_unknown", "DELETE", "/v1/datasets/gallery/subscribers/ghost", "", 404, "unknown subscriber"},
		{"feed_unknown_user", "GET", "/v1/datasets/gallery/feed/ghost", "", 404, "unknown subscriber"},
		{"feed_bad_after", "GET", "/v1/datasets/gallery/feed/ghost?after=x", "", 400, "not a cursor"},
		{"feed_bad_limit", "GET", "/v1/datasets/gallery/feed/ghost?limit=0", "", 400, "limit"},
		{"commit_malformed", "POST", "/v1/datasets/gallery/versions/vX", "this is not n-triples", 400, "parsing version"},
		{"commit_duplicate", "POST", "/v1/datasets/gallery/versions/v1", "", 409, "already exists"},
		{"commit_unknown_dataset", "POST", "/v1/datasets/nope/versions/v9", "", 404, "unknown dataset"},
		{"create_duplicate", "POST", "/v1/datasets/gallery", "", 409, "already registered"},
		{"method_not_allowed", "DELETE", "/v1/datasets/gallery", "", 405, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, srv, c.method, c.target, c.body)
			if w.Code != c.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, c.wantStatus, w.Body.String())
			}
			if c.wantSubstr != "" && !strings.Contains(w.Body.String(), c.wantSubstr) {
				t.Fatalf("body %q does not mention %q", w.Body.String(), c.wantSubstr)
			}
		})
	}
}

// TestServerConcurrentClients drives the HTTP layer itself from parallel
// clients (run with -race): identical queries must return identical bodies.
func TestServerConcurrentClients(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL + "/v1/datasets/gallery/recommend?older=v1&newer=v2&k=3&interests=Painting=1,Artist=0.5"
	first := do(t, srv, "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&k=3&interests=Painting=1,Artist=0.5", "")
	if first.Code != 200 {
		t.Fatalf("status %d: %s", first.Code, first.Body.String())
	}
	want := first.Body.String()
	errCh := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			resp, err := http.Get(url)
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			var buf strings.Builder
			if _, err := io.Copy(&buf, resp.Body); err != nil {
				errCh <- err
				return
			}
			if buf.String() != want {
				errCh <- fmt.Errorf("concurrent body diverged:\n got: %s\nwant: %s", buf.String(), want)
				return
			}
			errCh <- nil
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}
