// Package server exposes the concurrent service layer as an HTTP JSON API
// (stdlib net/http only), the "live query/notification endpoint over
// versioned datasets" shape that published Linked Data spaces such as
// LinkedCT take. `evorec serve` wires it to a listener.
//
// Endpoints (all JSON; errors are {"error": "..."} with 400/404/409):
//
//	GET  /v1/datasets                                   list datasets
//	POST /v1/datasets/{name}                            create an in-memory dataset
//	GET  /v1/datasets/{name}                            inspect (versions, cache counters)
//	POST /v1/datasets/{name}/versions/{id}              commit a version (N-Triples body)
//	GET  /v1/datasets/{name}/delta?older=&newer=        delta statistics
//	GET  /v1/datasets/{name}/measures?older=&newer=&k=  measure evaluations
//	GET  /v1/datasets/{name}/recommend                  per-user recommendation
//	GET  /v1/datasets/{name}/recommend/group            group recommendation
//	GET  /v1/datasets/{name}/notify                     stateless notification scan
//	PUT  /v1/datasets/{name}/subscribers/{id}           subscribe / update interests
//	DELETE /v1/datasets/{name}/subscribers/{id}         unsubscribe
//	GET  /v1/datasets/{name}/subscribers                list subscribers
//	GET  /v1/datasets/{name}/feed/{id}?after=&limit=    poll the feed with a cursor ack
//
// Recommendation knobs ride as query parameters: older, newer, k, strategy
// (plain|mmr|maxmin|novelty|semantic), lambda, interests (Class=w,... — the
// requesting user), privacy (kanon, epsilon, seed, pool=id:Class=w,...
// repeated), group membership (member=id:Class=w,... repeated, agg, fair,
// alpha) and notification thresholds (user=... repeated, threshold, k).
// Profiles are request-scoped: each request parses its own profiles, so
// concurrent requests never share mutable user state.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"evorec/internal/core"
	"evorec/internal/obs"
	"evorec/internal/profile"
	"evorec/internal/recommend"
	"evorec/internal/service"
)

// DefaultRetryAfterSeconds is the back-off hint sent with 503 responses
// when a dataset's group-commit queue is saturated: long enough for the
// committer to drain a full queue against a spinning disk, short enough
// that clients resume quickly once the burst passes.
const DefaultRetryAfterSeconds = 1

// Config parameterizes the HTTP layer. The zero value reproduces New's
// historical behavior: default Retry-After, no metrics, no access log.
type Config struct {
	// RetryAfterSeconds is the Retry-After hint on 503 responses
	// (ErrCommitBusy / ErrDatasetClosed); zero or negative keeps
	// DefaultRetryAfterSeconds.
	RetryAfterSeconds int
	// Metrics instruments every route (latency histogram, status-class
	// counters, in-flight gauge, response bytes) and mounts GET /metrics on
	// the API mux. Nil disables both.
	Metrics *obs.Registry
	// Logger receives one structured access line per request (request ID,
	// route, status, duration). Nil disables access logging.
	Logger *slog.Logger
	// Tracer joins or mints a W3C traceparent per request, opens a root
	// span per sampled request, and threads the trace context through every
	// handler into the service/store/feed layers. Nil disables tracing.
	Tracer *obs.Tracer
	// LatencyBuckets overrides the evorec_http_request_seconds bucket
	// schedule (upper bounds in seconds, positive and strictly increasing —
	// obs.ParseBuckets validates the CLI spelling). Nil keeps
	// obs.DefBuckets, so existing expositions are unchanged.
	LatencyBuckets []float64
	// RouteTimeout bounds every request's handler via context.WithTimeout:
	// the deadline threads through the service into store materialization
	// and cold pair builds, so an expired request stops consuming the write
	// lock instead of finishing work nobody will read. Zero disables
	// deadlines (the historical behavior). An expired deadline surfaces as
	// 504.
	RouteTimeout time.Duration
	// RouteTimeouts overrides RouteTimeout per route label (the mux pattern
	// without the method, e.g. "/v1/datasets/{name}/recommend"). A zero or
	// negative override disables the deadline for that route — commits
	// against slow disks often want exactly that.
	RouteTimeouts map[string]time.Duration
}

// Server is the HTTP front-end over a Service. It implements http.Handler
// and is safe for concurrent use.
type Server struct {
	svc        *service.Service
	mux        *http.ServeMux
	httpm      *obs.HTTPMetrics
	retryAfter string       // pre-formatted Retry-After header value
	rejections *obs.Counter // 503s sent (nil when uninstrumented)

	defTimeout    time.Duration
	routeTimeouts map[string]time.Duration
}

// New builds the HTTP API over the service with default configuration.
func New(svc *service.Service) *Server { return NewWithConfig(svc, Config{}) }

// NewWithConfig builds the HTTP API over the service.
func NewWithConfig(svc *service.Service, cfg Config) *Server {
	retry := cfg.RetryAfterSeconds
	if retry <= 0 {
		retry = DefaultRetryAfterSeconds
	}
	s := &Server{
		svc:           svc,
		mux:           http.NewServeMux(),
		httpm:         obs.NewHTTPMetricsBuckets(cfg.Metrics, cfg.Logger, cfg.Tracer, cfg.LatencyBuckets),
		retryAfter:    strconv.Itoa(retry),
		defTimeout:    cfg.RouteTimeout,
		routeTimeouts: cfg.RouteTimeouts,
	}
	if cfg.Metrics != nil {
		s.rejections = cfg.Metrics.Counter("evorec_http_rejections_total",
			"Requests rejected with 503 (commit queue saturated, dataset degraded or closing, cold-build gate full).")
		s.mux.Handle("GET /metrics", cfg.Metrics.Handler())
	}
	s.mux.Handle("GET /healthz", obs.HealthHandler(obs.FromBuildInfo("evorec"), nil))
	// Liveness and readiness split: /healthz answers 200 while the process
	// is up; /readyz answers 503 during WAL replay, checkpoints and the
	// shutdown drain, so load balancers steer around recovery windows.
	s.mux.Handle("GET /readyz", obs.ReadyHandler(svc.Ready))
	s.route("GET /v1/datasets", s.handleList)
	s.route("GET /v1/datasets/{name}", s.handleInspect)
	s.route("POST /v1/datasets/{name}", s.handleCreate)
	s.route("POST /v1/datasets/{name}/versions/{id}", s.handleCommit)
	s.route("GET /v1/datasets/{name}/delta", s.handleDelta)
	s.route("GET /v1/datasets/{name}/measures", s.handleMeasures)
	s.route("GET /v1/datasets/{name}/recommend", s.handleRecommend)
	s.route("GET /v1/datasets/{name}/recommend/group", s.handleRecommendGroup)
	s.route("GET /v1/datasets/{name}/notify", s.handleNotify)
	s.route("GET /v1/datasets/{name}/subscribers", s.handleSubscribers)
	s.route("PUT /v1/datasets/{name}/subscribers/{id}", s.handleSubscribe)
	s.route("DELETE /v1/datasets/{name}/subscribers/{id}", s.handleUnsubscribe)
	s.route("GET /v1/datasets/{name}/feed/{id}", s.handleFeed)
	return s
}

// route registers a handler under the observability middleware. The route
// label comes from the registration pattern (bounded cardinality — the
// mux's path wildcards, never raw request paths). With no metrics and no
// logger the middleware is a nil receiver and the handler mounts bare.
// The deadline middleware nests inside the observability wrapper, so panic
// containment covers it and the 504 is still counted/logged per route.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	label := obs.RouteLabel(pattern)
	s.mux.Handle(pattern, s.httpm.Wrap(label, s.withDeadline(label, h)))
}

// withDeadline bounds the handler with the route's configured timeout via
// context.WithTimeout. The deadline travels the request context into the
// service layer (queue waits, cold pair builds, store materialization), so
// expiry abandons in-progress work instead of merely abandoning the
// response. Routes without a timeout mount the handler unchanged.
func (s *Server) withDeadline(label string, h http.Handler) http.Handler {
	t, ok := s.routeTimeouts[label]
	if !ok {
		t = s.defTimeout
	}
	if t <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), t)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---------------------------------------------------------------------------
// JSON plumbing

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

type errorBody struct {
	Error string `json:"error"`
}

// writeErr maps service sentinel errors to HTTP statuses; everything else
// (malformed input wrapped by the handlers) is a 400. Overload and failure
// shedding (ErrCommitBusy, ErrDatasetClosed, ErrDegraded, ErrBuildBusy) are
// 503 with the configured Retry-After, telling well-behaved clients to back
// off rather than retry immediately; each such rejection is also counted so
// a load-shedding episode shows up as a rate, not just client-side errors.
// An expired route deadline is 504 — the client's budget ran out, nothing
// was shed, so it stays out of the rejection counter.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, service.ErrUnknownDataset), errors.Is(err, service.ErrUnknownVersion),
		errors.Is(err, service.ErrUnknownSubscriber):
		status = http.StatusNotFound
	case errors.Is(err, service.ErrDuplicateVersion), errors.Is(err, service.ErrDuplicateDataset):
		status = http.StatusConflict
	case errors.Is(err, service.ErrCommitBusy), errors.Is(err, service.ErrDatasetClosed),
		errors.Is(err, service.ErrDegraded), errors.Is(err, service.ErrBuildBusy):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", s.retryAfter)
		s.rejections.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// ---------------------------------------------------------------------------
// Query-parameter parsing

// parseInterests and parseUserSpec are the grammar shared with the CLI,
// building request-scoped profiles.
var (
	parseInterests = profile.ParseInterests
	parseUserSpec  = profile.ParseUserSpec
)

func parseStrategy(name string) (core.Strategy, error) {
	switch name {
	case "", "plain":
		return core.Plain, nil
	case "mmr":
		return core.DiverseMMR, nil
	case "maxmin":
		return core.DiverseMaxMin, nil
	case "novelty":
		return core.NoveltyAware, nil
	case "semantic":
		return core.SemanticDiverse, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want plain|mmr|maxmin|novelty|semantic)", name)
	}
}

func parseAggregation(name string) (recommend.Aggregation, error) {
	switch name {
	case "", "average":
		return recommend.Average, nil
	case "least_misery":
		return recommend.LeastMisery, nil
	case "most_pleasure":
		return recommend.MostPleasure, nil
	default:
		return 0, fmt.Errorf("unknown aggregation %q (want average|least_misery|most_pleasure)", name)
	}
}

// intParam parses an integer query parameter with a default.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// floatParam parses a float query parameter with a default.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not a number", name, v)
	}
	return f, nil
}

// pairParams extracts the older/newer version pair, both required.
func pairParams(r *http.Request) (older, newer string, err error) {
	older = r.URL.Query().Get("older")
	newer = r.URL.Query().Get("newer")
	if older == "" || newer == "" {
		return "", "", fmt.Errorf("parameters older and newer are required")
	}
	return older, newer, nil
}

func (s *Server) dataset(r *http.Request) (*service.Dataset, error) {
	return s.svc.Get(r.PathValue("name"))
}

// ---------------------------------------------------------------------------
// Dataset registry handlers

type infoJSON struct {
	Name              string   `json:"name"`
	Backed            bool     `json:"backed"`
	Dir               string   `json:"dir,omitempty"`
	Policy            string   `json:"policy,omitempty"`
	SnapshotEvery     int      `json:"snapshot_every,omitempty"`
	Versions          []string `json:"versions"`
	Terms             int      `json:"terms"`
	StoreCacheCap     int      `json:"store_cache_cap,omitempty"`
	StoreCacheHits    int      `json:"store_cache_hits"`
	StoreCacheMisses  int      `json:"store_cache_misses"`
	ContextBuilds     int      `json:"context_builds"`
	CachedPairs       []string `json:"cached_pairs"`
	ProvenanceRecords int      `json:"provenance_records"`
	Subscribers       int      `json:"subscribers"`
	FeedPairs         int      `json:"feed_pairs"`
}

func toInfoJSON(info service.Info) infoJSON {
	out := infoJSON{
		Name:              info.Name,
		Backed:            info.Backed,
		Dir:               info.Dir,
		Policy:            info.Policy,
		SnapshotEvery:     info.SnapshotEvery,
		Versions:          info.Versions,
		Terms:             info.Terms,
		StoreCacheCap:     info.StoreCacheCap,
		StoreCacheHits:    info.StoreCacheHits,
		StoreCacheMisses:  info.StoreCacheMisses,
		ContextBuilds:     info.ContextBuilds,
		CachedPairs:       info.CachedPairs,
		ProvenanceRecords: info.ProvenanceRecords,
		Subscribers:       info.Subscribers,
		FeedPairs:         info.FeedPairs,
	}
	if out.Versions == nil {
		out.Versions = []string{}
	}
	if out.CachedPairs == nil {
		out.CachedPairs = []string{}
	}
	return out
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos := s.svc.Infos()
	out := struct {
		Datasets []infoJSON `json:"datasets"`
	}{Datasets: make([]infoJSON, 0, len(infos))}
	for _, info := range infos {
		out.Datasets = append(out.Datasets, toInfoJSON(info))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toInfoJSON(d.Info()))
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	d, err := s.svc.Create(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, toInfoJSON(d.Info()))
}

// ---------------------------------------------------------------------------
// Version and analysis handlers

// maxCommitBody bounds a commit request's N-Triples body (128 MiB). The
// body is read fully before the dataset's write lock is taken — Commit
// parses under the lock (the body interns into the shared dictionary), and
// a slow client must not be able to stall every reader of the dataset for
// the duration of its upload.
const maxCommitBody = 128 << 20

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCommitBody))
	if err != nil {
		s.writeErr(w, fmt.Errorf("reading commit body: %w", err))
		return
	}
	info, err := d.CommitCtx(r.Context(), r.PathValue("id"), bytes.NewReader(body))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	type feedJSON struct {
		Subscribers int  `json:"subscribers"`
		Affected    int  `json:"affected"`
		Notified    int  `json:"notified"`
		Skipped     bool `json:"skipped,omitempty"`
	}
	out := struct {
		ID      string    `json:"id"`
		Triples int       `json:"triples"`
		Kind    string    `json:"kind"`
		Feed    *feedJSON `json:"feed,omitempty"`
		// FeedError reports a fan-out failure for an otherwise durable
		// commit (the version landed; the feed delivery degraded).
		FeedError string `json:"feed_error,omitempty"`
		// RequestID/TraceID attribute the commit (and its fan-out) to the
		// originating request; absent when untraced, so the pre-tracing
		// response shape is unchanged.
		RequestID string `json:"request_id,omitempty"`
		TraceID   string `json:"trace_id,omitempty"`
	}{ID: info.ID, Triples: info.Triples, Kind: info.Kind, FeedError: info.FeedError,
		RequestID: info.RequestID, TraceID: info.TraceID}
	if info.Feed != nil {
		out.Feed = &feedJSON{
			Subscribers: info.Feed.Subscribers,
			Affected:    info.Feed.Affected,
			Notified:    info.Feed.Notified,
			Skipped:     info.Feed.Skipped,
		}
	}
	writeJSON(w, http.StatusCreated, out)
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	older, newer, err := pairParams(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	stats, err := d.DeltaCtx(r.Context(), older, newer)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if stats.HighLevel == nil {
		stats.HighLevel = []string{}
	}
	writeJSON(w, http.StatusOK, struct {
		Older     string   `json:"older"`
		Newer     string   `json:"newer"`
		Added     int      `json:"added"`
		Deleted   int      `json:"deleted"`
		Size      int      `json:"size"`
		HighLevel []string `json:"high_level"`
	}{stats.Older, stats.Newer, stats.Added, stats.Deleted,
		stats.Added + stats.Deleted, stats.HighLevel})
}

type entityScoreJSON struct {
	Entity string  `json:"entity"`
	Score  float64 `json:"score"`
}

func (s *Server) handleMeasures(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	older, newer, err := pairParams(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	k, err := intParam(r, "k", 3)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	evals, err := d.MeasuresCtx(r.Context(), older, newer, k)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	type measureJSON struct {
		ID       string            `json:"id"`
		Name     string            `json:"name"`
		Category string            `json:"category"`
		Top      []entityScoreJSON `json:"top"`
	}
	out := struct {
		Older    string        `json:"older"`
		Newer    string        `json:"newer"`
		Measures []measureJSON `json:"measures"`
	}{Older: older, Newer: newer, Measures: make([]measureJSON, 0, len(evals))}
	for _, ev := range evals {
		mj := measureJSON{ID: ev.ID, Name: ev.Name, Category: ev.Category, Top: []entityScoreJSON{}}
		for _, e := range ev.Top {
			mj.Top = append(mj.Top, entityScoreJSON{Entity: e.Entity, Score: e.Score})
		}
		out.Measures = append(out.Measures, mj)
	}
	writeJSON(w, http.StatusOK, out)
}

// ---------------------------------------------------------------------------
// Recommendation handlers

type recJSON struct {
	Rank    int     `json:"rank"`
	Measure string  `json:"measure"`
	Score   float64 `json:"score"`
}

func toRecJSON(sel []recommend.Recommendation) []recJSON {
	out := make([]recJSON, 0, len(sel))
	for i, rec := range sel {
		out = append(out, recJSON{Rank: i + 1, Measure: rec.MeasureID, Score: rec.Score})
	}
	return out
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	older, newer, err := pairParams(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	q := r.URL.Query()
	k, err := intParam(r, "k", 3)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	strat, err := parseStrategy(q.Get("strategy"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	lambda, err := floatParam(r, "lambda", 0)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	userID := q.Get("user_id")
	if userID == "" {
		userID = "anonymous"
	}
	u, err := parseInterests(userID, q.Get("interests"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	req := core.Request{OlderID: older, NewerID: newer, K: k, Strategy: strat, Lambda: lambda}

	kanon, err := intParam(r, "kanon", 0)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// k-anonymity below 2 cannot anonymize anything; accepting kanon=1 would
	// report "private": true over the raw profile.
	if kanon == 1 || kanon < 0 {
		s.writeErr(w, fmt.Errorf("kanon must be 0 (off) or >= 2, got %d", kanon))
		return
	}
	epsilon, err := floatParam(r, "epsilon", 0)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if epsilon < 0 {
		s.writeErr(w, fmt.Errorf("epsilon must be >= 0, got %g", epsilon))
		return
	}
	var sel []recommend.Recommendation
	private := kanon >= 2 || epsilon > 0
	if private {
		seed, err := intParam(r, "seed", 0)
		if err != nil {
			s.writeErr(w, err)
			return
		}
		pool := []*profile.Profile{u}
		for _, spec := range q["pool"] {
			p, err := parseUserSpec(spec)
			if err != nil {
				s.writeErr(w, err)
				return
			}
			pool = append(pool, p)
		}
		pol := core.PrivacyPolicy{KAnonymity: kanon, Epsilon: epsilon, Seed: int64(seed)}
		sel, err = d.RecommendPrivateCtx(r.Context(), pool, 0, req, pol)
	} else {
		sel, err = d.RecommendCtx(r.Context(), u, req)
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		User            string    `json:"user"`
		Older           string    `json:"older"`
		Newer           string    `json:"newer"`
		Strategy        string    `json:"strategy"`
		Private         bool      `json:"private,omitempty"`
		Recommendations []recJSON `json:"recommendations"`
	}{u.ID, older, newer, strat.String(), private, toRecJSON(sel)})
}

func (s *Server) handleRecommendGroup(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	older, newer, err := pairParams(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	q := r.URL.Query()
	k, err := intParam(r, "k", 3)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	agg, err := parseAggregation(q.Get("agg"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	alpha, err := floatParam(r, "alpha", 0.5)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	specs := q["member"]
	if len(specs) == 0 {
		s.writeErr(w, fmt.Errorf("at least one member=id:Class=w parameter is required"))
		return
	}
	members := make([]*profile.Profile, 0, len(specs))
	for _, spec := range specs {
		p, err := parseUserSpec(spec)
		if err != nil {
			s.writeErr(w, err)
			return
		}
		members = append(members, p)
	}
	groupID := q.Get("group_id")
	if groupID == "" {
		groupID = "group"
	}
	g, err := profile.NewGroup(groupID, members)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	fair := q.Get("fair") == "1" || q.Get("fair") == "true"
	req := core.GroupRequest{
		OlderID: older, NewerID: newer, K: k,
		Aggregation: agg, FairGreedy: fair, FairAlpha: alpha,
	}
	sel, err := d.RecommendGroupCtx(r.Context(), g, req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	mode := agg.String()
	if fair {
		mode = fmt.Sprintf("fair_greedy(α=%.2f)", alpha)
	}
	writeJSON(w, http.StatusOK, struct {
		Group           string    `json:"group"`
		Members         int       `json:"members"`
		Older           string    `json:"older"`
		Newer           string    `json:"newer"`
		Mode            string    `json:"mode"`
		Recommendations []recJSON `json:"recommendations"`
	}{g.ID, g.Size(), older, newer, mode, toRecJSON(sel)})
}

// ---------------------------------------------------------------------------
// Subscription & feed handlers

type subscriberJSON struct {
	ID        string   `json:"id"`
	Terms     int      `json:"terms"`
	Interests []string `json:"interests"`
}

// maxSubscribeBody bounds a subscribe request's JSON body (1 MiB — an
// interest profile, not a dataset).
const maxSubscribeBody = 1 << 20

// handleSubscribe registers or updates a subscriber: PUT with a JSON body
// {"interests": "Class=w,Class=w"} in the grammar the CLI and the
// recommendation endpoints share. 201 on create, 200 on update.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubscribeBody))
	if err != nil {
		s.writeErr(w, fmt.Errorf("reading subscribe body: %w", err))
		return
	}
	var req struct {
		Interests string `json:"interests"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeErr(w, fmt.Errorf("decoding subscribe body: %w", err))
		return
	}
	p, err := parseInterests(r.PathValue("id"), req.Interests)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	info, created, err := d.Subscribe(p)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, subscriberJSON{ID: info.ID, Terms: info.Terms, Interests: info.Interests})
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	id := r.PathValue("id")
	if err := d.Unsubscribe(id); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID      string `json:"id"`
		Deleted bool   `json:"deleted"`
	}{id, true})
}

func (s *Server) handleSubscribers(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	subs := d.Subscribers()
	out := struct {
		Subscribers []subscriberJSON `json:"subscribers"`
	}{Subscribers: make([]subscriberJSON, 0, len(subs))}
	for _, sub := range subs {
		interests := sub.Interests
		if interests == nil {
			interests = []string{}
		}
		out.Subscribers = append(out.Subscribers, subscriberJSON{
			ID: sub.ID, Terms: sub.Terms, Interests: interests,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleFeed is the poll endpoint: entries with cursor > after (oldest
// first, up to limit), plus the cursor to ack next time — a client loops
// `after = next` to drain its log exactly once.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	q := r.URL.Query()
	after := uint64(0)
	if v := q.Get("after"); v != "" {
		after, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeErr(w, fmt.Errorf("parameter after=%q is not a cursor", v))
			return
		}
	}
	limit, err := intParam(r, "limit", 100)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if limit < 1 {
		s.writeErr(w, fmt.Errorf("limit must be >= 1, got %d", limit))
		return
	}
	user := r.PathValue("id")
	entries, next, err := d.PollFeed(user, after, limit)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	type entryJSON struct {
		Cursor      uint64  `json:"cursor"`
		Older       string  `json:"older"`
		Newer       string  `json:"newer"`
		Measure     string  `json:"measure"`
		Relatedness float64 `json:"relatedness"`
		Reason      string  `json:"reason"`
	}
	out := struct {
		User    string      `json:"user"`
		After   uint64      `json:"after"`
		Next    uint64      `json:"next"`
		Entries []entryJSON `json:"entries"`
	}{User: user, After: after, Next: next, Entries: make([]entryJSON, 0, len(entries))}
	for _, e := range entries {
		out.Entries = append(out.Entries, entryJSON{
			Cursor: e.Cursor, Older: e.Note.OlderID, Newer: e.Note.NewerID,
			Measure: e.Note.MeasureID, Relatedness: e.Note.Relatedness, Reason: e.Note.Reason,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleNotify(w http.ResponseWriter, r *http.Request) {
	d, err := s.dataset(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	older, newer, err := pairParams(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	q := r.URL.Query()
	k, err := intParam(r, "k", 1)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	threshold, err := floatParam(r, "threshold", 0.1)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	specs := q["user"]
	if len(specs) == 0 {
		s.writeErr(w, fmt.Errorf("at least one user=id:Class=w parameter is required"))
		return
	}
	pool := make([]*profile.Profile, 0, len(specs))
	for _, spec := range specs {
		p, err := parseUserSpec(spec)
		if err != nil {
			s.writeErr(w, err)
			return
		}
		pool = append(pool, p)
	}
	notes, err := d.NotifyCtx(r.Context(), pool, older, newer, threshold, k)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	type noteJSON struct {
		User        string  `json:"user"`
		Measure     string  `json:"measure"`
		Relatedness float64 `json:"relatedness"`
		Reason      string  `json:"reason"`
	}
	out := struct {
		Older         string     `json:"older"`
		Newer         string     `json:"newer"`
		Threshold     float64    `json:"threshold"`
		Notifications []noteJSON `json:"notifications"`
	}{Older: older, Newer: newer, Threshold: threshold, Notifications: []noteJSON{}}
	for _, n := range notes {
		out.Notifications = append(out.Notifications, noteJSON{
			User: n.UserID, Measure: n.MeasureID,
			Relatedness: n.Relatedness, Reason: n.Reason,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
