package server_test

import (
	"strings"
	"testing"
	"time"

	"evorec/internal/obs"
	"evorec/internal/server"
	"evorec/internal/service"
)

// TestServerRouteTimeout pins the deadline middleware: an exhausted route
// budget surfaces as 504 with a deadline message, and — unlike the 503
// shedding family — is never counted as a rejection (nothing was shed; the
// client's budget simply ran out).
func TestServerRouteTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	svc := service.New(service.Config{})
	if _, err := svc.Add("gallery", galleryVersions(t)); err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithConfig(svc, server.Config{
		Metrics:      reg,
		RouteTimeout: time.Nanosecond,
	})
	w := do(t, srv, "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&interests=Painting=1", "")
	if w.Code != 504 {
		t.Fatalf("status = %d, want 504; body: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "deadline") {
		t.Fatalf("504 body %q does not mention the deadline", w.Body.String())
	}
	if got := reg.Snapshot()["evorec_http_rejections_total"]; got != 0 {
		t.Fatalf("a 504 moved the rejection counter (%v); only 503 sheds may", got)
	}
}

// TestServerRouteTimeoutOverride verifies per-route overrides: a route with
// its budget zeroed out runs unbounded while the global default still
// applies everywhere else.
func TestServerRouteTimeoutOverride(t *testing.T) {
	svc := service.New(service.Config{})
	if _, err := svc.Add("gallery", galleryVersions(t)); err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithConfig(svc, server.Config{
		RouteTimeout: time.Nanosecond,
		RouteTimeouts: map[string]time.Duration{
			obs.RouteLabel("GET /v1/datasets/{name}/recommend"): 0, // unbounded
		},
	})
	w := do(t, srv, "GET", "/v1/datasets/gallery/recommend?older=v1&newer=v2&interests=Painting=1", "")
	if w.Code != 200 {
		t.Fatalf("overridden route = %d, want 200; body: %s", w.Code, w.Body.String())
	}
	// A cold pair on a non-overridden route: the recommend above warmed
	// (v1,v2), so probe the reverse pair to force a build under the 1ns
	// default budget. (A warm pair would serve regardless of deadline —
	// the fast path touches no context by design.)
	w = do(t, srv, "GET", "/v1/datasets/gallery/delta?older=v2&newer=v1", "")
	if w.Code != 504 {
		t.Fatalf("defaulted route = %d, want 504; body: %s", w.Code, w.Body.String())
	}
}
