package measures

import (
	"fmt"
	"testing"

	"evorec/internal/rdf"
)

// versionPair builds a controlled evolution:
//
// v1 schema: Root <- {Hot, Cold, Edge}; link: Hot -> Cold; instances on all.
// v2: Hot gains instances and links, Hot is re-parented under Edge, a new
// class Fresh appears, Cold is untouched except through neighborhood.
func versionPair() (*rdf.Version, *rdf.Version) {
	g1 := rdf.NewGraph()
	root, hot, cold, edge := term("Root"), term("Hot"), term("Cold"), term("Edge")
	link := term("link")
	for _, c := range []rdf.Term{root, hot, cold, edge} {
		g1.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
	}
	g1.Add(rdf.T(hot, rdf.RDFSSubClassOf, root))
	g1.Add(rdf.T(cold, rdf.RDFSSubClassOf, root))
	g1.Add(rdf.T(edge, rdf.RDFSSubClassOf, root))
	g1.Add(rdf.T(link, rdf.RDFSDomain, hot))
	g1.Add(rdf.T(link, rdf.RDFSRange, cold))
	for i := 0; i < 3; i++ {
		h := rdf.ResourceIRI(fmt.Sprintf("h%d", i))
		c := rdf.ResourceIRI(fmt.Sprintf("c%d", i))
		g1.Add(rdf.T(h, rdf.RDFType, hot))
		g1.Add(rdf.T(c, rdf.RDFType, cold))
		g1.Add(rdf.T(h, link, c))
	}
	g1.Add(rdf.T(rdf.ResourceIRI("e0"), rdf.RDFType, edge))

	g2 := g1.Clone()
	// Re-parent Hot, add a class, add instances+links to Hot.
	g2.Remove(rdf.T(hot, rdf.RDFSSubClassOf, root))
	g2.Add(rdf.T(hot, rdf.RDFSSubClassOf, edge))
	fresh := term("Fresh")
	g2.Add(rdf.T(fresh, rdf.RDFType, rdf.RDFSClass))
	// New links target an Edge instance: this changes the class-pair link
	// distribution (relative cardinality is a proportion, so links that only
	// scale an existing edge would leave semantic centrality untouched).
	for i := 3; i < 8; i++ {
		h := rdf.ResourceIRI(fmt.Sprintf("h%d", i))
		g2.Add(rdf.T(h, rdf.RDFType, hot))
		g2.Add(rdf.T(h, term("link"), rdf.ResourceIRI("e0")))
	}
	v1 := &rdf.Version{ID: "v1", Graph: g1}
	v2 := &rdf.Version{ID: "v2", Graph: g2}
	return v1, v2
}

func TestNewContextPopulated(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	if ctx.Delta.IsEmpty() {
		t.Fatal("delta must not be empty")
	}
	if ctx.OlderSchema.NumClasses() != 4 || ctx.NewerSchema.NumClasses() != 5 {
		t.Fatalf("schema class counts = %d,%d want 4,5",
			ctx.OlderSchema.NumClasses(), ctx.NewerSchema.NumClasses())
	}
	if len(ctx.UnionClasses()) != 5 {
		t.Fatalf("union classes = %v", ctx.UnionClasses())
	}
	if len(ctx.UnionProperties()) != 1 {
		t.Fatalf("union properties = %v", ctx.UnionProperties())
	}
}

func TestUnionNeighborsCoversBothVersions(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	// Hot's neighborhood: Root (v1 super), Edge (v2 super), Cold (link range).
	ns := ctx.UnionNeighbors(term("Hot"))
	want := map[rdf.Term]bool{term("Root"): true, term("Edge"): true, term("Cold"): true}
	if len(ns) != len(want) {
		t.Fatalf("UnionNeighbors(Hot) = %v", ns)
	}
	for _, n := range ns {
		if !want[n] {
			t.Fatalf("unexpected neighbor %v", n)
		}
	}
}

func TestChangeCountConcentratesOnHot(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	s := ChangeCount{}.Compute(ctx)
	if s[term("Hot")] <= s[term("Cold")] {
		t.Fatalf("Hot (%g) must out-change Cold (%g)", s[term("Hot")], s[term("Cold")])
	}
	// Fresh appeared: exactly 1 triple mentions it.
	if s[term("Fresh")] != 1 {
		t.Fatalf("Fresh change count = %g, want 1", s[term("Fresh")])
	}
	// link property got 5 new usages + score covers property population.
	if s[term("link")] < 5 {
		t.Fatalf("link change count = %g, want >= 5", s[term("link")])
	}
}

func TestNeighborhoodChangeCountSeesAdjacentBurst(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	s := NeighborhoodChangeCount{}.Compute(ctx)
	// Cold itself changed little, but its neighbor Hot burst: Cold's
	// neighborhood score must exceed its own direct change count.
	direct := ChangeCount{}.Compute(ctx)
	if s[term("Cold")] <= direct[term("Cold")] {
		t.Fatalf("neighborhood count (%g) must exceed direct count (%g) for Cold",
			s[term("Cold")], direct[term("Cold")])
	}
	// Isolated Fresh has no neighbors in either version.
	if s[term("Fresh")] != 0 {
		t.Fatalf("Fresh neighborhood count = %g, want 0", s[term("Fresh")])
	}
}

func TestBetweennessShiftDetectsRewiring(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	s := BetweennessShift{}.Compute(ctx)
	// Re-parenting Hot under Edge changes Edge's betweenness (it becomes a
	// path vertex between Hot and Root).
	if s[term("Edge")] == 0 {
		t.Fatalf("Edge betweenness shift must be non-zero; scores=%v", s)
	}
	total := 0.0
	for _, v := range s {
		total += v
	}
	if total == 0 {
		t.Fatal("rewiring must shift some betweenness")
	}
}

func TestBridgingShiftNonNegativeAndCoversClasses(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	s := BridgingShift{}.Compute(ctx)
	if len(s) != len(ctx.UnionClasses()) {
		t.Fatalf("bridging shift must cover all union classes: %d vs %d",
			len(s), len(ctx.UnionClasses()))
	}
	for c, v := range s {
		if v < 0 {
			t.Fatalf("negative shift for %v", c)
		}
	}
}

func TestCentralityShiftTracksLinkGrowth(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	s := CentralityShift{}.Compute(ctx)
	// Hot gained 5 links to a new target class: its link distribution (and
	// the targets') shifted, while Root saw no instance-level change.
	if s[term("Hot")] == 0 || s[term("Edge")] == 0 {
		t.Fatalf("Hot (%g) and Edge (%g) centrality must shift", s[term("Hot")], s[term("Edge")])
	}
	if s[term("Root")] != 0 {
		t.Fatalf("Root centrality shift = %g, want 0", s[term("Root")])
	}
}

func TestRelevanceShiftCapturesInstanceWeight(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	s := RelevanceShift{}.Compute(ctx)
	if s[term("Hot")] == 0 {
		t.Fatal("Hot relevance must shift after instance growth")
	}
	for c, v := range s {
		if v < 0 {
			t.Fatalf("negative relevance shift for %v", c)
		}
	}
}

func TestPropertyCentralityShift(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	s := PropertyCentralityShift{}.Compute(ctx)
	if s[term("link")] == 0 {
		t.Fatal("link property centrality must shift")
	}
	if len(s) != 1 {
		t.Fatalf("property shift population = %v", s)
	}
}

func TestIdenticalVersionsAllZero(t *testing.T) {
	v1, _ := versionPair()
	v1b := &rdf.Version{ID: "v1b", Graph: v1.Graph.Clone()}
	ctx := NewContext(v1, v1b)
	for _, m := range DefaultSet() {
		s := m.Compute(ctx)
		for c, v := range s {
			if v != 0 {
				t.Fatalf("measure %s: identical versions must score 0, got %s=%g",
					m.ID(), c.Local(), v)
			}
		}
	}
}

func TestMeasureMetadata(t *testing.T) {
	ids := make(map[string]bool)
	for _, m := range DefaultSet() {
		if m.ID() == "" || m.Name() == "" || m.Description() == "" {
			t.Fatalf("measure %T missing metadata", m)
		}
		if ids[m.ID()] {
			t.Fatalf("duplicate measure ID %q", m.ID())
		}
		ids[m.ID()] = true
		_ = m.Target().String()
	}
	if !ids["change_count"] || !ids["relevance_shift"] {
		t.Fatal("default set must include the paper's measures")
	}
}

func TestTargetString(t *testing.T) {
	if Classes.String() != "classes" || Properties.String() != "properties" ||
		ClassesAndProperties.String() != "classes+properties" {
		t.Fatal("Target.String mismatch")
	}
	if Target(99).String() == "" {
		t.Fatal("unknown target must render")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Len() != len(DefaultSet()) {
		t.Fatalf("registry len = %d", r.Len())
	}
	if _, ok := r.Get("change_count"); !ok {
		t.Fatal("change_count must be registered")
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("unknown measure must be absent")
	}
	if err := r.Register(ChangeCount{}); err == nil {
		t.Fatal("duplicate register must fail")
	}
	all := r.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID() >= all[i].ID() {
			t.Fatal("All() must be sorted by ID")
		}
	}
}

func TestRegistryEvaluateAll(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	r := NewRegistry()
	res := r.EvaluateAll(ctx)
	if len(res) != r.Len() {
		t.Fatalf("EvaluateAll returned %d results, want %d", len(res), r.Len())
	}
	for id, s := range res {
		if len(s) == 0 {
			t.Fatalf("measure %s produced empty scores", id)
		}
	}
}

type badMeasure struct{ Measure }

func (badMeasure) ID() string { return "" }

func TestRegistryRejectsEmptyID(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(badMeasure{}); err == nil {
		t.Fatal("empty-ID measure must be rejected")
	}
}
