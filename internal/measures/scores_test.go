package measures

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"evorec/internal/rdf"
)

func term(s string) rdf.Term { return rdf.SchemaIRI(s) }

func TestRankDeterministicTieBreak(t *testing.T) {
	s := Scores{term("B"): 2, term("A"): 2, term("C"): 5}
	r := s.Rank()
	if r[0].Term != term("C") {
		t.Fatalf("rank[0] = %v, want C", r[0].Term)
	}
	// Tie between A and B broken by term order.
	if r[1].Term != term("A") || r[2].Term != term("B") {
		t.Fatalf("tie break wrong: %v", r.Terms())
	}
}

func TestTopKAndPositionOf(t *testing.T) {
	s := Scores{term("A"): 3, term("B"): 2, term("C"): 1}
	r := s.Rank()
	if got := r.TopK(2); len(got) != 2 || got[0].Term != term("A") {
		t.Fatalf("TopK(2) = %v", got)
	}
	if got := r.TopK(10); len(got) != 3 {
		t.Fatalf("TopK over length = %v", got)
	}
	if r.PositionOf(term("B")) != 1 {
		t.Fatalf("PositionOf(B) = %d, want 1", r.PositionOf(term("B")))
	}
	if r.PositionOf(term("Z")) != -1 {
		t.Fatal("PositionOf(absent) must be -1")
	}
}

func TestNormalize(t *testing.T) {
	s := Scores{term("A"): 4, term("B"): 2, term("C"): 0}
	n := s.Normalize()
	if n[term("A")] != 1 || n[term("B")] != 0.5 || n[term("C")] != 0 {
		t.Fatalf("Normalize = %v", n)
	}
	zero := Scores{term("A"): 0}
	if got := zero.Normalize(); got[term("A")] != 0 {
		t.Fatal("all-zero Normalize must stay zero")
	}
}

func TestTotalNonZero(t *testing.T) {
	s := Scores{term("A"): 4, term("B"): 0, term("C"): 1}
	if s.Total() != 5 {
		t.Fatalf("Total = %g", s.Total())
	}
	if s.NonZero() != 2 {
		t.Fatalf("NonZero = %d", s.NonZero())
	}
}

func TestTopKJaccard(t *testing.T) {
	a := Scores{term("A"): 3, term("B"): 2, term("C"): 1}.Rank()
	b := Scores{term("A"): 9, term("D"): 5, term("B"): 1}.Rank()
	// top-2: {A,B} vs {A,D} -> 1/3.
	if got := TopKJaccard(a, b, 2); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Jaccard = %g, want 1/3", got)
	}
	if got := TopKJaccard(a, a, 3); got != 1 {
		t.Fatalf("self Jaccard = %g, want 1", got)
	}
	if got := TopKJaccard(Ranking{}, Ranking{}, 5); got != 1 {
		t.Fatalf("empty Jaccard = %g, want 1", got)
	}
	disjointA := Scores{term("A"): 1}.Rank()
	disjointB := Scores{term("B"): 1}.Rank()
	if got := TopKJaccard(disjointA, disjointB, 1); got != 0 {
		t.Fatalf("disjoint Jaccard = %g, want 0", got)
	}
}

func TestKendallTau(t *testing.T) {
	u := []rdf.Term{term("A"), term("B"), term("C")}
	s1 := Scores{term("A"): 3, term("B"): 2, term("C"): 1}
	if got := KendallTau(s1, s1, u); got != 1 {
		t.Fatalf("self tau = %g, want 1", got)
	}
	rev := Scores{term("A"): 1, term("B"): 2, term("C"): 3}
	if got := KendallTau(s1, rev, u); got != -1 {
		t.Fatalf("reversed tau = %g, want -1", got)
	}
	if got := KendallTau(s1, rev, u[:1]); got != 0 {
		t.Fatalf("tiny universe tau = %g, want 0", got)
	}
	// Ties contribute zero.
	tied := Scores{term("A"): 1, term("B"): 1, term("C"): 0}
	got := KendallTau(s1, tied, u)
	// pairs: (A,B): s1 diff>0, tied diff=0 -> 0; (A,C): +,+ -> +1; (B,C): +,+ -> +1.
	want := 2.0 / 3.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("tied tau = %g, want %g", got, want)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	u := []rdf.Term{term("A"), term("B"), term("C"), term("D")}
	s1 := Scores{term("A"): 1, term("B"): 2, term("C"): 3, term("D"): 4}
	s2 := Scores{term("A"): 2, term("B"): 4, term("C"): 6, term("D"): 8}
	if got := PearsonCorrelation(s1, s2, u); math.Abs(got-1) > 1e-12 {
		t.Fatalf("linear corr = %g, want 1", got)
	}
	neg := Scores{term("A"): 4, term("B"): 3, term("C"): 2, term("D"): 1}
	if got := PearsonCorrelation(s1, neg, u); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti corr = %g, want -1", got)
	}
	flat := Scores{term("A"): 5, term("B"): 5, term("C"): 5, term("D"): 5}
	if got := PearsonCorrelation(s1, flat, u); got != 0 {
		t.Fatalf("zero-variance corr = %g, want 0", got)
	}
}

// Property: KendallTau is symmetric and bounded.
func TestKendallTauBoundsProperty(t *testing.T) {
	f := func(v1, v2 [6]uint8) bool {
		u := []rdf.Term{term("A"), term("B"), term("C"), term("D"), term("E"), term("F")}
		s1, s2 := Scores{}, Scores{}
		for i, x := range u {
			s1[x] = float64(v1[i])
			s2[x] = float64(v2[i])
		}
		tau := KendallTau(s1, s2, u)
		if tau < -1 || tau > 1 {
			return false
		}
		return math.Abs(tau-KendallTau(s2, s1, u)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rank is a permutation with non-increasing scores.
func TestRankMonotoneProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		s := Scores{}
		for i, v := range vals {
			s[rdf.ResourceIRI(fmt.Sprintf("t%d", i))] = float64(v)
		}
		r := s.Rank()
		if len(r) != len(s) {
			return false
		}
		for i := 1; i < len(r); i++ {
			if r[i-1].Score < r[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
