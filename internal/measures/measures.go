package measures

import (
	"fmt"
	"math"
	"sort"

	"evorec/internal/rdf"
)

// Target says which entity population a measure scores.
type Target uint8

const (
	// Classes means the measure scores classes only.
	Classes Target = iota
	// Properties means the measure scores properties only.
	Properties
	// ClassesAndProperties means the measure scores both populations.
	ClassesAndProperties
)

// String names the target population.
func (t Target) String() string {
	switch t {
	case Classes:
		return "classes"
	case Properties:
		return "properties"
	case ClassesAndProperties:
		return "classes+properties"
	default:
		return fmt.Sprintf("target(%d)", uint8(t))
	}
}

// Category groups measures by the kind of evolution signal they read, the
// paper's "different vertical and complementary viewpoints". Semantic
// diversification (§III-c) selects across categories.
type Category uint8

const (
	// CategoryCount covers raw change-counting measures (§II-a/b).
	CategoryCount Category = iota
	// CategoryStructural covers topology-based importance shifts (§II-c).
	CategoryStructural
	// CategorySemantic covers instance-weighted importance shifts (§II-d).
	CategorySemantic
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CategoryCount:
		return "count"
	case CategoryStructural:
		return "structural"
	case CategorySemantic:
		return "semantic"
	default:
		return fmt.Sprintf("category(%d)", uint8(c))
	}
}

// Categories lists all categories in stable order.
func Categories() []Category {
	return []Category{CategoryCount, CategoryStructural, CategorySemantic}
}

// Measure quantifies the evolution intensity of knowledge-base entities
// between two versions. Implementations must be stateless: all version data
// comes from the Context.
type Measure interface {
	// ID is the stable machine name (snake_case) used in registries,
	// experiment tables and user profiles.
	ID() string
	// Name is the human-readable name.
	Name() string
	// Description explains what aspect of evolution the measure captures.
	Description() string
	// Target reports which entity population the measure scores.
	Target() Target
	// Category reports which viewpoint family the measure belongs to.
	Category() Category
	// Compute evaluates the measure over the version pair.
	Compute(ctx *Context) Scores
}

// ---------------------------------------------------------------------------
// 1. ChangeCount (§II-a)

// ChangeCount counts |δ(n)| = |δ+(n)| + |δ−(n)|: the number of added or
// deleted triples mentioning each class and property.
type ChangeCount struct{}

// ID implements Measure.
func (ChangeCount) ID() string { return "change_count" }

// Name implements Measure.
func (ChangeCount) Name() string { return "Number of class/property changes" }

// Description implements Measure.
func (ChangeCount) Description() string {
	return "Counts the low-level delta triples that mention each class or property (paper §II-a)."
}

// Target implements Measure.
func (ChangeCount) Target() Target { return ClassesAndProperties }

// Category implements Measure.
func (ChangeCount) Category() Category { return CategoryCount }

// Compute implements Measure.
func (ChangeCount) Compute(ctx *Context) Scores {
	out := make(Scores)
	for _, c := range ctx.UnionClasses() {
		out[c] = float64(ctx.Attr.Changes(c).Total())
	}
	for _, p := range ctx.UnionProperties() {
		out[p] = float64(ctx.Attr.Changes(p).Total())
	}
	return out
}

// ---------------------------------------------------------------------------
// 2. NeighborhoodChangeCount (§II-b)

// NeighborhoodChangeCount counts |δN(n)|: the changes over each class's
// two-version schema neighborhood, revealing topology-level change bursts
// around a class even when the class itself is untouched.
type NeighborhoodChangeCount struct{}

// ID implements Measure.
func (NeighborhoodChangeCount) ID() string { return "neighborhood_change_count" }

// Name implements Measure.
func (NeighborhoodChangeCount) Name() string { return "Number of changes in neighborhoods" }

// Description implements Measure.
func (NeighborhoodChangeCount) Description() string {
	return "Sums the per-class change counts over the class's subsumption/property neighborhood in either version (paper §II-b)."
}

// Target implements Measure.
func (NeighborhoodChangeCount) Target() Target { return Classes }

// Category implements Measure.
func (NeighborhoodChangeCount) Category() Category { return CategoryCount }

// Compute implements Measure.
func (NeighborhoodChangeCount) Compute(ctx *Context) Scores {
	out := make(Scores)
	for _, c := range ctx.UnionClasses() {
		out[c] = float64(ctx.Attr.NeighborhoodChanges(ctx.UnionNeighbors(c)))
	}
	return out
}

// ---------------------------------------------------------------------------
// 3. BetweennessShift (§II-c)

// BetweennessShift scores each class by the absolute change of its
// betweenness centrality in the class-level structural graph between the
// two versions.
type BetweennessShift struct{}

// ID implements Measure.
func (BetweennessShift) ID() string { return "betweenness_shift" }

// Name implements Measure.
func (BetweennessShift) Name() string { return "Betweenness shift" }

// Description implements Measure.
func (BetweennessShift) Description() string {
	return "Absolute difference of class betweenness centrality across versions (paper §II-c)."
}

// Target implements Measure.
func (BetweennessShift) Target() Target { return Classes }

// Category implements Measure.
func (BetweennessShift) Category() Category { return CategoryStructural }

// Compute implements Measure.
func (BetweennessShift) Compute(ctx *Context) Scores {
	return shiftScores(ctx, ctx.OlderStruct.Betweenness(), ctx.NewerStruct.Betweenness())
}

// ---------------------------------------------------------------------------
// 4. BridgingShift (§II-c)

// BridgingShift scores each class by the absolute change of its bridging
// centrality (betweenness × bridging coefficient), capturing shifts in the
// "connector" role of a class between densely connected regions.
type BridgingShift struct{}

// ID implements Measure.
func (BridgingShift) ID() string { return "bridging_shift" }

// Name implements Measure.
func (BridgingShift) Name() string { return "Bridging centrality shift" }

// Description implements Measure.
func (BridgingShift) Description() string {
	return "Absolute difference of class bridging centrality across versions (paper §II-c)."
}

// Target implements Measure.
func (BridgingShift) Target() Target { return Classes }

// Category implements Measure.
func (BridgingShift) Category() Category { return CategoryStructural }

// Compute implements Measure.
func (BridgingShift) Compute(ctx *Context) Scores {
	return shiftScores(ctx, ctx.OlderStruct.BridgingCentrality(), ctx.NewerStruct.BridgingCentrality())
}

// ---------------------------------------------------------------------------
// 5. CentralityShift (§II-d)

// CentralityShift scores each class by the absolute change of its semantic
// in/out-centrality (weighted relative cardinalities of its properties).
type CentralityShift struct{}

// ID implements Measure.
func (CentralityShift) ID() string { return "centrality_shift" }

// Name implements Measure.
func (CentralityShift) Name() string { return "Semantic centrality shift" }

// Description implements Measure.
func (CentralityShift) Description() string {
	return "Absolute difference of semantic in/out-centrality across versions (paper §II-d)."
}

// Target implements Measure.
func (CentralityShift) Target() Target { return Classes }

// Category implements Measure.
func (CentralityShift) Category() Category { return CategorySemantic }

// Compute implements Measure.
func (CentralityShift) Compute(ctx *Context) Scores {
	out := make(Scores)
	for _, c := range ctx.UnionClasses() {
		out[c] = math.Abs(ctx.NewerSem.Centrality(c) - ctx.OlderSem.Centrality(c))
	}
	return out
}

// ---------------------------------------------------------------------------
// 6. RelevanceShift (§II-d)

// RelevanceShift scores each class by the absolute change of its relevance
// (neighborhood-extended, instance-weighted centrality), the paper's most
// holistic importance signal.
type RelevanceShift struct{}

// ID implements Measure.
func (RelevanceShift) ID() string { return "relevance_shift" }

// Name implements Measure.
func (RelevanceShift) Name() string { return "Relevance shift" }

// Description implements Measure.
func (RelevanceShift) Description() string {
	return "Absolute difference of neighborhood-extended, instance-weighted relevance across versions (paper §II-d)."
}

// Target implements Measure.
func (RelevanceShift) Target() Target { return Classes }

// Category implements Measure.
func (RelevanceShift) Category() Category { return CategorySemantic }

// Compute implements Measure.
func (RelevanceShift) Compute(ctx *Context) Scores {
	out := make(Scores)
	for _, c := range ctx.UnionClasses() {
		out[c] = math.Abs(ctx.NewerSem.Relevance(c) - ctx.OlderSem.Relevance(c))
	}
	return out
}

// ---------------------------------------------------------------------------
// 7. PropertyCentralityShift (§II extension to properties)

// PropertyCentralityShift scores each property by the absolute change of
// its semantic centrality (sum of relative cardinalities of the class-level
// edges it realizes). The paper sketches this extension at the end of §II.
type PropertyCentralityShift struct{}

// ID implements Measure.
func (PropertyCentralityShift) ID() string { return "property_centrality_shift" }

// Name implements Measure.
func (PropertyCentralityShift) Name() string { return "Property centrality shift" }

// Description implements Measure.
func (PropertyCentralityShift) Description() string {
	return "Absolute difference of property-level semantic centrality across versions (paper §II, property extension)."
}

// Target implements Measure.
func (PropertyCentralityShift) Target() Target { return Properties }

// Category implements Measure.
func (PropertyCentralityShift) Category() Category { return CategorySemantic }

// Compute implements Measure.
func (PropertyCentralityShift) Compute(ctx *Context) Scores {
	out := make(Scores)
	for _, p := range ctx.UnionProperties() {
		out[p] = math.Abs(ctx.NewerSem.PropertyCentrality(p) - ctx.OlderSem.PropertyCentrality(p))
	}
	return out
}

func shiftScores(ctx *Context, older, newer map[rdf.Term]float64) Scores {
	out := make(Scores)
	for _, c := range ctx.UnionClasses() {
		out[c] = math.Abs(newer[c] - older[c])
	}
	return out
}

// ---------------------------------------------------------------------------
// Registry

// Registry maps measure IDs to measure implementations.
type Registry struct {
	byID map[string]Measure
}

// NewRegistry returns a registry pre-populated with the default measure set.
func NewRegistry() *Registry {
	r := &Registry{byID: make(map[string]Measure)}
	for _, m := range DefaultSet() {
		// Default set has unique IDs by construction.
		r.byID[m.ID()] = m
	}
	return r
}

// DefaultSet returns the exemplar measures of the paper's §II, in a stable
// order.
func DefaultSet() []Measure {
	return []Measure{
		ChangeCount{},
		NeighborhoodChangeCount{},
		BetweennessShift{},
		BridgingShift{},
		CentralityShift{},
		RelevanceShift{},
		PropertyCentralityShift{},
	}
}

// Register adds a measure; it fails if the ID is empty or taken.
func (r *Registry) Register(m Measure) error {
	if m.ID() == "" {
		return fmt.Errorf("measures: measure must have a non-empty ID")
	}
	if _, dup := r.byID[m.ID()]; dup {
		return fmt.Errorf("measures: measure %q already registered", m.ID())
	}
	r.byID[m.ID()] = m
	return nil
}

// Get returns the measure with the given ID.
func (r *Registry) Get(id string) (Measure, bool) {
	m, ok := r.byID[id]
	return m, ok
}

// All returns every registered measure sorted by ID.
func (r *Registry) All() []Measure {
	ids := make([]string, 0, len(r.byID))
	for id := range r.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Measure, len(ids))
	for i, id := range ids {
		out[i] = r.byID[id]
	}
	return out
}

// Len returns the number of registered measures.
func (r *Registry) Len() int { return len(r.byID) }

// EvaluateAll computes every registered measure on the context, keyed by
// measure ID.
func (r *Registry) EvaluateAll(ctx *Context) map[string]Scores {
	out := make(map[string]Scores, len(r.byID))
	for id, m := range r.byID {
		out[id] = m.Compute(ctx)
	}
	return out
}
