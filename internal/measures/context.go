package measures

import (
	"evorec/internal/delta"
	"evorec/internal/graphx"
	"evorec/internal/rdf"
	"evorec/internal/schema"
	"evorec/internal/semantics"
)

// Context carries everything a measure may need about one (older, newer)
// version pair: the raw graphs, the extracted schemas, the low-level delta
// with its attribution, the semantic analyzers and the class-level
// structural graphs. Building a Context is the expensive step; evaluating
// the individual measures on it is cheap, so the engine builds one Context
// per version pair and evaluates the whole measure set against it.
type Context struct {
	Older, Newer             *rdf.Version
	OlderSchema, NewerSchema *schema.Schema
	Delta                    *delta.Delta
	Attr                     *delta.Attribution
	OlderSem, NewerSem       *semantics.Analyzer
	OlderStruct, NewerStruct *graphx.Graph
}

// NewContext computes all derived structures for the version pair.
func NewContext(older, newer *rdf.Version) *Context {
	so := schema.Extract(older.Graph)
	sn := schema.Extract(newer.Graph)
	d := delta.ComputeVersions(older, newer)
	return &Context{
		Older:       older,
		Newer:       newer,
		OlderSchema: so,
		NewerSchema: sn,
		Delta:       d,
		Attr:        delta.Attribute(d),
		OlderSem:    semantics.NewAnalyzer(older.Graph, so),
		NewerSem:    semantics.NewAnalyzer(newer.Graph, sn),
		OlderStruct: graphx.FromAdjacencyIDs(so.ClassGraphIDs()),
		NewerStruct: graphx.FromAdjacencyIDs(sn.ClassGraphIDs()),
	}
}

// UnionClasses returns the classes present in either version, sorted.
func (c *Context) UnionClasses() []rdf.Term {
	return unionTerms(c.OlderSchema.ClassTerms(), c.NewerSchema.ClassTerms())
}

// UnionProperties returns the properties present in either version, sorted.
func (c *Context) UnionProperties() []rdf.Term {
	return unionTerms(c.OlderSchema.PropertyTerms(), c.NewerSchema.PropertyTerms())
}

// UnionNeighbors returns the paper's two-version neighborhood N_{V1,V2}(n):
// the union of n's schema neighborhoods in the older and newer versions.
func (c *Context) UnionNeighbors(n rdf.Term) []rdf.Term {
	return unionTerms(c.OlderSchema.Neighbors(n), c.NewerSchema.Neighbors(n))
}

func unionTerms(a, b []rdf.Term) []rdf.Term {
	set := make(map[rdf.Term]struct{}, len(a)+len(b))
	for _, t := range a {
		set[t] = struct{}{}
	}
	for _, t := range b {
		set[t] = struct{}{}
	}
	out := make([]rdf.Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	rdf.SortTerms(out)
	return out
}
