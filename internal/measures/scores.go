// Package measures defines the evolution-measure framework: the Measure
// interface, the evaluation Context shared by all measures over one version
// pair, score/ranking utilities, and the six exemplar measures of the
// paper's §II (change counts, neighborhood change counts, betweenness
// shift, bridging shift, semantic centrality shift, relevance shift).
package measures

import (
	"math"
	"sort"

	"evorec/internal/rdf"
)

// Scores maps entities (classes or properties) to a non-negative intensity
// score. Higher means "more affected by the evolution".
type Scores map[rdf.Term]float64

// Entry is one ranked entity.
type Entry struct {
	Term  rdf.Term
	Score float64
}

// Ranking is a deterministic ordering of scores: descending by score, ties
// broken by ascending term order.
type Ranking []Entry

// Rank converts the scores into a Ranking.
func (s Scores) Rank() Ranking {
	r := make(Ranking, 0, len(s))
	for t, v := range s {
		r = append(r, Entry{Term: t, Score: v})
	}
	sort.Slice(r, func(i, j int) bool {
		if r[i].Score != r[j].Score {
			return r[i].Score > r[j].Score
		}
		return r[i].Term.Compare(r[j].Term) < 0
	})
	return r
}

// TopK returns the first k entries of the ranking (fewer if the ranking is
// shorter).
func (r Ranking) TopK(k int) Ranking {
	if k > len(r) {
		k = len(r)
	}
	return r[:k]
}

// Terms returns the ranked terms in order.
func (r Ranking) Terms() []rdf.Term {
	out := make([]rdf.Term, len(r))
	for i, e := range r {
		out[i] = e.Term
	}
	return out
}

// PositionOf returns the 0-based rank of t, or -1 if absent.
func (r Ranking) PositionOf(t rdf.Term) int {
	for i, e := range r {
		if e.Term == t {
			return i
		}
	}
	return -1
}

// Normalize rescales the scores into [0, 1] by dividing by the maximum.
// All-zero (or empty) score sets are returned unchanged.
func (s Scores) Normalize() Scores {
	max := 0.0
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return s
	}
	out := make(Scores, len(s))
	for t, v := range s {
		out[t] = v / max
	}
	return out
}

// Total returns the sum of all scores, accumulated smallest-first so the
// result is a function of the score multiset alone. Map iteration order
// used to wiggle the last float bits run to run, which the popularity
// ranking (and its cached form in the scoring kernel's item index) turns
// into nondeterministic tie-breaks.
func (s Scores) Total() float64 {
	vals := make([]float64, 0, len(s))
	for _, v := range s {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum
}

// NonZero returns the number of entities with a strictly positive score.
func (s Scores) NonZero() int {
	n := 0
	for _, v := range s {
		if v > 0 {
			n++
		}
	}
	return n
}

// TopKJaccard computes the Jaccard similarity of the top-k term sets of two
// rankings: |A∩B| / |A∪B|. Two empty top-k sets have similarity 1.
func TopKJaccard(a, b Ranking, k int) float64 {
	sa := make(map[rdf.Term]struct{})
	for _, e := range a.TopK(k) {
		sa[e.Term] = struct{}{}
	}
	sb := make(map[rdf.Term]struct{})
	for _, e := range b.TopK(k) {
		sb[e.Term] = struct{}{}
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// KendallTau computes the Kendall rank correlation between two score maps
// over the given universe of terms (τ-a over score-induced orderings; pairs
// tied in either map count as discordant-neutral, i.e. contribute zero).
// It returns a value in [-1, 1]; universes with fewer than 2 terms yield 0.
func KendallTau(s1, s2 Scores, universe []rdf.Term) float64 {
	n := len(universe)
	if n < 2 {
		return 0
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d1 := s1[universe[i]] - s1[universe[j]]
			d2 := s2[universe[i]] - s2[universe[j]]
			prod := d1 * d2
			switch {
			case prod > 0:
				concordant++
			case prod < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

// PearsonCorrelation computes the Pearson correlation of the two score maps
// over the given universe. Degenerate (zero-variance) inputs yield 0.
func PearsonCorrelation(s1, s2 Scores, universe []rdf.Term) float64 {
	n := float64(len(universe))
	if n < 2 {
		return 0
	}
	var m1, m2 float64
	for _, t := range universe {
		m1 += s1[t]
		m2 += s2[t]
	}
	m1 /= n
	m2 /= n
	var cov, v1, v2 float64
	for _, t := range universe {
		d1, d2 := s1[t]-m1, s2[t]-m2
		cov += d1 * d2
		v1 += d1 * d1
		v2 += d2 * d2
	}
	if v1 == 0 || v2 == 0 {
		return 0
	}
	return cov / math.Sqrt(v1*v2)
}
