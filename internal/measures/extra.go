package measures

import (
	"math"

	"evorec/internal/rdf"
)

// This file holds the additional measures beyond the paper's §II exemplar
// set. The paper explicitly envisions "existing and additional evolution
// measures, flexible enough to capture the peculiarities and needs of
// different applications"; these cover further structural signals
// (PageRank, clustering), pure instance churn, and property-usage drift.
// They live in ExtendedSet and are not part of DefaultSet, so the headline
// experiments keep evaluating exactly the paper's measures.

// ---------------------------------------------------------------------------
// PageRankShift

// PageRankShift scores each class by the absolute change of its PageRank in
// the class-level structural graph: a global-importance counterpart to the
// local betweenness signal.
type PageRankShift struct{}

// ID implements Measure.
func (PageRankShift) ID() string { return "pagerank_shift" }

// Name implements Measure.
func (PageRankShift) Name() string { return "PageRank shift" }

// Description implements Measure.
func (PageRankShift) Description() string {
	return "Absolute difference of class PageRank in the structural class graph across versions (additional structural measure)."
}

// Target implements Measure.
func (PageRankShift) Target() Target { return Classes }

// Category implements Measure.
func (PageRankShift) Category() Category { return CategoryStructural }

// pageRankParams centralizes the damping and convergence settings.
const (
	prDamping = 0.85
	prEps     = 1e-9
	prMaxIter = 100
)

// Compute implements Measure.
func (PageRankShift) Compute(ctx *Context) Scores {
	older := ctx.OlderStruct.PageRank(prDamping, prEps, prMaxIter)
	newer := ctx.NewerStruct.PageRank(prDamping, prEps, prMaxIter)
	return shiftScores(ctx, older, newer)
}

// ---------------------------------------------------------------------------
// ClusteringShift

// ClusteringShift scores each class by the absolute change of its local
// clustering coefficient: it fires when the neighborhood around a class
// densifies or unravels even if the class keeps its degree.
type ClusteringShift struct{}

// ID implements Measure.
func (ClusteringShift) ID() string { return "clustering_shift" }

// Name implements Measure.
func (ClusteringShift) Name() string { return "Clustering coefficient shift" }

// Description implements Measure.
func (ClusteringShift) Description() string {
	return "Absolute difference of the class's local clustering coefficient across versions (additional structural measure)."
}

// Target implements Measure.
func (ClusteringShift) Target() Target { return Classes }

// Category implements Measure.
func (ClusteringShift) Category() Category { return CategoryStructural }

// Compute implements Measure.
func (ClusteringShift) Compute(ctx *Context) Scores {
	return shiftScores(ctx, ctx.OlderStruct.ClusteringCoefficient(), ctx.NewerStruct.ClusteringCoefficient())
}

// ---------------------------------------------------------------------------
// InstanceChurn

// InstanceChurn counts, per class, the rdf:type assertions that were added
// or deleted — pure population churn, ignoring schema edits and literal
// noise that change_count also absorbs.
type InstanceChurn struct{}

// ID implements Measure.
func (InstanceChurn) ID() string { return "instance_churn" }

// Name implements Measure.
func (InstanceChurn) Name() string { return "Instance churn" }

// Description implements Measure.
func (InstanceChurn) Description() string {
	return "Number of rdf:type assertions targeting the class added or deleted between versions (additional counting measure)."
}

// Target implements Measure.
func (InstanceChurn) Target() Target { return Classes }

// Category implements Measure.
func (InstanceChurn) Category() Category { return CategoryCount }

// Compute implements Measure.
func (InstanceChurn) Compute(ctx *Context) Scores {
	out := make(Scores)
	for _, c := range ctx.UnionClasses() {
		out[c] = 0
	}
	count := func(ts []rdf.Triple) {
		for _, t := range ts {
			if t.P == rdf.RDFType {
				if _, ok := out[t.O]; ok {
					out[t.O]++
				}
			}
		}
	}
	count(ctx.Delta.Added)
	count(ctx.Delta.Deleted)
	return out
}

// ---------------------------------------------------------------------------
// UsageShift

// UsageShift scores each property by the absolute change of its instance
// usage count: the simplest property-level drift signal, complementing the
// distribution-sensitive property_centrality_shift.
type UsageShift struct{}

// ID implements Measure.
func (UsageShift) ID() string { return "usage_shift" }

// Name implements Measure.
func (UsageShift) Name() string { return "Property usage shift" }

// Description implements Measure.
func (UsageShift) Description() string {
	return "Absolute difference of the property's instance usage count across versions (additional counting measure)."
}

// Target implements Measure.
func (UsageShift) Target() Target { return Properties }

// Category implements Measure.
func (UsageShift) Category() Category { return CategoryCount }

// Compute implements Measure.
func (UsageShift) Compute(ctx *Context) Scores {
	out := make(Scores)
	for _, p := range ctx.UnionProperties() {
		var oldUse, newUse int
		if prop, ok := ctx.OlderSchema.Property(p); ok {
			oldUse = prop.UsageCount
		}
		if prop, ok := ctx.NewerSchema.Property(p); ok {
			newUse = prop.UsageCount
		}
		out[p] = math.Abs(float64(newUse - oldUse))
	}
	return out
}

// ---------------------------------------------------------------------------

// ExtendedSet returns the default (paper) measures plus the additional
// measures above, in a stable order.
func ExtendedSet() []Measure {
	return append(DefaultSet(),
		PageRankShift{},
		ClusteringShift{},
		InstanceChurn{},
		UsageShift{},
	)
}

// NewExtendedRegistry returns a registry holding ExtendedSet.
func NewExtendedRegistry() *Registry {
	r := &Registry{byID: make(map[string]Measure)}
	for _, m := range ExtendedSet() {
		r.byID[m.ID()] = m
	}
	return r
}
