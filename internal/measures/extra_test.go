package measures

import (
	"fmt"
	"testing"

	"evorec/internal/rdf"
)

func TestExtendedSetMetadata(t *testing.T) {
	ext := ExtendedSet()
	if len(ext) <= len(DefaultSet()) {
		t.Fatal("extended set must add measures")
	}
	ids := make(map[string]bool)
	for _, m := range ext {
		if m.ID() == "" || m.Name() == "" || m.Description() == "" {
			t.Fatalf("measure %T missing metadata", m)
		}
		if ids[m.ID()] {
			t.Fatalf("duplicate measure ID %q", m.ID())
		}
		ids[m.ID()] = true
	}
	for _, want := range []string{"pagerank_shift", "clustering_shift", "instance_churn", "usage_shift"} {
		if !ids[want] {
			t.Fatalf("extended set missing %s", want)
		}
	}
}

func TestNewExtendedRegistry(t *testing.T) {
	r := NewExtendedRegistry()
	if r.Len() != len(ExtendedSet()) {
		t.Fatalf("registry len = %d, want %d", r.Len(), len(ExtendedSet()))
	}
	if _, ok := r.Get("pagerank_shift"); !ok {
		t.Fatal("pagerank_shift must be registered")
	}
}

func TestPageRankShiftDetectsRewiring(t *testing.T) {
	v1, v2 := versionPair()
	ctx := NewContext(v1, v2)
	s := PageRankShift{}.Compute(ctx)
	if len(s) != len(ctx.UnionClasses()) {
		t.Fatalf("coverage = %d, want %d", len(s), len(ctx.UnionClasses()))
	}
	total := 0.0
	for c, v := range s {
		if v < 0 {
			t.Fatalf("negative shift for %v", c)
		}
		total += v
	}
	if total == 0 {
		t.Fatal("re-parenting must shift some PageRank")
	}
}

func TestClusteringShiftOnDensification(t *testing.T) {
	// v1: star A-B, A-C (no triangle). v2: close the triangle B-C.
	g1 := rdf.NewGraph()
	a, b, c := term("A"), term("B"), term("C")
	p1, p2, p3 := term("p1"), term("p2"), term("p3")
	g1.Add(rdf.T(p1, rdf.RDFSDomain, a))
	g1.Add(rdf.T(p1, rdf.RDFSRange, b))
	g1.Add(rdf.T(p2, rdf.RDFSDomain, a))
	g1.Add(rdf.T(p2, rdf.RDFSRange, c))
	g2 := g1.Clone()
	g2.Add(rdf.T(p3, rdf.RDFSDomain, b))
	g2.Add(rdf.T(p3, rdf.RDFSRange, c))

	ctx := NewContext(&rdf.Version{ID: "v1", Graph: g1}, &rdf.Version{ID: "v2", Graph: g2})
	s := ClusteringShift{}.Compute(ctx)
	// A's neighborhood went from unconnected to fully connected: shift 1.
	if s[a] != 1 {
		t.Fatalf("clustering shift of A = %g, want 1 (scores=%v)", s[a], s)
	}
}

func TestInstanceChurnCountsOnlyTypes(t *testing.T) {
	g1 := rdf.NewGraph()
	cls := term("C")
	g1.Add(rdf.T(cls, rdf.RDFType, rdf.RDFSClass))
	g1.Add(rdf.T(rdf.ResourceIRI("x1"), rdf.RDFType, cls))
	g2 := g1.Clone()
	// +2 instances, -1 instance, plus label noise that must NOT count.
	g2.Add(rdf.T(rdf.ResourceIRI("x2"), rdf.RDFType, cls))
	g2.Add(rdf.T(rdf.ResourceIRI("x3"), rdf.RDFType, cls))
	g2.Remove(rdf.T(rdf.ResourceIRI("x1"), rdf.RDFType, cls))
	g2.Add(rdf.T(cls, rdf.RDFSLabel, rdf.NewLiteral("noise")))

	ctx := NewContext(&rdf.Version{ID: "v1", Graph: g1}, &rdf.Version{ID: "v2", Graph: g2})
	s := InstanceChurn{}.Compute(ctx)
	if s[cls] != 3 {
		t.Fatalf("instance churn = %g, want 3", s[cls])
	}
	direct := ChangeCount{}.Compute(ctx)
	if direct[cls] <= s[cls] {
		t.Fatalf("change_count (%g) must exceed instance_churn (%g) with label noise",
			direct[cls], s[cls])
	}
}

func TestUsageShift(t *testing.T) {
	g1 := rdf.NewGraph()
	p := term("p")
	cls := term("C")
	g1.Add(rdf.T(p, rdf.RDFSDomain, cls))
	for i := 0; i < 3; i++ {
		g1.Add(rdf.T(rdf.ResourceIRI(fmt.Sprintf("a%d", i)), p, rdf.ResourceIRI(fmt.Sprintf("b%d", i))))
	}
	g2 := g1.Clone()
	for i := 3; i < 8; i++ {
		g2.Add(rdf.T(rdf.ResourceIRI(fmt.Sprintf("a%d", i)), p, rdf.ResourceIRI(fmt.Sprintf("b%d", i))))
	}
	ctx := NewContext(&rdf.Version{ID: "v1", Graph: g1}, &rdf.Version{ID: "v2", Graph: g2})
	s := UsageShift{}.Compute(ctx)
	if s[p] != 5 {
		t.Fatalf("usage shift = %g, want 5", s[p])
	}
}

func TestExtraMeasuresZeroOnIdenticalVersions(t *testing.T) {
	v1, _ := versionPair()
	v1b := &rdf.Version{ID: "v1b", Graph: v1.Graph.Clone()}
	ctx := NewContext(v1, v1b)
	for _, m := range ExtendedSet() {
		for c, v := range m.Compute(ctx) {
			if v != 0 {
				t.Fatalf("%s on identical versions: %s=%g", m.ID(), c.Local(), v)
			}
		}
	}
}
