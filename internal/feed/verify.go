package feed

import (
	"sort"

	"evorec/internal/store/vfs"
)

// VerifyInfo summarizes a persisted feed directory's state after a full
// strict load: subscriber registry, per-user logs, and the fan-out ledger.
type VerifyInfo struct {
	// Subscribers is the registry size; Logs how many users hold a feed
	// log; Entries the total retained notifications.
	Subscribers, Logs, Entries int
	// Pairs is the fan-out ledger — every (older, newer) version pair
	// already delivered — sorted. "store verify" cross-checks each pair
	// against the version chain it claims to have fanned out.
	Pairs [][2]string
	// PendingPairs lists pairs that appear in some user's log but not in
	// the ledger: the crash window between a durable log write and the
	// manifest update. They are not a fault — the log entries were
	// delivered — but a re-run fan-out for such a pair would deliver again,
	// so they are surfaced.
	PendingPairs [][2]string
}

// Verify strictly loads the feed directory at dir and reports its state.
// Every decoder error — bad framing, bad CRC, out-of-order cursors, a
// manifest recording more than a segment holds — surfaces as the returned
// error, exactly as Open would fail. A missing manifest is an empty feed.
func Verify(dir string) (*VerifyInfo, error) { return VerifyFS(vfs.OS{}, dir) }

// VerifyFS is Verify on an explicit filesystem.
func VerifyFS(fsys vfs.FS, dir string) (*VerifyInfo, error) {
	f, err := Open(Config{Dir: dir, FS: fsys})
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	info := &VerifyInfo{Subscribers: len(f.subs), Logs: len(f.logs)}
	inLedger := make(map[string]bool, len(f.done))
	for _, p := range f.done {
		info.Pairs = append(info.Pairs, [2]string{p.older, p.newer})
		inLedger[pairKey(p.older, p.newer)] = true
	}
	pending := make(map[string][2]string)
	for _, lg := range f.logs {
		info.Entries += len(lg.entries)
		for _, e := range lg.entries {
			key := pairKey(e.Note.OlderID, e.Note.NewerID)
			if !inLedger[key] {
				pending[key] = [2]string{e.Note.OlderID, e.Note.NewerID}
			}
		}
	}
	for _, p := range pending {
		info.PendingPairs = append(info.PendingPairs, p)
	}
	sortPairs(info.Pairs)
	sortPairs(info.PendingPairs)
	return info, nil
}

func sortPairs(ps [][2]string) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}
