package feed

import (
	"testing"

	"evorec/internal/core"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/store"
)

// FuzzFeedLogDecode feeds arbitrary bytes to the feed's decode paths — the
// shared segment unframer plus the feed-log and subscriber payload decoders
// — with the same invariant the store's fuzz enforces: corrupted or
// truncated input errors cleanly, never panics, and never allocates beyond
// the input size (counts are bounded against the remaining payload).
func FuzzFeedLogDecode(f *testing.F) {
	// Seed with well-formed segments so the fuzzer starts from valid
	// framing and mutates inward.
	entries := []Entry{
		{Cursor: 1, Note: core.Notification{
			UserID: "alice", OlderID: "v1", NewerID: "v2",
			MeasureID: "m:change_count", Relatedness: 0.42,
			Reason: "because Painting changed",
		}},
		{Cursor: 3, Note: core.Notification{
			UserID: "alice", OlderID: "v2", NewerID: "v3",
			MeasureID: "m:pagerank_shift", Relatedness: 0.9, Reason: "r",
		}},
	}
	f.Add(store.EncodeKindedSegment(store.KindFeedLog,
		appendFeedLog(nil, "alice", 4, entries)))

	alice := profile.New("alice")
	alice.SetInterest(rdf.SchemaIRI("Painting"), 1)
	alice.SetInterest(rdf.NewLangLiteral("peinture", "fr"), 0.25)
	bob := profile.New("bob")
	bob.SetInterest(rdf.NewTypedLiteral("7", "ex:int"), 0.5)
	bob.SetInterest(rdf.NewBlank("b0"), 0.125)
	subs := map[string]*profile.Profile{"alice": alice, "bob": bob}
	f.Add(store.EncodeKindedSegment(store.KindSubscribers, appendSubscribers(nil, subs)))
	f.Add([]byte("EVS1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if payload, err := store.DecodeKindedSegment("fuzz", data, store.KindFeedLog); err == nil {
			user, next, entries, err := decodeFeedLog("fuzz", payload)
			if err == nil {
				// A successfully decoded log is internally consistent:
				// strictly increasing cursors below next, owner stamped.
				var prev uint64
				for _, e := range entries {
					if e.Cursor <= prev || e.Cursor >= next {
						t.Fatalf("decoder passed cursor %d (prev %d, next %d)", e.Cursor, prev, next)
					}
					prev = e.Cursor
					if e.Note.UserID != user {
						t.Fatalf("entry owner %q, log user %q", e.Note.UserID, user)
					}
				}
			}
		}
		if payload, err := store.DecodeKindedSegment("fuzz", data, store.KindSubscribers); err == nil {
			subs, err := decodeSubscribers("fuzz", payload)
			if err == nil {
				for id, p := range subs {
					if id == "" || p.ID != id {
						t.Fatalf("decoder passed inconsistent subscriber %q/%q", id, p.ID)
					}
					for _, w := range p.Interests {
						if !(w > 0) {
							t.Fatalf("decoder passed non-positive weight %g", w)
						}
					}
				}
			}
		}
	})
}
