package feed

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"

	"evorec/internal/core"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
)

// Stats reports what one fan-out did.
type Stats struct {
	// OlderID and NewerID name the version pair.
	OlderID, NewerID string
	// Subscribers is the registry size at fan-out time.
	Subscribers int
	// Affected is how many subscribers the inverted index matched — the
	// only ones scored.
	Affected int
	// Notified is how many notifications were appended across feed logs.
	Notified int
	// Skipped reports that the pair was already fanned out (the ledger
	// makes fan-out idempotent per pair, so a pair invalidated and rebuilt
	// never re-notifies).
	Skipped bool
}

// FanOut delivers one committed version pair to the standing subscriber
// population. It is the convenience form of FanOutIndexed for callers
// holding a bare item slice: the scoring index is compiled here, once,
// and amortized over every affected subscriber. The service's commit path
// passes the engine's pair-cached index through FanOutIndexed instead.
func (f *Feed) FanOut(olderID, newerID string, items []recommend.Item) (Stats, error) {
	return f.FanOutIndexed(olderID, newerID, recommend.NewItemIndex(items))
}

// FanOutIndexed is FanOutIndexedCtx without a tracing context.
func (f *Feed) FanOutIndexed(olderID, newerID string, idx *recommend.ItemIndex) (Stats, error) {
	return f.FanOutIndexedCtx(context.Background(), olderID, newerID, idx)
}

// FanOutIndexedCtx delivers one committed version pair to the standing
// subscriber population: it intersects the indexed items' entity terms with
// the inverted interest index, scores only the matched subscribers (sharded
// across the bounded worker pool, through the same flat-kernel relatedness
// path Engine.Notify uses), and appends the resulting notifications to the
// affected users' feed logs under fresh cursors.
//
// The whole fan-out holds the write lock, so it sees — and delivers to — a
// consistent registry snapshot: a subscriber present when FanOut starts
// gets its full batch exactly once, however much churn races the commit.
// Cost scales with the affected set, not the pool.
//
// When ctx carries a sampled trace, the fan-out is recorded as a
// "feed.fanout" span nesting "feed.match" (index intersection), one
// "feed.score" span per worker, "feed.append" (log appends) and
// "feed.persist" (durable rewrite). Ledger-skipped fan-outs are not
// traced — they do no work worth a timeline.
func (f *Feed) FanOutIndexedCtx(ctx context.Context, olderID, newerID string, idx *recommend.ItemIndex) (Stats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	start := time.Now()
	st := Stats{OlderID: olderID, NewerID: newerID, Subscribers: len(f.subs)}
	key := pairKey(olderID, newerID)
	if _, dup := f.done[key]; dup {
		st.Skipped = true
		if f.tel != nil {
			f.tel.FanOutSkipped()
		}
		return st, nil
	}
	ctx, end := startSpan(f.spans, ctx, "feed.fanout")
	_, mend := startSpan(f.spans, ctx, "feed.match")
	affected := f.affectedLocked(idx)
	mend("affected", strconv.Itoa(len(affected)),
		"subscribers", strconv.Itoa(st.Subscribers))
	st.Affected = len(affected)
	notes := f.scoreLocked(ctx, affected, idx, olderID, newerID)
	_, aend := startSpan(f.spans, ctx, "feed.append")
	changed := make([]string, 0, len(affected))
	for i, id := range affected {
		if len(notes[i]) == 0 {
			continue
		}
		lg := f.logs[id]
		if lg == nil {
			lg = &userLog{next: 1}
			f.logs[id] = lg
		}
		for _, n := range notes[i] {
			lg.entries = append(lg.entries, Entry{Cursor: lg.next, Note: n})
			lg.next++
			st.Notified++
		}
		lg.trim(f.maxLog)
		changed = append(changed, id)
	}
	aend("notified", strconv.Itoa(st.Notified))
	f.done[key] = donePair{older: olderID, newer: newerID}
	// Delivery is complete in memory here; the observation covers scoring
	// and log appends and is recorded even when persistence below degrades,
	// matching what subscribers actually experienced.
	if f.tel != nil {
		f.tel.ObserveFanOut(st.Affected, st.Notified, time.Since(start))
	}
	_, pend := startSpan(f.spans, ctx, "feed.persist")
	err := f.persistFanOutLocked(changed)
	pend("users", strconv.Itoa(len(changed)))
	end("older", olderID, "newer", newerID,
		"affected", strconv.Itoa(st.Affected), "notified", strconv.Itoa(st.Notified))
	if err != nil {
		return st, err
	}
	return st, nil
}

// affectedLocked intersects the index's positively-scored entity terms
// (precomputed and deduplicated at index build) with the inverted
// subscriber index and returns the matched subscriber IDs, sorted. Terms no
// subscriber ever registered an interest in are absent from the feed
// dictionary and cost one failed lookup.
func (f *Feed) affectedLocked(idx *recommend.ItemIndex) []string {
	set := make(map[string]struct{})
	for _, t := range idx.EntityTerms() {
		tid, ok := f.dict.Lookup(t)
		if !ok || tid == rdf.AnyID {
			continue
		}
		for sub := range f.idx[tid] {
			set[sub] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// scoreLocked scores the affected subscribers against the indexed items,
// sharded across the worker pool. The result is index-aligned with
// affected; each slot holds the subscriber's notifications in descending
// relatedness, the exact output of core.UserNotifications — so feed batches
// equal a serial Engine.Notify over the affected set. Each worker scores
// through core.UserNotificationsIndexed, inheriting the kernel's pooled
// per-call scratch. Workers only read the registry (the caller holds the
// write lock, so nothing mutates underneath them).
func (f *Feed) scoreLocked(ctx context.Context, affected []string, idx *recommend.ItemIndex, olderID, newerID string) [][]core.Notification {
	out := make([][]core.Notification, len(affected))
	if len(affected) == 0 {
		return out
	}
	workers := f.workers
	if workers > len(affected) {
		workers = len(affected)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, send := startSpan(f.spans, ctx, "feed.score")
			n := 0
			for i := w; i < len(affected); i += workers {
				u := f.subs[affected[i]]
				out[i] = core.UserNotificationsIndexed(u, idx, olderID, newerID, f.threshold, f.k)
				n++
			}
			send("worker", strconv.Itoa(w), "scored", strconv.Itoa(n))
		}(w)
	}
	wg.Wait()
	return out
}
