package feed

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"evorec/internal/profile"
	"evorec/internal/rdf"
)

// Payload formats (framed by internal/store's segment envelope):
//
// Subscribers (store.KindSubscribers):
//
//	count    uvarint
//	per sub: id string, nInterests uvarint, then per interest a term
//	         (tag byte: low nibble rdf.Kind, 0x10 = has datatype, 0x20 =
//	         has lang; value / datatype / lang as length-prefixed UTF-8)
//	         followed by the weight as 8 little-endian float64 bits
//
// Subscribers are written sorted by ID, interests sorted by term, so equal
// registries produce identical bytes.
//
// Feed log (store.KindFeedLog):
//
//	user     string
//	next     uvarint   next cursor to assign
//	count    uvarint
//	per entry: cursor uvarint (strictly increasing, < next), older string,
//	           newer string, measure string, relatedness float64 bits,
//	           reason string
//
// Strings are uvarint-length-prefixed. Every decoder bounds-checks each
// read and validates counts against the remaining payload, so arbitrary
// bytes error cleanly — never panic, never allocate beyond the input size
// (FuzzFeedLogDecode enforces this).
const (
	tagKindMask = 0x0f
	tagDatatype = 0x10
	tagLang     = 0x20
	tagValid    = tagKindMask | tagDatatype | tagLang
)

// payloadReader walks a payload with bounds-checked reads, mirroring the
// store's internal byte reader (the payload codecs live with their owning
// packages; only the framing is shared).
type payloadReader struct {
	name string
	b    []byte
	off  int
}

func (r *payloadReader) remaining() int { return len(r.b) - r.off }

func (r *payloadReader) errf(format string, args ...any) error {
	return fmt.Errorf("feed: segment %s: %s", r.name, fmt.Sprintf(format, args...))
}

func (r *payloadReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, r.errf("truncated at offset %d", r.off)
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.errf("bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a uvarint element count and bounds it by the remaining bytes:
// every counted element occupies at least one byte, so a larger count is
// corrupt. This caps decoder allocations at the input size.
func (r *payloadReader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, r.errf("%s count %d exceeds payload size", what, v)
	}
	return int(v), nil
}

func (r *payloadReader) str(what string) (string, error) {
	n, err := r.count(what)
	if err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *payloadReader) f64() (float64, error) {
	if r.remaining() < 8 {
		return 0, r.errf("truncated float at offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// ---------------------------------------------------------------------------
// Subscribers

func appendTerm(buf []byte, t rdf.Term) []byte {
	tag := byte(t.Kind)
	if t.Datatype != "" {
		tag |= tagDatatype
	}
	if t.Lang != "" {
		tag |= tagLang
	}
	buf = append(buf, tag)
	buf = appendString(buf, t.Value)
	if t.Datatype != "" {
		buf = appendString(buf, t.Datatype)
	}
	if t.Lang != "" {
		buf = appendString(buf, t.Lang)
	}
	return buf
}

func (r *payloadReader) term() (rdf.Term, error) {
	tag, err := r.byte()
	if err != nil {
		return rdf.Term{}, err
	}
	kind := rdf.Kind(tag & tagKindMask)
	if tag&^byte(tagValid) != 0 || kind == rdf.Any || kind > rdf.Literal {
		return rdf.Term{}, r.errf("invalid term tag 0x%02x", tag)
	}
	if kind != rdf.Literal && tag&(tagDatatype|tagLang) != 0 {
		return rdf.Term{}, r.errf("datatype/lang flags on non-literal term")
	}
	t := rdf.Term{Kind: kind}
	if t.Value, err = r.str("term value"); err != nil {
		return rdf.Term{}, err
	}
	if tag&tagDatatype != 0 {
		if t.Datatype, err = r.str("term datatype"); err != nil {
			return rdf.Term{}, err
		}
	}
	if tag&tagLang != 0 {
		if t.Lang, err = r.str("term lang"); err != nil {
			return rdf.Term{}, err
		}
	}
	return t, nil
}

// appendSubscribers serializes the registry deterministically (subscribers
// by ID, interests by term order).
func appendSubscribers(buf []byte, subs map[string]*profile.Profile) []byte {
	ids := make([]string, 0, len(subs))
	for id := range subs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		p := subs[id]
		buf = appendString(buf, id)
		terms := make([]rdf.Term, 0, len(p.Interests))
		for t := range p.Interests {
			terms = append(terms, t)
		}
		sort.Slice(terms, func(i, j int) bool { return terms[i].Compare(terms[j]) < 0 })
		buf = binary.AppendUvarint(buf, uint64(len(terms)))
		for _, t := range terms {
			buf = appendTerm(buf, t)
			buf = appendF64(buf, p.Interests[t])
		}
	}
	return buf
}

// decodeSubscribers rebuilds the registry from a subscribers payload.
func decodeSubscribers(name string, payload []byte) (map[string]*profile.Profile, error) {
	r := &payloadReader{name: name, b: payload}
	n, err := r.count("subscriber")
	if err != nil {
		return nil, err
	}
	subs := make(map[string]*profile.Profile, n)
	for i := 0; i < n; i++ {
		id, err := r.str("subscriber ID")
		if err != nil {
			return nil, err
		}
		if id == "" {
			return nil, r.errf("subscriber %d has an empty ID", i)
		}
		if _, dup := subs[id]; dup {
			return nil, r.errf("duplicate subscriber %q", id)
		}
		p := profile.New(id)
		terms, err := r.count("interest")
		if err != nil {
			return nil, err
		}
		for j := 0; j < terms; j++ {
			t, err := r.term()
			if err != nil {
				return nil, err
			}
			w, err := r.f64()
			if err != nil {
				return nil, err
			}
			if !(w > 0) || math.IsInf(w, 0) {
				return nil, r.errf("subscriber %q: invalid interest weight %g", id, w)
			}
			if p.InterestIn(t) != 0 {
				return nil, r.errf("subscriber %q: duplicate interest term", id)
			}
			p.SetInterest(t, w)
		}
		subs[id] = p
	}
	if r.remaining() != 0 {
		return nil, r.errf("%d trailing bytes after subscribers", r.remaining())
	}
	return subs, nil
}

// ---------------------------------------------------------------------------
// Feed logs

// appendFeedLog serializes one user's log.
func appendFeedLog(buf []byte, user string, next uint64, entries []Entry) []byte {
	buf = appendString(buf, user)
	buf = binary.AppendUvarint(buf, next)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, e.Cursor)
		buf = appendString(buf, e.Note.OlderID)
		buf = appendString(buf, e.Note.NewerID)
		buf = appendString(buf, e.Note.MeasureID)
		buf = appendF64(buf, e.Note.Relatedness)
		buf = appendString(buf, e.Note.Reason)
	}
	return buf
}

// decodeFeedLog rebuilds one user's log from a feed-log payload, enforcing
// strictly increasing cursors below the recorded next.
func decodeFeedLog(name string, payload []byte) (user string, next uint64, entries []Entry, err error) {
	r := &payloadReader{name: name, b: payload}
	if user, err = r.str("user"); err != nil {
		return "", 0, nil, err
	}
	if user == "" {
		return "", 0, nil, r.errf("empty user ID")
	}
	if next, err = r.uvarint(); err != nil {
		return "", 0, nil, err
	}
	if next == 0 {
		return "", 0, nil, r.errf("next cursor must be >= 1")
	}
	n, err := r.count("entry")
	if err != nil {
		return "", 0, nil, err
	}
	// Every entry is at least 13 payload bytes (cursor, four length
	// prefixes, the float), so presizing by the remaining bytes bounds the
	// allocation however large the claimed count.
	entries = make([]Entry, 0, min(n, r.remaining()/13+1))
	prev := uint64(0)
	for i := 0; i < n; i++ {
		var e Entry
		if e.Cursor, err = r.uvarint(); err != nil {
			return "", 0, nil, err
		}
		if e.Cursor <= prev || e.Cursor >= next {
			return "", 0, nil, r.errf("entry %d: cursor %d out of order (prev %d, next %d)", i, e.Cursor, prev, next)
		}
		prev = e.Cursor
		e.Note.UserID = user
		if e.Note.OlderID, err = r.str("older"); err != nil {
			return "", 0, nil, err
		}
		if e.Note.NewerID, err = r.str("newer"); err != nil {
			return "", 0, nil, err
		}
		if e.Note.MeasureID, err = r.str("measure"); err != nil {
			return "", 0, nil, err
		}
		if e.Note.Relatedness, err = r.f64(); err != nil {
			return "", 0, nil, err
		}
		if e.Note.Reason, err = r.str("reason"); err != nil {
			return "", 0, nil, err
		}
		entries = append(entries, e)
	}
	if r.remaining() != 0 {
		return "", 0, nil, r.errf("%d trailing bytes after feed log", r.remaining())
	}
	return user, next, entries, nil
}
