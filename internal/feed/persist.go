package feed

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"evorec/internal/store"
)

// FormatV1 identifies the feed manifest format.
const FormatV1 = "evorec-feed/v1"

const (
	manifestName = "feed.json"
	subsFileName = "subscribers.seg"
)

// manifest is the feed's on-disk index (feed.json). Like the version
// store's manifest it is the commit point: segments land first (temp-file +
// rename each), the manifest last. A crash in between leaves the manifest
// recording fewer entries than a log segment holds, or no mapping for a
// freshly created log — load tolerates the former (the segment is the
// truth) and ignores the latter (an orphan file, same as the store's
// orphan-segment story).
type manifest struct {
	Format      string    `json:"format"`
	Subscribers *segRef   `json:"subscribers,omitempty"`
	Pairs       []pairRef `json:"pairs,omitempty"`
	Logs        []logRef  `json:"logs,omitempty"`
}

type segRef struct {
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
	Count int    `json:"count"`
}

type pairRef struct {
	Older string `json:"older"`
	Newer string `json:"newer"`
}

type logRef struct {
	User    string `json:"user"`
	File    string `json:"file"`
	Bytes   int64  `json:"bytes"`
	Entries int    `json:"entries"`
	Last    uint64 `json:"last"`
}

// logMeta tracks one persisted log's location and last-persisted shape.
type logMeta struct {
	file    string
	bytes   int64
	entries int
	last    uint64
}

// load restores persisted state; a missing manifest is a fresh feed.
func (f *Feed) load() error {
	if f.dir == "" {
		return nil
	}
	if err := f.fsys.MkdirAll(f.dir, 0o755); err != nil {
		return fmt.Errorf("feed: creating %s: %w", f.dir, err)
	}
	data, err := f.fsys.ReadFile(filepath.Join(f.dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("feed: reading manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("feed: decoding manifest: %w", err)
	}
	if man.Format != FormatV1 {
		return fmt.Errorf("feed: manifest format %q, want %q", man.Format, FormatV1)
	}
	if man.Subscribers != nil {
		if !store.ValidSegmentFileName(man.Subscribers.File) {
			return fmt.Errorf("feed: subscriber file %q escapes the feed directory", man.Subscribers.File)
		}
		payload, err := store.ReadKindedSegmentFS(f.fsys, f.dir, man.Subscribers.File, store.KindSubscribers)
		if err != nil {
			return err
		}
		f.subsBytes = man.Subscribers.Bytes
		subs, err := decodeSubscribers(man.Subscribers.File, payload)
		if err != nil {
			return err
		}
		for id, p := range subs {
			f.subs[id] = p
			f.addPostingsLocked(id, p)
		}
	}
	for _, pr := range man.Pairs {
		f.done[pairKey(pr.Older, pr.Newer)] = donePair{older: pr.Older, newer: pr.Newer}
	}
	for _, ref := range man.Logs {
		if !store.ValidSegmentFileName(ref.File) {
			return fmt.Errorf("feed: log file %q escapes the feed directory", ref.File)
		}
		if _, dup := f.logs[ref.User]; dup {
			return fmt.Errorf("feed: duplicate log for user %q in manifest", ref.User)
		}
		payload, err := store.ReadKindedSegmentFS(f.fsys, f.dir, ref.File, store.KindFeedLog)
		if err != nil {
			return err
		}
		user, next, entries, err := decodeFeedLog(ref.File, payload)
		if err != nil {
			return err
		}
		if user != ref.User {
			return fmt.Errorf("feed: log %s belongs to %q, manifest says %q", ref.File, user, ref.User)
		}
		// The segment may hold MORE than the manifest recorded: a kill
		// between the segment write and the manifest update leaves exactly
		// that superset, and the segment is the truth. Fewer entries than
		// recorded means real corruption.
		if len(entries) < ref.Entries {
			return fmt.Errorf("feed: log %s has %d entries, manifest says %d", ref.File, len(entries), ref.Entries)
		}
		if next <= ref.Last {
			return fmt.Errorf("feed: log %s next cursor %d behind manifest last %d", ref.File, next, ref.Last)
		}
		f.logs[user] = &userLog{next: next, entries: entries}
		f.meta[user] = &logMeta{file: ref.File, bytes: ref.Bytes, entries: len(entries), last: next - 1}
		if n := logFileIndex(ref.File); n > f.nextLog {
			f.nextLog = n
		} else if n == 0 {
			// A manifest may name log files outside the logNNNNN scheme
			// (hand-migrated stores); remember them so the name allocator
			// never collides with one.
			if f.foreignLogs == nil {
				f.foreignLogs = make(map[string]struct{})
			}
			f.foreignLogs[ref.File] = struct{}{}
		}
	}
	return nil
}

// logFileIndex parses the numeric index out of "logNNNNN.feed" names (0 for
// foreign names, which are then never collided with by construction).
func logFileIndex(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "log%d.feed", &n); err != nil {
		return 0
	}
	return n
}

// newLogFileLocked hands out the next unused log file name. f.nextLog is
// monotonic and load() seeds it past every known logNNNNN index, so the
// only possible collisions are the foreign file names collected at load —
// no per-call scan of the meta table (a first fan-out to N fresh
// subscribers creates N logs; rebuilding a used-set each time would be
// quadratic).
func (f *Feed) newLogFileLocked() string {
	for {
		f.nextLog++
		name := fmt.Sprintf("log%05d.feed", f.nextLog)
		if _, taken := f.foreignLogs[name]; !taken {
			return name
		}
	}
}

// persistSubscribersLocked rewrites the subscriber segment and the
// manifest. In-memory feeds skip persistence entirely.
func (f *Feed) persistSubscribersLocked() error {
	if f.dir == "" {
		return nil
	}
	if err := f.writeSubscribersLocked(); err != nil {
		return err
	}
	return f.writeManifestLocked()
}

// writeSubscribersLocked writes the subscriber segment and records its
// framed size for the manifest.
func (f *Feed) writeSubscribersLocked() error {
	size, err := store.WriteKindedSegmentFS(f.fsys, filepath.Join(f.dir, subsFileName),
		store.KindSubscribers, appendSubscribers(nil, f.subs), true)
	if err != nil {
		return fmt.Errorf("feed: writing subscribers: %w", err)
	}
	f.subsBytes = size
	return nil
}

// persistFanOutLocked rewrites the named users' log segments (segments
// first, manifest last — the crash-window contract). The manifest is
// written even when no log changed: it carries the fan-out ledger, and a
// pair that notified nobody must still survive a restart or the
// re-delivery guarantee would silently depend on someone having been
// notified.
func (f *Feed) persistFanOutLocked(users []string) error {
	if f.dir == "" {
		return nil
	}
	for _, user := range users {
		if err := f.writeLogLocked(user); err != nil {
			return err
		}
	}
	return f.writeManifestLocked()
}

// writeLogLocked writes one user's log segment and updates its meta.
func (f *Feed) writeLogLocked(user string) error {
	lg := f.logs[user]
	m := f.meta[user]
	if m == nil {
		m = &logMeta{file: f.newLogFileLocked()}
		f.meta[user] = m
	}
	size, err := store.WriteKindedSegmentFS(f.fsys, filepath.Join(f.dir, m.file),
		store.KindFeedLog, appendFeedLog(nil, user, lg.next, lg.entries), true)
	if err != nil {
		return fmt.Errorf("feed: writing log for %q: %w", user, err)
	}
	m.bytes = size
	m.entries = len(lg.entries)
	m.last = lg.next - 1
	return nil
}

// writeManifestLocked serializes the manifest from the in-memory state.
func (f *Feed) writeManifestLocked() error {
	man := manifest{Format: FormatV1}
	if f.subsBytes > 0 {
		man.Subscribers = &segRef{File: subsFileName, Bytes: f.subsBytes, Count: len(f.subs)}
	}
	pairs := make([]pairRef, 0, len(f.done))
	for _, p := range f.done {
		pairs = append(pairs, pairRef{Older: p.older, Newer: p.newer})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Older != pairs[j].Older {
			return pairs[i].Older < pairs[j].Older
		}
		return pairs[i].Newer < pairs[j].Newer
	})
	man.Pairs = pairs
	users := make([]string, 0, len(f.meta))
	for user := range f.meta {
		users = append(users, user)
	}
	sort.Strings(users)
	for _, user := range users {
		m := f.meta[user]
		man.Logs = append(man.Logs, logRef{
			User: user, File: m.file, Bytes: m.bytes, Entries: m.entries, Last: m.last,
		})
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("feed: encoding manifest: %w", err)
	}
	if err := store.WriteFileAtomicFS(f.fsys, filepath.Join(f.dir, manifestName), data, true); err != nil {
		return fmt.Errorf("feed: writing manifest: %w", err)
	}
	return nil
}

// Flush persists the full feed state — subscribers, every log, manifest.
// It is what graceful shutdown calls; in-memory feeds no-op. Because every
// mutation already persists eagerly, Flush mostly re-lands the same bytes,
// but it is the cheap way to guarantee durability before exit.
func (f *Feed) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dir == "" {
		return nil
	}
	for user := range f.logs {
		if err := f.writeLogLocked(user); err != nil {
			return err
		}
	}
	if err := f.writeSubscribersLocked(); err != nil {
		return err
	}
	return f.writeManifestLocked()
}
