// Package feed is the subscription & notification subsystem: a standing
// population of subscribers (profiles with weighted interests) behind an
// inverted interest index, fed by commit-triggered fan-out.
//
// The paper's headline scenario is that "humans are really interested to be
// notified about how data evolve" — but a stateless Notify endpoint makes
// every client re-send its whole profile pool and re-scores all of them per
// request, O(users × items) every time. The feed inverts that: subscribers
// register once, their interest terms index into postings lists keyed on
// dictionary TermIDs, and when a commit produces a new version pair the
// fan-out intersects the pair's evaluated items' entity terms with the
// index and scores only the affected subscribers — O(affected), not
// O(pool). Notifications land in durable per-user feed logs with monotonic
// cursors that clients poll with a cursor ack.
//
// Concurrency: a Feed is safe for concurrent use. Subscribe, Unsubscribe
// and FanOut serialize under the write lock (fan-out scoring itself shards
// across a bounded worker pool inside the lock), so a fan-out always sees a
// consistent registry snapshot and a subscriber churning concurrently with
// a commit can never receive a duplicate or a torn batch. Poll and listing
// run under the read lock.
//
// Durability (Config.Dir != ""): the registry and each user's log persist
// as framed segments (internal/store's magic/CRC envelope, temp-file +
// fsync + rename + directory fsync) under a JSON manifest written last —
// the same crash discipline as the binary version store. A kill between a segment write and the manifest
// update leaves the manifest recording fewer entries than the segment
// holds; Open tolerates that superset, so no acknowledged notification is
// lost. See DESIGN.md §8.
package feed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"evorec/internal/core"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/store/vfs"
)

// Defaults for the zero Config values.
const (
	// DefaultWorkers bounds the fan-out scoring pool.
	DefaultWorkers = 4
	// DefaultMaxLog is the per-user retained entry count; older entries are
	// trimmed (cursors keep increasing, so a poller sees a gap, never a
	// replay).
	DefaultMaxLog = 1024
	// DefaultThreshold is the minimum relatedness that triggers a
	// notification.
	DefaultThreshold = 0.1
	// DefaultK is the maximum notifications per subscriber per commit.
	DefaultK = 3
)

// ErrUnknownSubscriber reports a subscriber ID with no registration and no
// retained feed log.
var ErrUnknownSubscriber = errors.New("feed: unknown subscriber")

// Config parameterizes a Feed. The zero value is a usable in-memory feed
// with the defaults above.
type Config struct {
	// Dir roots the feed's persistence; "" keeps everything in memory.
	Dir string
	// FS is the filesystem the feed persists through; nil means the real
	// one. The crash-recovery tests inject a fault-injecting in-memory
	// filesystem here.
	FS vfs.FS
	// Workers bounds the fan-out worker pool (default DefaultWorkers).
	Workers int
	// MaxLog is the per-user retained entry count (default DefaultMaxLog).
	MaxLog int
	// Threshold is the minimum relatedness notified (default
	// DefaultThreshold; must end up in [0,1]).
	Threshold float64
	// K is the maximum notifications per subscriber per commit (default
	// DefaultK).
	K int
	// Telemetry is the optional fan-out instrumentation sink (nil =
	// uninstrumented). The feed declares the interface; internal/obs
	// provides a registry-backed implementation (obs.FeedSink).
	Telemetry Telemetry
	// Spans is the optional tracing span source (nil = untraced); see
	// Spanner.
	Spans Spanner
}

// Spanner opens tracing spans around the fan-out phases (match, worker
// scoring, log append, persist). The feed declares the contract and
// internal/obs satisfies it structurally (obs.ChildSpanner), mirroring
// Telemetry, so this package never imports the tracing substrate.
// StartSpan returns a context carrying the child span and a completion
// callback taking alternating key/value attribute pairs; on a context with
// no sampled trace it returns the input context and a shared no-op
// callback. Implementations must be safe for concurrent use — worker
// goroutines open per-worker spans.
type Spanner interface {
	StartSpan(ctx context.Context, name string) (context.Context, func(attrs ...string))
}

// nopSpanEnd is the completion callback startSpan hands out when no
// Spanner is installed.
var nopSpanEnd = func(...string) {}

// startSpan opens a child span when a Spanner is installed, else a no-op.
func startSpan(s Spanner, ctx context.Context, name string) (context.Context, func(attrs ...string)) {
	if s == nil {
		return ctx, nopSpanEnd
	}
	return s.StartSpan(ctx, name)
}

// Telemetry is the narrow sink fan-out events report through. Like the
// store's, the contract lives here and implementations live elsewhere, so
// the feed never grows an HTTP or metrics dependency. Implementations are
// called under the feed's write lock and must not call back into the Feed.
type Telemetry interface {
	// ObserveFanOut reports one delivered fan-out: subscribers matched by
	// the inverted index, notifications appended, and wall time.
	ObserveFanOut(affected, notified int, d time.Duration)
	// FanOutSkipped reports a fan-out suppressed by the idempotence ledger
	// (the pair was already delivered before a restart or invalidation).
	FanOutSkipped()
}

// Entry is one feed log entry: a notification under its monotonic per-user
// cursor.
type Entry struct {
	// Cursor is the entry's position in the user's log, strictly increasing
	// from 1. Poll(after) returns entries with Cursor > after.
	Cursor uint64
	// Note is the notification itself.
	Note core.Notification
}

// SubscriberInfo is one registered subscriber, as listed by Subscribers.
type SubscriberInfo struct {
	// ID identifies the subscriber.
	ID string
	// Terms is the number of interest terms.
	Terms int
	// Interests lists the interest IRIs, sorted.
	Interests []string
}

// userLog is one user's in-memory feed log.
type userLog struct {
	next    uint64 // next cursor to assign, >= 1
	entries []Entry
}

func (l *userLog) trim(max int) {
	if max > 0 && len(l.entries) > max {
		// In place: the backing array is bounded by max plus one batch, and
		// reallocating per user per fan-out was measurable garbage at scale.
		n := copy(l.entries, l.entries[len(l.entries)-max:])
		clear(l.entries[n:])
		l.entries = l.entries[:n]
	}
}

// pairKey identifies a fanned-out version pair in the done ledger.
func pairKey(olderID, newerID string) string { return olderID + "\x00" + newerID }

type donePair struct{ older, newer string }

// Feed is the subscriber registry, inverted interest index and per-user
// feed logs of one dataset. All methods are safe for concurrent use.
type Feed struct {
	dir       string
	fsys      vfs.FS
	workers   int
	maxLog    int
	threshold float64
	k         int
	tel       Telemetry // optional; nil = uninstrumented
	spans     Spanner   // optional; nil = untraced

	mu   sync.RWMutex
	dict *rdf.Dict                          // feed-private interner of interest terms
	subs map[string]*profile.Profile        // subscriber ID -> owned profile clone
	idx  map[rdf.TermID]map[string]struct{} // interest term -> postings
	logs map[string]*userLog
	done map[string]donePair // fanned-out pairs (idempotence ledger)

	// persistence bookkeeping (Dir != "")
	meta        map[string]*logMeta // user -> persisted log location
	nextLog     int                 // last log file index handed out
	foreignLogs map[string]struct{} // manifest log files outside the logNNNNN scheme
	subsBytes   int64               // framed size of the subscriber segment
}

// Open builds a feed, loading persisted state when cfg.Dir holds a
// manifest. Missing directories are created.
func Open(cfg Config) (*Feed, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.MaxLog <= 0 {
		cfg.MaxLog = DefaultMaxLog
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("feed: threshold must be in [0,1], got %g", cfg.Threshold)
	}
	if cfg.K <= 0 {
		cfg.K = DefaultK
	}
	if cfg.FS == nil {
		cfg.FS = vfs.OS{}
	}
	f := &Feed{
		dir:       cfg.Dir,
		fsys:      cfg.FS,
		workers:   cfg.Workers,
		maxLog:    cfg.MaxLog,
		threshold: cfg.Threshold,
		k:         cfg.K,
		tel:       cfg.Telemetry,
		spans:     cfg.Spans,
		dict:      rdf.NewDict(),
		subs:      make(map[string]*profile.Profile),
		idx:       make(map[rdf.TermID]map[string]struct{}),
		logs:      make(map[string]*userLog),
		done:      make(map[string]donePair),
		meta:      make(map[string]*logMeta),
	}
	if err := f.load(); err != nil {
		return nil, err
	}
	return f, nil
}

// Len returns the number of registered subscribers.
func (f *Feed) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.subs)
}

// Pairs returns how many version pairs have been fanned out.
func (f *Feed) Pairs() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.done)
}

// Subscribe registers (or updates — PUT semantics) a subscriber from its
// profile. The profile is cloned; the caller keeps ownership of p. It
// reports whether the subscriber was newly created. Subscribers receive
// notifications for commits that happen after they subscribe.
//
// Weights must be positive and finite: what Subscribe accepts, the
// persisted-segment decoder accepts back, so a bad registration can never
// wedge a feed directory against reopening. If persisting the registry
// fails, the in-memory change is rolled back — a reported error means the
// registry is exactly as it was.
func (f *Feed) Subscribe(p *profile.Profile) (info SubscriberInfo, created bool, err error) {
	if p == nil || p.ID == "" {
		return SubscriberInfo{}, false, fmt.Errorf("feed: subscriber must have a non-empty ID")
	}
	for t, w := range p.Interests {
		if !(w > 0) || math.IsInf(w, 0) {
			return SubscriberInfo{}, false, fmt.Errorf(
				"feed: subscriber %q: interest %s has invalid weight %g (want positive and finite)",
				p.ID, t, w)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	old, existed := f.subs[p.ID]
	if existed {
		f.dropPostingsLocked(p.ID, old)
	}
	own := p.Clone()
	f.subs[p.ID] = own
	f.addPostingsLocked(p.ID, own)
	if err := f.persistSubscribersLocked(); err != nil {
		f.dropPostingsLocked(p.ID, own)
		delete(f.subs, p.ID)
		if existed {
			f.subs[p.ID] = old
			f.addPostingsLocked(p.ID, old)
		}
		f.repairRegistrySegmentLocked()
		return SubscriberInfo{}, false, err
	}
	return subscriberInfo(own), !existed, nil
}

// Unsubscribe removes a subscriber and its index postings. The user's feed
// log (and its cursor sequence) is retained, so a poller can still drain
// history and a later re-subscribe continues the same cursor line. It
// returns ErrUnknownSubscriber when the ID is not registered; a persist
// failure rolls the removal back.
func (f *Feed) Unsubscribe(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	old, ok := f.subs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSubscriber, id)
	}
	f.dropPostingsLocked(id, old)
	delete(f.subs, id)
	if err := f.persistSubscribersLocked(); err != nil {
		f.subs[id] = old
		f.addPostingsLocked(id, old)
		f.repairRegistrySegmentLocked()
		return err
	}
	return nil
}

// repairRegistrySegmentLocked re-lands the registry segment after a failed
// persist was rolled back in memory. The failure may have struck after the
// segment write (at the manifest), leaving the new registry on disk — and
// the segment, not the manifest, is what load() trusts. Rewriting it from
// the restored state re-converges disk with memory; if the disk is still
// broken this write fails too, leaving things no worse (the original error
// is already on its way to the caller).
func (f *Feed) repairRegistrySegmentLocked() {
	if f.dir == "" {
		return
	}
	_ = f.writeSubscribersLocked() //nolint:errcheck // best effort, see above
}

// addPostingsLocked inserts id into the postings list of each of p's
// interest terms, interning new terms into the feed dictionary.
func (f *Feed) addPostingsLocked(id string, p *profile.Profile) {
	for t := range p.Interests {
		tid := f.dict.Intern(t)
		post := f.idx[tid]
		if post == nil {
			post = make(map[string]struct{})
			f.idx[tid] = post
		}
		post[id] = struct{}{}
	}
}

// dropPostingsLocked removes id from every postings list of p's interests.
func (f *Feed) dropPostingsLocked(id string, p *profile.Profile) {
	for t := range p.Interests {
		tid, ok := f.dict.Lookup(t)
		if !ok {
			continue
		}
		post := f.idx[tid]
		delete(post, id)
		if len(post) == 0 {
			delete(f.idx, tid)
		}
	}
}

// Subscribers lists the registered subscribers, sorted by ID.
func (f *Feed) Subscribers() []SubscriberInfo {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]SubscriberInfo, 0, len(f.subs))
	for _, p := range f.subs {
		out = append(out, subscriberInfo(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func subscriberInfo(p *profile.Profile) SubscriberInfo {
	return SubscriberInfo{ID: p.ID, Terms: len(p.Interests), Interests: p.SortedInterestIRIs()}
}

// Poll returns up to limit (<= 0 means all) of user's feed entries with
// cursor strictly greater than after, oldest first, plus the cursor to ack
// next time (the last returned entry's, or after when nothing is new).
// Unknown users — never subscribed, no retained log — error with
// ErrUnknownSubscriber.
func (f *Feed) Poll(user string, after uint64, limit int) ([]Entry, uint64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	lg, ok := f.logs[user]
	if !ok {
		if _, sub := f.subs[user]; !sub {
			return nil, after, fmt.Errorf("%w: %q", ErrUnknownSubscriber, user)
		}
		return nil, after, nil
	}
	i := sort.Search(len(lg.entries), func(i int) bool { return lg.entries[i].Cursor > after })
	out := lg.entries[i:]
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	next := after
	if len(out) > 0 {
		next = out[len(out)-1].Cursor
	}
	return append([]Entry(nil), out...), next, nil
}
