package feed_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"evorec/internal/core"
	"evorec/internal/feed"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
	"evorec/internal/schema"
	"evorec/internal/synth"
)

// world builds a deterministic two-version dataset with its engine, items
// and a profile pool whose interests overlap the scored entities.
type world struct {
	eng    *core.Engine
	items  []recommend.Item
	pool   []*profile.Profile
	ohID   string
	nwID   string
	coldTm rdf.Term
}

func buildWorld(t testing.TB) *world {
	t.Helper()
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 60, Locality: 0.8}, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.Config{})
	if err := eng.IngestAll(vs); err != nil {
		t.Fatal(err)
	}
	items, err := eng.Items("v1", "v2")
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.Extract(vs.At(0).Graph)
	pool, _, err := synth.GenerateProfiles(sch, synth.ProfileConfig{Users: 10, ExtraInterests: 2},
		rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return &world{
		eng: eng, items: items, pool: pool, ohID: "v1", nwID: "v2",
		coldTm: rdf.SchemaIRI("NobodyEverTouchesThis"),
	}
}

func mustSubscribe(t testing.TB, f *feed.Feed, p *profile.Profile) {
	t.Helper()
	if _, _, err := f.Subscribe(p); err != nil {
		t.Fatal(err)
	}
}

// TestFanOutParityWithNotify is the parity acceptance test: the feed's
// fan-out output for a pair, reassembled across user logs, must equal a
// serial Engine.Notify over the same pool with the same threshold and k.
func TestFanOutParityWithNotify(t *testing.T) {
	w := buildWorld(t)
	const threshold, k = 0.1, 3
	f, err := feed.Open(feed.Config{Threshold: threshold, K: k})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range w.pool {
		mustSubscribe(t, f, u)
	}
	st, err := f.FanOut(w.ohID, w.nwID, w.items)
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.eng.Notify(w.pool, w.ohID, w.nwID, threshold, k)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Notification
	for _, sub := range f.Subscribers() {
		entries, _, err := f.Poll(sub.ID, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			got = append(got, e.Note)
		}
	}
	// Notify orders by user then descending relatedness; Subscribers is
	// ID-sorted and each log is already relatedness-descending, so the
	// concatenation matches without re-sorting.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fan-out diverged from Engine.Notify:\n got %+v\nwant %+v", got, want)
	}
	if st.Notified != len(want) {
		t.Fatalf("Notified = %d, want %d", st.Notified, len(want))
	}
	if st.Affected > len(w.pool) {
		t.Fatalf("affected %d exceeds pool %d", st.Affected, len(w.pool))
	}
}

// TestFanOutLocality: a subscriber interested only in a term absent from
// every item vector is never matched, scored, or notified; after it
// re-subscribes with a hot interest it is.
func TestFanOutLocality(t *testing.T) {
	w := buildWorld(t)
	f, err := feed.Open(feed.Config{Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cold := profile.New("cold")
	cold.SetInterest(w.coldTm, 1)
	mustSubscribe(t, f, cold)
	hot := profile.New("hot")
	hot.SetInterest(hottestTerm(t, w.items), 1)
	mustSubscribe(t, f, hot)

	st, err := f.FanOut(w.ohID, w.nwID, w.items)
	if err != nil {
		t.Fatal(err)
	}
	if st.Affected != 1 {
		t.Fatalf("affected = %d, want 1 (only the hot subscriber)", st.Affected)
	}
	if entries, _, err := f.Poll("cold", 0, 0); err != nil || len(entries) != 0 {
		t.Fatalf("cold subscriber got %d entries (err %v), want 0", len(entries), err)
	}
	if entries, _, err := f.Poll("hot", 0, 0); err != nil || len(entries) == 0 {
		t.Fatalf("hot subscriber got no entries (err %v)", err)
	}

	// Interest update (PUT semantics) moves the postings: cold becomes hot
	// for the next pair.
	cold.SetInterest(w.coldTm, 0)
	cold.SetInterest(hottestTerm(t, w.items), 1)
	if _, created, err := f.Subscribe(cold); err != nil || created {
		t.Fatalf("resubscribe: created=%v err=%v, want update", created, err)
	}
	st2, err := f.FanOut(w.ohID, "v2-again", w.items)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Affected != 2 {
		t.Fatalf("affected after update = %d, want 2", st2.Affected)
	}
}

// hottestTerm returns the entity with the largest cumulative item weight.
func hottestTerm(t testing.TB, items []recommend.Item) rdf.Term {
	t.Helper()
	weight := make(map[rdf.Term]float64)
	for _, it := range items {
		for tm, wgt := range it.Vector {
			weight[tm] += wgt
		}
	}
	var best rdf.Term
	bestW := 0.0
	for tm, wgt := range weight {
		if wgt > bestW || (wgt == bestW && tm.Compare(best) < 0) {
			best, bestW = tm, wgt
		}
	}
	if bestW == 0 {
		t.Fatal("no scored entity in items")
	}
	return best
}

// TestFanOutIdempotent: fanning out the same pair twice delivers once (the
// ledger that keeps an invalidated-and-rebuilt pair from re-notifying).
func TestFanOutIdempotent(t *testing.T) {
	w := buildWorld(t)
	f, err := feed.Open(feed.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range w.pool {
		mustSubscribe(t, f, u)
	}
	st1, err := f.FanOut(w.ohID, w.nwID, w.items)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := f.FanOut(w.ohID, w.nwID, w.items)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Skipped || st2.Notified != 0 {
		t.Fatalf("second fan-out not skipped: %+v", st2)
	}
	total := 0
	for _, sub := range f.Subscribers() {
		entries, _, err := f.Poll(sub.ID, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(entries)
	}
	if total != st1.Notified {
		t.Fatalf("%d entries after duplicate fan-out, want %d", total, st1.Notified)
	}
	if f.Pairs() != 1 {
		t.Fatalf("Pairs() = %d, want 1", f.Pairs())
	}
}

// TestPollCursors checks the ack loop: cursors are monotonic from 1,
// after/limit page through without replay or loss, and unknown users error.
func TestPollCursors(t *testing.T) {
	w := buildWorld(t)
	f, err := feed.Open(feed.Config{Threshold: 0.01, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	hot := profile.New("u")
	hot.SetInterest(hottestTerm(t, w.items), 1)
	mustSubscribe(t, f, hot)
	for i := 0; i < 3; i++ {
		if _, err := f.FanOut(w.ohID, fmt.Sprintf("n%d", i), w.items); err != nil {
			t.Fatal(err)
		}
	}
	all, next, err := f.Poll("u", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no entries delivered")
	}
	for i, e := range all {
		if e.Cursor != uint64(i+1) {
			t.Fatalf("entry %d has cursor %d", i, e.Cursor)
		}
	}
	if next != all[len(all)-1].Cursor {
		t.Fatalf("next = %d, want %d", next, all[len(all)-1].Cursor)
	}
	// Page through with limit 2 and cursor acks; the concatenation must
	// equal the full log.
	var paged []feed.Entry
	after := uint64(0)
	for {
		page, n, err := f.Poll("u", after, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		paged = append(paged, page...)
		after = n
	}
	if !reflect.DeepEqual(paged, all) {
		t.Fatalf("paged poll diverged: %+v vs %+v", paged, all)
	}
	// Polling past the end is empty, not an error; unknown users error.
	if page, n, err := f.Poll("u", next, 0); err != nil || len(page) != 0 || n != next {
		t.Fatalf("poll past end: %v %v %v", page, n, err)
	}
	if _, _, err := f.Poll("ghost", 0, 0); !errors.Is(err, feed.ErrUnknownSubscriber) {
		t.Fatalf("poll unknown = %v, want ErrUnknownSubscriber", err)
	}
	if err := f.Unsubscribe("ghost"); !errors.Is(err, feed.ErrUnknownSubscriber) {
		t.Fatalf("unsubscribe unknown = %v, want ErrUnknownSubscriber", err)
	}
	// Unsubscribing keeps the log pollable and the cursor line intact.
	if err := f.Unsubscribe("u"); err != nil {
		t.Fatal(err)
	}
	kept, _, err := f.Poll("u", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kept, all) {
		t.Fatal("unsubscribe dropped the retained log")
	}
}

// TestLogTrim: MaxLog bounds retained entries; cursors keep increasing so
// a poller sees a gap, never a replay.
func TestLogTrim(t *testing.T) {
	w := buildWorld(t)
	f, err := feed.Open(feed.Config{Threshold: 0.01, K: 3, MaxLog: 2})
	if err != nil {
		t.Fatal(err)
	}
	u := profile.New("u")
	u.SetInterest(hottestTerm(t, w.items), 1)
	mustSubscribe(t, f, u)
	for i := 0; i < 4; i++ {
		if _, err := f.FanOut(w.ohID, fmt.Sprintf("n%d", i), w.items); err != nil {
			t.Fatal(err)
		}
	}
	entries, _, err := f.Poll("u", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("retained %d entries, want 2", len(entries))
	}
	if entries[0].Cursor <= 2 {
		t.Fatalf("trimmed log starts at cursor %d, want > 2", entries[0].Cursor)
	}
}

// TestPersistRoundTrip: a disk-backed feed reopens with identical
// subscribers, logs, cursors and fan-out ledger.
func TestPersistRoundTrip(t *testing.T) {
	w := buildWorld(t)
	dir := t.TempDir()
	f, err := feed.Open(feed.Config{Dir: dir, Threshold: 0.1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range w.pool {
		mustSubscribe(t, f, u)
	}
	if _, err := f.FanOut(w.ohID, w.nwID, w.items); err != nil {
		t.Fatal(err)
	}
	wantSubs := f.Subscribers()
	wantLogs := make(map[string][]feed.Entry)
	for _, sub := range wantSubs {
		wantLogs[sub.ID], _, err = f.Poll(sub.ID, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
	}

	g, err := feed.Open(feed.Config{Dir: dir, Threshold: 0.1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Subscribers(), wantSubs) {
		t.Fatalf("reopened subscribers diverged:\n got %+v\nwant %+v", g.Subscribers(), wantSubs)
	}
	for id, want := range wantLogs {
		got, _, err := g.Poll(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("reopened log %q diverged:\n got %+v\nwant %+v", id, got, want)
		}
	}
	// The reopened ledger remembers the pair: no re-delivery.
	st, err := g.FanOut(w.ohID, w.nwID, w.items)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Skipped {
		t.Fatal("reopened feed re-fanned a delivered pair")
	}
	// The index reopened too: a fresh pair still reaches subscribers.
	st2, err := g.FanOut(w.ohID, "v2b", w.items)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Affected == 0 {
		t.Fatal("reopened index matched nobody")
	}
}

// TestCrashWindowReopen simulates a kill between the log-segment writes
// and the manifest update: the segments hold a second fan-out the manifest
// never recorded. Open must succeed and serve the superset — the segment
// is the truth, the manifest is the index.
func TestCrashWindowReopen(t *testing.T) {
	w := buildWorld(t)
	dir := t.TempDir()
	f, err := feed.Open(feed.Config{Dir: dir, Threshold: 0.01, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	u := profile.New("u")
	u.SetInterest(hottestTerm(t, w.items), 1)
	mustSubscribe(t, f, u)
	if _, err := f.FanOut(w.ohID, w.nwID, w.items); err != nil {
		t.Fatal(err)
	}
	manifestAfterFirst, err := os.ReadFile(filepath.Join(dir, "feed.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.FanOut(w.ohID, "v3", w.items); err != nil {
		t.Fatal(err)
	}
	want, _, err := f.Poll("u", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// "Kill" between segment write and manifest update: the segments hold
	// both fan-outs, the manifest only the first.
	if err := os.WriteFile(filepath.Join(dir, "feed.json"), manifestAfterFirst, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := feed.Open(feed.Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after crash window: %v", err)
	}
	got, _, err := g.Poll("u", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("crash-window reopen lost entries:\n got %+v\nwant %+v", got, want)
	}
}

// TestRaceSubscribeFanOut races subscriber churn against commit fan-outs
// (run with -race): a stable subscriber present throughout must receive
// exactly one batch per pair — nothing dropped, nothing duplicated —
// whatever the interleaving.
func TestRaceSubscribeFanOut(t *testing.T) {
	w := buildWorld(t)
	f, err := feed.Open(feed.Config{Threshold: 0.01, K: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	hot := hottestTerm(t, w.items)
	stable := profile.New("stable")
	stable.SetInterest(hot, 1)
	mustSubscribe(t, f, stable)

	const pairs = 20
	const churners = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := profile.New(fmt.Sprintf("churn-%d-%d", c, i%5))
				p.SetInterest(hot, 0.5)
				if _, _, err := f.Subscribe(p); err != nil {
					t.Error(err)
					return
				}
				if err := f.Unsubscribe(p.ID); err != nil && !errors.Is(err, feed.ErrUnknownSubscriber) {
					t.Error(err)
					return
				}
				if _, _, err := f.Poll("stable", 0, 0); err != nil {
					t.Error(err)
					return
				}
				i++
			}
		}(c)
	}
	for i := 0; i < pairs; i++ {
		if _, err := f.FanOut("v1", fmt.Sprintf("r%03d", i), w.items); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Per-pair delivery for the stable subscriber: exactly one batch of
	// identical size per pair, cursors strictly increasing.
	entries, _, err := f.Poll("stable", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	perBatch := map[string]int{}
	var prev uint64
	for _, e := range entries {
		if e.Cursor <= prev {
			t.Fatalf("cursor %d not increasing after %d", e.Cursor, prev)
		}
		prev = e.Cursor
		perBatch[e.Note.NewerID]++
	}
	if len(perBatch) != pairs {
		t.Fatalf("stable subscriber saw %d pairs, want %d (dropped batches)", len(perBatch), pairs)
	}
	wantBatch := perBatch["r000"]
	if wantBatch == 0 {
		t.Fatal("stable subscriber got an empty first batch")
	}
	for pair, n := range perBatch {
		if n != wantBatch {
			t.Fatalf("pair %s delivered %d notifications, others %d (dup or drop)", pair, n, wantBatch)
		}
	}
}

// TestSubscribeRejectsBadWeights: what Subscribe accepts, the segment
// decoder must accept back — NaN/Inf/non-positive weights are rejected up
// front so a bad registration can never wedge a feed dir against reopening.
func TestSubscribeRejectsBadWeights(t *testing.T) {
	f, err := feed.Open(feed.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0} {
		p := profile.New("u")
		p.Interests[rdf.SchemaIRI("C")] = w // bypass SetInterest's clamp
		if _, _, err := f.Subscribe(p); err == nil {
			t.Fatalf("weight %g accepted", w)
		}
	}
	if f.Len() != 0 {
		t.Fatal("a rejected subscriber was registered")
	}
}

// TestSubscribePersistFailureRollsBack: when the registry segment cannot be
// written, Subscribe/Unsubscribe report the error AND leave the in-memory
// registry exactly as it was — no phantom subscribers receiving fan-outs,
// no silently-dropped ones.
func TestSubscribePersistFailureRollsBack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "feeds")
	f, err := feed.Open(feed.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	alice := profile.New("alice")
	alice.SetInterest(rdf.SchemaIRI("Painting"), 1)
	mustSubscribe(t, f, alice)

	// Break the feed directory: a regular file where the dir was makes
	// every segment write fail with ENOTDIR.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bob := profile.New("bob")
	bob.SetInterest(rdf.SchemaIRI("Sculpture"), 1)
	if _, _, err := f.Subscribe(bob); err == nil {
		t.Fatal("subscribe with a broken feed dir succeeded")
	}
	if err := f.Unsubscribe("alice"); err == nil {
		t.Fatal("unsubscribe with a broken feed dir succeeded")
	}
	subs := f.Subscribers()
	if len(subs) != 1 || subs[0].ID != "alice" {
		t.Fatalf("registry changed across failed persists: %+v", subs)
	}
	if _, _, err := f.Poll("bob", 0, 0); !errors.Is(err, feed.ErrUnknownSubscriber) {
		t.Fatalf("rolled-back subscriber pollable: %v", err)
	}
}

// TestEmptyFanOutPersistsLedger: a fan-out that notifies nobody must still
// land its ledger entry in the manifest, or the pair would be eligible for
// re-delivery after a restart.
func TestEmptyFanOutPersistsLedger(t *testing.T) {
	w := buildWorld(t)
	dir := t.TempDir()
	f, err := feed.Open(feed.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold := profile.New("cold")
	cold.SetInterest(w.coldTm, 1)
	mustSubscribe(t, f, cold)
	st, err := f.FanOut(w.ohID, w.nwID, w.items)
	if err != nil {
		t.Fatal(err)
	}
	if st.Affected != 0 || st.Notified != 0 {
		t.Fatalf("cold-only fan-out delivered: %+v", st)
	}
	g, err := feed.Open(feed.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if g.Pairs() != 1 {
		t.Fatalf("reopened Pairs() = %d, want 1 (empty fan-out lost from the ledger)", g.Pairs())
	}
	st2, err := g.FanOut(w.ohID, w.nwID, w.items)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Skipped {
		t.Fatal("reopened feed re-fanned a pair that notified nobody")
	}
}
