package feed

// Crash-window tests for the feed's persisted segments, extending the
// store's TestStoreOpenToleratesSupersetDict pattern to the feed segment
// kinds: a kill between a segment write and the manifest update leaves the
// segment holding MORE than the manifest records, and the segment is the
// truth. The inverse (segment holding less) is real corruption and must
// refuse to load.

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"evorec/internal/core"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/store"
	"evorec/internal/store/vfs"
)

func iri(s string) rdf.Term { return rdf.Term{Kind: rdf.IRI, Value: s} }

// writeFeedDir lays out a feed directory by hand on fsys: a subscriber
// segment holding subs, one log segment for user, and a manifest as given.
func writeFeedDir(t *testing.T, fsys vfs.FS, dir string, subs map[string]*profile.Profile, user string, entries []Entry, man manifest) {
	t.Helper()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := store.WriteKindedSegmentFS(fsys, filepath.Join(dir, subsFileName),
		store.KindSubscribers, appendSubscribers(nil, subs), true); err != nil {
		t.Fatal(err)
	}
	if user != "" {
		next := uint64(1)
		if n := len(entries); n > 0 {
			next = entries[n-1].Cursor + 1
		}
		if _, err := store.WriteKindedSegmentFS(fsys, filepath.Join(dir, "log00001.feed"),
			store.KindFeedLog, appendFeedLog(nil, user, next, entries), true); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFileAtomicFS(fsys, filepath.Join(dir, manifestName), data, true); err != nil {
		t.Fatal(err)
	}
}

func testEntries(user string, n int) []Entry {
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Entry{
			Cursor: uint64(i + 1),
			Note: core.Notification{
				UserID: user, OlderID: "v1", NewerID: "v2",
				MeasureID: "weighted_overlap", Relatedness: 0.5, Reason: "test",
			},
		})
	}
	return out
}

// TestFeedOpenToleratesSupersetSegments kills the process between the
// segment writes and the manifest update: both segment kinds then hold a
// superset of what the manifest records, and Open must trust the segments.
func TestFeedOpenToleratesSupersetSegments(t *testing.T) {
	fsys := vfs.NewMemFS()
	dir := "feed"
	alice, bob := profile.New("alice"), profile.New("bob")
	alice.SetInterest(iri("http://example.org/a"), 1)
	bob.SetInterest(iri("http://example.org/b"), 1)
	subs := map[string]*profile.Profile{"alice": alice, "bob": bob}
	entries := testEntries("alice", 2)
	// The manifest predates the crash window: it knows one subscriber and
	// one log entry, while the segments hold two of each.
	man := manifest{
		Format:      FormatV1,
		Subscribers: &segRef{File: subsFileName, Bytes: 1, Count: 1},
		Logs:        []logRef{{User: "alice", File: "log00001.feed", Bytes: 1, Entries: 1, Last: 1}},
	}
	writeFeedDir(t, fsys, dir, subs, "alice", entries, man)

	f, err := Open(Config{Dir: dir, FS: fsys})
	if err != nil {
		t.Fatalf("opening feed with superset segments: %v", err)
	}
	if got := f.Len(); got != 2 {
		t.Errorf("loaded %d subscribers, want 2 (segment is the truth, not the manifest count)", got)
	}
	got, next, err := f.Poll("alice", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || next != 2 {
		t.Errorf("Poll = %d entries next %d, want 2 entries next 2 (superset log entries must survive)", len(got), next)
	}
	// The extra state must persist forward: a subscriber update rewrites
	// the registry from the loaded (superset) state, and a reopen sees it.
	carol := profile.New("carol")
	carol.SetInterest(iri("http://example.org/c"), 1)
	if _, _, err := f.Subscribe(carol); err != nil {
		t.Fatal(err)
	}
	g, err := Open(Config{Dir: dir, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Len(); got != 3 {
		t.Errorf("after resubscribe+reopen, %d subscribers, want 3", got)
	}
}

// TestFeedOpenRejectsSubsetSegments: a manifest recording more than the
// segment holds cannot come from the crash window (segments land before the
// manifest) — it is corruption and must refuse to load.
func TestFeedOpenRejectsSubsetSegments(t *testing.T) {
	t.Run("log entries behind manifest", func(t *testing.T) {
		fsys := vfs.NewMemFS()
		man := manifest{
			Format: FormatV1,
			Logs:   []logRef{{User: "alice", File: "log00001.feed", Bytes: 1, Entries: 3, Last: 3}},
		}
		writeFeedDir(t, fsys, "feed", nil, "alice", testEntries("alice", 2), man)
		_, err := Open(Config{Dir: "feed", FS: fsys})
		if err == nil || !strings.Contains(err.Error(), "entries") {
			t.Fatalf("opening log subset = %v, want entry-count error", err)
		}
	})
	t.Run("cursor behind manifest", func(t *testing.T) {
		fsys := vfs.NewMemFS()
		man := manifest{
			Format: FormatV1,
			Logs:   []logRef{{User: "alice", File: "log00001.feed", Bytes: 1, Entries: 2, Last: 9}},
		}
		writeFeedDir(t, fsys, "feed", nil, "alice", testEntries("alice", 2), man)
		_, err := Open(Config{Dir: "feed", FS: fsys})
		if err == nil || !strings.Contains(err.Error(), "cursor") {
			t.Fatalf("opening stale-cursor log = %v, want cursor error", err)
		}
	})
}
