package exp

import (
	"fmt"
	"io"
)

// Experiment pairs an experiment ID with its runner.
type Experiment struct {
	// ID is the experiment identifier (E1..E12, A1..A4).
	ID string
	// Title summarizes what the experiment shows.
	Title string
	// Run produces the formatted table.
	Run func(Params) (string, error)
}

// All returns the full experiment suite in report order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Delta statistics (Table 1)", E1DeltaStatistics},
		{"E2", "Measure complementarity (Table 2, Figure 1)", E2MeasureComplementarity},
		{"E3", "Neighborhood vs direct change (Figure 2)", E3NeighborhoodLocality},
		{"E4", "Relatedness quality (Table 3)", E4RelatednessQuality},
		{"E5", "Diversity trade-off (Figure 3)", E5DiversityTradeoff},
		{"E6", "Group fairness (Table 4)", E6GroupFairness},
		{"E7", "Fair re-ranking (Figure 4)", E7FairReranking},
		{"E8", "Anonymity vs utility (Table 5)", E8AnonymityUtility},
		{"E9", "Scalability (Figure 5)", E9Scalability},
		{"E10", "Provenance overhead (Table 6)", E10ProvenanceOverhead},
		{"E11", "Change trends over the version chain (Table 7)", E11ChangeTrends},
		{"E12", "Feed fan-out locality (Table 8)", E12FeedLocality},
		{"A1", "Ablation: betweenness sampling", A1BetweennessSampling},
		{"A2", "Ablation: index variants", A2IndexVariants},
		{"A3", "Ablation: archiving policies", A3ArchivePolicies},
		{"A4", "Ablation: summary size vs coverage", A4SummaryCoverage},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes the whole suite, streaming each table to w.
func RunAll(w io.Writer, p Params) error {
	for _, e := range All() {
		out, err := e.Run(p)
		if err != nil {
			return fmt.Errorf("exp: %s failed: %w", e.ID, err)
		}
		if _, err := fmt.Fprintf(w, "%s\n", out); err != nil {
			return err
		}
	}
	return nil
}
