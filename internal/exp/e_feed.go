package exp

import (
	"fmt"
	"sort"

	"evorec/internal/feed"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
)

// E12FeedLocality (Table 8) verifies the feed subsystem's fan-out locality
// against planted ground truth. A subscriber population is split in two:
// the "hot" fraction registers interests drawn from entities the final
// version pair's measures actually score (the planted change region), the
// "cold" remainder registers interests in fresh classes no version ever
// mentions (an untouched region by construction). One commit-triggered
// fan-out must then (a) match only the hot subscribers in the inverted
// index — affected-set size ≪ pool size — and (b) deliver zero
// notifications to every cold subscriber. This is the inversion that turns
// notification from O(all users × items) per request into O(affected
// users) per commit.
func E12FeedLocality(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	olderID, newerID := ds.lastPairIDs()

	// Hot terms: entities the pair's items score positively, hottest
	// first, so subscribers land on entities with real signal.
	weight := make(map[rdf.Term]float64)
	for _, it := range ds.Items {
		for t, w := range it.Vector {
			if w > 0 {
				weight[t] += w
			}
		}
	}
	if len(weight) == 0 {
		return "", fmt.Errorf("exp: E12 pair %s->%s scored no entities", olderID, newerID)
	}
	hot := make([]rdf.Term, 0, len(weight))
	for t := range weight {
		hot = append(hot, t)
	}
	sort.Slice(hot, func(i, j int) bool {
		if weight[hot[i]] != weight[hot[j]] {
			return weight[hot[i]] > weight[hot[j]]
		}
		return hot[i].Compare(hot[j]) < 0
	})

	f, err := feed.Open(feed.Config{Threshold: 0.01, K: p.K})
	if err != nil {
		return "", err
	}
	users := p.Users
	if users < 8 {
		users = 8
	}
	hotUsers := users / 4
	if hotUsers < 1 {
		hotUsers = 1
	}
	for i := 0; i < users; i++ {
		var u *profile.Profile
		if i < hotUsers {
			u = profile.New(fmt.Sprintf("hot%04d", i))
			u.SetInterest(hot[i%len(hot)], 1)
		} else {
			u = profile.New(fmt.Sprintf("cold%04d", i))
			// Fresh classes outside every version's vocabulary: the
			// untouched region.
			u.SetInterest(rdf.SchemaIRI(fmt.Sprintf("UntouchedRegion%04d", i)), 1)
		}
		if _, _, err := f.Subscribe(u); err != nil {
			return "", err
		}
	}

	// Fan out through the compiled scoring index — the same shape the
	// service's commit path uses (index built once per pair, amortized over
	// every affected subscriber).
	st, err := f.FanOutIndexed(olderID, newerID, recommend.NewItemIndex(ds.Items))
	if err != nil {
		return "", err
	}
	if st.Affected > hotUsers {
		return "", fmt.Errorf("exp: E12 affected %d subscribers, only %d are in the change region",
			st.Affected, hotUsers)
	}
	coldNotified := 0
	coldPolled := 0
	for _, sub := range f.Subscribers() {
		if len(sub.ID) < 4 || sub.ID[:4] != "cold" {
			continue
		}
		coldPolled++
		entries, _, err := f.Poll(sub.ID, 0, 0)
		if err != nil {
			return "", err
		}
		coldNotified += len(entries)
	}
	if coldNotified != 0 {
		return "", fmt.Errorf("exp: E12 delivered %d notifications to untouched-region subscribers", coldNotified)
	}

	t := newTable("E12 / Table 8 — feed fan-out locality (pair " + olderID + "->" + newerID + ")")
	t.rowf("subscribers\t%d", st.Subscribers)
	t.rowf("change-region subscribers\t%d", hotUsers)
	t.rowf("affected (index-matched, scored)\t%d", st.Affected)
	t.rowf("scored fraction of pool\t%.1f%%", 100*float64(st.Affected)/float64(st.Subscribers))
	t.rowf("notifications delivered\t%d", st.Notified)
	t.rowf("untouched-region subscribers polled\t%d", coldPolled)
	t.rowf("untouched-region notifications\t%d", coldNotified)
	t.row("")
	t.row("locality check: fan-out scored only index-matched subscribers; every")
	t.row("subscriber outside the planted change region received nothing.")
	return t.String(), nil
}
