package exp

import (
	"fmt"

	"evorec/internal/measures"
)

// E2MeasureComplementarity (Table 2 + Figure 1) quantifies the paper's core
// premise that the exemplar measures are complementary viewpoints: it
// reports the pairwise top-k Jaccard overlap and Kendall rank correlation of
// the class rankings the measures induce on the final version pair. Low
// off-diagonal overlap means a recommender choosing between measures is
// choosing between genuinely different views of the same evolution.
func E2MeasureComplementarity(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	items := classItems(ds.Items)
	classes := ds.Ctx.UnionClasses()

	// Restrict every measure's scores to the class population so rankings
	// are comparable.
	type mv struct {
		id     string
		scores measures.Scores
		rank   measures.Ranking
	}
	views := make([]mv, 0, len(items))
	for _, it := range items {
		s := measures.Scores{}
		for _, c := range classes {
			s[c] = it.Scores[c]
		}
		views = append(views, mv{id: it.ID(), scores: s, rank: s.Rank()})
	}

	const topK = 20
	t := newTable("E2 / Table 2 — pairwise top-20 Jaccard overlap of measure rankings")
	header := []string{"measure"}
	for _, v := range views {
		header = append(header, shortID(v.id))
	}
	t.row(header...)
	var offDiagSum float64
	var offDiagN int
	for i, a := range views {
		cells := []string{shortID(a.id)}
		for j, b := range views {
			jac := measures.TopKJaccard(a.rank, b.rank, topK)
			if i != j {
				offDiagSum += jac
				offDiagN++
			}
			cells = append(cells, fmtF(jac))
		}
		t.row(cells...)
	}
	t.row("")
	t.rowf("mean off-diagonal top-%d Jaccard\t%.3f", topK, offDiagSum/float64(offDiagN))

	t2 := newTable("\nE2 / Figure 1 — pairwise Kendall tau of measure rankings (class population)")
	t2.row(header...)
	offDiagSum, offDiagN = 0, 0
	for i, a := range views {
		cells := []string{shortID(a.id)}
		for j, b := range views {
			tau := measures.KendallTau(a.scores, b.scores, classes)
			if i != j {
				offDiagSum += tau
				offDiagN++
			}
			cells = append(cells, fmtF(tau))
		}
		t2.row(cells...)
	}
	t2.row("")
	t2.rowf("mean off-diagonal Kendall tau\t%.3f", offDiagSum/float64(offDiagN))
	t2.row("shape check: off-diagonal overlap well below 1.0 — the measures are")
	t2.row("complementary viewpoints, the premise of recommending among them.")
	return t.String() + t2.String(), nil
}

func shortID(id string) string {
	switch id {
	case "change_count":
		return "chg"
	case "neighborhood_change_count":
		return "nbr"
	case "betweenness_shift":
		return "btw"
	case "bridging_shift":
		return "brg"
	case "centrality_shift":
		return "cen"
	case "relevance_shift":
		return "rel"
	case "property_centrality_shift":
		return "pcn"
	default:
		if len(id) > 4 {
			return id[:4]
		}
		return id
	}
}

func fmtF(v float64) string {
	if v != v { // NaN guard
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}
