// Package exp defines the experiment suite of the reproduction. The paper
// is a vision paper with no evaluation section (see DESIGN.md §1), so each
// experiment here operationalizes one claim of the paper — the measures are
// complementary viewpoints, relatedness personalizes, diversity trades
// against relevance, least-misery aggregation is fairer, anonymity costs
// utility — and produces the table or series that quantifies it. The same
// functions back the evobench CLI and the root-level Go benchmarks.
package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"evorec/internal/core"
	"evorec/internal/measures"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
	"evorec/internal/schema"
	"evorec/internal/synth"
)

// Params sizes an experiment run. Defaults() gives the paper-scale setup;
// tests shrink it for speed.
type Params struct {
	// Seed drives all generation; equal seeds give identical tables.
	Seed int64
	// KB shapes each generated version.
	KB synth.KBConfig
	// Steps is the number of evolution steps (versions = Steps + 1).
	Steps int
	// Ops is the number of change operations per evolution step.
	Ops int
	// Locality is the change-concentration of each step.
	Locality float64
	// Users is the synthetic population size.
	Users int
	// K is the recommendation list length.
	K int
}

// Defaults returns the standard experiment scale: a DBpedia-shaped KB with
// five versions and a population of 40 users.
func Defaults() Params {
	return Params{
		Seed:     42,
		KB:       synth.DBpediaLike(),
		Steps:    4,
		Ops:      300,
		Locality: 0.8,
		Users:    40,
		K:        3,
	}
}

// TestScale returns a reduced setup for unit tests and smoke runs.
func TestScale() Params {
	return Params{
		Seed:     42,
		KB:       synth.Small(),
		Steps:    2,
		Ops:      60,
		Locality: 0.8,
		Users:    12,
		K:        3,
	}
}

// Dataset bundles the synthetic world one experiment run operates on.
type Dataset struct {
	// Versions is the evolving dataset.
	Versions *rdf.VersionStore
	// Focuses records where each evolution step planted its change burst.
	Focuses []rdf.Term
	// Ctx is the analysis context of the final version pair.
	Ctx *measures.Context
	// Items are the evaluated measures of the final pair.
	Items []recommend.Item
	// Pool is the synthetic user population (profiles over the first
	// version's schema).
	Pool []*profile.Profile
	// PoolFocus is each user's focus class (ground truth for relatedness).
	PoolFocus []rdf.Term
}

// BuildDataset generates the synthetic world for the given parameters.
func BuildDataset(p Params) (*Dataset, error) {
	vs, focuses, err := synth.GenerateVersions(p.KB,
		synth.EvolveConfig{Ops: p.Ops, Locality: p.Locality}, p.Steps, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("exp: generating versions: %w", err)
	}
	n := vs.Len()
	older := vs.At(n - 2)
	newer := vs.At(n - 1)
	ctx := measures.NewContext(older, newer)
	items := recommend.BuildItems(ctx, measures.NewRegistry())

	sch := schema.Extract(vs.At(0).Graph)
	rng := rand.New(rand.NewSource(p.Seed + 1))
	pool, poolFocus, err := synth.GenerateProfiles(sch,
		synth.ProfileConfig{Users: p.Users, ExtraInterests: 2}, rng)
	if err != nil {
		return nil, fmt.Errorf("exp: generating profiles: %w", err)
	}
	return &Dataset{
		Versions:  vs,
		Focuses:   focuses,
		Ctx:       ctx,
		Items:     items,
		Pool:      pool,
		PoolFocus: poolFocus,
	}, nil
}

// BuildEngine constructs an engine preloaded with the dataset's versions.
func BuildEngine(ds *Dataset) (*core.Engine, error) {
	e := core.New(core.Config{})
	if err := e.IngestAll(ds.Versions); err != nil {
		return nil, err
	}
	return e, nil
}

// lastPairIDs returns the version IDs of the dataset's final pair.
func (ds *Dataset) lastPairIDs() (string, string) {
	n := ds.Versions.Len()
	return ds.Versions.At(n - 2).ID, ds.Versions.At(n - 1).ID
}

// table is a small tabwriter helper accumulating one formatted table.
type table struct {
	b strings.Builder
	w *tabwriter.Writer
}

func newTable(title string) *table {
	t := &table{}
	t.b.WriteString(title)
	t.b.WriteByte('\n')
	t.w = tabwriter.NewWriter(&t.b, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.w, strings.Join(cells, "\t"))
}

func (t *table) rowf(format string, args ...any) {
	fmt.Fprintf(t.w, format+"\n", args...)
}

func (t *table) String() string {
	t.w.Flush()
	return t.b.String()
}

// classItems filters the items whose measure targets classes (the
// population over which the measure rankings are comparable).
func classItems(items []recommend.Item) []recommend.Item {
	var out []recommend.Item
	for _, it := range items {
		if tgt := it.Measure.Target(); tgt == measures.Classes || tgt == measures.ClassesAndProperties {
			out = append(out, it)
		}
	}
	return out
}
