package exp

import (
	"math/rand"

	"evorec/internal/profile"
	"evorec/internal/recommend"
)

// E8AnonymityUtility (Table 5) quantifies the §III-e privacy/utility
// trade-off: profiles are published through k-anonymity or differential
// privacy, recommendations are computed from the published profiles only,
// and both the linkage-attack re-identification risk and the NDCG against
// the un-anonymized ground truth are reported. Risk must fall and utility
// must decay as privacy tightens.
func E8AnonymityUtility(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	universe := recommend.InterestUniverse(ds.Pool)

	t := newTable("E8 / Table 5 — anonymity level vs re-identification risk and utility")
	t.row("policy", "reid_risk", "NDCG@"+itoa(p.K))

	report := func(label string, published []*profile.Profile) {
		risk := recommend.ReidentificationRisk(ds.Pool, published)
		var ndcg float64
		for i, u := range ds.Pool {
			gt := groundTruth(u, ds.Items)
			ranked := recommend.MeasureIDs(recommend.TopK(published[i], ds.Items, len(ds.Items)))
			ndcg += recommend.NDCGAtK(ranked, gt, p.K)
		}
		t.rowf("%s\t%.3f\t%.3f", label, risk, ndcg/float64(len(ds.Pool)))
	}

	// Baseline: publish originals.
	report("none", ds.Pool)
	// k-anonymity sweep.
	for _, k := range []int{2, 4, 8} {
		if k > len(ds.Pool) {
			continue
		}
		anon, _, err := recommend.KAnonymize(ds.Pool, k)
		if err != nil {
			return "", err
		}
		report("k-anon k="+itoa(k), anon)
	}
	// Differential privacy sweep.
	for _, eps := range []float64{5, 1, 0.25} {
		rng := rand.New(rand.NewSource(p.Seed + 31))
		noisy := make([]*profile.Profile, len(ds.Pool))
		for i, u := range ds.Pool {
			np, err := recommend.DPPerturb(u, universe, eps, rng)
			if err != nil {
				return "", err
			}
			noisy[i] = np
		}
		report("dp ε="+fmtF(eps), noisy)
	}
	t.row("")
	t.row("shape check: risk=1 with no protection, falls toward 1/k (k-anonymity)")
	t.row("and toward chance (strong DP noise); NDCG decays as privacy tightens.")
	return t.String(), nil
}
