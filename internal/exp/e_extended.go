package exp

import (
	"fmt"
	"os"
	"sort"
	"time"

	"evorec/internal/archive"
	"evorec/internal/measures"
	"evorec/internal/store"
	"evorec/internal/summary"
	"evorec/internal/synth"
	"evorec/internal/trend"
)

// E11ChangeTrends (Table 7) analyzes change trends over the whole version
// chain — the "observe changes trends" promise of the paper's introduction:
// per-class change-count series are classified into trend shapes and the
// hottest / fastest-rising classes are reported.
func E11ChangeTrends(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	a, err := trend.Analyze(ds.Versions, measures.ChangeCount{})
	if err != nil {
		return "", err
	}
	t := newTable("E11 / Table 7 — change trends over the version chain (" + itoa(len(a.PairIDs)) + " pairs)")
	t.rowf("entities tracked\t%d", a.Len())
	counts := a.ShapeCounts()
	shapes := make([]trend.Shape, 0, len(counts))
	for sh := range counts {
		shapes = append(shapes, sh)
	}
	sort.Slice(shapes, func(i, j int) bool { return shapes[i] < shapes[j] })
	t.row("")
	t.row("shape", "entities")
	for _, sh := range shapes {
		t.rowf("%s\t%d", sh, counts[sh])
	}
	t.row("")
	t.row("top-5 by cumulative change:", "")
	for _, s := range a.TopTotal(5) {
		t.rowf("  %s\ttotal=%.0f shape=%s", s.Term.Local(), s.Total(), s.Classify())
	}
	t.row("")
	t.row("top-5 rising:", "")
	for _, s := range a.TopRising(5) {
		t.rowf("  %s\tslope=%.1f shape=%s", s.Term.Local(), s.Slope(), s.Classify())
	}
	t.row("")
	t.row("shape check: the localized evolution leaves most classes quiet while")
	t.row("the burst regions register as bursty/rising/steady series.")
	return t.String(), nil
}

// A3ArchivePolicies ablates the storage layer along two axes (after the
// paper's reference [13]): the archiving policy (full snapshots, delta
// chain, hybrid) and the on-disk codec (text N-Triples vs the binary
// dictionary-native segment store). For each cell it measures footprint,
// save time, full-chain load time, and random access to a single middle
// version — the operation the lazy binary handle exists for: text must
// reconstruct the chain to answer it, binary decodes one snapshot plus the
// deltas since.
func A3ArchivePolicies(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	mid := ds.Versions.Len() / 2
	midID := ds.Versions.At(mid).ID
	t := newTable("A3 — archiving policies × codec: storage vs access (versions=" + itoa(ds.Versions.Len()) + ")")
	t.row("policy", "codec", "bytes", "relative", "save_ms", "load_ms", "rand_ms")
	var baseline int64
	for _, pol := range []archive.Policy{archive.FullSnapshots, archive.Hybrid, archive.DeltaChain} {
		for _, codec := range []archive.Codec{archive.Text, archive.Binary} {
			dir, err := tempDir("evorec-a3-" + pol.String() + "-" + codec.String())
			if err != nil {
				return "", err
			}
			start := time.Now()
			man, err := archive.Save(dir, ds.Versions,
				archive.Options{Policy: pol, SnapshotEvery: 2, Codec: codec})
			if err != nil {
				return "", err
			}
			saveMs := time.Since(start).Seconds() * 1000
			size, err := archive.DiskUsage(dir, man)
			if err != nil {
				return "", err
			}
			start = time.Now()
			back, err := archive.Load(dir)
			if err != nil {
				return "", err
			}
			loadMs := time.Since(start).Seconds() * 1000
			if back.Len() != ds.Versions.Len() {
				t.row("WARNING: reconstruction lost versions")
			}
			randMs, err := randomAccessMs(dir, codec, midID)
			if err != nil {
				return "", err
			}
			if pol == archive.FullSnapshots && codec == archive.Text {
				baseline = size
			}
			rel := float64(size) / float64(baseline)
			t.rowf("%s\t%s\t%d\t%.2f\t%.1f\t%.1f\t%.1f",
				pol, codec, size, rel, saveMs, loadMs, randMs)
			cleanupDir(dir)
		}
	}
	t.row("")
	t.row("shape check: the delta chain stores a fraction of the snapshot bytes;")
	t.row("binary shrinks every cell further and loads without parsing, and its")
	t.row("lazy random access skips the versions the request never touches.")
	return t.String(), nil
}

// randomAccessMs times fetching one version cold: a fresh load of whatever
// the codec requires to answer for that version.
func randomAccessMs(dir string, codec archive.Codec, id string) (float64, error) {
	start := time.Now()
	if codec == archive.Binary {
		h, err := store.Open(dir)
		if err != nil {
			return 0, err
		}
		if _, err := h.Graph(id); err != nil {
			return 0, err
		}
	} else {
		vs, err := archive.Load(dir)
		if err != nil {
			return 0, err
		}
		if _, ok := vs.Get(id); !ok {
			return 0, fmt.Errorf("exp: version %s missing from archive", id)
		}
	}
	return time.Since(start).Seconds() * 1000, nil
}

// tempDir creates a fresh temporary directory for an ablation run.
func tempDir(prefix string) (string, error) {
	return os.MkdirTemp("", prefix)
}

// cleanupDir removes an ablation directory, ignoring errors (temp space).
func cleanupDir(dir string) { os.RemoveAll(dir) }

// A4SummaryCoverage ablates the schema-summarization substrate (after the
// paper's reference [15]): summary size k against instance coverage and the
// number of linking classes needed to keep the summary connected.
func A4SummaryCoverage(p Params) (string, error) {
	vs, _, err := synth.GenerateVersions(p.KB, synth.EvolveConfig{Ops: 0}, 0, p.Seed)
	if err != nil {
		return "", err
	}
	g := vs.At(0).Graph
	t := newTable("A4 — schema summary size vs instance coverage")
	t.row("k", "selected", "linking", "edges", "instance_coverage")
	for _, k := range []int{5, 10, 20, 40} {
		s, err := summary.Summarize(g, k)
		if err != nil {
			return "", err
		}
		t.rowf("%d\t%d\t%d\t%d\t%.3f",
			k, len(s.Selected), len(s.Linking), len(s.Edges), s.InstanceCoverage)
	}
	t.row("")
	t.row("shape check: coverage grows steeply at small k (Zipf-skewed instances")
	t.row("concentrate on few classes) and saturates; linking stays small.")
	return t.String(), nil
}
