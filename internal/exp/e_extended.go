package exp

import (
	"os"
	"sort"
	"time"

	"evorec/internal/archive"
	"evorec/internal/measures"
	"evorec/internal/summary"
	"evorec/internal/synth"
	"evorec/internal/trend"
)

// E11ChangeTrends (Table 7) analyzes change trends over the whole version
// chain — the "observe changes trends" promise of the paper's introduction:
// per-class change-count series are classified into trend shapes and the
// hottest / fastest-rising classes are reported.
func E11ChangeTrends(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	a, err := trend.Analyze(ds.Versions, measures.ChangeCount{})
	if err != nil {
		return "", err
	}
	t := newTable("E11 / Table 7 — change trends over the version chain (" + itoa(len(a.PairIDs)) + " pairs)")
	t.rowf("entities tracked\t%d", a.Len())
	counts := a.ShapeCounts()
	shapes := make([]trend.Shape, 0, len(counts))
	for sh := range counts {
		shapes = append(shapes, sh)
	}
	sort.Slice(shapes, func(i, j int) bool { return shapes[i] < shapes[j] })
	t.row("")
	t.row("shape", "entities")
	for _, sh := range shapes {
		t.rowf("%s\t%d", sh, counts[sh])
	}
	t.row("")
	t.row("top-5 by cumulative change:", "")
	for _, s := range a.TopTotal(5) {
		t.rowf("  %s\ttotal=%.0f shape=%s", s.Term.Local(), s.Total(), s.Classify())
	}
	t.row("")
	t.row("top-5 rising:", "")
	for _, s := range a.TopRising(5) {
		t.rowf("  %s\tslope=%.1f shape=%s", s.Term.Local(), s.Slope(), s.Classify())
	}
	t.row("")
	t.row("shape check: the localized evolution leaves most classes quiet while")
	t.row("the burst regions register as bursty/rising/steady series.")
	return t.String(), nil
}

// A3ArchivePolicies ablates the archiving policies the storage layer
// supports (after the paper's reference [13]): storage footprint vs full
// reconstruction time for full snapshots, a delta chain, and the hybrid.
func A3ArchivePolicies(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	t := newTable("A3 — archiving policies: storage vs reconstruction (versions=" + itoa(ds.Versions.Len()) + ")")
	t.row("policy", "bytes", "relative", "load_ms")
	var baseline int64
	for _, pol := range []archive.Policy{archive.FullSnapshots, archive.Hybrid, archive.DeltaChain} {
		dir, err := tempDir("evorec-a3-" + pol.String())
		if err != nil {
			return "", err
		}
		man, err := archive.Save(dir, ds.Versions, archive.Options{Policy: pol, SnapshotEvery: 2})
		if err != nil {
			return "", err
		}
		size, err := archive.DiskUsage(dir, man)
		if err != nil {
			return "", err
		}
		start := time.Now()
		back, err := archive.Load(dir)
		if err != nil {
			return "", err
		}
		loadMs := time.Since(start).Seconds() * 1000
		if back.Len() != ds.Versions.Len() {
			t.row("WARNING: reconstruction lost versions")
		}
		if pol == archive.FullSnapshots {
			baseline = size
		}
		rel := float64(size) / float64(baseline)
		t.rowf("%s\t%d\t%.2f\t%.1f", pol, size, rel, loadMs)
		cleanupDir(dir)
	}
	t.row("")
	t.row("shape check: the delta chain stores a fraction of the snapshot bytes")
	t.row("and pays for it with chain-replay reconstruction; hybrid sits between.")
	return t.String(), nil
}

// tempDir creates a fresh temporary directory for an ablation run.
func tempDir(prefix string) (string, error) {
	return os.MkdirTemp("", prefix)
}

// cleanupDir removes an ablation directory, ignoring errors (temp space).
func cleanupDir(dir string) { os.RemoveAll(dir) }

// A4SummaryCoverage ablates the schema-summarization substrate (after the
// paper's reference [15]): summary size k against instance coverage and the
// number of linking classes needed to keep the summary connected.
func A4SummaryCoverage(p Params) (string, error) {
	vs, _, err := synth.GenerateVersions(p.KB, synth.EvolveConfig{Ops: 0}, 0, p.Seed)
	if err != nil {
		return "", err
	}
	g := vs.At(0).Graph
	t := newTable("A4 — schema summary size vs instance coverage")
	t.row("k", "selected", "linking", "edges", "instance_coverage")
	for _, k := range []int{5, 10, 20, 40} {
		s, err := summary.Summarize(g, k)
		if err != nil {
			return "", err
		}
		t.rowf("%d\t%d\t%d\t%d\t%.3f",
			k, len(s.Selected), len(s.Linking), len(s.Edges), s.InstanceCoverage)
	}
	t.row("")
	t.row("shape check: coverage grows steeply at small k (Zipf-skewed instances")
	t.row("concentrate on few classes) and saturates; linking stays small.")
	return t.String(), nil
}
