package exp

import (
	"math/rand"

	"evorec/internal/profile"
	"evorec/internal/recommend"
	"evorec/internal/synth"
)

// groupStats evaluates one selection strategy over several sampled groups
// and returns mean min-satisfaction, mean satisfaction and mean Jain index.
func groupStats(ds *Dataset, kind synth.GroupKind, size, k int, seed int64,
	pick func(*profile.Group) []recommend.Recommendation) (minSat, meanSat, jain float64, err error) {
	const rounds = 5
	for r := int64(0); r < rounds; r++ {
		rng := rand.New(rand.NewSource(seed + r))
		g, gerr := synth.GenerateGroup(ds.Pool, size, kind, rng)
		if gerr != nil {
			return 0, 0, 0, gerr
		}
		sel := pick(g)
		minSat += recommend.MinSatisfaction(g, ds.Items, sel)
		meanSat += recommend.MeanSatisfaction(g, ds.Items, sel)
		jain += recommend.JainIndex(recommend.GroupSatisfactions(g, ds.Items, sel))
	}
	return minSat / rounds, meanSat / rounds, jain / rounds, nil
}

// E6GroupFairness (Table 4) compares the aggregation strategies across group
// compositions, reporting the fairness triple (min satisfaction, mean
// satisfaction, Jain index). The paper's §III-d scenario — a selection the
// group likes overall but that starves one member — appears as the
// average-aggregation row on antagonistic groups.
func E6GroupFairness(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	t := newTable("E6 / Table 4 — group aggregation strategies vs fairness (groups of 4, k=" + itoa(p.K) + ")")
	t.row("group_kind", "aggregation", "min_sat", "mean_sat", "jain")
	for _, kind := range []synth.GroupKind{synth.CoherentGroup, synth.RandomGroup, synth.AntagonisticGroup} {
		for _, agg := range []recommend.Aggregation{recommend.Average, recommend.LeastMisery, recommend.MostPleasure} {
			a := agg
			minS, meanS, jain, err := groupStats(ds, kind, 4, p.K, p.Seed+11,
				func(g *profile.Group) []recommend.Recommendation {
					return recommend.GroupTopK(g, ds.Items, p.K, a)
				})
			if err != nil {
				return "", err
			}
			t.rowf("%s\t%s\t%.3f\t%.3f\t%.3f", kind, agg, minS, meanS, jain)
		}
	}
	t.row("")
	t.row("shape check: on antagonistic groups least_misery lifts min_sat relative")
	t.row("to average/most_pleasure; on coherent groups the strategies converge.")
	return t.String(), nil
}

// E7FairReranking (Figure 4) sweeps the fairness balance α of the greedy
// fairness-aware selector on antagonistic groups: min satisfaction rises
// with α while mean satisfaction pays a bounded price.
func E7FairReranking(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	t := newTable("E7 / Figure 4 — fairness-aware greedy selection on antagonistic groups (k=" + itoa(p.K) + ")")
	t.row("alpha", "min_sat", "mean_sat", "jain")
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		a := alpha
		minS, meanS, jain, err := groupStats(ds, synth.AntagonisticGroup, 4, p.K, p.Seed+23,
			func(g *profile.Group) []recommend.Recommendation {
				return recommend.FairGreedyTopK(g, ds.Items, p.K, a)
			})
		if err != nil {
			return "", err
		}
		t.rowf("%.2f\t%.3f\t%.3f\t%.3f", alpha, minS, meanS, jain)
	}
	t.row("")
	t.row("shape check: min_sat typically rises with α (the greedy serves the")
	t.row("worst-off member), with mean_sat flat or slightly lower at high α.")
	return t.String(), nil
}
