package exp

import (
	"fmt"
	"sort"

	"evorec/internal/delta"
	"evorec/internal/measures"
	"evorec/internal/rdf"
	"evorec/internal/synth"
)

// E1DeltaStatistics (Table 1) reports the low-level and high-level delta
// volume of every consecutive version pair, plus the most-changed classes of
// the final pair — the paper's §II-a counting view of evolution.
func E1DeltaStatistics(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	t := newTable("E1 / Table 1 — delta statistics per version pair")
	t.row("pair", "|δ+|", "|δ−|", "|δ|", "high-level changes")
	ds.Versions.Pairs(func(older, newer *rdf.Version) bool {
		d := delta.ComputeVersions(older, newer)
		hl := delta.DetectHighLevel(older.Graph, newer.Graph)
		t.rowf("%s->%s\t%d\t%d\t%d\t%d",
			older.ID, newer.ID, len(d.Added), len(d.Deleted), d.Size(), len(hl))
		return true
	})

	// High-level change mix over the final pair.
	n := ds.Versions.Len()
	older, newer := ds.Versions.At(n-2), ds.Versions.At(n-1)
	hl := delta.DetectHighLevel(older.Graph, newer.Graph)
	byKind := delta.CountByKind(hl)
	kinds := make([]delta.ChangeKind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	t.row("")
	t.rowf("high-level mix (%s->%s):", older.ID, newer.ID)
	for _, k := range kinds {
		t.rowf("  %s\t%d", k, byKind[k])
	}

	// Top-5 most changed classes of the final pair (the paper's headline
	// use case: "identify the most changed parts").
	cc := measures.ChangeCount{}.Compute(ds.Ctx)
	classesOnly := measures.Scores{}
	for _, c := range ds.Ctx.UnionClasses() {
		classesOnly[c] = cc[c]
	}
	t.row("")
	t.rowf("top-5 changed classes (%s->%s):", older.ID, newer.ID)
	for _, e := range classesOnly.Rank().TopK(5) {
		t.rowf("  %s\t%.0f", e.Term.Local(), e.Score)
	}
	return t.String(), nil
}

// E3NeighborhoodLocality (Figure 2) sweeps the change locality of the
// evolution simulator and reports how the direct change count and the
// neighborhood change count relate (Pearson and Kendall over classes). The
// two §II-a/b measures correlate — a class in a changing region is usually
// touched itself — but never coincide, which is exactly why the paper offers
// both.
func E3NeighborhoodLocality(p Params) (string, error) {
	t := newTable("E3 / Figure 2 — direct vs neighborhood change count across change locality")
	t.row("locality", "pearson", "kendall_tau", "direct_nonzero", "neighborhood_nonzero")
	for i, loc := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		vs, _, err := synth.GenerateVersions(p.KB,
			synth.EvolveConfig{Ops: p.Ops, Locality: loc}, 1, p.Seed+int64(i))
		if err != nil {
			return "", err
		}
		ctx := measures.NewContext(vs.At(0), vs.At(1))
		direct := measures.ChangeCount{}.Compute(ctx)
		nbr := measures.NeighborhoodChangeCount{}.Compute(ctx)
		classes := ctx.UnionClasses()
		directClasses := measures.Scores{}
		for _, c := range classes {
			directClasses[c] = direct[c]
		}
		t.rowf("%.1f\t%.3f\t%.3f\t%d\t%d",
			loc,
			measures.PearsonCorrelation(directClasses, nbr, classes),
			measures.KendallTau(directClasses, nbr, classes),
			directClasses.NonZero(), nbr.NonZero())
	}
	t.row("")
	t.row(fmt.Sprintf("shape check: correlations stay below 1.0 — the neighborhood view adds"),
		"")
	t.row("information beyond the direct count at every locality.", "")
	return t.String(), nil
}
