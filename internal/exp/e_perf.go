package exp

import (
	"math/rand"
	"time"

	"evorec/internal/core"
	"evorec/internal/graphx"
	"evorec/internal/measures"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
	"evorec/internal/schema"
	"evorec/internal/synth"
)

// E9Scalability (Figure 5) measures the wall-clock cost of the analysis
// pipeline (context build + measure evaluation) as the knowledge base
// grows, supporting the paper's promise of overviews "without requiring a
// significant amount of work" — the pipeline must stay interactive at
// realistic sizes. Timings vary across machines; the shape (near-linear for
// counting, superlinear for betweenness-bearing stages) is the result.
func E9Scalability(p Params) (string, error) {
	t := newTable("E9 / Figure 5 — pipeline cost vs knowledge-base size")
	t.row("instances", "triples", "context_ms", "measures_ms", "ms_per_1k_triples")
	for i, mult := range []int{1, 2, 4, 8} {
		cfg := p.KB
		cfg.Instances = p.KB.Instances * mult
		vs, _, err := synth.GenerateVersions(cfg,
			synth.EvolveConfig{Ops: p.Ops, Locality: p.Locality}, 1, p.Seed+int64(i))
		if err != nil {
			return "", err
		}
		older, newer := vs.At(0), vs.At(1)
		start := time.Now()
		ctx := measures.NewContext(older, newer)
		ctxMs := time.Since(start).Seconds() * 1000
		start = time.Now()
		recommend.BuildItems(ctx, measures.NewRegistry())
		itemsMs := time.Since(start).Seconds() * 1000
		triples := older.Graph.Len() + newer.Graph.Len()
		t.rowf("%d\t%d\t%.1f\t%.1f\t%.2f",
			cfg.Instances, triples, ctxMs, itemsMs, (ctxMs+itemsMs)/(float64(triples)/1000))
	}
	t.row("")
	t.row("shape check: cost grows near-linearly in triples (class-graph size is")
	t.row("fixed, so the Brandes component stays constant across this sweep).")
	return t.String(), nil
}

// E10ProvenanceOverhead (Table 6) runs the full engine pipeline for every
// user and reports the provenance footprint: record counts, capture
// overhead, and lineage coverage — every recommendation must trace back to
// the version ingests that justify it (§III-b transparency).
func E10ProvenanceOverhead(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	olderID, newerID := ds.lastPairIDs()

	run := func(withRecommend bool) (time.Duration, *core.Engine, error) {
		e, err := BuildEngine(ds)
		if err != nil {
			return 0, nil, err
		}
		start := time.Now()
		if _, err := e.Items(olderID, newerID); err != nil {
			return 0, nil, err
		}
		if withRecommend {
			for _, u := range ds.Pool {
				if _, err := e.Recommend(u, core.Request{OlderID: olderID, NewerID: newerID, K: p.K}); err != nil {
					return 0, nil, err
				}
			}
		}
		return time.Since(start), e, nil
	}
	pipelineTime, eng, err := run(true)
	if err != nil {
		return "", err
	}

	// Lineage coverage: every recommendation artifact must trace to both
	// version ingests.
	covered := 0
	var lineageTotal int
	queryStart := time.Now()
	for _, u := range ds.Pool {
		artifact := "rec:" + u.ID + ":" + olderID + "->" + newerID + ":plain"
		lin := eng.Provenance().Lineage(artifact)
		lineageTotal += len(lin)
		ingests := 0
		for _, r := range lin {
			if r.Activity == "ingest_version" {
				ingests++
			}
		}
		if ingests >= 2 {
			covered++
		}
	}
	queryTime := time.Since(queryStart)

	t := newTable("E10 / Table 6 — provenance capture and transparency coverage")
	t.rowf("pipeline runs (users)\t%d", len(ds.Pool))
	t.rowf("provenance records\t%d", eng.Provenance().Len())
	t.rowf("pipeline time (ms)\t%.1f", pipelineTime.Seconds()*1000)
	t.rowf("lineage queries (ms total)\t%.2f", queryTime.Seconds()*1000)
	t.rowf("mean lineage length\t%.1f", float64(lineageTotal)/float64(len(ds.Pool)))
	t.rowf("recs tracing to both ingests\t%d/%d", covered, len(ds.Pool))
	t.row("")
	t.row("shape check: coverage is total — every recommendation answers the")
	t.row("who/when/how questions of §III-b from its lineage alone.")
	return t.String(), nil
}

// A1BetweennessSampling ablates exact Brandes against pivot sampling on the
// class graph: the sampled estimator must track the exact top-10 at a
// fraction of the cost on larger schemas.
func A1BetweennessSampling(p Params) (string, error) {
	cfg := p.KB
	cfg.Classes = p.KB.Classes * 2
	cfg.Instances = 0 // structural ablation: schema only
	g, _, err := synth.Generate(cfg, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return "", err
	}
	sg := graphx.FromAdjacency(schema.Extract(g).ClassGraph())

	start := time.Now()
	exact := sg.Betweenness()
	exactMs := time.Since(start).Seconds() * 1000
	exactRank := measures.Scores(exact).Rank()

	t := newTable("A1 — exact vs pivot-sampled betweenness (classes=" + itoa(cfg.Classes) + ")")
	t.row("pivots", "time_ms", "speedup", "top10_jaccard_vs_exact")
	t.rowf("exact (%d)\t%.2f\t1.0x\t1.00", sg.NumNodes(), exactMs)
	for _, frac := range []float64{0.5, 0.25, 0.1} {
		k := int(float64(sg.NumNodes()) * frac)
		if k < 1 {
			k = 1
		}
		rng := rand.New(rand.NewSource(p.Seed + 3))
		start = time.Now()
		sampled := sg.BetweennessSampled(k, rng)
		ms := time.Since(start).Seconds() * 1000
		jac := measures.TopKJaccard(exactRank, measures.Scores(sampled).Rank(), 10)
		speedup := exactMs / ms
		t.rowf("%d (%.0f%%)\t%.2f\t%.1fx\t%.2f", k, frac*100, ms, speedup, jac)
	}
	t.row("")
	t.row("shape check: accuracy degrades gracefully as pivots shrink while the")
	t.row("cost falls roughly linearly in the pivot count.")
	return t.String(), nil
}

// A2IndexVariants ablates the tri-index triple store against a single-index
// scan: bound-predicate and bound-object pattern queries that hit the POS
// and OSP indexes directly are compared with brute-force scans over the SPO
// index, the access paths the measure layer exercises constantly.
func A2IndexVariants(p Params) (string, error) {
	g, _, err := synth.Generate(p.KB, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return "", err
	}
	sch := schema.Extract(g)
	props := sch.PropertyTerms()
	classes := sch.ClassTerms()
	if len(props) == 0 || len(classes) == 0 {
		return "", nil
	}

	// Indexed: POS/OSP lookups. Scan: filter over all triples.
	countScan := func(match func(rdf.Triple) bool) int {
		n := 0
		g.ForEachMatch(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(tr rdf.Triple) bool {
			if match(tr) {
				n++
			}
			return true
		})
		return n
	}

	const rounds = 30
	t := newTable("A2 — tri-index lookups vs single-index scans (" + itoa(g.Len()) + " triples)")
	t.row("query", "indexed_ms", "scan_ms", "speedup")

	// Bound predicate (?, p, ?).
	start := time.Now()
	sum1 := 0
	for r := 0; r < rounds; r++ {
		sum1 += g.CountMatch(rdf.Term{}, props[r%len(props)], rdf.Term{})
	}
	idxMs := time.Since(start).Seconds() * 1000
	start = time.Now()
	sum2 := 0
	for r := 0; r < rounds; r++ {
		p := props[r%len(props)]
		sum2 += countScan(func(tr rdf.Triple) bool { return tr.P == p })
	}
	scanMs := time.Since(start).Seconds() * 1000
	if sum1 != sum2 {
		t.row("WARNING: indexed and scan counts disagree")
	}
	t.rowf("(?, p, ?)\t%.2f\t%.2f\t%.0fx", idxMs, scanMs, scanMs/idxMs)

	// Bound object (?, ?, o).
	start = time.Now()
	sum1 = 0
	for r := 0; r < rounds; r++ {
		sum1 += g.CountMatch(rdf.Term{}, rdf.Term{}, classes[r%len(classes)])
	}
	idxMs = time.Since(start).Seconds() * 1000
	start = time.Now()
	sum2 = 0
	for r := 0; r < rounds; r++ {
		c := classes[r%len(classes)]
		sum2 += countScan(func(tr rdf.Triple) bool { return tr.O == c })
	}
	scanMs = time.Since(start).Seconds() * 1000
	if sum1 != sum2 {
		t.row("WARNING: indexed and scan counts disagree")
	}
	t.rowf("(?, ?, o)\t%.2f\t%.2f\t%.0fx", idxMs, scanMs, scanMs/idxMs)
	t.row("")
	t.row("shape check: direct index lookups beat scans by orders of magnitude,")
	t.row("justifying the tri-index memory overhead for evolution analysis.")
	return t.String(), nil
}
