package exp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"evorec/internal/archive"
	"evorec/internal/measures"
	"evorec/internal/recommend"
	"evorec/internal/summary"
	"evorec/internal/synth"
	"evorec/internal/trend"
)

func TestBuildDatasetShape(t *testing.T) {
	ds, err := BuildDataset(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	p := TestScale()
	if ds.Versions.Len() != p.Steps+1 {
		t.Fatalf("versions = %d, want %d", ds.Versions.Len(), p.Steps+1)
	}
	if len(ds.Items) != measures.NewRegistry().Len() {
		t.Fatalf("items = %d", len(ds.Items))
	}
	if len(ds.Pool) != p.Users || len(ds.PoolFocus) != p.Users {
		t.Fatalf("pool = %d/%d", len(ds.Pool), len(ds.PoolFocus))
	}
	if ds.Ctx.Delta.IsEmpty() {
		t.Fatal("final pair must have changes")
	}
}

func TestBuildDatasetDeterministic(t *testing.T) {
	a, err := BuildDataset(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDataset(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range a.Items {
		if it.ID() != b.Items[i].ID() {
			t.Fatal("item order must be deterministic")
		}
		for tm, v := range it.Scores {
			if b.Items[i].Scores[tm] != v {
				t.Fatalf("scores differ for %s at %v", it.ID(), tm)
			}
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	p := TestScale()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(p)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced empty output", e.ID)
			}
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s output must carry its ID header:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunAllStreams(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, TestScale()); err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		if !strings.Contains(buf.String(), e.ID+" ") && !strings.Contains(buf.String(), e.ID+" —") {
			t.Fatalf("RunAll output missing %s", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E4"); !ok {
		t.Fatal("E4 must exist")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("unknown experiment must not resolve")
	}
}

// Shape assertion for E4: personalization beats both baselines under the
// experiment's own protocol.
func TestE4PersonalizationBeatsBaselines(t *testing.T) {
	p := TestScale()
	p.Users = 20
	ds, err := BuildDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(p.Seed + 7))
	var ndcgRel, ndcgRand, ndcgPop float64
	for _, u := range ds.Pool {
		gt := groundTruth(u, ds.Items)
		partial := partialProfile(u)
		ndcgRel += recommend.NDCGAtK(recommend.MeasureIDs(recommend.TopK(partial, ds.Items, len(ds.Items))), gt, p.K)
		ndcgRand += recommend.NDCGAtK(recommend.MeasureIDs(recommend.RandomTopK(ds.Items, len(ds.Items), rng)), gt, p.K)
		ndcgPop += recommend.NDCGAtK(recommend.MeasureIDs(recommend.PopularityTopK(ds.Items, len(ds.Items))), gt, p.K)
	}
	if ndcgRel <= ndcgRand || ndcgRel <= ndcgPop {
		t.Fatalf("personalized NDCG (%.3f) must beat random (%.3f) and popularity (%.3f)",
			ndcgRel, ndcgRand, ndcgPop)
	}
}

// Shape assertion for E5: λ=1 maximizes relatedness, λ=0 maximizes
// diversity, among the MMR rows.
func TestE5FrontierShape(t *testing.T) {
	p := TestScale()
	ds, err := BuildDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	meanRel := func(lambda float64) (rel, ild float64) {
		for _, u := range ds.Pool {
			sel := recommend.MMR(u, ds.Items, p.K, lambda)
			rel += recommend.MeanRelatedness(u, ds.Items, sel)
			ild += recommend.IntraListDiversity(ds.Items, sel)
		}
		n := float64(len(ds.Pool))
		return rel / n, ild / n
	}
	relHi, ildHi := meanRel(1)
	relLo, ildLo := meanRel(0)
	if relHi < relLo {
		t.Fatalf("λ=1 relatedness (%.3f) must be >= λ=0 (%.3f)", relHi, relLo)
	}
	if ildLo < ildHi {
		t.Fatalf("λ=0 diversity (%.3f) must be >= λ=1 (%.3f)", ildLo, ildHi)
	}
}

// Shape assertion for E7: α=1 min-satisfaction >= α=0 on antagonistic
// groups (averaged over sampled groups).
func TestE7AlphaRaisesMinSat(t *testing.T) {
	p := TestScale()
	ds, err := BuildDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	minSat := func(alpha float64) float64 {
		total := 0.0
		for r := int64(0); r < 5; r++ {
			rng := rand.New(rand.NewSource(p.Seed + 23 + r))
			g, err := synth.GenerateGroup(ds.Pool, 4, synth.AntagonisticGroup, rng)
			if err != nil {
				t.Fatal(err)
			}
			sel := recommend.FairGreedyTopK(g, ds.Items, p.K, alpha)
			total += recommend.MinSatisfaction(g, ds.Items, sel)
		}
		return total / 5
	}
	// The greedy is a heuristic: allow a small tolerance, but α=1 must not
	// be materially worse than α=0, and must keep the worst-off member served.
	hi, lo := minSat(1), minSat(0)
	if hi < lo-0.05 {
		t.Fatalf("α=1 min-sat (%.3f) must not be materially below α=0 (%.3f)", hi, lo)
	}
	if hi <= 0 {
		t.Fatal("α=1 must serve the worst-off member")
	}
}

// Shape assertion for E8: k-anonymity reduces the linkage risk below the
// unprotected baseline.
func TestE8RiskFallsWithProtection(t *testing.T) {
	p := TestScale()
	ds, err := BuildDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	base := recommend.ReidentificationRisk(ds.Pool, ds.Pool)
	anon, _, err := recommend.KAnonymize(ds.Pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	protected := recommend.ReidentificationRisk(ds.Pool, anon)
	if protected >= base {
		t.Fatalf("k-anonymity risk (%.3f) must be < baseline (%.3f)", protected, base)
	}
}

// Shape assertion for E2: the measures disagree (mean pairwise overlap
// below 1).
func TestE2MeasuresAreComplementary(t *testing.T) {
	p := TestScale()
	ds, err := BuildDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	items := classItems(ds.Items)
	classes := ds.Ctx.UnionClasses()
	var sum float64
	var n int
	ranks := make([]measures.Ranking, len(items))
	for i, it := range items {
		s := measures.Scores{}
		for _, c := range classes {
			s[c] = it.Scores[c]
		}
		ranks[i] = s.Rank()
	}
	for i := range ranks {
		for j := i + 1; j < len(ranks); j++ {
			sum += measures.TopKJaccard(ranks[i], ranks[j], 10)
			n++
		}
	}
	mean := sum / float64(n)
	if mean >= 0.999 {
		t.Fatalf("measures must disagree: mean pairwise top-10 Jaccard = %.3f", mean)
	}
}

// Shape assertion for A3: the delta chain must use fewer bytes than full
// snapshots on the same chain.
func TestA3DeltaChainSmaller(t *testing.T) {
	p := TestScale()
	ds, err := BuildDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	dirFull, dirDelta := t.TempDir(), t.TempDir()
	manFull, err := archive.Save(dirFull, ds.Versions, archive.Options{Policy: archive.FullSnapshots})
	if err != nil {
		t.Fatal(err)
	}
	manDelta, err := archive.Save(dirDelta, ds.Versions, archive.Options{Policy: archive.DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	sizeFull, err := archive.DiskUsage(dirFull, manFull)
	if err != nil {
		t.Fatal(err)
	}
	sizeDelta, err := archive.DiskUsage(dirDelta, manDelta)
	if err != nil {
		t.Fatal(err)
	}
	if sizeDelta >= sizeFull {
		t.Fatalf("delta chain (%d) must be smaller than snapshots (%d)", sizeDelta, sizeFull)
	}
}

// Shape assertion for the extended A3: on the same chain and policy, the
// binary codec must occupy fewer bytes than text, and its reload must be
// lossless with every graph sharing one dictionary.
func TestA3BinarySmallerThanText(t *testing.T) {
	p := TestScale()
	ds, err := BuildDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []archive.Policy{archive.FullSnapshots, archive.DeltaChain} {
		sizes := make(map[archive.Codec]int64)
		for _, codec := range []archive.Codec{archive.Text, archive.Binary} {
			dir := t.TempDir()
			man, err := archive.Save(dir, ds.Versions,
				archive.Options{Policy: pol, Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			size, err := archive.DiskUsage(dir, man)
			if err != nil {
				t.Fatal(err)
			}
			sizes[codec] = size
			back, err := archive.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if back.Len() != ds.Versions.Len() {
				t.Fatalf("%s/%s: reloaded %d versions, want %d",
					pol, codec, back.Len(), ds.Versions.Len())
			}
			for i := 0; i < back.Len(); i++ {
				if back.At(i).Graph.Len() != ds.Versions.At(i).Graph.Len() {
					t.Fatalf("%s/%s: version %d has %d triples, want %d", pol, codec,
						i, back.At(i).Graph.Len(), ds.Versions.At(i).Graph.Len())
				}
				if back.At(i).Graph.Dict() != back.At(0).Graph.Dict() {
					t.Fatalf("%s/%s: reloaded chain does not share one dictionary", pol, codec)
				}
			}
		}
		if sizes[archive.Binary] >= sizes[archive.Text] {
			t.Fatalf("%s: binary (%d bytes) must be smaller than text (%d bytes)",
				pol, sizes[archive.Binary], sizes[archive.Text])
		}
	}
}

// Shape assertion for A4: instance coverage is monotone in summary size.
func TestA4CoverageMonotone(t *testing.T) {
	p := TestScale()
	vs, _, err := synth.GenerateVersions(p.KB, synth.EvolveConfig{Ops: 0}, 0, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, k := range []int{2, 6, 12} {
		s, err := summary.Summarize(vs.At(0).Graph, k)
		if err != nil {
			t.Fatal(err)
		}
		if s.InstanceCoverage < prev-1e-9 {
			t.Fatalf("coverage fell: %g after %g", s.InstanceCoverage, prev)
		}
		prev = s.InstanceCoverage
	}
}

// Shape assertion for E11: the trend census covers every tracked entity and
// a localized evolution leaves some entities quiet.
func TestE11TrendCensus(t *testing.T) {
	p := TestScale()
	ds, err := BuildDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := trend.Analyze(ds.Versions, measures.ChangeCount{})
	if err != nil {
		t.Fatal(err)
	}
	counts := a.ShapeCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != a.Len() {
		t.Fatalf("census %d != tracked %d", total, a.Len())
	}
	if a.Len() == 0 {
		t.Fatal("nothing tracked")
	}
}

// E12's assertions live inside the experiment (zero notifications outside
// the planted change region, affected ⊆ hot subscribers); the test checks
// it passes at test scale and reports a strict pool minority as scored.
func TestE12FeedLocality(t *testing.T) {
	out, err := E12FeedLocality(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"affected", "untouched-region notifications", "0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E12 table missing %q:\n%s", want, out)
		}
	}
}
