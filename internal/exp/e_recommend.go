package exp

import (
	"math/rand"
	"sort"
	"strconv"

	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/recommend"
)

func itoa(i int) string { return strconv.Itoa(i) }

// partialProfile returns a degraded copy of the profile keeping every other
// interest (by sorted term order). E4 recommends from the partial profile
// and scores against ground truth derived from the full one — the standard
// hold-out protocol adapted to interest vectors.
func partialProfile(p *profile.Profile) *profile.Profile {
	terms := make([]rdf.Term, 0, len(p.Interests))
	for t := range p.Interests {
		terms = append(terms, t)
	}
	rdf.SortTerms(terms)
	out := profile.New(p.ID + "-partial")
	for i, t := range terms {
		if i%2 == 0 {
			out.SetInterest(t, p.InterestIn(t))
		}
	}
	return out
}

// groundTruth computes the graded relevance of every item for a user: the
// relatedness under the user's full profile.
func groundTruth(u *profile.Profile, items []recommend.Item) map[string]float64 {
	out := make(map[string]float64, len(items))
	for _, it := range items {
		out[it.ID()] = recommend.Relatedness(u, it)
	}
	return out
}

// relevantSet extracts the top-k ground-truth measures as the binary
// relevance set for precision/recall, with deterministic ID tie-breaks.
func relevantSet(gt map[string]float64, k int) map[string]bool {
	type pair struct {
		id string
		v  float64
	}
	ps := make([]pair, 0, len(gt))
	for id, v := range gt {
		ps = append(ps, pair{id, v})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].v != ps[j].v {
			return ps[i].v > ps[j].v
		}
		return ps[i].id < ps[j].id
	})
	s := make(map[string]bool, k)
	for i := 0; i < k && i < len(ps); i++ {
		s[ps[i].id] = true
	}
	return s
}

// E4RelatednessQuality (Table 3) evaluates the §III-a relatedness
// recommender against the random and popularity baselines: each user's full
// profile defines ground truth, the recommender only sees a partial profile.
// Personalized relatedness must dominate both baselines on NDCG@k and P@k.
func E4RelatednessQuality(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(p.Seed + 7))
	var ndcgRel, ndcgRand, ndcgPop float64
	var pRel, pRand, pPop float64
	for _, u := range ds.Pool {
		gt := groundTruth(u, ds.Items)
		relSet := relevantSet(gt, p.K)
		partial := partialProfile(u)

		personalized := recommend.MeasureIDs(recommend.TopK(partial, ds.Items, len(ds.Items)))
		random := recommend.MeasureIDs(recommend.RandomTopK(ds.Items, len(ds.Items), rng))
		popular := recommend.MeasureIDs(recommend.PopularityTopK(ds.Items, len(ds.Items)))

		ndcgRel += recommend.NDCGAtK(personalized, gt, p.K)
		ndcgRand += recommend.NDCGAtK(random, gt, p.K)
		ndcgPop += recommend.NDCGAtK(popular, gt, p.K)
		pRel += recommend.PrecisionAtK(personalized, relSet, p.K)
		pRand += recommend.PrecisionAtK(random, relSet, p.K)
		pPop += recommend.PrecisionAtK(popular, relSet, p.K)
	}
	n := float64(len(ds.Pool))
	t := newTable("E4 / Table 3 — relatedness recommendation quality (partial-profile protocol)")
	t.row("recommender", "NDCG@"+itoa(p.K), "P@"+itoa(p.K))
	t.rowf("relatedness (ours)\t%.3f\t%.3f", ndcgRel/n, pRel/n)
	t.rowf("popularity baseline\t%.3f\t%.3f", ndcgPop/n, pPop/n)
	t.rowf("random baseline\t%.3f\t%.3f", ndcgRand/n, pRand/n)
	t.row("")
	t.rowf("users=%d items=%d", len(ds.Pool), len(ds.Items))
	t.row("shape check: personalization beats both user-independent baselines.")
	return t.String(), nil
}

// E5DiversityTradeoff (Figure 3) sweeps the MMR λ and reports the
// relevance/diversity frontier, alongside the Max-Min and semantic
// diversifiers — the §III-c content/novelty/semantic diversity study.
func E5DiversityTradeoff(p Params) (string, error) {
	ds, err := BuildDataset(p)
	if err != nil {
		return "", err
	}
	t := newTable("E5 / Figure 3 — diversity vs relevance trade-off (k=" + itoa(p.K) + ")")
	t.row("selector", "mean_relatedness", "intra_list_diversity", "category_coverage")
	evalSel := func(name string, pick func(u *profile.Profile) []recommend.Recommendation) {
		var rel, ild, cov float64
		for _, u := range ds.Pool {
			sel := pick(u)
			rel += recommend.MeanRelatedness(u, ds.Items, sel)
			ild += recommend.IntraListDiversity(ds.Items, sel)
			cov += recommend.CategoryCoverage(ds.Items, sel)
		}
		n := float64(len(ds.Pool))
		t.rowf("%s\t%.3f\t%.3f\t%.3f", name, rel/n, ild/n, cov/n)
	}
	for _, lambda := range []float64{1.0, 0.75, 0.5, 0.25, 0.0} {
		l := lambda
		evalSel("mmr λ="+fmtF(l), func(u *profile.Profile) []recommend.Recommendation {
			return recommend.MMR(u, ds.Items, p.K, l)
		})
	}
	evalSel("maxmin", func(u *profile.Profile) []recommend.Recommendation {
		return recommend.MaxMin(u, ds.Items, p.K)
	})
	evalSel("semantic", func(u *profile.Profile) []recommend.Recommendation {
		return recommend.SemanticTopK(u, ds.Items, p.K)
	})
	t.row("")
	t.row("shape check: relatedness falls and diversity rises as λ decreases;")
	t.row("the semantic selector maximizes category coverage by construction.")
	return t.String(), nil
}
