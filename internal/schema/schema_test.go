package schema

import (
	"testing"

	"evorec/internal/rdf"
)

// fixture builds a small university-flavored KB:
//
//	Agent
//	 ├── Person ── worksFor ──▶ Organization
//	 │     └── Student
//	 └── Organization
//	          └── University
//
// with a few instances.
func fixture() *rdf.Graph {
	g := rdf.NewGraph()
	agent := rdf.SchemaIRI("Agent")
	person := rdf.SchemaIRI("Person")
	student := rdf.SchemaIRI("Student")
	org := rdf.SchemaIRI("Organization")
	univ := rdf.SchemaIRI("University")
	worksFor := rdf.SchemaIRI("worksFor")
	name := rdf.SchemaIRI("name")

	for _, c := range []rdf.Term{agent, person, student, org, univ} {
		g.Add(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
	}
	g.Add(rdf.T(person, rdf.RDFSSubClassOf, agent))
	g.Add(rdf.T(student, rdf.RDFSSubClassOf, person))
	g.Add(rdf.T(org, rdf.RDFSSubClassOf, agent))
	g.Add(rdf.T(univ, rdf.RDFSSubClassOf, org))

	g.Add(rdf.T(worksFor, rdf.RDFType, rdf.RDFProperty))
	g.Add(rdf.T(worksFor, rdf.RDFSDomain, person))
	g.Add(rdf.T(worksFor, rdf.RDFSRange, org))
	g.Add(rdf.T(name, rdf.RDFSDomain, agent))

	alice := rdf.ResourceIRI("alice")
	bob := rdf.ResourceIRI("bob")
	forth := rdf.ResourceIRI("forth")
	g.Add(rdf.T(alice, rdf.RDFType, person))
	g.Add(rdf.T(bob, rdf.RDFType, student))
	g.Add(rdf.T(bob, rdf.RDFType, person))
	g.Add(rdf.T(forth, rdf.RDFType, univ))
	g.Add(rdf.T(alice, worksFor, forth))
	g.Add(rdf.T(bob, worksFor, forth))
	g.Add(rdf.T(alice, name, rdf.NewLiteral("Alice")))
	return g
}

func TestExtractClassesAndProperties(t *testing.T) {
	s := Extract(fixture())
	if s.NumClasses() != 5 {
		t.Fatalf("NumClasses = %d, want 5 (%v)", s.NumClasses(), s.ClassTerms())
	}
	if s.NumProperties() != 2 {
		t.Fatalf("NumProperties = %d, want 2 (%v)", s.NumProperties(), s.PropertyTerms())
	}
	if !s.IsClass(rdf.SchemaIRI("Person")) || s.IsClass(rdf.SchemaIRI("worksFor")) {
		t.Fatal("class/property classification wrong")
	}
	if !s.IsProperty(rdf.SchemaIRI("name")) {
		t.Fatal("name must be a property (declared via domain)")
	}
}

func TestExtractHierarchy(t *testing.T) {
	s := Extract(fixture())
	person, _ := s.Class(rdf.SchemaIRI("Person"))
	if len(person.Supers) != 1 || person.Supers[0] != rdf.SchemaIRI("Agent") {
		t.Fatalf("Person.Supers = %v", person.Supers)
	}
	if len(person.Subs) != 1 || person.Subs[0] != rdf.SchemaIRI("Student") {
		t.Fatalf("Person.Subs = %v", person.Subs)
	}
}

func TestExtractCounts(t *testing.T) {
	s := Extract(fixture())
	person, _ := s.Class(rdf.SchemaIRI("Person"))
	if person.InstanceCount != 2 { // alice + bob
		t.Fatalf("Person.InstanceCount = %d, want 2", person.InstanceCount)
	}
	univ, _ := s.Class(rdf.SchemaIRI("University"))
	if univ.InstanceCount != 1 {
		t.Fatalf("University.InstanceCount = %d, want 1", univ.InstanceCount)
	}
	wf, _ := s.Property(rdf.SchemaIRI("worksFor"))
	if wf.UsageCount != 2 {
		t.Fatalf("worksFor.UsageCount = %d, want 2", wf.UsageCount)
	}
	if len(wf.Domains) != 1 || wf.Domains[0] != rdf.SchemaIRI("Person") {
		t.Fatalf("worksFor.Domains = %v", wf.Domains)
	}
	if len(wf.Ranges) != 1 || wf.Ranges[0] != rdf.SchemaIRI("Organization") {
		t.Fatalf("worksFor.Ranges = %v", wf.Ranges)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	s := Extract(fixture())
	anc := s.Ancestors(rdf.SchemaIRI("Student"))
	if len(anc) != 2 { // Person, Agent
		t.Fatalf("Ancestors(Student) = %v, want 2", anc)
	}
	desc := s.Descendants(rdf.SchemaIRI("Agent"))
	if len(desc) != 4 {
		t.Fatalf("Descendants(Agent) = %v, want 4", desc)
	}
	if got := s.Ancestors(rdf.SchemaIRI("Agent")); len(got) != 0 {
		t.Fatalf("Ancestors(Agent) = %v, want none", got)
	}
}

func TestHierarchyCycleTolerated(t *testing.T) {
	g := rdf.NewGraph()
	a, b := rdf.SchemaIRI("A"), rdf.SchemaIRI("B")
	g.Add(rdf.T(a, rdf.RDFSSubClassOf, b))
	g.Add(rdf.T(b, rdf.RDFSSubClassOf, a))
	s := Extract(g)
	anc := s.Ancestors(a)
	if len(anc) != 1 || anc[0] != b {
		t.Fatalf("Ancestors(A) with cycle = %v, want [B]", anc)
	}
}

func TestNeighbors(t *testing.T) {
	s := Extract(fixture())
	// Person: Agent (super), Student (sub), Organization (range of worksFor,
	// whose domain is Person).
	ns := s.Neighbors(rdf.SchemaIRI("Person"))
	want := map[rdf.Term]bool{
		rdf.SchemaIRI("Agent"):        true,
		rdf.SchemaIRI("Student"):      true,
		rdf.SchemaIRI("Organization"): true,
	}
	if len(ns) != len(want) {
		t.Fatalf("Neighbors(Person) = %v, want %d terms", ns, len(want))
	}
	for _, n := range ns {
		if !want[n] {
			t.Errorf("unexpected neighbor %v", n)
		}
	}
	// Organization sees Person through the property in the range direction.
	norg := s.Neighbors(rdf.SchemaIRI("Organization"))
	found := false
	for _, n := range norg {
		if n == rdf.SchemaIRI("Person") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Neighbors(Organization) = %v, must include Person", norg)
	}
}

func TestNeighborsExcludesSelf(t *testing.T) {
	g := rdf.NewGraph()
	c := rdf.SchemaIRI("C")
	p := rdf.SchemaIRI("p")
	g.Add(rdf.T(p, rdf.RDFSDomain, c))
	g.Add(rdf.T(p, rdf.RDFSRange, c)) // self-loop property
	s := Extract(g)
	if ns := s.Neighbors(c); len(ns) != 0 {
		t.Fatalf("Neighbors(self-loop) = %v, want empty", ns)
	}
}

func TestClassGraph(t *testing.T) {
	s := Extract(fixture())
	adj := s.ClassGraph()
	if len(adj) != 5 {
		t.Fatalf("ClassGraph has %d nodes, want 5", len(adj))
	}
	// Person adjacent to: Agent (sub), Student (sub), Organization (property).
	ns := adj[rdf.SchemaIRI("Person")]
	if len(ns) != 3 {
		t.Fatalf("Person adjacency = %v, want 3", ns)
	}
	// Undirected: every edge must appear in both directions.
	for a, list := range adj {
		for _, b := range list {
			ok := false
			for _, back := range adj[b] {
				if back == a {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("edge %v-%v not symmetric", a, b)
			}
		}
	}
}

func TestTypesOfInstancesOf(t *testing.T) {
	s := Extract(fixture())
	types := s.TypesOf(rdf.ResourceIRI("bob"))
	if len(types) != 2 {
		t.Fatalf("TypesOf(bob) = %v, want 2", types)
	}
	inst := s.InstancesOf(rdf.SchemaIRI("Person"))
	if len(inst) != 2 {
		t.Fatalf("InstancesOf(Person) = %v, want 2", inst)
	}
}

func TestReservedPredicatesNotProperties(t *testing.T) {
	s := Extract(fixture())
	for _, p := range s.PropertyTerms() {
		if p == rdf.RDFType || p == rdf.RDFSSubClassOf || p == rdf.RDFSDomain {
			t.Fatalf("reserved predicate %v extracted as property", p)
		}
	}
}

func TestExtractEmptyGraph(t *testing.T) {
	s := Extract(rdf.NewGraph())
	if s.NumClasses() != 0 || s.NumProperties() != 0 {
		t.Fatal("empty graph must yield empty schema")
	}
	if ns := s.Neighbors(rdf.SchemaIRI("X")); len(ns) != 0 {
		t.Fatal("Neighbors on unknown class must be empty")
	}
	if adj := s.ClassGraph(); len(adj) != 0 {
		t.Fatal("ClassGraph on empty schema must be empty")
	}
}

func TestLiteralRangeIgnoredInClassGraph(t *testing.T) {
	// A property whose range is a literal-typed object should not create a
	// class for the literal (non-IRI objects are skipped).
	g := rdf.NewGraph()
	p := rdf.SchemaIRI("age")
	g.Add(rdf.T(p, rdf.RDFSRange, rdf.NewLiteral("notAClass")))
	s := Extract(g)
	if s.NumClasses() != 0 {
		t.Fatalf("literal range must not create classes, got %v", s.ClassTerms())
	}
}
