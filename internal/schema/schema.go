// Package schema extracts the schema-level view of an RDF graph: the set of
// classes, the set of properties, the subsumption hierarchy, property
// domains/ranges, and instance statistics.
//
// All evolution measures in the paper are defined over classes and
// properties, so this package is the lens through which the measure layer
// sees a version. Extraction is a single pass plus index lookups and the
// result is immutable; the core engine caches one Schema per version.
package schema

import (
	"strings"

	"evorec/internal/rdf"
)

// Class describes one class of the knowledge base in one version.
type Class struct {
	// Term is the class IRI.
	Term rdf.Term
	// Supers lists the direct superclasses (rdfs:subClassOf objects).
	Supers []rdf.Term
	// Subs lists the direct subclasses.
	Subs []rdf.Term
	// InstanceCount is the number of rdf:type triples targeting the class.
	InstanceCount int
}

// Property describes one property of the knowledge base in one version.
type Property struct {
	// Term is the property IRI.
	Term rdf.Term
	// Domains lists declared rdfs:domain classes.
	Domains []rdf.Term
	// Ranges lists declared rdfs:range classes.
	Ranges []rdf.Term
	// Supers lists direct super-properties.
	Supers []rdf.Term
	// UsageCount is the number of instance triples using the property as
	// predicate.
	UsageCount int
}

// Schema is the extracted schema view of one graph version.
type Schema struct {
	classes    map[rdf.Term]*Class
	properties map[rdf.Term]*Property
	graph      *rdf.Graph
}

// reservedNamespaces are vocabulary namespaces whose predicates are never
// treated as data properties.
var reservedNamespaces = []string{rdf.NSRDF, rdf.NSRDFS, rdf.NSOWL}

func isReserved(iri string) bool {
	for _, ns := range reservedNamespaces {
		if strings.HasPrefix(iri, ns) {
			return true
		}
	}
	return false
}

// metaClasses are terms that may appear as rdf:type objects without being
// data-level classes themselves.
var metaClasses = map[rdf.Term]struct{}{
	rdf.RDFSClass:   {},
	rdf.OWLClass:    {},
	rdf.RDFProperty: {},
}

// Extract builds the schema view of g. A term is recognized as a class if it
// is typed rdfs:Class/owl:Class, participates in rdfs:subClassOf, is a
// declared domain or range, or is the object of any rdf:type statement. A
// term is recognized as a property if it is typed rdf:Property, has a
// declared domain/range/super-property, or is used as a predicate outside
// the reserved vocabulary namespaces.
func Extract(g *rdf.Graph) *Schema {
	s := &Schema{
		classes:    make(map[rdf.Term]*Class),
		properties: make(map[rdf.Term]*Property),
		graph:      g,
	}

	// Classes by explicit typing.
	for _, meta := range []rdf.Term{rdf.RDFSClass, rdf.OWLClass} {
		for _, c := range g.Subjects(rdf.RDFType, meta) {
			s.class(c)
		}
	}
	// Classes and hierarchy from subsumption.
	g.ForEachMatch(rdf.Term{}, rdf.RDFSSubClassOf, rdf.Term{}, func(t rdf.Triple) bool {
		if t.S.IsIRI() && t.O.IsIRI() {
			sub, sup := s.class(t.S), s.class(t.O)
			sub.Supers = append(sub.Supers, t.O)
			sup.Subs = append(sup.Subs, t.S)
		}
		return true
	})
	// Classes from rdf:type objects; instance counts.
	g.ForEachMatch(rdf.Term{}, rdf.RDFType, rdf.Term{}, func(t rdf.Triple) bool {
		if !t.O.IsIRI() {
			return true
		}
		if _, meta := metaClasses[t.O]; meta {
			return true
		}
		s.class(t.O).InstanceCount++
		return true
	})
	// Properties from declarations.
	for _, p := range g.Subjects(rdf.RDFType, rdf.RDFProperty) {
		s.property(p)
	}
	g.ForEachMatch(rdf.Term{}, rdf.RDFSDomain, rdf.Term{}, func(t rdf.Triple) bool {
		if t.S.IsIRI() && t.O.IsIRI() {
			s.property(t.S).Domains = append(s.property(t.S).Domains, t.O)
			s.class(t.O)
		}
		return true
	})
	g.ForEachMatch(rdf.Term{}, rdf.RDFSRange, rdf.Term{}, func(t rdf.Triple) bool {
		if t.S.IsIRI() && t.O.IsIRI() {
			s.property(t.S).Ranges = append(s.property(t.S).Ranges, t.O)
			s.class(t.O)
		}
		return true
	})
	g.ForEachMatch(rdf.Term{}, rdf.RDFSSubPropertyOf, rdf.Term{}, func(t rdf.Triple) bool {
		if t.S.IsIRI() && t.O.IsIRI() {
			s.property(t.S).Supers = append(s.property(t.S).Supers, t.O)
			s.property(t.O)
		}
		return true
	})
	// Properties from use; usage counts.
	for _, p := range g.Predicates() {
		if !p.IsIRI() || isReserved(p.Value) {
			continue
		}
		s.property(p).UsageCount = g.CountMatch(rdf.Term{}, p, rdf.Term{})
	}

	// Deduplicate adjacency slices for deterministic downstream use.
	for _, c := range s.classes {
		c.Supers = dedupSorted(c.Supers)
		c.Subs = dedupSorted(c.Subs)
	}
	for _, p := range s.properties {
		p.Domains = dedupSorted(p.Domains)
		p.Ranges = dedupSorted(p.Ranges)
		p.Supers = dedupSorted(p.Supers)
	}
	return s
}

func (s *Schema) class(t rdf.Term) *Class {
	c, ok := s.classes[t]
	if !ok {
		c = &Class{Term: t}
		s.classes[t] = c
	}
	return c
}

func (s *Schema) property(t rdf.Term) *Property {
	p, ok := s.properties[t]
	if !ok {
		p = &Property{Term: t}
		s.properties[t] = p
	}
	return p
}

func dedupSorted(ts []rdf.Term) []rdf.Term {
	if len(ts) <= 1 {
		return ts
	}
	rdf.SortTerms(ts)
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Graph returns the underlying graph the schema was extracted from.
func (s *Schema) Graph() *rdf.Graph { return s.graph }

// Class returns the class record for t, if t is a known class.
func (s *Schema) Class(t rdf.Term) (*Class, bool) {
	c, ok := s.classes[t]
	return c, ok
}

// Property returns the property record for t, if t is a known property.
func (s *Schema) Property(t rdf.Term) (*Property, bool) {
	p, ok := s.properties[t]
	return p, ok
}

// IsClass reports whether t is a known class.
func (s *Schema) IsClass(t rdf.Term) bool { _, ok := s.classes[t]; return ok }

// IsProperty reports whether t is a known property.
func (s *Schema) IsProperty(t rdf.Term) bool { _, ok := s.properties[t]; return ok }

// NumClasses returns the number of known classes.
func (s *Schema) NumClasses() int { return len(s.classes) }

// NumProperties returns the number of known properties.
func (s *Schema) NumProperties() int { return len(s.properties) }

// ClassTerms returns all class terms in sorted order.
func (s *Schema) ClassTerms() []rdf.Term {
	out := make([]rdf.Term, 0, len(s.classes))
	for t := range s.classes {
		out = append(out, t)
	}
	rdf.SortTerms(out)
	return out
}

// PropertyTerms returns all property terms in sorted order.
func (s *Schema) PropertyTerms() []rdf.Term {
	out := make([]rdf.Term, 0, len(s.properties))
	for t := range s.properties {
		out = append(out, t)
	}
	rdf.SortTerms(out)
	return out
}

// Ancestors returns the transitive superclasses of c (excluding c), in
// sorted order. Cycles in the hierarchy are tolerated.
func (s *Schema) Ancestors(c rdf.Term) []rdf.Term {
	return s.closure(c, func(x *Class) []rdf.Term { return x.Supers })
}

// Descendants returns the transitive subclasses of c (excluding c), in
// sorted order.
func (s *Schema) Descendants(c rdf.Term) []rdf.Term {
	return s.closure(c, func(x *Class) []rdf.Term { return x.Subs })
}

func (s *Schema) closure(start rdf.Term, next func(*Class) []rdf.Term) []rdf.Term {
	seen := map[rdf.Term]struct{}{start: {}}
	stack := []rdf.Term{start}
	var out []rdf.Term
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c, ok := s.classes[t]
		if !ok {
			continue
		}
		for _, n := range next(c) {
			if _, dup := seen[n]; dup {
				continue
			}
			seen[n] = struct{}{}
			out = append(out, n)
			stack = append(stack, n)
		}
	}
	rdf.SortTerms(out)
	return out
}

// Neighbors returns the class neighborhood of c as defined by the paper
// (§II-b): classes related to c by a direct subsumption relationship, or
// connected to c through a property (the property's domain on one side and
// range on the other). The result excludes c itself and is sorted.
func (s *Schema) Neighbors(c rdf.Term) []rdf.Term {
	set := make(map[rdf.Term]struct{})
	if cl, ok := s.classes[c]; ok {
		for _, t := range cl.Supers {
			set[t] = struct{}{}
		}
		for _, t := range cl.Subs {
			set[t] = struct{}{}
		}
	}
	for _, p := range s.properties {
		connectsDomain := containsTerm(p.Domains, c)
		connectsRange := containsTerm(p.Ranges, c)
		if connectsDomain {
			for _, t := range p.Ranges {
				set[t] = struct{}{}
			}
		}
		if connectsRange {
			for _, t := range p.Domains {
				set[t] = struct{}{}
			}
		}
	}
	delete(set, c)
	out := make([]rdf.Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	rdf.SortTerms(out)
	return out
}

func containsTerm(ts []rdf.Term, x rdf.Term) bool {
	for _, t := range ts {
		if t == x {
			return true
		}
	}
	return false
}

// ClassGraph returns the undirected class-level graph used by the structural
// measures: one node per class, an edge for every direct subsumption pair
// and for every (domain, range) pair of every property. The adjacency lists
// are sorted and deduplicated.
func (s *Schema) ClassGraph() map[rdf.Term][]rdf.Term {
	adj := make(map[rdf.Term][]rdf.Term, len(s.classes))
	addEdge := func(a, b rdf.Term) {
		if a == b {
			return
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for t := range s.classes {
		if _, ok := adj[t]; !ok {
			adj[t] = nil
		}
	}
	for _, c := range s.classes {
		for _, sup := range c.Supers {
			addEdge(c.Term, sup)
		}
	}
	for _, p := range s.properties {
		for _, d := range p.Domains {
			for _, r := range p.Ranges {
				addEdge(d, r)
			}
		}
	}
	for t, ns := range adj {
		adj[t] = dedupSorted(ns)
	}
	return adj
}

// ClassGraphIDs is ClassGraph in dictionary-encoded form: the same nodes and
// edges, keyed by the graph's TermIDs instead of Terms. It feeds
// graphx.FromAdjacencyIDs so that structural-graph construction never hashes
// a term string. The returned Dict is the underlying graph's dictionary.
// Adjacency lists are deduplicated but not sorted; FromAdjacencyIDs imposes
// the deterministic order.
func (s *Schema) ClassGraphIDs() (*rdf.Dict, map[rdf.TermID][]rdf.TermID) {
	dict := s.graph.Dict()
	// Every schema term was extracted from the graph's own triples, so it is
	// already interned; Lookup keeps this accessor strictly read-only, which
	// the dictionary's concurrency model ("read methods never intern")
	// depends on. A miss would mean a term from outside the graph — not
	// producible today — and is skipped rather than interned.
	adj := make(map[rdf.TermID][]rdf.TermID, len(s.classes))
	addEdge := func(a, b rdf.TermID) {
		if a == b {
			return
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for t := range s.classes {
		id, ok := dict.Lookup(t)
		if !ok {
			continue
		}
		if _, ok := adj[id]; !ok {
			adj[id] = nil
		}
	}
	for _, c := range s.classes {
		cid, ok := dict.Lookup(c.Term)
		if !ok {
			continue
		}
		for _, sup := range c.Supers {
			if sid, ok := dict.Lookup(sup); ok {
				addEdge(cid, sid)
			}
		}
	}
	for _, p := range s.properties {
		for _, d := range p.Domains {
			did, ok := dict.Lookup(d)
			if !ok {
				continue
			}
			for _, r := range p.Ranges {
				if rid, ok := dict.Lookup(r); ok {
					addEdge(did, rid)
				}
			}
		}
	}
	for id, ns := range adj {
		adj[id] = dedupIDs(ns)
	}
	return dict, adj
}

// dedupIDs removes duplicate IDs in place (order is not preserved).
func dedupIDs(ids []rdf.TermID) []rdf.TermID {
	if len(ids) < 2 {
		return ids
	}
	seen := make(map[rdf.TermID]struct{}, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// TypesOf returns the classes instance x is typed with, sorted.
func (s *Schema) TypesOf(x rdf.Term) []rdf.Term {
	var out []rdf.Term
	for _, o := range s.graph.Objects(x, rdf.RDFType) {
		if s.IsClass(o) {
			out = append(out, o)
		}
	}
	rdf.SortTerms(out)
	return out
}

// InstancesOf returns the direct instances of class c, sorted.
func (s *Schema) InstancesOf(c rdf.Term) []rdf.Term {
	out := s.graph.Subjects(rdf.RDFType, c)
	rdf.SortTerms(out)
	return out
}
