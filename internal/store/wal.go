package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"time"

	"evorec/internal/rdf"
	"evorec/internal/store/vfs"
)

// The write-ahead log makes a commit durable after ONE sequential fsynced
// append, before any segment or manifest write happens. Each record carries
// everything needed to redo the commit from the last durable manifest:
//
//	wal.log = record*
//	record  = magic "EVS1", kind 6, length uint32, payload, crc32  (the
//	          segment envelope, framed per record instead of per file)
//	payload =
//	  seq      uvarint  strictly increasing within the file
//	  parent   string   version ID of the chain tail this commit applies over
//	  id       string   the committed version ID
//	  segKind  byte     kindSnapshot or kindDelta
//	  dictBase uvarint  dictionary term count before this commit
//	  tailN    uvarint  newly interned terms, in the dict segment's entry
//	  tail*             format — replay re-interns them to rebuild the exact
//	                    ID assignment past the durable dict segment
//	  payLen   uvarint  the version's segment payload (snapshot or delta
//	  payload           bytes), verbatim — replay writes it as the segment
//
// Recovery scans the file record by record; the first frame that fails its
// magic, bounds or CRC check ends the readable prefix (a torn tail is the
// expected shape of a crash mid-append, never an error). Records whose
// version ID the manifest already lists are skipped — they were applied and
// checkpointed-by-manifest before the crash — and a record whose parent is
// not the current chain tail ends replay (it belongs to a commit sequence
// the durable state never reached; applying it would fork the chain).
//
// The WAL is truncated by checkpoint: once every applied segment, the
// dictionary and the manifest are fsynced (and the directory synced so the
// renames hold), the records are redundant and the file is reset, bounding
// replay time by the data written since the last checkpoint.
const (
	walFileName      = "wal.log"
	kindWAL     byte = 6
)

// DefaultWALCheckpointBytes is the WAL size past which Append checkpoints
// inline. Service layers with a background checkpointer (group commit) can
// checkpoint earlier; this bound holds for bare store users too.
const DefaultWALCheckpointBytes = 4 << 20

// walRecord is one decoded WAL commit record.
type walRecord struct {
	seq      uint64
	parent   string
	id       string
	segKind  byte
	dictBase int
	dictTail []rdf.Term
	payload  []byte
}

// appendWALRecord frames one commit record onto buf.
func appendWALRecord(buf []byte, rec *walRecord) ([]byte, error) {
	p := make([]byte, 0, 64+len(rec.payload))
	p = binary.AppendUvarint(p, rec.seq)
	p = appendString(p, rec.parent)
	p = appendString(p, rec.id)
	p = append(p, rec.segKind)
	p = binary.AppendUvarint(p, uint64(rec.dictBase))
	p = binary.AppendUvarint(p, uint64(len(rec.dictTail)))
	for _, t := range rec.dictTail {
		p = appendDictEntry(p, t)
	}
	p = binary.AppendUvarint(p, uint64(len(rec.payload)))
	p = append(p, rec.payload...)
	if uint64(len(p)) > maxSegmentPayload {
		return nil, fmt.Errorf("store: WAL record for %q exceeds the 4 GiB frame limit", rec.id)
	}
	return appendFramed(buf, kindWAL, p), nil
}

const maxSegmentPayload = 1<<32 - 1

// decodeWALRecord parses one record payload.
func decodeWALRecord(payload []byte) (*walRecord, error) {
	r := &byteReader{file: walFileName, b: payload}
	rec := &walRecord{}
	var err error
	if rec.seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if rec.parent, err = r.stringField("parent"); err != nil {
		return nil, err
	}
	if rec.id, err = r.stringField("id"); err != nil {
		return nil, err
	}
	if rec.segKind, err = r.byte(); err != nil {
		return nil, err
	}
	if rec.segKind != kindSnapshot && rec.segKind != kindDelta {
		return nil, r.errf("record %q: segment kind %d", rec.id, rec.segKind)
	}
	base, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	rec.dictBase = int(base)
	tailN, err := r.count("dict tail")
	if err != nil {
		return nil, err
	}
	rec.dictTail = make([]rdf.Term, 0, tailN)
	for i := 0; i < tailN; i++ {
		t, err := r.decodeDictEntry(rec.dictBase + i)
		if err != nil {
			return nil, err
		}
		rec.dictTail = append(rec.dictTail, t)
	}
	payLen, err := r.count("payload")
	if err != nil {
		return nil, err
	}
	rec.payload = append([]byte(nil), r.b[r.off:r.off+payLen]...)
	r.off += payLen
	if r.remaining() != 0 {
		return nil, r.errf("record %q: %d trailing bytes", rec.id, r.remaining())
	}
	return rec, nil
}

// scanWAL walks raw WAL bytes and returns every readable record plus the
// offset where the readable prefix ends. A torn or corrupt tail frame is
// not an error — it is what a crash mid-append leaves — but a record that
// frames correctly and still fails to decode, or a sequence number that
// does not strictly increase, is.
func scanWAL(data []byte) (recs []*walRecord, clean int, err error) {
	off := 0
	var lastSeq uint64
	for {
		payload, next, ok := nextWALFrame(data, off)
		if !ok {
			return recs, off, nil
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return nil, off, fmt.Errorf("store: WAL record at offset %d: %w", off, err)
		}
		if rec.seq <= lastSeq {
			return nil, off, fmt.Errorf("store: WAL sequence %d at offset %d not increasing (previous %d)",
				rec.seq, off, lastSeq)
		}
		lastSeq = rec.seq
		recs = append(recs, rec)
		off = next
	}
}

// nextWALFrame validates the frame starting at off and returns its payload
// and the next frame's offset. ok is false when the remaining bytes do not
// hold one whole valid frame (the torn tail).
func nextWALFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	rest := data[off:]
	if len(rest) < segHeaderLen+segTrailerLen {
		return nil, 0, false
	}
	if string(rest[:4]) != segMagic || rest[4] != kindWAL {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(rest[5:9]))
	if len(rest)-segHeaderLen-segTrailerLen < n {
		return nil, 0, false
	}
	payload = rest[segHeaderLen : segHeaderLen+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[segHeaderLen+n:]) {
		return nil, 0, false
	}
	return payload, off + segHeaderLen + n + segTrailerLen, true
}

// wal is the open write-ahead log of one Dataset. The handle is lazy: a
// read-only Open of a clean store never creates wal.log; the first Append
// does.
type wal struct {
	fsys vfs.FS
	dir  string
	f    vfs.File
	size int64
	seq  uint64 // last sequence handed out
	// tel mirrors the owning Dataset's sink (nil = uninstrumented); append
	// is where fsync latency — the durability floor — is measured.
	tel Telemetry
	// spans mirrors the owning Dataset's span source (nil = untraced).
	spans Spanner
}

func (w *wal) path() string { return joinPath(w.dir, walFileName) }

// read returns the WAL's raw bytes ("" file missing = empty log).
func (w *wal) read() ([]byte, error) {
	data, err := w.fsys.ReadFile(w.path())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading WAL: %w", err)
	}
	return data, nil
}

// reset truncates the log in place and leaves an open handle positioned at
// the start: create (truncate), fsync the now-empty content, and sync the
// directory so the file's existence is durable. Records already applied
// and checkpointed are the only thing ever discarded here.
func (w *wal) reset() error {
	if w.f != nil {
		w.f.Close() //nolint:errcheck // handle is being replaced
		w.f = nil
	}
	f, err := w.fsys.Create(w.path())
	if err != nil {
		return fmt.Errorf("store: truncating WAL: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing truncated WAL: %w", err)
	}
	if err := w.fsys.SyncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing store directory for WAL: %w", err)
	}
	w.f = f
	w.size = 0
	if w.tel != nil {
		w.tel.SetWALSize(0)
	}
	return nil
}

// ensureOpen makes the log appendable, creating it durably on first use.
func (w *wal) ensureOpen() error {
	if w.f != nil {
		return nil
	}
	return w.reset()
}

// append writes framed record bytes and fsyncs them — the commit
// acknowledgment point. One call may carry many records (group commit):
// however many commits are in the batch, durability costs one write and
// one fsync. When ctx carries a sampled trace, the whole append and the
// fsync alone are recorded as nested "wal.append" / "wal.fsync" spans.
func (w *wal) append(ctx context.Context, framed []byte) error {
	actx, aend := startSpan(w.spans, ctx, "wal.append")
	start := time.Now()
	if err := w.ensureOpen(); err != nil {
		aend()
		return err
	}
	if _, err := w.f.Write(framed); err != nil {
		aend()
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	_, fend := startSpan(w.spans, actx, "wal.fsync")
	syncStart := time.Now()
	err := w.f.Sync()
	fend()
	if err != nil {
		aend()
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	w.size += int64(len(framed))
	if w.tel != nil {
		w.tel.ObserveWALFsync(time.Since(syncStart))
		w.tel.ObserveWALAppend(len(framed), time.Since(start))
		w.tel.SetWALSize(w.size)
	}
	aend("bytes", strconv.Itoa(len(framed)))
	return nil
}

// close releases the append handle (no durability implied; every append
// already synced).
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
