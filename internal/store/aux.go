package store

// Auxiliary segment kinds. The dictionary/snapshot/delta kinds (1-3) belong
// to the version chain; the kinds below frame the feed subsystem's files
// (internal/feed) in the same magic/length/CRC32 envelope, so every durable
// byte in an evorec data directory rejects truncation and corruption the
// same way. The framing helpers are exported for exactly that reuse — the
// payload codecs stay with their owning packages to keep layering intact
// (store knows triples, not subscribers).
const (
	// KindFeedLog frames one user's feed log (internal/feed).
	KindFeedLog byte = 4
	// KindSubscribers frames the subscriber registry (internal/feed).
	KindSubscribers byte = 5
)

// WriteKindedSegment frames payload under the given segment kind and writes
// it to path via a temp file + rename, returning the framed size. A crash
// mid-write never leaves a torn file under the final name.
func WriteKindedSegment(path string, kind byte, payload []byte) (int64, error) {
	return writeSegment(path, kind, payload)
}

// ReadKindedSegment reads dir/file and unframes it, validating magic, kind,
// exact length and checksum.
func ReadKindedSegment(dir, file string, kind byte) ([]byte, error) {
	return readSegment(dir, file, kind)
}

// EncodeKindedSegment frames payload in memory — what WriteKindedSegment
// persists. Fuzz harnesses use it to seed well-formed segments.
func EncodeKindedSegment(kind byte, payload []byte) []byte {
	buf := make([]byte, 0, segHeaderLen+len(payload)+segTrailerLen)
	return appendFramed(buf, kind, payload)
}

// DecodeKindedSegment validates the framing of a whole segment held in
// memory and returns its payload; name labels errors.
func DecodeKindedSegment(name string, data []byte, kind byte) ([]byte, error) {
	return decodeSegment(name, data, kind)
}

// WriteFileAtomic writes data to path through a sibling temp file + rename,
// the same all-or-nothing discipline every store file lands with. The feed
// manifest uses it so its commit point is a single rename.
func WriteFileAtomic(path string, data []byte) error {
	return writeFileAtomic(path, data)
}

// ValidSegmentFileName reports whether name is a plain file name that
// resolves inside its directory: no separators, no "..", nothing rooted.
// Readers of untrusted manifests (the feed's included) refuse anything else.
func ValidSegmentFileName(name string) bool { return validFileName(name) }
