package store

import "evorec/internal/store/vfs"

// Auxiliary segment kinds. The dictionary/snapshot/delta kinds (1-3) belong
// to the version chain and kind 6 to its write-ahead log; the kinds below
// frame the feed subsystem's files (internal/feed) in the same
// magic/length/CRC32 envelope, so every durable byte in an evorec data
// directory rejects truncation and corruption the same way. The framing
// helpers are exported for exactly that reuse — the payload codecs stay with
// their owning packages to keep layering intact (store knows triples, not
// subscribers).
const (
	// KindFeedLog frames one user's feed log (internal/feed).
	KindFeedLog byte = 4
	// KindSubscribers frames the subscriber registry (internal/feed).
	KindSubscribers byte = 5
)

// WriteKindedSegment frames payload under the given segment kind and writes
// it to path on the real filesystem with full durability (temp fsync,
// rename, directory fsync): a crash never leaves a torn file under the
// final name, and the rename itself survives power loss.
func WriteKindedSegment(path string, kind byte, payload []byte) (int64, error) {
	return WriteKindedSegmentFS(vfs.OS{}, path, kind, payload, true)
}

// WriteKindedSegmentFS is WriteKindedSegment on an explicit filesystem.
// With durable unset the write is still atomic (temp + rename) but carries
// no fsync — the caller owes a later SyncPath + SyncDir before relying on
// the bytes across a crash.
func WriteKindedSegmentFS(fsys vfs.FS, path string, kind byte, payload []byte, durable bool) (int64, error) {
	return writeSegment(fsys, path, kind, payload, durable)
}

// ReadKindedSegment reads dir/file and unframes it, validating magic, kind,
// exact length and checksum.
func ReadKindedSegment(dir, file string, kind byte) ([]byte, error) {
	return ReadKindedSegmentFS(vfs.OS{}, dir, file, kind)
}

// ReadKindedSegmentFS is ReadKindedSegment on an explicit filesystem.
func ReadKindedSegmentFS(fsys vfs.FS, dir, file string, kind byte) ([]byte, error) {
	return readSegment(fsys, dir, file, kind)
}

// EncodeKindedSegment frames payload in memory — what WriteKindedSegment
// persists. Fuzz harnesses use it to seed well-formed segments.
func EncodeKindedSegment(kind byte, payload []byte) []byte {
	buf := make([]byte, 0, segHeaderLen+len(payload)+segTrailerLen)
	return appendFramed(buf, kind, payload)
}

// DecodeKindedSegment validates the framing of a whole segment held in
// memory and returns its payload; name labels errors.
func DecodeKindedSegment(name string, data []byte, kind byte) ([]byte, error) {
	return decodeSegment(name, data, kind)
}

// WriteFileAtomic writes data to path through a sibling temp file + rename
// with full durability, the same all-or-nothing discipline every store file
// lands with. The feed manifest uses it so its commit point is a single
// rename that survives a crash.
func WriteFileAtomic(path string, data []byte) error {
	return vfs.WriteFileAtomic(vfs.OS{}, path, data, true)
}

// WriteFileAtomicFS is WriteFileAtomic on an explicit filesystem.
func WriteFileAtomicFS(fsys vfs.FS, path string, data []byte, durable bool) error {
	return vfs.WriteFileAtomic(fsys, path, data, durable)
}

// ValidSegmentFileName reports whether name is a plain file name that
// resolves inside its directory: no separators, no "..", nothing rooted.
// Readers of untrusted manifests (the feed's included) refuse anything else.
func ValidSegmentFileName(name string) bool { return validFileName(name) }
