package store

// Internal tests for Verify/PlanRecovery: they need to craft WAL states —
// replayable tails, torn frames, orphaned records — through the package's
// own framing helpers.

import (
	"context"
	"strings"
	"testing"

	"evorec/internal/rdf"
	"evorec/internal/store/vfs"
)

func verifyGraph(t *testing.T, dict *rdf.Dict, nt string) *rdf.Graph {
	t.Helper()
	var g *rdf.Graph
	if dict != nil {
		g = rdf.NewGraphWithDict(dict)
	} else {
		g = rdf.NewGraph()
	}
	if err := rdf.ReadNTriplesInto(g, strings.NewReader(nt)); err != nil {
		t.Fatal(err)
	}
	return g
}

const (
	verifyNT1 = "<http://example.org/a> <http://example.org/p> <http://example.org/b> .\n"
	verifyNT2 = "<http://example.org/a> <http://example.org/p> <http://example.org/c> .\n"
)

func TestVerifyAndPlanRecovery(t *testing.T) {
	mem := vfs.NewMemFS()
	dir := "store"
	vs := rdf.NewVersionStore()
	if err := vs.Add(&rdf.Version{ID: "v1", Graph: verifyGraph(t, nil, verifyNT1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveFS(mem, dir, vs, Options{Policy: DeltaChain}); err != nil {
		t.Fatal(err)
	}

	// Append v2 without checkpointing, then crash: the WAL record is durable,
	// the segment and manifest are not — the canonical recovery input.
	ds, err := OpenFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	g2 := verifyGraph(t, ds.Dict(), verifyNT1+verifyNT2)
	if _, err := ds.Append(&rdf.Version{ID: "v2", Graph: g2}); err != nil {
		t.Fatal(err)
	}
	mem.Crash()

	plan, err := PlanRecoveryFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Records) != 1 || plan.Records[0].Status != WALReplayable {
		t.Fatalf("plan records = %+v, want one replayable record", plan.Records)
	}
	if len(plan.Apply) != 1 || plan.Apply[0] != "v2" || plan.Tail != "v2" {
		t.Fatalf("plan would apply %v (tail %s), want [v2] with tail v2", plan.Apply, plan.Tail)
	}
	rep, err := VerifyFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	// A replayable WAL suffix is what recovery exists for, not a problem.
	if !rep.OK() {
		t.Fatalf("verify of a replayable store reported problems: %v", rep.Problems)
	}

	// Recover (Open replays + checkpoints); verify must then be fully clean.
	ds, err = OpenFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Has("v2") {
		t.Fatal("recovery lost v2")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err = VerifyFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Plan.Records) != 0 || rep.Plan.WALBytes != 0 {
		t.Fatalf("post-recovery verify = problems %v, plan %+v; want clean empty WAL",
			rep.Problems, rep.Plan)
	}

	// A torn tail — half a frame appended, the crash-mid-append shape — is
	// reported but tolerated.
	f, err := mem.OpenAppend(joinPath(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(segMagic + "\x06garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err = VerifyFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("torn WAL tail reported as problem: %v", rep.Problems)
	}
	if rep.Plan.TornBytes == 0 {
		t.Fatal("torn tail not reported in the plan")
	}

	// An orphaned record — well-framed but chaining from a parent the
	// durable state never reached — IS a problem.
	w := &wal{fsys: mem, dir: dir}
	framed, err := appendWALRecord(nil, &walRecord{
		seq: 1, parent: "ghost", id: "v9", segKind: kindSnapshot, payload: []byte{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(context.Background(), framed); err != nil { // reset truncates the torn tail first
		t.Fatal(err)
	}
	rep, err = VerifyFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(strings.Join(rep.Problems, "\n"), "orphaned") {
		t.Fatalf("orphaned WAL record not flagged: %v", rep.Problems)
	}

	// A replayable record claiming dictionary terms past the durable
	// dictionary is a gap: replay could not re-intern it faithfully.
	if err := w.reset(); err != nil {
		t.Fatal(err)
	}
	framed, err = appendWALRecord(nil, &walRecord{
		seq: 1, parent: "v2", id: "v3", segKind: kindDelta, dictBase: 9999, payload: []byte{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(context.Background(), framed); err != nil {
		t.Fatal(err)
	}
	rep, err = VerifyFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(strings.Join(rep.Problems, "\n"), "dictionary base") {
		t.Fatalf("dictionary gap not flagged: %v", rep.Problems)
	}
}
