package vfs

import (
	"errors"
	"io/fs"
	"strings"
	"sync/atomic"
)

// ErrChaos is the error every faulted operation returns while a ChaosFS is
// armed. It is transient by contract: the same operation succeeds again
// once the wrapper is disarmed, which is what distinguishes chaos faults
// from FaultFS's fail-stop crashes.
var ErrChaos = errors.New("vfs: injected transient fault (chaos armed)")

// ChaosFS wraps an FS with an armable, disarmable transient write fault:
// while armed, every mutating or syncing operation under the scoped prefix
// fails with ErrChaos and nothing reaches the inner FS; reads always pass
// through, and disarming restores normal service. Where FaultFS models a
// single fail-stop crash (one injection point, then dead forever), ChaosFS
// models a live incident — a disk that stops accepting writes for a window
// and then recovers — so a running stack can be driven through
// degraded-and-healed cycles without restarting.
//
// File handles opened through the wrapper consult the armed flag on every
// Write and Sync, so a long-lived handle (a WAL) starts failing the moment
// the fault is armed even though it was opened while healthy.
type ChaosFS struct {
	inner FS
	// under scopes the faults to one directory tree ("" faults everything).
	// Scoping lets a chaos soak wound the store tree while the feed tree —
	// which persists eagerly on every subscribe — keeps working.
	under  string
	armed  atomic.Bool
	faults atomic.Int64
}

// NewChaosFS wraps inner. When under is non-empty, only operations on
// paths inside that directory tree are ever faulted.
func NewChaosFS(inner FS, under string) *ChaosFS {
	return &ChaosFS{inner: inner, under: strings.TrimSuffix(under, "/")}
}

// Arm starts failing scoped mutating operations with ErrChaos.
func (c *ChaosFS) Arm() { c.armed.Store(true) }

// Disarm restores normal service.
func (c *ChaosFS) Disarm() { c.armed.Store(false) }

// Armed reports whether the fault is currently armed.
func (c *ChaosFS) Armed() bool { return c.armed.Load() }

// Faults returns how many operations have been rejected so far.
func (c *ChaosFS) Faults() int64 { return c.faults.Load() }

// fault returns ErrChaos (and counts it) when armed and path is in scope.
func (c *ChaosFS) fault(path string) error {
	if !c.armed.Load() || !c.inScope(path) {
		return nil
	}
	c.faults.Add(1)
	return ErrChaos
}

func (c *ChaosFS) inScope(path string) bool {
	if c.under == "" {
		return true
	}
	return path == c.under || strings.HasPrefix(path, c.under+"/")
}

// ReadFile implements FS; reads always pass through.
func (c *ChaosFS) ReadFile(path string) ([]byte, error) { return c.inner.ReadFile(path) }

// Stat implements FS; reads always pass through.
func (c *ChaosFS) Stat(path string) (fs.FileInfo, error) { return c.inner.Stat(path) }

// MkdirAll implements FS.
func (c *ChaosFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := c.fault(path); err != nil {
		return err
	}
	return c.inner.MkdirAll(path, perm)
}

// Create implements FS.
func (c *ChaosFS) Create(path string) (File, error) {
	if err := c.fault(path); err != nil {
		return nil, err
	}
	f, err := c.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &chaosFile{f: f, c: c, path: path}, nil
}

// OpenAppend implements FS.
func (c *ChaosFS) OpenAppend(path string) (File, error) {
	if err := c.fault(path); err != nil {
		return nil, err
	}
	f, err := c.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &chaosFile{f: f, c: c, path: path}, nil
}

// Rename implements FS; faulted when either endpoint is in scope.
func (c *ChaosFS) Rename(oldPath, newPath string) error {
	if err := c.fault(oldPath); err != nil {
		return err
	}
	if err := c.fault(newPath); err != nil {
		return err
	}
	return c.inner.Rename(oldPath, newPath)
}

// Remove implements FS.
func (c *ChaosFS) Remove(path string) error {
	if err := c.fault(path); err != nil {
		return err
	}
	return c.inner.Remove(path)
}

// SyncPath implements FS.
func (c *ChaosFS) SyncPath(path string) error {
	if err := c.fault(path); err != nil {
		return err
	}
	return c.inner.SyncPath(path)
}

// SyncDir implements FS.
func (c *ChaosFS) SyncDir(dir string) error {
	if err := c.fault(dir); err != nil {
		return err
	}
	return c.inner.SyncDir(dir)
}

// chaosFile consults the owning wrapper's armed flag on every write and
// sync; a fault leaves the underlying file untouched (nothing partial is
// written), so healing never has to repair a torn chaos write.
type chaosFile struct {
	f    File
	c    *ChaosFS
	path string
}

func (f *chaosFile) Write(p []byte) (int, error) {
	if err := f.c.fault(f.path); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *chaosFile) Sync() error {
	if err := f.c.fault(f.path); err != nil {
		return err
	}
	return f.f.Sync()
}

// Close always passes through so handles are never leaked by a fault.
func (f *chaosFile) Close() error { return f.f.Close() }
