// Package vfs is the store's filesystem seam: every byte internal/store and
// internal/feed persist goes through an FS, so durability discipline (fsync
// of file contents, fsync of the parent directory after a rename) lives in
// one place and can be exercised by a fault-injecting implementation.
//
// Three implementations ship:
//
//   - OS: the real filesystem, with real fsyncs.
//   - MemFS: an in-memory filesystem with crash semantics — writes that were
//     never fsynced, and renames whose directory was never synced, vanish at
//     Crash(). It is the oracle the crash-recovery property tests replay
//     against.
//   - FaultFS: a wrapper injecting a failure (error, torn write, short
//     write, failed sync) at the Nth mutating operation and failing
//     everything after it, modeling a fail-stop crash at an arbitrary point
//     in a write sequence.
package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open, writable file handle. Writes are buffered by the
// implementation until Sync; only synced bytes are guaranteed to survive a
// crash.
type File interface {
	io.Writer
	// Sync flushes everything written so far to durable storage.
	Sync() error
	// Close releases the handle without implying durability.
	Close() error
}

// FS is the minimal filesystem surface the store and feed persist through.
// Implementations must be safe for concurrent use by multiple goroutines.
type FS interface {
	// ReadFile returns the named file's current contents.
	ReadFile(path string) ([]byte, error)
	// Stat returns the named file's info.
	Stat(path string) (fs.FileInfo, error)
	// MkdirAll creates the directory and its parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Create opens the named file for writing, truncating it if it exists.
	Create(path string) (File, error)
	// OpenAppend opens the named file for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newPath with oldPath. The rename itself is
	// durable only after SyncDir of the parent directory.
	Rename(oldPath, newPath string) error
	// Remove deletes the named file.
	Remove(path string) error
	// SyncPath fsyncs the named file's current contents (open + fsync +
	// close), for callers that wrote it earlier without durability.
	SyncPath(path string) error
	// SyncDir fsyncs the directory itself, making renames and creations
	// inside it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Stat implements FS.
func (OS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// Create implements FS.
func (OS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (OS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// SyncPath implements FS.
func (OS) SyncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SyncDir implements FS.
func (OS) SyncDir(dir string) error { return OS{}.SyncPath(dir) }

// WriteFile writes data to path in one shot without durability (the
// os.WriteFile shape). Callers needing crash safety use WriteFileAtomic.
func WriteFile(fsys FS, path string, data []byte) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFileAtomic writes data to a sibling temp file and renames it over
// path, so readers see either the old contents or the new, never a tear.
// With durable set, the temp file is fsynced before the rename and the
// parent directory after it — the full power-loss-safe sequence; without
// it the write is atomic against concurrent readers but may vanish at a
// crash (callers then make it durable later via SyncPath+SyncDir, the
// checkpoint pattern).
func WriteFileAtomic(fsys FS, path string, data []byte, durable bool) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if durable {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return err
	}
	if durable {
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			return fmt.Errorf("syncing directory after rename of %s: %w", path, err)
		}
	}
	return nil
}
