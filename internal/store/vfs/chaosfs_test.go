package vfs

import (
	"errors"
	"testing"
)

// TestChaosFSTransientScopedFault pins ChaosFS's contract: armed faults hit
// every scoped mutation (including writes on handles opened while healthy),
// leave out-of-scope paths and all reads untouched, and vanish completely
// on disarm — the same operation that just faulted succeeds.
func TestChaosFSTransientScopedFault(t *testing.T) {
	c := NewChaosFS(NewMemFS(), "data")
	if err := c.MkdirAll("data/ds", 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(path, body string) error {
		f, err := c.Create(path)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(body)); err != nil {
			f.Close() //nolint:errcheck
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close() //nolint:errcheck
			return err
		}
		return f.Close()
	}
	if err := write("data/ds/a", "healthy"); err != nil {
		t.Fatalf("disarmed write: %v", err)
	}
	// A long-lived handle (the WAL's shape): opened healthy, written across
	// the arm boundary.
	wal, err := c.OpenAppend("data/ds/wal")
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close() //nolint:errcheck
	if _, err := wal.Write([]byte("rec1")); err != nil {
		t.Fatal(err)
	}

	c.Arm()
	if !c.Armed() {
		t.Fatal("Armed() = false after Arm()")
	}
	if _, err := wal.Write([]byte("rec2")); !errors.Is(err, ErrChaos) {
		t.Fatalf("armed write on healthy-opened handle = %v, want ErrChaos", err)
	}
	if err := wal.Sync(); !errors.Is(err, ErrChaos) {
		t.Fatalf("armed sync = %v, want ErrChaos", err)
	}
	if err := write("data/ds/b", "x"); !errors.Is(err, ErrChaos) {
		t.Fatalf("armed create = %v, want ErrChaos", err)
	}
	if err := c.Rename("data/ds/a", "data/ds/a2"); !errors.Is(err, ErrChaos) {
		t.Fatalf("armed rename = %v, want ErrChaos", err)
	}
	if err := c.SyncPath("data/ds/a"); !errors.Is(err, ErrChaos) {
		t.Fatalf("armed SyncPath = %v, want ErrChaos", err)
	}
	// Reads always pass through, armed or not.
	if got, err := c.ReadFile("data/ds/a"); err != nil || string(got) != "healthy" {
		t.Fatalf("armed read = %q, %v; want the healthy contents", got, err)
	}
	if _, err := c.Stat("data/ds/a"); err != nil {
		t.Fatalf("armed stat: %v", err)
	}
	// Out-of-scope trees never fault: the feed dir keeps persisting while
	// the store tree is wounded.
	if err := c.MkdirAll("feeds", 0o755); err != nil {
		t.Fatalf("armed out-of-scope mkdir: %v", err)
	}
	if err := write("feeds/u1", "sub"); err != nil {
		t.Fatalf("armed out-of-scope write: %v", err)
	}
	if c.Faults() == 0 {
		t.Fatal("fault counter never moved")
	}

	// Transient by contract: disarming restores everything, including the
	// handle that was faulting a moment ago.
	c.Disarm()
	if _, err := wal.Write([]byte("rec3")); err != nil {
		t.Fatalf("disarmed write on the faulted handle: %v", err)
	}
	if err := wal.Sync(); err != nil {
		t.Fatalf("disarmed sync: %v", err)
	}
	if err := write("data/ds/b", "x"); err != nil {
		t.Fatalf("disarmed create of the faulted path: %v", err)
	}
	// The faulted armed writes left nothing partial behind.
	if got, err := c.ReadFile("data/ds/wal"); err != nil || string(got) != "rec1rec3" {
		t.Fatalf("wal contents = %q, %v; want rec1rec3 (no torn chaos writes)", got, err)
	}
}

// TestChaosFSUnscoped checks that an empty scope faults the whole tree.
func TestChaosFSUnscoped(t *testing.T) {
	c := NewChaosFS(NewMemFS(), "")
	c.Arm()
	if _, err := c.Create("anywhere"); !errors.Is(err, ErrChaos) {
		t.Fatalf("unscoped armed create = %v, want ErrChaos", err)
	}
	if err := c.MkdirAll("any/dir", 0o755); !errors.Is(err, ErrChaos) {
		t.Fatalf("unscoped armed mkdir = %v, want ErrChaos", err)
	}
}
