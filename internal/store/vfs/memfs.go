package vfs

import (
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// MemFS is an in-memory FS with crash semantics, the substrate of the
// crash-recovery property tests. It models the two durability rules real
// filesystems impose:
//
//   - File contents survive a crash only up to the last Sync of that file
//     (content written after the last Sync reverts; a file never synced
//     comes back empty — the "exists but garbage" state).
//   - Namespace changes — creations, renames, removals — survive a crash
//     only after SyncDir of the parent directory. A file fsynced under a
//     temp name and renamed without a directory sync is lost entirely,
//     which is exactly the missing-dir-fsync bug the vfs seam exists to
//     make testable.
//
// Directory creation (MkdirAll) is modeled as immediately durable — the
// store and feed create their directories once at setup, outside the
// crash windows under test.
//
// Crash() atomically drops everything volatile, leaving the filesystem as
// a post-power-loss reboot would find it; the instance remains usable, so
// recovery code can reopen it in place.
type MemFS struct {
	mu      sync.Mutex
	live    map[string]*inode // current namespace
	durable map[string]*inode // namespace as a crash would leave it
	dirs    map[string]bool
}

// inode is one file's storage. The same inode may be referenced by the live
// and durable namespaces under different names (rename moves the live link
// only).
type inode struct {
	data    []byte // current content
	synced  []byte // content guaranteed to survive a crash
	hasSync bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		live:    make(map[string]*inode),
		durable: make(map[string]*inode),
		dirs:    map[string]bool{".": true, "": true, "/": true},
	}
}

func memPathErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

// clean canonicalizes a path so "dir/f" and "dir//f" address one entry.
func clean(path string) string { return filepath.Clean(path) }

func (m *MemFS) dirExistsLocked(dir string) bool { return m.dirs[clean(dir)] }

// ReadFile implements FS.
func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[clean(path)]
	if !ok {
		return nil, memPathErr("open", path, os.ErrNotExist)
	}
	return append([]byte(nil), ino.data...), nil
}

// Stat implements FS.
func (m *MemFS) Stat(path string) (fs.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(path)
	if m.dirs[p] {
		return memFileInfo{name: filepath.Base(p), dir: true}, nil
	}
	ino, ok := m.live[p]
	if !ok {
		return nil, memPathErr("stat", path, os.ErrNotExist)
	}
	return memFileInfo{name: filepath.Base(p), size: int64(len(ino.data))}, nil
}

// MkdirAll implements FS. Created directories are immediately durable (see
// the type comment).
func (m *MemFS) MkdirAll(path string, _ fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(path)
	for {
		m.dirs[p] = true
		parent := filepath.Dir(p)
		if parent == p {
			return nil
		}
		p = parent
	}
}

// Create implements FS: truncate-in-place when the path is live (the same
// inode, so a later crash can still resurface the previously synced
// content), a fresh volatile inode otherwise.
func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(path)
	if !m.dirExistsLocked(filepath.Dir(p)) {
		return nil, memPathErr("create", path, os.ErrNotExist)
	}
	ino, ok := m.live[p]
	if ok {
		ino.data = nil
	} else {
		ino = &inode{}
		m.live[p] = ino
	}
	return &memFile{fs: m, ino: ino}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(path)
	if !m.dirExistsLocked(filepath.Dir(p)) {
		return nil, memPathErr("open", path, os.ErrNotExist)
	}
	ino, ok := m.live[p]
	if !ok {
		ino = &inode{}
		m.live[p] = ino
	}
	return &memFile{fs: m, ino: ino}, nil
}

// Rename implements FS. Only the live namespace moves; the durable
// namespace keeps its old bindings until SyncDir.
func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	op, np := clean(oldPath), clean(newPath)
	ino, ok := m.live[op]
	if !ok {
		return memPathErr("rename", oldPath, os.ErrNotExist)
	}
	delete(m.live, op)
	m.live[np] = ino
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(path)
	if _, ok := m.live[p]; !ok {
		return memPathErr("remove", path, os.ErrNotExist)
	}
	delete(m.live, p)
	return nil
}

// SyncPath implements FS.
func (m *MemFS) SyncPath(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[clean(path)]
	if !ok {
		return memPathErr("sync", path, os.ErrNotExist)
	}
	ino.sync()
	return nil
}

// SyncDir implements FS: the directory's live entries become the durable
// namespace for that directory — creations and renames inside it now
// survive a crash, removals inside it are now permanent.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := clean(dir)
	if !m.dirExistsLocked(d) {
		return memPathErr("syncdir", dir, os.ErrNotExist)
	}
	for p := range m.durable {
		if filepath.Dir(p) == d {
			if _, ok := m.live[p]; !ok {
				delete(m.durable, p)
			}
		}
	}
	for p, ino := range m.live {
		if filepath.Dir(p) == d {
			m.durable[p] = ino
		}
	}
	return nil
}

// Crash drops everything volatile: the namespace reverts to its last
// directory-synced state and every file's content to its last Sync (files
// never synced come back empty). The instance stays usable so recovery can
// reopen it.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	live := make(map[string]*inode, len(m.durable))
	durable := make(map[string]*inode, len(m.durable))
	for p, ino := range m.durable {
		var content []byte
		if ino.hasSync {
			content = append([]byte(nil), ino.synced...)
		}
		fresh := &inode{
			data:    content,
			synced:  append([]byte(nil), content...),
			hasSync: true,
		}
		live[p] = fresh
		durable[p] = fresh
	}
	m.live = live
	m.durable = durable
}

// Snapshot lists the live files and their sizes, for test diagnostics.
func (m *MemFS) Snapshot() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.live))
	for p, ino := range m.live {
		out[p] = len(ino.data)
	}
	return out
}

func (ino *inode) sync() {
	ino.synced = append(ino.synced[:0], ino.data...)
	ino.hasSync = true
}

// syncPrefix promotes only the first n unsynced bytes to durable — the
// torn-fsync model FaultFS injects (a crash mid-fsync persists an arbitrary
// prefix of the outstanding writes).
func (ino *inode) syncPrefix(n int) {
	end := len(ino.synced) + n
	if !ino.hasSync {
		end = n
	}
	if end > len(ino.data) {
		end = len(ino.data)
	}
	ino.synced = append(ino.synced[:0], ino.data[:end]...)
	ino.hasSync = true
}

// memFile is an open MemFS file handle.
type memFile struct {
	fs  *MemFS
	ino *inode
}

// Write implements File.
func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.ino.data = append(f.ino.data, p...)
	return len(p), nil
}

// Sync implements File.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.ino.sync()
	return nil
}

// SyncPartial promotes only the first n outstanding bytes, then reports how
// many unsynced bytes remain. FaultFS uses it to model torn fsyncs.
func (f *memFile) SyncPartial(n int) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.ino.syncPrefix(n)
	return nil
}

// Close implements File.
func (f *memFile) Close() error { return nil }

// memFileInfo is the fs.FileInfo MemFS.Stat returns.
type memFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i memFileInfo) Name() string { return i.name }
func (i memFileInfo) Size() int64  { return i.size }
func (i memFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }
