package vfs

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func mustMkdir(t *testing.T, fsys FS, dir string) {
	t.Helper()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
}

func readOrFatal(t *testing.T, fsys FS, path string) []byte {
	t.Helper()
	data, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", path, err)
	}
	return data
}

// TestMemFSDurableAtomicWriteSurvivesCrash is the positive contract: the
// full fsync discipline (temp write, file sync, rename, dir sync) survives
// a crash bit-for-bit.
func TestMemFSDurableAtomicWriteSurvivesCrash(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "d")
	want := []byte("the durable payload")
	if err := WriteFileAtomic(m, "d/f.seg", want, true); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got := readOrFatal(t, m, "d/f.seg"); !bytes.Equal(got, want) {
		t.Fatalf("after crash got %q, want %q", got, want)
	}
}

// TestMemFSRenameWithoutDirSyncIsLost pins the bug the vfs seam exists to
// catch: a file fsynced under its temp name and renamed, but whose
// directory was never synced, vanishes at a crash — under both names.
func TestMemFSRenameWithoutDirSyncIsLost(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "d")
	f, err := m.Create("d/f.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("d/f.tmp", "d/f.seg"); err != nil {
		t.Fatal(err)
	}
	// No SyncDir: the name → inode bindings are volatile.
	m.Crash()
	if _, err := m.ReadFile("d/f.seg"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("renamed file survived a crash without dir sync: %v", err)
	}
	if _, err := m.ReadFile("d/f.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp name survived a crash without dir sync: %v", err)
	}
}

// TestMemFSUnsyncedAppendRevertsAtCrash: appended bytes after the last
// file sync revert; bytes before it survive.
func TestMemFSUnsyncedAppendRevertsAtCrash(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "d")
	f, err := m.OpenAppend("d/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("record-1|")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("record-2|")); err != nil {
		t.Fatal(err)
	}
	// Creation of the WAL file itself must be durable for anything to
	// survive.
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got := readOrFatal(t, m, "d/wal.log"); string(got) != "record-1|" {
		t.Fatalf("after crash got %q, want only the synced record", got)
	}
}

// TestMemFSOverwriteRevertsToSyncedContent: truncating an existing synced
// file and writing new content without sync reverts to the old content.
func TestMemFSOverwriteRevertsToSyncedContent(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "d")
	if err := WriteFileAtomic(m, "d/f", []byte("old"), true); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("d/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("newer-but-volatile")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readOrFatal(t, m, "d/f"); string(got) != "newer-but-volatile" {
		t.Fatalf("live content = %q", got)
	}
	m.Crash()
	if got := readOrFatal(t, m, "d/f"); string(got) != "old" {
		t.Fatalf("after crash got %q, want %q", got, "old")
	}
}

// TestMemFSRemoveWithoutDirSyncResurrects: a removal is volatile until the
// directory is synced.
func TestMemFSRemoveWithoutDirSyncResurrects(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "d")
	if err := WriteFileAtomic(m, "d/f", []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("d/f"); err != nil {
		t.Fatalf("unsynced removal must revert at crash: %v", err)
	}
	// And with the dir sync, the removal sticks.
	if err := m.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("d/f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("synced removal must survive crash, got %v", err)
	}
}

// TestFaultFSCountsAndFailStops: the counter run observes every mutating
// op, the injection fires exactly once, and everything after it — reads
// included — fails with ErrCrashed.
func TestFaultFSCountsAndFailStops(t *testing.T) {
	runOnce := func(failAt int) (*FaultFS, []error) {
		m := NewMemFS()
		mustMkdir(t, m, "d")
		f := NewFaultFS(m, failAt, FaultError)
		var errs []error
		errs = append(errs, WriteFileAtomic(f, "d/a", []byte("a"), true))
		errs = append(errs, WriteFileAtomic(f, "d/b", []byte("b"), true))
		return f, errs
	}
	counter, errs := runOnce(0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("counting run op %d: %v", i, err)
		}
	}
	total := counter.Ops()
	if total < 8 { // 2 × (create, write, sync, rename, syncdir) at least
		t.Fatalf("counting run saw only %d ops", total)
	}
	for n := 1; n <= total; n++ {
		f, errs := runOnce(n)
		sawFailure := false
		for _, err := range errs {
			if err != nil {
				sawFailure = true
				if !errors.Is(err, ErrInjected) && !errors.Is(err, ErrCrashed) {
					t.Fatalf("failAt=%d: unexpected error %v", n, err)
				}
			}
		}
		if !sawFailure {
			t.Fatalf("failAt=%d: no operation failed", n)
		}
		if !f.Crashed() {
			t.Fatalf("failAt=%d: filesystem not marked crashed", n)
		}
		if _, err := f.ReadFile("d/a"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("failAt=%d: read after crash = %v, want ErrCrashed", n, err)
		}
	}
}

// TestFaultFSTornSyncPersistsPrefix: a torn fsync promotes a prefix of the
// outstanding bytes, so after the crash the file holds more than the last
// clean sync but less than everything written — the WAL tail-record state.
func TestFaultFSTornSyncPersistsPrefix(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "d")
	// Ops: 1 mkdir (already done outside)... count within FaultFS: open=1,
	// write=2, sync=3.
	f := NewFaultFS(m, 3, FaultTornWrite)
	file, err := f.OpenAppend("d/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdefghij")
	if _, err := file.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := file.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	// The WAL file's creation was never dir-synced, so make the crash see
	// it: sync the dir through the raw MemFS (the faulted FS is dead).
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	got := readOrFatal(t, m, "d/wal.log")
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("torn sync persisted %d bytes, want a strict non-empty prefix of %d", len(got), len(payload))
	}
	if !bytes.HasPrefix(payload, got) {
		t.Fatalf("torn sync persisted %q, not a prefix of %q", got, payload)
	}
}
