package vfs

import (
	"errors"
	"io"
	"io/fs"
	"sync"
)

// Fault selects what happens at the injection point.
type Fault int

const (
	// FaultError fails the Nth mutating operation cleanly: nothing of it
	// reaches the inner filesystem.
	FaultError Fault = iota
	// FaultTornWrite applies only a prefix of the Nth operation before
	// failing: a Write lands half its bytes; a Sync promotes half the
	// outstanding bytes to durable (the torn-fsync model — after a crash an
	// arbitrary prefix of an appended record may have reached the platter).
	FaultTornWrite
	// FaultShortWrite makes the Nth Write report fewer bytes written than
	// requested (io.ErrShortWrite) after landing that prefix.
	FaultShortWrite
)

// ErrInjected is the failure FaultFS returns at the injection point.
var ErrInjected = errors.New("vfs: injected fault")

// ErrCrashed is what every operation after the injection point returns: a
// fail-stop model, the process is considered dead from the fault onward.
var ErrCrashed = errors.New("vfs: filesystem crashed (operation after injected fault)")

// FaultFS wraps an FS and injects one failure at the Nth mutating
// operation, then fails everything after it. Mutating operations are
// counted in call order — MkdirAll, Create, OpenAppend, Write, Sync,
// Rename, Remove, SyncPath, SyncDir — so a workload replayed with FailAt
// = 1..Ops() crashes at every write-path step exactly once.
//
// Reads fail after the injection point too: a crashed process issues no
// I/O at all.
type FaultFS struct {
	inner FS

	mu    sync.Mutex
	ops   int
	fail  int // 1-based op index to fault at; 0 = never
	fault Fault
}

// NewFaultFS wraps inner, faulting at the failAt-th mutating operation
// (1-based; 0 never faults, making the wrapper a pure op counter).
func NewFaultFS(inner FS, failAt int, fault Fault) *FaultFS {
	return &FaultFS{inner: inner, fail: failAt, fault: fault}
}

// Ops returns how many mutating operations have been observed, the bound a
// counting run hands to the injection enumeration.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the injection point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fail > 0 && f.ops >= f.fail
}

// step advances the mutating-op counter. It returns (true, nil) exactly at
// the injection point and (false, ErrCrashed) for every operation after it.
func (f *FaultFS) step() (inject bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail > 0 && f.ops >= f.fail {
		return false, ErrCrashed
	}
	f.ops++
	if f.ops == f.fail {
		return true, nil
	}
	return false, nil
}

// alive errors when the filesystem is past its injection point; read-side
// calls use it so a "crashed" process performs no I/O at all.
func (f *FaultFS) alive() error {
	if f.Crashed() {
		return ErrCrashed
	}
	return nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

// Stat implements FS.
func (f *FaultFS) Stat(path string) (fs.FileInfo, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.inner.Stat(path)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	inject, err := f.step()
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return f.inner.MkdirAll(path, perm)
}

// Create implements FS.
func (f *FaultFS) Create(path string) (File, error) {
	inject, err := f.step()
	if err != nil {
		return nil, err
	}
	if inject {
		return nil, ErrInjected
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(path string) (File, error) {
	inject, err := f.step()
	if err != nil {
		return nil, err
	}
	if inject {
		return nil, ErrInjected
	}
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	inject, err := f.step()
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove implements FS.
func (f *FaultFS) Remove(path string) error {
	inject, err := f.step()
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return f.inner.Remove(path)
}

// SyncPath implements FS.
func (f *FaultFS) SyncPath(path string) error {
	inject, err := f.step()
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return f.inner.SyncPath(path)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	inject, err := f.step()
	if err != nil {
		return err
	}
	if inject {
		return ErrInjected
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads the op counter through file writes and syncs.
type faultFile struct {
	fs    *FaultFS
	inner File
}

// Write implements File.
func (f *faultFile) Write(p []byte) (int, error) {
	inject, err := f.fs.step()
	if err != nil {
		return 0, err
	}
	if !inject {
		return f.inner.Write(p)
	}
	switch f.fs.fault {
	case FaultTornWrite:
		n, werr := f.inner.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, ErrInjected
	case FaultShortWrite:
		n, werr := f.inner.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, io.ErrShortWrite
	default:
		return 0, ErrInjected
	}
}

// Sync implements File. Under FaultTornWrite the injection is a torn
// fsync: half the outstanding bytes are promoted to durable before the
// error, modeling a crash mid-flush.
func (f *faultFile) Sync() error {
	inject, err := f.fs.step()
	if err != nil {
		return err
	}
	if !inject {
		return f.inner.Sync()
	}
	if f.fs.fault == FaultTornWrite {
		if pf, ok := f.inner.(interface{ SyncPartial(int) error }); ok {
			// The partial length is arbitrary; odd primes shear records at
			// uncomfortable offsets.
			pf.SyncPartial(7) //nolint:errcheck // injected path, error irrelevant
		}
	}
	return ErrInjected
}

// Close implements File. Close is not counted as a mutating operation (it
// implies no durability), but a crashed filesystem still refuses it.
func (f *faultFile) Close() error {
	if err := f.fs.alive(); err != nil {
		return err
	}
	return f.inner.Close()
}
