package store

import (
	"fmt"

	"evorec/internal/store/vfs"
)

// SegmentInfo is one segment's on-disk health as seen by Inspect.
type SegmentInfo struct {
	// File is the segment file name; Kind is "dict", "snapshot" or "delta".
	File string
	Kind string
	// ID is the version ID (empty for the dictionary segment).
	ID string
	// Bytes is the actual file size on disk.
	Bytes int64
	// OK reports whether the segment's framing and checksum verify; Err
	// holds the failure otherwise.
	OK  bool
	Err string
	// Triples is the snapshot size; Added/Deleted the delta sizes.
	Triples, Added, Deleted int
}

// Info is the result of Inspect: the manifest's view of a store directory
// cross-checked against the segment files.
type Info struct {
	// Format and Policy echo the manifest.
	Format, Policy string
	// Terms is the dictionary entry count.
	Terms int
	// Versions, Snapshots and Deltas count the chain's entries.
	Versions, Snapshots, Deltas int
	// TotalBytes is the whole store's footprint including the manifest.
	TotalBytes int64
	// Segments lists every segment in manifest order, dictionary first.
	Segments []SegmentInfo
}

// Inspect reads dir's manifest and verifies every segment's framing and
// checksum without materializing any graph. It powers the CLI's
// "store inspect" subcommand; a segment that fails verification is reported
// in place, not treated as a fatal error.
func Inspect(dir string) (*Info, error) { return InspectFS(vfs.OS{}, dir) }

// InspectFS is Inspect on an explicit filesystem.
func InspectFS(fsys vfs.FS, dir string) (*Info, error) {
	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	info := &Info{
		Format:   man.Format,
		Policy:   man.Policy,
		Terms:    man.Terms,
		Versions: len(man.Entries),
	}
	if st, err := fsys.Stat(joinPath(dir, manifestName)); err == nil {
		info.TotalBytes += st.Size()
	}
	check := func(file, kindName, id string, kind byte) SegmentInfo {
		si := SegmentInfo{File: file, Kind: kindName, ID: id}
		st, err := fsys.Stat(joinPath(dir, file))
		if err != nil {
			si.Err = fmt.Sprintf("missing: %v", err)
			return si
		}
		si.Bytes = st.Size()
		info.TotalBytes += st.Size()
		if _, err := readSegment(fsys, dir, file, kind); err != nil {
			si.Err = err.Error()
			return si
		}
		si.OK = true
		return si
	}
	info.Segments = append(info.Segments, check(man.Dict.File, "dict", "", kindDict))
	for _, e := range man.Entries {
		var si SegmentInfo
		if e.Kind == kindNameSnapshot {
			info.Snapshots++
			si = check(e.File, e.Kind, e.ID, kindSnapshot)
			si.Triples = e.Triples
		} else {
			info.Deltas++
			si = check(e.File, e.Kind, e.ID, kindDelta)
			si.Added, si.Deleted = e.Added, e.Deleted
		}
		info.Segments = append(info.Segments, si)
	}
	return info, nil
}
