// Package store persists evolving datasets in a binary, dictionary-native
// segment format: the term dictionary is written once as a string-table
// segment, and each version is either a snapshot segment (sorted ID-triples,
// varint delta-encoded per SPO run) or a delta segment (added/deleted
// ID-triple lists), all length-prefixed and CRC32-checked, with a JSON
// manifest tying the chain together.
//
// The point of the format is that reads go straight from bytes to TermIDs:
// no N-Triples parsing, no re-interning — the string table is decoded once
// per dataset and every snapshot or delta after that is integer work against
// the shared rdf.Dict. Open returns a lazy handle that materializes a
// requested version through a small LRU of reconstructed graphs, so a
// service can hold a long chain on disk and page in only the versions it is
// asked about (ROADMAP: disk-backed version stores).
//
// The text archive (internal/archive) remains the interoperable format; this
// store is the fast path behind archive.Binary.
package store

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"

	"evorec/internal/delta"
	"evorec/internal/rdf"
	"evorec/internal/store/vfs"
)

// FormatV1 identifies the segment store's manifest format. archive.Load uses
// it to route a directory to the binary reader.
const FormatV1 = "evorec-store/v1"

const (
	manifestName = "manifest.json"
	dictFileName = "dict.seg"
)

// Policy selects how versions are materialized on disk, mirroring the text
// archive's policies over binary segments.
type Policy uint8

const (
	// FullSnapshots stores every version as a snapshot segment.
	FullSnapshots Policy = iota
	// DeltaChain stores the first version as a snapshot and every further
	// version as a delta segment over its predecessor.
	DeltaChain
	// Hybrid stores a snapshot every SnapshotEvery versions and deltas in
	// between, bounding both footprint and reconstruction cost.
	Hybrid
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FullSnapshots:
		return "full_snapshots"
	case DeltaChain:
		return "delta_chain"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy inverts Policy.String; Append uses it to resume a stored
// chain's policy from its manifest.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "full_snapshots":
		return FullSnapshots, nil
	case "delta_chain":
		return DeltaChain, nil
	case "hybrid":
		return Hybrid, nil
	default:
		return 0, fmt.Errorf("store: unknown policy %q", name)
	}
}

// Options parameterize Save.
type Options struct {
	// Policy selects the snapshot/delta mix.
	Policy Policy
	// SnapshotEvery is the snapshot period for Hybrid (default 4).
	SnapshotEvery int
}

// Segment locates one segment file and records its size.
type Segment struct {
	// File is the segment's file name within the store directory.
	File string `json:"file"`
	// Bytes is the segment's framed on-disk size.
	Bytes int64 `json:"bytes"`
}

// Entry describes one stored version in the manifest. Delta entries apply
// over the immediately preceding entry, so the manifest order is the chain.
type Entry struct {
	// ID is the version ID.
	ID string `json:"id"`
	// Kind is "snapshot" or "delta".
	Kind string `json:"kind"`
	// File and Bytes locate the version's segment.
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
	// Triples is the snapshot size (snapshots only).
	Triples int `json:"triples,omitempty"`
	// Added and Deleted are the delta sizes (deltas only).
	Added   int `json:"added,omitempty"`
	Deleted int `json:"deleted,omitempty"`
}

// Manifest is the store's index, written as manifest.json.
type Manifest struct {
	// Format is FormatV1; readers reject anything else.
	Format string `json:"format"`
	// Policy records the archiving policy used.
	Policy string `json:"policy"`
	// SnapshotEvery records the hybrid policy's snapshot period, so appends
	// keep the original cadence. Zero (older manifests) means the default.
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Terms is the dictionary entry count (excluding the wildcard slot).
	Terms int `json:"terms"`
	// Dict locates the string-table segment.
	Dict Segment `json:"dict"`
	// Entries lists the stored versions in evolution order.
	Entries []Entry `json:"entries"`
}

const (
	kindNameSnapshot = "snapshot"
	kindNameDelta    = "delta"
)

func joinPath(dir, file string) string { return filepath.Join(dir, file) }

// validFileName accepts only plain names that resolve inside the store
// directory: no separators, no "..", nothing rooted. Both the writer (file
// names derived from caller version IDs) and the reader (names from an
// untrusted manifest) refuse anything else, so a crafted manifest cannot
// point Open/Inspect at files outside the store.
func validFileName(name string) bool {
	return name != "" && name != "." && name != ".." &&
		!strings.ContainsAny(name, `/\`) && filepath.Base(name) == name
}

// Save writes the version store to dir under the given policy and returns
// the manifest. It is SaveFS on the real filesystem.
func Save(dir string, vs *rdf.VersionStore, opt Options) (*Manifest, error) {
	return SaveFS(vfs.OS{}, dir, vs, opt)
}

// SaveFS writes the version store to dir under the given policy and returns
// the manifest. The directory is created if missing; existing store files
// are overwritten.
//
// All versions are encoded against one dictionary — the first graph's when
// the chain shares it (the normal case: Clone and archive.Load preserve
// sharing), with foreign-dict graphs re-interned into it transparently. The
// dictionary segment is written last so late-interned terms are included.
//
// Durability follows the checkpoint pattern: segments land via plain atomic
// renames, then every segment is fsynced, the directory synced once, and
// only then is the manifest — the commit point — written durably. A crash
// anywhere before the manifest rename leaves no manifest (or the previous
// store) rather than one referencing unsynced segments.
func SaveFS(fsys vfs.FS, dir string, vs *rdf.VersionStore, opt Options) (*Manifest, error) {
	if vs.Len() == 0 {
		return nil, fmt.Errorf("store: nothing to save")
	}
	every := opt.SnapshotEvery
	if every <= 0 {
		every = 4
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	dict := vs.At(0).Graph.Dict()
	man := &Manifest{Format: FormatV1, Policy: opt.Policy.String(), SnapshotEvery: every}
	ids := vs.IDs()
	var prev []rdf.IDTriple
	var buf []byte
	for i, id := range ids {
		if !validFileName(id + ".x") {
			return nil, fmt.Errorf("store: version ID %q cannot name a segment file", id)
		}
		v, _ := vs.Get(id)
		cur := encodeGraph(dict, v.Graph)
		snapshot := i == 0 || opt.Policy == FullSnapshots ||
			(opt.Policy == Hybrid && i%every == 0)
		buf = buf[:0]
		e := Entry{ID: id}
		if snapshot {
			e.Kind = kindNameSnapshot
			e.File = id + ".snap"
			e.Triples = len(cur)
			buf = appendSnapshot(buf, cur)
		} else {
			added, deleted := delta.DiffSortedIDs(prev, cur)
			e.Kind = kindNameDelta
			e.File = id + ".delta"
			e.Added = len(added)
			e.Deleted = len(deleted)
			buf = appendDelta(buf, added, deleted)
		}
		kind := kindSnapshot
		if !snapshot {
			kind = kindDelta
		}
		size, err := writeSegment(fsys, joinPath(dir, e.File), kind, buf, false)
		if err != nil {
			return nil, err
		}
		e.Bytes = size
		man.Entries = append(man.Entries, e)
		prev = cur
	}
	dictBytes, err := writeSegment(fsys, joinPath(dir, dictFileName), kindDict, appendDict(nil, dict), false)
	if err != nil {
		return nil, err
	}
	man.Terms = dict.Len() - 1
	man.Dict = Segment{File: dictFileName, Bytes: dictBytes}
	// Make every segment durable before the manifest points at it.
	for _, e := range man.Entries {
		if err := fsys.SyncPath(joinPath(dir, e.File)); err != nil {
			return nil, fmt.Errorf("store: syncing segment %s: %w", e.File, err)
		}
	}
	if err := fsys.SyncPath(joinPath(dir, dictFileName)); err != nil {
		return nil, fmt.Errorf("store: syncing dictionary segment: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return nil, fmt.Errorf("store: syncing store directory: %w", err)
	}
	if err := writeManifest(fsys, dir, man, true); err != nil {
		return nil, err
	}
	return man, nil
}

// writeManifest serializes the manifest as dir/manifest.json. It is the
// commit point of both Save and the Append checkpoint: segments are made
// durable first, so a failure before the manifest lands leaves the previous
// manifest (or no store) intact, never a manifest referencing missing
// segments. With durable set, the write carries the full fsync discipline
// (temp sync, rename, directory sync).
func writeManifest(fsys vfs.FS, dir string, man *Manifest, durable bool) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	if err := vfs.WriteFileAtomic(fsys, joinPath(dir, manifestName), data, durable); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	return nil
}

// encodeGraph returns g's triples as a sorted ID-triple slice encoded
// against dict. A graph already sharing dict encodes without touching a
// term; a foreign-dict graph has its terms interned into dict (append-only,
// so existing IDs are undisturbed).
func encodeGraph(dict *rdf.Dict, g *rdf.Graph) []rdf.IDTriple {
	out := make([]rdf.IDTriple, 0, g.Len())
	if g.Dict() == dict {
		g.ForEachID(func(t rdf.IDTriple) bool {
			out = append(out, t)
			return true
		})
	} else {
		g.ForEach(func(t rdf.Triple) bool {
			out = append(out, rdf.IDTriple{
				S: dict.Intern(t.S), P: dict.Intern(t.P), O: dict.Intern(t.O),
			})
			return true
		})
	}
	rdf.SortIDTriples(out)
	return out
}

// readManifest loads and validates dir's manifest.
func readManifest(fsys vfs.FS, dir string) (*Manifest, error) {
	data, err := fsys.ReadFile(joinPath(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("store: decoding manifest: %w", err)
	}
	if man.Format != FormatV1 {
		return nil, fmt.Errorf("store: manifest format %q, want %q", man.Format, FormatV1)
	}
	if !validFileName(man.Dict.File) {
		return nil, fmt.Errorf("store: manifest dict file %q escapes the store directory", man.Dict.File)
	}
	for i, e := range man.Entries {
		if !validFileName(e.File) {
			return nil, fmt.Errorf("store: entry %d file %q escapes the store directory", i, e.File)
		}
		switch e.Kind {
		case kindNameSnapshot:
		case kindNameDelta:
			if i == 0 {
				return nil, fmt.Errorf("store: entry 0 (%s) is a delta with no base", e.ID)
			}
		default:
			return nil, fmt.Errorf("store: entry %d has unknown kind %q", i, e.Kind)
		}
	}
	return &man, nil
}

// DiskUsage sums the file sizes of the store's segments plus manifest, for
// the footprint comparisons in A3.
func DiskUsage(dir string, man *Manifest) (int64, error) {
	files := []string{manifestName, man.Dict.File}
	for _, e := range man.Entries {
		files = append(files, e.File)
	}
	total := int64(0)
	for _, name := range files {
		info, err := vfs.OS{}.Stat(joinPath(dir, name))
		if err != nil {
			return 0, fmt.Errorf("store: stat %s: %w", name, err)
		}
		total += info.Size()
	}
	return total, nil
}
