package store_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evorec/internal/delta"
	"evorec/internal/rdf"
	"evorec/internal/store"
	"evorec/internal/synth"
)

// testChain generates a shared-dict evolving dataset for store tests.
func testChain(t testing.TB, steps int) *rdf.VersionStore {
	t.Helper()
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 60, Locality: 0.8}, steps, 7)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

// assertSameVersions checks that got reproduces want version by version.
func assertSameVersions(t *testing.T, want, got *rdf.VersionStore) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("reloaded %d versions, want %d", got.Len(), want.Len())
	}
	for i, id := range want.IDs() {
		if got.IDs()[i] != id {
			t.Fatalf("version %d ID = %q, want %q", i, got.IDs()[i], id)
		}
		wv, _ := want.Get(id)
		gv, _ := got.Get(id)
		if gv.Graph.Len() != wv.Graph.Len() {
			t.Fatalf("version %s: %d triples, want %d", id, gv.Graph.Len(), wv.Graph.Len())
		}
		// Term-level diff works across the distinct dictionaries.
		if d := delta.Compute(wv.Graph, gv.Graph); !d.IsEmpty() {
			t.Fatalf("version %s differs after round-trip: %d changes", id, d.Size())
		}
	}
}

func TestStoreRoundTripAllPolicies(t *testing.T) {
	vs := testChain(t, 4)
	for _, pol := range []store.Policy{store.FullSnapshots, store.DeltaChain, store.Hybrid} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			man, err := store.Save(dir, vs, store.Options{Policy: pol, SnapshotEvery: 2})
			if err != nil {
				t.Fatal(err)
			}
			if man.Format != store.FormatV1 || len(man.Entries) != vs.Len() {
				t.Fatalf("manifest = %+v", man)
			}
			ds, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			back, err := ds.VersionStore()
			if err != nil {
				t.Fatal(err)
			}
			assertSameVersions(t, vs, back)
			// Every reloaded graph shares one dictionary, so the delta
			// engine keeps its ID fast path after a round-trip.
			for _, id := range back.IDs() {
				v, _ := back.Get(id)
				if v.Graph.Dict() != ds.Dict() {
					t.Fatalf("version %s does not share the dataset dictionary", id)
				}
			}
			if _, ok := delta.ComputeIDs(back.At(0).Graph, back.At(back.Len()-1).Graph); !ok {
				t.Fatal("reloaded graphs must support ID-level diffing")
			}
		})
	}
}

func TestStoreStableIDs(t *testing.T) {
	vs := testChain(t, 2)
	dict := vs.At(0).Graph.Dict()
	dir := t.TempDir()
	if _, err := store.Save(dir, vs, store.Options{Policy: store.DeltaChain}); err != nil {
		t.Fatal(err)
	}
	ds, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dict().Len() != dict.Len() {
		t.Fatalf("reloaded dictionary has %d entries, want %d", ds.Dict().Len(), dict.Len())
	}
	for id := rdf.TermID(1); int(id) < dict.Len(); id++ {
		if ds.Dict().TermOf(id) != dict.TermOf(id) {
			t.Fatalf("term %d = %v, want %v (IDs must be stable across reload)",
				id, ds.Dict().TermOf(id), dict.TermOf(id))
		}
	}
}

func TestStoreLazyRandomAccess(t *testing.T) {
	vs := testChain(t, 5)
	dir := t.TempDir()
	if _, err := store.Save(dir, vs, store.Options{Policy: store.Hybrid, SnapshotEvery: 3}); err != nil {
		t.Fatal(err)
	}
	ds, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Ask for a middle version directly — no other version is materialized.
	mid := ds.Len() / 2
	g, err := ds.GraphAt(mid)
	if err != nil {
		t.Fatal(err)
	}
	want := vs.At(mid).Graph
	if g.Len() != want.Len() || !delta.Compute(want, g).IsEmpty() {
		t.Fatalf("random access to version %d reconstructed the wrong graph", mid)
	}
	// Same request again is a cache hit returning the same graph.
	g2, err := ds.GraphAt(mid)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatal("second access must hit the LRU and return the cached graph")
	}
	if hits, _ := ds.CacheStats(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	// Access by ID agrees with access by index.
	byID, err := ds.Graph(ds.IDs()[mid])
	if err != nil {
		t.Fatal(err)
	}
	if byID != g {
		t.Fatal("Graph(id) and GraphAt(i) must resolve to the same cached graph")
	}
	if _, err := ds.Graph("no-such-version"); err == nil {
		t.Fatal("unknown version ID must error")
	}
	if _, err := ds.GraphAt(ds.Len()); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	vs := testChain(t, 6)
	dir := t.TempDir()
	if _, err := store.Save(dir, vs, store.Options{Policy: store.FullSnapshots}); err != nil {
		t.Fatal(err)
	}
	ds, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetCacheCap(1); err != nil {
		t.Fatal(err)
	}
	g0, err := ds.GraphAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.GraphAt(1); err != nil {
		t.Fatal(err)
	}
	// Version 0 was evicted; a fresh reconstruction is a different object
	// with the same content.
	g0again, err := ds.GraphAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if g0again == g0 {
		t.Fatal("cap-1 LRU must have evicted version 0")
	}
	if !delta.Compute(g0, g0again).IsEmpty() {
		t.Fatal("evicted and reconstructed graphs must be equal")
	}
}

func TestStoreForeignDictGraphs(t *testing.T) {
	// Each version built with its own dictionary: Save must re-encode them
	// against one dict and still round-trip exactly.
	vs := rdf.NewVersionStore()
	g1 := rdf.NewGraph()
	g1.Add(rdf.T(rdf.NewIRI("ex:a"), rdf.NewIRI("ex:p"), rdf.NewLiteral("x")))
	g1.Add(rdf.T(rdf.NewIRI("ex:a"), rdf.NewIRI("ex:p"), rdf.NewTypedLiteral("1", "ex:int")))
	g2 := rdf.NewGraph()
	g2.Add(rdf.T(rdf.NewIRI("ex:a"), rdf.NewIRI("ex:p"), rdf.NewLiteral("x")))
	g2.Add(rdf.T(rdf.NewIRI("ex:b"), rdf.NewIRI("ex:q"), rdf.NewLangLiteral("hi", "en")))
	if err := vs.Add(&rdf.Version{ID: "v1", Graph: g1}); err != nil {
		t.Fatal(err)
	}
	if err := vs.Add(&rdf.Version{ID: "v2", Graph: g2}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := store.Save(dir, vs, store.Options{Policy: store.DeltaChain}); err != nil {
		t.Fatal(err)
	}
	ds, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ds.VersionStore()
	if err != nil {
		t.Fatal(err)
	}
	assertSameVersions(t, vs, back)
}

func TestStoreRejectsEscapingFileNames(t *testing.T) {
	// A crafted manifest must not be able to point reads outside the store
	// directory.
	vs := testChain(t, 1)
	dir := t.TempDir()
	if _, err := store.Save(dir, vs, store.Options{Policy: store.FullSnapshots}); err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	evil := strings.Replace(string(data), `"dict.seg"`, `"../dict.seg"`, 1)
	if evil == string(data) {
		t.Fatal("fixture: dict file name not found in manifest")
	}
	if err := os.WriteFile(manPath, []byte(evil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir); err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("manifest with escaping file name must be rejected, got %v", err)
	}
	if _, err := store.Inspect(dir); err == nil {
		t.Fatal("Inspect must reject an escaping manifest too")
	}
	// A version ID that would escape as a file name is refused at save time.
	bad := rdf.NewVersionStore()
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.NewIRI("ex:a"), rdf.NewIRI("ex:p"), rdf.NewIRI("ex:b")))
	if err := bad.Add(&rdf.Version{ID: "../v1", Graph: g}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(t.TempDir(), bad, store.Options{}); err == nil {
		t.Fatal("version ID with a path separator must fail to save")
	}
}

func TestStoreEmpty(t *testing.T) {
	if _, err := store.Save(t.TempDir(), rdf.NewVersionStore(), store.Options{}); err == nil {
		t.Fatal("saving an empty version store must error")
	}
	if _, err := store.Open(t.TempDir()); err == nil {
		t.Fatal("opening a directory without a manifest must error")
	}
}

// corrupt flips one byte at off (negative: from the end) in the file.
func corrupt(t *testing.T, path string, off int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += len(data)
	}
	data[off] ^= 0x5a
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCorruptionDetected(t *testing.T) {
	vs := testChain(t, 2)
	save := func(t *testing.T) string {
		dir := t.TempDir()
		if _, err := store.Save(dir, vs, store.Options{Policy: store.DeltaChain}); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	t.Run("dict payload", func(t *testing.T) {
		dir := save(t)
		corrupt(t, filepath.Join(dir, "dict.seg"), 40)
		if _, err := store.Open(dir); err == nil {
			t.Fatal("corrupted dictionary must fail to open")
		}
	})
	t.Run("snapshot payload", func(t *testing.T) {
		dir := save(t)
		corrupt(t, filepath.Join(dir, "v1.snap"), 40)
		ds, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.GraphAt(0); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corrupted snapshot must fail the checksum, got %v", err)
		}
	})
	t.Run("delta truncated", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, "v2.delta")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		ds, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.GraphAt(1); err == nil {
			t.Fatal("truncated delta must fail to decode")
		}
	})
	t.Run("wrong kind", func(t *testing.T) {
		dir := save(t)
		// Swap the delta segment in place of the snapshot.
		data, err := os.ReadFile(filepath.Join(dir, "v2.delta"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "v1.snap"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		ds, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.GraphAt(0); err == nil || !strings.Contains(err.Error(), "kind") {
			t.Fatalf("kind mismatch must be detected, got %v", err)
		}
	})
}

func TestInspect(t *testing.T) {
	vs := testChain(t, 3)
	dir := t.TempDir()
	man, err := store.Save(dir, vs, store.Options{Policy: store.Hybrid, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	info, err := store.Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != store.FormatV1 || info.Policy != "hybrid" {
		t.Fatalf("info header = %+v", info)
	}
	if info.Versions != vs.Len() || info.Snapshots+info.Deltas != vs.Len() {
		t.Fatalf("info counts = %+v", info)
	}
	if len(info.Segments) != len(man.Entries)+1 {
		t.Fatalf("info has %d segments, want %d", len(info.Segments), len(man.Entries)+1)
	}
	for _, s := range info.Segments {
		if !s.OK {
			t.Fatalf("segment %s failed verification: %s", s.File, s.Err)
		}
	}
	usage, err := store.DiskUsage(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	if usage != info.TotalBytes {
		t.Fatalf("DiskUsage = %d, Inspect total = %d", usage, info.TotalBytes)
	}
	// A corrupted segment is reported, not fatal.
	corrupt(t, filepath.Join(dir, "v1.snap"), -1)
	info, err = store.Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range info.Segments {
		if s.File == "v1.snap" {
			found = true
			if s.OK || s.Err == "" {
				t.Fatal("corrupted segment must be reported as not OK")
			}
		}
	}
	if !found {
		t.Fatal("v1.snap missing from inspection")
	}
}

func TestSetCacheCapValidates(t *testing.T) {
	vs := testChain(t, 2)
	dir := t.TempDir()
	if _, err := store.Save(dir, vs, store.Options{}); err != nil {
		t.Fatal(err)
	}
	ds, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{0, -3} {
		if err := ds.SetCacheCap(bad); err == nil {
			t.Fatalf("SetCacheCap(%d) must be rejected", bad)
		}
	}
	if got := ds.CacheCap(); got != store.DefaultCacheCap {
		t.Fatalf("rejected caps must not change the capacity: got %d, want %d",
			got, store.DefaultCacheCap)
	}
	if err := ds.SetCacheCap(2); err != nil {
		t.Fatal(err)
	}
	if got := ds.CacheCap(); got != 2 {
		t.Fatalf("CacheCap = %d, want 2", got)
	}
}

// TestStoreAppend commits versions onto an existing store at runtime and
// verifies the appended chain round-trips bit-identically under each policy,
// including a version that interns brand-new terms (forcing the dictionary
// segment rewrite).
func TestStoreAppend(t *testing.T) {
	vs := testChain(t, 5) // v1..v6
	full := vs.Len()
	for _, pol := range []store.Policy{store.FullSnapshots, store.DeltaChain, store.Hybrid} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			// Seed the store with the first three versions only.
			seed := rdf.NewVersionStore()
			for i := 0; i < 3; i++ {
				if err := seed.Add(vs.At(i)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := store.Save(dir, seed, store.Options{Policy: pol, SnapshotEvery: 2}); err != nil {
				t.Fatal(err)
			}
			ds, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			// Commit the remaining versions one by one, re-encoded into the
			// dataset dictionary (they come from a foreign dict: the
			// generator's), plus one extra hand-built version with new terms.
			for i := 3; i < full; i++ {
				v := vs.At(i)
				if _, err := ds.Append(v); err != nil {
					t.Fatalf("append %s: %v", v.ID, err)
				}
			}
			last, err := ds.GraphAt(full - 1)
			if err != nil {
				t.Fatal(err)
			}
			extra := last.Clone()
			extra.Add(rdf.T(rdf.ResourceIRI("appended-subject"), rdf.RDFSLabel,
				rdf.NewLiteral("appended at runtime")))
			entry, err := ds.Append(&rdf.Version{ID: "v-extra", Graph: extra})
			if err != nil {
				t.Fatal(err)
			}
			if entry.ID != "v-extra" {
				t.Fatalf("entry ID = %q", entry.ID)
			}
			if pol == store.DeltaChain && entry.Kind != "delta" {
				t.Fatalf("delta_chain append produced kind %q", entry.Kind)
			}
			if pol == store.FullSnapshots && entry.Kind != "snapshot" {
				t.Fatalf("full_snapshots append produced kind %q", entry.Kind)
			}
			// Duplicate and invalid IDs are rejected.
			if _, err := ds.Append(&rdf.Version{ID: "v-extra", Graph: extra}); err == nil {
				t.Fatal("duplicate version ID must be rejected")
			}
			if _, err := ds.Append(&rdf.Version{ID: "../evil", Graph: extra}); err == nil {
				t.Fatal("path-escaping version ID must be rejected")
			}
			// A fresh Open sees the full appended chain, identical contents.
			back, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if back.Len() != full+1 {
				t.Fatalf("reopened store has %d versions, want %d", back.Len(), full+1)
			}
			want := rdf.NewVersionStore()
			for i := 0; i < full; i++ {
				if err := want.Add(vs.At(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := want.Add(&rdf.Version{ID: "v-extra", Graph: extra}); err != nil {
				t.Fatal(err)
			}
			got, err := back.VersionStore()
			if err != nil {
				t.Fatal(err)
			}
			assertSameVersions(t, want, got)
			// The hybrid cadence persists across append: with SnapshotEvery=2
			// every even index is a snapshot.
			if pol == store.Hybrid {
				for i, e := range back.Manifest().Entries {
					wantKind := "delta"
					if i%2 == 0 {
						wantKind = "snapshot"
					}
					if e.Kind != wantKind {
						t.Fatalf("hybrid entry %d kind = %q, want %q", i, e.Kind, wantKind)
					}
				}
			}
		})
	}
}

// TestStoreOpenToleratesSupersetDict simulates the append crash window:
// the rewritten dictionary segment has landed (append-only superset) but
// the manifest rename did not. Open must accept the extra terms — IDs are
// stable and every decoder bounds-checks — while still rejecting a
// dictionary with FEWER terms than recorded.
func TestStoreOpenToleratesSupersetDict(t *testing.T) {
	vs := testChain(t, 2)
	dir := t.TempDir()
	man, err := store.Save(dir, vs, store.Options{Policy: store.DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	// Manifest claims one term less than the dictionary holds: the state a
	// crash between the dict and manifest renames leaves behind.
	fewer := strings.Replace(string(data),
		fmt.Sprintf(`"terms": %d`, man.Terms),
		fmt.Sprintf(`"terms": %d`, man.Terms-1), 1)
	if fewer == string(data) {
		t.Fatal("fixture: terms count not found in manifest")
	}
	if err := os.WriteFile(manPath, []byte(fewer), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := store.Open(dir)
	if err != nil {
		t.Fatalf("superset dictionary must be tolerated, got %v", err)
	}
	back, err := ds.VersionStore()
	if err != nil {
		t.Fatal(err)
	}
	assertSameVersions(t, vs, back)
	// The inverse — dictionary missing recorded terms — is corruption.
	more := strings.Replace(string(data),
		fmt.Sprintf(`"terms": %d`, man.Terms),
		fmt.Sprintf(`"terms": %d`, man.Terms+1), 1)
	if err := os.WriteFile(manPath, []byte(more), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir); err == nil {
		t.Fatal("dictionary with fewer terms than recorded must be rejected")
	}
}
