package store

import "time"

// Telemetry is the narrow sink a Dataset reports its I/O events through.
// The store declares the contract and never imports an implementation —
// internal/obs provides one (obs.StoreSink) that satisfies it
// structurally, so this package stays free of any HTTP or metrics
// dependency. Implementations must be safe for concurrent use by the
// goroutine driving the dataset and cheap enough to sit on the WAL path;
// a nil Telemetry (the default) disables instrumentation entirely.
type Telemetry interface {
	// ObserveWALAppend reports one group append: framed bytes logged and
	// the whole append latency, fsync included.
	ObserveWALAppend(bytes int, d time.Duration)
	// ObserveWALFsync reports the fsync alone — the durability floor every
	// acknowledged commit pays.
	ObserveWALFsync(d time.Duration)
	// ObserveCheckpoint reports a completed checkpoint and what triggered
	// it: "replay" (WAL recovery at open), "wal-bound" (size bound hit
	// inside Append), "close", or a caller-supplied reason such as "idle".
	ObserveCheckpoint(reason string, d time.Duration)
	// AddSegmentBytes reports segment-file bytes written (snapshots,
	// deltas, dictionary rewrites).
	AddSegmentBytes(n int64)
	// ObserveCacheAccess reports one graph-LRU probe during version
	// materialization.
	ObserveCacheAccess(hit bool)
	// SetWALSize tracks the WAL's current size after appends and resets.
	SetWALSize(n int64)
}

// SetTelemetry installs the dataset's telemetry sink (nil disables). Call
// it right after Open, before the dataset serves traffic: the handle is
// not synchronized, so installing a sink mid-flight races the write path.
func (ds *Dataset) SetTelemetry(t Telemetry) {
	ds.tel = t
	ds.wal.tel = t
}

// Checkpoint trigger reasons reported through Telemetry.
const (
	// CheckpointReplay is WAL recovery at open.
	CheckpointReplay = "replay"
	// CheckpointWALBound is the in-Append WAL size bound.
	CheckpointWALBound = "wal-bound"
	// CheckpointExplicit is a direct Checkpoint() call.
	CheckpointExplicit = "explicit"
	// CheckpointClose is the final checkpoint inside Close.
	CheckpointClose = "close"
	// CheckpointIdle is a background checkpoint taken while the commit
	// queue is quiet (the service's group committer uses it).
	CheckpointIdle = "idle"
)
