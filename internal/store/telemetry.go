package store

import (
	"context"
	"time"
)

// Telemetry is the narrow sink a Dataset reports its I/O events through.
// The store declares the contract and never imports an implementation —
// internal/obs provides one (obs.StoreSink) that satisfies it
// structurally, so this package stays free of any HTTP or metrics
// dependency. Implementations must be safe for concurrent use by the
// goroutine driving the dataset and cheap enough to sit on the WAL path;
// a nil Telemetry (the default) disables instrumentation entirely.
type Telemetry interface {
	// ObserveWALAppend reports one group append: framed bytes logged and
	// the whole append latency, fsync included.
	ObserveWALAppend(bytes int, d time.Duration)
	// ObserveWALFsync reports the fsync alone — the durability floor every
	// acknowledged commit pays.
	ObserveWALFsync(d time.Duration)
	// ObserveCheckpoint reports a completed checkpoint and what triggered
	// it: "replay" (WAL recovery at open), "wal-bound" (size bound hit
	// inside Append), "close", or a caller-supplied reason such as "idle".
	ObserveCheckpoint(reason string, d time.Duration)
	// AddSegmentBytes reports segment-file bytes written (snapshots,
	// deltas, dictionary rewrites).
	AddSegmentBytes(n int64)
	// ObserveCacheAccess reports one graph-LRU probe during version
	// materialization.
	ObserveCacheAccess(hit bool)
	// SetWALSize tracks the WAL's current size after appends and resets.
	SetWALSize(n int64)
}

// SetTelemetry installs the dataset's telemetry sink (nil disables). Call
// it right after Open, before the dataset serves traffic: the handle is
// not synchronized, so installing a sink mid-flight races the write path.
func (ds *Dataset) SetTelemetry(t Telemetry) {
	ds.tel = t
	ds.wal.tel = t
}

// Spanner opens tracing spans around the store's I/O phases — the append
// encode, the WAL write and its fsync, checkpoints, LRU-miss
// materialization. Like Telemetry, the store declares the contract and
// internal/obs satisfies it structurally (obs.ChildSpanner), so the
// storage layer never imports the tracing substrate. StartSpan returns a
// context carrying the child span and a completion callback taking
// alternating key/value attribute pairs; on a context with no sampled
// trace, implementations return the input context and a shared no-op
// callback, so the disabled path costs one branch and zero allocations.
type Spanner interface {
	StartSpan(ctx context.Context, name string) (context.Context, func(attrs ...string))
}

// SetSpanner installs the dataset's span source (nil disables). The same
// install-before-traffic rule as SetTelemetry applies.
func (ds *Dataset) SetSpanner(s Spanner) {
	ds.spans = s
	ds.wal.spans = s
}

// nopSpanEnd is the completion callback startSpan hands out when no
// Spanner is installed.
var nopSpanEnd = func(...string) {}

// startSpan opens a child span when a Spanner is installed, else a no-op.
func startSpan(s Spanner, ctx context.Context, name string) (context.Context, func(attrs ...string)) {
	if s == nil {
		return ctx, nopSpanEnd
	}
	return s.StartSpan(ctx, name)
}

// Checkpoint trigger reasons reported through Telemetry.
const (
	// CheckpointReplay is WAL recovery at open.
	CheckpointReplay = "replay"
	// CheckpointWALBound is the in-Append WAL size bound.
	CheckpointWALBound = "wal-bound"
	// CheckpointExplicit is a direct Checkpoint() call.
	CheckpointExplicit = "explicit"
	// CheckpointClose is the final checkpoint inside Close.
	CheckpointClose = "close"
	// CheckpointIdle is a background checkpoint taken while the commit
	// queue is quiet (the service's group committer uses it).
	CheckpointIdle = "idle"
	// CheckpointHeal is the recovery checkpoint a Heal of a poisoned
	// handle runs to re-establish a durable, WAL-empty state.
	CheckpointHeal = "heal"
)
