package store

import (
	"fmt"

	"evorec/internal/delta"
	"evorec/internal/rdf"
)

// Append persists v as the next version of the stored chain and registers it
// in the open handle, so a long-lived service can commit versions at runtime
// without rewriting the store. The segment kind follows the manifest's
// recorded policy and snapshot cadence: under DeltaChain the new version is
// encoded as a delta over the current tail (materialized through the LRU,
// where a live service usually has it cached), under Hybrid a snapshot lands
// every SnapshotEvery versions, and under FullSnapshots every commit is a
// snapshot.
//
// The graph is re-encoded against the dataset dictionary (a no-op when it
// already shares it — the normal case for graphs parsed via the dataset's
// Dict); because the dictionary is append-only, the dict segment is
// rewritten to pick up newly interned terms without disturbing existing IDs.
// The manifest is written last: a crash mid-append can leave an orphaned
// segment file behind, but never a manifest pointing at missing or
// half-written segments.
func (ds *Dataset) Append(v *rdf.Version) (*Entry, error) {
	if v == nil || v.ID == "" {
		return nil, fmt.Errorf("store: version must have a non-empty ID")
	}
	if v.Graph == nil {
		return nil, fmt.Errorf("store: version %q must have a graph", v.ID)
	}
	if _, dup := ds.idx[v.ID]; dup {
		return nil, fmt.Errorf("store: version %q already stored", v.ID)
	}
	if !validFileName(v.ID + ".x") {
		return nil, fmt.Errorf("store: version ID %q cannot name a segment file", v.ID)
	}
	pol, err := ParsePolicy(ds.man.Policy)
	if err != nil {
		return nil, err
	}
	every := ds.man.SnapshotEvery
	if every <= 0 {
		every = 4
	}
	i := len(ds.man.Entries)
	cur := encodeGraph(ds.dict, v.Graph)
	snapshot := i == 0 || pol == FullSnapshots || (pol == Hybrid && i%every == 0)
	e := Entry{ID: v.ID}
	var buf []byte
	if snapshot {
		e.Kind = kindNameSnapshot
		e.File = v.ID + ".snap"
		e.Triples = len(cur)
		buf = appendSnapshot(buf, cur)
	} else {
		prev, err := ds.GraphAt(i - 1)
		if err != nil {
			return nil, fmt.Errorf("store: materializing tail for append: %w", err)
		}
		added, deleted := delta.DiffSortedIDs(encodeGraph(ds.dict, prev), cur)
		e.Kind = kindNameDelta
		e.File = v.ID + ".delta"
		e.Added = len(added)
		e.Deleted = len(deleted)
		buf = appendDelta(buf, added, deleted)
	}
	kind := kindSnapshot
	if !snapshot {
		kind = kindDelta
	}
	size, err := writeSegment(joinPath(ds.dir, e.File), kind, buf)
	if err != nil {
		return nil, err
	}
	e.Bytes = size
	dictBytes, err := writeSegment(joinPath(ds.dir, ds.man.Dict.File), kindDict, appendDict(nil, ds.dict))
	if err != nil {
		return nil, err
	}
	man := *ds.man
	man.Entries = append(append([]Entry(nil), ds.man.Entries...), e)
	man.Terms = ds.dict.Len() - 1
	man.Dict.Bytes = dictBytes
	if err := writeManifest(ds.dir, &man); err != nil {
		return nil, err
	}
	ds.man = &man
	ds.idx[v.ID] = i
	if v.Graph.Dict() == ds.dict {
		// The committed graph is already in dataset encoding; cache it so an
		// immediately following delta append or pair analysis is free.
		ds.lru.put(i, v.Graph)
	}
	return &man.Entries[i], nil
}
