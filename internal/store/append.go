package store

import (
	"context"
	"fmt"
	"strconv"

	"evorec/internal/delta"
	"evorec/internal/rdf"
)

// Append persists v as the next version of the stored chain; it is
// AppendBatch of a single version.
func (ds *Dataset) Append(v *rdf.Version) (*Entry, error) {
	entries, err := ds.AppendBatch([]*rdf.Version{v})
	if err != nil {
		return nil, err
	}
	return entries[0], nil
}

// AppendBatch is AppendBatchCtx without a tracing context.
func (ds *Dataset) AppendBatch(vs []*rdf.Version) ([]*Entry, error) {
	return ds.AppendBatchCtx(context.Background(), vs)
}

// AppendBatchCtx persists vs, in order, as the next versions of the stored
// chain and registers them in the open handle. This is the group-commit
// primitive: the whole batch becomes durable through ONE write-ahead-log
// write and ONE fsync, however many versions it carries, so N concurrent
// committers coalesced into a batch pay one disk round-trip instead of N.
//
// The sequence is WAL-first:
//
//  1. Validate and encode every version, building one WAL record per commit
//     (segment payload, dictionary tail, chain parent).
//  2. Append all records to the WAL and fsync it — the acknowledgment
//     point. When AppendBatch returns nil, the batch survives any crash.
//  3. Apply: write each segment file (atomic rename, no fsync yet) and
//     extend the in-memory manifest. Durability for these files comes from
//     the WAL until a later Checkpoint fsyncs them and truncates the log;
//     the on-disk manifest is deliberately NOT rewritten here, so a crash
//     can never leave a manifest referencing unsynced segments.
//
// Segment kinds follow the manifest's recorded policy and snapshot cadence
// exactly as before: under DeltaChain each version is a delta over its
// predecessor (the previous batch element, or the current chain tail
// materialized through the LRU), under Hybrid a snapshot lands every
// SnapshotEvery versions, and under FullSnapshots every commit is a
// snapshot. Each graph is re-encoded against the dataset dictionary (a
// no-op when it already shares it); newly interned terms ride in the WAL
// record's dictionary tail and reach the dict segment at checkpoint.
//
// Any error from the WAL write onward poisons the handle (see Dataset): the
// batch's durability is then unknown or partial, and the only safe
// continuation is reopening the directory, which re-applies whatever the
// WAL acknowledged.
//
// When ctx carries a sampled trace, the whole batch is recorded as a
// "store.append" span nesting "store.encode" and the WAL's
// "wal.append"/"wal.fsync" spans.
func (ds *Dataset) AppendBatchCtx(ctx context.Context, vs []*rdf.Version) ([]*Entry, error) {
	if ds.failed != nil {
		return nil, ds.failed
	}
	if len(vs) == 0 {
		return nil, fmt.Errorf("store: empty append batch")
	}
	ctx, end := startSpan(ds.spans, ctx, "store.append")
	defer func() { end("versions", strconv.Itoa(len(vs))) }()
	pol, err := ParsePolicy(ds.man.Policy)
	if err != nil {
		return nil, err
	}
	every := ds.man.SnapshotEvery
	if every <= 0 {
		every = 4
	}
	seen := make(map[string]bool, len(vs))
	for _, v := range vs {
		if v == nil || v.ID == "" {
			return nil, fmt.Errorf("store: version must have a non-empty ID")
		}
		if v.Graph == nil {
			return nil, fmt.Errorf("store: version %q must have a graph", v.ID)
		}
		if _, dup := ds.idx[v.ID]; dup || seen[v.ID] {
			return nil, fmt.Errorf("store: version %q already stored", v.ID)
		}
		if !validFileName(v.ID + ".x") {
			return nil, fmt.Errorf("store: version ID %q cannot name a segment file", v.ID)
		}
		seen[v.ID] = true
	}

	// Encode the whole batch and build its WAL records. Interning into the
	// dataset dictionary before the WAL lands is safe: the dict is
	// append-only, and a crash here just leaves unused tail terms in memory.
	ectx, encEnd := startSpan(ds.spans, ctx, "store.encode")
	base := len(ds.man.Entries)
	parent := ""
	if base > 0 {
		parent = ds.man.Entries[base-1].ID
	}
	var prevIDs []rdf.IDTriple
	entries := make([]Entry, len(vs))
	payloads := make([][]byte, len(vs))
	var framed []byte
	seq := ds.wal.seq
	covered := ds.dictCovered
	for k, v := range vs {
		i := base + k
		// The tail starts at the logged/durable watermark, not the current
		// dict size: graphs sharing the dict may have interned terms since
		// the last Append, and those must ride in this record too. The
		// watermark stays local until the WAL write succeeds — a validation
		// failure mid-batch must not strand unlogged terms below it.
		dictBase := covered
		cur := encodeGraph(ds.dict, v.Graph)
		snapshot := i == 0 || pol == FullSnapshots || (pol == Hybrid && i%every == 0)
		e := &entries[k]
		e.ID = v.ID
		var buf []byte
		segKind := kindSnapshot
		if snapshot {
			e.Kind = kindNameSnapshot
			e.File = v.ID + ".snap"
			e.Triples = len(cur)
			buf = appendSnapshot(buf, cur)
		} else {
			if prevIDs == nil {
				prev, err := ds.GraphAtCtx(ectx, i-1)
				if err != nil {
					encEnd()
					return nil, fmt.Errorf("store: materializing tail for append: %w", err)
				}
				prevIDs = encodeGraph(ds.dict, prev)
			}
			added, deleted := delta.DiffSortedIDs(prevIDs, cur)
			segKind = kindDelta
			e.Kind = kindNameDelta
			e.File = v.ID + ".delta"
			e.Added = len(added)
			e.Deleted = len(deleted)
			buf = appendDelta(buf, added, deleted)
		}
		tail := make([]rdf.Term, 0, ds.dict.Len()-1-dictBase)
		for id := dictBase + 1; id <= ds.dict.Len()-1; id++ {
			tail = append(tail, ds.dict.TermOf(rdf.TermID(id)))
		}
		seq++
		framed, err = appendWALRecord(framed, &walRecord{
			seq:      seq,
			parent:   parent,
			id:       v.ID,
			segKind:  segKind,
			dictBase: dictBase,
			dictTail: tail,
			payload:  buf,
		})
		if err != nil {
			encEnd()
			return nil, err
		}
		e.Bytes = int64(segHeaderLen + len(buf) + segTrailerLen)
		payloads[k] = buf
		covered = ds.dict.Len() - 1
		parent = v.ID
		prevIDs = cur
	}
	encEnd("versions", strconv.Itoa(len(vs)))

	// Acknowledgment point: one write, one fsync for the whole batch.
	if err := ds.wal.append(ctx, framed); err != nil {
		ds.fail(err)
		return nil, err
	}
	ds.wal.seq = seq
	ds.dictCovered = covered

	// Apply. Failures past this point are sticky but the commits are already
	// durable — recovery replays them from the WAL.
	out := make([]*Entry, len(vs))
	man := *ds.man
	man.Entries = append(append([]Entry(nil), ds.man.Entries...), entries...)
	for k, v := range vs {
		e := &man.Entries[base+k]
		segKind := kindSnapshot
		if e.Kind == kindNameDelta {
			segKind = kindDelta
		}
		path := joinPath(ds.dir, e.File)
		if _, err := writeSegment(ds.fsys, path, segKind, payloads[k], false); err != nil {
			ds.fail(err)
			return nil, err
		}
		if ds.tel != nil {
			ds.tel.AddSegmentBytes(e.Bytes)
		}
		ds.pending[path] = true
		ds.idx[v.ID] = base + k
		out[k] = e
	}
	man.Terms = ds.dict.Len() - 1
	ds.man = &man
	for k, v := range vs {
		if v.Graph.Dict() == ds.dict {
			// The committed graph is already in dataset encoding; cache it so
			// an immediately following delta append or pair analysis is free.
			ds.lru.put(base+k, v.Graph)
		}
	}
	if ds.wal.size >= DefaultWALCheckpointBytes {
		if err := ds.CheckpointReasonCtx(ctx, CheckpointWALBound); err != nil {
			return nil, err
		}
	}
	return out, nil
}
