package store

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"evorec/internal/rdf"
	"evorec/internal/store/vfs"
)

// DefaultCacheCap is the Dataset's default LRU capacity: big enough to make
// walking a consecutive pair or small window free, small enough that a long
// chain never sits fully materialized in RAM.
const DefaultCacheCap = 4

// Dataset is a lazy handle over a stored version chain. Open decodes only
// the manifest and the string table; graphs materialize on first access and
// are kept in a small LRU, so asking for version k costs one snapshot decode
// plus the delta replays since the nearest snapshot (or cached graph) — not
// a load of the whole chain.
//
// Graphs returned by Graph/GraphAt share the dataset's Dict and are cached;
// treat them as immutable (the VersionStore convention). A Dataset is not
// safe for concurrent use.
//
// Once any write-path operation fails, the handle is poisoned: every further
// Append/Checkpoint returns the original error (reads keep working from
// memory). A half-applied commit must not be built upon — reopening the
// directory runs WAL recovery and yields a clean handle.
type Dataset struct {
	dir  string
	fsys vfs.FS
	man  *Manifest
	dict *rdf.Dict
	idx  map[string]int
	lru  lruCache

	wal *wal
	// tel is the optional telemetry sink (nil = uninstrumented); see
	// SetTelemetry.
	tel Telemetry
	// spans is the optional tracing span source (nil = untraced); see
	// SetSpanner.
	spans Spanner
	// pending holds segment paths written since the last checkpoint, still
	// owed an fsync before the manifest may reference them durably.
	pending map[string]bool
	// dictCovered is the dictionary watermark already durable or WAL-logged.
	// Terms above it exist only in memory (graphs sharing the dict may intern
	// between Appends), so the next WAL record's tail starts here — not at
	// the dict size when Append happens to run.
	dictCovered int
	failed      error
}

// Open reads dir's manifest and dictionary segment and returns a lazy
// dataset handle with the default cache capacity. It is OpenFS on the real
// filesystem.
func Open(dir string) (*Dataset, error) { return OpenFS(vfs.OS{}, dir) }

// OpenFS opens the store at dir on the given filesystem. Any WAL tail past
// the manifest is replayed: commits acknowledged before a crash but never
// checkpointed are re-applied (segments rewritten, dictionary re-interned,
// manifest rebuilt) and the store checkpointed, so the handle always starts
// from a durable, WAL-empty state.
func OpenFS(fsys vfs.FS, dir string) (*Dataset, error) {
	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	payload, err := readSegment(fsys, dir, man.Dict.File, kindDict)
	if err != nil {
		return nil, err
	}
	dict, err := decodeDict(man.Dict.File, payload)
	if err != nil {
		return nil, err
	}
	// The dictionary may hold MORE terms than the manifest records: a crash
	// between the checkpoint's dict-segment rename and its manifest write
	// leaves a superset dictionary under the old manifest — harmless, since
	// IDs are append-only and every decoder bounds-checks against the
	// dictionary it was handed. Fewer terms than recorded means real
	// corruption.
	if dict.Len()-1 < man.Terms {
		return nil, fmt.Errorf("store: dictionary has %d terms, manifest says %d",
			dict.Len()-1, man.Terms)
	}
	idx := make(map[string]int, len(man.Entries))
	for i, e := range man.Entries {
		if _, dup := idx[e.ID]; dup {
			return nil, fmt.Errorf("store: duplicate version ID %q in manifest", e.ID)
		}
		idx[e.ID] = i
	}
	ds := &Dataset{
		dir:     dir,
		fsys:    fsys,
		man:     man,
		dict:    dict,
		idx:     idx,
		lru:     lruCache{cap: DefaultCacheCap},
		wal:     &wal{fsys: fsys, dir: dir},
		pending: make(map[string]bool),
	}
	// Everything in the loaded dictionary is durable (the dict segment is
	// only ever written with full fsync discipline); replay may raise the
	// watermark further as it re-interns record tails.
	ds.dictCovered = dict.Len() - 1
	if err := ds.replayWAL(); err != nil {
		return nil, err
	}
	return ds, nil
}

// replayWAL applies the WAL's readable records past the manifest, then
// checkpoints. Records whose version the manifest already holds were applied
// before the crash and are skipped; a record whose parent is not the current
// chain tail ends replay (the durable state never reached it).
func (ds *Dataset) replayWAL() error {
	data, err := ds.wal.read()
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	recs, _, err := scanWAL(data)
	if err != nil {
		return err
	}
	applied := 0
	for _, rec := range recs {
		ds.wal.seq = rec.seq
		if _, done := ds.idx[rec.id]; done {
			continue
		}
		tail := ""
		if n := len(ds.man.Entries); n > 0 {
			tail = ds.man.Entries[n-1].ID
		}
		if rec.parent != tail {
			break
		}
		if err := ds.applyWALRecord(rec); err != nil {
			return err
		}
		applied++
	}
	if applied == 0 && len(recs) == 0 {
		// Pure torn tail: nothing readable, nothing to redo. Leave the file
		// for the first append's reset.
		return nil
	}
	// Everything readable is applied (or was already durable): make it all
	// durable and truncate the log.
	return ds.checkpointTimed(CheckpointReplay)
}

// applyWALRecord redoes one commit from its WAL record: re-interns the
// record's dictionary tail (verifying the IDs land exactly where the writer
// assigned them), validates the segment payload, writes the segment file,
// and extends the in-memory manifest.
func (ds *Dataset) applyWALRecord(rec *walRecord) error {
	if rec.dictBase > ds.dict.Len()-1 {
		return fmt.Errorf("store: WAL record %q: dictionary base %d past dictionary size %d",
			rec.id, rec.dictBase, ds.dict.Len()-1)
	}
	for j, t := range rec.dictTail {
		want := rdf.TermID(rec.dictBase + 1 + j)
		if got := ds.dict.Intern(t); got != want {
			return fmt.Errorf("store: WAL record %q: dictionary tail term %d interned as ID %d, want %d",
				rec.id, j, got, want)
		}
	}
	if covered := rec.dictBase + len(rec.dictTail); covered > ds.dictCovered {
		ds.dictCovered = covered
	}
	e := Entry{ID: rec.id}
	var err error
	switch rec.segKind {
	case kindSnapshot:
		e.Kind = kindNameSnapshot
		e.File = rec.id + ".snap"
		e.Triples, err = decodeSnapshot(e.File, rec.payload, ds.dict.Len(), func(rdf.IDTriple) {})
	case kindDelta:
		e.Kind = kindNameDelta
		e.File = rec.id + ".delta"
		e.Added, e.Deleted, err = decodeDelta(e.File, rec.payload, ds.dict.Len(),
			func(rdf.IDTriple) {}, func(rdf.IDTriple) {})
	}
	if err != nil {
		return fmt.Errorf("store: WAL record %q: %w", rec.id, err)
	}
	if !validFileName(e.File) {
		return fmt.Errorf("store: WAL record ID %q cannot name a segment file", rec.id)
	}
	path := joinPath(ds.dir, e.File)
	if e.Bytes, err = writeSegment(ds.fsys, path, rec.segKind, rec.payload, false); err != nil {
		return err
	}
	if ds.tel != nil {
		ds.tel.AddSegmentBytes(e.Bytes)
	}
	ds.pending[path] = true
	ds.idx[rec.id] = len(ds.man.Entries)
	ds.man.Entries = append(ds.man.Entries, e)
	return nil
}

// Checkpoint makes every commit since the last checkpoint durable and
// truncates the WAL: pending segments are fsynced, the directory synced so
// their names hold, the dictionary segment rewritten durably, and the
// manifest — the commit point — written with the full fsync discipline.
// After a clean checkpoint the WAL is redundant and reset. Idempotent and
// cheap when nothing is outstanding.
func (ds *Dataset) Checkpoint() error { return ds.CheckpointReason(CheckpointExplicit) }

// CheckpointReason is Checkpoint with the trigger reason that lands in the
// telemetry sink's duration histogram — service layers distinguish idle
// background checkpoints from size-bound ones when reading saturation.
func (ds *Dataset) CheckpointReason(reason string) error {
	return ds.CheckpointReasonCtx(context.Background(), reason)
}

// CheckpointReasonCtx is CheckpointReason recording a "store.checkpoint"
// span (attributed with the reason) when ctx carries a sampled trace —
// a wal-bound checkpoint triggered inside a commit shows up in that
// commit's timeline.
func (ds *Dataset) CheckpointReasonCtx(ctx context.Context, reason string) error {
	if ds.failed != nil {
		return ds.failed
	}
	if len(ds.pending) == 0 && ds.wal.size == 0 {
		return nil
	}
	_, end := startSpan(ds.spans, ctx, "store.checkpoint")
	err := ds.checkpointTimed(reason)
	end("reason", reason)
	if err != nil {
		ds.fail(err)
		return err
	}
	return nil
}

// checkpointTimed runs checkpoint and reports its duration under reason.
// Only completed checkpoints are observed: a failed one poisons the handle
// and its partial duration would skew the histogram it never finished.
func (ds *Dataset) checkpointTimed(reason string) error {
	start := time.Now()
	if err := ds.checkpoint(); err != nil {
		return err
	}
	if ds.tel != nil {
		ds.tel.ObserveCheckpoint(reason, time.Since(start))
		ds.tel.SetWALSize(ds.wal.size)
	}
	return nil
}

func (ds *Dataset) checkpoint() error {
	for path := range ds.pending {
		if err := ds.fsys.SyncPath(path); err != nil {
			return fmt.Errorf("store: syncing segment %s: %w", path, err)
		}
	}
	if err := ds.fsys.SyncDir(ds.dir); err != nil {
		return fmt.Errorf("store: syncing store directory: %w", err)
	}
	dictBytes, err := writeSegment(ds.fsys, joinPath(ds.dir, ds.man.Dict.File), kindDict,
		appendDict(nil, ds.dict), true)
	if err != nil {
		return err
	}
	if ds.tel != nil {
		ds.tel.AddSegmentBytes(dictBytes)
	}
	man := *ds.man
	man.Entries = append([]Entry(nil), ds.man.Entries...)
	man.Terms = ds.dict.Len() - 1
	man.Dict.Bytes = dictBytes
	if err := writeManifest(ds.fsys, ds.dir, &man, true); err != nil {
		return err
	}
	ds.man = &man
	ds.pending = make(map[string]bool)
	return ds.wal.reset()
}

// WALSize reports the write-ahead log's current byte size — what the next
// checkpoint will absorb. Service layers use it to pace background
// checkpoints.
func (ds *Dataset) WALSize() int64 { return ds.wal.size }

// Close checkpoints outstanding commits (unless the handle is poisoned) and
// releases the WAL handle. The dataset must not be used afterwards.
func (ds *Dataset) Close() error {
	var err error
	if ds.failed == nil && (len(ds.pending) > 0 || ds.wal.size > 0) {
		err = ds.CheckpointReason(CheckpointClose)
	}
	if cerr := ds.wal.close(); err == nil {
		err = cerr
	}
	return err
}

// fail poisons the handle after a write-path error.
func (ds *Dataset) fail(err error) {
	if ds.failed == nil {
		ds.failed = fmt.Errorf("store: dataset %s failed, reopen to recover: %w", ds.dir, err)
	}
}

// Failed returns the error that poisoned the handle, or nil while healthy.
func (ds *Dataset) Failed() error { return ds.failed }

// Heal attempts to clear a poisoned handle in place, without reopening the
// directory. It is safe because a failed batch is rejected before the
// in-memory manifest is swapped: ds.man always holds exactly the
// acknowledged prefix, whatever the failure half-applied elsewhere. Heal
// rebuilds the index and pending set from that manifest, then runs a full
// checkpoint — fsync the acknowledged segments, rewrite the dictionary
// segment, write the manifest durably, truncate the WAL. The truncation
// deliberately discards WAL records of commits whose apply failed after
// the WAL fsync: their callers were handed an error, and resurrecting them
// on a later replay would turn a reported failure into a silent commit.
//
// On success the handle appends and checkpoints again and every
// acknowledged commit is durable. If the underlying fault persists, the
// checkpoint's error is returned and the handle stays poisoned (with the
// new error), ready for another attempt.
func (ds *Dataset) Heal() error { return ds.HealCtx(context.Background()) }

// HealCtx is Heal recording a "store.heal" span when ctx carries a sampled
// trace — each supervised probe attempt shows up as its own span.
func (ds *Dataset) HealCtx(ctx context.Context) error {
	if ds.failed == nil {
		return nil
	}
	idx := make(map[string]int, len(ds.man.Entries))
	live := make(map[string]bool, len(ds.man.Entries))
	for i, e := range ds.man.Entries {
		idx[e.ID] = i
		live[joinPath(ds.dir, e.File)] = true
	}
	pending := make(map[string]bool, len(ds.pending))
	for path := range ds.pending {
		if live[path] {
			pending[path] = true
		}
	}
	ds.idx, ds.pending = idx, pending
	ds.failed = nil
	_, end := startSpan(ds.spans, ctx, "store.heal")
	err := ds.checkpointTimed(CheckpointHeal)
	end()
	if err != nil {
		ds.fail(err)
		return err
	}
	return nil
}

// SetCacheCap resizes the graph LRU, evicting down if needed. Capacities
// below 1 are rejected (a capacity of 0 would thrash every reconstruction),
// so callers wiring user input through — flags, HTTP parameters — surface a
// clear error instead of a silently clamped value.
func (ds *Dataset) SetCacheCap(n int) error {
	if n < 1 {
		return fmt.Errorf("store: cache capacity must be >= 1, got %d", n)
	}
	ds.lru.cap = n
	ds.lru.evict()
	return nil
}

// CacheCap returns the graph LRU's current capacity.
func (ds *Dataset) CacheCap() int { return ds.lru.cap }

// Len returns the number of stored versions.
func (ds *Dataset) Len() int { return len(ds.man.Entries) }

// IDs returns the version IDs in evolution order.
func (ds *Dataset) IDs() []string {
	out := make([]string, len(ds.man.Entries))
	for i, e := range ds.man.Entries {
		out[i] = e.ID
	}
	return out
}

// Dict returns the dataset's shared term dictionary. Every graph the
// dataset materializes interns into it, so cross-version diffs run on the
// ID fast path.
func (ds *Dataset) Dict() *rdf.Dict { return ds.dict }

// Manifest returns the dataset's manifest.
func (ds *Dataset) Manifest() *Manifest { return ds.man }

// CacheStats reports the LRU's hit/miss counters over GraphAt requests.
func (ds *Dataset) CacheStats() (hits, misses int) { return ds.lru.hits, ds.lru.misses }

// Has reports whether the store holds a version with the given ID, without
// materializing anything.
func (ds *Dataset) Has(id string) bool {
	_, ok := ds.idx[id]
	return ok
}

// Graph materializes the version with the given ID.
func (ds *Dataset) Graph(id string) (*rdf.Graph, error) {
	return ds.GraphCtx(context.Background(), id)
}

// GraphCtx is Graph under a tracing context: an LRU miss records the
// reconstruction as a "store.materialize" span.
func (ds *Dataset) GraphCtx(ctx context.Context, id string) (*rdf.Graph, error) {
	i, ok := ds.idx[id]
	if !ok {
		return nil, fmt.Errorf("store: unknown version %q", id)
	}
	return ds.GraphAtCtx(ctx, i)
}

// GraphAt materializes the i-th version in evolution order.
func (ds *Dataset) GraphAt(i int) (*rdf.Graph, error) {
	return ds.GraphAtCtx(context.Background(), i)
}

// GraphAtCtx is GraphAt under a tracing context; see GraphCtx.
func (ds *Dataset) GraphAtCtx(ctx context.Context, i int) (*rdf.Graph, error) {
	if i < 0 || i >= len(ds.man.Entries) {
		return nil, fmt.Errorf("store: version index %d out of range [0, %d)", i, len(ds.man.Entries))
	}
	if g := ds.lru.get(i); g != nil {
		if ds.tel != nil {
			ds.tel.ObserveCacheAccess(true)
		}
		return g, nil
	}
	if ds.tel != nil {
		ds.tel.ObserveCacheAccess(false)
	}
	_, end := startSpan(ds.spans, ctx, "store.materialize")
	g, replayed, err := ds.materialize(ctx, i)
	if err != nil {
		end()
		return nil, err
	}
	end("version", ds.man.Entries[i].ID, "deltas_replayed", strconv.Itoa(replayed))
	return g, nil
}

// materialize reconstructs version i on an LRU miss, reporting how many
// delta segments were replayed forward from the reconstruction base. The
// replay checks ctx between delta segments, so a request whose deadline
// expires mid-reconstruction stops paying for segments nobody will read
// (nothing partial is cached — the LRU only sees the finished graph).
func (ds *Dataset) materialize(ctx context.Context, i int) (*rdf.Graph, int, error) {
	// Walk back to the nearest reconstruction base: a cached graph or a
	// snapshot entry (entry 0 is always a snapshot, so this terminates).
	// Because the walk stops at the first of either, the forward replay
	// below crosses delta entries only.
	base := i
	var g *rdf.Graph
	for {
		if cached := ds.lru.peek(base); cached != nil {
			g = cached.Clone()
			break
		}
		if ds.man.Entries[base].Kind == kindNameSnapshot {
			var err error
			if g, err = ds.loadSnapshot(base); err != nil {
				return nil, 0, err
			}
			break
		}
		base--
	}
	for j := base + 1; j <= i; j++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if err := ds.applyDelta(j, g); err != nil {
			return nil, 0, err
		}
	}
	ds.lru.put(i, g)
	return g, i - base, nil
}

// loadSnapshot decodes entry i's snapshot segment into a fresh graph
// sharing the dataset dictionary.
func (ds *Dataset) loadSnapshot(i int) (*rdf.Graph, error) {
	e := ds.man.Entries[i]
	payload, err := readSegment(ds.fsys, ds.dir, e.File, kindSnapshot)
	if err != nil {
		return nil, err
	}
	g := rdf.NewGraphWithDict(ds.dict)
	// Presize only the index: the decoder never interns (the shared dict is
	// already complete), and the hint is manifest data, so bound it by the
	// payload size lest a corrupted triple count force a huge allocation.
	g.GrowIndex(min(e.Triples, len(payload)))
	// Decoded runs are sorted and duplicate-free (the decoder enforces
	// strict ordering), so the unchecked bulk ingest is safe.
	n, err := decodeSnapshot(e.File, payload, ds.dict.Len(), g.AddIDUnchecked)
	if err != nil {
		return nil, err
	}
	if n != e.Triples {
		return nil, fmt.Errorf("store: segment %s: %d triples, manifest says %d", e.File, n, e.Triples)
	}
	return g, nil
}

// applyDelta replays entry i's delta segment onto g in place. Deletions are
// applied before additions, matching delta.Delta.Apply.
func (ds *Dataset) applyDelta(i int, g *rdf.Graph) error {
	e := ds.man.Entries[i]
	payload, err := readSegment(ds.fsys, ds.dir, e.File, kindDelta)
	if err != nil {
		return err
	}
	// The payload stores added-then-deleted but replay is deleted-then-
	// added (the delta.Delta.Apply order), so buffer both lists. Capacities
	// come from the manifest, bounded by the (already CRC-validated)
	// payload size so a corrupted manifest cannot force a huge allocation.
	added := make([]rdf.IDTriple, 0, min(e.Added, len(payload)))
	deleted := make([]rdf.IDTriple, 0, min(e.Deleted, len(payload)))
	nAdded, nDeleted, err := decodeDelta(e.File, payload, ds.dict.Len(),
		func(t rdf.IDTriple) { added = append(added, t) },
		func(t rdf.IDTriple) { deleted = append(deleted, t) })
	if err != nil {
		return err
	}
	if nAdded != e.Added || nDeleted != e.Deleted {
		return fmt.Errorf("store: segment %s: (%d, %d) changes, manifest says (%d, %d)",
			e.File, nAdded, nDeleted, e.Added, e.Deleted)
	}
	for _, t := range deleted {
		if !g.RemoveID(t) {
			return fmt.Errorf("store: segment %s: delta deletes absent triple", e.File)
		}
	}
	for _, t := range added {
		if !g.AddID(t) {
			return fmt.Errorf("store: segment %s: delta re-adds present triple", e.File)
		}
	}
	return nil
}

// VersionStore materializes every version eagerly, walking the chain once
// without disturbing the LRU. The returned store's graphs all share the
// dataset dictionary, so delta.Compute keeps its ID fast path after reload.
func (ds *Dataset) VersionStore() (*rdf.VersionStore, error) {
	vs := rdf.NewVersionStore()
	var prev *rdf.Graph
	for i, e := range ds.man.Entries {
		var g *rdf.Graph
		var err error
		if e.Kind == kindNameSnapshot {
			g, err = ds.loadSnapshot(i)
		} else {
			g = prev.Clone()
			err = ds.applyDelta(i, g)
		}
		if err != nil {
			return nil, err
		}
		if err := vs.Add(&rdf.Version{ID: e.ID, Graph: g}); err != nil {
			return nil, err
		}
		prev = g
	}
	return vs, nil
}

// lruCache is a tiny index→graph LRU. Capacities are single digits, so the
// recency list is a slice with most-recent last.
type lruCache struct {
	cap    int
	items  map[int]*rdf.Graph
	order  []int
	hits   int
	misses int
}

func (c *lruCache) get(i int) *rdf.Graph {
	g, ok := c.items[i]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.touch(i)
	return g
}

// peek returns the cached graph without counting or recency-bumping; the
// reconstruction walk probes many indexes per materialization and must not
// distort the stats or the eviction order.
func (c *lruCache) peek(i int) *rdf.Graph { return c.items[i] }

func (c *lruCache) put(i int, g *rdf.Graph) {
	if c.items == nil {
		c.items = make(map[int]*rdf.Graph)
	}
	if _, ok := c.items[i]; ok {
		c.items[i] = g
		c.touch(i)
		return
	}
	c.items[i] = g
	c.order = append(c.order, i)
	c.evict()
}

func (c *lruCache) touch(i int) {
	for k, v := range c.order {
		if v == i {
			copy(c.order[k:], c.order[k+1:])
			c.order[len(c.order)-1] = i
			return
		}
	}
}

func (c *lruCache) evict() {
	for len(c.order) > c.cap {
		delete(c.items, c.order[0])
		c.order = c.order[1:]
	}
}
