package store

import (
	"fmt"

	"evorec/internal/rdf"
)

// DefaultCacheCap is the Dataset's default LRU capacity: big enough to make
// walking a consecutive pair or small window free, small enough that a long
// chain never sits fully materialized in RAM.
const DefaultCacheCap = 4

// Dataset is a lazy handle over a stored version chain. Open decodes only
// the manifest and the string table; graphs materialize on first access and
// are kept in a small LRU, so asking for version k costs one snapshot decode
// plus the delta replays since the nearest snapshot (or cached graph) — not
// a load of the whole chain.
//
// Graphs returned by Graph/GraphAt share the dataset's Dict and are cached;
// treat them as immutable (the VersionStore convention). A Dataset is not
// safe for concurrent use.
type Dataset struct {
	dir  string
	man  *Manifest
	dict *rdf.Dict
	idx  map[string]int
	lru  lruCache
}

// Open reads dir's manifest and dictionary segment and returns a lazy
// dataset handle with the default cache capacity.
func Open(dir string) (*Dataset, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	payload, err := readSegment(dir, man.Dict.File, kindDict)
	if err != nil {
		return nil, err
	}
	dict, err := decodeDict(man.Dict.File, payload)
	if err != nil {
		return nil, err
	}
	// The dictionary may hold MORE terms than the manifest records: Append
	// renames the rewritten dict segment into place before the manifest, so
	// a crash between the two leaves a superset dictionary under the old
	// manifest — harmless, since IDs are append-only and every decoder
	// bounds-checks against the dictionary it was handed. Fewer terms than
	// recorded means real corruption.
	if dict.Len()-1 < man.Terms {
		return nil, fmt.Errorf("store: dictionary has %d terms, manifest says %d",
			dict.Len()-1, man.Terms)
	}
	idx := make(map[string]int, len(man.Entries))
	for i, e := range man.Entries {
		if _, dup := idx[e.ID]; dup {
			return nil, fmt.Errorf("store: duplicate version ID %q in manifest", e.ID)
		}
		idx[e.ID] = i
	}
	return &Dataset{
		dir:  dir,
		man:  man,
		dict: dict,
		idx:  idx,
		lru:  lruCache{cap: DefaultCacheCap},
	}, nil
}

// SetCacheCap resizes the graph LRU, evicting down if needed. Capacities
// below 1 are rejected (a capacity of 0 would thrash every reconstruction),
// so callers wiring user input through — flags, HTTP parameters — surface a
// clear error instead of a silently clamped value.
func (ds *Dataset) SetCacheCap(n int) error {
	if n < 1 {
		return fmt.Errorf("store: cache capacity must be >= 1, got %d", n)
	}
	ds.lru.cap = n
	ds.lru.evict()
	return nil
}

// CacheCap returns the graph LRU's current capacity.
func (ds *Dataset) CacheCap() int { return ds.lru.cap }

// Len returns the number of stored versions.
func (ds *Dataset) Len() int { return len(ds.man.Entries) }

// IDs returns the version IDs in evolution order.
func (ds *Dataset) IDs() []string {
	out := make([]string, len(ds.man.Entries))
	for i, e := range ds.man.Entries {
		out[i] = e.ID
	}
	return out
}

// Dict returns the dataset's shared term dictionary. Every graph the
// dataset materializes interns into it, so cross-version diffs run on the
// ID fast path.
func (ds *Dataset) Dict() *rdf.Dict { return ds.dict }

// Manifest returns the dataset's manifest.
func (ds *Dataset) Manifest() *Manifest { return ds.man }

// CacheStats reports the LRU's hit/miss counters over GraphAt requests.
func (ds *Dataset) CacheStats() (hits, misses int) { return ds.lru.hits, ds.lru.misses }

// Has reports whether the store holds a version with the given ID, without
// materializing anything.
func (ds *Dataset) Has(id string) bool {
	_, ok := ds.idx[id]
	return ok
}

// Graph materializes the version with the given ID.
func (ds *Dataset) Graph(id string) (*rdf.Graph, error) {
	i, ok := ds.idx[id]
	if !ok {
		return nil, fmt.Errorf("store: unknown version %q", id)
	}
	return ds.GraphAt(i)
}

// GraphAt materializes the i-th version in evolution order.
func (ds *Dataset) GraphAt(i int) (*rdf.Graph, error) {
	if i < 0 || i >= len(ds.man.Entries) {
		return nil, fmt.Errorf("store: version index %d out of range [0, %d)", i, len(ds.man.Entries))
	}
	if g := ds.lru.get(i); g != nil {
		return g, nil
	}
	// Walk back to the nearest reconstruction base: a cached graph or a
	// snapshot entry (entry 0 is always a snapshot, so this terminates).
	// Because the walk stops at the first of either, the forward replay
	// below crosses delta entries only.
	base := i
	var g *rdf.Graph
	for {
		if cached := ds.lru.peek(base); cached != nil {
			g = cached.Clone()
			break
		}
		if ds.man.Entries[base].Kind == kindNameSnapshot {
			var err error
			if g, err = ds.loadSnapshot(base); err != nil {
				return nil, err
			}
			break
		}
		base--
	}
	for j := base + 1; j <= i; j++ {
		if err := ds.applyDelta(j, g); err != nil {
			return nil, err
		}
	}
	ds.lru.put(i, g)
	return g, nil
}

// loadSnapshot decodes entry i's snapshot segment into a fresh graph
// sharing the dataset dictionary.
func (ds *Dataset) loadSnapshot(i int) (*rdf.Graph, error) {
	e := ds.man.Entries[i]
	payload, err := readSegment(ds.dir, e.File, kindSnapshot)
	if err != nil {
		return nil, err
	}
	g := rdf.NewGraphWithDict(ds.dict)
	// Presize only the index: the decoder never interns (the shared dict is
	// already complete), and the hint is manifest data, so bound it by the
	// payload size lest a corrupted triple count force a huge allocation.
	g.GrowIndex(min(e.Triples, len(payload)))
	// Decoded runs are sorted and duplicate-free (the decoder enforces
	// strict ordering), so the unchecked bulk ingest is safe.
	n, err := decodeSnapshot(e.File, payload, ds.dict.Len(), g.AddIDUnchecked)
	if err != nil {
		return nil, err
	}
	if n != e.Triples {
		return nil, fmt.Errorf("store: segment %s: %d triples, manifest says %d", e.File, n, e.Triples)
	}
	return g, nil
}

// applyDelta replays entry i's delta segment onto g in place. Deletions are
// applied before additions, matching delta.Delta.Apply.
func (ds *Dataset) applyDelta(i int, g *rdf.Graph) error {
	e := ds.man.Entries[i]
	payload, err := readSegment(ds.dir, e.File, kindDelta)
	if err != nil {
		return err
	}
	// The payload stores added-then-deleted but replay is deleted-then-
	// added (the delta.Delta.Apply order), so buffer both lists. Capacities
	// come from the manifest, bounded by the (already CRC-validated)
	// payload size so a corrupted manifest cannot force a huge allocation.
	added := make([]rdf.IDTriple, 0, min(e.Added, len(payload)))
	deleted := make([]rdf.IDTriple, 0, min(e.Deleted, len(payload)))
	nAdded, nDeleted, err := decodeDelta(e.File, payload, ds.dict.Len(),
		func(t rdf.IDTriple) { added = append(added, t) },
		func(t rdf.IDTriple) { deleted = append(deleted, t) })
	if err != nil {
		return err
	}
	if nAdded != e.Added || nDeleted != e.Deleted {
		return fmt.Errorf("store: segment %s: (%d, %d) changes, manifest says (%d, %d)",
			e.File, nAdded, nDeleted, e.Added, e.Deleted)
	}
	for _, t := range deleted {
		if !g.RemoveID(t) {
			return fmt.Errorf("store: segment %s: delta deletes absent triple", e.File)
		}
	}
	for _, t := range added {
		if !g.AddID(t) {
			return fmt.Errorf("store: segment %s: delta re-adds present triple", e.File)
		}
	}
	return nil
}

// VersionStore materializes every version eagerly, walking the chain once
// without disturbing the LRU. The returned store's graphs all share the
// dataset dictionary, so delta.Compute keeps its ID fast path after reload.
func (ds *Dataset) VersionStore() (*rdf.VersionStore, error) {
	vs := rdf.NewVersionStore()
	var prev *rdf.Graph
	for i, e := range ds.man.Entries {
		var g *rdf.Graph
		var err error
		if e.Kind == kindNameSnapshot {
			g, err = ds.loadSnapshot(i)
		} else {
			g = prev.Clone()
			err = ds.applyDelta(i, g)
		}
		if err != nil {
			return nil, err
		}
		if err := vs.Add(&rdf.Version{ID: e.ID, Graph: g}); err != nil {
			return nil, err
		}
		prev = g
	}
	return vs, nil
}

// lruCache is a tiny index→graph LRU. Capacities are single digits, so the
// recency list is a slice with most-recent last.
type lruCache struct {
	cap    int
	items  map[int]*rdf.Graph
	order  []int
	hits   int
	misses int
}

func (c *lruCache) get(i int) *rdf.Graph {
	g, ok := c.items[i]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.touch(i)
	return g
}

// peek returns the cached graph without counting or recency-bumping; the
// reconstruction walk probes many indexes per materialization and must not
// distort the stats or the eviction order.
func (c *lruCache) peek(i int) *rdf.Graph { return c.items[i] }

func (c *lruCache) put(i int, g *rdf.Graph) {
	if c.items == nil {
		c.items = make(map[int]*rdf.Graph)
	}
	if _, ok := c.items[i]; ok {
		c.items[i] = g
		c.touch(i)
		return
	}
	c.items[i] = g
	c.order = append(c.order, i)
	c.evict()
}

func (c *lruCache) touch(i int) {
	for k, v := range c.order {
		if v == i {
			copy(c.order[k:], c.order[k+1:])
			c.order[len(c.order)-1] = i
			return
		}
	}
}

func (c *lruCache) evict() {
	for len(c.order) > c.cap {
		delete(c.items, c.order[0])
		c.order = c.order[1:]
	}
}
