package store_test

import (
	"errors"
	"strings"
	"testing"

	"evorec/internal/rdf"
	"evorec/internal/store"
	"evorec/internal/store/vfs"
)

// TestStoreHealTransientFault drives one open handle through a transient
// write fault and back: the faulted append poisons the handle (every later
// append fails fast), Heal cannot clear it while the fault holds, and once
// the fault lifts Heal restores full service in place — the acknowledged
// prefix intact, the failed ID free to retry, and the healed chain
// surviving a reopen.
func TestStoreHealTransientFault(t *testing.T) {
	chaos := vfs.NewChaosFS(vfs.NewMemFS(), "data")
	vs := testChain(t, 3)
	if _, err := store.SaveFS(chaos, "data/ds", vs, store.Options{Policy: store.Hybrid, SnapshotEvery: 2}); err != nil {
		t.Fatal(err)
	}
	ds, err := store.OpenFS(chaos, "data/ds")
	if err != nil {
		t.Fatal(err)
	}
	next := func(id string) *rdf.Version {
		g := rdf.NewGraphWithDict(ds.Dict())
		nt := "<http://example.org/" + id + "> <http://www.w3.org/2000/01/rdf-schema#seeAlso> <http://example.org/x> .\n"
		if err := rdf.ReadNTriplesInto(g, strings.NewReader(nt)); err != nil {
			t.Fatal(err)
		}
		return &rdf.Version{ID: id, Graph: g}
	}
	if _, err := ds.Append(next("x1")); err != nil {
		t.Fatalf("healthy append: %v", err)
	}

	chaos.Arm()
	if _, err := ds.Append(next("x2")); !errors.Is(err, vfs.ErrChaos) {
		t.Fatalf("faulted append = %v, want ErrChaos in the chain", err)
	}
	if ds.Failed() == nil {
		t.Fatal("handle not poisoned after a WAL fault")
	}
	// Poisoned handles fail fast without touching the disk again.
	before := chaos.Faults()
	if _, err := ds.Append(next("x3")); err == nil {
		t.Fatal("append on a poisoned handle succeeded")
	}
	if chaos.Faults() != before {
		t.Fatal("poisoned append reached the filesystem")
	}
	// Heal is powerless while the fault persists: the heal checkpoint
	// itself faults and the handle stays poisoned.
	if err := ds.Heal(); err == nil {
		t.Fatal("Heal succeeded while the fault was still armed")
	}
	if ds.Failed() == nil {
		t.Fatal("handle unpoisoned by a failed heal")
	}

	chaos.Disarm()
	if err := ds.Heal(); err != nil {
		t.Fatalf("heal after the fault cleared: %v", err)
	}
	if err := ds.Failed(); err != nil {
		t.Fatalf("Failed() = %v after a successful heal", err)
	}
	// Heal checkpointed: the acknowledged prefix is durable and the WAL is
	// empty, with the faulted batch's record discarded (its caller saw an
	// error; replaying it would resurrect a reported failure).
	if n := ds.WALSize(); n != 0 {
		t.Fatalf("WAL holds %d bytes after heal (heal checkpoints and truncates)", n)
	}
	// The failed IDs were never stored, so retries are fresh commits.
	if _, err := ds.Append(next("x2")); err != nil {
		t.Fatalf("retrying the faulted ID after heal: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := store.OpenFS(chaos, "data/ds")
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	if got, want := back.Len(), vs.Len()+2; got != want {
		t.Fatalf("reopened chain has %d versions, want %d", got, want)
	}
	for _, id := range []string{"x1", "x2"} {
		if !back.Has(id) {
			t.Fatalf("version %q missing after heal + reopen", id)
		}
		if _, err := back.Graph(id); err != nil {
			t.Fatalf("materializing %q after heal: %v", id, err)
		}
	}
	if back.Has("x3") {
		t.Fatal("failed append x3 resurrected by reopen")
	}
}
