package store

import (
	"fmt"

	"evorec/internal/store/vfs"
)

// WALRecordInfo is one WAL record's fate as recovery would decide it.
type WALRecordInfo struct {
	// Seq is the record's sequence number; ID and Parent the commit it redoes.
	Seq        uint64
	ID, Parent string
	// Kind is "snapshot" or "delta".
	Kind string
	// Terms is how many dictionary terms the record's tail interns.
	Terms int
	// Bytes is the segment payload size the record carries.
	Bytes int
	// Status is what replay would do with the record: "applied" (the
	// manifest already holds it), "replayable" (Open would redo it), or
	// "orphaned" (its parent is not the chain tail replay reaches — the
	// durable state never saw the sequence it belongs to).
	Status string
}

// Replay statuses.
const (
	WALApplied    = "applied"
	WALReplayable = "replayable"
	WALOrphaned   = "orphaned"
)

// RecoverPlan is what Open's WAL replay would do to a store directory,
// computed without writing anything.
type RecoverPlan struct {
	// WALBytes is the log's size; TornBytes how much of its tail is
	// unreadable (the expected residue of a crash mid-append, not a fault).
	WALBytes, TornBytes int64
	// Records lists every readable record with its replay fate.
	Records []WALRecordInfo
	// Apply is the version IDs replay would append, in order.
	Apply []string
	// Tail is the chain tail after replay.
	Tail string
}

// VerifyReport is the result of Verify: every durability invariant of a
// store directory checked read-only.
type VerifyReport struct {
	// Info is the manifest/segment view (Inspect's result).
	Info *Info
	// Plan is the WAL replay simulation.
	Plan *RecoverPlan
	// Problems lists every failed check, empty for a healthy store. A torn
	// WAL tail and a replayable WAL suffix are NOT problems — they are what
	// recovery exists for.
	Problems []string
}

// OK reports whether the store passed every check.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// Verify walks dir's manifest, segments and WAL, checking CRC32 framing,
// chain contiguity, dictionary coverage and WAL replayability, without
// materializing a graph or writing a byte. It powers "evorec store verify".
func Verify(dir string) (*VerifyReport, error) { return VerifyFS(vfs.OS{}, dir) }

// VerifyFS is Verify on an explicit filesystem.
func VerifyFS(fsys vfs.FS, dir string) (*VerifyReport, error) {
	info, err := InspectFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{Info: info}
	problem := func(format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}
	for _, s := range info.Segments {
		if !s.OK {
			problem("segment %s: %s", s.File, s.Err)
		}
	}

	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	// Chain contiguity: the chain must start from a snapshot (a delta with
	// no base is unreplayable) and never repeat a version ID.
	seen := make(map[string]bool, len(man.Entries))
	for i, e := range man.Entries {
		if i == 0 && e.Kind != kindNameSnapshot {
			problem("chain starts with %s %q — a delta has no base to replay from", e.Kind, e.ID)
		}
		if e.Kind != kindNameSnapshot && e.Kind != kindNameDelta {
			problem("entry %q has unknown kind %q", e.ID, e.Kind)
		}
		if seen[e.ID] {
			problem("version ID %q appears twice in the manifest", e.ID)
		}
		seen[e.ID] = true
		if !validFileName(e.File) {
			problem("entry %q names segment file %q outside the store directory", e.ID, e.File)
		}
	}

	// Dictionary coverage: the dict segment may hold MORE terms than the
	// manifest records (the checkpoint crash window) but never fewer.
	dictTerms := -1
	if payload, err := readSegment(fsys, dir, man.Dict.File, kindDict); err == nil {
		if dict, derr := decodeDict(man.Dict.File, payload); derr != nil {
			problem("dictionary %s: %v", man.Dict.File, derr)
		} else {
			dictTerms = dict.Len() - 1
			if dictTerms < man.Terms {
				problem("dictionary holds %d terms, manifest records %d — terms are lost", dictTerms, man.Terms)
			}
		}
	}

	plan, perr := planRecovery(fsys, dir, man, dictTerms)
	if perr != nil {
		problem("WAL: %v", perr)
	}
	rep.Plan = plan
	for _, r := range plan.Records {
		if r.Status == WALOrphaned {
			problem("WAL record %q (seq %d) is orphaned: parent %q is not the chain tail replay reaches",
				r.ID, r.Seq, r.Parent)
		}
	}
	return rep, nil
}

// PlanRecovery simulates Open's WAL replay for dir read-only: which records
// the manifest already covers, which would be applied, and which are
// orphaned. It powers "evorec store recover -dry-run".
func PlanRecovery(dir string) (*RecoverPlan, error) { return PlanRecoveryFS(vfs.OS{}, dir) }

// PlanRecoveryFS is PlanRecovery on an explicit filesystem.
func PlanRecoveryFS(fsys vfs.FS, dir string) (*RecoverPlan, error) {
	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	dictTerms := -1
	if payload, err := readSegment(fsys, dir, man.Dict.File, kindDict); err == nil {
		if dict, derr := decodeDict(man.Dict.File, payload); derr == nil {
			dictTerms = dict.Len() - 1
		}
	}
	plan, perr := planRecovery(fsys, dir, man, dictTerms)
	if perr != nil {
		return plan, perr
	}
	return plan, nil
}

// planRecovery runs the replay simulation. dictTerms < 0 means the
// dictionary could not be decoded; the dictionary-gap check is skipped then
// (its own problem is already reported by the caller).
func planRecovery(fsys vfs.FS, dir string, man *Manifest, dictTerms int) (*RecoverPlan, error) {
	plan := &RecoverPlan{}
	w := &wal{fsys: fsys, dir: dir}
	data, err := w.read()
	if err != nil {
		return plan, err
	}
	plan.WALBytes = int64(len(data))
	if n := len(man.Entries); n > 0 {
		plan.Tail = man.Entries[n-1].ID
	}
	if len(data) == 0 {
		return plan, nil
	}
	recs, clean, err := scanWAL(data)
	plan.TornBytes = int64(len(data) - clean)
	if err != nil {
		// A well-framed record that fails to decode poisons recovery: Open
		// would refuse the store. Everything before it is still reported.
		return plan, err
	}
	idx := make(map[string]bool, len(man.Entries))
	for _, e := range man.Entries {
		idx[e.ID] = true
	}
	covered := dictTerms
	orphaned := false
	var gapErr error
	for _, rec := range recs {
		ri := WALRecordInfo{
			Seq: rec.seq, ID: rec.id, Parent: rec.parent,
			Kind: kindNameSnapshot, Terms: len(rec.dictTail), Bytes: len(rec.payload),
		}
		if rec.segKind == kindDelta {
			ri.Kind = kindNameDelta
		}
		switch {
		case idx[rec.id]:
			ri.Status = WALApplied
		case orphaned || rec.parent != plan.Tail:
			ri.Status = WALOrphaned
			orphaned = true
		default:
			ri.Status = WALReplayable
			if covered >= 0 && rec.dictBase > covered {
				gapErr = fmt.Errorf("store: WAL record %q: dictionary base %d past dictionary size %d",
					rec.id, rec.dictBase, covered)
			}
			if covered >= 0 {
				covered = max(covered, rec.dictBase+len(rec.dictTail))
			}
			plan.Apply = append(plan.Apply, rec.id)
			plan.Tail = rec.id
		}
		plan.Records = append(plan.Records, ri)
	}
	return plan, gapErr
}
