package store

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"evorec/internal/rdf"
)

// FuzzStoreDecode feeds arbitrary bytes to every binary decode path — the
// segment unframer, the dictionary decoder, and the snapshot and delta run
// decoders — with the invariant that corrupted or truncated input errors
// cleanly: no panic, no unbounded allocation. The decoders enforce this by
// bounds-checking every read, validating counts against the payload size,
// and rejecting IDs outside the dictionary.
func FuzzStoreDecode(f *testing.F) {
	// Seed with well-formed segments so the fuzzer starts from valid
	// framing and mutates inward.
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.NewIRI("ex:a"), rdf.NewIRI("ex:p"), rdf.NewLiteral("x")))
	g.Add(rdf.T(rdf.NewIRI("ex:a"), rdf.NewIRI("ex:p"), rdf.NewTypedLiteral("1", "ex:int")))
	g.Add(rdf.T(rdf.NewIRI("ex:b"), rdf.NewIRI("ex:q"), rdf.NewLangLiteral("hi", "en")))
	for _, tm := range []rdf.Term{rdf.NewIRI("ex:a"), rdf.NewLiteral("x"), rdf.NewBlank("b")} {
		dict.Intern(tm)
	}
	ts := encodeGraph(g.Dict(), g)

	frame := func(kind byte, payload []byte) []byte {
		buf := make([]byte, 0, segHeaderLen+len(payload)+segTrailerLen)
		buf = append(buf, segMagic...)
		buf = append(buf, kind)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
		return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	}
	f.Add(frame(kindDict, appendDict(nil, g.Dict())))
	f.Add(frame(kindSnapshot, appendSnapshot(nil, ts)))
	f.Add(frame(kindDelta, appendDelta(nil, ts[:1], ts[1:])))
	f.Add([]byte(segMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, kind := range []byte{kindDict, kindSnapshot, kindDelta} {
			payload, err := decodeSegment("fuzz", data, kind)
			if err != nil {
				continue
			}
			switch kind {
			case kindDict:
				if d, err := decodeDict("fuzz", payload); err == nil {
					// A successfully decoded dictionary must be internally
					// consistent: dense IDs, no duplicates.
					if d.Len() < 1 {
						t.Fatalf("decoded dict with %d entries", d.Len())
					}
				}
			case kindSnapshot:
				sink := rdf.NewGraphWithDict(rdf.NewDict())
				n, err := decodeSnapshot("fuzz", payload, g.Dict().Len(), func(tr rdf.IDTriple) {
					// IDs were validated against the dictionary bound.
					if tr.S == 0 || int(tr.S) >= g.Dict().Len() {
						t.Fatalf("decoder passed out-of-range subject %d", tr.S)
					}
					_ = sink
				})
				if err == nil && n < 0 {
					t.Fatal("negative triple count")
				}
			case kindDelta:
				_, _, _ = decodeDelta("fuzz", payload, g.Dict().Len(),
					func(rdf.IDTriple) {}, func(rdf.IDTriple) {})
			}
		}
	})
}
