package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"evorec/internal/rdf"
	"evorec/internal/store/vfs"
)

// Segment framing. Every segment file is
//
//	magic   [4]byte  "EVS1"
//	kind    byte     1=dict, 2=snapshot, 3=delta
//	length  uint32   little-endian payload length
//	payload [length]byte
//	crc32   uint32   little-endian IEEE checksum of payload
//
// The length prefix must account for the file size exactly (no trailing
// bytes), which together with the checksum lets the reader reject truncated
// and corrupted segments before decoding a single varint.
const (
	segMagic      = "EVS1"
	segHeaderLen  = 4 + 1 + 4
	segTrailerLen = 4

	kindDict     byte = 1
	kindSnapshot byte = 2
	kindDelta    byte = 3
)

// Dict payload:
//
//	count   uvarint  number of terms (IDs 1..count, in ID order)
//	entry*  tag byte (low nibble rdf.Kind, 0x10 = has datatype, 0x20 = has
//	        lang), then value / datatype / lang as uvarint-length-prefixed
//	        UTF-8 bytes
//
// Re-interning the entries in file order reproduces the original dense ID
// assignment, which is what keeps reloaded ID-triples meaningful.
const (
	tagKindMask  = 0x0f
	tagDatatype  = 0x10
	tagLang      = 0x20
	tagValidBits = tagKindMask | tagDatatype | tagLang
)

// Snapshot payload: uvarint triple count, then one varint-packed run of the
// triples sorted by (S, P, O). Delta payload: uvarint added count, added
// run, uvarint deleted count, deleted run.
//
// A run delta-encodes each triple against its predecessor:
//
//	dS uvarint                      subject gap (0 = same subject)
//	dS > 0:  P uvarint, O uvarint   new subject run: raw predicate + object
//	dS == 0: dP uvarint             predicate gap within the subject run
//	  dP > 0:  O uvarint            new predicate run: raw object
//	  dP == 0: dO uvarint           object gap, strictly positive
//
// Sorted unique input guarantees every gap is non-negative and dO > 0, so a
// zero dO (or any ID outside the dictionary) marks corruption.

func segmentError(file, msg string) error {
	return fmt.Errorf("store: segment %s: %s", file, msg)
}

// writeSegment frames payload and writes it to path, returning the file
// size. The write goes through a temp file plus rename, so a crash
// mid-write can never leave a torn segment under the final name — Append
// rewrites the live dictionary segment in place and relies on this. With
// durable set the temp file is fsynced before the rename and the directory
// after it; without it the caller owes a later SyncPath+SyncDir (the
// WAL-checkpoint pattern) before the bytes may be relied on across a crash.
func writeSegment(fsys vfs.FS, path string, kind byte, payload []byte, durable bool) (int64, error) {
	if uint64(len(payload)) > math.MaxUint32 {
		return 0, fmt.Errorf("store: segment payload %d bytes exceeds the 4 GiB format limit", len(payload))
	}
	buf := appendFramed(make([]byte, 0, segHeaderLen+len(payload)+segTrailerLen), kind, payload)
	if err := vfs.WriteFileAtomic(fsys, path, buf, durable); err != nil {
		return 0, fmt.Errorf("store: writing segment: %w", err)
	}
	return int64(len(buf)), nil
}

// appendFramed appends the full segment envelope (header, payload, CRC).
func appendFramed(buf []byte, kind byte, payload []byte) []byte {
	buf = append(buf, segMagic...)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// readSegment reads and unframes the segment at dir/file, validating magic,
// kind, exact length, and checksum.
func readSegment(fsys vfs.FS, dir, file string, wantKind byte) ([]byte, error) {
	data, err := fsys.ReadFile(joinPath(dir, file))
	if err != nil {
		return nil, fmt.Errorf("store: reading segment: %w", err)
	}
	return decodeSegment(file, data, wantKind)
}

// decodeSegment validates the framing of a whole segment file held in
// memory and returns its payload.
func decodeSegment(file string, data []byte, wantKind byte) ([]byte, error) {
	if len(data) < segHeaderLen+segTrailerLen {
		return nil, segmentError(file, "truncated header")
	}
	if string(data[:4]) != segMagic {
		return nil, segmentError(file, "bad magic")
	}
	kind := data[4]
	if kind != wantKind {
		return nil, segmentError(file, fmt.Sprintf("kind = %d, want %d", kind, wantKind))
	}
	n := binary.LittleEndian.Uint32(data[5:9])
	if int(n) != len(data)-segHeaderLen-segTrailerLen {
		return nil, segmentError(file, "length prefix does not match file size")
	}
	payload := data[segHeaderLen : segHeaderLen+n]
	want := binary.LittleEndian.Uint32(data[segHeaderLen+n:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, segmentError(file, "checksum mismatch")
	}
	return payload, nil
}

// byteReader walks a payload with bounds-checked primitive reads. Every
// method errors (never panics) on truncated input, which is what makes the
// decode paths safe to point at arbitrary bytes.
type byteReader struct {
	file string
	b    []byte
	off  int
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

func (r *byteReader) errf(format string, args ...any) error {
	return segmentError(r.file, fmt.Sprintf(format, args...))
}

func (r *byteReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, r.errf("truncated at offset %d", r.off)
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.errf("bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a uvarint element count and sanity-bounds it: every counted
// element occupies at least one payload byte, so any count exceeding the
// remaining bytes is corrupt. This caps decoder allocations at the input
// size no matter what the bytes claim.
func (r *byteReader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, r.errf("%s count %d exceeds payload size", what, v)
	}
	return int(v), nil
}

func (r *byteReader) stringField(what string) (string, error) {
	n, err := r.count(what)
	if err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendDictEntry serializes one dictionary term in the tagged entry
// format shared by the dict segment and WAL-record dict tails.
func appendDictEntry(buf []byte, t rdf.Term) []byte {
	tag := byte(t.Kind)
	if t.Datatype != "" {
		tag |= tagDatatype
	}
	if t.Lang != "" {
		tag |= tagLang
	}
	buf = append(buf, tag)
	buf = appendString(buf, t.Value)
	if t.Datatype != "" {
		buf = appendString(buf, t.Datatype)
	}
	if t.Lang != "" {
		buf = appendString(buf, t.Lang)
	}
	return buf
}

// decodeDictEntry reads one tagged dictionary entry. i labels errors with
// the entry's position.
func (r *byteReader) decodeDictEntry(i int) (rdf.Term, error) {
	tag, err := r.byte()
	if err != nil {
		return rdf.Term{}, err
	}
	kind := rdf.Kind(tag & tagKindMask)
	if tag&^byte(tagValidBits) != 0 || kind == rdf.Any || kind > rdf.Literal {
		return rdf.Term{}, r.errf("term %d: invalid tag 0x%02x", i+1, tag)
	}
	if kind != rdf.Literal && tag&(tagDatatype|tagLang) != 0 {
		return rdf.Term{}, r.errf("term %d: datatype/lang flags on non-literal", i+1)
	}
	t := rdf.Term{Kind: kind}
	if t.Value, err = r.stringField("value"); err != nil {
		return rdf.Term{}, err
	}
	if tag&tagDatatype != 0 {
		if t.Datatype, err = r.stringField("datatype"); err != nil {
			return rdf.Term{}, err
		}
	}
	if tag&tagLang != 0 {
		if t.Lang, err = r.stringField("lang"); err != nil {
			return rdf.Term{}, err
		}
	}
	return t, nil
}

// appendDict serializes the dictionary's string table in ID order.
func appendDict(buf []byte, d *rdf.Dict) []byte {
	buf = binary.AppendUvarint(buf, uint64(d.Len()-1))
	d.ForEachTerm(func(_ rdf.TermID, t rdf.Term) bool {
		buf = appendDictEntry(buf, t)
		return true
	})
	return buf
}

// decodeDict rebuilds a Dict from a dict-segment payload. The decoded dict
// assigns exactly the IDs the writer saw, verified entry by entry.
func decodeDict(file string, payload []byte) (*rdf.Dict, error) {
	r := &byteReader{file: file, b: payload}
	n, err := r.count("term")
	if err != nil {
		return nil, err
	}
	dict := rdf.NewDict()
	dict.Grow(n)
	for i := 0; i < n; i++ {
		t, err := r.decodeDictEntry(i)
		if err != nil {
			return nil, err
		}
		if got := dict.Intern(t); got != rdf.TermID(i+1) {
			return nil, r.errf("term %d: duplicate or wildcard entry", i+1)
		}
	}
	if r.remaining() != 0 {
		return nil, r.errf("%d trailing bytes after dictionary", r.remaining())
	}
	return dict, nil
}

// appendRun varint-packs a sorted, duplicate-free ID-triple slice.
func appendRun(buf []byte, ts []rdf.IDTriple) []byte {
	var prev rdf.IDTriple
	for _, t := range ts {
		dS := uint64(t.S - prev.S)
		buf = binary.AppendUvarint(buf, dS)
		if dS != 0 {
			buf = binary.AppendUvarint(buf, uint64(t.P))
			buf = binary.AppendUvarint(buf, uint64(t.O))
		} else {
			dP := uint64(t.P - prev.P)
			buf = binary.AppendUvarint(buf, dP)
			if dP != 0 {
				buf = binary.AppendUvarint(buf, uint64(t.O))
			} else {
				buf = binary.AppendUvarint(buf, uint64(t.O-prev.O))
			}
		}
		prev = t
	}
	return buf
}

// id reads one uvarint and validates it as a TermID strictly below dictLen
// (and never the reserved wildcard 0 when nonzero is required).
func (r *byteReader) id(dictLen uint64) (rdf.TermID, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v == 0 || v >= dictLen {
		return 0, r.errf("term ID %d outside dictionary (size %d)", v, dictLen)
	}
	return rdf.TermID(v), nil
}

// run decodes n delta-packed triples, streaming each to fn in ascending
// (S, P, O) order. Every ID is validated against dictLen and the ordering
// invariant is enforced, so corrupted runs error instead of producing
// out-of-range or duplicate triples.
func (r *byteReader) run(n int, dictLen uint64, fn func(rdf.IDTriple)) error {
	var prev rdf.IDTriple
	for i := 0; i < n; i++ {
		dS, err := r.uvarint()
		if err != nil {
			return err
		}
		var t rdf.IDTriple
		switch {
		case dS != 0:
			// Gap values are bounded before adding so the uint64 sums below
			// cannot wrap and sneak past the dictionary bound.
			if dS > math.MaxUint32 {
				return r.errf("subject gap %d overflows TermID", dS)
			}
			s := uint64(prev.S) + dS
			if s >= dictLen {
				return r.errf("subject ID %d outside dictionary (size %d)", s, dictLen)
			}
			t.S = rdf.TermID(s)
			if t.P, err = r.id(dictLen); err != nil {
				return err
			}
			if t.O, err = r.id(dictLen); err != nil {
				return err
			}
		default:
			if prev.S == 0 {
				return r.errf("run starts with zero subject gap")
			}
			t.S = prev.S
			dP, err := r.uvarint()
			if err != nil {
				return err
			}
			if dP != 0 {
				if dP > math.MaxUint32 {
					return r.errf("predicate gap %d overflows TermID", dP)
				}
				p := uint64(prev.P) + dP
				if p >= dictLen {
					return r.errf("predicate ID %d outside dictionary (size %d)", p, dictLen)
				}
				t.P = rdf.TermID(p)
				if t.O, err = r.id(dictLen); err != nil {
					return err
				}
			} else {
				t.P = prev.P
				dO, err := r.uvarint()
				if err != nil {
					return err
				}
				if dO == 0 {
					return r.errf("duplicate triple in run")
				}
				if dO > math.MaxUint32 {
					return r.errf("object gap %d overflows TermID", dO)
				}
				o := uint64(prev.O) + dO
				if o >= dictLen {
					return r.errf("object ID %d outside dictionary (size %d)", o, dictLen)
				}
				t.O = rdf.TermID(o)
			}
		}
		fn(t)
		prev = t
	}
	return nil
}

// appendSnapshot serializes a sorted snapshot payload.
func appendSnapshot(buf []byte, ts []rdf.IDTriple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	return appendRun(buf, ts)
}

// decodeSnapshot streams a snapshot payload's triples to fn, returning the
// triple count.
func decodeSnapshot(file string, payload []byte, dictLen int, fn func(rdf.IDTriple)) (int, error) {
	r := &byteReader{file: file, b: payload}
	n, err := r.count("triple")
	if err != nil {
		return 0, err
	}
	if err := r.run(n, uint64(dictLen), fn); err != nil {
		return 0, err
	}
	if r.remaining() != 0 {
		return 0, r.errf("%d trailing bytes after snapshot", r.remaining())
	}
	return n, nil
}

// appendDelta serializes a delta payload: added run then deleted run.
func appendDelta(buf []byte, added, deleted []rdf.IDTriple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(added)))
	buf = appendRun(buf, added)
	buf = binary.AppendUvarint(buf, uint64(len(deleted)))
	return appendRun(buf, deleted)
}

// decodeDelta streams a delta payload's added and deleted triples,
// returning both counts.
func decodeDelta(file string, payload []byte, dictLen int, onAdded, onDeleted func(rdf.IDTriple)) (added, deleted int, err error) {
	r := &byteReader{file: file, b: payload}
	if added, err = r.count("added"); err != nil {
		return 0, 0, err
	}
	if err = r.run(added, uint64(dictLen), onAdded); err != nil {
		return 0, 0, err
	}
	if deleted, err = r.count("deleted"); err != nil {
		return 0, 0, err
	}
	if err = r.run(deleted, uint64(dictLen), onDeleted); err != nil {
		return 0, 0, err
	}
	if r.remaining() != 0 {
		return 0, 0, r.errf("%d trailing bytes after delta", r.remaining())
	}
	return added, deleted, nil
}
