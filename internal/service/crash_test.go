package service_test

// Crash-recovery property test: one scripted session — subscriber updates,
// commits, commit-triggered feed fan-out — replayed with a fault injected
// at every filesystem operation the session performs. After each simulated
// crash (unsynced state dropped, the process gone), reopening must recover
// exactly the acknowledged prefix: every acked commit and subscription is
// present, nothing outside the attempted set appears, no version is
// partial, no feed batch is re-deliverable, and the recovered store accepts
// new writes.

import (
	"bytes"
	"fmt"
	"testing"

	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/service"
	"evorec/internal/store"
	"evorec/internal/store/vfs"
)

const crashFeedDir = "feeds"

// crashAck records what the workload's client observed succeed — the
// contract recovery must honor.
type crashAck struct {
	commits []string    // version IDs whose Commit returned nil
	subs    []string    // subscriber IDs whose Subscribe returned nil
	fanouts [][2]string // pairs whose fan-out reported no persistence error
}

// seedCrashStore writes the v1-only chain durably (no faults yet) and
// returns the store directory.
func seedCrashStore(t testing.TB, fsys vfs.FS, vs *rdf.VersionStore) string {
	t.Helper()
	dir := "data/kb"
	base := rdf.NewVersionStore()
	if err := base.Add(vs.At(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveFS(fsys, dir, base, store.Options{Policy: store.DeltaChain}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// runCrashWorkload drives the scripted session against a (possibly
// faulting) filesystem. Errors are expected — they are the crash — so the
// workload records acks and keeps going; once the FaultFS is past its
// injection point every further operation fails fast.
func runCrashWorkload(t testing.TB, fsys vfs.FS, storeDir string, bodies map[string][]byte, workload *crashScript) crashAck {
	t.Helper()
	var ack crashAck
	svc := service.New(service.Config{FS: fsys, FeedDir: crashFeedDir, FeedThreshold: 0.01})
	defer svc.Close() //nolint:errcheck // crash path; Close errors are the point
	d, err := svc.Open("kb", storeDir)
	if err != nil {
		return ack // crashed during open: nothing acknowledged
	}
	commit := func(id string) {
		info, err := d.Commit(id, bytes.NewReader(bodies[id]))
		if err != nil {
			return
		}
		ack.commits = append(ack.commits, id)
		if info.Feed != nil && !info.Feed.Skipped && info.FeedError == "" {
			ack.fanouts = append(ack.fanouts, [2]string{info.Feed.OlderID, info.Feed.NewerID})
		}
	}
	for i, id := range workload.commits {
		if i < len(workload.pool) {
			if _, _, err := d.Subscribe(workload.pool[i]); err == nil {
				ack.subs = append(ack.subs, workload.pool[i].ID)
			}
		}
		commit(id)
	}
	return ack
}

type crashScript struct {
	commits []string
	pool    []*profile.Profile
}

func TestCrashRecoveryEveryInjectionPoint(t *testing.T) {
	vs := testChain(t, 3) // v1..v4; v4 is committed only after recovery
	ids := vs.IDs()
	pool := testProfiles(t, vs, 2)
	bodies := make(map[string][]byte, len(ids))
	graphs := make(map[string]*rdf.Graph, len(ids))
	for i := 0; i < vs.Len(); i++ {
		v := vs.At(i)
		body := ntBody(t, v.Graph)
		buf := make([]byte, body.Len())
		if _, err := body.Read(buf); err != nil {
			t.Fatal(err)
		}
		bodies[v.ID] = buf
		graphs[v.ID] = v.Graph
	}
	script := &crashScript{commits: ids[1:3], pool: pool} // v2, v3 with a subscribe before each
	chain := ids[:3]                                      // the longest chain the workload can build

	// Counting run: no fault, measure how many fs operations one clean
	// session performs — the injection points to enumerate.
	mem := vfs.NewMemFS()
	storeDir := seedCrashStore(t, mem, vs)
	counter := vfs.NewFaultFS(mem, 0, vfs.FaultError)
	cleanAck := runCrashWorkload(t, counter, storeDir, bodies, script)
	total := counter.Ops()
	if len(cleanAck.commits) != 2 || len(cleanAck.subs) != 2 || len(cleanAck.fanouts) != 2 {
		t.Fatalf("clean run acked %+v, want 2 commits, 2 subs, 2 fanouts", cleanAck)
	}
	if total < 30 {
		t.Fatalf("clean session issued only %d fs ops; the workload no longer exercises the write paths", total)
	}
	t.Logf("enumerating %d injection points", total)

	faults := []vfs.Fault{vfs.FaultError, vfs.FaultTornWrite, vfs.FaultShortWrite}
	faultName := map[vfs.Fault]string{
		vfs.FaultError: "error", vfs.FaultTornWrite: "torn", vfs.FaultShortWrite: "short",
	}
	for failAt := 1; failAt <= total; failAt++ {
		fault := faults[failAt%len(faults)]
		t.Run(fmt.Sprintf("op%03d_%s", failAt, faultName[fault]), func(t *testing.T) {
			mem := vfs.NewMemFS()
			storeDir := seedCrashStore(t, mem, vs)
			ffs := vfs.NewFaultFS(mem, failAt, fault)
			ack := runCrashWorkload(t, ffs, storeDir, bodies, script)
			mem.Crash() // drop everything not fsynced: the process is gone

			// --- Store invariants -------------------------------------------
			back, err := store.OpenFS(mem, storeDir)
			if err != nil {
				t.Fatalf("recovery Open failed: %v (acked %+v)", err, ack)
			}
			got := back.IDs()
			if len(got) > len(chain) {
				t.Fatalf("recovered chain %v longer than attempted %v", got, chain)
			}
			for i, id := range got {
				if id != chain[i] {
					t.Fatalf("recovered chain %v is not a prefix of attempted %v", got, chain)
				}
			}
			for _, id := range ack.commits {
				if !back.Has(id) {
					t.Fatalf("acknowledged commit %q lost by recovery (chain %v)", id, got)
				}
			}
			for _, id := range got {
				g, err := back.Graph(id)
				if err != nil {
					t.Fatalf("recovered version %q does not materialize: %v", id, err)
				}
				if !sameGraph(g, graphs[id]) {
					t.Fatalf("recovered version %q diverged from the committed graph", id)
				}
			}
			if err := back.Close(); err != nil {
				t.Fatalf("closing recovered store: %v", err)
			}

			// --- Feed invariants --------------------------------------------
			svc := service.New(service.Config{FS: mem, FeedDir: crashFeedDir, FeedThreshold: 0.01})
			d, err := svc.Open("kb", storeDir)
			if err != nil {
				t.Fatalf("recovery service Open failed: %v", err)
			}
			subs := make(map[string]bool)
			for _, s := range d.Subscribers() {
				subs[s.ID] = true
			}
			attempted := map[string]bool{pool[0].ID: true, pool[1].ID: true}
			for id := range subs {
				if !attempted[id] {
					t.Fatalf("recovered subscriber %q was never registered", id)
				}
			}
			for _, id := range ack.subs {
				if !subs[id] {
					t.Fatalf("acknowledged subscriber %q lost by recovery", id)
				}
			}
			okPairs := map[[2]string]bool{{ids[0], ids[1]}: true, {ids[1], ids[2]}: true}
			for id := range subs {
				entries, _, err := d.PollFeed(id, 0, 0)
				if err != nil {
					t.Fatalf("polling recovered feed of %q: %v", id, err)
				}
				// One fan-out batch delivers up to K notifications per user
				// for a pair, each through a distinct measure; the same
				// (pair, measure) appearing twice means a re-delivered batch.
				seen := make(map[[3]string]bool)
				for _, e := range entries {
					pair := [2]string{e.Note.OlderID, e.Note.NewerID}
					if !okPairs[pair] {
						t.Fatalf("subscriber %q holds entry for pair %v that was never fanned out", id, pair)
					}
					key := [3]string{e.Note.OlderID, e.Note.NewerID, e.Note.MeasureID}
					if seen[key] {
						t.Fatalf("subscriber %q received %v twice — a re-delivered batch", id, key)
					}
					seen[key] = true
				}
			}
			// An acknowledged fan-out is in the durable ledger: replaying the
			// pair must be a no-op, never a second delivery.
			for _, pair := range ack.fanouts {
				st, err := d.Feed().FanOut(pair[0], pair[1], nil)
				if err != nil {
					t.Fatalf("re-fanning acked pair %v: %v", pair, err)
				}
				if !st.Skipped {
					t.Fatalf("acked fan-out %v not in the recovered ledger — it would re-deliver", pair)
				}
			}

			// --- The recovered store is fully usable ------------------------
			have := make(map[string]bool)
			for _, id := range d.Versions() {
				have[id] = true
			}
			for _, id := range ids {
				if !have[id] {
					if _, err := d.Commit(id, bytes.NewReader(bodies[id])); err != nil {
						t.Fatalf("recovered store refused commit %q: %v", id, err)
					}
				}
			}
			if err := svc.Close(); err != nil {
				t.Fatalf("closing recovered service: %v", err)
			}
			final, err := store.OpenFS(mem, storeDir)
			if err != nil {
				t.Fatalf("reopening after recovery commits: %v", err)
			}
			if fids := final.IDs(); len(fids) != vs.Len() {
				t.Fatalf("final chain %v, want all %d versions", fids, vs.Len())
			}
			if n := final.WALSize(); n != 0 {
				t.Fatalf("WAL holds %d bytes after clean close", n)
			}
		})
	}
}

// sameGraph reports triple-for-triple equality.
func sameGraph(a, b *rdf.Graph) bool {
	if a.Len() != b.Len() {
		return false
	}
	same := true
	a.ForEach(func(tr rdf.Triple) bool {
		if !b.Has(tr) {
			same = false
			return false
		}
		return true
	})
	return same
}
