package service_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"evorec/internal/core"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/service"
	"evorec/internal/store"
)

// commitVersion commits one synthetic version through the N-Triples path.
func commitVersion(t testing.TB, d *service.Dataset, v *rdf.Version) *service.CommitInfo {
	t.Helper()
	info, err := d.Commit(v.ID, ntBody(t, v.Graph))
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestCommitTriggersFanOut drives the full path: subscribe over HTTP-shaped
// profiles, commit versions, and check that the fan-out ran exactly for the
// consecutive pairs and feed output matches a serial Engine.Notify over the
// same subscribers.
func TestCommitTriggersFanOut(t *testing.T) {
	vs := testChain(t, 2) // v1, v2, v3
	svc := service.New(service.Config{FeedThreshold: 0.05, FeedK: 2})
	d, err := svc.Create("kb")
	if err != nil {
		t.Fatal(err)
	}
	pool := testProfiles(t, vs, 6)
	for _, u := range pool {
		if _, _, err := d.Subscribe(u); err != nil {
			t.Fatal(err)
		}
	}

	// First commit: no prior version, no fan-out.
	info := commitVersion(t, d, vs.At(0))
	if info.Feed != nil {
		t.Fatalf("first commit fanned out: %+v", info.Feed)
	}
	// Second commit: pair v1->v2 fans out.
	info = commitVersion(t, d, vs.At(1))
	if info.Feed == nil {
		t.Fatal("second commit did not fan out")
	}
	if info.Feed.OlderID != "v1" || info.Feed.NewerID != "v2" {
		t.Fatalf("fanned pair %s->%s, want v1->v2", info.Feed.OlderID, info.Feed.NewerID)
	}
	info = commitVersion(t, d, vs.At(2))
	if info.Feed == nil || info.Feed.OlderID != "v2" || info.Feed.NewerID != "v3" {
		t.Fatalf("third commit fan-out = %+v, want v2->v3", info.Feed)
	}

	// Parity: a serial engine over the same versions and subscribers must
	// produce the same notifications the feed delivered per pair.
	eng := core.New(core.Config{})
	if err := eng.IngestAll(vs); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"v1", "v2"}, {"v2", "v3"}} {
		want, err := eng.Notify(pool, pair[0], pair[1], 0.05, 2)
		if err != nil {
			t.Fatal(err)
		}
		var got []core.Notification
		for _, sub := range d.Subscribers() {
			entries, _, err := d.PollFeed(sub.ID, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if e.Note.OlderID == pair[0] && e.Note.NewerID == pair[1] {
					got = append(got, e.Note)
				}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pair %v feed output diverged:\n got %+v\nwant %+v", pair, got, want)
		}
	}

	// The commit pre-warmed both pairs: inspection agrees.
	inf := d.Info()
	if inf.Subscribers != len(pool) {
		t.Fatalf("Info.Subscribers = %d, want %d", inf.Subscribers, len(pool))
	}
	if inf.FeedPairs != 2 {
		t.Fatalf("Info.FeedPairs = %d, want 2", inf.FeedPairs)
	}
}

// TestCommitSkipsFanOutWithoutSubscribers: subscriber-free commits must not
// pay for measure evaluation (no context builds).
func TestCommitSkipsFanOutWithoutSubscribers(t *testing.T) {
	vs := testChain(t, 1)
	svc := service.New(service.Config{})
	d, err := svc.Create("kb")
	if err != nil {
		t.Fatal(err)
	}
	commitVersion(t, d, vs.At(0))
	info := commitVersion(t, d, vs.At(1))
	if info.Feed != nil {
		t.Fatalf("subscriber-free commit fanned out: %+v", info.Feed)
	}
	if n := d.ContextBuilds(); n != 0 {
		t.Fatalf("subscriber-free commit built %d contexts, want 0", n)
	}
}

// TestInvalidateVersionKeepsFeedLedger: invalidating and rebuilding a pair
// must not re-notify — the feed ledger survives cache invalidation.
func TestInvalidateVersionKeepsFeedLedger(t *testing.T) {
	vs := testChain(t, 1)
	svc := service.New(service.Config{FeedThreshold: 0.01})
	d, err := svc.Create("kb")
	if err != nil {
		t.Fatal(err)
	}
	pool := testProfiles(t, vs, 4)
	for _, u := range pool {
		if _, _, err := d.Subscribe(u); err != nil {
			t.Fatal(err)
		}
	}
	commitVersion(t, d, vs.At(0))
	info := commitVersion(t, d, vs.At(1))
	if info.Feed == nil {
		t.Fatal("commit did not fan out")
	}
	before := feedEntryCount(t, d)

	if n := d.InvalidateVersion("v2"); n == 0 {
		t.Fatal("nothing invalidated")
	}
	// Rebuild the pair (a recommendation forces it) and fan out again by
	// hand — the ledger must skip.
	if _, err := d.Recommend(pool[0], core.Request{OlderID: "v1", NewerID: "v2", K: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := d.Feed().FanOut("v1", "v2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Skipped {
		t.Fatal("rebuilt pair re-fanned")
	}
	if after := feedEntryCount(t, d); after != before {
		t.Fatalf("entries changed across invalidation: %d -> %d", before, after)
	}
}

func feedEntryCount(t testing.TB, d *service.Dataset) int {
	t.Helper()
	total := 0
	for _, sub := range d.Subscribers() {
		entries, _, err := d.PollFeed(sub.ID, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(entries)
	}
	return total
}

// TestFeedPersistsAcrossServices: a FeedDir-configured service reopens a
// disk-backed dataset's registry and logs after a restart, the ledger
// prevents re-delivery, and an in-memory dataset deliberately does NOT
// persist its feed (its version chain dies with the process, so a
// persisted ledger would suppress fan-out for recycled version IDs).
func TestFeedPersistsAcrossServices(t *testing.T) {
	vs := testChain(t, 1) // v1, v2
	storeDir := t.TempDir()
	base := rdf.NewVersionStore()
	if err := base.Add(vs.At(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(storeDir, base, store.Options{Policy: store.DeltaChain}); err != nil {
		t.Fatal(err)
	}
	feedDir := t.TempDir()
	cfg := service.Config{FeedDir: feedDir, FeedThreshold: 0.01}

	svc := service.New(cfg)
	d, err := svc.Open("kb", storeDir)
	if err != nil {
		t.Fatal(err)
	}
	pool := testProfiles(t, vs, 4)
	for _, u := range pool {
		if _, _, err := d.Subscribe(u); err != nil {
			t.Fatal(err)
		}
	}
	commitVersion(t, d, vs.At(1)) // fan-out v1->v2
	want := feedEntryCount(t, d)
	if want == 0 {
		t.Fatal("no entries delivered before restart")
	}
	if err := svc.FlushFeeds(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh service over the same store and feed dirs.
	svc2 := service.New(cfg)
	d2, err := svc2.Open("kb", storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if got := feedEntryCount(t, d2); got != want {
		t.Fatalf("restarted service sees %d entries, want %d", got, want)
	}
	if got, want := len(d2.Subscribers()), len(pool); got != want {
		t.Fatalf("restarted service sees %d subscribers, want %d", got, want)
	}
	if st, err := d2.Feed().FanOut("v1", "v2", nil); err != nil || !st.Skipped {
		t.Fatalf("restarted ledger did not skip the delivered pair: %+v %v", st, err)
	}

	// In-memory datasets keep feeds in memory even with FeedDir set: a
	// restarted -mem dataset with recycled version IDs must fan out again.
	svc3 := service.New(cfg)
	m, err := svc3.Create("scratch")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Subscribe(pool[0]); err != nil {
		t.Fatal(err)
	}
	commitVersion(t, m, vs.At(0))
	info := commitVersion(t, m, vs.At(1))
	if info.Feed == nil || info.Feed.Skipped {
		t.Fatalf("in-memory dataset inherited a stale persisted ledger: %+v", info.Feed)
	}
	if _, err := os.Stat(filepath.Join(feedDir, "scratch")); !os.IsNotExist(err) {
		t.Fatalf("in-memory dataset persisted feed state: %v", err)
	}
}

// TestServiceFeedRace races HTTP-shaped traffic — subscribes, unsubscribes,
// polls, recommendations — against commits with fan-out (run with -race).
// A stable subscriber must see exactly one batch per committed pair.
func TestServiceFeedRace(t *testing.T) {
	vs := testChain(t, 8) // v1..v9
	svc := service.New(service.Config{FeedThreshold: 0.01, FeedK: 1})
	d, err := svc.Create("kb")
	if err != nil {
		t.Fatal(err)
	}
	pool := testProfiles(t, vs, 8)
	stable := pool[0]
	if _, _, err := d.Subscribe(stable); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 1; c < len(pool); c++ {
		wg.Add(1)
		go func(u *profile.Profile) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := d.Subscribe(u); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := d.PollFeed(stable.ID, 0, 0); err != nil {
					t.Error(err)
					return
				}
				if err := d.Unsubscribe(u.ID); err != nil && !errors.Is(err, service.ErrUnknownSubscriber) {
					t.Error(err)
					return
				}
			}
		}(pool[c])
	}
	for i := 0; i < vs.Len(); i++ {
		commitVersion(t, d, vs.At(i))
	}
	close(stop)
	wg.Wait()

	entries, _, err := d.PollFeed(stable.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	perPair := map[string]int{}
	var prev uint64
	for _, e := range entries {
		if e.Cursor <= prev {
			t.Fatalf("cursor %d not increasing after %d", e.Cursor, prev)
		}
		prev = e.Cursor
		perPair[e.Note.OlderID+"->"+e.Note.NewerID]++
	}
	for pair, n := range perPair {
		if n != 1 {
			t.Fatalf("pair %s delivered %d notifications to the stable subscriber, want 1 (FeedK=1)", pair, n)
		}
	}
	// Every consecutive pair the stable subscriber relates to must appear;
	// with interests drawn from the schema and threshold 0.01 that is
	// nearly all of them — assert against a serial engine rather than
	// guessing.
	eng := core.New(core.Config{})
	if err := eng.IngestAll(vs); err != nil {
		t.Fatal(err)
	}
	wantPairs := 0
	for i := 0; i+1 < vs.Len(); i++ {
		notes, err := eng.Notify([]*profile.Profile{stable}, vs.At(i).ID, vs.At(i+1).ID, 0.01, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantPairs += len(notes)
	}
	if len(entries) != wantPairs {
		t.Fatalf("stable subscriber got %d notifications, serial engine says %d", len(entries), wantPairs)
	}
}

// TestFeedStatsSurface sanity-checks the fan-out stats invariants exposed
// through CommitInfo.
func TestFeedStatsSurface(t *testing.T) {
	vs := testChain(t, 1)
	svc := service.New(service.Config{})
	d, err := svc.Create("kb")
	if err != nil {
		t.Fatal(err)
	}
	cold := profile.New("cold")
	cold.SetInterest(rdf.SchemaIRI("NeverTouched"), 1)
	if _, _, err := d.Subscribe(cold); err != nil {
		t.Fatal(err)
	}
	commitVersion(t, d, vs.At(0))
	info := commitVersion(t, d, vs.At(1))
	if info.Feed == nil {
		t.Fatal("commit with a subscriber did not fan out")
	}
	if info.Feed.Affected != 0 || info.Feed.Notified != 0 {
		t.Fatalf("cold-only pool got affected=%d notified=%d, want 0/0",
			info.Feed.Affected, info.Feed.Notified)
	}
	if info.Feed.Subscribers != 1 {
		t.Fatalf("Subscribers = %d, want 1", info.Feed.Subscribers)
	}
	if _, _, err := d.PollFeed("cold", 0, 0); err != nil {
		t.Fatal(err) // registered: pollable even with an empty log
	}
	_, _, err = d.PollFeed("ghost", 0, 0)
	if !errors.Is(err, service.ErrUnknownSubscriber) {
		t.Fatalf("poll ghost = %v, want ErrUnknownSubscriber", err)
	}
}

// TestCommitSurvivesFanOutFailure: once the version is durable, a feed
// persistence failure must degrade to CommitInfo.FeedError — never fail
// the commit (the client would see "bad request" for landed data).
func TestCommitSurvivesFanOutFailure(t *testing.T) {
	vs := testChain(t, 1)
	storeDir := t.TempDir()
	base := rdf.NewVersionStore()
	if err := base.Add(vs.At(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(storeDir, base, store.Options{Policy: store.DeltaChain}); err != nil {
		t.Fatal(err)
	}
	feedRoot := t.TempDir()
	svc := service.New(service.Config{FeedDir: feedRoot, FeedThreshold: 0.01})
	d, err := svc.Open("kb", storeDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range testProfiles(t, vs, 2) {
		if _, _, err := d.Subscribe(u); err != nil {
			t.Fatal(err)
		}
	}
	// Break the dataset's feed directory: every log write now fails.
	fdir := filepath.Join(feedRoot, "kb")
	if err := os.RemoveAll(fdir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fdir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := d.Commit("v2", ntBody(t, vs.At(1).Graph))
	if err != nil {
		t.Fatalf("commit failed on a feed persistence error: %v", err)
	}
	if info.FeedError == "" {
		t.Fatal("feed failure not reported in CommitInfo.FeedError")
	}
	// The version landed and is fully queryable.
	if got := d.Versions(); len(got) != 2 || got[1] != "v2" {
		t.Fatalf("committed chain = %v, want [v1 v2]", got)
	}
	// In-memory delivery still happened: subscribers can poll the batch.
	if n := feedEntryCount(t, d); n == 0 {
		t.Fatal("no in-memory delivery despite persistence failure")
	}
}
