package service

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"evorec/internal/obs"
)

// Write-path states of a dataset. Reads never consult these: every
// materialized version keeps serving in all three states — the paper's
// evolving-version model makes the read path independent of write health.
//
//	healthy --(WAL append / checkpoint failure)--> degraded
//	degraded --(probe attempt starts)--> healing
//	healing --(store.Heal succeeds)--> healthy
//	healing --(store.Heal fails)--> degraded (backoff grows)
const (
	stateHealthy int32 = iota
	stateDegraded
	stateHealing
)

// stateName renders a state for gauges, logs and /readyz detail.
func stateName(s int32) string {
	switch s {
	case stateDegraded:
		return "degraded"
	case stateHealing:
		return "healing"
	default:
		return "healthy"
	}
}

// Default supervised-probe backoff schedule: the first retry lands fast (a
// transient fault — a full disk freed, a blip — should cost one blip), then
// doubles with full jitter up to the cap so a hard fault probes the disk a
// few times a minute, not in a tight loop.
const (
	DefaultHealBackoff    = 250 * time.Millisecond
	DefaultHealBackoffMax = 15 * time.Second
)

// enterDegradedLocked transitions the dataset to degraded and starts the
// supervised heal probe. Callers hold d.mu's write lock (the only places
// the write path can fail hold it), which also serializes probe restarts.
// Re-entering while already degraded or healing is a no-op — the standing
// probe keeps retrying.
func (d *Dataset) enterDegradedLocked(cause error) {
	if d.sds == nil || !d.state.CompareAndSwap(stateHealthy, stateDegraded) {
		return
	}
	d.health.moveDatasetState(stateHealthy, stateDegraded)
	d.metrics.incDegraded()
	if d.logger != nil {
		d.logger.Warn("dataset degraded: write path failing, commits suspended, reads still served",
			"dataset", d.name, "state", "degraded", "error", cause.Error())
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	d.probeStop, d.probeDone = stop, done
	go d.healProbe(stop, done)
}

// degraded reports whether commits should be shed right now.
func (d *Dataset) degraded() bool { return d.state.Load() != stateHealthy }

// healProbe is the supervised recovery loop of one degraded window: sleep a
// jittered, capped exponential backoff, attempt store.Heal under the write
// lock, and either flip the dataset back to healthy or grow the backoff and
// try again. One probe goroutine exists per degraded window; it exits on
// success or when the dataset closes.
func (d *Dataset) healProbe(stop, done chan struct{}) {
	defer close(done)
	start := time.Now()
	delay := d.healMin
	// Jitter only de-synchronizes concurrent probes; it never touches the
	// workload schedule, so deterministic-replay witnesses are unaffected.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 1; ; attempt++ {
		sleep := delay/2 + time.Duration(rng.Int63n(int64(delay/2)+1))
		select {
		case <-stop:
			return
		case <-time.After(sleep):
		}
		if d.tryHeal(attempt) {
			d.metrics.incHealed()
			if d.logger != nil {
				d.logger.Info("dataset healed: write path restored, commits re-enabled",
					"dataset", d.name, "state", "healthy",
					"attempts", attempt, "degraded_for", time.Since(start).String())
			}
			return
		}
		if delay *= 2; delay > d.healMax {
			delay = d.healMax
		}
	}
}

// tryHeal runs one probe attempt: healing state, a root span, store.Heal
// under the write lock (it checkpoints, so it is a readiness blocker like
// any other checkpoint), then healthy or back to degraded.
func (d *Dataset) tryHeal(attempt int) bool {
	d.state.Store(stateHealing)
	d.health.moveDatasetState(stateDegraded, stateHealing)
	ctx := context.Background()
	var span *obs.Span
	if d.tracer != nil {
		ctx, span = d.tracer.StartRoot(ctx, "service.heal_probe")
	}
	span.SetAttr("dataset", d.name)
	span.SetAttr("attempt", fmt.Sprint(attempt))
	d.mu.Lock()
	d.health.begin(blockCheckpoint)
	err := d.sds.HealCtx(ctx)
	d.health.end(blockCheckpoint)
	d.mu.Unlock()
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		d.state.Store(stateDegraded)
		d.health.moveDatasetState(stateHealing, stateDegraded)
		if d.logger != nil {
			d.logger.Warn("heal probe failed, backing off",
				"dataset", d.name, "state", "degraded", "attempt", attempt, "error", err.Error())
		}
		return false
	}
	span.End()
	d.state.Store(stateHealthy)
	d.health.moveDatasetState(stateHealing, stateHealthy)
	return true
}

// stopProbe terminates an active heal probe and waits for it to exit, so
// Close never races a probe into a closed store handle.
func (d *Dataset) stopProbe() {
	d.mu.Lock()
	stop, done := d.probeStop, d.probeDone
	d.probeStop, d.probeDone = nil, nil
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// DefaultBuildConcurrency bounds concurrent cold pair builds when
// Config.BuildConcurrency is zero: enough parallelism to warm a working set
// fast, small enough that a thundering herd of distinct cold pairs sheds
// load instead of queueing every goroutine behind the write lock.
const DefaultBuildConcurrency = 32

// acquireBuildSlot claims a cold-build slot without blocking; a saturated
// gate sheds the request with ErrBuildBusy (HTTP 503 + Retry-After). The
// warm path never calls this — only singleflight leaders about to build.
func (d *Dataset) acquireBuildSlot() error {
	if d.buildGate == nil {
		return nil
	}
	select {
	case d.buildGate <- struct{}{}:
		return nil
	default:
		d.metrics.incBuildShed()
		return fmt.Errorf("%w: dataset %q", ErrBuildBusy, d.name)
	}
}

// releaseBuildSlot returns a slot claimed by acquireBuildSlot.
func (d *Dataset) releaseBuildSlot() {
	if d.buildGate != nil {
		<-d.buildGate
	}
}
