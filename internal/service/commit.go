package service

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"evorec/internal/obs"
	"evorec/internal/rdf"
	"evorec/internal/store"
)

// DefaultCommitQueue is the per-dataset bound on commits waiting for the
// group committer. Beyond it Commit fails fast with ErrCommitBusy — the
// HTTP layer turns that into 503 + Retry-After, shedding load instead of
// stacking unbounded goroutines behind a saturated disk.
const DefaultCommitQueue = 64

// commitResult resolves one queued commit.
type commitResult struct {
	info *CommitInfo
	err  error
}

// commitReq is one commit waiting in the group-commit queue.
type commitReq struct {
	// ctx is the originating request's context (nil = untraced background
	// commit): its trace carries through parse, store append and fan-out,
	// and its request/trace IDs land in CommitInfo.
	ctx context.Context
	// queueSpan times enqueue-to-drain ("commit.queue_wait"); nil when the
	// request is unsampled.
	queueSpan *obs.Span
	id        string
	r         io.Reader
	done      chan commitResult // buffered(1); exactly one result per request
}

// reqCtx resolves the request's context, never nil.
func (req *commitReq) reqCtx() context.Context {
	if req.ctx != nil {
		return req.ctx
	}
	return context.Background()
}

// committer is a dataset's group-commit gate. Concurrent Commit calls
// enqueue; the first enqueuer spawns a drain goroutine that takes whatever
// has accumulated each round and commits it as ONE store batch — one WAL
// write, one fsync — so N committers colliding on a busy disk pay one disk
// round-trip instead of N. Under no contention a batch holds a single
// commit and the path degenerates to exactly the serial one.
type committer struct {
	mu      sync.Mutex
	cond    *sync.Cond // broadcast when running drops to false
	queue   []*commitReq
	max     int
	running bool
	closed  bool
}

// enqueue admits a request (bounded) and ensures a drain goroutine is
// running. It never blocks on I/O.
func (d *Dataset) enqueue(req *commitReq) error {
	c := &d.committer
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("%w: %q", ErrDatasetClosed, d.name)
	}
	if len(c.queue) >= c.max {
		d.metrics.incCommitBusy()
		return fmt.Errorf("%w: dataset %q has %d commits queued", ErrCommitBusy, d.name, len(c.queue))
	}
	c.queue = append(c.queue, req)
	d.metrics.setQueueDepth(len(c.queue))
	if !c.running {
		c.running = true
		go d.runCommits()
	}
	return nil
}

// walCheckpointBytes bounds WAL growth under sustained commit load: past
// it the drain goroutine checkpoints between batches even though committers
// are waiting, keeping recovery replay time and log disk usage bounded.
const walCheckpointBytes = 4 << 20

// runCommits drains the queue batch by batch until it is empty, then exits.
// Each round takes everything queued since the last one, so batch size
// adapts to contention: idle datasets commit singly, saturated ones
// coalesce dozens of commits per fsync. Checkpoints ride the same rhythm:
// while commits keep arriving the WAL absorbs them (one sequential fsync
// per batch) and segment/manifest writes are deferred; once the queue goes
// quiet — or the WAL outgrows its bound — the accumulated tail is folded
// into a durable checkpoint off every committer's acknowledgment path.
func (d *Dataset) runCommits() {
	c := &d.committer
	for {
		c.mu.Lock()
		if len(c.queue) == 0 {
			c.mu.Unlock()
			// Queue drained: absorb the WAL now, then re-check — a commit
			// that arrived while checkpointing keeps this goroutine alive
			// (enqueue saw running=true and spawned nothing).
			d.checkpointStore(store.CheckpointIdle)
			c.mu.Lock()
			if len(c.queue) == 0 {
				c.running = false
				c.cond.Broadcast()
				c.mu.Unlock()
				return
			}
			c.mu.Unlock()
			continue
		}
		batch := c.queue
		c.queue = nil
		d.metrics.setQueueDepth(0)
		c.mu.Unlock()
		d.metrics.observeBatch(len(batch))
		d.commitBatch(batch)
		if d.walPastBound() {
			d.checkpointStore(store.CheckpointWALBound)
		}
	}
}

// walPastBound reports whether the WAL has outgrown walCheckpointBytes.
func (d *Dataset) walPastBound() bool {
	if d.sds == nil {
		return false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.sds.WALSize() >= walCheckpointBytes
}

// checkpointStore folds the WAL into a durable checkpoint, recording the
// trigger reason ("idle" between bursts, "wal-bound" under sustained
// load) in the checkpoint-duration histogram. A checkpoint failure
// poisons the store handle AND is reported the moment it happens — a
// failure-count tick, a WARN line, and the transition into the degraded
// state that suspends commits while the heal probe works the disk.
func (d *Dataset) checkpointStore(reason string) {
	if d.sds == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sds.WALSize() > 0 {
		// A checkpoint fsyncs segments, dict and manifest while holding the
		// write lock; /readyz reports not-ready for the duration.
		d.health.begin(blockCheckpoint)
		err := d.sds.CheckpointReason(reason)
		d.health.end(blockCheckpoint)
		if err != nil {
			d.metrics.incCheckpointFailure(reason)
			if d.logger != nil {
				d.logger.Warn("checkpoint failed",
					"dataset", d.name, "reason", reason, "error", err.Error())
			}
			d.enterDegradedLocked(err)
		}
	}
}

// commitBatch parses, persists and ingests one batch under a single
// write-lock hold and resolves every request's done channel. Per-request
// failures (duplicate ID, parse error, unusable file name) drop only that
// request; the rest of the batch proceeds.
func (d *Dataset) commitBatch(batch []*commitReq) {
	d.mu.Lock()
	defer d.mu.Unlock()

	// The queue wait ends the moment the drain goroutine owns the batch;
	// everything after this is batch work, traced under each request.
	for _, req := range batch {
		req.queueSpan.End()
	}

	type staged struct {
		req  *commitReq
		v    *rdf.Version
		info *CommitInfo
	}
	var ok []staged
	seen := make(map[string]bool, len(batch))
	for _, req := range batch {
		if d.hasVersionLocked(req.id) || seen[req.id] {
			req.done <- commitResult{err: fmt.Errorf("%w: %q in dataset %q", ErrDuplicateVersion, req.id, d.name)}
			continue
		}
		if d.sds != nil && !store.ValidSegmentFileName(req.id+".x") {
			req.done <- commitResult{err: fmt.Errorf("service: version ID %q cannot name a segment file", req.id)}
			continue
		}
		g := rdf.NewGraphWithDict(d.dictLocked())
		rctx := req.reqCtx()
		_, ps := obs.StartSpan(rctx, "commit.parse")
		err := rdf.ReadNTriplesInto(g, req.r)
		ps.SetAttr("version", req.id)
		ps.SetAttr("triples", strconv.Itoa(g.Len()))
		ps.End()
		if err != nil {
			req.done <- commitResult{err: fmt.Errorf("service: parsing version %q: %w", req.id, err)}
			continue
		}
		seen[req.id] = true
		ok = append(ok, staged{
			req: req,
			v:   &rdf.Version{ID: req.id, Graph: g},
			info: &CommitInfo{
				ID: req.id, Triples: g.Len(), Kind: "memory",
				RequestID: obs.RequestIDFrom(rctx),
				TraceID:   obs.TraceIDFrom(rctx),
			},
		})
	}
	if len(ok) == 0 {
		return
	}

	prev := d.tailLocked()
	if d.sds != nil {
		vs := make([]*rdf.Version, len(ok))
		for i, s := range ok {
			vs[i] = s.v
		}
		// The whole batch becomes durable through one WAL append + fsync.
		// The store-side spans attach to ONE trace — the first sampled
		// request in the batch — because the append is genuinely shared:
		// one WAL write, one fsync, however many commits coalesced.
		bctx := context.Background()
		for _, s := range ok {
			if rctx := s.req.reqCtx(); obs.SpanFromContext(rctx) != nil {
				bctx = rctx
				break
			}
		}
		entries, err := d.sds.AppendBatchCtx(bctx, vs)
		if err != nil {
			// A poisoned store handle means the write path itself failed
			// (WAL append, segment write, inline checkpoint) — enter the
			// degraded state so later commits shed at the door while the
			// heal probe retries. The "mid-commit" marker lets clients and
			// the sim oracle distinguish this batch's 503s from the cheap
			// enqueue-time refusals.
			if d.sds.Failed() != nil {
				d.enterDegradedLocked(err)
				d.metrics.addCommitDegraded(len(ok))
				err = fmt.Errorf("%w mid-commit: dataset %q: %v", ErrDegraded, d.name, err)
			}
			for _, s := range ok {
				s.req.done <- commitResult{err: err}
			}
			return
		}
		for i, s := range ok {
			s.info.Kind = entries[i].Kind
		}
	}
	for _, s := range ok {
		if err := d.eng.Ingest(s.v); err != nil {
			// The version is already durable; report the serving-side failure
			// but keep the chain position — later versions still apply over it.
			s.req.done <- commitResult{err: err}
			prev = s.v.ID
			continue
		}
		// Commit-triggered fan-out: evaluate the new consecutive pair once
		// (which also pre-warms the pair cache for the requests that follow
		// a commit) and deliver it to the standing subscribers through the
		// inverted index. With no subscribers the pair build is skipped
		// entirely, so subscriber-free commits cost what they always did.
		// The version is durable at this point, so fan-out failures are
		// reported in FeedError, never as a commit failure — a client must
		// not see "bad request" for a version that landed.
		if prev != "" && d.feed.Len() > 0 {
			rctx := s.req.reqCtx()
			st, ferr := d.fanOutLocked(rctx, prev, s.v.ID)
			if ferr != nil {
				s.info.FeedError = ferr.Error()
			}
			s.info.Feed = st
			d.logFanOut(rctx, s.v.ID, st, ferr)
		}
		prev = s.v.ID
		s.req.done <- commitResult{info: s.info}
	}
}

// close shuts the committer down: no new commits are admitted, the drain
// goroutine (if any) finishes its work, and any stragglers are refused.
func (c *committer) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for c.running {
		c.cond.Wait()
	}
	for _, req := range c.queue {
		req.queueSpan.End()
		req.done <- commitResult{err: ErrDatasetClosed}
	}
	c.queue = nil
}
