package service_test

import (
	"testing"

	"evorec/internal/core"
	"evorec/internal/obs"
	"evorec/internal/rdf"
	"evorec/internal/service"
	"evorec/internal/store"
)

// TestTelemetryEndToEnd wires one registry through a disk-backed dataset
// and checks that every layer actually reports into it: the store's WAL
// and checkpoint series, the group committer's batch distribution, the
// singleflight build/hit split, and the feed's fan-out series — the full
// set the ops endpoints expose.
func TestTelemetryEndToEnd(t *testing.T) {
	vs := testChain(t, 3) // v1..v4
	dir := t.TempDir()
	seed := rdf.NewVersionStore()
	if err := seed.Add(vs.At(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(dir, seed, store.Options{Policy: store.DeltaChain}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc := service.New(service.Config{Metrics: reg, FeedThreshold: 0.01, FeedK: 2})
	d, err := svc.Open("kb", dir)
	if err != nil {
		t.Fatal(err)
	}
	pool := testProfiles(t, vs, 4)
	for _, u := range pool {
		if _, _, err := d.Subscribe(u); err != nil {
			t.Fatal(err)
		}
	}
	// Commits v2..v4: WAL appends + fsyncs, batches through the committer,
	// commit-triggered fan-outs for each consecutive pair.
	for i := 1; i < vs.Len(); i++ {
		commitVersion(t, d, vs.At(i))
	}
	// Two identical recommendations over a NON-consecutive pair (consecutive
	// pairs are pre-warmed by the commit fan-out, bypassing the singleflight
	// build): one leader build, then one pair-cache hit.
	req := core.Request{OlderID: "v1", NewerID: "v3", K: 2}
	for i := 0; i < 2; i++ {
		if _, err := d.Recommend(pool[0], req); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil { // close-triggered checkpoint
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	atLeast := func(key string, min float64) {
		t.Helper()
		if got, ok := snap[key]; !ok || got < min {
			t.Errorf("snapshot[%s] = %v (present=%v), want >= %v", key, got, ok, min)
		}
	}
	atLeast("evorec_wal_append_seconds_count", 3)
	atLeast("evorec_wal_fsync_seconds_count", 3)
	atLeast("evorec_wal_append_bytes_total", 1)
	atLeast("evorec_store_segment_bytes_total", 1)
	atLeast("evorec_commit_batch_size_count", 3)
	atLeast("evorec_commit_batch_size_sum", 3)
	atLeast("evorec_context_builds_total", 1)
	atLeast("evorec_pair_cache_hits_total", 1)
	atLeast("evorec_fanout_seconds_count", 3) // consecutive pairs v1->v2, v2->v3, v3->v4
	atLeast("evorec_fanout_affected_count", 3)
	// At least one checkpoint ran by Close; its reason label must be one of
	// the defined constants.
	var checkpoints float64
	for _, reason := range []string{
		store.CheckpointIdle, store.CheckpointWALBound,
		store.CheckpointClose, store.CheckpointExplicit, store.CheckpointReplay,
	} {
		checkpoints += snap[`evorec_store_checkpoint_seconds_count{reason="`+reason+`"}`]
	}
	if checkpoints < 1 {
		t.Errorf("no checkpoint recorded under any known reason; snapshot = %v", snap)
	}
	// The WAL gauge must read zero after Close absorbed it.
	if got := snap["evorec_wal_size_bytes"]; got != 0 {
		t.Errorf("wal size after close = %v, want 0", got)
	}
}

// TestTelemetryDisabled locks the off switch at the service layer: with no
// registry configured the whole path runs uninstrumented and nothing is
// registered anywhere.
func TestTelemetryDisabled(t *testing.T) {
	svc := service.New(service.Config{})
	d, err := svc.Create("kb")
	if err != nil {
		t.Fatal(err)
	}
	vs := testChain(t, 1)
	for i := 0; i < vs.Len(); i++ {
		commitVersion(t, d, vs.At(i))
	}
	pool := testProfiles(t, vs, 1)
	if _, err := d.Recommend(pool[0], core.Request{OlderID: "v1", NewerID: "v2", K: 2}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}
