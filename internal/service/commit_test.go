package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"evorec/internal/rdf"
	"evorec/internal/store"
	"evorec/internal/store/vfs"
)

func ntriple(s, o string) string {
	return fmt.Sprintf("<http://example.org/%s> <http://www.w3.org/2000/01/rdf-schema#seeAlso> <http://example.org/%s> .\n", s, o)
}

// seedMemStore saves a one-version chain onto fsys and returns its dir.
func seedMemStore(t *testing.T, fsys vfs.FS) string {
	t.Helper()
	dir := "data/ds"
	g := rdf.NewGraph()
	if err := rdf.ReadNTriplesInto(g, strings.NewReader(ntriple("a", "b"))); err != nil {
		t.Fatal(err)
	}
	vs := rdf.NewVersionStore()
	if err := vs.Add(&rdf.Version{ID: "v1", Graph: g}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveFS(fsys, dir, vs, store.Options{Policy: store.DeltaChain}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestServiceGroupCommitConcurrent hammers one disk-backed dataset with
// concurrent committers and verifies every acknowledged commit survives a
// Close + reopen: the group committer may batch them arbitrarily, but each
// must land exactly once, and readers must see a consistent chain.
func TestServiceGroupCommitConcurrent(t *testing.T) {
	fsys := vfs.NewMemFS()
	dir := seedMemStore(t, fsys)
	svc := New(Config{FS: fsys})
	d, err := svc.Open("ds", dir)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 5
	var wg sync.WaitGroup
	errs := make([]error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-c%d", w, i)
				body := ntriple(id, "payload")
				_, err := d.Commit(id, strings.NewReader(body))
				errs[w*perWorker+i] = err
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d failed: %v", i, err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := store.OpenFS(fsys, dir)
	if err != nil {
		t.Fatalf("reopen after concurrent commits: %v", err)
	}
	if got, want := back.Len(), 1+workers*perWorker; got != want {
		t.Fatalf("reopened chain has %d versions, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			id := fmt.Sprintf("w%d-c%d", w, i)
			if !back.Has(id) {
				t.Fatalf("acknowledged commit %q missing after reopen", id)
			}
			if _, err := back.Graph(id); err != nil {
				t.Fatalf("materializing %q: %v", id, err)
			}
		}
	}
	// A clean Close checkpoints: the WAL must be truncated.
	if n := back.WALSize(); n != 0 {
		t.Fatalf("WAL holds %d bytes after reopen (reopen checkpoints)", n)
	}
	// And a committed duplicate stays rejected after recovery.
	if _, err := back.Append(&rdf.Version{ID: "w0-c0", Graph: rdf.NewGraphWithDict(back.Dict())}); err == nil {
		t.Fatal("duplicate version ID accepted after reopen")
	}
}

// TestServiceCommitBusy saturates a 1-slot commit queue while the drain
// goroutine is wedged on the dataset lock and verifies overflow commits
// fail fast with ErrCommitBusy instead of queueing unboundedly.
func TestServiceCommitBusy(t *testing.T) {
	fsys := vfs.NewMemFS()
	dir := seedMemStore(t, fsys)
	svc := New(Config{FS: fsys, CommitQueue: 1})
	d, err := svc.Open("ds", dir)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the committer: hold the dataset write lock so the drain
	// goroutine blocks inside commitBatch while the queue refills.
	d.mu.Lock()
	release := sync.OnceFunc(d.mu.Unlock)
	defer release()

	results := make(chan error, 16)
	commit := func(i int) {
		id := fmt.Sprintf("busy-%d", i)
		_, err := d.Commit(id, strings.NewReader(ntriple(id, "x")))
		results <- err
	}
	go commit(0) // dequeued by the (now wedged) drain goroutine
	sawBusy := false
	deadline := time.After(5 * time.Second)
	for i := 1; !sawBusy; i++ {
		select {
		case <-deadline:
			t.Fatal("queue never saturated")
		default:
		}
		go commit(i)
		select {
		case err := <-results:
			if errors.Is(err, ErrCommitBusy) {
				sawBusy = true
			} else if err != nil {
				t.Fatalf("unexpected commit error: %v", err)
			}
		case <-time.After(50 * time.Millisecond):
			// This commit was admitted to the queue and is waiting on the
			// wedged committer; keep pushing until one bounces.
		}
	}
	release()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// After close, commits are refused with the shutdown sentinel.
	if _, err := d.Commit("late", strings.NewReader(ntriple("late", "x"))); !errors.Is(err, ErrDatasetClosed) {
		t.Fatalf("commit after close = %v, want ErrDatasetClosed", err)
	}
}

// TestServiceCommitCloseRace races a commit storm against Service.Close and
// holds the shutdown path to exactly-once semantics: every Commit call must
// resolve — within a bound, to an ack or to a shedding sentinel — and the
// reopened store must contain every acked commit and none of the refused
// ones. A hang here is the commit queue and the close drain deadlocking; a
// ghost version is a refusal whose WAL record escaped anyway.
func TestServiceCommitCloseRace(t *testing.T) {
	fsys := vfs.NewMemFS()
	dir := seedMemStore(t, fsys)
	svc := New(Config{FS: fsys})
	d, err := svc.Open("ds", dir)
	if err != nil {
		t.Fatal(err)
	}
	// One guaranteed pre-close ack, so the survival half of the assertion
	// is never vacuous on a fast Close.
	if _, err := d.Commit("pre", strings.NewReader(ntriple("pre", "x"))); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 6, 8
	type outcome struct {
		id  string
		err error
	}
	results := make(chan outcome, workers*perWorker)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("race-w%d-c%d", w, i)
				_, err := d.Commit(id, strings.NewReader(ntriple(id, "x")))
				results <- outcome{id, err}
			}
		}(w)
	}
	close(start)
	closeErr := make(chan error, 1)
	go func() { closeErr <- svc.Close() }()

	settled := make(chan struct{})
	go func() { wg.Wait(); close(settled) }()
	select {
	case <-settled:
	case <-time.After(30 * time.Second):
		t.Fatal("commits hung while racing Close")
	}
	if err := <-closeErr; err != nil {
		t.Fatalf("close during commit storm: %v", err)
	}
	close(results)
	acked := map[string]bool{"pre": true}
	refused := map[string]bool{}
	for r := range results {
		switch {
		case r.err == nil:
			acked[r.id] = true
		case errors.Is(r.err, ErrDatasetClosed), errors.Is(r.err, ErrCommitBusy):
			refused[r.id] = true
		default:
			t.Fatalf("commit %s resolved to an unexpected error: %v", r.id, r.err)
		}
	}
	if len(acked)-1+len(refused) != workers*perWorker {
		t.Fatalf("resolved %d acked + %d refused, want %d total",
			len(acked)-1, len(refused), workers*perWorker)
	}

	back, err := store.OpenFS(fsys, dir)
	if err != nil {
		t.Fatalf("reopen after racing close: %v", err)
	}
	for id := range acked {
		if !back.Has(id) {
			t.Errorf("acknowledged commit %q lost across Close", id)
		}
	}
	for id := range refused {
		if back.Has(id) {
			t.Errorf("refused commit %q landed anyway (ghost write)", id)
		}
	}
}
