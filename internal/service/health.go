package service

import (
	"sync/atomic"

	"evorec/internal/obs"
)

// blocker names one class of work that makes the service not-ready: WAL
// replay while a disk-backed dataset opens, a checkpoint folding the WAL
// into durable segments, and the shutdown drain. Liveness (/healthz) stays
// green through all of them — the process is up — but /readyz reports 503
// so load balancers route around the window instead of queueing behind it.
type blocker int

const (
	blockReplay blocker = iota
	blockCheckpoint
	blockDrain
)

// readyState tracks in-flight readiness blockers with lock-free counters
// and mirrors them into gauges when a registry is bound. The zero value is
// usable (and always ready) — gauge binding is optional, exactly like every
// other instrument in the service.
type readyState struct {
	replays     atomic.Int64
	checkpoints atomic.Int64
	drains      atomic.Int64

	// Per-state dataset counts for evorec_dataset_state{state}. A degraded
	// dataset is NOT a readiness blocker: its reads keep serving, and
	// pulling the whole process out of rotation over one wounded write path
	// would turn a partial failure into a total one. The counts surface in
	// the /readyz detail instead.
	dsHealthy  atomic.Int64
	dsDegraded atomic.Int64
	dsHealing  atomic.Int64

	gReplays     *obs.Gauge
	gCheckpoints *obs.Gauge
	gDrains      *obs.Gauge
	gReady       *obs.Gauge
	gState       *obs.GaugeVec
}

// bind attaches the readiness gauges to reg (nil reg leaves the state
// counter-only). The service starts ready.
func (h *readyState) bind(reg *obs.Registry) {
	if reg == nil {
		return
	}
	h.gReplays = reg.Gauge("evorec_replays_in_flight",
		"Store opens currently replaying a write-ahead log (service not-ready while > 0).")
	h.gCheckpoints = reg.Gauge("evorec_checkpoints_in_flight",
		"Checkpoints currently folding a WAL into durable segments (service not-ready while > 0).")
	h.gDrains = reg.Gauge("evorec_drains_in_flight",
		"Shutdown drains currently in flight (service not-ready while > 0).")
	h.gReady = reg.Gauge("evorec_ready",
		"1 when the service would answer /readyz with 200, 0 otherwise.")
	h.gReady.Set(1)
	h.gState = reg.GaugeVec("evorec_dataset_state",
		"Datasets per write-path state (healthy/degraded/healing); reads serve in every state.",
		"state")
}

// dsCounter resolves the dataset count for one write-path state.
func (h *readyState) dsCounter(s int32) *atomic.Int64 {
	switch s {
	case stateDegraded:
		return &h.dsDegraded
	case stateHealing:
		return &h.dsHealing
	default:
		return &h.dsHealthy
	}
}

// publishStates mirrors the per-state counts into the state gauge vec.
func (h *readyState) publishStates() {
	if h.gState == nil {
		return
	}
	h.gState.With("healthy").Set(float64(h.dsHealthy.Load()))
	h.gState.With("degraded").Set(float64(h.dsDegraded.Load()))
	h.gState.With("healing").Set(float64(h.dsHealing.Load()))
}

// addDataset registers a newly built dataset as healthy. Nil-receiver safe
// like every other readyState hook.
func (h *readyState) addDataset() {
	if h == nil {
		return
	}
	h.dsHealthy.Add(1)
	h.publishStates()
}

// moveDatasetState records one dataset's write-path state transition.
func (h *readyState) moveDatasetState(from, to int32) {
	if h == nil {
		return
	}
	h.dsCounter(from).Add(-1)
	h.dsCounter(to).Add(1)
	h.publishStates()
}

// removeDataset drops a closing dataset from its current state count.
func (h *readyState) removeDataset(state int32) {
	if h == nil {
		return
	}
	h.dsCounter(state).Add(-1)
	h.publishStates()
}

// counter resolves the counter/gauge pair for one blocker class.
func (h *readyState) counter(b blocker) (*atomic.Int64, *obs.Gauge) {
	switch b {
	case blockReplay:
		return &h.replays, h.gReplays
	case blockCheckpoint:
		return &h.checkpoints, h.gCheckpoints
	default:
		return &h.drains, h.gDrains
	}
}

// begin marks one blocker as in flight. Nil-receiver safe so datasets built
// outside a Service (tests) need no readiness plumbing.
func (h *readyState) begin(b blocker) {
	if h == nil {
		return
	}
	c, g := h.counter(b)
	n := c.Add(1)
	if g != nil {
		g.Set(float64(n))
	}
	h.refreshReady()
}

// end marks one blocker as finished.
func (h *readyState) end(b blocker) {
	if h == nil {
		return
	}
	c, g := h.counter(b)
	n := c.Add(-1)
	if g != nil {
		g.Set(float64(n))
	}
	h.refreshReady()
}

// ready reports whether no blocker is in flight.
func (h *readyState) ready() bool {
	return h.replays.Load() == 0 && h.checkpoints.Load() == 0 && h.drains.Load() == 0
}

// refreshReady re-derives the summary gauge. Counters move independently, so
// a racing begin/end pair can transiently publish either value — both were
// true at some instant, which is all a readiness gauge promises.
func (h *readyState) refreshReady() {
	if h.gReady == nil {
		return
	}
	v := 0.0
	if h.ready() {
		v = 1.0
	}
	h.gReady.Set(v)
}

// Ready reports whether the service should receive traffic, with the
// per-blocker counts as detail (rendered into the /readyz body). Not-ready
// means a WAL replay, checkpoint or shutdown drain is in flight.
func (s *Service) Ready() (bool, map[string]any) {
	h := &s.ready
	return h.ready(), map[string]any{
		"replays_in_flight":     h.replays.Load(),
		"checkpoints_in_flight": h.checkpoints.Load(),
		"drains_in_flight":      h.drains.Load(),
		"datasets_degraded":     h.dsDegraded.Load(),
		"datasets_healing":      h.dsHealing.Load(),
	}
}
