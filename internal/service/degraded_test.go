package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"evorec/internal/store"
	"evorec/internal/store/vfs"
)

// TestDatasetDegradedHealCycle walks one full incident through the write
// path's state machine: a transient store fault degrades the dataset
// (commits shed with ErrDegraded, reads keep serving), the supervised probe
// fails while the fault holds, and once the fault clears the probe heals
// the dataset without any client help — after which commits, including a
// retry of the very ID that failed mid-incident, are accepted again.
func TestDatasetDegradedHealCycle(t *testing.T) {
	chaos := vfs.NewChaosFS(vfs.NewMemFS(), "data")
	dir := seedMemStore(t, chaos)
	svc := New(Config{
		FS:             chaos,
		HealBackoff:    2 * time.Millisecond,
		HealBackoffMax: 20 * time.Millisecond,
	})
	d, err := svc.Open("ds", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close() //nolint:errcheck // double close is fine
	// A healthy commit first, so reads have a pair to serve during the fault.
	if _, err := d.Commit("v2", strings.NewReader(ntriple("c", "d"))); err != nil {
		t.Fatal(err)
	}

	chaos.Arm()
	// The in-flight batch hits the WAL fault: mid-commit degradation.
	if _, err := d.Commit("v3", strings.NewReader(ntriple("e", "f"))); !errors.Is(err, ErrDegraded) {
		t.Fatalf("commit during fault = %v, want ErrDegraded", err)
	}
	// Subsequent commits shed at the door, before touching the queue.
	if _, err := d.Commit("v4", strings.NewReader(ntriple("g", "h"))); !errors.Is(err, ErrDegraded) {
		t.Fatalf("commit while degraded = %v, want ErrDegraded", err)
	}
	// Reads are independent of write health: the committed chain still
	// serves (and the cold build below reads the store through the armed
	// injector — reads must pass through).
	if _, err := d.Delta("v1", "v2"); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	if !d.degraded() {
		t.Fatal("dataset reports healthy while the write path is failing")
	}
	if chaos.Faults() == 0 {
		t.Fatal("the injector never faulted anything")
	}

	// Clear the fault and let the probe do its job — no client involvement.
	chaos.Disarm()
	deadline := time.Now().Add(10 * time.Second)
	for d.degraded() {
		if time.Now().After(deadline) {
			t.Fatal("probe never healed the dataset after the fault cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Failed commits never burned their IDs: v3's WAL record was rejected
	// before the manifest swap, so the retry is a fresh commit.
	if _, err := d.Commit("v3", strings.NewReader(ntriple("e", "f"))); err != nil {
		t.Fatalf("retrying the failed ID after heal: %v", err)
	}
	if _, err := d.Commit("v5", strings.NewReader(ntriple("i", "j"))); err != nil {
		t.Fatalf("fresh commit after heal: %v", err)
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := store.OpenFS(chaos, dir)
	if err != nil {
		t.Fatalf("reopen after heal cycle: %v", err)
	}
	for _, id := range []string{"v1", "v2", "v3", "v5"} {
		if !back.Has(id) {
			t.Errorf("acknowledged version %q missing after reopen", id)
		}
	}
	if back.Has("v4") {
		t.Error("shed commit v4 landed anyway (ghost write)")
	}
}

// TestBuildGateShed pins the cold-build admission gate: with every slot
// occupied, a cold pair request sheds immediately with ErrBuildBusy instead
// of queueing behind the write lock; freeing a slot admits the build; and
// once the pair is warm, requests bypass the gate entirely.
func TestBuildGateShed(t *testing.T) {
	fsys := vfs.NewMemFS()
	dir := seedMemStore(t, fsys)
	svc := New(Config{FS: fsys, BuildConcurrency: 1})
	d, err := svc.Open("ds", dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit("v2", strings.NewReader(ntriple("c", "d"))); err != nil {
		t.Fatal(err)
	}
	// Occupy the lone slot, standing in for a slow build in flight.
	d.buildGate <- struct{}{}
	if _, err := d.Delta("v1", "v2"); !errors.Is(err, ErrBuildBusy) {
		t.Fatalf("cold read with a saturated gate = %v, want ErrBuildBusy", err)
	}
	<-d.buildGate
	if _, err := d.Delta("v1", "v2"); err != nil {
		t.Fatalf("cold read with a free slot: %v", err)
	}
	// Warm now: the gate only guards builds, never cached pairs.
	d.buildGate <- struct{}{}
	if _, err := d.Delta("v1", "v2"); err != nil {
		t.Fatalf("warm read with a saturated gate: %v", err)
	}
	<-d.buildGate
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseTimeoutAbandons wedges a dataset's close path and verifies
// CloseTimeout gives up after its budget, naming the dataset it abandoned
// instead of hanging shutdown forever — and that the abandoned close still
// completes in the background once the wedge clears.
func TestCloseTimeoutAbandons(t *testing.T) {
	fsys := vfs.NewMemFS()
	dir := seedMemStore(t, fsys)
	svc := New(Config{FS: fsys})
	d, err := svc.Open("ds", dir)
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	release := sync.OnceFunc(d.mu.Unlock)
	defer release()

	abandoned, err := svc.CloseTimeout(100 * time.Millisecond)
	if err == nil {
		t.Fatal("CloseTimeout returned nil with a wedged dataset")
	}
	if len(abandoned) != 1 || abandoned[0] != "ds" {
		t.Fatalf("abandoned = %v, want [ds]", abandoned)
	}

	release()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		id := fmt.Sprintf("late-%d", i)
		_, err := d.Commit(id, strings.NewReader(ntriple(id, "x")))
		if errors.Is(err, ErrDatasetClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background close never finished after the wedge cleared (commit = %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
