package service_test

import (
	"context"
	"testing"

	"evorec/internal/core"
	"evorec/internal/obs"
	"evorec/internal/profile"
	"evorec/internal/service"
)

// warmDataset builds a dataset with a cached v1->v2 pair, ready for the
// warm recommend fast path.
func warmDataset(t *testing.T, cfg service.Config) (*service.Dataset, *profile.Profile, core.Request) {
	t.Helper()
	vs := testChain(t, 2)
	svc := service.New(cfg)
	t.Cleanup(func() {
		if err := svc.Close(); err != nil {
			t.Error(err)
		}
	})
	d, err := svc.Add("kb", vs)
	if err != nil {
		t.Fatal(err)
	}
	pool := testProfiles(t, vs, 1)
	req := core.Request{OlderID: "v1", NewerID: "v2", K: 3}
	if _, err := d.Recommend(pool[0], req); err != nil {
		t.Fatal(err)
	}
	return d, pool[0], req
}

// TestRecommendTracedAllocGuard pins the cost of the tracing substrate on
// the hot path: a warm recommend under a tracer with an untraced context
// (the sampled-out shape) must allocate no more than the same call on a
// service built without any tracer.
func TestRecommendTracedAllocGuard(t *testing.T) {
	d, u, req := warmDataset(t, service.Config{})
	baseline := testing.AllocsPerRun(200, func() {
		if _, err := d.Recommend(u, req); err != nil {
			t.Fatal(err)
		}
	})

	td, tu, treq := warmDataset(t, service.Config{
		Tracer: obs.NewTracer(obs.TracerConfig{SampleRate: 1}),
	})
	ctx := context.Background()
	traced := testing.AllocsPerRun(200, func() {
		if _, err := td.RecommendCtx(ctx, tu, treq); err != nil {
			t.Fatal(err)
		}
	})
	if traced > baseline {
		t.Fatalf("warm recommend allocates %v with tracing wired vs %v without", traced, baseline)
	}
	t.Logf("warm recommend allocs: baseline=%v traced=%v", baseline, traced)
}
