package service

import "sync"

// flight is one in-progress pair build. Waiters block on done and read err
// after it closes.
type flight struct {
	done chan struct{}
	err  error
}

func (fl *flight) wait() error {
	<-fl.done
	return fl.err
}

// flightGroup elects one builder per key among concurrent requesters — the
// classic singleflight shape, small enough to carry no dependency. Unlike
// golang.org/x/sync's, it shares no return value: the build's result lands
// in the engine cache, which is where waiters re-read it, so a completed
// flight leaves nothing behind.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the in-progress flight for key and whether the caller was
// elected leader (i.e. created it). The leader must call leave exactly once.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl, ok := g.m[key]; ok {
		return fl, false
	}
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	fl := &flight{done: make(chan struct{})}
	g.m[key] = fl
	return fl, true
}

// leave publishes the leader's result and releases every waiter. The key is
// removed first, so a request arriving after a failed build starts a fresh
// flight instead of inheriting a stale error.
func (g *flightGroup) leave(key string, fl *flight, err error) {
	fl.err = err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(fl.done)
}
