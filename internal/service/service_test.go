package service_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"evorec/internal/core"
	"evorec/internal/profile"
	"evorec/internal/rdf"
	"evorec/internal/schema"
	"evorec/internal/service"
	"evorec/internal/store"
	"evorec/internal/synth"
)

// testChain generates a shared-dict evolving dataset.
func testChain(t testing.TB, steps int) *rdf.VersionStore {
	t.Helper()
	vs, _, err := synth.GenerateVersions(synth.Small(),
		synth.EvolveConfig{Ops: 60, Locality: 0.8}, steps, 7)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

// testProfiles generates a deterministic user pool over the chain's schema.
func testProfiles(t testing.TB, vs *rdf.VersionStore, n int) []*profile.Profile {
	t.Helper()
	s := schema.Extract(vs.At(0).Graph)
	pool, _, err := synth.GenerateProfiles(s, synth.ProfileConfig{Users: n, ExtraInterests: 2},
		rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// ntBody serializes a graph as an N-Triples reader, the commit body format.
func ntBody(t testing.TB, g *rdf.Graph) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// TestServiceParallelMatchesSerial is the acceptance test: many concurrent
// clients recommending against one dataset get results identical to a
// serial engine over the same versions, and every pair's measure context is
// built exactly once however many clients race for it.
func TestServiceParallelMatchesSerial(t *testing.T) {
	vs := testChain(t, 4) // v1..v5
	pool := testProfiles(t, vs, 6)
	ids := vs.IDs()
	type pair struct{ older, newer string }
	var pairs []pair
	for i := 1; i < len(ids); i++ {
		pairs = append(pairs, pair{ids[i-1], ids[i]})
	}

	// Serial ground truth: the plain single-threaded engine.
	serial := core.New(core.Config{})
	if err := serial.IngestAll(vs); err != nil {
		t.Fatal(err)
	}
	strategies := []core.Strategy{core.Plain, core.DiverseMMR, core.SemanticDiverse}
	type reqKey struct {
		pair  pair
		user  int
		strat core.Strategy
	}
	want := make(map[reqKey][]interface{})
	for _, p := range pairs {
		for ui := range pool {
			for _, strat := range strategies {
				sel, err := serial.Recommend(pool[ui], core.Request{
					OlderID: p.older, NewerID: p.newer, K: 3, Strategy: strat,
				})
				if err != nil {
					t.Fatal(err)
				}
				var vals []interface{}
				for _, s := range sel {
					vals = append(vals, s)
				}
				want[reqKey{p, ui, strat}] = vals
			}
		}
	}

	svc := service.New(service.Config{})
	d, err := svc.Add("parallel", vs)
	if err != nil {
		t.Fatal(err)
	}
	// Every request fired concurrently, several times over.
	const rounds = 3
	var wg sync.WaitGroup
	errCh := make(chan error, rounds*len(want))
	for r := 0; r < rounds; r++ {
		for key := range want {
			wg.Add(1)
			go func(key reqKey) {
				defer wg.Done()
				sel, err := d.Recommend(pool[key.user], core.Request{
					OlderID: key.pair.older, NewerID: key.pair.newer, K: 3, Strategy: key.strat,
				})
				if err != nil {
					errCh <- err
					return
				}
				var got []interface{}
				for _, s := range sel {
					got = append(got, s)
				}
				if !reflect.DeepEqual(got, want[key]) {
					errCh <- fmt.Errorf("pair %v user %d strategy %v: parallel result %v, want %v",
						key.pair, key.user, key.strat, got, want[key])
				}
			}(key)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := d.ContextBuilds(); got != len(pairs) {
		t.Fatalf("service built %d contexts for %d pairs; singleflight must build each exactly once",
			got, len(pairs))
	}
}

// TestServiceSingleflightOnePair hammers one pair from many goroutines: the
// context must be built exactly once.
func TestServiceSingleflightOnePair(t *testing.T) {
	vs := testChain(t, 1)
	pool := testProfiles(t, vs, 1)
	svc := service.New(service.Config{})
	d, err := svc.Add("one", vs)
	if err != nil {
		t.Fatal(err)
	}
	ids := vs.IDs()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Recommend(pool[0], core.Request{
				OlderID: ids[0], NewerID: ids[1], K: 2,
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := d.ContextBuilds(); got != 1 {
		t.Fatalf("32 concurrent clients built the context %d times, want exactly 1", got)
	}
}

// TestServiceHammerRecommendCommitNotify races recommendations,
// notifications, inspections and runtime commits against one disk-backed
// dataset; run under -race this is the service's data-race proof.
func TestServiceHammerRecommendCommitNotify(t *testing.T) {
	vs := testChain(t, 3) // v1..v4
	pool := testProfiles(t, vs, 4)
	dir := t.TempDir()
	if _, err := store.Save(dir, vs, store.Options{Policy: store.Hybrid, SnapshotEvery: 2}); err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{CacheCap: 8})
	d, err := svc.Open("hammer", dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := vs.IDs()
	var wg sync.WaitGroup
	// Committer: appends fresh versions (cloned tail + one new triple each)
	// while readers hammer the fixed pairs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := vs.Latest().Graph
		for i := 0; i < 3; i++ {
			g := base.Clone()
			g.Add(rdf.T(rdf.ResourceIRI(fmt.Sprintf("live-%d", i)), rdf.RDFSLabel,
				rdf.NewLiteral("committed mid-flight")))
			if _, err := d.Commit(fmt.Sprintf("v-live-%d", i), ntBody(t, g)); err != nil {
				t.Error(err)
				return
			}
			base = g
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p := (w + i) % (len(ids) - 1)
				older, newer := ids[p], ids[p+1]
				switch i % 4 {
				case 0:
					if _, err := d.Recommend(pool[w%len(pool)], core.Request{
						OlderID: older, NewerID: newer, K: 3,
					}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := d.Notify(pool, older, newer, 0.05, 2); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := d.Delta(older, newer); err != nil {
						t.Error(err)
						return
					}
				default:
					d.Info()
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Only the fixed consecutive pairs were analyzed, each exactly once.
	if got, max := d.ContextBuilds(), len(ids)-1; got > max {
		t.Fatalf("hammer built %d contexts, want at most %d", got, max)
	}
	// The committed versions landed in the persisted store.
	back, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(ids)+3 {
		t.Fatalf("store holds %d versions after live commits, want %d", back.Len(), len(ids)+3)
	}
	if _, err := back.Graph("v-live-2"); err != nil {
		t.Fatal(err)
	}
}

// TestServiceCommitLifecycle exercises the in-memory commit path end to
// end: build a dataset purely over HTTP-style commits and recommend.
func TestServiceCommitLifecycle(t *testing.T) {
	svc := service.New(service.Config{})
	d, err := svc.Create("live")
	if err != nil {
		t.Fatal(err)
	}
	vs := testChain(t, 2)
	for _, id := range vs.IDs() {
		v, _ := vs.Get(id)
		info, err := d.Commit(id, ntBody(t, v.Graph))
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind != "memory" || info.Triples != v.Graph.Len() {
			t.Fatalf("commit info = %+v", info)
		}
	}
	if got := d.Versions(); len(got) != vs.Len() {
		t.Fatalf("dataset has versions %v, want %d", got, vs.Len())
	}
	pool := testProfiles(t, vs, 2)
	ids := vs.IDs()
	sel, err := d.Recommend(pool[0], core.Request{OlderID: ids[0], NewerID: ids[1], K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("recommendation over committed versions is empty")
	}

	// Error paths map to the sentinels the HTTP layer needs.
	if _, err := d.Commit(ids[0], strings.NewReader("")); !errors.Is(err, service.ErrDuplicateVersion) {
		t.Fatalf("duplicate commit error = %v, want ErrDuplicateVersion", err)
	}
	if _, err := d.Commit("bad", strings.NewReader("not n-triples")); err == nil {
		t.Fatal("malformed N-Triples must fail the commit")
	}
	if got := d.Versions(); len(got) != vs.Len() {
		t.Fatalf("failed commits must not register versions; have %v", got)
	}
	if _, err := d.Recommend(pool[0], core.Request{OlderID: "nope", NewerID: ids[1], K: 1}); !errors.Is(err, service.ErrUnknownVersion) {
		t.Fatalf("unknown version error = %v, want ErrUnknownVersion", err)
	}
	if _, err := svc.Get("missing"); !errors.Is(err, service.ErrUnknownDataset) {
		t.Fatalf("unknown dataset error = %v, want ErrUnknownDataset", err)
	}
	if _, err := svc.Create("live"); !errors.Is(err, service.ErrDuplicateDataset) {
		t.Fatalf("duplicate dataset error = %v, want ErrDuplicateDataset", err)
	}
}

// TestServiceBackedInfo checks the inspect snapshot over a disk-backed
// dataset: store cache counters surface and lazy paging stays lazy.
func TestServiceBackedInfo(t *testing.T) {
	vs := testChain(t, 3)
	dir := t.TempDir()
	if _, err := store.Save(dir, vs, store.Options{Policy: store.DeltaChain}); err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{CacheCap: 2})
	d, err := svc.Open("backed", dir)
	if err != nil {
		t.Fatal(err)
	}
	info := d.Info()
	if !info.Backed || info.Policy != "delta_chain" || info.Dir != dir {
		t.Fatalf("info = %+v", info)
	}
	if info.StoreCacheCap != 2 {
		t.Fatalf("store cache cap = %d, want 2 (from service config)", info.StoreCacheCap)
	}
	if len(info.Versions) != vs.Len() || info.ContextBuilds != 0 {
		t.Fatalf("fresh dataset info = %+v", info)
	}
	ids := vs.IDs()
	pool := testProfiles(t, vs, 1)
	if _, err := d.Recommend(pool[0], core.Request{OlderID: ids[0], NewerID: ids[1], K: 2}); err != nil {
		t.Fatal(err)
	}
	info = d.Info()
	if info.ContextBuilds != 1 || len(info.CachedPairs) != 1 {
		t.Fatalf("after one pair: info = %+v", info)
	}
	if info.StoreCacheHits+info.StoreCacheMisses == 0 {
		t.Fatal("materializing versions must move the store cache counters")
	}
	// In-memory datasets have no store LRU to resize.
	mem, err := svc.Create("mem")
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.SetCacheCap(2); err == nil {
		t.Fatal("SetCacheCap on an in-memory dataset must error")
	}
	if err := d.SetCacheCap(0); err == nil {
		t.Fatal("SetCacheCap(0) must be rejected")
	}
	if err := d.SetCacheCap(6); err != nil {
		t.Fatal(err)
	}
	if got := d.Info().StoreCacheCap; got != 6 {
		t.Fatalf("resized cache cap = %d, want 6", got)
	}
}

// TestServiceGroupAndPrivate drives the group and privacy entry points
// through the facade.
func TestServiceGroupAndPrivate(t *testing.T) {
	vs := testChain(t, 2)
	pool := testProfiles(t, vs, 4)
	svc := service.New(service.Config{})
	d, err := svc.Add("gp", vs)
	if err != nil {
		t.Fatal(err)
	}
	ids := vs.IDs()
	g, err := profile.NewGroup("g1", pool[:3])
	if err != nil {
		t.Fatal(err)
	}
	sel, err := d.RecommendGroup(g, core.GroupRequest{
		OlderID: ids[0], NewerID: ids[1], K: 3, FairGreedy: true, FairAlpha: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("group recommendation is empty")
	}
	priv, err := d.RecommendPrivate(pool, 0, core.Request{
		OlderID: ids[0], NewerID: ids[1], K: 3,
	}, core.PrivacyPolicy{KAnonymity: 2, Epsilon: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(priv) == 0 {
		t.Fatal("private recommendation is empty")
	}
}
